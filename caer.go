// Package caer is a reproduction of "Contention Aware Execution: Online
// Contention Detection and Response" (Mars, Vachharajani, Hundt, Soffa —
// CGO 2010) as a self-contained Go library.
//
// CAER co-locates a latency-sensitive application with throughput-oriented
// batch applications on one multicore chip, detects shared last-level-cache
// contention online from hardware performance counters, and throttles the
// batch applications when — and only when — they are hurting the
// latency-sensitive application. The result is most of the utilization of
// co-location with a small fraction of its interference penalty.
//
// Because the original system needs a real Nehalem-class PMU and the SPEC
// CPU2006 suite, this library ships a scaled multicore simulator substrate:
// a cycle-approximate machine (private L1/L2, shared inclusive L3, memory
// bandwidth model) executing 21 synthetic benchmark profiles calibrated to
// the paper's contention-sensitivity spectrum. The CAER runtime itself only
// consumes the PMU abstraction, so it is substrate-agnostic.
//
// # Quick start
//
//	m := caer.NewMachine(caer.MachineConfig{Cores: 2})
//	rt := caer.NewRuntime(m, caer.HeuristicRule, caer.DefaultConfig())
//	mcf, _ := caer.BenchmarkByName("mcf")
//	lat := mcf.NewProcess(0, 1)
//	rt.AddLatency("mcf", 0, lat)
//	rt.AddBatch("lbm", 1, caer.LBM().Batch().NewProcess(1<<28, 2))
//	rt.RunUntil(lat.Done, 1_000_000)
//
// Or run a whole paper-style scenario in one call:
//
//	r := caer.Run(caer.Scenario{
//		Latency:   mcf,
//		Mode:      caer.ModeCAER,
//		Heuristic: caer.HeuristicRule,
//	})
//
// The experiments sub-API regenerates every data figure of the paper's
// evaluation; see NewSuite.
package caer

import (
	icaer "caer/internal/caer"
	"caer/internal/comm"
	"caer/internal/experiments"
	"caer/internal/machine"
	"caer/internal/mem"
	"caer/internal/runner"
	"caer/internal/spec"
	"caer/internal/workload"
)

// Core runtime types (the paper's contribution).
type (
	// Config collects the CAER runtime tunables (§4–§6 parameters).
	Config = icaer.Config
	// HeuristicKind selects the detection/response pairing.
	HeuristicKind = icaer.HeuristicKind
	// Runtime is a deployed CAER environment over a machine.
	Runtime = icaer.Runtime
	// Option customizes a Runtime.
	Option = icaer.Option
	// Detector is an online contention-detection heuristic.
	Detector = icaer.Detector
	// Responder maps detection verdicts to throttling behaviour.
	Responder = icaer.Responder
	// Verdict is a detection outcome.
	Verdict = icaer.Verdict
	// EngineStats is an engine's decision log.
	EngineStats = icaer.EngineStats
	// Actuator applies throttling directives to a core.
	Actuator = icaer.Actuator
	// Directive is a reaction order in the communication table.
	Directive = comm.Directive
)

// Heuristic pairings evaluated in the paper.
const (
	// HeuristicShutter pairs burst-shutter detection with the
	// red-light/green-light response.
	HeuristicShutter = icaer.HeuristicShutter
	// HeuristicRule pairs rule-based detection with soft locking.
	HeuristicRule = icaer.HeuristicRule
	// HeuristicRandom is the §6.4 accuracy baseline.
	HeuristicRandom = icaer.HeuristicRandom
	// HeuristicHybrid is the rule-gate + shutter-confirm extension.
	HeuristicHybrid = icaer.HeuristicHybrid
)

// Detection verdicts.
const (
	VerdictPending      = icaer.VerdictPending
	VerdictContention   = icaer.VerdictContention
	VerdictNoContention = icaer.VerdictNoContention
)

// Directives.
const (
	DirectiveRun   = comm.DirectiveRun
	DirectivePause = comm.DirectivePause
)

// DefaultConfig returns the paper's configuration scaled to the simulated
// machine.
func DefaultConfig() Config { return icaer.DefaultConfig() }

// NewRuntime creates a CAER deployment on machine m.
func NewRuntime(m *Machine, kind HeuristicKind, cfg Config, opts ...Option) *Runtime {
	return icaer.NewRuntime(m, kind, cfg, opts...)
}

// WithActuator replaces the default pause actuator.
func WithActuator(a Actuator) Option { return icaer.WithActuator(a) }

// DVFSActuator returns an actuator that down-clocks instead of pausing
// (the related-work alternative response).
func DVFSActuator(divisor int) Actuator { return icaer.DVFSActuator(divisor) }

// NewShutterDetector, NewRuleDetector and NewRandomDetector expose the
// individual heuristics for custom engine wiring and tuning studies.
func NewShutterDetector(cfg Config) Detector { return icaer.NewShutterDetector(cfg) }

// NewRuleDetector constructs the Algorithm 2 heuristic.
func NewRuleDetector(cfg Config) Detector { return icaer.NewRuleDetector(cfg) }

// NewRandomDetector constructs the random baseline heuristic.
func NewRandomDetector(cfg Config) Detector { return icaer.NewRandomDetector(cfg) }

// NewHybridDetector constructs the rule-gate + shutter-confirm extension
// heuristic.
func NewHybridDetector(cfg Config) Detector { return icaer.NewHybridDetector(cfg) }

// Machine substrate types.
type (
	// Machine is the simulated multicore CPU.
	Machine = machine.Machine
	// MachineConfig configures a Machine.
	MachineConfig = machine.Config
	// Core is one processor core.
	Core = machine.Core
	// Process is one application bound to a core.
	Process = machine.Process
	// ExecProfile describes a process's instruction mix.
	ExecProfile = machine.ExecProfile
	// HierarchyConfig configures the memory hierarchy.
	HierarchyConfig = mem.HierarchyConfig
	// Generator produces a synthetic memory-reference stream.
	Generator = workload.Generator
)

// NewMachine constructs a simulated machine.
func NewMachine(cfg MachineConfig) *Machine { return machine.New(cfg) }

// NewProcess constructs a process from an execution profile and a
// reference-stream generator.
func NewProcess(name string, prof ExecProfile, gen Generator, seed int64) *Process {
	return machine.NewProcess(name, prof, gen, seed)
}

// DefaultHierarchyConfig returns the scaled Nehalem-like memory system.
func DefaultHierarchyConfig(cores int) HierarchyConfig {
	return mem.DefaultHierarchyConfig(cores)
}

// Benchmark suite types.
type (
	// Benchmark is one synthetic SPEC2006-like profile.
	Benchmark = spec.Profile
	// Sensitivity is a benchmark's interference-sensitivity class.
	Sensitivity = spec.Sensitivity
)

// Sensitivity classes.
const (
	Insensitive = spec.Insensitive
	Moderate    = spec.Moderate
	Sensitive   = spec.Sensitive
)

// Benchmarks returns all 21 paper benchmarks in figure order.
func Benchmarks() []Benchmark { return spec.All() }

// BenchmarkNames returns the benchmark names in figure order.
func BenchmarkNames() []string { return spec.Names() }

// BenchmarkByName looks a benchmark up by full ("429.mcf") or short
// ("mcf") name.
func BenchmarkByName(name string) (Benchmark, bool) { return spec.ByName(name) }

// LBM returns the paper's batch adversary.
func LBM() Benchmark { return spec.LBM() }

// Scenario execution types.
type (
	// Scenario describes one co-location experiment.
	Scenario = runner.Scenario
	// Result is a scenario outcome.
	Result = runner.Result
	// Mode selects alone / native co-location / CAER execution.
	Mode = runner.Mode
)

// Scenario modes.
const (
	ModeAlone      = runner.ModeAlone
	ModeNativeColo = runner.ModeNativeColo
	ModeCAER       = runner.ModeCAER
)

// Run executes a scenario to completion.
func Run(s Scenario) Result { return runner.Run(s) }

// Slowdown returns r's execution-time penalty relative to the alone run.
func Slowdown(r, alone Result) float64 { return runner.Slowdown(r, alone) }

// Overhead returns Slowdown − 1.
func Overhead(r, alone Result) float64 { return runner.Overhead(r, alone) }

// UtilizationGained returns the extra chip utilization co-location buys.
func UtilizationGained(r Result) float64 { return runner.UtilizationGained(r) }

// InterferenceEliminated returns the fraction of the native co-location
// penalty a managed run removes (Figure 8's metric).
func InterferenceEliminated(caerRun, colo, alone Result) float64 {
	return runner.InterferenceEliminated(caerRun, colo, alone)
}

// Accuracy is Equation 2: utilization gained relative to the random
// baseline, minus one.
func Accuracy(heuristic, random Result) float64 { return runner.Accuracy(heuristic, random) }

// Suite regenerates the paper's evaluation figures.
type Suite = experiments.Suite

// NewSuite returns an experiment suite over the full benchmark set.
func NewSuite() *Suite { return experiments.NewSuite() }
