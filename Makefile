# Tier-1: the fast correctness gate (what every PR must keep green).
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-2: build + go vet + repo-specific static analysis + race tests.
.PHONY: check
check:
	./check.sh

# Run only the repo-specific analyzers.
.PHONY: vet
vet:
	go run ./cmd/caer-vet ./...

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...
