# Tier-1: the fast correctness gate (what every PR must keep green).
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-2: build + go vet + repo-specific static analysis + race tests.
.PHONY: check
check:
	./check.sh

# Run only the repo-specific analyzers (suppression hygiene on, as in CI).
.PHONY: vet
vet:
	go run ./cmd/caer-vet -unused-suppressions ./...

# Machine-readable findings (the caer-vet -json contract; CI uploads this).
.PHONY: vet-json
vet-json:
	go run ./cmd/caer-vet -unused-suppressions -json ./...

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...

# Fleet regime gate at full scale (DESIGN.md §14; writes BENCH_fleet.json).
.PHONY: fleet
fleet:
	go run ./cmd/caer-bench -fleet

# SLO regime gate at full scale (DESIGN.md §15; writes BENCH_slo.json plus
# the caer-doctor bundle SLO_*.json).
.PHONY: slo
slo:
	go run ./cmd/caer-bench -slo

# Partition regime gate at full scale (DESIGN.md §16; writes
# BENCH_partition.json).
.PHONY: partition
partition:
	go run ./cmd/caer-bench -partition
