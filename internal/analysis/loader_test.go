package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFindModule(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	if path != "caer" {
		t.Errorf("module path = %q, want %q", path, "caer")
	}
	if filepath.Base(filepath.Dir(filepath.Dir(root))) == "analysis" {
		t.Errorf("module root %q should be above internal/analysis", root)
	}
}

func TestModulePathFromGoMod(t *testing.T) {
	cases := map[string]string{
		"module caer\n\ngo 1.22\n":          "caer",
		"// hi\nmodule example.com/x/y\n":   "example.com/x/y",
		"module \"quoted/path\"\ngo 1.22\n": "quoted/path",
		"go 1.22\n":                         "",
	}
	for in, wantPath := range cases {
		if got := modulePathFromGoMod([]byte(in)); got != wantPath {
			t.Errorf("modulePathFromGoMod(%q) = %q, want %q", in, got, wantPath)
		}
	}
}

func TestLoaderLoadsRealPackage(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(root, path)
	pkg, err := l.Load(filepath.Join(root, "internal", "comm"))
	if err != nil {
		t.Fatalf("Load internal/comm: %v", err)
	}
	if pkg.Path != "caer/internal/comm" {
		t.Errorf("package path = %q, want caer/internal/comm", pkg.Path)
	}
	if pkg.Types.Scope().Lookup("Directive") == nil {
		t.Errorf("type-checked comm package is missing Directive")
	}
	// The loader must cache: a second load returns the same package.
	again, err := l.Load("internal/comm")
	if err != nil {
		t.Fatalf("reload internal/comm: %v", err)
	}
	if again != pkg {
		t.Errorf("loader did not cache internal/comm")
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	sawAnalysis := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion descended into testdata: %s", d)
		}
		if filepath.Base(d) == "analysis" {
			sawAnalysis = true
		}
	}
	if !sawAnalysis {
		t.Errorf("pattern expansion missed internal/analysis; got %d dirs", len(dirs))
	}
}
