package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. "caer/internal/comm"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved by walking the
// module tree recursively; standard-library imports are delegated to the
// go/importer source importer (which type-checks GOROOT source, so no
// compiled export data is needed). Test files are not loaded — the
// invariants caer-vet guards live in the runtime itself.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod

	std     types.Importer
	pkgs    map[string]*Package // by import path; nil entry = no buildable files
	loading map[string]bool     // cycle detection
}

// NewLoader returns a loader rooted at modRoot for the given module path.
func NewLoader(modRoot, modPath string) *Loader {
	return &Loader{
		Fset:    token.NewFileSet(),
		ModRoot: modRoot,
		ModPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (modRoot, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := modulePathFromGoMod(data)
			if path == "" {
				return "", "", fmt.Errorf("analysis: no module line in %s", filepath.Join(d, "go.mod"))
			}
			return d, path, nil
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

// modulePathFromGoMod extracts the module path from go.mod contents.
func modulePathFromGoMod(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// importPathFor maps an absolute package directory to its import path
// within the loader's module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Load parses and type-checks the package in dir (absolute or relative to
// the module root). It returns (nil, nil) when the directory holds no
// buildable Go files for the current build context.
func (l *Loader) Load(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModRoot, dir)
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ctxt := build.Default
	bp, err := ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			l.pkgs[path] = nil
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: scan %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	names = append(names, bp.CgoFiles...)
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    importerFunc(l.importFrom(dir)),
		Sizes:       types.SizesFor("gc", ctxt.GOARCH),
		FakeImportC: true,
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importFrom returns the import resolver used while type-checking a
// package in dir: module-internal paths recurse into the loader, anything
// else goes to the shared source importer over GOROOT.
func (l *Loader) importFrom(dir string) func(path string) (*types.Package, error) {
	return func(path string) (*types.Package, error) {
		switch {
		case path == "unsafe":
			return types.Unsafe, nil
		case path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/"):
			sub := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
			pkg, err := l.loadPath(path, filepath.Join(l.ModRoot, filepath.FromSlash(sub)))
			if err != nil {
				return nil, err
			}
			if pkg == nil {
				return nil, fmt.Errorf("analysis: no Go files in %q", path)
			}
			return pkg.Types, nil
		default:
			if l.std == nil {
				l.std = importer.ForCompiler(l.Fset, "source", nil)
			}
			return l.std.Import(path)
		}
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ExpandPatterns resolves package patterns against the module root into
// package directories. A pattern is either a directory (absolute, or
// relative to modRoot) or a "dir/..." wildcard that walks the tree. The
// conventional skip list applies: testdata, vendor, hidden and
// underscore-prefixed directories are never visited.
func ExpandPatterns(modRoot string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(modRoot, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
