package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism keeps the simulation core and the result-assembly paths
// bit-reproducible. The repo's byte-identity gates — BENCH_sched.json
// identical at Workers=1 vs 4, the perf suite's parallel-vs-serial
// machine-state comparison (DESIGN.md §6, §11) — only hold if nothing in
// those paths consults a source of nondeterminism. Four rules, applied to
// the Config.DeterministicPkgs packages and Config.DeterministicFuncs
// functions:
//
//  1. no wall-clock reads (time.Now/Since/Until/Sleep): simulated time is
//     the only clock; wall time varies run to run.
//  2. no process-global math/rand: the package-level convenience
//     functions draw from a shared, racily-advanced source. Seeded
//     rand.New(rand.NewSource(seed)) instances are fine — that is the
//     repo's convention.
//  3. no map iteration that feeds ordered output (appends to an outer
//     slice, writes to a writer) or order-sensitive accumulators
//     (floating-point += is not associative): Go randomizes map order on
//     purpose, so such loops differ run to run. Iterate a sorted key
//     slice instead.
//  4. no unordered goroutine result collection: a spawned goroutine that
//     appends to a slice shared with its spawner interleaves results in
//     scheduling order. Write to an indexed slot (results[i] = ...)
//     instead.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, process-global math/rand, map iteration feeding " +
		"ordered output or order-sensitive accumulators, and unordered goroutine " +
		"result collection in the deterministic packages",
	Run: runDeterminism,
}

// wallClockFuncs are the time-package functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
}

// seededRandFuncs are the math/rand package-level functions that do NOT
// draw from the process-global source (constructors of explicit sources).
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) {
	wholePkg := pass.Cfg.IsDeterministicPkg(pass.Pkg.Path())
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !wholePkg {
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok || !pass.Cfg.IsDeterministicFunc(pass.Pkg.Path(), recvTypeName(fn), fn.Name()) {
					continue
				}
			}
			checkDeterministicBody(pass, fd)
		}
	}
}

func checkDeterministicBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			checkDetCall(pass, node)
		case *ast.RangeStmt:
			if isMapType(pass, node.X) {
				checkDetMapRange(pass, fd, node)
			}
		case *ast.GoStmt:
			checkDetGoCollection(pass, node)
		}
		return true
	})
}

// checkDetCall flags wall-clock reads and global math/rand draws.
func checkDetCall(pass *Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	switch callee.Pkg().Path() {
	case "time":
		if recvTypeName(callee) == "" && wallClockFuncs[callee.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in deterministic code; simulated periods are the only clock here",
				callee.Name())
		}
	case "math/rand", "math/rand/v2":
		if recvTypeName(callee) == "" && !seededRandFuncs[callee.Name()] {
			pass.Reportf(call.Pos(),
				"process-global rand.%s in deterministic code; draw from a seeded rand.New(rand.NewSource(seed))",
				callee.Name())
		}
	}
}

// checkDetMapRange flags map-iteration bodies that feed ordered output or
// order-sensitive accumulators. The one sanctioned append is the
// collect-keys-then-sort idiom: an append whose target is handed to a
// sort/slices function later in the same enclosing function is the fix the
// analyzer itself recommends, so it is exempt.
func checkDetMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pass, node, "append") && len(node.Args) > 0 &&
				declaredOutside(pass, node.Args[0], rng) &&
				!sortedAfter(pass, fd, node.Args[0], rng.End()) {
				pass.Reportf(rng.Pos(),
					"map iteration feeds ordered output (append to %s); iterate a sorted key slice instead",
					types.ExprString(node.Args[0]))
				return false
			}
			if callee := calleeFunc(pass, node); callee != nil && isOrderedWriter(callee) {
				pass.Reportf(rng.Pos(),
					"map iteration feeds ordered output (%s.%s); iterate a sorted key slice instead",
					pkgBase(callee.Pkg().Path()), callee.Name())
				return false
			}
		case *ast.AssignStmt:
			if node.Tok != token.ADD_ASSIGN && node.Tok != token.SUB_ASSIGN &&
				node.Tok != token.MUL_ASSIGN {
				return true
			}
			for _, lhs := range node.Lhs {
				if isFloatExpr(pass, lhs) && declaredOutside(pass, lhs, rng) {
					pass.Reportf(rng.Pos(),
						"map iteration accumulates %s with floating-point %s (not associative; "+
							"sum order changes the bits); iterate a sorted key slice instead",
						types.ExprString(lhs), node.Tok)
					return false
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether the variable behind target is passed to a
// sort- or slices-package function after position after, still inside fd.
// That marks the collect-then-sort idiom as deterministic.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, target ast.Expr, after token.Pos) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || sorted {
			return !sorted
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if argID, ok := arg.(*ast.Ident); ok && pass.Info.Uses[argID] == obj {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// isOrderedWriter reports whether a callee emits ordered output: the fmt
// printers and Write* methods.
func isOrderedWriter(callee *types.Func) bool {
	if callee.Pkg() == nil {
		return false
	}
	if callee.Pkg().Path() == "fmt" && (strings.HasPrefix(callee.Name(), "Fprint") ||
		strings.HasPrefix(callee.Name(), "Print")) {
		return true
	}
	return strings.HasPrefix(callee.Name(), "Write") && recvTypeName(callee) != ""
}

// checkDetGoCollection flags goroutine bodies that append results into a
// slice owned by the spawner: the interleaving is scheduling order, so
// collected results come back shuffled.
func checkDetGoCollection(pass *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinCall(pass, call, "append") || len(call.Args) == 0 {
				continue
			}
			if i < len(asg.Lhs) && declaredOutside(pass, asg.Lhs[i], lit) &&
				declaredOutside(pass, call.Args[0], lit) {
				pass.Reportf(asg.Pos(),
					"goroutine appends results to shared %s; collection order is scheduling-dependent — "+
						"assign to an indexed slot or collect through an ordered channel",
					types.ExprString(asg.Lhs[i]))
			}
		}
		return true
	})
}

// declaredOutside reports whether the variable behind e is declared
// outside the syntactic region node (range statement, function literal),
// i.e. it outlives the loop or goroutine body. Selector expressions
// resolve to their field/receiver variable; non-variables return false.
func declaredOutside(pass *Pass, e ast.Expr, region ast.Node) bool {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[x]
		if obj == nil {
			obj = pass.Info.Defs[x]
		}
	case *ast.SelectorExpr:
		// A field or method of something: fields live with the struct,
		// which is conservatively "outside" for our purposes.
		return true
	case *ast.IndexExpr:
		// Indexed writes are the ordering discipline we ask for.
		return false
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < region.Pos() || v.Pos() > region.End()
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
