// Package analysis implements caer-vet, a repo-specific static analysis
// suite for the CAER runtime. The analyzers mechanically check invariants
// the Go compiler cannot express but the paper's correctness story depends
// on:
//
//   - shmaccess: the communication table (paper §3.2, Figure 4) is
//     single-writer-per-slot shared memory; its fields must only be touched
//     through the table API, and 64-bit atomically-accessed fields must be
//     8-byte aligned so 32-bit platforms do not tear.
//   - hotpath: the 1 ms sampling/detection loop must stay allocation- and
//     syscall-light, or the runtime's own overhead drowns the contention
//     signal it measures (the paper's §6 headline is <1% overhead).
//   - enumswitch: switches over reaction enums (comm.Directive and friends)
//     must be exhaustive — a default: that silently runs the batch
//     application is a contention-response bug.
//   - lockdiscipline: every Lock() needs a same-function Unlock, and errors
//     returned by this module's table/IO writes must not be silently
//     discarded.
//
// The suite is built entirely on the standard library (go/parser, go/ast,
// go/types); it deliberately takes no dependency on golang.org/x/tools so
// the repo stays self-contained. Findings can be suppressed with a
// documented comment:
//
//	//caer:allow <analyzer>[,<analyzer>...] [reason]
//
// which applies to the line it is written on and to the line directly
// below it (so it can trail the offending expression or sit above it).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic, positioned in the source tree.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding the way compilers do: file:line:col: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named invariant checker. Run inspects the package held by
// the Pass and reports findings through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Cfg      *Config

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full caer-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{ShmAccess, HotPath, EnumSwitch, LockDiscipline}
}

// AnalyzerNames returns the suite's analyzer names in stable order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// RunAnalyzers applies the given analyzers to one loaded package and
// returns the findings that survive //caer:allow suppression filtering.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, cfg *Config) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Cfg:      cfg,
			findings: &findings,
		}
		a.Run(pass)
	}
	findings = filterSuppressed(pkg, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// suppressionKey identifies one file line an allow comment covers.
type suppressionKey struct {
	file string
	line int
}

// collectSuppressions parses //caer:allow comments across the package. The
// returned map holds, per covered (file, line), the set of analyzer names
// allowed there. The wildcard name "all" suppresses every analyzer.
func collectSuppressions(pkg *Package) map[suppressionKey]map[string]bool {
	sup := make(map[suppressionKey]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//caer:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := suppressionKey{file: pos.Filename, line: line}
						if sup[k] == nil {
							sup[k] = make(map[string]bool)
						}
						sup[k][name] = true
					}
				}
			}
		}
	}
	return sup
}

// filterSuppressed drops findings covered by a //caer:allow comment.
func filterSuppressed(pkg *Package, findings []Finding) []Finding {
	sup := collectSuppressions(pkg)
	if len(sup) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		allowed := sup[suppressionKey{file: f.Pos.Filename, line: f.Pos.Line}]
		if allowed != nil && (allowed[f.Analyzer] || allowed["all"]) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// Vet loads every package named by dirs (absolute or modRoot-relative
// package directories) and runs the analyzers over each, returning all
// surviving findings sorted by position.
func Vet(modRoot, modPath string, dirs []string, analyzers []*Analyzer, cfg *Config) ([]Finding, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	cfg.ModulePath = modPath
	loader := NewLoader(modRoot, modPath)
	var all []Finding
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil { // no buildable Go files
			continue
		}
		all = append(all, RunAnalyzers(pkg, analyzers, cfg)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return all, nil
}
