// Package analysis implements caer-vet, a repo-specific static analysis
// suite for the CAER runtime. The analyzers mechanically check invariants
// the Go compiler cannot express but the paper's correctness story depends
// on:
//
//   - shmaccess: the communication table (paper §3.2, Figure 4) is
//     single-writer-per-slot shared memory; its fields must only be touched
//     through the table API, and 64-bit atomically-accessed fields must be
//     8-byte aligned so 32-bit platforms do not tear.
//   - hotpath: the 1 ms sampling/detection loop must stay allocation- and
//     syscall-light, or the runtime's own overhead drowns the contention
//     signal it measures (the paper's §6 headline is <1% overhead). Since
//     v2 the ban propagates transitively through the static call graph
//     from the inventoried roots, and findings carry the offending call
//     path.
//   - enumswitch: switches over reaction enums (comm.Directive and friends)
//     must be exhaustive — a default: that silently runs the batch
//     application is a contention-response bug.
//   - lockdiscipline: every Lock() needs a same-function Unlock, and errors
//     returned by this module's table/IO writes must not be silently
//     discarded.
//   - determinism: the simulation core and result-assembly paths must stay
//     bit-reproducible — no wall-clock reads, no process-global math/rand,
//     no map iteration feeding ordered output or order-sensitive
//     accumulators, no unordered goroutine result collection.
//   - goroutinelifecycle: every go statement needs a provable shutdown
//     edge (close of the channel it ranges over, a done-select that
//     returns, or sync.WaitGroup pairing).
//   - telemetrydiscipline: metric registration stays out of hot-path-
//     reachable code, and every registered family name must match the
//     spine inventory (DESIGN.md §10).
//   - suppression: //caer:allow comments must carry a reason, and (when
//     enabled) must actually suppress something.
//
// The suite is built entirely on the standard library (go/parser, go/ast,
// go/types); it deliberately takes no dependency on golang.org/x/tools so
// the repo stays self-contained. Findings can be suppressed with a
// documented comment:
//
//	//caer:allow <analyzer>[,<analyzer>...] <reason>
//
// which applies to the line it is written on and to the line directly
// below it (so it can trail the offending expression or sit above it).
// The reason is mandatory; stale suppressions are themselves findings
// under Config.ReportUnusedSuppressions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic, positioned in the source tree. Path,
// when non-empty, is the call chain from an inventoried hot-path root to
// the function containing the finding (hotpath v2, telemetrydiscipline).
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Path     []string
}

// String renders the finding the way compilers do: file:line:col: message,
// with the call path appended when present.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	if len(f.Path) > 0 {
		s += " [path: " + strings.Join(f.Path, " -> ") + "]"
	}
	return s
}

// Analyzer is one named invariant checker. Run inspects the package held by
// the Pass and reports findings through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer, together
// with the module-wide context the dataflow analyzers need.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Cfg      *Config

	// Graph is the static call graph over every package of the run (one
	// package in unit tests, the whole module under Vet).
	Graph *CallGraph
	// Hot maps every hot-path function (inventoried roots plus their
	// transitive static closure, minus cold barriers) to its label path
	// from a root. See CallGraph.HotSet.
	Hot map[*types.Func][]string

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportPathf records a finding carrying the hot-path call chain that
// makes the position hot.
func (p *Pass) ReportPathf(pos token.Pos, path []string, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Path:     path,
	})
}

// HotPathOf returns the root-to-fn call chain if fn is in the hot-path
// closure (nil otherwise). Roots map to a single-element path.
func (p *Pass) HotPathOf(fn *types.Func) []string {
	if p.Hot == nil {
		return nil
	}
	return p.Hot[fn]
}

// Suppression is the pseudo-analyzer that owns suppression-hygiene
// findings (missing reasons, stale allows). Its Run is a no-op: the
// driver emits its findings while filtering, where usage is known.
var Suppression = &Analyzer{
	Name: "suppression",
	Doc: "require //caer:allow comments to carry a reason, and report allows " +
		"that no longer suppress anything (stale suppressions accumulate risk)",
	Run: func(*Pass) {},
}

// Analyzers returns the full caer-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ShmAccess, HotPath, EnumSwitch, LockDiscipline,
		Determinism, GoroutineLifecycle, TelemetryDiscipline,
		Suppression,
	}
}

// AnalyzerNames returns the suite's analyzer names in stable order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// SelectAnalyzers resolves a comma-separated analyzer-name list against
// the suite. An empty selection returns the full suite.
func SelectAnalyzers(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return Analyzers(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q (have %s)",
				name, strings.Join(AnalyzerNames(), ", "))
		}
		seen[name] = true
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies the given analyzers to one loaded package and
// returns the findings that survive //caer:allow suppression filtering,
// plus any suppression-hygiene findings. The call graph is built over the
// single package; use VetPackages for whole-module (cross-package)
// propagation.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, cfg *Config) []Finding {
	return VetPackages([]*Package{pkg}, analyzers, cfg)
}

// VetPackages builds the static call graph over all packages, then runs
// every analyzer over every package with the shared graph and hot-path
// closure, applies suppression filtering, and returns the surviving
// findings sorted by position.
func VetPackages(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Finding {
	graph := BuildCallGraph(pkgs)
	hot := graph.HotSet(cfg)

	active := make(map[string]bool)
	for _, a := range analyzers {
		active[a.Name] = true
	}

	var all []Finding
	for _, pkg := range pkgs {
		var findings []Finding
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Cfg:      cfg,
				Graph:    graph,
				Hot:      hot,
				findings: &findings,
			})
		}
		sup := collectSuppressions(pkg)
		findings = filterSuppressed(sup, findings)
		if active[Suppression.Name] {
			findings = append(findings, suppressionFindings(sup, cfg, active)...)
		}
		all = append(all, findings...)
	}
	sortFindings(all)
	return all
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppression is one //caer:allow comment: the analyzers it names, its
// mandatory reason, the lines it covers, and whether it matched anything.
type suppression struct {
	pos       token.Position // the comment's own position
	analyzers map[string]bool
	reason    string
	used      bool
}

// covers reports whether the comment's scope includes (file, line): its
// own line and the line directly below.
func (s *suppression) covers(file string, line int) bool {
	return s.pos.Filename == file && (line == s.pos.Line || line == s.pos.Line+1)
}

// allows reports whether the comment waives findings from the analyzer.
func (s *suppression) allows(analyzer string) bool {
	return s.analyzers[analyzer] || s.analyzers["all"]
}

// collectSuppressions parses //caer:allow comments across the package.
func collectSuppressions(pkg *Package) []*suppression {
	var sups []*suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//caer:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				s := &suppression{
					pos:       pkg.Fset.Position(c.Pos()),
					analyzers: make(map[string]bool),
				}
				if len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						if name = strings.TrimSpace(name); name != "" {
							s.analyzers[name] = true
						}
					}
					s.reason = strings.Join(fields[1:], " ")
				}
				sups = append(sups, s)
			}
		}
	}
	return sups
}

// filterSuppressed drops findings covered by a //caer:allow comment and
// marks the comments that did the covering. Suppression-hygiene findings
// themselves cannot be suppressed.
func filterSuppressed(sups []*suppression, findings []Finding) []Finding {
	if len(sups) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, s := range sups {
			if s.covers(f.Pos.Filename, f.Pos.Line) && s.allows(f.Analyzer) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// suppressionFindings reports hygiene violations: a missing reason is
// always a finding; an allow that suppressed nothing is a finding under
// Config.ReportUnusedSuppressions, but only when every analyzer it names
// actually ran (so -analyzer subsets do not produce false staleness).
func suppressionFindings(sups []*suppression, cfg *Config, active map[string]bool) []Finding {
	fullSuite := true
	for _, name := range AnalyzerNames() {
		if !active[name] {
			fullSuite = false
			break
		}
	}
	var out []Finding
	for _, s := range sups {
		names := sortedNames(s.analyzers)
		if len(s.analyzers) == 0 || s.reason == "" {
			out = append(out, Finding{
				Analyzer: Suppression.Name,
				Pos:      s.pos,
				Message: "suppression needs a reason: //caer:allow <analyzer> <reason> " +
					"(an unexplained allow is unreviewable)",
			})
			continue
		}
		if !cfg.ReportUnusedSuppressions || s.used {
			continue
		}
		ranAll := true
		for name := range s.analyzers {
			if name == "all" {
				ranAll = ranAll && fullSuite
			} else if !active[name] {
				ranAll = false
			}
		}
		if !ranAll {
			continue
		}
		out = append(out, Finding{
			Analyzer: Suppression.Name,
			Pos:      s.pos,
			Message: fmt.Sprintf("unused suppression for %s: the allow no longer "+
				"matches any finding; delete it", strings.Join(names, ",")),
		})
	}
	return out
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Vet loads every package named by dirs (absolute or modRoot-relative
// package directories), builds the module-wide call graph, and runs the
// analyzers over each package, returning all surviving findings sorted by
// position.
func Vet(modRoot, modPath string, dirs []string, analyzers []*Analyzer, cfg *Config) ([]Finding, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	cfg.ModulePath = modPath
	loader := NewLoader(modRoot, modPath)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil { // no buildable Go files
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	return VetPackages(pkgs, analyzers, cfg), nil
}
