package analysis

import (
	"testing"
)

// TestVetRealTreeClean is the acceptance gate: the shipped tree must carry
// zero findings. Any new violation of the paper's invariants fails this
// test (and `go run ./cmd/caer-vet ./...` in make check).
func TestVetRealTreeClean(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	findings, err := Vet(root, path, dirs, Analyzers(), DefaultConfig())
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	for _, f := range findings {
		t.Errorf("real tree finding: %s", f)
	}
}

// TestVetSeededTreeFails is the inverse gate: over the seeded-violation
// testdata module, every analyzer must fire.
func TestVetSeededTreeFails(t *testing.T) {
	dirs, err := ExpandPatterns(testdataRoot(t), []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	findings, err := Vet(testdataRoot(t), "test", dirs, Analyzers(), DefaultConfig())
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	byAnalyzer := make(map[string]int)
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	for _, a := range Analyzers() {
		if byAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s reported nothing over the seeded tree", a.Name)
		}
	}
}

func testdataRoot(t *testing.T) string {
	t.Helper()
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	return root + "/internal/analysis/testdata/src"
}
