package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLifecycle requires every go statement to have a provable
// shutdown edge. The worker pool behind domain-parallel stepping (DESIGN.md
// §11) and the telemetry server must not leak goroutines across runs: a
// parked goroutine holds its stack, its channel, and — for pool workers —
// a reference to the whole machine. Three disciplines count as proof:
//
//  1. the spawned body ranges over a channel that some function in the
//     loaded packages closes (close(ch) on the same variable or field);
//  2. the spawned body contains a select with a receive case that
//     returns (the context/done pattern);
//  3. the spawned body calls Done() on a sync.WaitGroup that the spawning
//     function — or a call-graph caller of it — Waits on.
//
// Anything else (including go statements whose target the static graph
// cannot resolve) is a finding. A goroutine whose shutdown edge is real
// but outside these shapes — e.g. an http.Server goroutine that exits
// when its listener closes — takes a //caer:allow goroutinelifecycle with
// the reason documenting the edge.
var GoroutineLifecycle = &Analyzer{
	Name: "goroutinelifecycle",
	Doc: "require every go statement to have a provable shutdown edge: a closed " +
		"ranged channel, a done-select that returns, or WaitGroup pairing",
	Run: runGoroutineLifecycle,
}

func runGoroutineLifecycle(pass *Pass) {
	if pass.Graph == nil {
		return
	}
	closed := closedChannelObjects(pass.Graph)
	waits := waitGroupWaitSites(pass.Graph)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, g, fn, closed, waits)
				return true
			})
		}
	}
}

// spawnedBody resolves the function a go statement runs: a literal's own
// body, or the declaration of a statically-resolved callee. params maps
// the body's channel parameters back to the go call's arguments.
func spawnedBody(pass *Pass, g *ast.GoStmt) (body *ast.BlockStmt, params []*types.Var) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, objectsOf(pass, lit.Type.Params)
	}
	callee := calleeFunc(pass, g.Call)
	if callee == nil {
		return nil, nil
	}
	node := pass.Graph.Lookup(callee)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return nil, nil
	}
	return node.Decl.Body, objectsOfDecl(node.Pkg, node.Decl)
}

func objectsOf(pass *Pass, fields *ast.FieldList) []*types.Var {
	return fieldObjects(pass.Info, fields)
}

func objectsOfDecl(pkg *Package, fd *ast.FuncDecl) []*types.Var {
	return fieldObjects(pkg.Info, fd.Type.Params)
}

func fieldObjects(info *types.Info, fields *ast.FieldList) []*types.Var {
	if fields == nil {
		return nil
	}
	var out []*types.Var
	for _, f := range fields.List {
		for _, name := range f.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

func checkGoStmt(pass *Pass, g *ast.GoStmt, enclosing *types.Func,
	closed map[*types.Var]bool, waits map[*types.Var][]*Node) {

	body, params := spawnedBody(pass, g)
	if body == nil {
		pass.Reportf(g.Pos(),
			"go statement spawns a dynamically-resolved function; the analyzer cannot "+
				"prove a shutdown edge — spawn a declared function or a literal")
		return
	}
	if rangesOverClosedChannel(pass, g, body, params, closed) {
		return
	}
	if hasDoneSelectReturn(body) {
		return
	}
	if hasWaitGroupPairing(pass, g, body, enclosing, waits) {
		return
	}
	pass.Reportf(g.Pos(),
		"go statement has no provable shutdown edge (no close of its ranged channel, "+
			"no done-select that returns, no WaitGroup pairing); a leaked goroutine "+
			"outlives the run it was spawned for")
}

// rangesOverClosedChannel reports whether the spawned body ranges over a
// channel variable that the loaded packages provably close. Channel
// parameters are mapped back to the go call's argument expressions.
func rangesOverClosedChannel(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt,
	params []*types.Var, closed map[*types.Var]bool) bool {

	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		rng, isRange := n.(*ast.RangeStmt)
		if !isRange || ok {
			return !ok
		}
		tv, hasType := typeOfRangeX(pass, g, rng)
		if !hasType {
			return true
		}
		if _, isChan := tv.Underlying().(*types.Chan); !isChan {
			return true
		}
		v := channelVar(pass, g, rng.X)
		if v == nil {
			return true
		}
		// A parameter maps back to the argument at the spawn site.
		for i, p := range params {
			if p == v && i < len(g.Call.Args) {
				v = exprVar(pass, g.Call.Args[i])
				break
			}
		}
		if v != nil && closed[v] {
			ok = true
		}
		return !ok
	})
	return ok
}

// typeOfRangeX resolves the type of a range operand, trying the spawning
// package's info (covers literals and same-package declarations).
func typeOfRangeX(pass *Pass, g *ast.GoStmt, rng *ast.RangeStmt) (types.Type, bool) {
	if tv, ok := pass.Info.Types[rng.X]; ok && tv.Type != nil {
		return tv.Type, true
	}
	// The body may belong to a declaration in another loaded package;
	// find its info through the callee's node.
	if callee := calleeFunc(pass, g.Call); callee != nil {
		if node := pass.Graph.Lookup(callee); node != nil {
			if tv, ok := node.Pkg.Info.Types[rng.X]; ok && tv.Type != nil {
				return tv.Type, true
			}
		}
	}
	return nil, false
}

// channelVar resolves the variable or field behind a channel expression,
// looking in both the spawning package and the spawned declaration's
// package.
func channelVar(pass *Pass, g *ast.GoStmt, e ast.Expr) *types.Var {
	if v := exprVar(pass, e); v != nil {
		return v
	}
	if callee := calleeFunc(pass, g.Call); callee != nil {
		if node := pass.Graph.Lookup(callee); node != nil {
			return exprVarInfo(node.Pkg.Info, e)
		}
	}
	return nil
}

func exprVar(pass *Pass, e ast.Expr) *types.Var {
	return exprVarInfo(pass.Info, e)
}

// exprVarInfo resolves an identifier or field selector to its variable
// object.
func exprVarInfo(info *types.Info, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// hasDoneSelectReturn reports whether the body contains a select with a
// receive case whose clause returns — the context/done shutdown shape.
func hasDoneSelectReturn(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || found {
			return !found
		}
		for _, stmt := range sel.Body.List {
			clause, ok := stmt.(*ast.CommClause)
			if !ok || clause.Comm == nil || !isReceiveComm(clause.Comm) {
				continue
			}
			for _, s := range clause.Body {
				if _, isRet := s.(*ast.ReturnStmt); isRet {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isReceiveComm reports whether a select comm statement is a channel
// receive (bare, assigned, or declared).
func isReceiveComm(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		}
	}
	return false
}

// hasWaitGroupPairing reports whether the spawned body calls Done on a
// sync.WaitGroup that the spawning function, or a transitive caller of
// it, Waits on.
func hasWaitGroupPairing(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt,
	enclosing *types.Func, waits map[*types.Var][]*Node) bool {

	var doneVars []*types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if v := waitGroupVar(pass, g, sel.X); v != nil {
			doneVars = append(doneVars, v)
		}
		return true
	})
	if len(doneVars) == 0 {
		return false
	}

	// The functions whose Wait satisfies the pairing: the spawner itself
	// and everything that can reach it through the call graph.
	allowed := make(map[*types.Func]bool)
	if enclosing != nil {
		allowed[enclosing] = true
		if node := pass.Graph.Lookup(enclosing); node != nil {
			stack := []*Node{node}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, e := range n.In {
					if e.Kind == EdgeGo || allowed[e.From.Fn] {
						continue
					}
					allowed[e.From.Fn] = true
					stack = append(stack, e.From)
				}
			}
		}
	}
	for _, v := range doneVars {
		for _, waiter := range waits[v] {
			if allowed[waiter.Fn] {
				return true
			}
		}
	}
	return false
}

// waitGroupVar resolves x to a sync.WaitGroup variable or field, looking
// in the spawning package first, then the spawned declaration's package.
func waitGroupVar(pass *Pass, g *ast.GoStmt, x ast.Expr) *types.Var {
	v := exprVar(pass, x)
	if v == nil {
		if callee := calleeFunc(pass, g.Call); callee != nil {
			if node := pass.Graph.Lookup(callee); node != nil {
				v = exprVarInfo(node.Pkg.Info, x)
			}
		}
	}
	if v == nil || !isWaitGroup(v.Type()) {
		return nil
	}
	return v
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// closedChannelObjects collects every variable and field the loaded
// packages pass to close().
func closedChannelObjects(g *CallGraph) map[*types.Var]bool {
	closed := make(map[*types.Var]bool)
	for _, n := range g.Nodes() {
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "close" || len(call.Args) != 1 {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if v := exprVarInfo(info, call.Args[0]); v != nil {
				closed[v] = true
			}
			return true
		})
	}
	return closed
}

// waitGroupWaitSites collects, per WaitGroup variable, the functions that
// call Wait on it.
func waitGroupWaitSites(g *CallGraph) map[*types.Var][]*Node {
	waits := make(map[*types.Var][]*Node)
	for _, n := range g.Nodes() {
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Wait" {
				return true
			}
			v := exprVarInfo(info, sel.X)
			if v == nil || !isWaitGroup(v.Type()) {
				return true
			}
			waits[v] = append(waits[v], n)
			return true
		})
	}
	return waits
}
