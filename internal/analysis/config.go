package analysis

import (
	"go/types"
	"strings"
)

// Config parameterises the analyzers with the repo-specific inventories
// they check against. Entries use dotted keys built from the *last element*
// of the import path, so "comm.Slot.Publish" matches caer/internal/comm as
// well as a testdata package named comm.
//
//   - "Type.Method" matches the method on any package's Type.
//   - "pkg.Type.Method" additionally pins the package.
//   - "pkg.Func" / "Func" match package-level functions.
type Config struct {
	// ModulePath is the import path of the module under analysis; set by
	// Vet. lockdiscipline scopes its error-discard rule to functions
	// declared inside this module.
	ModulePath string

	// CommPackages lists final import-path elements treated as the
	// communication-table package (shared-memory owner).
	CommPackages []string

	// HotPathFuncs lists the per-period sampling/detection functions that
	// must stay allocation- and syscall-light (paper §6: <1% overhead).
	HotPathFuncs []string

	// AllocFuncs lists snapshot/copy APIs that allocate by contract and are
	// therefore banned inside hot-path functions.
	AllocFuncs []string

	// EnumTypes lists "pkg.Type" enums whose switches must be exhaustive.
	EnumTypes []string

	// EnumIgnorePrefixes lists constant-name prefixes excluded from
	// exhaustiveness (count sentinels like numEvents).
	EnumIgnorePrefixes []string

	// ColdFuncs are reviewed call-graph barriers: hot-path propagation
	// (CallGraph.HotSet) stops at these functions. Each entry marks a
	// function that a hot root calls but that is, by documented design,
	// off the per-period budget — one-time lazy setup, per-batch pool
	// handoff, or decision paths that rebuild state. Adding an entry is a
	// reviewed act, exactly like adding a //caer:allow.
	ColdFuncs []string

	// DeterministicPkgs lists final import-path elements whose entire
	// package must be bit-reproducible: the simulation core the byte-
	// identity gates (DESIGN.md §6, §11) depend on.
	DeterministicPkgs []string

	// DeterministicFuncs lists individual result-assembly functions
	// (dotted keys like HotPathFuncs) held to the same determinism rules
	// in packages that are otherwise free to read clocks — experiment
	// report paths and telemetry exporters whose output is diffed.
	DeterministicFuncs []string

	// MetricNames is the telemetry family inventory (DESIGN.md §10's
	// registry table): every name passed to a telemetry registration
	// call must appear here, so the spine and the docs cannot drift.
	MetricNames []string

	// ReportUnusedSuppressions turns stale //caer:allow comments into
	// findings (the -unused-suppressions flag; on in CI).
	ReportUnusedSuppressions bool
}

// DefaultConfig returns the inventory for this repository: the CAER hot
// path (engine/monitor ticks, detector steps, responder reactions, table
// publish/read), the reaction enums, and the comm shared-memory package.
func DefaultConfig() *Config {
	return &Config{
		CommPackages: []string{"comm"},
		HotPathFuncs: []string{
			// Engine: per-period detect/respond state machine (Figure 5).
			"caer.Engine.Tick", "caer.Engine.finishTick",
			"caer.Engine.OwnMean", "caer.Engine.NeighborMean", "caer.Engine.LastNeighbor",
			// CAER-M monitor probe (TickSpan is the span-normalizing core
			// Tick delegates to).
			"caer.Monitor.Tick", "caer.Monitor.TickSpan",
			// Detection heuristics (Algorithms 1 and 2).
			"caer.ShutterDetector.Step", "caer.RuleDetector.Step",
			"caer.RandomDetector.Step", "caer.HybridDetector.Step",
			// Responses (§5).
			"caer.RedLightGreenLight.React", "caer.RedLightGreenLight.Hold",
			"caer.SoftLock.React", "caer.SoftLock.Hold",
			// Bounded decision log, appended every verdict.
			"caer.EventLog.Append",
			// Whole-deployment period step plus its sampling-schedule
			// helpers: the probe pipeline, the schedule advance, the quiet
			// check, and the cadence declaration all run inside Step.
			"caer.Runtime.Step", "caer.Runtime.probe", "caer.Runtime.afterProbe",
			"caer.Runtime.quiet", "caer.Runtime.declareCadence",
			"caer.Runtime.sleep", "caer.Runtime.wake",
			// Adaptive-sampling interval controller, folded in per probe.
			"caer.IntervalController.Observe", "caer.IntervalController.Interval",
			"caer.Engine.Idle",
			// Communication table publish/read (Figure 4), plus the per-period
			// liveness protocol the engine watchdog consumes.
			"comm.Slot.Publish", "comm.Slot.PublishWithCadence",
			"comm.Slot.DeclareCadence",
			"comm.Slot.Directive", "comm.Slot.SetDirective",
			"comm.Slot.LastSample", "comm.Slot.WindowMean",
			"comm.Slot.Seq", "comm.Slot.StalePeriods",
			"comm.Table.BroadcastDirective", "comm.Table.BumpPeriod",
			"comm.ShmTable.Publish", "comm.ShmTable.PublishCadence",
			"comm.ShmTable.DeclareCadence", "comm.ShmTable.WindowMean",
			"comm.ShmTable.DirectiveOf", "comm.ShmTable.SetDirective",
			"comm.ShmTable.Published",
			"comm.ShmTable.StalePeriods", "comm.ShmTable.BumpPeriod",
			// Watchdog staleness scan, run every engine tick.
			"caer.Engine.maxNeighborStale",
			// Sliding-window primitives consumed every period.
			"stats.Window.Push", "stats.Window.Mean", "stats.Window.MeanRange",
			"stats.Window.At", "stats.Window.Last",
			// PMU read-and-restart probes, the per-period sampler sweep, and
			// the interrupt-mode threshold check (one per sleeping period).
			"pmu.PMU.ReadDelta", "pmu.PMU.Peek", "pmu.Sampler.Probe",
			"pmu.Threshold.Check",
			// Simulated hardware counter read feeding the PMU.
			"machine.Machine.ReadCounter",
			// Machine period loop: the cycle-stepping core every mode drives.
			// dispatch/domainWorker are deliberately NOT inventoried — the
			// pool's channel handoff is paid once per batch, not per access.
			"machine.Machine.RunPeriod", "machine.Machine.RunPeriods",
			"machine.Machine.stepDomain", "machine.Machine.runSlice",
			// Memory-hierarchy access path, executed per simulated reference
			// (the profiler's top of the whole simulator).
			"mem.Cache.Lookup", "mem.Cache.Insert", "mem.Cache.Refresh",
			"mem.Cache.Invalidate", "mem.Cache.Contains",
			"mem.Hierarchy.Access", "mem.MainMemory.Access",
			"mem.lruPolicy.Touch", "mem.lruPolicy.Victim",
			// Partition-aware victim path (DESIGN.md §16): the per-owner
			// mask lookup runs on every Insert, confined victim scans on
			// every confined miss, and the mask helpers they call.
			"mem.Cache.maskOf", "mem.lruPolicy.VictimMask",
			"mem.plruPolicy.VictimMask", "mem.plruPolicy.victimFull",
			"mem.randomPolicy.VictimMask",
			"mem.WayMask.Has", "mem.WayMask.Count", "mem.WayMask.NthWay",
			// Contention classifier: per-period profile updates and the
			// score reads the placement scorer calls per queue decision.
			"sched.Classifier.Observe", "sched.Classifier.ObserveVerdict",
			"sched.Classifier.Aggressiveness", "sched.Classifier.Sensitivity",
			// Scheduler per-period loop. Decision-taking paths (admitTo,
			// finishJobs, maybeMigrate) record decisions and rebuild
			// engines — they allocate by design and are NOT hot.
			"sched.Scheduler.Step", "sched.Scheduler.observePeriod",
			"sched.Scheduler.tickEngines", "sched.Scheduler.applyDirectives",
			"sched.Scheduler.fillViews", "sched.Scheduler.ageQueue",
			// Partition response per-period loop (DESIGN.md §16): the
			// verdict-pressure fold, allocation-free cluster re-score, and
			// want/applied mask reconciliation. The actual resize
			// (resizePartition) is the documented cold barrier.
			"sched.Scheduler.applyPartitions", "sched.Clusterer.Rescore",
			"sched.PlanClusters", "sched.Classify", "sched.ClusterPlan.MaskFor",
			// Per-core partition actuator for plain CAER deployments: the
			// steady state is one compare per directive re-application.
			"caer.PartitionActuator.Actuate",
			// Telemetry spine: the pre-registered handles every hot function
			// above calls into, plus the span recorder. They must stay pure
			// atomics — the observability layer cannot be allowed to perturb
			// the 1 ms loop it reports on.
			"telemetry.Counter.Inc", "telemetry.Counter.Add",
			"telemetry.Gauge.Set", "telemetry.Histogram.Observe",
			"telemetry.SpanRecorder.Record",
			// Engine span-closing helpers, called from Tick every period.
			"caer.Engine.recordHoldSpan", "caer.Engine.recordShutterSpan",
			// Fleet per-period loop (DESIGN.md §14): the cluster tick, the
			// bounded dispatch scan, the placement-view refresh, the
			// completion harvest, and the drain check. Arrival
			// materialization, dispatch commit, migration, and request
			// relaunch are the documented cold barriers.
			"fleet.Cluster.Tick", "fleet.Cluster.dispatch",
			"fleet.Cluster.fillViews", "fleet.Cluster.harvest",
			"fleet.Cluster.Done",
			// Cross-machine placers, invoked once per dispatch attempt.
			"fleet.roundRobinPlacer.Place", "fleet.leastPressurePlacer.Place",
			"fleet.packedPlacer.Place", "fleet.interferenceScore",
			"fleet.NodeView.eligible",
			// Open-loop traffic driver, sampled every fleet tick.
			"fleet.driver.rate", "fleet.driver.arrivals", "fleet.driver.exhausted",
			// Fleet admission-queue ring ops on the dispatch path.
			"fleet.fifo.len", "fleet.fifo.peek", "fleet.fifo.pop",
			// Scheduler accessors the fleet loop polls every period: the
			// in-place classifier summary refill and the per-job state
			// reads behind harvest.
			"sched.Scheduler.Summarize", "sched.Scheduler.QueueLen",
			"sched.Scheduler.JobStateOf", "sched.Scheduler.JobAdmittedPeriod",
			"sched.Scheduler.AppAggressiveness",
			// Mergeable-histogram accumulation on the harvest path.
			"stats.Histogram.Add",
			// Time-series ring: the per-period sample sweep and the windowed
			// queries the SLO engine runs every evaluation (DESIGN.md §15).
			// Ring growth (extend) is the documented amortized cold barrier.
			"telemetry.Series.Sample", "telemetry.Series.sampleTrack",
			"telemetry.Series.clampWindow",
			"telemetry.Series.RateAt", "telemetry.Series.Rate",
			"telemetry.Series.MeanAt", "telemetry.Series.Mean",
			"telemetry.Series.OverShareAt", "telemetry.Series.OverShare",
			// SLO burn-rate engine, evaluated once per node tick.
			"slo.Engine.Evaluate", "slo.Engine.step", "slo.burnAt",
			// Per-tick node telemetry sync (series sample + SLO eval) and the
			// metrics-fed placer's scoring path.
			"fleet.Node.syncTelemetry", "fleet.Cluster.fillTelViews",
			"fleet.telState.fresh", "fleet.telemetryPlacer.Place",
			"fleet.telemetryScore",
			// Scheduler accessors the node telemetry sync polls per period.
			"sched.Scheduler.LatencySignals", "sched.Scheduler.DegradedTicks",
			"sched.Scheduler.LatencyApps",
		},
		AllocFuncs: []string{
			"Slot.Samples", "ShmTable.Samples", "Window.Snapshot",
			"Table.Slots", "Table.SlotsByRole", "EventLog.Events",
			"SpanRecorder.Spans", "SpanRecorder.ChromeEvents",
			"Registry.WritePrometheus", "Histogram.Snapshot",
			"Series.Tracks", "Series.WindowHistogramAt",
			"Series.QuantileOverAt", "Series.QuantileOver",
			"Series.WriteDump",
		},
		EnumTypes: []string{
			"comm.Directive", "comm.Role",
			"caer.Verdict", "caer.HeuristicKind", "caer.EventKind",
			"caer.SamplingMode",
			"pmu.Event", "runner.Mode", "spec.Sensitivity",
			"experiments.FaultKind",
			"sched.Policy", "sched.JobState", "sched.DecisionKind",
			"sched.ResponseKind", "sched.ClusterKind", "mem.ResizeMode",
			"fleet.Policy", "fleet.JobState", "fleet.Curve",
			"fleet.DecisionKind",
			"slo.ObjectiveKind", "slo.AlertState",
			"telemetry.MetricKind", "telemetry.SpanKind",
			"analysis.EdgeKind",
		},
		EnumIgnorePrefixes: []string{"num"},
		ColdFuncs: []string{
			// One-time lazy deployment build inside the first Step; every
			// period after it is a cheap started-flag check.
			"caer.Runtime.start",
			// Worker-pool handoff: the channel ops are the price of
			// domain parallelism, paid once per dispatched batch of
			// periods, not per memory access (DESIGN.md §11).
			"machine.Machine.dispatch", "machine.Machine.domainWorker",
			// One-time lazy deployment build inside the scheduler's first
			// Step, mirroring caer.Runtime.start.
			"sched.Scheduler.start",
			// Scheduler decision paths: they record decisions, rebuild
			// engines, and log — allocating by documented design; the
			// per-period observe/tick/apply loop around them is hot.
			"sched.Scheduler.admitTo", "sched.Scheduler.finishJobs",
			"sched.Scheduler.maybeMigrate",
			// Fleet barriers mirroring sched's one level up: arrival
			// materializes job records, the dispatch commit registers a comm
			// slot and names a span track, migration withdraws and
			// re-dispatches, and the request relaunch reseeds the service
			// process — all allocating by documented design (fleet.go's
			// hot/cold split).
			"fleet.Cluster.arrive", "fleet.Cluster.dispatchTo",
			"fleet.Cluster.maybeMigrate", "fleet.Cluster.finishRequest",
			// Amortized scrape barrier: runs once every ScrapePeriod ticks
			// and parses/derives whole text snapshots by documented design
			// (DESIGN.md §15's pull model); the per-tick loop around it is
			// hot.
			"fleet.Cluster.scrapeAll",
			// Series ring growth: amortized doubling when a registry gains
			// tracks, never on the steady-state sample path.
			"telemetry.Series.extend",
			// Partition resizes are control-plane operations (DESIGN.md
			// §16): mask installation walks the whole cache in invalidate
			// mode and may allocate the dropped-line slice; the per-period
			// loop only reaches them when a cluster plan actually changes.
			"mem.Cache.SetOwnerMask", "mem.Cache.StrandedLines",
			"mem.Hierarchy.SetL3OwnerMask",
			"sched.Scheduler.resizePartition",
			"caer.PartitionActuator.resize",
		},
		DeterministicPkgs: []string{"machine", "mem", "sched", "caer", "fleet"},
		DeterministicFuncs: []string{
			// Telemetry exporters whose output lands in diffed artifacts.
			"telemetry.SpanRecorder.ChromeEvents",
			// Experiment result assembly feeding BENCH_*.json byte-identity
			// gates (DESIGN.md §11).
			"experiments.SchedRegime.Table", "experiments.SchedRegime.WriteJSON",
			"experiments.PerfReport.Table", "experiments.PerfReport.WriteJSON",
			"experiments.SamplingReport.Table", "experiments.SamplingReport.WriteJSON",
			"experiments.FleetRegime.Table", "experiments.FleetRegime.WriteJSON",
			"experiments.SLORegime.Table", "experiments.SLORegime.WriteJSON",
			"experiments.PartitionRegime.Table", "experiments.PartitionRegime.WriteJSON",
			"experiments.marshalComparable",
		},
		MetricNames: []string{
			"caer_pmu_reads_total", "caer_pmu_rearms_total", "caer_pmu_probes_total",
			"caer_pmu_probes_skipped_total", "caer_pmu_trigger_fires_total",
			"caer_pmu_faults_total",
			"caer_comm_publishes_total", "caer_comm_broadcasts_total",
			"caer_comm_staleness_periods", "caer_comm_period",
			"caer_engine_ticks_total", "caer_engine_verdicts_total",
			"caer_engine_holds_total", "caer_engine_hold_periods",
			"caer_engine_directive_changes_total", "caer_engine_paused_periods_total",
			"caer_engine_watchdog_trips_total", "caer_engine_degraded_ticks_total",
			"caer_engine_log_dropped_total",
			"caer_engine_mode", "caer_sampling_interval",
			"caer_core_pressure", "caer_core_directive", "caer_core_degraded",
			"caer_sched_admissions_total", "caer_sched_aged_bypasses_total",
			"caer_sched_vetoes_total", "caer_sched_migrations_total",
			"caer_sched_completions_total", "caer_sched_class_flips_total",
			"caer_sched_queue_depth", "caer_sched_running",
			"caer_part_plans_total", "caer_part_resizes_total",
			"caer_part_lines_invalidated_total", "caer_part_orphans_total",
			"caer_part_protected_ways", "caer_part_confined_ways",
			"caer_part_pressure",
			"caer_runner_runs_total", "caer_runner_relaunches_total",
			"caer_runner_periods_total",
			"caer_telemetry_ops_total", "caer_telemetry_spans_total",
			"caer_telemetry_spans_dropped_total",
			"caer_fleet_ticks_total", "caer_fleet_arrivals_total",
			"caer_fleet_dispatches_total", "caer_fleet_migrations_total",
			"caer_fleet_completions_total", "caer_fleet_requests_total",
			"caer_fleet_queue_depth",
			"caer_fleet_node_dispatches_total", "caer_fleet_node_completions_total",
			"caer_fleet_node_withdrawals_total", "caer_fleet_node_queue_depth",
			"caer_fleet_node_sojourn_periods",
			"caer_fleet_node_free_cores", "caer_fleet_node_sensitivity",
			"caer_fleet_node_batch_load", "caer_fleet_node_degraded_ticks_total",
			"caer_fleet_request_latency_periods",
			"caer_series_samples_total", "caer_series_tracks",
			"caer_slo_state", "caer_slo_burn_fast", "caer_slo_burn_slow",
			"caer_slo_alerts_total", "caer_slo_evals_total",
		},
	}
}

// pkgBase returns the last element of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsCommPackage reports whether the import path is a communication-table
// package.
func (c *Config) IsCommPackage(path string) bool {
	base := pkgBase(path)
	for _, p := range c.CommPackages {
		if base == p {
			return true
		}
	}
	return false
}

// matchList reports whether any candidate key appears in list.
func matchList(list []string, candidates ...string) bool {
	for _, e := range list {
		for _, cand := range candidates {
			if e == cand {
				return true
			}
		}
	}
	return false
}

// funcKeys builds the dotted match keys for a function: with a receiver
// type name the keys are "pkg.Type.Name" and "Type.Name", otherwise
// "pkg.Name" and "Name".
func funcKeys(pkgPath, recv, name string) []string {
	base := pkgBase(pkgPath)
	if recv != "" {
		return []string{base + "." + recv + "." + name, recv + "." + name}
	}
	return []string{base + "." + name, name}
}

// IsHotPathFunc reports whether the (package, receiver type, name) triple
// names a hot-path function.
func (c *Config) IsHotPathFunc(pkgPath, recv, name string) bool {
	return matchList(c.HotPathFuncs, funcKeys(pkgPath, recv, name)...)
}

// IsAllocFunc reports whether the function is a known allocating
// snapshot/copy API.
func (c *Config) IsAllocFunc(pkgPath, recv, name string) bool {
	return matchList(c.AllocFuncs, funcKeys(pkgPath, recv, name)...)
}

// IsColdFunc reports whether the function is a reviewed hot-path
// propagation barrier.
func (c *Config) IsColdFunc(pkgPath, recv, name string) bool {
	return matchList(c.ColdFuncs, funcKeys(pkgPath, recv, name)...)
}

// IsDeterministicPkg reports whether the whole package is held to the
// determinism rules.
func (c *Config) IsDeterministicPkg(pkgPath string) bool {
	base := pkgBase(pkgPath)
	for _, p := range c.DeterministicPkgs {
		if base == p {
			return true
		}
	}
	return false
}

// IsDeterministicFunc reports whether the individual function is held to
// the determinism rules.
func (c *Config) IsDeterministicFunc(pkgPath, recv, name string) bool {
	return matchList(c.DeterministicFuncs, funcKeys(pkgPath, recv, name)...)
}

// IsMetricName reports whether a telemetry family name is in the spine
// inventory.
func (c *Config) IsMetricName(name string) bool {
	for _, n := range c.MetricNames {
		if n == name {
			return true
		}
	}
	return false
}

// IsEnumType reports whether the named type is one of the
// exhaustiveness-checked enums.
func (c *Config) IsEnumType(pkgPath, name string) bool {
	return matchList(c.EnumTypes, pkgBase(pkgPath)+"."+name, name)
}

// isSentinelConst reports whether a constant name is a count sentinel
// excluded from exhaustiveness.
func (c *Config) isSentinelConst(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range c.EnumIgnorePrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// InModule reports whether a package path belongs to the analyzed module.
func (c *Config) InModule(pkgPath string) bool {
	return c.ModulePath != "" &&
		(pkgPath == c.ModulePath || strings.HasPrefix(pkgPath, c.ModulePath+"/"))
}

// recvTypeName extracts the bare receiver type name of a method
// declaration ("Engine" from func (e *Engine) Tick...), or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
