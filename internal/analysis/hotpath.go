package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath keeps the per-period sampling/detection loop allocation- and
// syscall-light. The paper's 1 ms sampling period and <1% overhead budget
// (§6) leave no room for garbage-collector pressure or kernel round-trips
// inside the functions that run every period: the engine tick, the monitor
// probe, detector steps, responder reactions, and the table publish/read
// operations. The function inventory lives in Config.HotPathFuncs;
// arguments of panic calls are exempt (terminal paths are off-budget).
//
// v2: the ban propagates transitively. A function two static calls below
// an inventoried root runs every period just the same, so the analyzer
// checks the whole hot closure (CallGraph.HotSet: static, defer, and
// conservative interface edges; go edges and reviewed Config.ColdFuncs
// barriers stop the walk) and reports the call path that makes a finding
// hot.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "flag allocations, fmt/time/os/syscall calls, map and channel operations, " +
		"and calls to allocating snapshot APIs in the per-period hot path and " +
		"everything the call graph proves reachable from it",
	Run: runHotPath,
}

// hotBannedPkgs maps import paths banned in the hot path to the reason.
var hotBannedPkgs = map[string]string{
	"fmt":     "formats and allocates",
	"os":      "performs syscalls",
	"syscall": "performs syscalls",
	"io":      "may block on I/O",
	"log":     "formats, allocates, and writes",
	"time":    "reads the clock via the runtime/VDSO",
}

func runHotPath(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if pass.Cfg.IsHotPathFunc(pass.Pkg.Path(), recvTypeName(fn), fn.Name()) {
				// Inventoried root: findings carry no path prefix.
				checkHotBody(pass, fd, nil)
			} else if path := pass.HotPathOf(fn); len(path) > 1 {
				// Transitively hot: reached from a root through the call
				// graph; findings name the chain that makes them hot.
				checkHotBody(pass, fd, path)
			}
		}
	}
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl, path []string) {
	report := func(pos token.Pos, format string, args ...any) {
		pass.ReportPathf(pos, path, format, args...)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pass, node, "panic") {
				// A panicking hot path is already terminal; its message
				// formatting is off-budget.
				return false
			}
			checkHotCall(pass, node, report)
		case *ast.CompositeLit:
			checkHotCompositeLit(pass, node, report)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := node.X.(*ast.CompositeLit); ok {
					report(node.Pos(), "heap allocation (&composite literal) in hot path")
				}
			}
			if node.Op == token.ARROW {
				report(node.Pos(), "channel receive in hot path may block the sampling period")
			}
		case *ast.BinaryExpr:
			// Constant-folded concatenations cost nothing at run time.
			if node.Op == token.ADD && isStringType(pass, node) &&
				pass.Info.Types[node].Value == nil {
				report(node.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.IndexExpr:
			if isMapType(pass, node.X) {
				report(node.Pos(), "map access in hot path (hashing, possible growth)")
			}
		case *ast.RangeStmt:
			if isMapType(pass, node.X) {
				report(node.Pos(), "map iteration in hot path (randomized, allocates iterator state)")
			}
		case *ast.SendStmt:
			report(node.Pos(), "channel send in hot path may block the sampling period")
		case *ast.GoStmt:
			report(node.Pos(), "goroutine spawn in hot path allocates a stack every period")
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	// Builtins that allocate or touch maps.
	for _, b := range []string{"make", "new", "append"} {
		if isBuiltinCall(pass, call, b) {
			report(call.Pos(), "%s() allocates in hot path", b)
			return
		}
	}
	if isBuiltinCall(pass, call, "delete") {
		report(call.Pos(), "map delete in hot path")
		return
	}
	for _, b := range []string{"print", "println"} {
		if isBuiltinCall(pass, call, b) {
			report(call.Pos(), "%s writes to stderr in hot path", b)
			return
		}
	}

	// Conversions between string and byte/rune slices copy.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isStringByteConversion(tv.Type, pass.Info.Types[call.Args[0]].Type) {
			report(call.Pos(), "string/[]byte conversion copies in hot path")
			return
		}
	}

	// Calls into banned packages and allocating snapshot APIs.
	callee := calleeFunc(pass, call)
	if callee == nil {
		return
	}
	if callee.Pkg() != nil {
		if reason, banned := hotBannedPkgs[callee.Pkg().Path()]; banned {
			report(call.Pos(), "call to %s.%s in hot path (%s)",
				pkgBase(callee.Pkg().Path()), callee.Name(), reason)
			return
		}
		if pass.Cfg.IsAllocFunc(callee.Pkg().Path(), recvTypeName(callee), callee.Name()) {
			recv := recvTypeName(callee)
			if recv != "" {
				recv += "."
			}
			report(call.Pos(),
				"call to allocating snapshot API %s%s in hot path; iterate in place instead",
				recv, callee.Name())
		}
	}
}

func checkHotCompositeLit(pass *Pass, lit *ast.CompositeLit, report func(token.Pos, string, ...any)) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		report(lit.Pos(), "slice literal allocates in hot path")
	case *types.Map:
		report(lit.Pos(), "map literal allocates in hot path")
	}
}

// isBuiltinCall reports whether call invokes the named Go builtin.
func isBuiltinCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// calleeFunc resolves the called function or method object, or nil for
// indirect calls and type conversions.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isStringType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMapType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isStringByteConversion reports whether a conversion crosses between
// string and []byte/[]rune (which copies the data).
func isStringByteConversion(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isStringy(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringy(from))
}

func isStringy(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
