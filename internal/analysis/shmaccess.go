package analysis

import (
	"go/ast"
	"go/types"
)

// ShmAccess guards the communication table's shared-memory discipline
// (paper §3.2, Figure 4): each slot's sample ring is single-writer, so all
// access from outside the comm package must go through the table API, and
// any field accessed with 64-bit sync/atomic operations must sit at an
// 8-byte-aligned offset (on 32-bit platforms Go only guarantees 4-byte
// struct alignment; a misaligned 64-bit atomic faults or tears).
var ShmAccess = &Analyzer{
	Name: "shmaccess",
	Doc: "flag direct field access to communication-table types outside the comm package, " +
		"and 64-bit atomic fields whose struct layout does not guarantee 8-byte alignment",
	Run: runShmAccess,
}

func runShmAccess(pass *Pass) {
	inComm := pass.Cfg.IsCommPackage(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				if !inComm {
					checkCommFieldAccess(pass, node)
				}
			case *ast.CompositeLit:
				if !inComm {
					checkCommLiteral(pass, node)
				}
			case *ast.CallExpr:
				checkAtomic64Alignment(pass, node)
			}
			return true
		})
	}
}

// checkCommFieldAccess flags x.field where field is declared on a comm
// package type and the access happens outside comm: table state is shared
// memory with a single-writer contract that only the comm API maintains.
func checkCommFieldAccess(pass *Pass, sel *ast.SelectorExpr) {
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	obj := s.Obj()
	if obj.Pkg() == nil || !pass.Cfg.IsCommPackage(obj.Pkg().Path()) {
		return
	}
	owner := namedTypeName(s.Recv())
	pass.Reportf(sel.Sel.Pos(),
		"direct access to communication-table field %s.%s outside the comm package; "+
			"the table is single-writer shared memory — use the table API",
		owner, obj.Name())
}

// checkCommLiteral flags composite literals of comm struct types built
// outside comm: hand-rolled table state skips the invariants the
// constructors establish.
func checkCommLiteral(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pass.Cfg.IsCommPackage(obj.Pkg().Path()) {
		return
	}
	pass.Reportf(lit.Pos(),
		"composite literal of communication-table type %s outside the comm package; "+
			"construct table state through the comm constructors", obj.Name())
}

// sizes32 models a 32-bit platform (gc toolchain, GOARCH=386), the
// pessimistic layout for 64-bit atomic alignment.
var sizes32 = types.SizesFor("gc", "386")

// atomic64Funcs are the sync/atomic package-level operations that require
// 8-byte alignment of their operand.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// checkAtomic64Alignment flags atomic.XxxInt64(&s.f, ...) when f's offset
// within its struct is not a multiple of 8 under 32-bit layout rules. The
// atomic.Int64/Uint64 wrapper types are exempt: they embed align64 and the
// runtime guarantees their alignment.
func checkAtomic64Alignment(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomic64Funcs[sel.Sel.Name] {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	addr, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok {
		return
	}
	fieldSel, ok := addr.X.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := pass.Info.Selections[fieldSel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	off, structName, ok := fieldOffset32(s)
	if !ok || off%8 == 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"64-bit atomic access to %s.%s at offset %d: not 8-byte aligned on 32-bit platforms; "+
			"move the field to the front of %s or pad before it",
		structName, s.Obj().Name(), off, structName)
}

// fieldOffset32 computes the byte offset of the selected field from the
// start of its outermost struct under 32-bit layout, following the
// selection's embedded-field index path.
func fieldOffset32(s *types.Selection) (offset int64, structName string, ok bool) {
	t := s.Recv()
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	if n, okn := t.(*types.Named); okn {
		structName = n.Obj().Name()
		t = n.Underlying()
	}
	for _, idx := range s.Index() {
		st, oks := t.Underlying().(*types.Struct)
		if !oks || idx >= st.NumFields() {
			return 0, structName, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fields[i] = st.Field(i)
		}
		offset += sizes32.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
	}
	return offset, structName, true
}

// namedTypeName returns the bare name of t's named type (through one
// pointer), or the type string as a fallback.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
