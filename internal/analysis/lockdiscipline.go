package analysis

import (
	"go/ast"
	"go/types"
)

// LockDiscipline enforces two rules the table's concurrency story rests
// on:
//
//  1. A function that takes a sync.Mutex/RWMutex lock must contain a
//     matching Unlock (directly or deferred) on the same receiver
//     expression. A Lock() that escapes the function relies on a remote
//     unlock the analyzer — and the next maintainer — cannot see, and a
//     forgotten one wedges every publisher sharing the slot.
//  2. An error returned by a function declared in this module must not be
//     discarded as a bare statement: table/directive writes and shm
//     teardown report corruption through those errors. Deferred cleanup
//     calls are exempt (conventionally best-effort), and an explicit
//     `_ = f()` documents intent and is accepted.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "flag Lock() without a same-function Unlock, and discarded errors " +
		"from this module's functions",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockPairs(pass, fd)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if stmt, ok := n.(*ast.ExprStmt); ok {
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					checkDiscardedError(pass, call)
				}
			}
			return true
		})
	}
}

// lockSite records one Lock()/RLock() call awaiting its unlock.
type lockSite struct {
	pos    ast.Node
	method string // "Lock" or "RLock"
}

// unlockFor maps the lock method to its releasing counterpart.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkLockPairs verifies that each mutex locked in fd is also unlocked in
// fd, keyed by the printed receiver expression (s.mu, t.mu, ...).
func checkLockPairs(pass *Pass, fd *ast.FuncDecl) {
	locks := make(map[string][]lockSite) // recv expr + method -> sites
	unlocked := make(map[string]bool)    // recv expr + method
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if !isSyncLockMethod(pass, sel, name) {
			return true
		}
		recv := types.ExprString(sel.X)
		switch name {
		case "Lock", "RLock":
			locks[recv+"/"+name] = append(locks[recv+"/"+name], lockSite{pos: call, method: name})
		case "Unlock", "RUnlock":
			unlocked[recv+"/"+name] = true
		}
		return true
	})
	for key, sites := range locks {
		recv := key[:len(key)-len("/"+sites[0].method)]
		want := unlockFor[sites[0].method]
		if unlocked[recv+"/"+want] {
			continue
		}
		for _, site := range sites {
			pass.Reportf(site.pos.Pos(),
				"%s.%s() without a matching %s in the same function; "+
					"a lock that escapes the function wedges every publisher sharing it",
				recv, site.method, want)
		}
	}
}

// isSyncLockMethod reports whether sel.Sel resolves to a lock-family
// method of sync.Mutex/sync.RWMutex (including promoted embeds).
func isSyncLockMethod(pass *Pass, sel *ast.SelectorExpr, name string) bool {
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// checkDiscardedError flags `f(...)` statements whose callee is declared
// in the analyzed module and returns an error (alone or as the last of
// several results).
func checkDiscardedError(pass *Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass, call)
	if callee == nil || callee.Pkg() == nil || !pass.Cfg.InModule(callee.Pkg().Path()) {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return
	}
	recv := recvTypeName(callee)
	if recv != "" {
		recv += "."
	}
	pass.Reportf(call.Pos(),
		"error returned by %s%s is discarded; handle it or assign to _ explicitly",
		recv, callee.Name())
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
