// Package telemetry is a testdata stand-in for the telemetry spine: its
// hot-path handles (Counter.Inc, Gauge.Set, Histogram.Observe,
// SpanRecorder.Record) match the hotpath analyzer's default inventory, and
// its MetricKind/SpanKind enums are exhaustiveness-checked.
package telemetry

import "fmt"

type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

type SpanKind int32

const (
	SpanProbe SpanKind = iota
	SpanDetect
	numSpanKinds
)

var _ = numSpanKinds

// Registry hands out metric handles; in the real spine its methods lock,
// allocate, and dedup, so the discipline analyzer treats them as
// registration calls.
type Registry struct {
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

func (r *Registry) Counter(name string) *Counter     { return r.counter }
func (r *Registry) Gauge(name string) *Gauge         { return r.gauge }
func (r *Registry) Histogram(name string) *Histogram { return r.histogram }

// NewSpanRecorder is the registration-shaped constructor the discipline
// analyzer also recognizes.
func NewSpanRecorder(capacity int) *SpanRecorder {
	return &SpanRecorder{ring: make([]Span, capacity)}
}

type Counter struct {
	v     uint64
	trail []uint64
}

// Inc is hot (matches telemetry.Counter.Inc): the instrumentation the
// per-period loop calls must never allocate or log.
func (c *Counter) Inc() {
	c.v++
	c.trail = append(c.trail, c.v) // want hotpath "append() allocates in hot path"
	fmt.Println("inc", c.v)        // want hotpath "call to fmt.Println in hot path"
}

// Add is hot (matches telemetry.Counter.Add); registering a family from
// inside it is exactly what telemetrydiscipline forbids.
func (c *Counter) Add(reg *Registry, delta uint64) {
	c.v += delta
	hot := reg.Counter("caer_engine_ticks_total") // want telemetrydiscipline "registration Counter inside a hot-path-reachable function"
	_ = hot
}

type Gauge struct {
	bits  uint64
	names map[string]uint64
}

// Set is hot (matches telemetry.Gauge.Set).
func (g *Gauge) Set(v float64) {
	g.bits = uint64(v)
	g.names["last"] = g.bits // want hotpath "map access in hot path"
}

type Span struct {
	Start uint64
	Kind  SpanKind
}

type SpanRecorder struct {
	ring []Span
	seq  uint64
}

// Record is hot (matches telemetry.SpanRecorder.Record).
func (r *SpanRecorder) Record(kind SpanKind, start uint64) {
	r.ring[r.seq%uint64(len(r.ring))] = Span{Start: start, Kind: kind}
	r.seq++
	snap := r.Spans() // want hotpath "call to allocating snapshot API SpanRecorder.Spans in hot path"
	_ = snap
}

// Spans is the allocating snapshot API, banned inside hot functions. The
// hot Record method above calls it, so the call graph marks its body
// transitively hot (path: SpanRecorder.Record -> SpanRecorder.Spans).
func (r *SpanRecorder) Spans() []Span {
	out := make([]Span, len(r.ring)) // want hotpath "make() allocates in hot path"
	copy(out, r.ring)
	return out
}

type Histogram struct {
	buckets []uint64
}

// Observe is hot (matches telemetry.Histogram.Observe).
func (h *Histogram) Observe(v float64) {
	idx := int(v)
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	labels := []string{"le"} // want hotpath "slice literal allocates in hot path"
	_ = labels
}

// kindName switches non-exhaustively over MetricKind.
func kindName(k MetricKind) string {
	switch k { // want enumswitch "switch over MetricKind is not exhaustive: missing KindHistogram"
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	}
	return "?"
}

// spanName is exhaustive without the numSpanKinds sentinel: no finding.
func spanName(k SpanKind) string {
	switch k {
	case SpanProbe:
		return "probe"
	case SpanDetect:
		return "detect"
	default:
		return "?"
	}
}

// badSpanName misses SpanDetect.
func badSpanName(k SpanKind) string {
	switch k { // want enumswitch "switch over SpanKind is not exhaustive: missing SpanDetect"
	case SpanProbe:
		return "probe"
	default:
		return "?"
	}
}

// coldExport is not in the hot inventory: allocations here are fine.
func coldExport(r *SpanRecorder) string {
	var out []byte
	for _, s := range r.Spans() {
		out = append(out, []byte(fmt.Sprintf("%d;", s.Start))...)
	}
	return string(out)
}

var _ = kindName
var _ = spanName
var _ = badSpanName
var _ = coldExport
