module test

go 1.22
