// Package lifecycle seeds goroutine-lifecycle fixtures: every go
// statement needs a provable shutdown edge — a ranged channel somebody
// closes, a done-select that returns, or WaitGroup pairing visible to the
// spawner or one of its call-graph parents.
package lifecycle

import "sync"

type pool struct {
	tasks chan int
	wg    sync.WaitGroup
}

// startWorkers spawns range-workers over a channel this package provably
// closes (stop below): no finding.
func (p *pool) startWorkers(n int) {
	for i := 0; i < n; i++ {
		go p.worker(p.tasks)
	}
}

func (p *pool) worker(tasks <-chan int) {
	for t := range tasks {
		_ = t
	}
}

func (p *pool) stop() { close(p.tasks) }

// startDone spawns a goroutine with a done-select that returns: no
// finding.
func startDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
		}
	}()
}

// startPaired spawns with a WaitGroup Done whose Wait lives in a
// call-graph parent (drain): no finding.
func (p *pool) startPaired() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
	}()
}

// drain is the parent that waits, satisfying startPaired's proof.
func (p *pool) drain() {
	p.startPaired()
	p.wg.Wait()
}

// leak spawns a goroutine nothing can stop.
func leak() {
	go func() { // want goroutinelifecycle "no provable shutdown edge"
		for {
		}
	}()
}

// leakRange ranges over a channel no function in the package closes.
func leakRange(ch chan int) {
	go func() { // want goroutinelifecycle "no provable shutdown edge"
		for v := range ch {
			_ = v
		}
	}()
}

// startDynamic spawns through a function value the static graph cannot
// resolve.
func startDynamic(f func()) {
	go f() // want goroutinelifecycle "dynamically-resolved function"
}

var (
	_ = (*pool).startWorkers
	_ = (*pool).stop
	_ = (*pool).drain
	_ = startDone
	_ = leak
	_ = leakRange
	_ = startDynamic
)
