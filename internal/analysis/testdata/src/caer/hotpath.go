// Package caer is a testdata stand-in for the runtime package: its Engine
// methods match the hotpath analyzer's default function inventory.
package caer

import (
	"fmt"
	"time"

	"test/comm"
)

type Engine struct {
	scratch map[string]int
	slot    *comm.Slot
	notes   []string
	ch      chan int
}

// Tick is hot (matches caer.Engine.Tick) and seeds one violation of every
// hotpath rule.
func (e *Engine) Tick(own float64, name string) comm.Directive {
	buf := make([]float64, 8) // want hotpath "make() allocates in hot path"
	_ = buf
	fmt.Println("tick", own) // want hotpath "call to fmt.Println in hot path"
	now := time.Now()        // want hotpath "call to time.Now in hot path" determinism "wall-clock read time.Now"
	_ = now
	e.scratch["misses"]++          // want hotpath "map access in hot path"
	e.notes = append(e.notes, "x") // want hotpath "append() allocates in hot path"
	msg := name + "!"              // want hotpath "string concatenation allocates in hot path"
	_ = msg
	raw := []byte(name) // want hotpath "string/[]byte conversion copies in hot path"
	_ = raw
	xs := []int{1, 2} // want hotpath "slice literal allocates in hot path"
	_ = xs
	m := map[string]int{} // want hotpath "map literal allocates in hot path"
	_ = m
	p := &pair{1, 2} // want hotpath "heap allocation (&composite literal) in hot path"
	_ = p
	delete(e.scratch, "misses") // want hotpath "map delete in hot path"
	for k := range e.scratch {  // want hotpath "map iteration in hot path"
		_ = k
	}
	samples := e.slot.Samples() // want hotpath "call to allocating snapshot API Slot.Samples in hot path"
	_ = samples
	go e.drain()     // want hotpath "goroutine spawn in hot path" goroutinelifecycle "no provable shutdown edge"
	e.ch <- 1        // want hotpath "channel send in hot path"
	v := <-e.ch      // want hotpath "channel receive in hot path"
	_ = v
	if own < 0 {
		// Terminal paths are off-budget: no finding for this Sprintf.
		panic(fmt.Sprintf("caer: negative miss count %f", own))
	}
	return comm.DirectiveRun
}

type pair struct{ a, b int }

func (e *Engine) drain() {}

// coldReport is not in the hot inventory, so allocations are fine — but
// the caer package is deterministic, and ranging a map into an ordered
// byte stream is exactly the nondeterminism the byte-identity gates catch.
func coldReport(e *Engine) string {
	parts := make([]byte, 0, 64)
	for k, v := range e.scratch { // want determinism "map iteration feeds ordered output"
		parts = append(parts, []byte(fmt.Sprintf("%s=%d;", k, v))...)
	}
	return string(parts)
}
