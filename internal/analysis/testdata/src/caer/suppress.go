package caer

// finishTick is hot (matches caer.Engine.finishTick); the snapshot call
// below would be a hotpath finding but carries a documented suppression,
// which the driver honours on the comment's own line and the line below.
func (e *Engine) finishTick() {
	e.notes = e.notes[:0]
	//caer:allow hotpath one-time diagnostic copy, not per-period
	samples := e.slot.Samples()
	_ = samples
}
