package caer

// OwnMean is hot (matches caer.Engine.OwnMean); it is clean itself but
// calls helpers the call graph must mark transitively hot.
func (e *Engine) OwnMean() float64 {
	return e.meanOf(len(e.notes))
}

// meanOf is one hop below the root: still hot, still clean.
func (e *Engine) meanOf(n int) float64 {
	return float64(e.depth(n))
}

// depth is two static hops below the root; its allocation is hot and the
// finding must carry the OwnMean -> meanOf -> depth path.
func (e *Engine) depth(n int) int {
	tmp := make([]int, n) // want hotpath "make() allocates in hot path"
	return len(tmp)
}

type Runtime struct {
	started bool
	scratch []float64
}

// Step is hot (matches caer.Runtime.Step); start below is a reviewed cold
// barrier (Config.ColdFuncs), so the walk stops before its allocations.
func (rt *Runtime) Step() {
	if !rt.started {
		rt.start()
	}
}

// start allocates freely: it runs once, behind the cold barrier.
func (rt *Runtime) start() {
	rt.started = true
	rt.scratch = make([]float64, 1024)
}
