package caer

import (
	"sync/atomic"

	"test/comm"
)

type misaligned struct {
	ready bool
	hits  uint64
}

type aligned struct {
	hits  uint64
	ready bool
}

func raw(s *comm.Slot) float64 {
	s.Raw[0] = 1    // want shmaccess "direct access to communication-table field Slot.Raw"
	return s.Raw[1] // want shmaccess "direct access to communication-table field Slot.Raw"
}

func construct() comm.Slot {
	return comm.Slot{} // want shmaccess "composite literal of communication-table type Slot"
}

func viaAPI(s *comm.Slot) {
	s.Publish(1) // method access is the sanctioned path: no finding
}

func bumpBad(c *misaligned) {
	atomic.AddUint64(&c.hits, 1) // want shmaccess "not 8-byte aligned on 32-bit platforms"
}

func bumpGood(c *aligned) uint64 {
	atomic.AddUint64(&c.hits, 1)
	return atomic.LoadUint64(&c.hits)
}

func keepFieldsAlive(m *misaligned, a *aligned) bool {
	return m.ready || a.ready
}
