// Package part seeds partition-family fixtures: the spine's caer_part_*
// metric inventory (telemetrydiscipline) and the lock/error discipline of
// an owner-mask table stand-in (lockdiscipline). The real partition types
// live in mem/sched/caer and are inventoried by package-qualified keys;
// this package pins the package-independent rules a partition follow-on
// would trip first.
package part

import (
	"sync"

	"test/telemetry"
)

var reg = &telemetry.Registry{}

// The partition spine families register with inventoried constant names:
// the sanctioned pattern, no findings.
var (
	plans     = reg.Counter("caer_part_plans_total")
	resizes   = reg.Counter("caer_part_resizes_total")
	protected = reg.Gauge("caer_part_protected_ways")
)

// A partition family that drifted from the spine inventory.
var rogue = reg.Counter("caer_part_rogue_total") // want telemetrydiscipline "not in the spine inventory"

// registerOwner builds a per-owner family name at run time, defeating the
// inventory check (per-owner cardinality belongs in labels, not names).
func registerOwner(owner string) {
	_ = reg.Histogram("caer_part_owner_" + owner) // want telemetrydiscipline "not a compile-time constant"
}

// table is a stand-in for an owner-mask table guarded by a mutex.
type table struct {
	mu    sync.Mutex
	masks []uint64
}

// setMask forgets the unlock: a wedged mask table stalls every resize.
func (t *table) setMask(owner int, mask uint64) {
	t.mu.Lock() // want lockdiscipline "t.mu.Lock() without a matching Unlock"
	t.masks[owner] = mask
}

// flush reports teardown corruption through its error.
func (t *table) flush() error { return nil }

// teardown discards flush's error as a bare statement.
func teardown(t *table) {
	t.flush() // want lockdiscipline "error returned by table.flush is discarded"
}

var (
	_ = plans
	_ = resizes
	_ = protected
	_ = rogue
	_ = registerOwner
	_ = teardown
)
