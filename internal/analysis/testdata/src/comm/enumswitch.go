package comm

func describe(d Directive) string {
	switch d { // want enumswitch "switch over Directive is not exhaustive: missing DirectivePause"
	case DirectiveRun:
		return "run"
	default:
		return "?"
	}
}

func describeRole(r Role) string {
	switch r {
	case RoleLatency:
		return "latency"
	case RoleBatch:
		return "batch"
	default:
		return "?"
	}
}
