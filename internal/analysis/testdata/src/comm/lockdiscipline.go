package comm

import "sync"

type lockedTable struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	dirty bool
}

func (t *lockedTable) good() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dirty = true
}

func (t *lockedTable) goodRead() bool {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.dirty
}

func (t *lockedTable) goodInline() {
	t.mu.Lock()
	t.dirty = true
	t.mu.Unlock()
}

func (t *lockedTable) leak() {
	t.mu.Lock() // want lockdiscipline "t.mu.Lock() without a matching Unlock"
	t.dirty = true
}

func (t *lockedTable) leakRead() bool {
	t.rw.RLock() // want lockdiscipline "t.rw.RLock() without a matching RUnlock"
	return t.dirty
}

func discard(s *Slot) {
	s.Close() // want lockdiscipline "error returned by Slot.Close is discarded"
}

func handled(s *Slot) error {
	if err := s.Close(); err != nil {
		return err
	}
	_ = s.Close()     // explicit discard documents intent: accepted
	defer s.Close()   // deferred cleanup is conventionally best-effort: accepted
	return nil
}
