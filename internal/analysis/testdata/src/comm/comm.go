// Package comm is a testdata stand-in for the real communication table:
// just enough surface for the analyzers' match rules (package base name
// "comm", table types with deliberately exported raw state, reaction
// enums, and error-returning teardown).
package comm

// Directive is a reaction order; all batch applications must honour it.
type Directive int

const (
	DirectiveRun Directive = iota
	DirectivePause
)

// Role classifies a registered application.
type Role int

const (
	RoleLatency Role = iota
	RoleBatch
)

// Slot deliberately exports raw state so non-comm testdata can violate the
// single-writer access rule.
type Slot struct {
	Raw []float64
	Dir Directive
}

// Publish is the hot-path single-writer append (simplified).
func (s *Slot) Publish(v float64) {
	if len(s.Raw) > 0 {
		s.Raw[0] = v
	}
}

// Samples returns a copy of the window — an allocating snapshot API.
func (s *Slot) Samples() []float64 {
	out := make([]float64, len(s.Raw))
	copy(out, s.Raw)
	return out
}

// Close tears the slot down and can report corruption.
func (s *Slot) Close() error { return nil }
