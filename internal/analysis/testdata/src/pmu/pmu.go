// Package pmu is a testdata stand-in exercising the enumswitch count
// sentinel exclusion (numEvents must not be demanded in switches).
package pmu

type Event int

const (
	EventA Event = iota
	EventB
	numEvents
)

var _ = numEvents

func name(e Event) string {
	switch e { // exhaustive without the sentinel: no finding
	case EventA:
		return "a"
	case EventB:
		return "b"
	default:
		return "?"
	}
}

func bad(e Event) string {
	switch e { // want enumswitch "switch over Event is not exhaustive: missing EventB"
	case EventA:
		return "a"
	default:
		return "?"
	}
}
