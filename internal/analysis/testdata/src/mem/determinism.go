// Package mem is a testdata stand-in for the memory hierarchy: the whole
// package is in Config.DeterministicPkgs, so the determinism rules apply
// to every function in it.
package mem

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

type Cache struct {
	lines map[uint64]int
	heat  float64
}

// dumpLines feeds ordered output straight from a map range: the line order
// changes run to run.
func (c *Cache) dumpLines(sb *strings.Builder) {
	for addr, way := range c.lines { // want determinism "map iteration feeds ordered output"
		fmt.Fprintf(sb, "%x:%d\n", addr, way)
	}
}

// totalHeat accumulates a float in map order: addition is not associative,
// so the sum's bits depend on iteration order.
func (c *Cache) totalHeat(weights map[uint64]float64) float64 {
	for _, w := range weights { // want determinism "not associative"
		c.heat += w
	}
	return c.heat
}

// sortedDump collects keys and sorts before emitting: the sanctioned
// idiom, no finding.
func (c *Cache) sortedDump(sb *strings.Builder) {
	keys := make([]uint64, 0, len(c.lines))
	for addr := range c.lines {
		keys = append(keys, addr)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, addr := range keys {
		fmt.Fprintf(sb, "%x:%d\n", addr, c.lines[addr])
	}
}

// jitter draws from the process-global source, which is shared and
// racily advanced.
func jitter() float64 {
	return rand.Float64() // want determinism "process-global rand.Float64"
}

// seededJitter draws from an explicit seeded source: the convention.
func seededJitter(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}

// collect appends goroutine results into a shared slice: the collection
// order is whatever the scheduler did this run.
func collect(n int) []int {
	var wg sync.WaitGroup
	var out []int
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			out = append(out, v) // want determinism "scheduling-dependent"
		}(i)
	}
	wg.Wait()
	return out
}

// collectIndexed writes each result to its own slot: deterministic.
func collectIndexed(n int) []int {
	var wg sync.WaitGroup
	out := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			out[v] = v
		}(i)
	}
	wg.Wait()
	return out
}

var (
	_ = (*Cache).dumpLines
	_ = (*Cache).totalHeat
	_ = (*Cache).sortedDump
	_ = jitter
	_ = seededJitter
	_ = collect
	_ = collectIndexed
)
