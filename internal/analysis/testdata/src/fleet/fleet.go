// Package fleet is a testdata stand-in for the cluster scheduler: its
// Cluster/placer/driver methods match the hotpath analyzer's fleet
// inventory, the whole package is in Config.DeterministicPkgs, and its
// Policy/JobState/Curve enums are exhaustiveness-checked.
package fleet

import (
	"fmt"
	"strings"
	"time"
)

// Policy selects the cross-machine placement strategy.
type Policy int

const (
	PolicyRoundRobin Policy = iota
	PolicyLeastPressure
	PolicyPacked
)

// JobState is a fleet job's lifecycle phase.
type JobState int

const (
	JobQueued JobState = iota
	JobDispatched
	JobFinished
)

// Curve shapes the open-loop arrival schedule.
type Curve int

const (
	CurveConstant Curve = iota
	CurveDiurnal
	CurveBurst
)

type job struct {
	name  string
	state JobState
}

// Cluster is the fleet scheduler stand-in.
type Cluster struct {
	jobs    []*job
	byName  map[string]int
	pending []int
	tick    int
}

// Tick is hot (matches fleet.Cluster.Tick): the per-period fleet loop must
// stay allocation-free, with arrivals delegated to the cold arrive barrier.
func (c *Cluster) Tick() {
	now := time.Now() // want hotpath "call to time.Now in hot path" determinism "wall-clock read time.Now"
	_ = now
	c.pending = append(c.pending, c.tick) // want hotpath "append() allocates in hot path"
	c.dispatch()
	c.tick++
}

// dispatch is hot (matches fleet.Cluster.dispatch): the bounded queue scan.
func (c *Cluster) dispatch() {
	c.byName["head"] = c.tick // want hotpath "map access in hot path"
	c.arrive(1)
}

// arrive is a reviewed cold barrier (matches fleet.Cluster.arrive):
// materializing job records allocates by documented design, so hot-path
// propagation stops here and these allocations are clean.
func (c *Cluster) arrive(n int) {
	for i := 0; i < n; i++ {
		c.jobs = append(c.jobs, &job{name: fmt.Sprintf("job-%d", len(c.jobs))})
	}
}

// leastPressurePlacer matches the hot placer inventory entry.
type leastPressurePlacer struct{}

// Place is hot (matches fleet.leastPressurePlacer.Place): one call per
// dispatch attempt, so per-call scratch slices are off-budget.
func (leastPressurePlacer) Place(loads []float64) int {
	scores := []float64{0, 0} // want hotpath "slice literal allocates in hot path"
	_ = scores
	best := -1
	for k, l := range loads {
		if best < 0 || l < loads[best] {
			best = k
		}
	}
	return best
}

// describePolicy drops PolicyPacked: fleet placement switches must stay in
// sync with the Policy enum.
func describePolicy(p Policy) string {
	switch p { // want enumswitch "switch over Policy is not exhaustive: missing PolicyPacked"
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyLeastPressure:
		return "least-pressure"
	default:
		return "?"
	}
}

// describeCurve drops CurveBurst.
func describeCurve(c Curve) string {
	switch c { // want enumswitch "switch over Curve is not exhaustive: missing CurveBurst"
	case CurveConstant:
		return "constant"
	case CurveDiurnal:
		return "diurnal"
	default:
		return "?"
	}
}

// describeState is exhaustive: no finding.
func describeState(s JobState) string {
	switch s {
	case JobQueued:
		return "queued"
	case JobDispatched:
		return "dispatched"
	case JobFinished:
		return "finished"
	default:
		return "?"
	}
}

// dumpJobs feeds ordered output straight from a map range: the fleet
// package is deterministic (BENCH_fleet.json is byte-compared), so
// iteration order must never reach an ordered sink.
func (c *Cluster) dumpJobs(sb *strings.Builder) {
	for name, idx := range c.byName { // want determinism "map iteration feeds ordered output"
		fmt.Fprintf(sb, "%s:%d\n", name, idx)
	}
}

var (
	_ = (*Cluster).Tick
	_ = (*Cluster).dumpJobs
	_ = leastPressurePlacer.Place
	_ = describePolicy
	_ = describeCurve
	_ = describeState
)
