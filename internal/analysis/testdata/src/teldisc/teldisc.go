// Package teldisc seeds telemetry-discipline fixtures for the name rules:
// family names must be compile-time constants drawn from the spine
// inventory (Config.MetricNames), wherever the registration happens.
package teldisc

import "test/telemetry"

var reg = &telemetry.Registry{}

// Package-level registration with an inventoried constant name: the
// sanctioned pattern, no finding.
var ticks = reg.Counter("caer_engine_ticks_total")

// Package-level registration with a name missing from the inventory.
var rogue = reg.Gauge("caer_rogue_gauge") // want telemetrydiscipline "not in the spine inventory"

// setup registers during initialization — placement is fine (not
// hot-reachable) — but the name rules still apply.
func setup(suffix string) {
	_ = reg.Counter("caer_pmu_reads_total")
	_ = reg.Histogram("caer_engine_hold_" + suffix) // want telemetrydiscipline "not a compile-time constant"
}

var (
	_ = ticks
	_ = rogue
	_ = setup
)
