// Package graph pins the call-graph builder: one construct per edge kind,
// exercised by TestCallGraphEdges and TestCallGraphReachability.
package graph

type Greeter interface{ Greet() string }

type English struct{}

func (English) Greet() string { return "hi" }

type French struct{}

func (French) Greet() string { return "salut" }

func Root() {
	Mid()
	defer Cleanup()
	go Spawn()
	e := English{}
	h := e.Greet
	_ = h
	Speak(e)
}

func Mid() { Leaf() }

func Leaf() {}

func Cleanup() {}

func Spawn() {}

func Speak(g Greeter) { _ = g.Greet() }
