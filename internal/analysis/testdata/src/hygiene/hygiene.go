// Package hygiene seeds suppression-hygiene fixtures for the dedicated
// unit test (TestSuppressionHygiene): want comments cannot share a line
// with //caer:allow — the trailing text would parse as the allow's reason
// — so this package stays out of the golden walk.
package hygiene

// mightFail returns an error the caller below discards.
func mightFail() error { return nil }

// reasonless suppresses the discard below but gives no reason: the
// suppression itself becomes a finding.
func reasonless() {
	//caer:allow lockdiscipline
	mightFail()
}

// stale carries an allow that matches nothing: reported only under
// ReportUnusedSuppressions, and only when the named analyzer ran.
func stale() int {
	//caer:allow hotpath long-gone diagnostic copy
	return 1
}

var (
	_ = reasonless
	_ = stale
)
