package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation parsed from a testdata comment of the form
//
//	// want <analyzer> "substring" [<analyzer> "substring" ...]
//
// attached to the offending line.
type want struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
	matched  bool
}

var wantRe = regexp.MustCompile(`(\w+)\s+"([^"]+)"`)

// parseWants scans every Go file of a testdata package directory for want
// comments.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read testdata dir: %v", err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("open testdata file: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("// want "):], -1) {
				wants = append(wants, &want{file: e.Name(), line: line, analyzer: m[1], substr: m[2]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scan testdata file: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close testdata file: %v", err)
		}
	}
	return wants
}

// loadTestPkg loads one package of the testdata module (module path
// "test").
func loadTestPkg(t *testing.T, rel string) *Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("abs testdata root: %v", err)
	}
	pkg, err := NewLoader(root, "test").Load(filepath.Join(root, rel))
	if err != nil {
		t.Fatalf("load testdata package %s: %v", rel, err)
	}
	if pkg == nil {
		t.Fatalf("testdata package %s has no Go files", rel)
	}
	return pkg
}

// runGolden checks one testdata package: every want comment must be hit by
// a finding and every finding must be expected by a want comment.
func runGolden(t *testing.T, rel string) {
	t.Helper()
	pkg := loadTestPkg(t, rel)
	cfg := DefaultConfig()
	cfg.ModulePath = "test"
	findings := RunAnalyzers(pkg, Analyzers(), cfg)
	wants := parseWants(t, pkg.Dir)

	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		ok := false
		for _, w := range wants {
			if w.file == base && w.line == f.Pos.Line && w.analyzer == f.Analyzer &&
				strings.Contains(f.Message, w.substr) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding: %s:%d expected [%s] containing %q",
				w.file, w.line, w.analyzer, w.substr)
		}
	}
}

func TestGoldenComm(t *testing.T)      { runGolden(t, "comm") }
func TestGoldenCaer(t *testing.T)      { runGolden(t, "caer") }
func TestGoldenPmu(t *testing.T)       { runGolden(t, "pmu") }
func TestGoldenTelemetry(t *testing.T) { runGolden(t, "telemetry") }
func TestGoldenMem(t *testing.T)       { runGolden(t, "mem") }
func TestGoldenLifecycle(t *testing.T) { runGolden(t, "lifecycle") }
func TestGoldenTeldisc(t *testing.T)   { runGolden(t, "teldisc") }
func TestGoldenFleet(t *testing.T)     { runGolden(t, "fleet") }
func TestGoldenPart(t *testing.T)      { runGolden(t, "part") }

// TestGoldenSeedsEveryAnalyzer guards the fixtures themselves: each
// analyzer of the suite must have at least one seeded violation across the
// golden packages, or a regression could silently disable it.
func TestGoldenSeedsEveryAnalyzer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModulePath = "test"
	hit := make(map[string]int)
	for _, rel := range []string{"comm", "caer", "pmu", "telemetry", "mem", "lifecycle", "teldisc", "hygiene", "fleet", "part"} {
		for _, f := range RunAnalyzers(loadTestPkg(t, rel), Analyzers(), cfg) {
			hit[f.Analyzer]++
		}
	}
	for _, a := range Analyzers() {
		if hit[a.Name] == 0 {
			t.Errorf("analyzer %s catches nothing in the golden packages", a.Name)
		}
	}
}

// TestSuppressionHygiene checks the hygiene analyzer over its dedicated
// fixture package: a reason-less allow is always a finding, an unused
// allow is a finding under ReportUnusedSuppressions — but only when the
// analyzers it names actually ran (subset runs must not cry stale).
func TestSuppressionHygiene(t *testing.T) {
	pkg := loadTestPkg(t, "hygiene")
	cfg := DefaultConfig()
	cfg.ModulePath = "test"
	cfg.ReportUnusedSuppressions = true

	var missingReason, unused, other int
	for _, f := range RunAnalyzers(pkg, Analyzers(), cfg) {
		switch {
		case f.Analyzer == Suppression.Name && strings.Contains(f.Message, "needs a reason"):
			missingReason++
		case f.Analyzer == Suppression.Name && strings.Contains(f.Message, "unused suppression"):
			unused++
		default:
			other++
			t.Errorf("unexpected finding in hygiene package: %s", f)
		}
	}
	if missingReason != 1 {
		t.Errorf("missing-reason findings = %d, want 1", missingReason)
	}
	if unused != 1 {
		t.Errorf("unused-suppression findings = %d, want 1", unused)
	}

	// A subset run without hotpath must not call the hotpath allow stale.
	subset, err := SelectAnalyzers("lockdiscipline,suppression")
	if err != nil {
		t.Fatalf("SelectAnalyzers: %v", err)
	}
	for _, f := range RunAnalyzers(pkg, subset, cfg) {
		if strings.Contains(f.Message, "unused suppression") {
			t.Errorf("unused finding reported though hotpath did not run: %s", f)
		}
	}
}

// TestSuppressionComment verifies //caer:allow drops a finding that the
// same code without the comment produces (the suppress.go fixture calls an
// allocating snapshot API from a hot function).
func TestSuppressionComment(t *testing.T) {
	pkg := loadTestPkg(t, "caer")
	cfg := DefaultConfig()
	cfg.ModulePath = "test"

	var raw []Finding
	pass := &Pass{Analyzer: HotPath, Fset: pkg.Fset, Files: pkg.Files,
		Pkg: pkg.Types, Info: pkg.Info, Cfg: cfg, findings: &raw}
	HotPath.Run(pass)

	inSuppress := func(fs []Finding) int {
		n := 0
		for _, f := range fs {
			if filepath.Base(f.Pos.Filename) == "suppress.go" {
				n++
			}
		}
		return n
	}
	if got := inSuppress(raw); got != 1 {
		t.Fatalf("expected exactly 1 raw hotpath finding in suppress.go, got %d", got)
	}
	if got := inSuppress(filterSuppressed(collectSuppressions(pkg), raw)); got != 0 {
		t.Errorf("suppressed finding survived filtering (%d left)", got)
	}
}
