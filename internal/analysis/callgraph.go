package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the static call graph the dataflow analyzers walk
// (hotpath v2 transitive propagation, telemetrydiscipline reachability,
// goroutinelifecycle parent lookups). The model, documented in DESIGN.md
// §12:
//
//   - Nodes are functions and methods *declared in the loaded packages*.
//     Standard-library callees are not nodes: a banned stdlib call is
//     caught where it textually occurs, inside whichever module function
//     the walk reaches.
//   - Static calls (identifier and selector calls that go/types resolves
//     to a concrete *types.Func) produce EdgeStatic.
//   - defer f() produces EdgeDefer: the deferred body still runs inside
//     the caller's activation, so hot-path budget applies.
//   - go f() produces EdgeGo: recorded for the lifecycle analyzer, but
//     NOT followed by hot propagation — the spawn itself is already a
//     hotpath finding, and the spawned body runs off the period loop.
//   - A method value or function value that is referenced without being
//     called (f := e.helper; hand it elsewhere) produces EdgeMethodValue:
//     the graph assumes it may be invoked by the holder.
//   - A call through an interface produces one EdgeInterface per concrete
//     method declared in the loaded packages whose receiver type
//     implements the interface (the conservative "it could be any of
//     them" reading). Interfaces declared outside the loaded packages
//     (error, io.Writer, ...) are not resolved — their implementors are
//     unbounded — and reflection is out of scope entirely.
type CallGraph struct {
	nodes map[*types.Func]*Node
	tpkgs map[*types.Package]bool // type-checker packages of the loaded set
}

// Node is one declared function in the analyzed packages.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []Edge
	In   []Edge
}

// Label renders the node the way the config inventories name functions:
// "pkg.Type.Method" or "pkg.Func", using the last import-path element.
func (n *Node) Label() string {
	recv := recvTypeName(n.Fn)
	if recv != "" {
		return pkgBase(n.Pkg.Path) + "." + recv + "." + n.Fn.Name()
	}
	return pkgBase(n.Pkg.Path) + "." + n.Fn.Name()
}

// EdgeKind classifies how a call edge was established.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a concrete function or method.
	EdgeStatic EdgeKind = iota
	// EdgeDefer is a deferred call (runs in the caller's activation).
	EdgeDefer
	// EdgeGo is a go-statement spawn (new goroutine, off the hot path).
	EdgeGo
	// EdgeMethodValue is a function/method value referenced without being
	// called at that site; the holder may invoke it later.
	EdgeMethodValue
	// EdgeInterface is a dynamic dispatch, conservatively resolved to
	// every in-module implementation of the interface method.
	EdgeInterface
	numEdgeKinds
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeDefer:
		return "defer"
	case EdgeGo:
		return "go"
	case EdgeMethodValue:
		return "methodvalue"
	case EdgeInterface:
		return "interface"
	default:
		return "edge?"
	}
}

var _ = numEdgeKinds

// Edge is one caller→callee relationship.
type Edge struct {
	From, To *Node
	Kind     EdgeKind
	Pos      token.Pos
}

// BuildCallGraph constructs the static call graph over the given packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes: make(map[*types.Func]*Node),
		tpkgs: make(map[*types.Package]bool),
	}

	// Pass 1: one node per function declaration.
	for _, pkg := range pkgs {
		g.tpkgs[pkg.Types] = true
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.nodes[fn] = &Node{Fn: fn, Decl: fd, Pkg: pkg}
				}
			}
		}
	}

	// The interface-method index: every node that is a method, grouped by
	// name, for conservative dynamic-dispatch resolution.
	methodsByName := make(map[string][]*Node)
	for _, n := range g.nodes {
		if recvType(n.Fn) != nil {
			methodsByName[n.Fn.Name()] = append(methodsByName[n.Fn.Name()], n)
		}
	}

	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.addEdges(g.nodes[fn], pkg, fd, methodsByName)
			}
		}
	}

	// Deterministic edge order (build iterates maps).
	for _, n := range g.nodes {
		sortEdges(n.Out)
		sortEdges(n.In)
	}
	return g
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Pos != es[j].Pos {
			return es[i].Pos < es[j].Pos
		}
		if es[i].Kind != es[j].Kind {
			return es[i].Kind < es[j].Kind
		}
		return es[i].To.Label() < es[j].To.Label()
	})
}

// Lookup returns the node for fn, or nil when fn is not declared in the
// loaded packages.
func (g *CallGraph) Lookup(fn *types.Func) *Node { return g.nodes[fn] }

// Nodes returns every node in deterministic (label) order.
func (g *CallGraph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label() < out[j].Label() })
	return out
}

// addEdges walks one function body and records its outgoing edges.
func (g *CallGraph) addEdges(from *Node, pkg *Package, fd *ast.FuncDecl, methodsByName map[string][]*Node) {
	// callFuns marks expressions that are the operator of a call (so a
	// second walk can tell method *values* from call sites).
	callFuns := make(map[ast.Expr]bool)
	seen := make(map[edgeKey]bool)

	connect := func(to *Node, kind EdgeKind, pos token.Pos) {
		if to == nil {
			return
		}
		k := edgeKey{to: to, kind: kind}
		if seen[k] {
			return
		}
		seen[k] = true
		e := Edge{From: from, To: to, Kind: kind, Pos: pos}
		from.Out = append(from.Out, e)
		to.In = append(to.In, e)
	}

	resolveCall := func(call *ast.CallExpr, kind EdgeKind) {
		callFuns[call.Fun] = true
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
				connect(g.nodes[f], kind, call.Pos())
			}
		case *ast.SelectorExpr:
			f, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
			if !ok {
				return
			}
			if sel, isSel := pkg.Info.Selections[fun]; isSel && isInterfaceRecv(sel.Recv()) {
				// Dynamic dispatch: resolve conservatively to every
				// in-module implementation, but only for interfaces the
				// loaded packages declare.
				if !g.declaredInPackages(sel.Recv()) {
					return
				}
				ifaceKind := EdgeInterface
				if kind == EdgeGo {
					ifaceKind = EdgeGo
				}
				for _, impl := range implementations(sel.Recv(), fun.Sel.Name, methodsByName) {
					connect(impl, ifaceKind, call.Pos())
				}
				return
			}
			connect(g.nodes[f], kind, call.Pos())
		}
	}

	handled := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if !handled[node] {
				resolveCall(node, EdgeStatic)
			}
		case *ast.DeferStmt:
			handled[node.Call] = true
			resolveCall(node.Call, EdgeDefer)
		case *ast.GoStmt:
			handled[node.Call] = true
			resolveCall(node.Call, EdgeGo)
		}
		return true
	})

	// Second walk: function/method values referenced outside call-operator
	// position.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.Ident:
			if f, ok := pkg.Info.Uses[node].(*types.Func); ok && !callFuns[ast.Expr(node)] {
				connect(g.nodes[f], EdgeMethodValue, node.Pos())
			}
		case *ast.SelectorExpr:
			if callFuns[ast.Expr(node)] {
				return false // the Sel ident below is the call operator
			}
			if f, ok := pkg.Info.Uses[node.Sel].(*types.Func); ok {
				connect(g.nodes[f], EdgeMethodValue, node.Pos())
				return false
			}
		}
		return true
	})
}

type edgeKey struct {
	to   *Node
	kind EdgeKind
}

// recvType returns the receiver type of a method, or nil for functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isInterfaceRecv reports whether a selection receiver is an interface.
func isInterfaceRecv(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// declaredInPackages reports whether the interface type behind t is
// declared by one of the loaded packages (named type whose object package
// is a graph package). Unnamed interface literals count as declared.
func (g *CallGraph) declaredInPackages(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		if p, isPtr := t.(*types.Pointer); isPtr {
			return g.declaredInPackages(p.Elem())
		}
		return true // anonymous interface: local by construction
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false // error and other universe interfaces
	}
	return g.tpkgs[obj.Pkg()]
}

// implementations resolves an interface-method call to the in-module
// concrete methods that can satisfy it: same name, and the receiver's
// type (or its pointer) implements the interface.
func implementations(iface types.Type, name string, methodsByName map[string][]*Node) []*Node {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Node
	for _, cand := range methodsByName[name] {
		rt := recvType(cand.Fn)
		if rt == nil {
			continue
		}
		if types.Implements(rt, it) || types.Implements(types.NewPointer(rt), it) {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label() < out[j].Label() })
	return out
}

// Reachable walks the graph from roots, following edges accepted by
// follow, and returns for every reached node the shortest call path from
// a root (inclusive of both ends). Roots themselves map to a one-element
// path. Nodes for which barrier returns true are not expanded (and not
// reported): they mark reviewed boundaries such as setup-only functions.
func (g *CallGraph) Reachable(roots []*Node, follow func(Edge) bool, barrier func(*Node) bool) map[*Node][]*Node {
	paths := make(map[*Node][]*Node)
	var queue []*Node
	for _, r := range roots {
		if r == nil || paths[r] != nil {
			continue
		}
		paths[r] = []*Node{r}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if paths[e.To] != nil {
				continue
			}
			if barrier != nil && barrier(e.To) {
				continue
			}
			p := make([]*Node, len(paths[n])+1)
			copy(p, paths[n])
			p[len(p)-1] = e.To
			paths[e.To] = p
			queue = append(queue, e.To)
		}
	}
	return paths
}

// HotSet computes the hot-path closure for cfg: the inventoried root
// functions plus everything transitively reachable from them over
// static, defer, and interface edges — stopping at the reviewed cold
// barriers (Config.ColdFuncs) and never crossing a go edge (the spawn is
// its own finding; the spawned body runs off the period loop). Method
// values are likewise not followed: storing a reference costs nothing,
// and the eventual caller is budgeted where the call happens.
//
// The returned map carries, per hot function, the label path from an
// inventoried root ("caer.Runtime.Step → caer.Runtime.relaunch → ...");
// roots map to a single-element path.
func (g *CallGraph) HotSet(cfg *Config) map[*types.Func][]string {
	var roots []*Node
	for _, n := range g.Nodes() {
		if cfg.IsHotPathFunc(n.Pkg.Path, recvTypeName(n.Fn), n.Fn.Name()) {
			roots = append(roots, n)
		}
	}
	follow := func(e Edge) bool {
		switch e.Kind {
		case EdgeStatic, EdgeDefer, EdgeInterface:
			return true
		case EdgeGo, EdgeMethodValue:
			// A spawned goroutine runs off the period budget (and gets its
			// own lifecycle analyzer); a method value is only hot if some
			// hot function eventually calls it, which shows up as a static
			// or interface edge at that call site.
			return false
		}
		return false
	}
	barrier := func(n *Node) bool {
		return cfg.IsColdFunc(n.Pkg.Path, recvTypeName(n.Fn), n.Fn.Name())
	}
	hot := make(map[*types.Func][]string)
	for node, path := range g.Reachable(roots, follow, barrier) {
		labels := make([]string, len(path))
		for i, p := range path {
			labels[i] = p.Label()
		}
		hot[node.Fn] = labels
	}
	return hot
}
