package analysis

import (
	"strings"
	"testing"
)

// findNode returns the node labelled label, failing the test when absent.
func findNode(t *testing.T, g *CallGraph, label string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Label() == label {
			return n
		}
	}
	t.Fatalf("call graph has no node %q", label)
	return nil
}

func hasEdge(from *Node, to string, kind EdgeKind) bool {
	for _, e := range from.Out {
		if e.To.Label() == to && e.Kind == kind {
			return true
		}
	}
	return false
}

// TestCallGraphEdges pins one edge per kind over the graph fixture
// package: direct call, two-hop chain, defer, go, method value, and
// conservative interface dispatch to every implementation.
func TestCallGraphEdges(t *testing.T) {
	pkg := loadTestPkg(t, "graph")
	g := BuildCallGraph([]*Package{pkg})

	cases := []struct {
		from, to string
		kind     EdgeKind
	}{
		{"graph.Root", "graph.Mid", EdgeStatic},
		{"graph.Mid", "graph.Leaf", EdgeStatic},
		{"graph.Root", "graph.Cleanup", EdgeDefer},
		{"graph.Root", "graph.Spawn", EdgeGo},
		{"graph.Root", "graph.English.Greet", EdgeMethodValue},
		{"graph.Speak", "graph.English.Greet", EdgeInterface},
		{"graph.Speak", "graph.French.Greet", EdgeInterface},
	}
	for _, c := range cases {
		if !hasEdge(findNode(t, g, c.from), c.to, c.kind) {
			t.Errorf("missing %s edge %s -> %s", c.kind, c.from, c.to)
		}
	}
	if hasEdge(findNode(t, g, "graph.Root"), "graph.Leaf", EdgeStatic) {
		t.Errorf("Root -> Leaf edge exists; Leaf must only be reachable through Mid")
	}
}

// TestCallGraphReachability pins the BFS: shortest two-hop path, go edges
// not followed, interface targets reached, and barriers stopping the walk.
func TestCallGraphReachability(t *testing.T) {
	pkg := loadTestPkg(t, "graph")
	g := BuildCallGraph([]*Package{pkg})
	root := findNode(t, g, "graph.Root")
	follow := func(e Edge) bool { return e.Kind != EdgeGo && e.Kind != EdgeMethodValue }

	paths := g.Reachable([]*Node{root}, follow, nil)

	leaf := findNode(t, g, "graph.Leaf")
	p, ok := paths[leaf]
	if !ok {
		t.Fatalf("Leaf not reachable from Root")
	}
	labels := make([]string, len(p))
	for i, n := range p {
		labels[i] = n.Label()
	}
	if got, want := strings.Join(labels, " "), "graph.Root graph.Mid graph.Leaf"; got != want {
		t.Errorf("Leaf path = %q, want %q", got, want)
	}
	if _, ok := paths[findNode(t, g, "graph.Spawn")]; ok {
		t.Errorf("Spawn reachable although go edges are not followed")
	}
	for _, impl := range []string{"graph.English.Greet", "graph.French.Greet"} {
		if _, ok := paths[findNode(t, g, impl)]; !ok {
			t.Errorf("%s not reachable through the interface call", impl)
		}
	}

	barred := g.Reachable([]*Node{root}, follow,
		func(n *Node) bool { return n.Label() == "graph.Mid" })
	if _, ok := barred[leaf]; ok {
		t.Errorf("Leaf reachable despite barrier on Mid")
	}
	if _, ok := barred[findNode(t, g, "graph.Cleanup")]; !ok {
		t.Errorf("Cleanup (defer edge) lost when barring Mid")
	}
}
