package analysis

import (
	"encoding/json"
	"io"
)

// jsonFinding is the machine-readable shape of one finding, consumed by CI
// tooling (artifact upload, dashboards). Field names are part of the
// caer-vet -json contract; add fields, never rename them.
type jsonFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Path     []string `json:"path,omitempty"`
}

// jsonReport wraps the findings with a count so an empty run still produces
// a well-formed, self-describing document.
type jsonReport struct {
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

// WriteJSON renders findings as one indented JSON document. The findings
// array is always present (empty, not null, when clean) so consumers can
// iterate without a nil check.
func WriteJSON(w io.Writer, findings []Finding) error {
	rep := jsonReport{Count: len(findings), Findings: make([]jsonFinding, 0, len(findings))}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
			Path:     f.Path,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
