package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EnumSwitch requires switches over the CAER reaction enums to be
// exhaustive. The runtime's control flow is enum-driven — comm.Directive
// orders the batch application to run or pause, Verdict carries detection
// outcomes, HeuristicKind selects the detector/responder pairing — and a
// switch that silently falls through to a default when a new enumerator is
// added is exactly the "batch keeps running during contention" bug the
// paper's protocol forbids (§3.2: all batch applications must honour the
// directive every period). A default case is still allowed (for panics on
// corrupt values), but it does not excuse missing enumerators.
var EnumSwitch = &Analyzer{
	Name: "enumswitch",
	Doc: "require switch statements over the reaction enums (comm.Directive, comm.Role, " +
		"Verdict, ...) to enumerate every declared constant of the type",
	Run: runEnumSwitch,
}

func runEnumSwitch(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkEnumSwitch(pass, sw)
			return true
		})
	}
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pass.Cfg.IsEnumType(obj.Pkg().Path(), obj.Name()) {
		return
	}

	enum := enumConstants(pass, named)
	if len(enum) == 0 {
		return
	}

	covered := make(map[string]bool) // by constant value representation
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			if cv, ok := pass.Info.Types[e]; ok && cv.Value != nil {
				covered[cv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range enum {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	qual := obj.Name()
	if obj.Pkg().Path() != pass.Pkg.Path() {
		qual = pkgBase(obj.Pkg().Path()) + "." + obj.Name()
	}
	pass.Reportf(sw.Pos(),
		"switch over %s is not exhaustive: missing %s (a default case does not excuse "+
			"silently ignoring a reaction state)", qual, strings.Join(missing, ", "))
}

// enumConstants returns the constants of type named declared in its
// defining package, sorted by value, excluding count sentinels.
func enumConstants(pass *Pass, named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if pass.Cfg.isSentinelConst(c.Name()) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, oki := constant.Int64Val(out[i].Val())
		vj, okj := constant.Int64Val(out[j].Val())
		if oki && okj && vi != vj {
			return vi < vj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}
