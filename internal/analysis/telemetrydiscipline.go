package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// TelemetryDiscipline guards the telemetry spine's two contracts
// (DESIGN.md §10):
//
//  1. Registration is a setup-time act. Registry.Counter/Gauge/Histogram
//     lock, allocate, and dedup — they must never run inside a function
//     the call graph proves reachable from the per-period hot path. The
//     handles they return are the allocation-free interface; code on the
//     period loop only touches handles that already exist (package-level
//     vars like the spine's, or fields filled by setup code).
//  2. Family names come from one inventory. Every name passed to a
//     registration call must be a compile-time constant that appears in
//     Config.MetricNames — the machine-readable copy of DESIGN.md §10's
//     registry table — so the spine, the docs, and the scrape surface
//     cannot drift apart. A non-constant name defeats the check and is
//     itself a finding.
var TelemetryDiscipline = &Analyzer{
	Name: "telemetrydiscipline",
	Doc: "forbid telemetry registration inside hot-path-reachable functions and " +
		"require registered family names to be constants from the spine inventory",
	Run: runTelemetryDiscipline,
}

// registrationNameArg returns the index of the family-name argument for a
// telemetry registration callee, or -1 when the callee is not a
// registration function. Recognized: Registry.Counter/Gauge/Histogram
// (name is argument 0) and NewSpanRecorder (no name; index -2 marks
// "registration without a name to check").
func registrationNameArg(callee *types.Func) int {
	if callee.Pkg() == nil || pkgBase(callee.Pkg().Path()) != "telemetry" {
		return -1
	}
	switch recvTypeName(callee) {
	case "Registry":
		switch callee.Name() {
		case "Counter", "Gauge", "Histogram":
			return 0
		}
		return -1
	case "":
		if callee.Name() == "NewSpanRecorder" {
			return -2
		}
	}
	return -1
}

func runTelemetryDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn, _ := pass.Info.Defs[d.Name].(*types.Func)
				var hotPath []string
				if fn != nil {
					if pass.Cfg.IsHotPathFunc(pass.Pkg.Path(), recvTypeName(fn), fn.Name()) {
						hotPath = []string{funcKeys(pass.Pkg.Path(), recvTypeName(fn), fn.Name())[0]}
					} else if p := pass.HotPathOf(fn); len(p) > 1 {
						hotPath = p
					}
				}
				checkRegistrations(pass, d.Body, hotPath)
			case *ast.GenDecl:
				// Package-level var initializers: the sanctioned place to
				// register. Only the name inventory applies.
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							checkRegistrations(pass, v, nil)
						}
					}
				}
			}
		}
	}
}

// checkRegistrations walks one region for registration calls. hotPath is
// non-nil when the region runs on (or is reachable from) the per-period
// hot path, in which case any registration is a finding.
func checkRegistrations(pass *Pass, region ast.Node, hotPath []string) {
	ast.Inspect(region, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		nameArg := registrationNameArg(callee)
		if nameArg == -1 {
			return true
		}
		if hotPath != nil {
			pass.ReportPathf(call.Pos(), hotPath,
				"telemetry registration %s inside a hot-path-reachable function; "+
					"register at package level or in setup code and keep only the handle here",
				callee.Name())
		}
		if nameArg < 0 {
			return true
		}
		checkMetricName(pass, call, nameArg)
		return true
	})
}

// checkMetricName verifies the family-name argument is a constant string
// present in the spine inventory.
func checkMetricName(pass *Pass, call *ast.CallExpr, idx int) {
	if idx >= len(call.Args) {
		return
	}
	arg := call.Args[idx]
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"telemetry family name is not a compile-time constant; the spine "+
				"inventory check (DESIGN.md §10) needs a literal name")
		return
	}
	name := constant.StringVal(tv.Value)
	if !pass.Cfg.IsMetricName(name) {
		pass.Reportf(arg.Pos(),
			"telemetry family %q is not in the spine inventory; add it to "+
				"DESIGN.md §10's registry table and the caer-vet MetricNames inventory",
			name)
	}
}
