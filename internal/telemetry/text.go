package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TextMetric is one parsed sample line of a Prometheus text snapshot.
type TextMetric struct {
	Name   string
	Labels map[string]string // nil when the series has no labels
	Value  float64
}

// Label returns the named label value, or "".
func (m TextMetric) Label(key string) string { return m.Labels[key] }

// ParseText parses Prometheus text exposition format (the subset
// WritePrometheus emits: comments, blank lines, and `name{labels} value`
// samples). caer-top scrapes /metrics through this, and the CI smoke step
// asserts on its output, so the writer and parser round-trip each other.
func ParseText(r io.Reader) ([]TextMetric, error) {
	var out []TextMetric
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: text line %d: %w", lineNo, err)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: scan text: %w", err)
	}
	return out, nil
}

// parseSample parses one `name{k="v",...} value` line.
func parseSample(line string) (TextMetric, error) {
	var m TextMetric
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		m.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return m, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[i+1 : end])
		if err != nil {
			return m, err
		}
		m.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return m, fmt.Errorf("want `name value`, got %q", line)
		}
		m.Name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return m, fmt.Errorf("bad value in %q: %w", line, err)
	}
	m.Value = v
	return m, nil
}

// parseLabels parses `k="v",k2="v2"`.
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for s = strings.TrimSpace(s); s != ""; {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("bad label pair near %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		valEnd := -1
		for i := eq + 2; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				valEnd = i
				break
			}
		}
		if valEnd < 0 {
			return nil, fmt.Errorf("unterminated label value near %q", s)
		}
		val, err := strconv.Unquote(s[eq+1 : valEnd+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value near %q: %w", s, err)
		}
		labels[key] = val
		s = strings.TrimSpace(s[valEnd+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}
