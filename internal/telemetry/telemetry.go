// Package telemetry is the runtime's observability spine: an online,
// always-on metric registry whose hot-path operations are lock-free and
// allocation-free, plus a fixed-capacity span recorder for the detection
// pipeline (see span.go) and live export surfaces (Prometheus-style text
// snapshots, an optional HTTP endpoint, Chrome trace-event JSON).
//
// The paper's §5 overhead analysis budgets <1% of each 1 ms sampling period
// for the whole CAER stack; the telemetry layer must fit inside that budget
// or it perturbs the very signal it reports. The discipline mirrors the
// caer-vet `hotpath` analyzer's: all registration (which allocates and
// takes locks) happens at deployment setup, returning pre-registered
// handles; the per-period path then touches only atomics. Every hot
// operation also bumps the registry's self-cost counter, so the layer
// accounts for its own overhead (caer_telemetry_ops_total).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"caer/internal/stats"
)

// MetricKind classifies a registered metric.
type MetricKind int

const (
	// KindCounter is a monotonically increasing event count.
	KindCounter MetricKind = iota
	// KindGauge is a point-in-time value, overwritten each period.
	KindGauge
	// KindHistogram is a fixed-bucket distribution of observations.
	KindHistogram
)

// String names the kind in Prometheus TYPE vocabulary.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(k))
	}
}

// Counter is a monotonically increasing counter. Inc and Add are lock-free,
// allocation-free, and safe for concurrent use.
type Counter struct {
	v    atomic.Uint64
	self *atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	c.v.Add(1)
	c.self.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	c.v.Add(n)
	c.self.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time float64 value. Set is lock-free and
// allocation-free.
type Gauge struct {
	bits atomic.Uint64
	self *atomic.Uint64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
	g.self.Add(1)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bins observations into fixed-width buckets over [min, max) with
// underflow/overflow tails, mirroring stats.Histogram's geometry but with
// atomic counters so Observe is lock-free and allocation-free. Snapshot
// converts back into a stats.Histogram for quantile math.
type Histogram struct {
	min, max float64
	width    float64
	buckets  []atomic.Uint64
	under    atomic.Uint64
	over     atomic.Uint64
	count    atomic.Uint64
	sumBits  atomic.Uint64
	self     *atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	switch {
	case v < h.min:
		h.under.Add(1)
	case v >= h.max:
		h.over.Add(1)
	default:
		idx := int((v - h.min) / h.width)
		if idx >= len(h.buckets) { // float edge case at the top boundary
			idx = len(h.buckets) - 1
		}
		h.buckets[idx].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.self.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot copies the current bucket counts into a stats.Histogram with the
// same geometry (underflow samples land at min, overflow at max), so
// existing quantile/render machinery applies. Export path only: allocates.
func (h *Histogram) Snapshot() *stats.Histogram {
	s := stats.NewHistogram(h.min, h.max, len(h.buckets))
	s.AddN(h.min-h.width, h.under.Load()) // below min: under bucket
	for i := range h.buckets {
		s.AddN(h.min+(float64(i)+0.5)*h.width, h.buckets[i].Load())
	}
	s.AddN(h.max, h.over.Load())
	return s
}

// metric is one registered (name, labels) series.
type metric struct {
	name   string // family name
	labels string // rendered {k="v",...}, or ""
	help   string
	kind   MetricKind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry holds registered metrics. Registration allocates and locks and
// must happen at deployment setup; the returned handles are the hot-path
// interface. Registering the same (name, labels) twice returns the same
// handle, so independently constructed components share series.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byKey   map[string]*metric
	selfOps atomic.Uint64
	// count mirrors len(metrics) atomically so the Series sampler can
	// detect late registrations without taking the registry lock on its
	// per-period path.
	count atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// SelfOps returns the number of hot-path telemetry operations performed
// against this registry's handles — the registry's own-cost account. Each
// Inc/Add/Set/Observe is one op; multiply by the benchmarked per-op cost
// (see BenchmarkCounterInc and friends) for a wall-clock overhead estimate.
func (r *Registry) SelfOps() uint64 { return r.selfOps.Load() }

// renderLabels formats k/v pairs as a stable {k="v",...} string.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", kv))
	}
	parts := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// register returns the existing metric for (name, labels) or installs a new
// one built by mk. It panics if the name is already registered with a
// different kind — one family, one kind.
func (r *Registry) register(name, help string, kind MetricKind, kv []string, mk func() *metric) *metric {
	if name == "" {
		panic("telemetry: metric needs a name")
	}
	labels := renderLabels(kv)
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}
	m := mk()
	m.name, m.labels, m.help, m.kind = name, labels, help, kind
	r.metrics = append(r.metrics, m)
	r.byKey[key] = m
	r.count.Store(int64(len(r.metrics)))
	return m
}

// Counter registers (or fetches) a counter. kv is an alternating
// key1, value1, key2, value2, ... label list.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	m := r.register(name, help, KindCounter, kv, func() *metric {
		return &metric{c: &Counter{self: &r.selfOps}}
	})
	return m.c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	m := r.register(name, help, KindGauge, kv, func() *metric {
		return &metric{g: &Gauge{self: &r.selfOps}}
	})
	return m.g
}

// Histogram registers (or fetches) a histogram with `buckets` equal-width
// bins over [min, max).
func (r *Registry) Histogram(name, help string, min, max float64, buckets int, kv ...string) *Histogram {
	if buckets <= 0 || !(max > min) {
		panic(fmt.Sprintf("telemetry: histogram %s needs positive buckets over a non-empty range", name))
	}
	m := r.register(name, help, KindHistogram, kv, func() *metric {
		return &metric{h: &Histogram{
			min: min, max: max,
			width:   (max - min) / float64(buckets),
			buckets: make([]atomic.Uint64, buckets),
			self:    &r.selfOps,
		}}
	})
	return m.h
}

// formatValue renders a float in Prometheus text style.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// joinLabels merges a rendered label set with one extra pair (used for
// histogram `le` labels).
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus writes every registered metric as Prometheus text
// exposition format (version 0.0.4): families sorted by name, one HELP/TYPE
// header per family, histograms expanded into cumulative _bucket/_sum/_count
// series. Export path: allocates freely.
func (r *Registry) WritePrometheus(out io.Writer) error {
	var w strings.Builder
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()

	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	lastFamily := ""
	for _, m := range ms {
		if m.name != lastFamily {
			fmt.Fprintf(&w, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(&w, "# TYPE %s %s\n", m.name, m.kind)
			lastFamily = m.name
		}
		switch m.kind {
		case KindCounter:
			fmt.Fprintf(&w, "%s%s %d\n", m.name, m.labels, m.c.Value())
		case KindGauge:
			fmt.Fprintf(&w, "%s%s %s\n", m.name, m.labels, formatValue(m.g.Value()))
		case KindHistogram:
			h := m.h
			cum := h.under.Load()
			for i := range h.buckets {
				cum += h.buckets[i].Load()
				le := formatValue(h.min + float64(i+1)*h.width)
				fmt.Fprintf(&w, "%s_bucket%s %d\n", m.name, joinLabels(m.labels, `le="`+le+`"`), cum)
			}
			cum += h.over.Load()
			fmt.Fprintf(&w, "%s_bucket%s %d\n", m.name, joinLabels(m.labels, `le="+Inf"`), cum)
			fmt.Fprintf(&w, "%s_sum%s %s\n", m.name, m.labels, formatValue(h.Sum()))
			fmt.Fprintf(&w, "%s_count%s %d\n", m.name, m.labels, h.Count())
		default:
			panic(fmt.Sprintf("telemetry: unknown metric kind %d", int(m.kind)))
		}
	}
	_, err := io.WriteString(out, w.String())
	return err
}
