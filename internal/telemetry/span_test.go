package telemetry

import (
	"strings"
	"sync/atomic"
	"testing"
)

func newTestRecorder(capacity int) (*SpanRecorder, *atomic.Uint64) {
	var self atomic.Uint64
	return NewSpanRecorder(capacity, &self), &self
}

func TestSpanRecorderBasics(t *testing.T) {
	rec, self := newTestRecorder(4)
	rec.Record(0, SpanProbe, 10, 1, 5)
	rec.Record(1, SpanDetect, 10, 3, 1)
	if got := rec.Total(); got != 2 {
		t.Fatalf("Total() = %d, want 2", got)
	}
	if got := rec.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d, want 0", got)
	}
	if got := self.Load(); got != 2 {
		t.Fatalf("self ops = %d, want 2", got)
	}
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("len(Spans()) = %d, want 2", len(spans))
	}
	want := Span{Start: 10, Periods: 3, Kind: SpanDetect, Track: 1, Value: 1}
	if spans[1] != want {
		t.Fatalf("Spans()[1] = %+v, want %+v", spans[1], want)
	}
}

func TestSpanRecorderDropOldest(t *testing.T) {
	rec, _ := newTestRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Record(0, SpanProbe, uint64(i), 1, 0)
	}
	if got := rec.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	if got := rec.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("len(Spans()) = %d, want 4 (ring cap)", len(spans))
	}
	// Oldest-first: starts 6, 7, 8, 9 survive.
	for i, s := range spans {
		if want := uint64(6 + i); s.Start != want {
			t.Errorf("Spans()[%d].Start = %d, want %d", i, s.Start, want)
		}
	}
}

func TestSpanRecorderRejectsBadSetup(t *testing.T) {
	var self atomic.Uint64
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero capacity", func() { NewSpanRecorder(0, &self) }},
		{"nil self", func() { NewSpanRecorder(8, nil) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestSpanKindString(t *testing.T) {
	names := map[SpanKind]string{
		SpanProbe:    "probe",
		SpanPublish:  "publish",
		SpanDetect:   "detect",
		SpanShutter:  "shutter",
		SpanHold:     "hold",
		SpanDegraded: "degraded",
		SpanQueued:   "queued",
		SpanJob:      "job",
		SpanKind(99): "SpanKind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	// Every real kind has a distinct non-default name.
	seen := map[string]bool{}
	for k := SpanKind(0); k < numSpanKinds; k++ {
		s := k.String()
		if strings.HasPrefix(s, "SpanKind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate span kind name %q", s)
		}
		seen[s] = true
	}
}

func TestChromeRoundTrip(t *testing.T) {
	rec, _ := newTestRecorder(16)
	rec.NameTrack(0, "latency/lbm")
	rec.NameTrack(1, "batch/mcf")
	rec.Record(0, SpanProbe, 0, 1, 12345)
	rec.Record(1, SpanDetect, 2, 4, 1)
	rec.Record(1, SpanHold, 6, 8, 1)

	var sb strings.Builder
	if err := rec.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	events, err := ParseChromeTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("export did not parse back: %v", err)
	}

	var meta, complete int
	byName := map[string]ChromeEvent{}
	for _, e := range events {
		switch e.Phase {
		case "M":
			meta++
		case "X":
			complete++
			byName[e.Name] = e
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if meta != 2 {
		t.Errorf("metadata events = %d, want 2 (one per named track)", meta)
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3 (one per span)", complete)
	}
	// 1 period = 1000 µs: the hold span starts at period 6 for 8 periods.
	hold := byName["hold"]
	if hold.Ts != 6000 || hold.Dur != 8000 || hold.Tid != 1 {
		t.Errorf("hold event = %+v, want ts=6000 dur=8000 tid=1", hold)
	}
	if v := byName["probe"].ArgNumber("value"); v != 12345 {
		t.Errorf("probe value = %v, want 12345", v)
	}
}

func TestChromeMetadataJSONShape(t *testing.T) {
	rec, _ := newTestRecorder(4)
	rec.NameTrack(3, "core3")
	var sb strings.Builder
	if err := rec.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{`"ph":"M"`, `"name":"thread_name"`, `"core3"`, `"tid":3`} {
		if !strings.Contains(got, want) {
			t.Errorf("chrome JSON missing %s:\n%s", want, got)
		}
	}
}

func TestTrackNames(t *testing.T) {
	rec, _ := newTestRecorder(4)
	rec.NameTrack(7, "batch/milc")
	if got := rec.TrackName(7); got != "batch/milc" {
		t.Fatalf("TrackName(7) = %q", got)
	}
	if got := rec.TrackName(8); got != "" {
		t.Fatalf("TrackName(8) = %q, want empty", got)
	}
}
