package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseText fuzzes the Prometheus text reader caer-top and the CI
// telemetry smoke depend on. Seeds cover the writer's own output (the
// golden corpus: whatever WriteSnapshot emits must stay parseable) plus
// labeled, escaped, and malformed shapes.
//
// Invariants: ParseText never panics, and any accepted input re-renders
// through renderTextMetric into an equivalent parse (writer/parser
// round-trip, generalized to arbitrary accepted inputs).
func FuzzParseText(f *testing.F) {
	// Live snapshot of the default registry — the real exposition format.
	PMUReads.Inc()
	var snap bytes.Buffer
	if err := WriteSnapshot(&snap); err != nil {
		f.Fatalf("snapshot seed: %v", err)
	}
	f.Add(snap.Bytes())
	f.Add([]byte("caer_pmu_reads_total 42\n"))
	f.Add([]byte(`caer_runner_runs_total{mode="caer"} 3` + "\n"))
	f.Add([]byte(`m{k="a\"b\\c",k2="v2"} 1.5e-9` + "\n# HELP m help\n# TYPE m counter\n"))
	f.Add([]byte("name_only\n"))
	f.Add([]byte(`unterminated{k="v 1`))
	f.Add([]byte("nan_val NaN\ninf_val +Inf\n"))
	f.Add([]byte("\n\n  # only comments\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		metrics, err := ParseText(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only the no-panic invariant applies
		}
		// Round-trip: re-render every accepted sample and parse it back.
		var buf bytes.Buffer
		for _, m := range metrics {
			renderTextMetric(&buf, m)
		}
		back, err := ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-render of accepted input failed to parse: %v\nrendered:\n%s", err, buf.String())
		}
		if len(back) != len(metrics) {
			t.Fatalf("round-trip changed sample count: %d -> %d\nrendered:\n%s", len(metrics), len(back), buf.String())
		}
		for i := range metrics {
			if !textMetricEqual(metrics[i], back[i]) {
				t.Fatalf("round-trip changed sample %d: %+v -> %+v", i, metrics[i], back[i])
			}
		}
	})
}

// renderTextMetric writes one sample the way WritePrometheus does:
// name{k="v",...} value, labels sorted for determinism.
func renderTextMetric(buf *bytes.Buffer, m TextMetric) {
	buf.WriteString(m.Name)
	if m.Labels != nil {
		keys := make([]string, 0, len(m.Labels))
		for k := range m.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(buf, "%s=%s", k, strconv.Quote(m.Labels[k]))
		}
		buf.WriteByte('}')
	}
	buf.WriteByte(' ')
	buf.WriteString(strconv.FormatFloat(m.Value, 'g', -1, 64))
	buf.WriteByte('\n')
}

func textMetricEqual(a, b TextMetric) bool {
	if strings.TrimSpace(a.Name) != strings.TrimSpace(b.Name) {
		return false
	}
	if !(a.Value == b.Value || (math.IsNaN(a.Value) && math.IsNaN(b.Value))) {
		return false
	}
	la, lb := a.Labels, b.Labels
	if la == nil {
		la = map[string]string{}
	}
	if lb == nil {
		lb = map[string]string{}
	}
	return reflect.DeepEqual(la, lb)
}
