package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSeriesCounterDeltas(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("caer_test_events_total", "events")
	s := NewSeries(reg, 8)

	c.Add(3)
	s.Sample()
	c.Add(5)
	s.Sample()
	s.Sample() // no activity

	ref, ok := s.Lookup("caer_test_events_total")
	if !ok {
		t.Fatal("counter track not found")
	}
	if got := s.Rate(ref, 3); got != (3+5+0)/3.0 {
		t.Fatalf("Rate over 3 = %v, want %v", got, 8.0/3)
	}
	if got := s.Rate(ref, 1); got != 0 {
		t.Fatalf("Rate over last 1 = %v, want 0", got)
	}
	if got := s.Rate(ref, 2); got != 2.5 {
		t.Fatalf("Rate over last 2 = %v, want 2.5", got)
	}
	// Window wider than history clamps.
	if got := s.Rate(ref, 100); got != 8.0/3 {
		t.Fatalf("clamped Rate = %v, want %v", got, 8.0/3)
	}
}

func TestSeriesGaugePoints(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("caer_test_level", "level")
	s := NewSeries(reg, 4)
	ref, _ := s.Lookup("caer_test_level")

	for _, v := range []float64{1, 2, 3, 4, 5, 6} {
		g.Set(v)
		s.Sample()
	}
	// Capacity 4: retained window is samples 2..5 → values 3,4,5,6.
	if got := s.Mean(ref, 4); got != 4.5 {
		t.Fatalf("Mean over retained = %v, want 4.5", got)
	}
	if got := s.Mean(ref, 2); got != 5.5 {
		t.Fatalf("Mean over last 2 = %v, want 5.5", got)
	}
	if s.FirstRetained() != 2 || s.Samples() != 6 {
		t.Fatalf("retention bookkeeping: first %d samples %d", s.FirstRetained(), s.Samples())
	}
}

func TestSeriesHistogramWindows(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("caer_test_latency", "latency", 0, 100, 10)
	s := NewSeries(reg, 16)
	ref, _ := s.Lookup("caer_test_latency")

	// Period 0: fast observations only.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	s.Sample()
	// Period 1: half the observations over 50.
	for i := 0; i < 5; i++ {
		h.Observe(5)
		h.Observe(75)
	}
	s.Sample()

	if got := s.OverShare(ref, 1, 50); got != 0.5 {
		t.Fatalf("OverShare last period = %v, want 0.5", got)
	}
	if got := s.OverShare(ref, 2, 50); got != 0.25 {
		t.Fatalf("OverShare both periods = %v, want 0.25", got)
	}
	// A bound on a bucket edge counts that bucket as over; a bound inside
	// a bucket leaves the straddling bucket good.
	if got := s.OverShare(ref, 1, 70); got != 0.5 {
		t.Fatalf("OverShare bound 70 = %v, want 0.5 (bucket [70,80) is over)", got)
	}
	if got := s.OverShare(ref, 1, 71); got != 0 {
		t.Fatalf("OverShare bound 71 = %v, want 0 (straddling bucket is good)", got)
	}
	// Overflow always counts as over.
	h.Observe(1000)
	s.Sample()
	if got := s.OverShare(ref, 1, 99); got != 1.0 {
		t.Fatalf("OverShare overflow = %v, want 1", got)
	}
	// Empty window → no burn.
	s.Sample()
	if got := s.OverShare(ref, 1, 50); got != 0 {
		t.Fatalf("OverShare of empty window = %v, want 0", got)
	}

	// Windowed quantile over the first two periods: 20 observations, 15 at
	// 5 and 5 at 75; p50 lands in the [0,10) bucket.
	q := s.QuantileOverAt(ref, 2, 2, 0.5)
	if q < 0 || q >= 10 {
		t.Fatalf("windowed p50 = %v, want in [0,10)", q)
	}
	q99 := s.QuantileOverAt(ref, 2, 2, 0.99)
	if q99 < 70 || q99 > 80 {
		t.Fatalf("windowed p99 = %v, want in [70,80]", q99)
	}
	// Mean: sum deltas / count deltas.
	mean := s.MeanAt(ref, 2, 2)
	want := (10*5 + 5*5 + 5*75) / 20.0
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("windowed mean = %v, want %v", mean, want)
	}
}

func TestSeriesLateRegistration(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("caer_test_a_total", "a")
	s := NewSeries(reg, 8)
	c.Inc()
	s.Sample()

	// Register after construction: picked up on the next Sample.
	late := reg.Counter("caer_test_b_total", "b")
	late.Add(7)
	s.Sample()

	ref, ok := s.Lookup("caer_test_b_total")
	if !ok {
		t.Fatal("late counter track not found after Sample")
	}
	// The delta baseline for a late counter is its value at extend time, so
	// the 7 pre-extend increments never appear as a spike... they were
	// absorbed into the baseline. Only post-extend increments count.
	late.Add(2)
	s.Sample()
	if got := s.Rate(ref, 1); got != 2 {
		t.Fatalf("late counter rate = %v, want 2", got)
	}
}

func TestSeriesSampleAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("caer_test_events_total", "events")
	g := reg.Gauge("caer_test_level", "level")
	h := reg.Histogram("caer_test_latency", "latency", 0, 100, 16)
	s := NewSeries(reg, 32)

	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(1)
		h.Observe(50)
		s.Sample()
	})
	if allocs != 0 {
		t.Fatalf("Series.Sample allocates %v per period, want 0", allocs)
	}
}

func TestSeriesQueryAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("caer_test_events_total", "events")
	h := reg.Histogram("caer_test_latency", "latency", 0, 100, 16)
	s := NewSeries(reg, 32)
	for i := 0; i < 40; i++ {
		c.Inc()
		h.Observe(float64(i % 100))
		s.Sample()
	}
	cref, _ := s.Lookup("caer_test_events_total")
	href, _ := s.Lookup("caer_test_latency")
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.Rate(cref, 16)
		_ = s.Mean(cref, 16)
		_ = s.OverShare(href, 16, 50)
	})
	if allocs != 0 {
		t.Fatalf("windowed queries allocate %v, want 0", allocs)
	}
}

// buildDumpSeries drives a representative mixed workload for round-trip
// tests: wrapped rings, labels, all three kinds.
func buildDumpSeries(t *testing.T) *Series {
	t.Helper()
	reg := NewRegistry()
	c := reg.Counter("caer_test_events_total", "events", "svc", "mcf")
	g := reg.Gauge("caer_test_level", "level")
	h := reg.Histogram("caer_test_latency", "latency", 0, 100, 8, "svc", "mcf")
	s := NewSeries(reg, 4)
	for i := 0; i < 7; i++ {
		c.Add(uint64(i))
		g.Set(float64(i) * 1.5)
		h.Observe(float64(i * 13 % 100))
		if i%2 == 0 {
			h.Observe(250) // overflow
		}
		s.Sample()
	}
	return s
}

func TestSeriesDumpRoundTrip(t *testing.T) {
	s := buildDumpSeries(t)
	var buf bytes.Buffer
	if err := s.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	p, err := ParseSeries(strings.NewReader(first))
	if err != nil {
		t.Fatalf("ParseSeries: %v\n%s", err, first)
	}
	if p.Samples() != s.Samples() || p.Capacity() != s.Capacity() {
		t.Fatalf("parsed geometry %d/%d, want %d/%d", p.Samples(), p.Capacity(), s.Samples(), s.Capacity())
	}

	// Queries agree between live and parsed stores.
	for _, name := range []string{"caer_test_events_total", "caer_test_latency"} {
		lr, ok1 := s.Lookup(name, "svc", "mcf")
		pr, ok2 := p.Lookup(name, "svc", "mcf")
		if !ok1 || !ok2 {
			t.Fatalf("lookup %s: live %v parsed %v", name, ok1, ok2)
		}
		if s.Kind(lr) != p.Kind(pr) {
			t.Fatalf("%s kind mismatch", name)
		}
	}
	lc, _ := s.Lookup("caer_test_events_total", "svc", "mcf")
	pc, _ := p.Lookup("caer_test_events_total", "svc", "mcf")
	if a, b := s.Rate(lc, 4), p.Rate(pc, 4); a != b {
		t.Fatalf("rate mismatch live %v parsed %v", a, b)
	}
	lh, _ := s.Lookup("caer_test_latency", "svc", "mcf")
	ph, _ := p.Lookup("caer_test_latency", "svc", "mcf")
	if a, b := s.OverShare(lh, 4, 50), p.OverShare(ph, 4, 50); a != b {
		t.Fatalf("overshare mismatch live %v parsed %v", a, b)
	}
	if a, b := s.Mean(lh, 4), p.Mean(ph, 4); a != b {
		t.Fatalf("mean mismatch live %v parsed %v", a, b)
	}
	if a, b := s.QuantileOver(lh, 4, 0.99), p.QuantileOver(ph, 4, 0.99); a != b {
		t.Fatalf("quantile mismatch live %v parsed %v", a, b)
	}

	// Canonical encoding: dump → parse → dump is byte-identical.
	var buf2 bytes.Buffer
	if err := p.WriteDump(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatalf("re-dump differs:\n--- first\n%s\n--- second\n%s", first, buf2.String())
	}
}

func TestParsedSeriesIsReadOnly(t *testing.T) {
	s := buildDumpSeries(t)
	var buf bytes.Buffer
	if err := s.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ParseSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sample on a parsed series should panic")
		}
	}()
	p.Sample()
}

func TestParseSeriesRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad version":     `{"version":2,"capacity":4,"samples":0,"first":0}`,
		"bad capacity":    `{"version":1,"capacity":0,"samples":0,"first":0}`,
		"over retention":  `{"version":1,"capacity":2,"samples":9,"first":1}`,
		"unwrapped first": `{"version":1,"capacity":8,"samples":3,"first":1}`,
		"unknown kind":    `{"version":1,"capacity":4,"samples":0,"first":0,"tracks":[{"name":"x","kind":"summary"}]}`,
		"nameless track":  `{"version":1,"capacity":4,"samples":0,"first":0,"tracks":[{"kind":"counter"}]}`,
		"value count":     `{"version":1,"capacity":4,"samples":2,"first":0,"tracks":[{"name":"x","kind":"counter","values":[1]}]}`,
		"kind mixing":     `{"version":1,"capacity":4,"samples":1,"first":0,"tracks":[{"name":"x","kind":"counter","values":[1],"buckets":3}]}`,
		"row cell range":  `{"version":1,"capacity":4,"samples":1,"first":0,"tracks":[{"name":"x","kind":"histogram","min":0,"max":10,"buckets":2,"rows":[[9,1]],"sums":[0]}]}`,
		"row order":       `{"version":1,"capacity":4,"samples":1,"first":0,"tracks":[{"name":"x","kind":"histogram","min":0,"max":10,"buckets":2,"rows":[[2,1,1,1]],"sums":[0]}]}`,
		"zero delta":      `{"version":1,"capacity":4,"samples":1,"first":0,"tracks":[{"name":"x","kind":"histogram","min":0,"max":10,"buckets":2,"rows":[[1,0]],"sums":[0]}]}`,
		"bad geometry":    `{"version":1,"capacity":4,"samples":0,"first":0,"tracks":[{"name":"x","kind":"histogram","min":5,"max":5,"buckets":2}]}`,
	}
	for name, in := range cases {
		if _, err := ParseSeries(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParseSeries accepted %s", name, in)
		}
	}
}

func FuzzParseSeries(f *testing.F) {
	// Seed with real writer output plus the malformed shapes above.
	reg := NewRegistry()
	c := reg.Counter("caer_test_events_total", "events")
	h := reg.Histogram("caer_test_latency", "latency", 0, 100, 4)
	s := NewSeries(reg, 3)
	for i := 0; i < 5; i++ {
		c.Add(uint64(i))
		h.Observe(float64(i * 30))
		s.Sample()
	}
	var buf bytes.Buffer
	if err := s.WriteDump(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"capacity":4,"samples":0,"first":0}`))
	f.Add([]byte(`{"version":1,"capacity":2,"samples":9,"first":7,"tracks":[{"name":"x","kind":"gauge","values":[1,2]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseSeries(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must re-dump and re-parse to a byte-identical
		// canonical form (round-trip stability).
		var d1 bytes.Buffer
		if err := p.WriteDump(&d1); err != nil {
			t.Fatalf("dump of accepted parse failed: %v", err)
		}
		p2, err := ParseSeries(bytes.NewReader(d1.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own dump failed: %v\n%s", err, d1.String())
		}
		var d2 bytes.Buffer
		if err := p2.WriteDump(&d2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
			t.Fatalf("round trip not stable:\n%s\nvs\n%s", d1.String(), d2.String())
		}
		// Queries must not panic on any accepted input.
		for i, tr := range p.Tracks() {
			ref := TrackRef(i)
			switch tr.Kind {
			case KindCounter:
				_ = p.Rate(ref, 4)
			case KindGauge:
				_ = p.Mean(ref, 4)
			case KindHistogram:
				_ = p.OverShare(ref, 4, 50)
				_ = p.QuantileOver(ref, 4, 0.99)
			}
		}
	})
}
