package telemetry

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	if got := r.SelfOps(); got != 2 {
		t.Fatalf("SelfOps() = %d, want 2 (one per Inc/Add)", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_depth", "depth")
	if got := g.Value(); got != 0 {
		t.Fatalf("zero gauge = %v, want 0", got)
	}
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("Value() = %v, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("Value() = %v, want -1", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat", "latency", 0, 10, 10)
	for _, v := range []float64{-1, 0, 0.5, 5, 9.99, 10, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
	if got := h.Sum(); math.Abs(got-124.49) > 1e-9 {
		t.Fatalf("Sum() = %v, want 124.49", got)
	}
	if got := h.under.Load(); got != 1 {
		t.Fatalf("under = %d, want 1", got)
	}
	if got := h.over.Load(); got != 2 {
		t.Fatalf("over = %d, want 2", got)
	}
	s := h.Snapshot()
	if got := s.N(); got != 7 {
		t.Fatalf("Snapshot().N() = %d, want 7", got)
	}
	// Median of {-1, 0, 0.5, 5, 9.99, 10, 100} sits in the bucketed middle.
	if q := s.Quantile(0.5); q < 0 || q > 6 {
		t.Fatalf("Quantile(0.5) = %v, want within [0,6]", q)
	}
}

func TestRegistryDedupAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "help")
	b := r.Counter("test_total", "help")
	if a != b {
		t.Fatal("same (name, labels) should return the same handle")
	}
	c := r.Counter("test_total", "help", "mode", "x")
	if a == c {
		t.Fatal("different labels should return a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("test_total", "help")
}

func TestRegistryOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list should panic")
		}
	}()
	r.Counter("test_total", "help", "mode")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "last family").Add(7)
	r.Counter("a_total", "events by mode", "mode", "x").Inc()
	r.Counter("a_total", "events by mode", "mode", "y").Add(2)
	r.Gauge("g_depth", "depth").Set(1.5)
	h := r.Histogram("h_lat", "latency", 0, 4, 2)
	h.Observe(1)
	h.Observe(3)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# HELP a_total events by mode\n# TYPE a_total counter\n",
		`a_total{mode="x"} 1`,
		`a_total{mode="y"} 2`,
		"# TYPE g_depth gauge",
		"g_depth 1.5",
		`h_lat_bucket{le="2"} 1`,
		`h_lat_bucket{le="4"} 2`,
		`h_lat_bucket{le="+Inf"} 3`,
		"h_lat_sum 103",
		"h_lat_count 3",
		"z_total 7",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("snapshot missing %q\n%s", want, got)
		}
	}
	// One HELP header per family, not per series.
	if n := strings.Count(got, "# HELP a_total"); n != 1 {
		t.Errorf("HELP a_total appears %d times, want 1", n)
	}
	// Families sorted.
	if strings.Index(got, "a_total") > strings.Index(got, "z_total") {
		t.Error("families not sorted by name")
	}
}

func TestSnapshotParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "events", "mode", "a b").Add(3)
	r.Gauge("rt_depth", "depth").Set(2.25)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	ms, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TextMetric{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	if m := byName["rt_total"]; m.Value != 3 || m.Label("mode") != "a b" {
		t.Fatalf("rt_total parsed as %+v", m)
	}
	if m := byName["rt_depth"]; m.Value != 2.25 {
		t.Fatalf("rt_depth parsed as %+v", m)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		"x{unterminated 3\n",
		"x 3 4 5\n",
		"x{a=\"b\"} notanumber\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted garbage", bad)
		}
	}
}

func TestDefaultSpineFamilies(t *testing.T) {
	// The spine pre-registers every family DESIGN.md §10 documents; spot
	// check the ones the CI smoke step asserts on.
	var sb strings.Builder
	if err := WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, fam := range []string{
		"caer_pmu_reads_total",
		"caer_pmu_faults_total",
		"caer_comm_publishes_total",
		"caer_engine_ticks_total",
		"caer_engine_verdicts_total",
		"caer_sched_admissions_total",
		"caer_runner_runs_total",
		"caer_telemetry_ops_total",
		"caer_telemetry_spans_total",
	} {
		if !strings.Contains(got, fam) {
			t.Errorf("default snapshot missing family %s", fam)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc", "concurrent", 0, 100, 10)
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*each {
		t.Fatalf("Count() = %d, want %d", got, workers*each)
	}
	wantSum := float64(workers) * each / 100 * (99 * 100 / 2)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("Sum() = %v, want %v (CAS loop lost updates?)", got, wantSum)
	}
}

// Zero-allocation pins for every hot-path operation (ISSUE 4 acceptance
// criterion). These are the operations in the caer-vet hotpath inventory.

func TestCounterIncAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op, want 0", n)
	}
}

func TestGaugeSetAllocs(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_depth", "t")
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.25) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op, want 0", n)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat", "t", 0, 100, 20)
	v := 0.0
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 0.5
	}); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

func TestSpanRecordAllocs(t *testing.T) {
	var self atomic.Uint64
	rec := NewSpanRecorder(1024, &self)
	p := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		rec.Record(1, SpanDetect, p, 3, 1)
		p++
	}); n != 0 {
		t.Fatalf("SpanRecorder.Record allocates %v/op, want 0", n)
	}
}

func TestHTTPHandler(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "caer_engine_ticks_total") {
		t.Errorf("/metrics: code %d, body %.80q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d, body %.80q", code, body)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "cmdline") {
		t.Errorf("/debug/vars: code %d, body %.80q", code, body)
	}
	if code, body := get("/trace"); code != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Errorf("/trace: code %d, body %.80q", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code %d, want 404", code)
	}
}

func TestServe(t *testing.T) {
	ln, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics via Serve: code %d", resp.StatusCode)
	}
}

func TestMetricKindString(t *testing.T) {
	cases := map[MetricKind]string{
		KindCounter:    "counter",
		KindGauge:      "gauge",
		KindHistogram:  "histogram",
		MetricKind(99): "MetricKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
