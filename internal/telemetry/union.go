package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Union folds src's current metric values into r, appending the extra
// label pairs kv (alternating key1, value1, ...) to every series — the
// fleet-telemetry merge path: each machine keeps its own registry with
// unprefixed series, and one export-time Union per machine builds the
// fleet-wide snapshot with a machine label distinguishing them
// (`caer_fleet_node_queue_depth{machine="3"}`).
//
// Semantics per kind: counters add, gauges overwrite (a fresh snapshot
// registry makes this exact), histograms add bucket-wise and require
// identical geometry. Union snapshots values at call time; it is an export
// path (locks, allocates) and never touches src's hot handles, so every
// observation path stays allocation-free. It panics when a series already
// exists in r under a different kind, when histogram geometry mismatches,
// or when an extra label key collides with one of src's own label keys.
func (r *Registry) Union(src *Registry, kv ...string) {
	extra := renderLabels(kv)
	src.mu.Lock()
	ms := make([]*metric, len(src.metrics))
	copy(ms, src.metrics)
	src.mu.Unlock()

	for _, m := range ms {
		labels := mergeLabelStrings(m.name, m.labels, extra)
		dst := r.registerRendered(m.name, m.help, m.kind, labels, func() *metric {
			switch m.kind {
			case KindCounter:
				return &metric{c: &Counter{self: &r.selfOps}}
			case KindGauge:
				return &metric{g: &Gauge{self: &r.selfOps}}
			case KindHistogram:
				return &metric{h: &Histogram{
					min: m.h.min, max: m.h.max, width: m.h.width,
					buckets: make([]atomic.Uint64, len(m.h.buckets)),
					self:    &r.selfOps,
				}}
			default:
				panic(fmt.Sprintf("telemetry: unknown metric kind %d", int(m.kind)))
			}
		})
		switch m.kind {
		case KindCounter:
			dst.c.v.Add(m.c.Value())
		case KindGauge:
			dst.g.bits.Store(m.g.bits.Load())
		case KindHistogram:
			foldHistogram(dst.h, m.h)
		default:
			panic(fmt.Sprintf("telemetry: unknown metric kind %d", int(m.kind)))
		}
	}
}

// registerRendered is register() for an already-rendered label string (the
// Union path, where labels come from merging two rendered sets rather than
// a kv list).
func (r *Registry) registerRendered(name, help string, kind MetricKind, labels string, mk func() *metric) *metric {
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}
	m := mk()
	m.name, m.labels, m.help, m.kind = name, labels, help, kind
	r.metrics = append(r.metrics, m)
	r.byKey[key] = m
	r.count.Store(int64(len(r.metrics)))
	return m
}

// mergeLabelStrings combines two rendered {k="v",...} label sets into one,
// re-sorted for a stable series key. It panics on a duplicate key — a
// machine label colliding with an existing series label would emit invalid
// exposition text.
func mergeLabelStrings(name, a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	parts := append(splitLabelParts(a), splitLabelParts(b)...)
	sort.Strings(parts)
	for i := 1; i < len(parts); i++ {
		ki := parts[i][:strings.IndexByte(parts[i], '=')]
		kp := parts[i-1][:strings.IndexByte(parts[i-1], '=')]
		if ki == kp {
			panic(fmt.Sprintf("telemetry: Union label key %q collides on series %s", ki, name))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// splitLabelParts splits a rendered {k="v",k2="v2"} string into its k="v"
// parts, respecting quoted commas.
func splitLabelParts(s string) []string {
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	var parts []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && inQuote:
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case s[i] == ',' && !inQuote:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}

// foldHistogram adds src's bucket counts and sum into dst (identical
// geometry required).
func foldHistogram(dst, src *Histogram) {
	if dst.min != src.min || dst.max != src.max || len(dst.buckets) != len(src.buckets) {
		panic(fmt.Sprintf("telemetry: Union of mismatched histograms [%v,%v)x%d vs [%v,%v)x%d",
			dst.min, dst.max, len(dst.buckets), src.min, src.max, len(src.buckets)))
	}
	for i := range src.buckets {
		dst.buckets[i].Add(src.buckets[i].Load())
	}
	dst.under.Add(src.under.Load())
	dst.over.Add(src.over.Load())
	dst.count.Add(src.count.Load())
	for {
		old := dst.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + src.Sum())
		if dst.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
}
