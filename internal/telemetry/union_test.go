package telemetry

import (
	"math"
	"strings"
	"testing"
)

// newFleetRegistries builds two per-machine registries shaped like the
// fleet's (same families, different values), returning them with their
// handles.
func newFleetRegistries() (r0, r1 *Registry, c0, c1 *Counter, g0, g1 *Gauge, h0, h1 *Histogram) {
	r0, r1 = NewRegistry(), NewRegistry()
	c0 = r0.Counter("caer_fleet_node_dispatches_total", "jobs dispatched to this machine")
	c1 = r1.Counter("caer_fleet_node_dispatches_total", "jobs dispatched to this machine")
	g0 = r0.Gauge("caer_fleet_node_queue_depth", "jobs waiting on this machine")
	g1 = r1.Gauge("caer_fleet_node_queue_depth", "jobs waiting on this machine")
	h0 = r0.Histogram("caer_fleet_node_sojourn_periods", "job sojourn", 0, 100, 10)
	h1 = r1.Histogram("caer_fleet_node_sojourn_periods", "job sojourn", 0, 100, 10)
	return
}

// TestUnionMergesWithMachineLabels pins the fleet merge semantics: each
// source registry's series appear in the destination with the extra
// machine label, counters summed into like-labeled series, gauges copied,
// histograms folded bucket-wise.
func TestUnionMergesWithMachineLabels(t *testing.T) {
	r0, r1, c0, c1, g0, g1, h0, h1 := newFleetRegistries()
	c0.Add(3)
	c1.Add(5)
	g0.Set(2)
	g1.Set(7)
	h0.Observe(10)
	h0.Observe(250) // overflow
	h1.Observe(10)
	h1.Observe(-1) // underflow

	merged := NewRegistry()
	merged.Union(r0, "machine", "0")
	merged.Union(r1, "machine", "1")

	mc0 := merged.Counter("caer_fleet_node_dispatches_total", "", "machine", "0")
	mc1 := merged.Counter("caer_fleet_node_dispatches_total", "", "machine", "1")
	if mc0.Value() != 3 || mc1.Value() != 5 {
		t.Fatalf("merged counters = %d/%d, want 3/5", mc0.Value(), mc1.Value())
	}
	mg1 := merged.Gauge("caer_fleet_node_queue_depth", "", "machine", "1")
	if mg1.Value() != 7 {
		t.Fatalf("merged gauge = %v, want 7", mg1.Value())
	}
	mh0 := merged.Histogram("caer_fleet_node_sojourn_periods", "", 0, 100, 10, "machine", "0")
	if mh0.Count() != 2 || mh0.Sum() != 260 {
		t.Fatalf("merged histogram count=%d sum=%v, want 2, 260", mh0.Count(), mh0.Sum())
	}

	// Same-label Union folds additively (a second snapshot of machine 0).
	merged.Union(r0, "machine", "0")
	if mc0.Value() != 6 {
		t.Fatalf("re-union counter = %d, want 6", mc0.Value())
	}
	mh1 := merged.Histogram("caer_fleet_node_sojourn_periods", "", 0, 100, 10, "machine", "1")
	if mh1.Count() != 2 {
		t.Fatalf("machine 1 histogram count = %d, want 2", mh1.Count())
	}
}

// TestUnionKeepsObservationAllocFree pins that the per-machine handles
// remain allocation-free after (and during interleaved) Union merges: the
// merge path reads the same atomics the hot path writes and never touches
// the handles themselves.
func TestUnionKeepsObservationAllocFree(t *testing.T) {
	r0, _, c0, _, g0, _, h0, _ := newFleetRegistries()
	merged := NewRegistry()
	merged.Union(r0, "machine", "0")
	if n := testing.AllocsPerRun(100, func() { c0.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op after Union", n)
	}
	if n := testing.AllocsPerRun(100, func() { g0.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op after Union", n)
	}
	if n := testing.AllocsPerRun(100, func() { h0.Observe(12) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op after Union", n)
	}
	// Handles created *in* the merged registry by Union observe alloc-free
	// too (they are ordinary handles).
	mc := merged.Counter("caer_fleet_node_dispatches_total", "", "machine", "0")
	if n := testing.AllocsPerRun(100, func() { mc.Add(2) }); n != 0 {
		t.Errorf("merged Counter.Add allocates %v/op", n)
	}
}

// TestUnionSnapshotParseRoundTrip renders a merged fleet snapshot and
// parses it back with ParseText: every series must survive with its
// machine label and value intact — the contract caer-top and the CI smoke
// rely on for the fleet endpoint.
func TestUnionSnapshotParseRoundTrip(t *testing.T) {
	r0, r1, c0, c1, g0, _, h0, _ := newFleetRegistries()
	c0.Add(11)
	c1.Add(13)
	g0.Set(4.5)
	h0.Observe(42)

	merged := NewRegistry()
	merged.Union(r0, "machine", "0")
	merged.Union(r1, "machine", "1")

	var sb strings.Builder
	if err := merged.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	ms, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText over merged snapshot: %v", err)
	}
	got := map[string]float64{}
	for _, m := range ms {
		got[m.Name+"|machine="+m.Label("machine")+"|le="+m.Label("le")] = m.Value
	}
	for key, want := range map[string]float64{
		"caer_fleet_node_dispatches_total|machine=0|le=": 11,
		"caer_fleet_node_dispatches_total|machine=1|le=": 13,
		"caer_fleet_node_queue_depth|machine=0|le=":      4.5,
		"caer_fleet_node_sojourn_periods_count|machine=0|le=": 1,
		"caer_fleet_node_sojourn_periods_sum|machine=0|le=":   42,
		"caer_fleet_node_sojourn_periods_bucket|machine=0|le=+Inf": 1,
	} {
		v, ok := got[key]
		if !ok {
			t.Errorf("merged snapshot missing series %s", key)
		} else if math.Abs(v-want) > 1e-9 {
			t.Errorf("series %s = %v, want %v", key, v, want)
		}
	}
}

// TestUnionLabelCollisionPanics pins that Union refuses an extra label key
// that collides with an existing series label.
func TestUnionLabelCollisionPanics(t *testing.T) {
	src := NewRegistry()
	src.Counter("caer_fleet_node_dispatches_total", "help", "machine", "9")
	defer func() {
		if recover() == nil {
			t.Fatal("Union with colliding label key did not panic")
		}
	}()
	NewRegistry().Union(src, "machine", "0")
}

// TestUnionKindMismatchPanics pins the one-family-one-kind invariant
// across the merge boundary.
func TestUnionKindMismatchPanics(t *testing.T) {
	src := NewRegistry()
	src.Counter("caer_fleet_mixed", "as counter")
	dst := NewRegistry()
	dst.Gauge("caer_fleet_mixed", "as gauge", "machine", "0")
	defer func() {
		if recover() == nil {
			t.Fatal("Union with kind mismatch did not panic")
		}
	}()
	dst.Union(src, "machine", "0")
}
