package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"

	"caer/internal/stats"
)

// Series is the telemetry time-series store (observability v2): a
// fixed-capacity ring per registered metric, sampled once per sampling
// period straight from the registry's lock-free handles. Counters are
// stored as per-period deltas, gauges as per-period points, histograms as
// per-period bucket deltas (plus a sum delta, so windowed means work).
// Sample is the per-period hot path and is allocation-free once the track
// table is built; late metric registrations are absorbed by the cold
// extend barrier on the next Sample. Windowed queries (Rate, Mean,
// OverShare, QuantileOver) read the retained window; the whole store dumps
// to a JSON snapshot (WriteDump) that ParseSeries round-trips, which is
// what `caer-doctor` replays offline.
//
// A Series is single-writer: Sample must be driven from the same
// per-period loop that owns the registry's period clock (the fleet tick,
// the runtime step). Queries are safe from that same goroutine; the
// export/dump paths snapshot what the writer has published.
type Series struct {
	reg    *Registry
	cap    int
	tracks []seriesTrack
	// tracked mirrors reg.count at the last extend, so Sample can detect
	// late registrations with one atomic load.
	tracked int64
	// samples is the lifetime Sample count; sample i (0-based) lands at
	// ring slot i%cap, so the retained window is [samples-min(samples,cap),
	// samples).
	samples int

	samplesTotal *Counter
	tracksGauge  *Gauge
}

// TrackRef identifies one tracked metric series inside a Series.
type TrackRef int

// TrackInfo describes one tracked series (for tooling and dumps).
type TrackInfo struct {
	Name   string
	Labels string // rendered {k="v",...} or ""
	Kind   MetricKind
}

// seriesTrack is one metric's ring. Counters and gauges use values;
// histograms use rows (per-period sparse bucket deltas flattened into
// cap*(buckets+2) cells: cell 0 is the underflow delta, cells 1..buckets
// the in-range buckets, cell buckets+1 the overflow delta) plus sums (the
// per-period sum delta).
type seriesTrack struct {
	m *metric

	// counter state: previous cumulative value.
	lastC uint64
	// values holds counter deltas or gauge points, cap entries.
	values []float64

	// histogram state.
	lastBuckets []uint64 // previous cumulative counts, buckets+2 entries
	lastSum     float64
	rows        []uint32  // cap * (buckets+2) per-period deltas
	sums        []float64 // cap per-period sum deltas
}

// rowWidth is the histogram row stride: under + buckets + over.
func (t *seriesTrack) rowWidth() int { return len(t.lastBuckets) }

// NewSeries builds a time-series store over reg retaining the most recent
// capacity samples per metric. Every metric registered at construction
// time is tracked immediately; metrics registered later are picked up by
// the first Sample after their registration (their rings backfill as
// zeros). NewSeries registers the store's own caer_series_* families into
// reg, so the store accounts for itself like the rest of the spine.
func NewSeries(reg *Registry, capacity int) *Series {
	if reg == nil {
		panic("telemetry: series needs a registry")
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("telemetry: series capacity %d must be positive", capacity))
	}
	s := &Series{reg: reg, cap: capacity}
	s.samplesTotal = reg.Counter("caer_series_samples_total", "per-period time-series samples taken from this registry")
	s.tracksGauge = reg.Gauge("caer_series_tracks", "metric series tracked by the time-series store")
	s.extend()
	return s
}

// Capacity returns the per-track ring capacity.
func (s *Series) Capacity() int { return s.cap }

// Samples returns the lifetime Sample count.
func (s *Series) Samples() int { return s.samples }

// FirstRetained returns the first sample index still held by the rings.
func (s *Series) FirstRetained() int {
	if s.samples > s.cap {
		return s.samples - s.cap
	}
	return 0
}

// Retained returns how many samples the rings currently hold.
func (s *Series) Retained() int { return s.samples - s.FirstRetained() }

// Tracks lists the tracked series in registration order.
func (s *Series) Tracks() []TrackInfo {
	out := make([]TrackInfo, len(s.tracks))
	for i := range s.tracks {
		out[i] = TrackInfo{Name: s.tracks[i].m.name, Labels: s.tracks[i].m.labels, Kind: s.tracks[i].m.kind}
	}
	return out
}

// Kind returns the tracked series' metric kind.
func (s *Series) Kind(t TrackRef) MetricKind { return s.tracks[t].m.kind }

// Lookup finds the track for metric name with exactly the given labels
// (alternating key, value pairs). Setup/query path: allocates.
func (s *Series) Lookup(name string, kv ...string) (TrackRef, bool) {
	labels := renderLabels(kv)
	for i := range s.tracks {
		if s.tracks[i].m.name == name && s.tracks[i].m.labels == labels {
			return TrackRef(i), true
		}
	}
	return -1, false
}

// extend (re)builds the track table to cover every currently registered
// metric. Cold path by design: it allocates rings; Sample calls it only
// when the registry has grown since the last extend.
func (s *Series) extend() {
	if s.reg == nil {
		panic("telemetry: parsed series is read-only")
	}
	s.reg.mu.Lock()
	ms := make([]*metric, len(s.reg.metrics))
	copy(ms, s.reg.metrics)
	s.reg.mu.Unlock()
	known := len(s.tracks)
	for _, m := range ms[known:] {
		t := seriesTrack{m: m}
		switch m.kind {
		case KindCounter:
			t.values = make([]float64, s.cap)
			t.lastC = m.c.Value()
		case KindGauge:
			t.values = make([]float64, s.cap)
		case KindHistogram:
			w := len(m.h.buckets) + 2
			t.lastBuckets = make([]uint64, w)
			t.rows = make([]uint32, s.cap*w)
			t.sums = make([]float64, s.cap)
			t.lastBuckets[0] = m.h.under.Load()
			for i := range m.h.buckets {
				t.lastBuckets[i+1] = m.h.buckets[i].Load()
			}
			t.lastBuckets[w-1] = m.h.over.Load()
			t.lastSum = m.h.Sum()
		default:
			panic(fmt.Sprintf("telemetry: unknown metric kind %d", int(m.kind)))
		}
		s.tracks = append(s.tracks, t)
	}
	s.tracked = s.reg.count.Load()
	s.tracksGauge.Set(float64(len(s.tracks)))
}

// Sample records one period: every counter's delta since the previous
// sample, every gauge's current point, every histogram's bucket deltas.
// Hot path: allocation-free once the track table covers the registry; a
// late registration routes through the cold extend barrier exactly once.
func (s *Series) Sample() {
	if s.reg == nil {
		panic("telemetry: parsed series is read-only")
	}
	if s.reg.count.Load() != s.tracked {
		s.extend()
	}
	idx := s.samples % s.cap
	for i := range s.tracks {
		s.sampleTrack(&s.tracks[i], idx)
	}
	s.samples++
	s.samplesTotal.Inc()
}

// sampleTrack records one track's period sample into ring slot idx.
func (s *Series) sampleTrack(t *seriesTrack, idx int) {
	switch t.m.kind {
	case KindCounter:
		v := t.m.c.Value()
		d := v - t.lastC
		t.lastC = v
		t.values[idx] = float64(d)
	case KindGauge:
		t.values[idx] = t.m.g.Value()
	case KindHistogram:
		h := t.m.h
		w := len(t.lastBuckets)
		row := t.rows[idx*w : (idx+1)*w]
		u := h.under.Load()
		row[0] = uint32(u - t.lastBuckets[0])
		t.lastBuckets[0] = u
		for b := range h.buckets {
			v := h.buckets[b].Load()
			row[b+1] = uint32(v - t.lastBuckets[b+1])
			t.lastBuckets[b+1] = v
		}
		o := h.over.Load()
		row[w-1] = uint32(o - t.lastBuckets[w-1])
		t.lastBuckets[w-1] = o
		sum := h.Sum()
		t.sums[idx] = sum - t.lastSum
		t.lastSum = sum
	default:
		panic(fmt.Sprintf("telemetry: unknown metric kind %d", int(t.m.kind)))
	}
}

// clampWindow resolves a query against the retained ring: it returns the
// first and last (exclusive) sample indices actually covered by asking for
// `window` samples ending at sample index end (exclusive). A window wider
// than the retained history is clamped.
func (s *Series) clampWindow(end, window int) (lo, hi int) {
	if end > s.samples {
		end = s.samples
	}
	first := s.FirstRetained()
	if end < first {
		end = first
	}
	lo = end - window
	if lo < first {
		lo = first
	}
	return lo, end
}

// RateAt returns a counter track's mean per-period rate over the `window`
// samples ending at sample index end (exclusive); Rate is the live variant
// ending at the latest sample. Gauge and histogram tracks return the mean
// of their per-period deltas'... rates are only meaningful for counters;
// RateAt panics on other kinds. Alloc-free.
func (s *Series) RateAt(t TrackRef, end, window int) float64 {
	tr := &s.tracks[t]
	if tr.m.kind != KindCounter {
		panic(fmt.Sprintf("telemetry: Rate on %v track %s", tr.m.kind, tr.m.name))
	}
	lo, hi := s.clampWindow(end, window)
	if hi <= lo {
		return 0
	}
	var sum float64
	for i := lo; i < hi; i++ {
		sum += tr.values[i%s.cap]
	}
	return sum / float64(hi-lo)
}

// Rate is RateAt ending at the latest sample.
func (s *Series) Rate(t TrackRef, window int) float64 {
	return s.RateAt(t, s.samples, window)
}

// MeanAt returns the windowed mean ending at sample index end (exclusive):
// for gauges the mean of the sampled points, for counters the mean
// per-period delta (== RateAt), for histograms the mean observed value
// (sum delta over count delta; 0 when the window saw no observations).
// Alloc-free.
func (s *Series) MeanAt(t TrackRef, end, window int) float64 {
	tr := &s.tracks[t]
	lo, hi := s.clampWindow(end, window)
	if hi <= lo {
		return 0
	}
	switch tr.m.kind {
	case KindCounter, KindGauge:
		var sum float64
		for i := lo; i < hi; i++ {
			sum += tr.values[i%s.cap]
		}
		return sum / float64(hi-lo)
	case KindHistogram:
		w := tr.rowWidth()
		var sum float64
		var count uint64
		for i := lo; i < hi; i++ {
			sum += tr.sums[i%s.cap]
			row := tr.rows[(i%s.cap)*w : (i%s.cap+1)*w]
			for _, d := range row {
				count += uint64(d)
			}
		}
		if count == 0 {
			return 0
		}
		return sum / float64(count)
	default:
		panic(fmt.Sprintf("telemetry: unknown metric kind %d", int(tr.m.kind)))
	}
}

// Mean is MeanAt ending at the latest sample.
func (s *Series) Mean(t TrackRef, window int) float64 {
	return s.MeanAt(t, s.samples, window)
}

// OverShareAt returns, for a histogram track, the fraction of the window's
// observations that exceeded bound — the SLO engine's per-period error
// ratio. An observation counts as over the bound only when its whole
// bucket lies at or above it (the straddling bucket counts as good), so
// the share is a lower bound and never flags on bucket-edge noise.
// Overflow observations always count as over; a window with no
// observations returns 0. Alloc-free.
func (s *Series) OverShareAt(t TrackRef, end, window int, bound float64) float64 {
	tr := &s.tracks[t]
	if tr.m.kind != KindHistogram {
		panic(fmt.Sprintf("telemetry: OverShare on %v track %s", tr.m.kind, tr.m.name))
	}
	h := tr.m.h
	w := tr.rowWidth()
	// First in-range bucket whose lower edge is at or above the bound.
	firstBad := len(h.buckets)
	if bound <= h.min {
		firstBad = 0
	} else if bound < h.max {
		firstBad = int((bound-h.min)/h.width + 0.9999999999)
	}
	lo, hi := s.clampWindow(end, window)
	var bad, total uint64
	for i := lo; i < hi; i++ {
		row := tr.rows[(i%s.cap)*w : (i%s.cap+1)*w]
		for b, d := range row {
			total += uint64(d)
			// row cell 0 is the underflow bucket (never bad: it sits at
			// min); cells 1..buckets map to in-range buckets 0..buckets-1;
			// the last cell is overflow (always bad).
			if b == w-1 || (b > 0 && b-1 >= firstBad) {
				bad += uint64(d)
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total)
}

// OverShare is OverShareAt ending at the latest sample.
func (s *Series) OverShare(t TrackRef, window int, bound float64) float64 {
	return s.OverShareAt(t, s.samples, window, bound)
}

// QuantileOverAt rebuilds the window's observation distribution ending at
// sample index end (exclusive) and returns its q-quantile (0 when the
// window saw no observations). Query path: allocates a stats.Histogram —
// per-period consumers use OverShareAt instead.
func (s *Series) QuantileOverAt(t TrackRef, end, window int, q float64) float64 {
	h := s.WindowHistogramAt(t, end, window)
	if h.N() == 0 {
		return 0
	}
	return h.Quantile(q)
}

// QuantileOver is QuantileOverAt ending at the latest sample.
func (s *Series) QuantileOver(t TrackRef, window int, q float64) float64 {
	return s.QuantileOverAt(t, s.samples, window, q)
}

// WindowHistogramAt rebuilds a histogram track's windowed distribution as
// a stats.Histogram with the track's geometry. Query path: allocates.
func (s *Series) WindowHistogramAt(t TrackRef, end, window int) *stats.Histogram {
	tr := &s.tracks[t]
	if tr.m.kind != KindHistogram {
		panic(fmt.Sprintf("telemetry: WindowHistogram on %v track %s", tr.m.kind, tr.m.name))
	}
	h := tr.m.h
	out := stats.NewHistogram(h.min, h.max, len(h.buckets))
	w := tr.rowWidth()
	lo, hi := s.clampWindow(end, window)
	for i := lo; i < hi; i++ {
		row := tr.rows[(i%s.cap)*w : (i%s.cap+1)*w]
		out.AddN(h.min-h.width, uint64(row[0]))
		for b := 1; b < w-1; b++ {
			out.AddN(h.min+(float64(b-1)+0.5)*h.width, uint64(row[b]))
		}
		out.AddN(h.max, uint64(row[w-1]))
	}
	return out
}

// --- dump format -----------------------------------------------------------

// seriesJSON is the dump envelope: version, geometry, and the retained
// window of every track, oldest sample first.
type seriesJSON struct {
	Version  int         `json:"version"`
	Capacity int         `json:"capacity"`
	Samples  int         `json:"samples"`
	First    int         `json:"first"`
	Tracks   []trackJSON `json:"tracks"`
}

// trackJSON is one track's dump: counters and gauges carry values (deltas
// and points respectively); histograms carry geometry, per-period sparse
// rows of [cell, delta, cell, delta, ...] pairs over the under/buckets/over
// cells, and per-period sum deltas.
type trackJSON struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Kind   string `json:"kind"`

	Values []float64 `json:"values,omitempty"`

	Min     float64    `json:"min,omitempty"`
	Max     float64    `json:"max,omitempty"`
	Buckets int        `json:"buckets,omitempty"`
	Rows    [][]uint32 `json:"rows,omitempty"`
	Sums    []float64  `json:"sums,omitempty"`
}

// WriteDump writes the retained window as a JSON snapshot that ParseSeries
// reads back. Export path: allocates. The encoding is canonical — tracks
// in registration order, rows as strictly increasing sparse pairs — so
// dump -> parse -> dump is byte-identical (FuzzParseSeries pins this).
func (s *Series) WriteDump(w io.Writer) error {
	first := s.FirstRetained()
	retained := s.samples - first
	d := seriesJSON{Version: 1, Capacity: s.cap, Samples: s.samples, First: first}
	for i := range s.tracks {
		tr := &s.tracks[i]
		tj := trackJSON{Name: tr.m.name, Labels: tr.m.labels, Kind: tr.m.kind.String()}
		switch tr.m.kind {
		case KindCounter, KindGauge:
			tj.Values = make([]float64, retained)
			for k := 0; k < retained; k++ {
				tj.Values[k] = tr.values[(first+k)%s.cap]
			}
		case KindHistogram:
			h := tr.m.h
			tj.Min, tj.Max, tj.Buckets = h.min, h.max, len(h.buckets)
			tj.Rows = make([][]uint32, retained)
			tj.Sums = make([]float64, retained)
			width := tr.rowWidth()
			for k := 0; k < retained; k++ {
				idx := (first + k) % s.cap
				row := tr.rows[idx*width : (idx+1)*width]
				var sparse []uint32
				for c, v := range row {
					if v != 0 {
						sparse = append(sparse, uint32(c), v)
					}
				}
				tj.Rows[k] = sparse
				tj.Sums[k] = tr.sums[idx]
			}
		default:
			panic(fmt.Sprintf("telemetry: unknown metric kind %d", int(tr.m.kind)))
		}
		d.Tracks = append(d.Tracks, tj)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ParseSeries reads a WriteDump snapshot back into a read-only Series:
// queries (and slo.Replay) work exactly as on the live store, but Sample
// panics — a parsed series has no registry behind it. It rejects malformed
// dumps (unknown version or kind, rows out of range or out of order,
// window wider than the capacity) rather than guessing.
func ParseSeries(r io.Reader) (*Series, error) {
	var d seriesJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("telemetry: parse series: %w", err)
	}
	if d.Version != 1 {
		return nil, fmt.Errorf("telemetry: series dump version %d not supported", d.Version)
	}
	if d.Capacity <= 0 || d.Samples < 0 || d.First < 0 || d.First > d.Samples {
		return nil, fmt.Errorf("telemetry: series dump geometry invalid (capacity %d, samples %d, first %d)",
			d.Capacity, d.Samples, d.First)
	}
	retained := d.Samples - d.First
	if retained > d.Capacity {
		return nil, fmt.Errorf("telemetry: series dump retains %d samples over capacity %d", retained, d.Capacity)
	}
	if want := d.Samples - d.Capacity; d.Samples > d.Capacity && d.First != want {
		return nil, fmt.Errorf("telemetry: series dump first %d does not match samples %d - capacity %d",
			d.First, d.Samples, d.Capacity)
	}
	if d.Samples <= d.Capacity && d.First != 0 {
		return nil, fmt.Errorf("telemetry: series dump first %d with unwrapped ring", d.First)
	}
	s := &Series{cap: d.Capacity, samples: d.Samples}
	for _, tj := range d.Tracks {
		if tj.Name == "" {
			return nil, fmt.Errorf("telemetry: series dump track needs a name")
		}
		m := &metric{name: tj.Name, labels: tj.Labels}
		t := seriesTrack{m: m}
		switch tj.Kind {
		case "counter", "gauge":
			m.kind = KindCounter
			if tj.Kind == "gauge" {
				m.kind = KindGauge
			}
			if len(tj.Values) != retained {
				return nil, fmt.Errorf("telemetry: track %s has %d values, want %d", tj.Name, len(tj.Values), retained)
			}
			if tj.Buckets != 0 || tj.Rows != nil || tj.Sums != nil || tj.Min != 0 || tj.Max != 0 {
				return nil, fmt.Errorf("telemetry: track %s mixes %s and histogram fields", tj.Name, tj.Kind)
			}
			t.values = make([]float64, d.Capacity)
			for k, v := range tj.Values {
				t.values[(d.First+k)%d.Capacity] = v
			}
		case "histogram":
			m.kind = KindHistogram
			if tj.Buckets <= 0 || !(tj.Max > tj.Min) {
				return nil, fmt.Errorf("telemetry: track %s has bad histogram geometry [%v,%v)x%d",
					tj.Name, tj.Min, tj.Max, tj.Buckets)
			}
			if len(tj.Rows) != retained || len(tj.Sums) != retained {
				return nil, fmt.Errorf("telemetry: track %s has %d rows/%d sums, want %d",
					tj.Name, len(tj.Rows), len(tj.Sums), retained)
			}
			if tj.Values != nil {
				return nil, fmt.Errorf("telemetry: track %s mixes histogram and values fields", tj.Name)
			}
			width := tj.Buckets + 2
			// The parsed metric carries a real (empty) histogram so the
			// geometry-dependent queries work on the parsed series.
			m.h = &Histogram{min: tj.Min, max: tj.Max,
				width:   (tj.Max - tj.Min) / float64(tj.Buckets),
				buckets: make([]atomic.Uint64, tj.Buckets), self: new(atomic.Uint64)}
			t.lastBuckets = make([]uint64, width)
			t.rows = make([]uint32, d.Capacity*width)
			t.sums = make([]float64, d.Capacity)
			for k, sparse := range tj.Rows {
				if len(sparse)%2 != 0 {
					return nil, fmt.Errorf("telemetry: track %s row %d has odd sparse pair list", tj.Name, k)
				}
				idx := (d.First + k) % d.Capacity
				row := t.rows[idx*width : (idx+1)*width]
				lastCell := -1
				for p := 0; p < len(sparse); p += 2 {
					cell, delta := int(sparse[p]), sparse[p+1]
					if cell >= width || cell <= lastCell || delta == 0 {
						return nil, fmt.Errorf("telemetry: track %s row %d cell %d out of order or range", tj.Name, k, cell)
					}
					row[cell] = delta
					lastCell = cell
				}
				t.sums[idx] = tj.Sums[k]
			}
		default:
			return nil, fmt.Errorf("telemetry: track %s has unknown kind %q", tj.Name, tj.Kind)
		}
		s.tracks = append(s.tracks, t)
	}
	return s, nil
}
