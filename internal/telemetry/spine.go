package telemetry

import "io"

// The default spine: one process-wide registry plus one span recorder, with
// every metric family the runtime emits pre-registered below. Packages
// import these handles directly — expvar-style — so instrumenting a hot
// function needs no constructor plumbing and costs exactly one atomic op.
// The name table is documented in DESIGN.md §10; keep the two in sync.
var defaultRegistry = NewRegistry()

// DefaultSpans records detection-pipeline spans process-wide. At 8 tracks
// emitting ~2 spans/period the ring retains on the order of 15k periods
// (15 s of the paper's 1 ms clock) before drop-oldest kicks in; drops are
// themselves surfaced (caer_telemetry_spans_dropped_total).
var DefaultSpans = NewSpanRecorder(1<<18, &defaultRegistry.selfOps)

// Default returns the process-wide registry (for export surfaces and for
// deployment code registering dynamic per-core series).
func Default() *Registry { return defaultRegistry }

// Pre-registered hot-path handles. Registration (locking, allocating)
// happens once at package init; the handles themselves are the lock-free,
// allocation-free interface the per-period loop uses.
var (
	// pmu: counter reads and fault plumbing.
	PMUReads  = defaultRegistry.Counter("caer_pmu_reads_total", "PMU read-and-restart counter reads")
	PMURearms = defaultRegistry.Counter("caer_pmu_rearms_total", "PMU re-arms after a regressing (reset/wrapped) raw counter")
	PMUProbes = defaultRegistry.Counter("caer_pmu_probes_total", "per-period sampler sweeps across all PMU events")

	// Sampling modes: probes skipped by the adaptive/interrupt controllers
	// and threshold-trigger fires (the event-driven wakeups).
	PMUProbesSkipped = defaultRegistry.Counter("caer_pmu_probes_skipped_total", "per-period probes skipped by the sampling controller (adaptive/interrupt modes)")
	PMUTriggerFires  = defaultRegistry.Counter("caer_pmu_trigger_fires_total", "threshold-interrupt trigger fires (event-driven wakeups)")

	PMUFaultResets  = defaultRegistry.Counter("caer_pmu_faults_total", "injected PMU faults by class", "class", "reset")
	PMUFaultSpikes  = defaultRegistry.Counter("caer_pmu_faults_total", "injected PMU faults by class", "class", "spike")
	PMUFaultDrops   = defaultRegistry.Counter("caer_pmu_faults_total", "injected PMU faults by class", "class", "drop")
	PMUFaultJitters = defaultRegistry.Counter("caer_pmu_faults_total", "injected PMU faults by class", "class", "jitter")

	// comm: table traffic and the liveness signal the watchdog consumes.
	CommPublishes  = defaultRegistry.Counter("caer_comm_publishes_total", "slot sample publishes into the communication table")
	CommBroadcasts = defaultRegistry.Counter("caer_comm_broadcasts_total", "table-wide directive broadcasts to batch slots")
	CommStaleness  = defaultRegistry.Histogram("caer_comm_staleness_periods", "neighbour sample staleness observed by engines each tick, in periods", 0, 64, 16)
	CommPeriod     = defaultRegistry.Gauge("caer_comm_period", "communication-table period clock")

	// caer engine: the detect/respond state machine (Figure 5).
	EngineTicks             = defaultRegistry.Counter("caer_engine_ticks_total", "engine detect/respond ticks")
	EngineVerdictContention = defaultRegistry.Counter("caer_engine_verdicts_total", "detection verdicts by outcome", "verdict", "contention")
	EngineVerdictClear      = defaultRegistry.Counter("caer_engine_verdicts_total", "detection verdicts by outcome", "verdict", "clear")
	EngineHolds             = defaultRegistry.Counter("caer_engine_holds_total", "response holds entered after a contention verdict")
	EngineHoldPeriods       = defaultRegistry.Histogram("caer_engine_hold_periods", "length of response holds, in periods", 0, 256, 32)
	EngineDirectiveChanges  = defaultRegistry.Counter("caer_engine_directive_changes_total", "engine directive transitions (run<->pause)")
	EnginePausedPeriods     = defaultRegistry.Counter("caer_engine_paused_periods_total", "periods the batch app spent paused under an engine directive")
	EngineWatchdogTrips     = defaultRegistry.Counter("caer_engine_watchdog_trips_total", "watchdog trips into degraded fail-open mode")
	EngineDegradedTicks     = defaultRegistry.Counter("caer_engine_degraded_ticks_total", "engine ticks spent in degraded fail-open mode")
	EngineLogDropped        = defaultRegistry.Counter("caer_engine_log_dropped_total", "event-log entries evicted by the bounded ring")
	EngineMode              = defaultRegistry.Gauge("caer_engine_mode", "sampling mode of the most recently started runtime (0 polling, 1 adaptive, 2 interrupt)")
	SamplingInterval        = defaultRegistry.Gauge("caer_sampling_interval", "current probe interval of the most recently probing runtime, in periods")

	// sched: placement, admission, and migration decisions.
	SchedAdmissions     = defaultRegistry.Counter("caer_sched_admissions_total", "jobs admitted from the queue onto cores")
	SchedAgedBypasses   = defaultRegistry.Counter("caer_sched_aged_bypasses_total", "admissions that bypassed veto/rate limits via the aging bound")
	SchedVetoes         = defaultRegistry.Counter("caer_sched_vetoes_total", "admission attempts vetoed by the interference score")
	SchedMigrations     = defaultRegistry.Counter("caer_sched_migrations_total", "jobs migrated between cores")
	SchedCompletions    = defaultRegistry.Counter("caer_sched_completions_total", "scheduled jobs run to completion")
	SchedFlipsAggressor = defaultRegistry.Counter("caer_sched_class_flips_total", "classifier class flips by class", "class", "aggressor")
	SchedFlipsSensitive = defaultRegistry.Counter("caer_sched_class_flips_total", "classifier class flips by class", "class", "sensitive")
	SchedQueueDepth     = defaultRegistry.Gauge("caer_sched_queue_depth", "jobs waiting in the admission queue")
	SchedRunning        = defaultRegistry.Gauge("caer_sched_running", "jobs currently resident on cores")

	// part: the LLC way-partitioning response family (cluster plans and
	// online resizes; DESIGN.md §16).
	PartPlanChanges   = defaultRegistry.Counter("caer_part_plans_total", "cluster-plan changes produced by the partition planner")
	PartResizes       = defaultRegistry.Counter("caer_part_resizes_total", "per-owner L3 way-mask resizes applied")
	PartInvalidations = defaultRegistry.Counter("caer_part_lines_invalidated_total", "L3 lines dropped by invalidate-mode partition resizes")
	PartOrphans       = defaultRegistry.Counter("caer_part_orphans_total", "lines stranded outside their owner's mask by orphan-mode resizes")
	PartProtectedWays = defaultRegistry.Gauge("caer_part_protected_ways", "ways in the protected (sensitive) partition of the most recently planned domain")
	PartConfinedWays  = defaultRegistry.Gauge("caer_part_confined_ways", "ways in the confined (aggressor) partition of the most recently planned domain")
	PartPressure      = defaultRegistry.Gauge("caer_part_pressure", "verdict-driven confinement pressure of the most recently planned domain")

	// fleet: cluster-level traffic, dispatch, and cross-machine migration.
	FleetTicks       = defaultRegistry.Counter("caer_fleet_ticks_total", "fleet scheduler ticks (one per cluster-wide period)")
	FleetArrivals    = defaultRegistry.Counter("caer_fleet_arrivals_total", "jobs arrived into the fleet admission queue")
	FleetDispatches  = defaultRegistry.Counter("caer_fleet_dispatches_total", "jobs dispatched from the fleet queue onto machines")
	FleetMigrations  = defaultRegistry.Counter("caer_fleet_migrations_total", "queued jobs migrated between machines")
	FleetCompletions = defaultRegistry.Counter("caer_fleet_completions_total", "fleet jobs run to completion")
	FleetRequests    = defaultRegistry.Counter("caer_fleet_requests_total", "latency-service requests completed across the fleet")
	FleetQueueDepth  = defaultRegistry.Gauge("caer_fleet_queue_depth", "jobs waiting in the fleet admission queue")

	// runner: deployment-level runs and batch relaunches.
	RunnerRunsAlone     = defaultRegistry.Counter("caer_runner_runs_total", "scenario runs by mode", "mode", "alone")
	RunnerRunsNative    = defaultRegistry.Counter("caer_runner_runs_total", "scenario runs by mode", "mode", "native")
	RunnerRunsCAER      = defaultRegistry.Counter("caer_runner_runs_total", "scenario runs by mode", "mode", "caer")
	RunnerRunsScheduled = defaultRegistry.Counter("caer_runner_runs_total", "scenario runs by mode", "mode", "scheduled")
	RunnerRelaunches    = defaultRegistry.Counter("caer_runner_relaunches_total", "batch application relaunches after completion")
	RunnerPeriods       = defaultRegistry.Counter("caer_runner_periods_total", "sampling periods executed across all runs (rate = simulated periods/sec)")

	// telemetry self-accounting: synced from internal atomics by
	// WriteSnapshot so the layer reports its own cost.
	telemetryOps          = defaultRegistry.Counter("caer_telemetry_ops_total", "hot-path telemetry operations (self-cost account)")
	telemetrySpans        = defaultRegistry.Counter("caer_telemetry_spans_total", "spans recorded into the default ring")
	telemetrySpansDropped = defaultRegistry.Counter("caer_telemetry_spans_dropped_total", "spans evicted from the default ring")
)

// syncSelf copies the self-accounting atomics into their exported counters.
// Same-package direct store: these counters are never Inc'd.
func syncSelf() {
	telemetryOps.v.Store(defaultRegistry.SelfOps())
	telemetrySpans.v.Store(DefaultSpans.Total())
	telemetrySpansDropped.v.Store(DefaultSpans.Dropped())
}

// WriteSnapshot writes the default registry as Prometheus text, first
// syncing the self-cost counters. This is the one snapshot entry point —
// the HTTP /metrics handler, the -telemetry-out file writer, and caer-top
// all read this format.
func WriteSnapshot(out io.Writer) error {
	syncSelf()
	return defaultRegistry.WritePrometheus(out)
}
