package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the telemetry HTTP surface:
//
//	/metrics       Prometheus text snapshot of the default registry
//	/trace         Chrome trace-event JSON of the default span recorder
//	/debug/pprof/  the standard pprof index, profiles, and symbols
//	/debug/vars    expvar JSON
//	/              a plain-text index of the above
//
// Everything is read-only; the handlers never touch the hot path beyond the
// same atomics it writes.
func Handler() http.Handler { return HandlerWith(WriteSnapshot) }

// HandlerWith is Handler with a custom /metrics snapshot source — the
// fleet endpoint passes a closure that Unions every machine's registry
// into one exposition, so a single /metrics covers the whole cluster.
func HandlerWith(snapshot func(io.Writer) error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snapshot(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := DefaultSpans.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "caer telemetry")
		fmt.Fprintln(w, "  /metrics      Prometheus text snapshot")
		fmt.Fprintln(w, "  /trace        Chrome trace-event JSON (load in Perfetto)")
		fmt.Fprintln(w, "  /debug/pprof  pprof profiles")
		fmt.Fprintln(w, "  /debug/vars   expvar JSON")
	})
	return mux
}

// Serve starts the telemetry HTTP endpoint on addr (e.g. ":6060") and
// returns the bound listener; close it to stop serving. The server runs on
// its own goroutine and never blocks the sampling loop.
func Serve(addr string) (net.Listener, error) { return ServeWith(addr, WriteSnapshot) }

// ServeWith is Serve with a custom /metrics snapshot source (see
// HandlerWith).
func ServeWith(addr string, snapshot func(io.Writer) error) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HandlerWith(snapshot)}
	//caer:allow goroutinelifecycle shutdown edge is the returned listener: closing it makes srv.Serve return (documented contract above)
	go func() {
		// Serve returns when the listener closes; that is the shutdown path.
		_ = srv.Serve(ln)
	}()
	return ln, nil
}
