package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// SpanKind classifies one span of the detection pipeline.
type SpanKind int32

const (
	// SpanProbe is one CAER-M monitor probe-and-publish (one period).
	SpanProbe SpanKind = iota
	// SpanPublish is one engine own-sample publish (one period).
	SpanPublish
	// SpanDetect is one complete detection protocol, from the detector's
	// first step to its verdict (value 1 = contention, 0 = clear).
	SpanDetect
	// SpanShutter is a burst-shutter closed phase inside a detection
	// protocol: the periods the batch was halted to measure the neighbour's
	// steady miss rate.
	SpanShutter
	// SpanHold is a response hold, from entry to release or expiry
	// (value 1 = the hold paused the batch, 0 = it let it run).
	SpanHold
	// SpanDegraded is a watchdog fail-open span: neighbour samples were
	// stale past the horizon until they resumed.
	SpanDegraded
	// SpanQueued is a scheduled job's admission-queue wait.
	SpanQueued
	// SpanJob is a scheduled job's residency, admission to completion
	// (value = number of migrations).
	SpanJob
	// SpanArmed is an interrupt-mode sleep stretch: the engine skipped the
	// probe pipeline while a threshold trigger stood watch. Unlike the
	// engine-tick-clocked kinds above it is stamped in machine periods —
	// engine ticks do not advance while the engine sleeps (value 1 = the
	// stretch ended in a trigger fire, 0 = a keepalive probe woke it).
	SpanArmed
	// SpanFired marks the machine period a threshold trigger fired (value =
	// how many triggers fired that period).
	SpanFired
	// SpanAlert is one SLO alert episode, from the first pending period to
	// resolution (value = peak slow-window burn rate over the episode). The
	// slo.Engine records one per firing alert; an episode still open at
	// export time spans through the last evaluated period.
	SpanAlert
	numSpanKinds
)

// String names the span kind.
func (k SpanKind) String() string {
	switch k {
	case SpanProbe:
		return "probe"
	case SpanPublish:
		return "publish"
	case SpanDetect:
		return "detect"
	case SpanShutter:
		return "shutter"
	case SpanHold:
		return "hold"
	case SpanDegraded:
		return "degraded"
	case SpanQueued:
		return "queued"
	case SpanJob:
		return "job"
	case SpanArmed:
		return "armed"
	case SpanFired:
		return "fired"
	case SpanAlert:
		return "alert"
	default:
		return fmt.Sprintf("SpanKind(%d)", int(k))
	}
}

// Span is one recorded interval of the detection pipeline, measured in
// sampling periods (the paper's 1 ms clock). Track identifies the emitting
// lane — by convention the communication-table slot ID of the application
// the span belongs to.
type Span struct {
	Start   uint64 // first period covered
	Periods uint32 // length in periods (>= 1)
	Kind    SpanKind
	Track   int32
	Value   float64 // kind-specific payload (misses, verdict, migrations)
}

// SpanRecorder is a fixed-capacity ring of spans. Record is lock-free and
// allocation-free: a single atomic sequence claims a slot and the span is
// written in place, overwriting the oldest entry once the ring wraps
// (drop-oldest). With concurrent recorders a lapped writer may tear a slot;
// the deployment drives Record from the single-threaded period loop, and
// the export path tolerates a rare torn span (it renders as one odd
// rectangle, not a crash).
type SpanRecorder struct {
	ring []Span
	seq  atomic.Uint64
	self *atomic.Uint64

	mu     sync.Mutex
	tracks map[int32]string
}

// NewSpanRecorder returns a recorder retaining the most recent capacity
// spans. The self counter (may not be nil) receives one bump per Record —
// wire it to a registry's self-cost account.
func NewSpanRecorder(capacity int, self *atomic.Uint64) *SpanRecorder {
	if capacity <= 0 {
		panic(fmt.Sprintf("telemetry: span capacity %d must be positive", capacity))
	}
	if self == nil {
		panic("telemetry: span recorder needs a self-cost counter")
	}
	return &SpanRecorder{ring: make([]Span, capacity), self: self, tracks: make(map[int32]string)}
}

// Record appends one span, evicting the oldest when the ring is full.
func (r *SpanRecorder) Record(track int32, kind SpanKind, start uint64, periods uint32, value float64) {
	idx := r.seq.Add(1) - 1
	r.ring[idx%uint64(len(r.ring))] = Span{Start: start, Periods: periods, Kind: kind, Track: track, Value: value}
	r.self.Add(1)
}

// Total returns the lifetime span count, including evicted spans.
func (r *SpanRecorder) Total() uint64 { return r.seq.Load() }

// Dropped returns how many spans the ring has evicted.
func (r *SpanRecorder) Dropped() uint64 {
	if t := r.seq.Load(); t > uint64(len(r.ring)) {
		return t - uint64(len(r.ring))
	}
	return 0
}

// Cap returns the ring capacity.
func (r *SpanRecorder) Cap() int { return len(r.ring) }

// Spans returns the retained spans oldest-first. Export path: allocates.
func (r *SpanRecorder) Spans() []Span {
	total := r.seq.Load()
	n := total
	if n > uint64(len(r.ring)) {
		n = uint64(len(r.ring))
	}
	out := make([]Span, n)
	head := total - n
	for i := uint64(0); i < n; i++ {
		out[i] = r.ring[(head+i)%uint64(len(r.ring))]
	}
	return out
}

// NameTrack attaches a human-readable lane name (application name, core)
// used by the Chrome export's thread metadata. Setup path only.
func (r *SpanRecorder) NameTrack(track int32, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracks[track] = name
}

// TrackName returns the registered lane name, or "".
func (r *SpanRecorder) TrackName(track int32) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracks[track]
}

// periodMicros converts sampling periods to Chrome trace microseconds: one
// period is the paper's 1 ms.
const periodMicros = 1000

// ChromeEvent is one Chrome trace-event (the JSON object Perfetto and
// chrome://tracing load). Only the fields this repo emits are modelled.
// Args values are numbers on "X" spans and strings on "M" metadata (e.g.
// thread_name), hence the any-typed map.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// ArgNumber returns the named numeric arg, or 0 when absent or non-numeric
// (JSON round-trips numbers as float64).
func (e ChromeEvent) ArgNumber(key string) float64 {
	v, _ := e.Args[key].(float64)
	return v
}

// chromeFile is the trace-event JSON envelope.
type chromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace writes events as a Chrome trace-event JSON object
// ({"traceEvents": [...]}), loadable by Perfetto and chrome://tracing.
func WriteChromeTrace(w io.Writer, events []ChromeEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return err
	}
	return bw.Flush()
}

// ParseChromeTrace reads a trace-event JSON object written by
// WriteChromeTrace (round-trip tests and tooling).
func ParseChromeTrace(r io.Reader) ([]ChromeEvent, error) {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("telemetry: parse chrome trace: %w", err)
	}
	return f.TraceEvents, nil
}

// ChromeEvents converts the retained spans into trace events: one complete
// ("X") slice per span on its track, plus thread-name metadata for named
// tracks. Export path: allocates.
func (r *SpanRecorder) ChromeEvents() []ChromeEvent {
	spans := r.Spans()
	events := make([]ChromeEvent, 0, len(spans)+8)
	// Emit thread-name metadata in sorted track order: ranging the map
	// directly made the export byte-unstable run to run (Go randomizes map
	// order), which broke diffing two traces of the same run.
	r.mu.Lock()
	tracks := make([]int32, 0, len(r.tracks))
	for track := range r.tracks {
		tracks = append(tracks, track)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	for _, track := range tracks {
		events = append(events, ChromeEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: int(track),
			Args: map[string]any{"name": r.tracks[track]},
		})
	}
	r.mu.Unlock()
	for _, s := range spans {
		events = append(events, ChromeEvent{
			Name:  s.Kind.String(),
			Phase: "X",
			Ts:    float64(s.Start) * periodMicros,
			Dur:   float64(s.Periods) * periodMicros,
			Pid:   1,
			Tid:   int(s.Track),
			Args:  map[string]any{"value": s.Value},
		})
	}
	return events
}

// WriteChrome writes the retained spans as Chrome trace-event JSON.
func (r *SpanRecorder) WriteChrome(w io.Writer) error {
	return WriteChromeTrace(w, r.ChromeEvents())
}
