package runner

import (
	"testing"

	"caer/internal/caer"
	"caer/internal/sched"
	"caer/internal/spec"
)

// fastProfile returns a shrunken copy of a benchmark so scenario tests run
// in milliseconds.
func fastProfile(t *testing.T, name string, instructions uint64) spec.Profile {
	t.Helper()
	p, ok := spec.ByName(name)
	if !ok {
		t.Fatalf("unknown profile %q", name)
	}
	p.Exec.Instructions = instructions
	return p
}

func TestModeStrings(t *testing.T) {
	cases := map[Mode]string{
		ModeAlone:      "alone",
		ModeNativeColo: "native-colo",
		ModeCAER:       "caer",
		ModeScheduled:  "scheduled",
		Mode(9):        "Mode(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestRunUnknownModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown mode did not panic")
		}
	}()
	Run(Scenario{Latency: spec.LBM(), Mode: Mode(9)})
}

func TestRunAloneCompletes(t *testing.T) {
	lat := fastProfile(t, "namd", 200_000)
	r := Run(Scenario{Latency: lat, Mode: ModeAlone, Seed: 1})
	if !r.Completed {
		t.Fatal("alone run did not complete")
	}
	if r.LatencyInstructions != 200_000 {
		t.Errorf("instructions = %d, want 200000", r.LatencyInstructions)
	}
	if r.Periods == 0 {
		t.Error("zero periods")
	}
	if r.BatchDuty != 0 || r.BatchInstructions != 0 {
		t.Error("alone run reports batch activity")
	}
}

func TestRunNativeColoSlowerThanAlone(t *testing.T) {
	lat := fastProfile(t, "mcf", 400_000)
	alone := Run(Scenario{Latency: lat, Mode: ModeAlone, Seed: 1})
	colo := Run(Scenario{Latency: lat, Mode: ModeNativeColo, Seed: 1})
	if !colo.Completed {
		t.Fatal("native colo did not complete")
	}
	if sd := Slowdown(colo, alone); sd <= 1.05 {
		t.Errorf("mcf+lbm native slowdown = %.3f, want noticeable contention", sd)
	}
	if colo.BatchDuty < 0.95 {
		t.Errorf("unmanaged batch duty = %.3f, want ~1.0", colo.BatchDuty)
	}
	if colo.BatchInstructions == 0 || colo.BatchMisses == 0 {
		t.Error("batch made no progress")
	}
}

func TestRunCAERBetweenAloneAndColo(t *testing.T) {
	lat := fastProfile(t, "mcf", 400_000)
	alone := Run(Scenario{Latency: lat, Mode: ModeAlone, Seed: 1})
	colo := Run(Scenario{Latency: lat, Mode: ModeNativeColo, Seed: 1})
	for _, kind := range []caer.HeuristicKind{caer.HeuristicShutter, caer.HeuristicRule} {
		t.Run(kind.String(), func(t *testing.T) {
			r := Run(Scenario{Latency: lat, Mode: ModeCAER, Heuristic: kind, Seed: 1})
			if !r.Completed {
				t.Fatal("CAER run did not complete")
			}
			if r.Periods >= colo.Periods {
				t.Errorf("CAER (%d periods) not faster than native colo (%d)", r.Periods, colo.Periods)
			}
			if r.Periods < alone.Periods {
				t.Errorf("CAER (%d periods) faster than alone (%d)?", r.Periods, alone.Periods)
			}
			if g := UtilizationGained(r); g <= 0 || g >= 1 {
				t.Errorf("utilization gained = %.3f, want in (0,1)", g)
			}
			elim := InterferenceEliminated(r, colo, alone)
			if elim <= 0 {
				t.Errorf("interference eliminated = %.3f, want positive", elim)
			}
			if r.CPositive == 0 {
				t.Error("no contention detected for mcf+lbm")
			}
		})
	}
}

func TestRunCAERQuietPairKeepsBatchRunning(t *testing.T) {
	lat := fastProfile(t, "namd", 2_000_000)
	r := Run(Scenario{Latency: lat, Mode: ModeCAER, Heuristic: caer.HeuristicRule, Seed: 1})
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	// Cold-start misses pause the batch for the first few windows, so the
	// duty cycle is slightly below 1 even for a quiet pair.
	if g := UtilizationGained(r); g < 0.9 {
		t.Errorf("quiet pair utilization gained = %.3f, want ~1 under rule heuristic", g)
	}
}

// TestRunCAERSamplingStats: the result carries the probe-schedule
// accounting, and an adaptive scenario on a quiet pair sheds probes.
func TestRunCAERSamplingStats(t *testing.T) {
	lat := fastProfile(t, "namd", 2_000_000)
	cfg := caer.DefaultConfig()
	r := Run(Scenario{Latency: lat, Mode: ModeCAER, Heuristic: caer.HeuristicRule, Seed: 1, Config: cfg})
	if r.Sampling.Mode != caer.SamplingPolling {
		t.Fatalf("default scenario sampled in %v mode, want polling", r.Sampling.Mode)
	}
	if r.Sampling.ProbePeriods != r.Periods || r.Sampling.SkippedPeriods != 0 {
		t.Fatalf("polling probes/skips = %d/%d over %d periods",
			r.Sampling.ProbePeriods, r.Sampling.SkippedPeriods, r.Periods)
	}

	cfg.Sampling = caer.SamplingAdaptive
	ra := Run(Scenario{Latency: lat, Mode: ModeCAER, Heuristic: caer.HeuristicRule, Seed: 1, Config: cfg})
	if !ra.Completed {
		t.Fatal("adaptive run did not complete")
	}
	if ra.Sampling.Mode != caer.SamplingAdaptive {
		t.Fatalf("adaptive scenario reported %v mode", ra.Sampling.Mode)
	}
	if ra.Sampling.SkippedPeriods == 0 {
		t.Error("adaptive run on a quiet pair skipped no probes")
	}
	if got := ra.Sampling.ProbePeriods + ra.Sampling.SkippedPeriods; got != ra.Periods {
		t.Errorf("probes %d + skips %d != %d periods",
			ra.Sampling.ProbePeriods, ra.Sampling.SkippedPeriods, ra.Periods)
	}
}

func TestRunBatchRelaunches(t *testing.T) {
	lat := fastProfile(t, "namd", 600_000)
	small := spec.LBM()
	small.Exec.Instructions = 1 // Batch() zeroes this; relaunch logic uses Done()
	// Use a batch that completes: shrink lbm and do NOT mark it endless.
	s := Scenario{Latency: lat, Mode: ModeNativeColo, Seed: 1}
	s.Batch = fastProfile(t, "lbm", 20_000)
	r := Run(s)
	_ = small
	if r.Relaunches == 0 {
		t.Skip("batch outlived the latency app in this configuration")
	}
}

func TestMetricsKnownValues(t *testing.T) {
	alone := Result{Periods: 100}
	colo := Result{Periods: 150}
	managed := Result{Periods: 110, BatchDuty: 0.6}
	random := Result{Periods: 120, BatchDuty: 0.5}

	if got := Slowdown(colo, alone); got != 1.5 {
		t.Errorf("Slowdown = %v, want 1.5", got)
	}
	if got := Overhead(managed, alone); got < 0.0999 || got > 0.1001 {
		t.Errorf("Overhead = %v, want 0.1", got)
	}
	if got := InterferenceEliminated(managed, colo, alone); got != 0.8 {
		t.Errorf("InterferenceEliminated = %v, want 0.8", got)
	}
	if got := UtilizationGained(managed); got != 0.6 {
		t.Errorf("UtilizationGained = %v, want 0.6", got)
	}
	if got := Accuracy(managed, random); got < 0.1999 || got > 0.2001 {
		t.Errorf("Accuracy = %v, want 0.2", got)
	}
}

func TestMetricsPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero alone", func() { Slowdown(Result{Periods: 1}, Result{}) })
	mustPanic("no penalty", func() {
		InterferenceEliminated(Result{Periods: 1}, Result{Periods: 1}, Result{Periods: 1})
	})
	mustPanic("zero random", func() { Accuracy(Result{BatchDuty: 1}, Result{}) })
}

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{Latency: spec.LBM()}.withDefaults()
	if s.Batch.Name != "470.lbm" {
		t.Errorf("default batch = %q, want lbm", s.Batch.Name)
	}
	if s.Cores != 2 || s.MaxPeriods != 10_000_000 {
		t.Errorf("defaults = %d cores, %d max periods", s.Cores, s.MaxPeriods)
	}
	if err := s.Config.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestRunDeterministic(t *testing.T) {
	lat := fastProfile(t, "soplex", 200_000)
	s := Scenario{Latency: lat, Mode: ModeCAER, Heuristic: caer.HeuristicRule, Seed: 7}
	a := Run(s)
	b := Run(s)
	if a.Periods != b.Periods || a.LatencyMisses != b.LatencyMisses || a.PausedPeriods != b.PausedPeriods {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestRunMaxPeriodsSafetyValve(t *testing.T) {
	lat := fastProfile(t, "mcf", 50_000_000) // would take very long
	r := Run(Scenario{Latency: lat, Mode: ModeAlone, Seed: 1, MaxPeriods: 50})
	if r.Completed {
		t.Error("run reported completion despite the safety valve")
	}
	if r.Periods != 50 {
		t.Errorf("periods = %d, want 50", r.Periods)
	}
}

func TestRunPartitionedColo(t *testing.T) {
	lat := fastProfile(t, "omnetpp", 300_000)
	alone := Run(Scenario{Latency: lat, Mode: ModeAlone, Seed: 1})
	colo := Run(Scenario{Latency: lat, Mode: ModeNativeColo, Seed: 1})
	// Give the latency app 12 of 16 ways: contention must shrink versus
	// unpartitioned sharing, at full batch utilization.
	part := Run(Scenario{Latency: lat, Mode: ModeNativeColo, Seed: 1, PartitionWays: 12})
	if part.Periods >= colo.Periods {
		t.Errorf("partitioned colo (%d periods) not faster than shared (%d)", part.Periods, colo.Periods)
	}
	if part.Periods < alone.Periods {
		t.Errorf("partitioned colo (%d) faster than alone (%d)?", part.Periods, alone.Periods)
	}
	if part.BatchDuty < 0.95 {
		t.Errorf("partitioning throttled the batch: duty %.3f", part.BatchDuty)
	}
}

func TestRunPartitionWaysValidation(t *testing.T) {
	lat := fastProfile(t, "namd", 100_000)
	defer func() {
		if recover() == nil {
			t.Error("all-ways partition did not panic")
		}
	}()
	Run(Scenario{Latency: lat, Mode: ModeNativeColo, Seed: 1, PartitionWays: 16})
}

func TestRunDVFSActuatorScenario(t *testing.T) {
	lat := fastProfile(t, "mcf", 300_000)
	r := Run(Scenario{
		Latency:   lat,
		Mode:      ModeCAER,
		Heuristic: caer.HeuristicRule,
		Seed:      1,
		Actuator:  caer.DVFSActuator(4),
	})
	if !r.Completed {
		t.Fatal("DVFS run did not complete")
	}
	// Down-clocking (not halting) keeps the batch making progress even
	// under heavy contention, so its duty stays relatively high.
	if r.BatchDuty < 0.2 {
		t.Errorf("DVFS batch duty = %.3f, suspiciously low", r.BatchDuty)
	}
}

// countVerdicts tallies verdict events in a decision log.
func countVerdicts(events []caer.Event) (pos, neg uint64) {
	for _, ev := range events {
		if ev.Kind != caer.EventVerdict {
			continue
		}
		if ev.Verdict == caer.VerdictContention {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}

// TestRunCAERMultiBatchAggregates is the regression test for the
// engines[0]-only reporting bug: with a second batch application the
// Result's decision counters must cover both engines, not just the first.
func TestRunCAERMultiBatchAggregates(t *testing.T) {
	lat := fastProfile(t, "mcf", 400_000)
	s := Scenario{
		Latency:      lat,
		Mode:         ModeCAER,
		Heuristic:    caer.HeuristicRule,
		ExtraBatches: []spec.Profile{spec.LBM()},
		Seed:         3,
	}
	r := Run(s)
	if !r.Completed {
		t.Fatal("multi-batch CAER run did not complete")
	}
	if r.Scenario.Cores != 3 {
		t.Errorf("cores = %d, want 3 (latency + 2 batches)", r.Scenario.Cores)
	}
	if len(r.EngineLogs) != 2 {
		t.Fatalf("EngineLogs count = %d, want one per batch engine (2)", len(r.EngineLogs))
	}
	if len(r.DecisionLog) == 0 || &r.DecisionLog[0] != &r.EngineLogs[0][0] {
		t.Error("DecisionLog is not the primary engine's log")
	}

	// The aggregated counters must equal the sum of both engines' verdicts.
	// (The bounded log would truncate a long run; this run is short enough
	// that every verdict is still present.)
	var wantPos, wantNeg uint64
	for _, log := range r.EngineLogs {
		p, n := countVerdicts(log)
		wantPos += p
		wantNeg += n
	}
	if r.CPositive != wantPos || r.CNegative != wantNeg {
		t.Errorf("aggregated verdicts = %d/%d, logs say %d/%d", r.CPositive, r.CNegative, wantPos, wantNeg)
	}

	// And they must exceed what engine 0 alone reports — the old bug.
	p0, n0 := countVerdicts(r.EngineLogs[0])
	if r.CPositive+r.CNegative <= p0+n0 {
		t.Errorf("aggregate %d verdicts not above engine 0's %d: still single-engine reporting",
			r.CPositive+r.CNegative, p0+n0)
	}
	if r.BatchInstructions == 0 || r.BatchDuty <= 0 || r.BatchDuty > 1 {
		t.Errorf("batch totals = %d instructions, duty %.3f", r.BatchInstructions, r.BatchDuty)
	}
}

// TestRunNativeMultiBatch checks the unmanaged path places and accounts the
// extra adversaries too.
func TestRunNativeMultiBatch(t *testing.T) {
	lat := fastProfile(t, "mcf", 200_000)
	single := Run(Scenario{Latency: lat, Mode: ModeNativeColo, Seed: 3})
	double := Run(Scenario{Latency: lat, Mode: ModeNativeColo,
		ExtraBatches: []spec.Profile{spec.LBM()}, Seed: 3})
	if !single.Completed || !double.Completed {
		t.Fatal("native runs did not complete")
	}
	if double.Scenario.Cores != 3 {
		t.Errorf("cores = %d, want 3", double.Scenario.Cores)
	}
	if double.Periods < single.Periods {
		t.Errorf("two adversaries finished faster than one: %d < %d periods", double.Periods, single.Periods)
	}
	if double.BatchInstructions <= single.BatchInstructions {
		t.Errorf("two batch cores retired %d instructions, one retired %d",
			double.BatchInstructions, single.BatchInstructions)
	}
}

// TestScenarioZeroValueBatchIsLBM pins the documented default: a Scenario
// whose Batch field is left as the zero value runs against lbm, the
// paper's adversary. Anything that constructs scenarios (experiments
// suites, caer-bench) relies on this.
func TestScenarioZeroValueBatchIsLBM(t *testing.T) {
	var zero spec.Profile
	s := Scenario{Latency: spec.LBM(), Batch: zero}.withDefaults()
	if s.Batch.Name != "470.lbm" {
		t.Fatalf("zero-value Batch resolved to %q, want 470.lbm", s.Batch.Name)
	}
	lbm := spec.LBM()
	if s.Batch.Exec != lbm.Exec || s.Batch.Class != lbm.Class {
		t.Error("zero-value Batch did not adopt the full lbm profile")
	}
}

func TestScenarioScheduledDefaults(t *testing.T) {
	s := Scenario{Latency: spec.LBM(), Mode: ModeScheduled}.withDefaults()
	if s.Domains != 2 || s.Cores != 8 {
		t.Errorf("scheduled defaults = %d domains / %d cores, want 2/8", s.Domains, s.Cores)
	}
}

func TestRunScheduledDrainsJobs(t *testing.T) {
	lat := fastProfile(t, "mcf", 600_000)
	job := fastProfile(t, "lbm", 120_000)
	quiet := fastProfile(t, "povray", 120_000)
	s := Scenario{
		Latency:   lat,
		Mode:      ModeScheduled,
		Heuristic: caer.HeuristicRule,
		Jobs:      []spec.Profile{job, quiet, job},
		Sched:     sched.Config{Policy: sched.PolicyContentionAware, AgingBound: 200},
		Seed:      7,
	}
	res := Run(s)
	if !res.Completed {
		t.Fatal("latency app did not complete")
	}
	if res.JobsCompleted != 3 {
		t.Fatalf("JobsCompleted = %d, want 3", res.JobsCompleted)
	}
	if len(res.BatchResults) != 3 {
		t.Fatalf("BatchResults has %d entries, want 3", len(res.BatchResults))
	}
	for i, br := range res.BatchResults {
		if !br.Completed || br.Admitted == 0 || br.DonePeriod < br.Admitted {
			t.Errorf("job %d lifecycle: completed=%v admitted=%d done=%d", i, br.Completed, br.Admitted, br.DonePeriod)
		}
		if br.Instructions == 0 {
			t.Errorf("job %d retired no instructions", i)
		}
		if br.Domain < 0 || br.Domain >= s.withDefaults().Domains {
			t.Errorf("job %d on domain %d", i, br.Domain)
		}
	}
	if res.MaxWait > 200 {
		t.Errorf("MaxWait = %d exceeds aging bound", res.MaxWait)
	}
	if res.BatchInstructions == 0 || res.Periods == 0 {
		t.Error("scheduled run produced empty aggregate metrics")
	}
	admits := 0
	for _, d := range res.SchedDecisions {
		if d.Kind == sched.DecisionAdmit {
			admits++
		}
	}
	if admits != 3 {
		t.Errorf("decision log has %d admissions, want 3", admits)
	}
}

func TestRunScheduledDeterministic(t *testing.T) {
	mk := func() Result {
		return Run(Scenario{
			Latency:   fastProfile(t, "mcf", 300_000),
			Mode:      ModeScheduled,
			Heuristic: caer.HeuristicRule,
			Jobs:      []spec.Profile{fastProfile(t, "lbm", 100_000), fastProfile(t, "lbm", 100_000)},
			Sched:     sched.Config{Policy: sched.PolicyRoundRobin},
			Seed:      3,
		})
	}
	a, b := mk(), mk()
	if a.Periods != b.Periods || a.LatencyInstructions != b.LatencyInstructions ||
		a.BatchInstructions != b.BatchInstructions || len(a.SchedDecisions) != len(b.SchedDecisions) {
		t.Error("scheduled runs with equal seeds diverged")
	}
}

func TestRunScheduledRejectsPartitioning(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PartitionWays in scheduled mode did not panic")
		}
	}()
	Run(Scenario{Latency: spec.LBM(), Mode: ModeScheduled, PartitionWays: 2})
}

// TestRunCAERPerBatchResults pins the per-batch breakdown against the
// aggregate counters in a multi-batch CAER run.
func TestRunCAERPerBatchResults(t *testing.T) {
	res := Run(Scenario{
		Latency:      fastProfile(t, "mcf", 400_000),
		Batch:        fastProfile(t, "lbm", 200_000),
		ExtraBatches: []spec.Profile{fastProfile(t, "milc", 200_000)},
		Mode:         ModeCAER,
		Heuristic:    caer.HeuristicRule,
		Seed:         5,
	})
	if len(res.BatchResults) != 2 {
		t.Fatalf("BatchResults has %d entries, want 2", len(res.BatchResults))
	}
	var pos, neg, paused uint64
	var relaunches int
	for i, br := range res.BatchResults {
		pos += br.CPositive
		neg += br.CNegative
		paused += br.PausedPeriods
		relaunches += br.Relaunches
		if br.Core != 1+i {
			t.Errorf("batch %d on core %d, want %d", i, br.Core, 1+i)
		}
		if br.Instructions == 0 {
			t.Errorf("batch %d retired no instructions", i)
		}
	}
	if pos != res.CPositive || neg != res.CNegative || paused != res.PausedPeriods {
		t.Errorf("per-batch sums (%d,%d,%d) != aggregates (%d,%d,%d)",
			pos, neg, paused, res.CPositive, res.CNegative, res.PausedPeriods)
	}
	if relaunches != res.Relaunches {
		t.Errorf("per-batch relaunches %d != aggregate %d", relaunches, res.Relaunches)
	}
}

// TestRunNativePerBatchResults pins the native-mode breakdown: per-core
// instruction totals sum to the aggregate and relaunch counts match.
func TestRunNativePerBatchResults(t *testing.T) {
	res := Run(Scenario{
		Latency: fastProfile(t, "mcf", 400_000),
		Batch:   fastProfile(t, "lbm", 150_000),
		Mode:    ModeNativeColo,
		Seed:    5,
	})
	if len(res.BatchResults) != 1 {
		t.Fatalf("BatchResults has %d entries, want 1", len(res.BatchResults))
	}
	br := res.BatchResults[0]
	if br.Instructions != res.BatchInstructions || br.Misses != res.BatchMisses {
		t.Error("single-batch per-batch totals differ from aggregates")
	}
	if br.Relaunches != res.Relaunches {
		t.Errorf("per-batch relaunches = %d, aggregate = %d", br.Relaunches, res.Relaunches)
	}
	if br.PausedPeriods != 0 {
		t.Error("native-mode batch reports engine pauses")
	}
}
