package runner

import "fmt"

// Slowdown returns r's execution-time penalty relative to the alone run:
// T_r / T_alone (1.0 means no cross-core interference). This is the y-axis
// of the paper's Figures 1 and 6.
func Slowdown(r, alone Result) float64 {
	if alone.Periods == 0 {
		panic("runner: alone run has zero periods")
	}
	return float64(r.Periods) / float64(alone.Periods)
}

// Overhead returns the cross-core interference penalty as a fraction:
// Slowdown − 1 (the paper's "overhead due to contention").
func Overhead(r, alone Result) float64 { return Slowdown(r, alone) - 1 }

// UtilizationGained returns the extra chip utilization co-location buys
// over running the latency-sensitive application alone — the batch core's
// duty cycle, the y-axis of the paper's Figure 7.
func UtilizationGained(r Result) float64 { return r.BatchDuty }

// InterferenceEliminated returns the fraction of the native co-location
// penalty that a managed run removes (Figure 8):
//
//	1 − (T_caer − T_alone) / (T_colo − T_alone)
//
// 1.0 means the managed run is as fast as running alone; 0 means it is as
// slow as unmanaged co-location. Values outside [0,1] are possible (a
// heuristic can, in principle, do worse than native) and are reported
// as-is. It panics when native co-location shows no penalty at all, since
// the metric is undefined there.
func InterferenceEliminated(caer, colo, alone Result) float64 {
	num := float64(caer.Periods) - float64(alone.Periods)
	den := float64(colo.Periods) - float64(alone.Periods)
	if den <= 0 {
		panic(fmt.Sprintf("runner: no native co-location penalty (colo=%d alone=%d periods)", colo.Periods, alone.Periods))
	}
	return 1 - num/den
}

// Accuracy is the paper's Equation 2: A = U_h / U_r − 1, comparing a
// heuristic's utilization gain against the random baseline's. For
// interference-sensitive applications a correct heuristic sacrifices more
// utilization than random (A < 0); for insensitive ones it gains more
// (A > 0). An inversion signals false negatives/positives (§6.4).
func Accuracy(heuristic, random Result) float64 {
	ur := UtilizationGained(random)
	if ur == 0 {
		panic("runner: random baseline gained zero utilization")
	}
	return UtilizationGained(heuristic)/ur - 1
}
