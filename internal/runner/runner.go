// Package runner executes the paper's co-location scenarios end to end and
// extracts the evaluation metrics: a latency-sensitive benchmark runs to
// completion on core 0 (its wall-clock period count is the figure of
// merit), optionally next to a batch application on core 1 that is either
// unmanaged (native co-location), managed by a CAER heuristic, or absent
// (the baseline the paper's "disallow co-location" policy corresponds to).
//
// The batch application is relaunched whenever it finishes before the
// latency-sensitive application, exactly as the paper's scripts do with
// lbm (§6.1).
package runner

import (
	"fmt"

	"caer/internal/caer"
	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/spec"
)

// Mode distinguishes the three ways a scenario can run.
type Mode int

const (
	// ModeAlone runs only the latency-sensitive application (the
	// disallow-co-location policy).
	ModeAlone Mode = iota
	// ModeNativeColo co-locates both applications with no runtime.
	ModeNativeColo
	// ModeCAER co-locates both applications under a CAER heuristic.
	ModeCAER
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAlone:
		return "alone"
	case ModeNativeColo:
		return "native-colo"
	case ModeCAER:
		return "caer"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Scenario describes one co-location experiment.
type Scenario struct {
	// Latency is the latency-sensitive benchmark (runs to completion).
	Latency spec.Profile
	// Batch is the throughput adversary; zero value means lbm.
	Batch spec.Profile
	// ExtraBatches adds further batch adversaries on cores 2, 3, ... beyond
	// the primary batch on core 1 (ignored in ModeAlone). Under ModeCAER
	// each extra batch gets its own engine; the Result's decision counters
	// aggregate over all of them.
	ExtraBatches []spec.Profile
	// Mode selects alone / native / CAER execution.
	Mode Mode
	// Heuristic selects the CAER pairing when Mode == ModeCAER.
	Heuristic caer.HeuristicKind
	// Config is the CAER configuration; zero value means caer.DefaultConfig.
	Config caer.Config
	// Seed drives all stochastic choices. The latency app uses Seed, the
	// batch app Seed+1.
	Seed int64
	// Cores sizes the machine; zero means 2 (the paper's prototype shape:
	// one latency-sensitive + one batch).
	Cores int
	// MaxPeriods bounds the run as a safety valve; zero means 10,000,000.
	MaxPeriods int
	// Actuator optionally replaces the pause actuator (DVFS extension).
	Actuator caer.Actuator
	// PartitionWays statically way-partitions the shared L3: the latency
	// application gets PartitionWays ways, the batch application the rest.
	// This is the hardware-QoS ablation (cf. the paper's related work on
	// cache partitioning); 0 disables partitioning. Only meaningful for
	// co-located modes.
	PartitionWays int
}

func (s Scenario) withDefaults() Scenario {
	if s.Batch.Name == "" {
		s.Batch = spec.LBM()
	}
	if s.Config.WindowSize == 0 {
		s.Config = caer.DefaultConfig()
	}
	if need := 2 + len(s.ExtraBatches); s.Cores < need {
		s.Cores = need
	}
	if s.MaxPeriods == 0 {
		s.MaxPeriods = 10_000_000
	}
	return s
}

// batchBase places the batch application's footprint far from the latency
// application's (they are separate processes and share no data); extra
// batches are spread extraBatchStride apart above it.
const (
	batchBase        = 1 << 28
	extraBatchStride = 1 << 26
)

// Result is one scenario's outcome.
type Result struct {
	Scenario Scenario

	// Periods is the latency-sensitive application's wall-clock run length
	// in sampling periods — the paper's execution-time metric.
	Periods uint64
	// Completed reports whether the latency app finished within MaxPeriods.
	Completed bool

	// LatencyInstructions / LatencyMisses are the latency app's totals.
	LatencyInstructions uint64
	LatencyMisses       uint64
	// BatchInstructions / BatchMisses are the batch apps' totals over the
	// same wall-clock window, summed across every batch core (0 in
	// ModeAlone).
	BatchInstructions uint64
	BatchMisses       uint64

	// BatchDuty is the batch cores' mean R/(R+I) over the run — the paper's
	// "utilization gained" by allowing co-location (0 in ModeAlone, 1 in
	// unmanaged co-location).
	BatchDuty float64
	// ChipUtilization is Equation 1 over the occupied cores.
	ChipUtilization float64

	// Engine decision counters (CAER runs only), aggregated across every
	// engine — with ExtraBatches there is one engine per batch application.
	CPositive, CNegative, PausedPeriods uint64
	// EngineLogs holds each engine's most recent decisions in batch-core
	// order (CAER runs only; each bounded by the engine's log capacity).
	EngineLogs [][]caer.Event
	// DecisionLog is EngineLogs[0] — the primary batch engine's log, kept
	// for the common single-batch case.
	DecisionLog []caer.Event
	// Relaunches counts batch restarts.
	Relaunches int
}

// Run executes the scenario to completion (or MaxPeriods) and returns the
// result.
func Run(s Scenario) Result {
	s = s.withDefaults()
	switch s.Mode {
	case ModeAlone:
		return runAlone(s)
	case ModeNativeColo:
		return runNative(s)
	case ModeCAER:
		return runCAER(s)
	default:
		panic(fmt.Sprintf("runner: unknown mode %d", int(s.Mode)))
	}
}

func newMachine(s Scenario) *machine.Machine {
	m := machine.New(machine.Config{Cores: s.Cores})
	if s.PartitionWays > 0 {
		l3 := m.Hierarchy().L3()
		if s.PartitionWays >= l3.Ways() {
			panic(fmt.Sprintf("runner: partition of %d ways leaves none for the batch (L3 has %d)", s.PartitionWays, l3.Ways()))
		}
		l3.SetWayPartition(0, 0, s.PartitionWays)
		for core := 1; core < s.Cores; core++ {
			l3.SetWayPartition(core, s.PartitionWays, l3.Ways())
		}
	}
	return m
}

func runAlone(s Scenario) Result {
	m := newMachine(s)
	lat := s.Latency.NewProcess(0, s.Seed)
	m.Bind(0, lat)
	res := Result{Scenario: s}
	for p := 0; p < s.MaxPeriods && !lat.Done(); p++ {
		m.RunPeriod()
	}
	res.Completed = lat.Done()
	res.Periods = m.Periods()
	res.LatencyInstructions = lat.Retired()
	res.LatencyMisses = m.ReadCounter(0, pmu.EventLLCMisses)
	res.ChipUtilization = m.Utilization(2)
	return res
}

// batchSpec is one batch adversary's placement: its profile, core, and
// footprint base address.
type batchSpec struct {
	prof spec.Profile
	core int
	base uint64
}

// batchSpecs returns every batch adversary with its placement: the primary
// on core 1, the extras on cores 2, 3, ...
func (s Scenario) batchSpecs() []batchSpec {
	out := make([]batchSpec, 0, 1+len(s.ExtraBatches))
	out = append(out, batchSpec{s.Batch, 1, batchBase})
	for i, p := range s.ExtraBatches {
		out = append(out, batchSpec{p, 2 + i, batchBase + uint64(i+1)*extraBatchStride})
	}
	return out
}

// fillBatchTotals sums the batch cores' counters into res.
func fillBatchTotals(res *Result, m *machine.Machine, cores []int) {
	var duty float64
	for _, c := range cores {
		res.BatchInstructions += m.ReadCounter(c, pmu.EventInstrRetired)
		res.BatchMisses += m.ReadCounter(c, pmu.EventLLCMisses)
		duty += m.Core(c).Utilization()
	}
	res.BatchDuty = duty / float64(len(cores))
	res.ChipUtilization = m.Utilization(1 + len(cores))
}

func runNative(s Scenario) Result {
	m := newMachine(s)
	lat := s.Latency.NewProcess(0, s.Seed)
	m.Bind(0, lat)
	specs := s.batchSpecs()
	batches := make([]*machine.Process, len(specs))
	cores := make([]int, len(specs))
	for i, b := range specs {
		batches[i] = b.prof.Batch().NewProcess(b.base, s.Seed+1+int64(i))
		m.Bind(b.core, batches[i])
		cores[i] = b.core
	}
	res := Result{Scenario: s}
	for p := 0; p < s.MaxPeriods && !lat.Done(); p++ {
		m.RunPeriod()
		for i, b := range batches {
			if b.Done() {
				m.Hierarchy().FlushCore(cores[i])
				b.Relaunch()
				res.Relaunches++
			}
		}
	}
	res.Completed = lat.Done()
	res.Periods = m.Periods()
	res.LatencyInstructions = lat.Retired()
	res.LatencyMisses = m.ReadCounter(0, pmu.EventLLCMisses)
	fillBatchTotals(&res, m, cores)
	return res
}

func runCAER(s Scenario) Result {
	m := newMachine(s)
	var opts []caer.Option
	if s.Actuator != nil {
		opts = append(opts, caer.WithActuator(s.Actuator))
	}
	rt := caer.NewRuntime(m, s.Heuristic, s.Config, opts...)
	lat := s.Latency.NewProcess(0, s.Seed)
	rt.AddLatency(spec.ShortName(s.Latency.Name), 0, lat)
	specs := s.batchSpecs()
	cores := make([]int, len(specs))
	for i, b := range specs {
		rt.AddBatch(spec.ShortName(b.prof.Name), b.core, b.prof.Batch().NewProcess(b.base, s.Seed+1+int64(i)))
		cores[i] = b.core
	}
	rt.RunUntil(lat.Done, s.MaxPeriods)
	res := Result{Scenario: s}
	res.Completed = lat.Done()
	res.Periods = m.Periods()
	res.LatencyInstructions = lat.Retired()
	res.LatencyMisses = m.ReadCounter(0, pmu.EventLLCMisses)
	fillBatchTotals(&res, m, cores)
	// Aggregate the decision counters over every engine: reading only
	// engines[0] under-reports whenever more than one batch is managed.
	for _, eng := range rt.Engines() {
		st := eng.Stats()
		res.CPositive += st.CPositive
		res.CNegative += st.CNegative
		res.PausedPeriods += st.PausedPeriods
		res.EngineLogs = append(res.EngineLogs, eng.Log().Events())
	}
	res.DecisionLog = res.EngineLogs[0]
	res.Relaunches = rt.Relaunches()
	return res
}
