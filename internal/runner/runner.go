// Package runner executes the paper's co-location scenarios end to end and
// extracts the evaluation metrics: a latency-sensitive benchmark runs to
// completion on core 0 (its wall-clock period count is the figure of
// merit), optionally next to a batch application on core 1 that is either
// unmanaged (native co-location), managed by a CAER heuristic, or absent
// (the baseline the paper's "disallow co-location" policy corresponds to).
//
// The batch application is relaunched whenever it finishes before the
// latency-sensitive application, exactly as the paper's scripts do with
// lbm (§6.1).
package runner

import (
	"fmt"

	"caer/internal/caer"
	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/sched"
	"caer/internal/spec"
	"caer/internal/telemetry"
)

// Mode distinguishes the three ways a scenario can run.
type Mode int

const (
	// ModeAlone runs only the latency-sensitive application (the
	// disallow-co-location policy).
	ModeAlone Mode = iota
	// ModeNativeColo co-locates both applications with no runtime.
	ModeNativeColo
	// ModeCAER co-locates both applications under a CAER heuristic.
	ModeCAER
	// ModeScheduled runs the latency app(s) as pinned services on a
	// multi-LLC-domain machine while the batch work flows through
	// internal/sched's admission queue and placement engine; each placed
	// job still runs under a per-domain CAER engine.
	ModeScheduled
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAlone:
		return "alone"
	case ModeNativeColo:
		return "native-colo"
	case ModeCAER:
		return "caer"
	case ModeScheduled:
		return "scheduled"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Scenario describes one co-location experiment.
type Scenario struct {
	// Latency is the latency-sensitive benchmark (runs to completion).
	Latency spec.Profile
	// Batch is the throughput adversary; the zero value (detected by an
	// empty Name) means lbm, the paper's adversary. Pinned by
	// TestScenarioZeroValueBatchIsLBM.
	Batch spec.Profile
	// ExtraBatches adds further batch adversaries on cores 2, 3, ... beyond
	// the primary batch on core 1 (ignored in ModeAlone). Under ModeCAER
	// each extra batch gets its own engine; the Result's decision counters
	// aggregate over all of them.
	ExtraBatches []spec.Profile
	// Mode selects alone / native / CAER execution.
	Mode Mode
	// Heuristic selects the CAER pairing when Mode == ModeCAER.
	Heuristic caer.HeuristicKind
	// Config is the CAER configuration; zero value means caer.DefaultConfig.
	Config caer.Config
	// Seed drives all stochastic choices. The latency app uses Seed, the
	// batch app Seed+1.
	Seed int64
	// Cores sizes the machine; zero means 2 (the paper's prototype shape:
	// one latency-sensitive + one batch).
	Cores int
	// MaxPeriods bounds the run as a safety valve; zero means 10,000,000.
	MaxPeriods int
	// Workers sizes the machine's domain-stepper worker pool: with more
	// than one LLC domain and Workers > 1, independent domains step on
	// parallel host cores with bit-identical per-seed results (the machine's
	// determinism contract, pinned by the experiments determinism test).
	// 0 or 1 = serial stepping.
	Workers int
	// Actuator optionally replaces the pause actuator (DVFS extension).
	Actuator caer.Actuator
	// PartitionWays statically way-partitions the shared L3: the latency
	// application gets PartitionWays ways, the batch application the rest.
	// This is the hardware-QoS ablation (cf. the paper's related work on
	// cache partitioning); 0 disables partitioning. Only meaningful for
	// co-located modes.
	PartitionWays int

	// Scheduled-mode knobs (Mode == ModeScheduled; ignored otherwise).

	// Domains splits the machine's cores into LLC domains; zero means 2.
	// Cores defaults to 4*Domains in scheduled mode and must divide evenly.
	Domains int
	// ExtraLatencies adds further latency-sensitive services beyond Latency
	// (which runs on core 0 of domain 0): extra i is pinned to the first
	// free core of domain (i+1) mod Domains, so services spread across
	// domains.
	ExtraLatencies []spec.Profile
	// Jobs are the finite batch work items submitted to the admission
	// queue before the run starts, in order. Their Instructions counts are
	// used as-is (they run to completion once and are not relaunched).
	Jobs []spec.Profile
	// Sched configures the placement/admission subsystem: policy,
	// thresholds, aging bound, migration rate. Its Heuristic and Caer
	// fields are overridden by the scenario's Heuristic and Config so the
	// engine setup matches the other modes.
	Sched sched.Config
}

func (s Scenario) withDefaults() Scenario {
	if s.Batch.Name == "" {
		s.Batch = spec.LBM()
	}
	if s.Config.WindowSize == 0 {
		s.Config = caer.DefaultConfig()
	}
	if s.Mode == ModeScheduled {
		if s.Domains == 0 {
			s.Domains = 2
		}
		if s.Cores == 0 {
			s.Cores = 4 * s.Domains
		}
	} else if need := 2 + len(s.ExtraBatches); s.Cores < need {
		s.Cores = need
	}
	if s.MaxPeriods == 0 {
		s.MaxPeriods = 10_000_000
	}
	return s
}

// batchBase places the batch application's footprint far from the latency
// application's (they are separate processes and share no data); extra
// batches are spread extraBatchStride apart above it.
const (
	batchBase        = 1 << 28
	extraBatchStride = 1 << 26
)

// Result is one scenario's outcome.
type Result struct {
	Scenario Scenario

	// Periods is the latency-sensitive application's wall-clock run length
	// in sampling periods — the paper's execution-time metric.
	Periods uint64
	// Completed reports whether the latency app finished within MaxPeriods.
	Completed bool

	// LatencyInstructions / LatencyMisses are the latency app's totals.
	LatencyInstructions uint64
	LatencyMisses       uint64
	// BatchInstructions / BatchMisses are the batch apps' totals over the
	// same wall-clock window, summed across every batch core (0 in
	// ModeAlone).
	BatchInstructions uint64
	BatchMisses       uint64

	// BatchDuty is the batch cores' mean R/(R+I) over the run — the paper's
	// "utilization gained" by allowing co-location (0 in ModeAlone, 1 in
	// unmanaged co-location).
	BatchDuty float64
	// ChipUtilization is Equation 1 over the occupied cores.
	ChipUtilization float64

	// Engine decision counters (CAER runs only), aggregated across every
	// engine — with ExtraBatches there is one engine per batch application.
	CPositive, CNegative, PausedPeriods uint64
	// EngineLogs holds each engine's most recent decisions in batch-core
	// order (CAER runs only; each bounded by the engine's log capacity).
	EngineLogs [][]caer.Event
	// DecisionLog is EngineLogs[0] — the primary batch engine's log, kept
	// for the common single-batch case.
	DecisionLog []caer.Event
	// Relaunches counts batch restarts.
	Relaunches int

	// Sampling is the runtime's probe-schedule accounting (CAER runs
	// only): which mode ran and how many probe periods it spent or shed.
	Sampling caer.SamplingStats

	// BatchResults breaks the batch-side outcome down per application: one
	// entry per batch core (native/CAER modes, placement order) or per
	// submitted job (scheduled mode, submission order). Empty in ModeAlone.
	BatchResults []BatchResult

	// Scheduled-mode outcome (Mode == ModeScheduled; zero otherwise).

	// SchedDecisions is the scheduler's admission/migration/completion
	// timeline.
	SchedDecisions []sched.Decision
	// JobsCompleted counts submitted jobs that ran to completion — the
	// admitted batch throughput the regime suite holds equal across
	// policies.
	JobsCompleted int
	// MaxWait is the longest any job waited in the admission queue
	// (periods); bounded by Sched.AgingBound while cores are free.
	MaxWait int
	// Migrations counts cross-domain job moves.
	Migrations int
}

// BatchResult is one batch application's (or scheduled job's) outcome.
type BatchResult struct {
	Name   string
	Core   int // -1 if the job was never placed
	Domain int // LLC domain of Core (-1 if never placed)

	// Instructions and Misses are the application's own totals (per
	// process, not per core, so scheduled-mode migration and core reuse do
	// not mix applications).
	Instructions uint64
	Misses       uint64

	// PausedPeriods / RunPeriods are its engine's actuation totals (zero
	// when it ran unmanaged: native mode, or a scheduled job on a domain
	// with no latency app). CPositive/CNegative are its engine's verdicts.
	PausedPeriods, RunPeriods uint64
	CPositive, CNegative      uint64

	// Relaunches counts restarts (service batches only; scheduled jobs
	// run once).
	Relaunches int

	// Scheduled-mode lifecycle: queue wait, forced-aging flag, admission /
	// completion periods (1-based, 0 = never), migration count, and
	// whether the job finished within the run.
	Waited     int
	Aged       bool
	Admitted   uint64
	DonePeriod uint64
	Completed  bool
	Migrations int
}

// Run executes the scenario to completion (or MaxPeriods) and returns the
// result.
func Run(s Scenario) Result {
	s = s.withDefaults()
	switch s.Mode {
	case ModeAlone:
		telemetry.RunnerRunsAlone.Inc()
		return runAlone(s)
	case ModeNativeColo:
		telemetry.RunnerRunsNative.Inc()
		return runNative(s)
	case ModeCAER:
		telemetry.RunnerRunsCAER.Inc()
		return runCAER(s)
	case ModeScheduled:
		telemetry.RunnerRunsScheduled.Inc()
		return runScheduled(s)
	default:
		panic(fmt.Sprintf("runner: unknown mode %d", int(s.Mode)))
	}
}

func newMachine(s Scenario) *machine.Machine {
	m := machine.New(machine.Config{Cores: s.Cores, Workers: s.Workers})
	if s.PartitionWays > 0 {
		l3 := m.Hierarchy().L3()
		if s.PartitionWays >= l3.Ways() {
			panic(fmt.Sprintf("runner: partition of %d ways leaves none for the batch (L3 has %d)", s.PartitionWays, l3.Ways()))
		}
		l3.SetWayPartition(0, 0, s.PartitionWays)
		for core := 1; core < s.Cores; core++ {
			l3.SetWayPartition(core, s.PartitionWays, l3.Ways())
		}
	}
	return m
}

func runAlone(s Scenario) Result {
	m := newMachine(s)
	lat := s.Latency.NewProcess(0, s.Seed)
	m.Bind(0, lat)
	res := Result{Scenario: s}
	for p := 0; p < s.MaxPeriods && !lat.Done(); p++ {
		m.RunPeriod()
		telemetry.RunnerPeriods.Inc()
	}
	res.Completed = lat.Done()
	res.Periods = m.Periods()
	res.LatencyInstructions = lat.Retired()
	res.LatencyMisses = m.ReadCounter(0, pmu.EventLLCMisses)
	res.ChipUtilization = m.Utilization(2)
	return res
}

// batchSpec is one batch adversary's placement: its profile, core, and
// footprint base address.
type batchSpec struct {
	prof spec.Profile
	core int
	base uint64
}

// batchSpecs returns every batch adversary with its placement: the primary
// on core 1, the extras on cores 2, 3, ...
func (s Scenario) batchSpecs() []batchSpec {
	out := make([]batchSpec, 0, 1+len(s.ExtraBatches))
	out = append(out, batchSpec{s.Batch, 1, batchBase})
	for i, p := range s.ExtraBatches {
		out = append(out, batchSpec{p, 2 + i, batchBase + uint64(i+1)*extraBatchStride})
	}
	return out
}

// fillBatchTotals sums the batch cores' counters into res.
func fillBatchTotals(res *Result, m *machine.Machine, cores []int) {
	var duty float64
	for _, c := range cores {
		res.BatchInstructions += m.ReadCounter(c, pmu.EventInstrRetired)
		res.BatchMisses += m.ReadCounter(c, pmu.EventLLCMisses)
		duty += m.Core(c).Utilization()
	}
	res.BatchDuty = duty / float64(len(cores))
	res.ChipUtilization = m.Utilization(1 + len(cores))
}

func runNative(s Scenario) Result {
	m := newMachine(s)
	lat := s.Latency.NewProcess(0, s.Seed)
	m.Bind(0, lat)
	specs := s.batchSpecs()
	batches := make([]*machine.Process, len(specs))
	cores := make([]int, len(specs))
	for i, b := range specs {
		batches[i] = b.prof.Batch().NewProcess(b.base, s.Seed+1+int64(i))
		m.Bind(b.core, batches[i])
		cores[i] = b.core
	}
	res := Result{Scenario: s}
	relaunches := make([]int, len(batches))
	for p := 0; p < s.MaxPeriods && !lat.Done(); p++ {
		m.RunPeriod()
		telemetry.RunnerPeriods.Inc()
		for i, b := range batches {
			if b.Done() {
				m.FlushCore(cores[i])
				b.Relaunch()
				res.Relaunches++
				relaunches[i]++
			}
		}
	}
	res.Completed = lat.Done()
	res.Periods = m.Periods()
	res.LatencyInstructions = lat.Retired()
	res.LatencyMisses = m.ReadCounter(0, pmu.EventLLCMisses)
	fillBatchTotals(&res, m, cores)
	for i, b := range specs {
		res.BatchResults = append(res.BatchResults, BatchResult{
			Name:         spec.ShortName(b.prof.Name),
			Core:         b.core,
			Domain:       m.DomainOf(b.core),
			Instructions: m.ReadCounter(b.core, pmu.EventInstrRetired),
			Misses:       m.ReadCounter(b.core, pmu.EventLLCMisses),
			Relaunches:   relaunches[i],
		})
	}
	return res
}

func runCAER(s Scenario) Result {
	m := newMachine(s)
	var opts []caer.Option
	if s.Actuator != nil {
		opts = append(opts, caer.WithActuator(s.Actuator))
	}
	rt := caer.NewRuntime(m, s.Heuristic, s.Config, opts...)
	lat := s.Latency.NewProcess(0, s.Seed)
	rt.AddLatency(spec.ShortName(s.Latency.Name), 0, lat)
	specs := s.batchSpecs()
	cores := make([]int, len(specs))
	for i, b := range specs {
		rt.AddBatch(spec.ShortName(b.prof.Name), b.core, b.prof.Batch().NewProcess(b.base, s.Seed+1+int64(i)))
		cores[i] = b.core
	}
	rt.RunUntil(lat.Done, s.MaxPeriods)
	res := Result{Scenario: s}
	res.Completed = lat.Done()
	res.Periods = m.Periods()
	res.LatencyInstructions = lat.Retired()
	res.LatencyMisses = m.ReadCounter(0, pmu.EventLLCMisses)
	fillBatchTotals(&res, m, cores)
	// Aggregate the decision counters over every engine: reading only
	// engines[0] under-reports whenever more than one batch is managed.
	for _, eng := range rt.Engines() {
		st := eng.Stats()
		res.CPositive += st.CPositive
		res.CNegative += st.CNegative
		res.PausedPeriods += st.PausedPeriods
		res.EngineLogs = append(res.EngineLogs, eng.Log().Events())
	}
	res.DecisionLog = res.EngineLogs[0]
	res.Relaunches = rt.Relaunches()
	res.Sampling = rt.SamplingStats()
	perBatch := rt.BatchRelaunches()
	for i, eng := range rt.Engines() {
		st := eng.Stats()
		res.BatchResults = append(res.BatchResults, BatchResult{
			Name:          spec.ShortName(specs[i].prof.Name),
			Core:          specs[i].core,
			Domain:        m.DomainOf(specs[i].core),
			Instructions:  m.ReadCounter(specs[i].core, pmu.EventInstrRetired),
			Misses:        m.ReadCounter(specs[i].core, pmu.EventLLCMisses),
			PausedPeriods: st.PausedPeriods,
			RunPeriods:    st.RunPeriods,
			CPositive:     st.CPositive,
			CNegative:     st.CNegative,
			Relaunches:    perBatch[i],
		})
	}
	return res
}

// runScheduled executes the scenario on a multi-LLC-domain machine with
// the batch side flowing through internal/sched: the latency app(s) are
// pinned services, the Jobs wait in the admission queue and are placed by
// the configured policy, each under a per-domain CAER engine. The run ends
// when the primary latency app completes AND every job has drained (or
// MaxPeriods).
func runScheduled(s Scenario) Result {
	if s.PartitionWays > 0 {
		panic("runner: PartitionWays is not supported in scheduled mode")
	}
	m := machine.New(machine.Config{Cores: s.Cores, Domains: s.Domains, Workers: s.Workers})
	defer m.StopWorkers()
	cfg := s.Sched
	cfg.Heuristic = s.Heuristic
	cfg.Caer = s.Config
	sd := sched.New(m, cfg)

	lat := s.Latency.NewProcess(0, s.Seed)
	sd.AddLatency(spec.ShortName(s.Latency.Name), 0, lat)
	usedLatency := map[int]bool{0: true}
	for i, p := range s.ExtraLatencies {
		d := (i + 1) % s.Domains
		lo, hi := m.DomainCores(d)
		core := -1
		for c := lo; c < hi; c++ {
			if !usedLatency[c] {
				core = c
				break
			}
		}
		if core < 0 {
			panic(fmt.Sprintf("runner: domain %d has no free core for extra latency app %d", d, i))
		}
		usedLatency[core] = true
		sd.AddLatency(spec.ShortName(p.Name), core,
			p.NewProcess(uint64(1<<27)+uint64(i)*extraBatchStride, s.Seed+100+int64(i)))
	}
	for i, p := range s.Jobs {
		p := p
		base := uint64(batchBase) + uint64(i)*extraBatchStride
		seed := s.Seed + 1 + int64(i)
		sd.Submit(sched.Job{Name: spec.ShortName(p.Name), New: func() *machine.Process {
			return p.NewProcess(base, seed)
		}})
	}

	sd.RunUntil(func() bool { return lat.Done() && sd.Done() }, s.MaxPeriods)

	res := Result{Scenario: s}
	res.Completed = lat.Done()
	res.Periods = sd.LatencyReports()[0].Done
	if res.Periods == 0 {
		res.Periods = sd.Period() // latency app never finished: bounded run
	}
	res.LatencyInstructions = lat.Retired()
	res.LatencyMisses = m.ReadCounter(0, pmu.EventLLCMisses)
	res.SchedDecisions = sd.Decisions()
	res.MaxWait = sd.MaxWait()
	res.Migrations = sd.Migrations()
	res.ChipUtilization = m.Utilization(s.Cores)

	// Batch duty in scheduled mode: the fraction of placed job-periods the
	// engines let run. Jobs on latency-free domains have no engine and
	// count as running every period they occupied a core.
	var run, paused float64
	for _, r := range sd.JobReports() {
		br := BatchResult{
			Name:          r.Name,
			Core:          r.Core,
			Domain:        r.Domain,
			Instructions:  r.Instructions,
			Misses:        r.Misses,
			PausedPeriods: r.PausedPeriods,
			RunPeriods:    r.RunPeriods,
			CPositive:     r.CPositive,
			CNegative:     r.CNegative,
			Waited:        r.Waited,
			Aged:          r.Aged,
			Admitted:      r.Admitted,
			DonePeriod:    r.Done,
			Completed:     r.State == sched.JobDone,
			Migrations:    r.Migrations,
		}
		res.BatchResults = append(res.BatchResults, br)
		res.BatchInstructions += r.Instructions
		res.BatchMisses += r.Misses
		res.CPositive += r.CPositive
		res.CNegative += r.CNegative
		res.PausedPeriods += r.PausedPeriods
		if br.Completed {
			res.JobsCompleted++
		}
		if r.RunPeriods+r.PausedPeriods > 0 {
			run += float64(r.RunPeriods)
			paused += float64(r.PausedPeriods)
		} else if r.Admitted > 0 && r.Done >= r.Admitted {
			run += float64(r.Done - r.Admitted + 1)
		}
	}
	if run+paused > 0 {
		res.BatchDuty = run / (run + paused)
	}
	return res
}
