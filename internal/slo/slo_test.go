package slo

import (
	"bytes"
	"sync/atomic"
	"testing"
	"testing/quick"

	"caer/internal/telemetry"
)

// latencyFixture builds a registry + series with one latency histogram and
// one degraded-ticks counter, plus a fresh engine over them.
type latencyFixture struct {
	reg    *telemetry.Registry
	series *telemetry.Series
	h      *telemetry.Histogram
	c      *telemetry.Counter
	eng    *Engine
}

func newLatencyFixture(t *testing.T, objs []Objective, spans *telemetry.SpanRecorder) *latencyFixture {
	t.Helper()
	f := &latencyFixture{reg: telemetry.NewRegistry()}
	f.h = f.reg.Histogram("caer_fleet_request_latency_periods", "latency", 0, 1000, 100, "service", "mcf")
	f.c = f.reg.Counter("caer_engine_degraded_ticks_total", "degraded")
	f.series = telemetry.NewSeries(f.reg, 256)
	f.eng = NewEngine(Config{Series: f.series, Objectives: objs, Registry: f.reg, Spans: spans, Track: 9})
	return f
}

// tick drives one period: n good observations at 50, bad observations at
// 650, then sample + evaluate.
func (f *latencyFixture) tick(good, bad int) {
	for i := 0; i < good; i++ {
		f.h.Observe(50)
	}
	for i := 0; i < bad; i++ {
		f.h.Observe(650)
	}
	f.series.Sample()
	f.eng.Evaluate()
}

func p99Objective(pending int) Objective {
	return Objective{
		Name: "mcf-p99", Metric: "caer_fleet_request_latency_periods",
		LabelKV: []string{"service", "mcf"},
		Kind:    KindQuantile, Quantile: 0.99, Bound: 300,
		Window: 12, FastWindow: 2, Burn: 2, PendingPeriods: pending,
	}
}

func TestAlertLifecycle(t *testing.T) {
	spans := telemetry.NewSpanRecorder(64, new(atomic.Uint64))
	f := newLatencyFixture(t, []Objective{p99Objective(2)}, spans)

	// Healthy traffic: 100 requests/period, all fast.
	for i := 0; i < 20; i++ {
		f.tick(100, 0)
		if got := f.eng.State(0); got != StateInactive {
			t.Fatalf("period %d: state %v, want inactive", i, got)
		}
	}
	// Violation: 10% of requests over the bound — fast burn = 0.10/0.01 =
	// 10 immediately, but the slow window (12 periods, 2% share needed)
	// breaches only from the 3rd burning period: that is the dual-window
	// point, a single hot period cannot so much as go pending.
	f.tick(90, 10)
	f.tick(90, 10)
	if got := f.eng.State(0); got != StateInactive {
		t.Fatalf("before slow window breaches: state %v, want inactive", got)
	}
	f.tick(90, 10)
	if got := f.eng.State(0); got != StatePending {
		t.Fatalf("slow window breached: state %v, want pending", got)
	}
	f.tick(90, 10)
	if got := f.eng.State(0); got != StatePending {
		t.Fatalf("pending period 2: state %v, want pending", got)
	}
	f.tick(90, 10)
	if got := f.eng.State(0); got != StateFiring {
		t.Fatalf("past PendingPeriods: state %v, want firing", got)
	}
	if got, _ := f.eng.StateOf("mcf-p99"); got != StateFiring {
		t.Fatalf("StateOf = %v, want firing", got)
	}
	if f.eng.Firing() != 1 {
		t.Fatalf("Firing() = %d, want 1", f.eng.Firing())
	}
	// Sustained: still one episode.
	for i := 0; i < 5; i++ {
		f.tick(90, 10)
	}
	// Recovery. The fast window clears after 2 clean periods; the slow
	// window still remembers the episode but resolve only needs one window
	// below threshold.
	f.tick(100, 0)
	f.tick(100, 0)
	for i := 0; i < 30 && f.eng.State(0) == StateFiring; i++ {
		f.tick(100, 0)
	}
	if got := f.eng.State(0); got != StateResolved {
		t.Fatalf("after recovery: state %v, want resolved", got)
	}
	f.tick(100, 0)
	if got := f.eng.State(0); got != StateInactive {
		t.Fatalf("period after resolved: state %v, want inactive", got)
	}

	// Exactly one episode: one fired-counter increment, one alert span.
	var buf bytes.Buffer
	if err := f.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`caer_slo_alerts_total{slo="mcf-p99"} 1`)) {
		t.Fatalf("want exactly one alert episode, got:\n%s", buf.String())
	}
	var alertSpans int
	for _, s := range spans.Spans() {
		if s.Kind == telemetry.SpanAlert {
			alertSpans++
			if s.Track != 9 {
				t.Fatalf("alert span on track %d, want 9", s.Track)
			}
			if s.Periods == 0 || s.Value < 2 {
				t.Fatalf("alert span %+v: want positive length and peak burn >= threshold", s)
			}
		}
	}
	if alertSpans != 1 {
		t.Fatalf("recorded %d alert spans, want 1", alertSpans)
	}
}

func TestPendingBlipDoesNotFire(t *testing.T) {
	f := newLatencyFixture(t, []Objective{p99Objective(2)}, nil)
	for i := 0; i < 15; i++ {
		f.tick(100, 0)
	}
	// Three burning periods reach pending, then clean traffic: pending
	// must retreat without ever firing (PendingPeriods=2 needs a 3rd
	// consecutive burning evaluation).
	f.tick(90, 10)
	f.tick(90, 10)
	f.tick(90, 10)
	if got := f.eng.State(0); got != StatePending {
		t.Fatalf("blip: state %v, want pending", got)
	}
	f.tick(100, 0)
	f.tick(100, 0)
	if got := f.eng.State(0); got != StateInactive {
		t.Fatalf("after blip: state %v, want inactive (never fired)", got)
	}
	var buf bytes.Buffer
	if err := f.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`caer_slo_alerts_total{slo="mcf-p99"} 0`)) {
		t.Fatalf("blip fired an alert:\n%s", buf.String())
	}
}

func TestBudgetObjective(t *testing.T) {
	f := newLatencyFixture(t, []Objective{{
		Name: "degraded-budget", Metric: "caer_engine_degraded_ticks_total",
		Kind: KindBudget, Budget: 0.5, Window: 8, FastWindow: 2, Burn: 2,
	}}, nil)
	for i := 0; i < 10; i++ {
		f.series.Sample()
		f.eng.Evaluate()
	}
	if got := f.eng.State(0); got != StateInactive {
		t.Fatalf("quiet counter: state %v, want inactive", got)
	}
	// 2 degraded ticks per period: rate 2, burn 2/0.5 = 4 >= 2. The slow
	// window needs enough burning periods to cross too.
	for i := 0; i < 8; i++ {
		f.c.Add(2)
		f.series.Sample()
		f.eng.Evaluate()
	}
	if got := f.eng.State(0); got != StateFiring {
		t.Fatalf("sustained degraded ticks: state %v, want firing", got)
	}
}

func TestEvaluateAllocFree(t *testing.T) {
	f := newLatencyFixture(t, []Objective{
		p99Objective(2),
		{Name: "degraded-budget", Metric: "caer_engine_degraded_ticks_total",
			Kind: KindBudget, Budget: 0.5, Window: 8, Burn: 2},
	}, nil)
	for i := 0; i < 20; i++ {
		f.tick(50, 1)
	}
	allocs := testing.AllocsPerRun(200, func() {
		f.h.Observe(50)
		f.series.Sample()
		f.eng.Evaluate()
	})
	if allocs != 0 {
		t.Fatalf("Evaluate allocates %v per period, want 0", allocs)
	}
}

func TestReplayMatchesLive(t *testing.T) {
	f := newLatencyFixture(t, []Objective{p99Objective(2)}, nil)
	// Two separated violation episodes.
	drive := func() {
		for i := 0; i < 15; i++ {
			f.tick(100, 0)
		}
		for i := 0; i < 8; i++ {
			f.tick(90, 10)
		}
		for i := 0; i < 25; i++ {
			f.tick(100, 0)
		}
		for i := 0; i < 8; i++ {
			f.tick(80, 20)
		}
		for i := 0; i < 25; i++ {
			f.tick(100, 0)
		}
	}
	drive()

	// Replay over the dumped series reproduces both episodes.
	var buf bytes.Buffer
	if err := f.series.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := telemetry.ParseSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reports := Replay(parsed, []Objective{p99Objective(2)})
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.Fired() != 2 {
		t.Fatalf("replay found %d episodes, want 2: %+v", r.Fired(), r.Episodes)
	}
	if r.Final != StateInactive {
		t.Fatalf("final state %v, want inactive", r.Final)
	}
	for _, ep := range r.Episodes {
		if ep.Open || ep.End < ep.Start || ep.PeakBurn < 2 {
			t.Fatalf("bad episode %+v", ep)
		}
	}
	if r.Episodes[0].End >= r.Episodes[1].Start {
		t.Fatalf("episodes overlap: %+v", r.Episodes)
	}
	if len(r.FiringPeriods) == 0 {
		t.Fatal("no firing periods recorded")
	}
	// Transition log is ordered and starts from a pending entry.
	for i := 1; i < len(r.Transitions); i++ {
		if r.Transitions[i].Period <= r.Transitions[i-1].Period {
			t.Fatalf("transitions out of order: %+v", r.Transitions)
		}
	}
	if r.Transitions[0].To != StatePending {
		t.Fatalf("first transition %+v, want -> pending", r.Transitions[0])
	}
}

// TestFiringMonotoneInBound is the quick property from ISSUE: on a fixed
// series, loosening a quantile objective's bound can only shrink the set
// of firing periods. (The count is NOT monotone — a looser bound can
// split one episode in two — but pointwise firing is: a period firing
// under the loose bound also fires under the tight one.)
func TestFiringMonotoneInBound(t *testing.T) {
	objective := func(bound float64) Objective {
		o := p99Objective(1)
		o.Bound = bound
		return o
	}
	check := func(pattern []uint8, tightRaw, looseRaw uint16) bool {
		if len(pattern) == 0 {
			return true
		}
		if len(pattern) > 64 {
			pattern = pattern[:64]
		}
		tight := 10 + float64(tightRaw%500)
		loose := tight + float64(looseRaw%400)

		reg := telemetry.NewRegistry()
		h := reg.Histogram("caer_fleet_request_latency_periods", "latency", 0, 1000, 100, "service", "mcf")
		series := telemetry.NewSeries(reg, 128)
		for _, b := range pattern {
			// b drives the period's bad share (0..15 bad of 100) and a
			// latency magnitude for the bad requests.
			bad := int(b % 16)
			lat := 100 + float64(b)*3 // 100..865
			for i := 0; i < 100-bad; i++ {
				h.Observe(5)
			}
			for i := 0; i < bad; i++ {
				h.Observe(lat)
			}
			series.Sample()
		}
		rt := Replay(series, []Objective{objective(tight)})
		rl := Replay(series, []Objective{objective(loose)})
		firingTight := make(map[uint64]bool, len(rt[0].FiringPeriods))
		for _, p := range rt[0].FiringPeriods {
			firingTight[p] = true
		}
		for _, p := range rl[0].FiringPeriods {
			if !firingTight[p] {
				t.Logf("period %d fires at loose bound %v but not tight %v", p, loose, tight)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineValidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("caer_test_total", "c")
	series := telemetry.NewSeries(reg, 8)
	cases := map[string]Config{
		"no series":    {Objectives: []Objective{{Name: "x", Metric: "caer_test_total", Kind: KindBudget, Budget: 1, Window: 4}}},
		"no objective": {Series: series},
		"bad metric": {Series: series, Objectives: []Objective{
			{Name: "x", Metric: "caer_missing_total", Kind: KindBudget, Budget: 1, Window: 4}}},
		"kind mismatch": {Series: series, Objectives: []Objective{
			{Name: "x", Metric: "caer_test_total", Kind: KindQuantile, Quantile: 0.99, Bound: 1, Window: 4}}},
		"dup names": {Series: series, Objectives: []Objective{
			{Name: "x", Metric: "caer_test_total", Kind: KindBudget, Budget: 1, Window: 4},
			{Name: "x", Metric: "caer_test_total", Kind: KindBudget, Budget: 1, Window: 4}}},
		"zero window": {Series: series, Objectives: []Objective{
			{Name: "x", Metric: "caer_test_total", Kind: KindBudget, Budget: 1}}},
		"bad quantile": {Series: series, Objectives: []Objective{
			{Name: "x", Metric: "caer_test_total", Kind: KindQuantile, Quantile: 1.5, Bound: 1, Window: 4}}},
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewEngine accepted bad config", name)
				}
			}()
			NewEngine(cfg)
		}()
	}
}

func TestKindAndStateStrings(t *testing.T) {
	for _, k := range []ObjectiveKind{KindQuantile, KindBudget} {
		if k.String() == "" || k.String()[0] == 'O' {
			t.Fatalf("ObjectiveKind(%d) has no name", int(k))
		}
	}
	for _, s := range []AlertState{StateInactive, StatePending, StateFiring, StateResolved} {
		if s.String() == "" || s.String()[0] == 'A' {
			t.Fatalf("AlertState(%d) has no name", int(s))
		}
	}
}
