package slo

import "caer/internal/telemetry"

// Transition is one alert state change during a replay.
type Transition struct {
	Period uint64 // sample index (exclusive end of the evaluated window)
	From   AlertState
	To     AlertState
	// Burn rates at the transition period.
	Fast, Slow float64
}

// Episode is one contiguous firing stretch.
type Episode struct {
	// Start is the first burning sample index; End the last (inclusive).
	// An episode still open at the end of the series has End = last sample.
	Start, End uint64
	PeakBurn   float64 // peak slow-window burn over the episode
	Open       bool    // true when the series ended mid-episode
}

// AlertReport is one objective's full replay result.
type AlertReport struct {
	Objective   Objective
	Transitions []Transition
	Episodes    []Episode
	// FiringPeriods lists every sample index at which the state machine
	// stood in StateFiring — the doctor's join key against decisions and
	// trace spans.
	FiringPeriods []uint64
	Final         AlertState
}

// Fired returns how many episodes reached firing.
func (r AlertReport) Fired() int { return len(r.Episodes) }

// Replay evaluates objectives over every retained sample of a series (live
// or parsed) and returns per-objective reports. This is the doctor's
// entry point: the same Engine state machine, driven sample by sample,
// with transition provenance captured instead of exported. Offline path:
// allocates freely.
func Replay(series *telemetry.Series, objectives []Objective) []AlertReport {
	eng := NewEngine(Config{Series: series, Objectives: objectives})
	reports := make([]AlertReport, len(eng.alerts))
	for i := range eng.alerts {
		reports[i] = AlertReport{Objective: eng.alerts[i].obj}
	}

	first := series.FirstRetained()
	last := series.Samples()
	for end := first + 1; end <= last; end++ {
		for i := range eng.alerts {
			a := &eng.alerts[i]
			fast := burnAt(series, a, end, a.obj.FastWindow)
			slow := burnAt(series, a, end, a.obj.Window)
			prev := a.state
			eng.step(a, fast, slow, uint64(end))
			r := &reports[i]
			if a.state != prev {
				r.Transitions = append(r.Transitions, Transition{
					Period: uint64(end), From: prev, To: a.state, Fast: fast, Slow: slow,
				})
			}
			if a.state == StateFiring {
				r.FiringPeriods = append(r.FiringPeriods, uint64(end-1))
				if prev != StateFiring {
					r.Episodes = append(r.Episodes, Episode{Start: a.episodeStart, PeakBurn: a.peakBurn})
				}
				ep := &r.Episodes[len(r.Episodes)-1]
				ep.End = uint64(end - 1)
				ep.PeakBurn = a.peakBurn
			}
		}
	}
	for i := range eng.alerts {
		reports[i].Final = eng.alerts[i].state
		if n := len(reports[i].Episodes); n > 0 && eng.alerts[i].state == StateFiring {
			reports[i].Episodes[n-1].Open = true
		}
	}
	return reports
}
