// Package slo evaluates declarative service-level objectives against a
// telemetry.Series, period by period, with multi-window burn-rate
// alerting. This is the online half of the loop ROADMAP's fleet follow-on
// asks for: the placer and the operator both consume alert state that is
// derived purely from exported metrics, never from reaching into engine
// internals.
//
// The alerting discipline is the SRE multi-window construction: an
// objective defines an error budget (for a latency objective, the share of
// requests allowed over the bound — 1% for a p99 target); the burn rate is
// the observed error share divided by that budget. An alert needs the burn
// to exceed the threshold in BOTH a slow window (evidence the problem is
// sustained) and a fast window (evidence it is still happening), which
// keeps detection latency low without paging on a long-resolved spike. On
// top of the window predicate sits a pending→firing→resolved state machine
// so one sustained violation raises exactly one alert episode.
//
// Evaluate is a per-period hot path: allocation-free after NewEngine (the
// caer-vet hotpath analyzer enforces this). Everything the engine decides
// is exported right back into the registry as caer_slo_* families and
// recorded as alert spans, so the doctor can reconstruct every episode
// offline from the same bytes /metrics serves.
package slo

import (
	"fmt"

	"caer/internal/telemetry"
)

// ObjectiveKind selects how an objective turns a series window into an
// error ratio.
type ObjectiveKind int

const (
	// KindQuantile bounds a latency histogram quantile: "p99 < Bound". The
	// error budget is 1-Quantile (the share of observations allowed over
	// the bound); the observed error share is Series.OverShare.
	KindQuantile ObjectiveKind = iota
	// KindBudget bounds a counter's per-period rate: "rate < Budget"
	// (degraded ticks per period, stale comm reads per period). The burn
	// rate is the windowed rate over the budget.
	KindBudget
)

// String names the kind.
func (k ObjectiveKind) String() string {
	switch k {
	case KindQuantile:
		return "quantile"
	case KindBudget:
		return "budget"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// AlertState is one objective's position in the alert state machine.
type AlertState int

const (
	// StateInactive: burn below threshold in at least one window.
	StateInactive AlertState = iota
	// StatePending: both windows burning, waiting out PendingPeriods to
	// reject blips before paging.
	StatePending
	// StateFiring: a confirmed, ongoing violation episode.
	StateFiring
	// StateResolved: the episode just ended (burn dropped while firing);
	// one period later the machine returns to inactive.
	StateResolved
)

// String names the state.
func (s AlertState) String() string {
	switch s {
	case StateInactive:
		return "inactive"
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	default:
		return fmt.Sprintf("AlertState(%d)", int(s))
	}
}

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in caer_slo_* labels, alert spans, and
	// doctor output. Must be unique within an engine and non-empty.
	Name string
	// Metric is the telemetry family the objective watches; LabelKV the
	// exact label pairs of the series (alternating key, value).
	Metric  string
	LabelKV []string

	Kind ObjectiveKind
	// Quantile and Bound define a KindQuantile objective: Quantile's
	// error budget (1-Quantile) may be spent on observations >= Bound.
	Quantile float64
	Bound    float64
	// Budget is a KindBudget objective's allowed per-period event rate.
	Budget float64

	// Window is the slow evaluation window in periods. FastWindow defaults
	// to Window/12 (min 1), the classic 1h/5m ratio.
	Window     int
	FastWindow int
	// Burn is the alerting burn-rate threshold (default 2): how many times
	// faster than budget the error may accrue before alerting.
	Burn float64
	// PendingPeriods is how many consecutive burning periods are required
	// before pending escalates to firing (default 0: fire immediately once
	// both windows burn).
	PendingPeriods int
}

// withDefaults returns o with the documented defaults applied, validating
// the rest.
func (o Objective) withDefaults() Objective {
	if o.Name == "" || o.Metric == "" {
		panic("slo: objective needs a name and a metric")
	}
	if o.Window <= 0 {
		panic(fmt.Sprintf("slo: objective %s needs a positive window", o.Name))
	}
	if o.FastWindow <= 0 {
		o.FastWindow = o.Window / 12
		if o.FastWindow < 1 {
			o.FastWindow = 1
		}
	}
	if o.FastWindow > o.Window {
		panic(fmt.Sprintf("slo: objective %s fast window %d exceeds slow window %d", o.Name, o.FastWindow, o.Window))
	}
	if o.Burn == 0 {
		o.Burn = 2
	}
	if o.Burn < 0 || o.PendingPeriods < 0 {
		panic(fmt.Sprintf("slo: objective %s has negative burn or pending", o.Name))
	}
	switch o.Kind {
	case KindQuantile:
		if o.Quantile <= 0 || o.Quantile >= 1 {
			panic(fmt.Sprintf("slo: objective %s quantile %v outside (0,1)", o.Name, o.Quantile))
		}
	case KindBudget:
		if o.Budget <= 0 {
			panic(fmt.Sprintf("slo: objective %s needs a positive budget", o.Name))
		}
	default:
		panic(fmt.Sprintf("slo: unknown objective kind %d", int(o.Kind)))
	}
	return o
}

// budget returns the objective's error budget: the denominator of the burn
// rate.
func (o *Objective) budget() float64 {
	if o.Kind == KindQuantile {
		return 1 - o.Quantile
	}
	return o.Budget
}

// alert is one objective's runtime state.
type alert struct {
	obj   Objective
	track telemetry.TrackRef

	state   AlertState
	pending int // consecutive burning periods while pending
	// episode bookkeeping for the alert span: first pending period and
	// peak slow burn since the episode opened.
	episodeStart uint64
	peakBurn     float64

	// exported handles (nil when the engine runs without a registry).
	stateG    *telemetry.Gauge
	burnFastG *telemetry.Gauge
	burnSlowG *telemetry.Gauge
	firedC    *telemetry.Counter
}

// Engine evaluates a set of objectives against one Series.
type Engine struct {
	series *telemetry.Series
	alerts []alert
	spans  *telemetry.SpanRecorder
	track  int32
	evals  *telemetry.Counter
	period uint64 // periods evaluated so far (mirrors series sample index)
}

// Config wires an Engine.
type Config struct {
	// Series is the store the objectives read. Required.
	Series *telemetry.Series
	// Objectives to evaluate, in order. Required, non-empty, unique names.
	Objectives []Objective
	// Registry receives the caer_slo_* export families. Optional: nil runs
	// the engine silent (the Replay path).
	Registry *telemetry.Registry
	// Spans receives one alert span per episode on Track. Optional.
	Spans *telemetry.SpanRecorder
	Track int32
}

// NewEngine validates objectives, resolves their series tracks, and
// registers the export families. Setup path: allocates. Objectives whose
// metric series does not exist yet panic — declare objectives after the
// components that register their metrics, like every other handle.
func NewEngine(cfg Config) *Engine {
	if cfg.Series == nil {
		panic("slo: engine needs a series")
	}
	if len(cfg.Objectives) == 0 {
		panic("slo: engine needs at least one objective")
	}
	e := &Engine{series: cfg.Series, spans: cfg.Spans, track: cfg.Track}
	seen := make(map[string]bool, len(cfg.Objectives))
	for _, raw := range cfg.Objectives {
		o := raw.withDefaults()
		if seen[o.Name] {
			panic(fmt.Sprintf("slo: duplicate objective %s", o.Name))
		}
		seen[o.Name] = true
		ref, ok := cfg.Series.Lookup(o.Metric, o.LabelKV...)
		if !ok {
			panic(fmt.Sprintf("slo: objective %s watches unregistered series %s%v", o.Name, o.Metric, o.LabelKV))
		}
		if k := cfg.Series.Kind(ref); (o.Kind == KindQuantile) != (k == telemetry.KindHistogram) {
			panic(fmt.Sprintf("slo: objective %s kind %v cannot watch a %v series", o.Name, o.Kind, k))
		}
		a := alert{obj: o, track: ref}
		if cfg.Registry != nil {
			a.stateG = cfg.Registry.Gauge("caer_slo_state",
				"alert state machine position (0 inactive, 1 pending, 2 firing, 3 resolved)", "slo", o.Name)
			a.burnFastG = cfg.Registry.Gauge("caer_slo_burn_fast",
				"fast-window burn rate (error share over budget)", "slo", o.Name)
			a.burnSlowG = cfg.Registry.Gauge("caer_slo_burn_slow",
				"slow-window burn rate (error share over budget)", "slo", o.Name)
			a.firedC = cfg.Registry.Counter("caer_slo_alerts_total",
				"alert episodes that reached firing", "slo", o.Name)
		}
		e.alerts = append(e.alerts, a)
	}
	if cfg.Registry != nil {
		e.evals = cfg.Registry.Counter("caer_slo_evals_total", "per-period SLO evaluation passes")
	}
	return e
}

// burnAt computes one objective's burn rate over `window` periods ending
// at sample index end (exclusive). Alloc-free.
func burnAt(s *telemetry.Series, a *alert, end, window int) float64 {
	var errRate float64
	if a.obj.Kind == KindQuantile {
		errRate = s.OverShareAt(a.track, end, window, a.obj.Bound)
	} else {
		errRate = s.RateAt(a.track, end, window)
	}
	return errRate / a.obj.budget()
}

// Evaluate runs one period's pass: compute both windows' burn for every
// objective, advance its state machine, export the results. Call once per
// Series.Sample, after it. Hot path: allocation-free.
func (e *Engine) Evaluate() {
	e.period++
	end := e.series.Samples()
	for i := range e.alerts {
		a := &e.alerts[i]
		fast := burnAt(e.series, a, end, a.obj.FastWindow)
		slow := burnAt(e.series, a, end, a.obj.Window)
		e.step(a, fast, slow, uint64(end))
		if a.stateG != nil {
			a.stateG.Set(float64(a.state))
			a.burnFastG.Set(fast)
			a.burnSlowG.Set(slow)
		}
	}
	if e.evals != nil {
		e.evals.Inc()
	}
}

// step advances one alert's state machine given this period's burns.
func (e *Engine) step(a *alert, fast, slow float64, period uint64) {
	breach := fast >= a.obj.Burn && slow >= a.obj.Burn
	if slow > a.peakBurn {
		a.peakBurn = slow
	}
	switch a.state {
	case StateInactive:
		if breach {
			a.state = StatePending
			a.pending = 1
			a.episodeStart = period - 1
			a.peakBurn = slow
			if a.pending > a.obj.PendingPeriods {
				e.fire(a)
			}
		}
	case StatePending:
		if !breach {
			a.state = StateInactive
			a.pending = 0
			break
		}
		a.pending++
		if a.pending > a.obj.PendingPeriods {
			e.fire(a)
		}
	case StateFiring:
		if !breach {
			a.state = StateResolved
			if e.spans != nil {
				// periods covered: episodeStart .. period-1 (the last
				// burning period).
				e.spans.Record(e.track, telemetry.SpanAlert, a.episodeStart,
					uint32(period-1-a.episodeStart), a.peakBurn)
			}
		}
	case StateResolved:
		a.pending = 0
		if breach {
			// Relapse within one period: a fresh episode.
			a.state = StatePending
			a.pending = 1
			a.episodeStart = period - 1
			a.peakBurn = slow
			if a.pending > a.obj.PendingPeriods {
				e.fire(a)
			}
		} else {
			a.state = StateInactive
		}
	default:
		panic(fmt.Sprintf("slo: unknown alert state %d", int(a.state)))
	}
}

// fire transitions pending → firing.
func (e *Engine) fire(a *alert) {
	a.state = StateFiring
	if a.firedC != nil {
		a.firedC.Inc()
	}
}

// State returns an objective's current alert state (by declaration index).
func (e *Engine) State(i int) AlertState { return e.alerts[i].state }

// StateOf returns the named objective's current state.
func (e *Engine) StateOf(name string) (AlertState, bool) {
	for i := range e.alerts {
		if e.alerts[i].obj.Name == name {
			return e.alerts[i].state, true
		}
	}
	return StateInactive, false
}

// Objectives returns the engine's objectives with defaults applied.
func (e *Engine) Objectives() []Objective {
	out := make([]Objective, len(e.alerts))
	for i := range e.alerts {
		out[i] = e.alerts[i].obj
	}
	return out
}

// Firing returns how many objectives are currently firing.
func (e *Engine) Firing() int {
	n := 0
	for i := range e.alerts {
		if e.alerts[i].state == StateFiring {
			n++
		}
	}
	return n
}
