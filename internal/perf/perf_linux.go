//go:build linux

// Package perf wraps the Linux perf_event_open(2) syscall so the CAER
// runtime can read real hardware performance counters — the deployment mode
// of the original paper (which used Perfmon2 on the same counters). It
// implements pmu.Source over per-CPU hardware events.
//
// Counter access is a privileged operation on most systems
// (kernel.perf_event_paranoid); every entry point degrades gracefully with
// a descriptive error so the simulated backend remains the default.
package perf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"syscall"
	"unsafe"

	"caer/internal/pmu"
)

// Static read-path errors: Counter.Read sits on the per-period sampling
// path, so its failure modes must not format (fmt.Errorf allocates). The
// errno detail is lost, but every caller treats a failed read as "signal
// missing" anyway.
var (
	errCounterRead = errors.New("perf: read counter failed")
	errShortRead   = errors.New("perf: short counter read")
)

// sysPerfEventOpen is the x86-64/arm64 syscall number for
// perf_event_open(2). (Same number on both Linux ABIs this repo targets.)
const sysPerfEventOpen = 298

// perf_event_attr type field.
const perfTypeHardware = 0

// PERF_COUNT_HW_* configs.
const (
	hwCPUCycles       = 0
	hwInstructions    = 1
	hwCacheReferences = 2
	hwCacheMisses     = 3
)

// attr flag bits (perf_event_attr.flags bitfield, LSB first).
const (
	flagDisabled      = 1 << 0
	flagExcludeKernel = 1 << 5
	flagExcludeHV     = 1 << 6
)

// ioctl requests.
const (
	ioctlEnable = 0x2400
	ioctlReset  = 0x2403
)

// perfEventAttr mirrors struct perf_event_attr (PERF_ATTR_SIZE_VER5, 112
// bytes). Fields past the flags word are unused here but must be present
// so the kernel reads a correctly-sized struct.
type perfEventAttr struct {
	Type             uint32
	Size             uint32
	Config           uint64
	SamplePeriod     uint64
	SampleType       uint64
	ReadFormat       uint64
	Flags            uint64
	WakeupEvents     uint32
	BPType           uint32
	BPAddrOrConfig1  uint64
	BPLenOrConfig2   uint64
	BranchSampleType uint64
	SampleRegsUser   uint64
	SampleStackUser  uint32
	ClockID          int32
	SampleRegsIntr   uint64
	AuxWatermark     uint32
	SampleMaxStack   uint16
	_                uint16
}

// eventConfig maps a pmu.Event to a hardware perf config, or reports that
// the event has no hardware equivalent here.
func eventConfig(ev pmu.Event) (uint64, bool) {
	switch ev {
	case pmu.EventLLCMisses:
		return hwCacheMisses, true
	case pmu.EventLLCAccesses:
		return hwCacheReferences, true
	case pmu.EventInstrRetired:
		return hwInstructions, true
	case pmu.EventCycles:
		return hwCPUCycles, true
	case pmu.EventL2Misses:
		// No generic PERF_TYPE_HARDWARE encoding; needs a raw
		// model-specific event, which we do not configure here.
		return 0, false
	default:
		return 0, false
	}
}

// Counter is one open hardware counter.
type Counter struct {
	fd int
	ev pmu.Event
}

// OpenCounter opens a counting (non-sampling) hardware counter for ev on
// the given CPU, across all processes (pid = -1), excluding kernel and
// hypervisor events — the configuration the CAER monitor layers need.
func OpenCounter(ev pmu.Event, cpu int) (*Counter, error) {
	cfg, ok := eventConfig(ev)
	if !ok {
		return nil, fmt.Errorf("perf: event %v has no hardware mapping", ev)
	}
	attr := perfEventAttr{
		Type:   perfTypeHardware,
		Size:   uint32(unsafe.Sizeof(perfEventAttr{})),
		Config: cfg,
		Flags:  flagDisabled | flagExcludeKernel | flagExcludeHV,
	}
	fd, _, errno := syscall.Syscall6(sysPerfEventOpen,
		uintptr(unsafe.Pointer(&attr)),
		^uintptr(0), // pid = -1: all processes
		uintptr(cpu),
		^uintptr(0), // group_fd = -1
		0, 0)
	if errno != 0 {
		return nil, fmt.Errorf("perf: perf_event_open(%v, cpu %d): %w (check kernel.perf_event_paranoid)", ev, cpu, errno)
	}
	c := &Counter{fd: int(fd), ev: ev}
	if err := c.ioctl(ioctlReset); err != nil {
		_ = c.Close() // best-effort cleanup; the ioctl error wins
		return nil, err
	}
	if err := c.ioctl(ioctlEnable); err != nil {
		_ = c.Close() // best-effort cleanup; the ioctl error wins
		return nil, err
	}
	return c, nil
}

func (c *Counter) ioctl(req uintptr) error {
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(c.fd), req, 0)
	if errno != 0 {
		return fmt.Errorf("perf: ioctl %#x: %w", req, errno)
	}
	return nil
}

// Read returns the counter's cumulative value.
func (c *Counter) Read() (uint64, error) {
	var buf [8]byte
	//caer:allow hotpath reading the perf fd IS the sampling mechanism; one read(2) per counter per period is the budgeted cost (paper §6)
	n, err := syscall.Read(c.fd, buf[:])
	if err != nil {
		return 0, errCounterRead
	}
	if n != 8 {
		return 0, errShortRead
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Event returns the event this counter counts.
func (c *Counter) Event() pmu.Event { return c.ev }

// Close releases the counter's file descriptor.
func (c *Counter) Close() error {
	if c.fd < 0 {
		return nil
	}
	err := syscall.Close(c.fd)
	c.fd = -1
	return err
}

// Source adapts a set of per-CPU counters to pmu.Source, letting the CAER
// runtime's monitors and engines run unchanged over real hardware. "Core"
// indices map to the CPUs passed to NewSource in order.
type Source struct {
	cpus []int
	// counters is dense, indexed [core][event]: the per-period read path
	// must not hash (two map lookups per event per core per period add up
	// against the paper's <1% overhead budget). Unopened slots are nil.
	counters [][]*Counter
}

// NewSource opens counters for every (cpu, event) pair. On any failure it
// closes everything already opened and returns the error.
func NewSource(cpus []int, events []pmu.Event) (*Source, error) {
	if len(cpus) == 0 || len(events) == 0 {
		return nil, fmt.Errorf("perf: source needs at least one CPU and one event")
	}
	width := len(pmu.Events())
	s := &Source{cpus: cpus, counters: make([][]*Counter, len(cpus))}
	for core, cpu := range cpus {
		s.counters[core] = make([]*Counter, width)
		for _, ev := range events {
			c, err := OpenCounter(ev, cpu)
			if err != nil {
				_ = s.Close() // best-effort cleanup; the open error wins
				return nil, err
			}
			s.counters[core][ev] = c
		}
	}
	return s, nil
}

// ReadCounter implements pmu.Source. Events that were not opened (or whose
// read fails) report zero; the CAER heuristics treat missing signals as
// quiet, which fails safe (no throttling).
func (s *Source) ReadCounter(core int, ev pmu.Event) uint64 {
	if core < 0 || core >= len(s.counters) || int(ev) < 0 || int(ev) >= len(s.counters[core]) {
		return 0
	}
	c := s.counters[core][ev]
	if c == nil {
		return 0
	}
	v, err := c.Read()
	if err != nil {
		return 0
	}
	return v
}

// Close releases every counter, returning the first error.
func (s *Source) Close() error {
	var first error
	for _, row := range s.counters {
		for _, c := range row {
			if c == nil {
				continue
			}
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
