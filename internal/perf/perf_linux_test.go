//go:build linux

package perf

import (
	"testing"
	"unsafe"

	"caer/internal/pmu"
)

func TestAttrStructSize(t *testing.T) {
	// PERF_ATTR_SIZE_VER5 is 112 bytes; a mismatch means the kernel would
	// reject or misread the struct.
	if got := unsafe.Sizeof(perfEventAttr{}); got != 112 {
		t.Fatalf("perfEventAttr size = %d, want 112 (PERF_ATTR_SIZE_VER5)", got)
	}
}

func TestEventConfigMapping(t *testing.T) {
	cases := []struct {
		ev  pmu.Event
		cfg uint64
		ok  bool
	}{
		{pmu.EventLLCMisses, hwCacheMisses, true},
		{pmu.EventLLCAccesses, hwCacheReferences, true},
		{pmu.EventInstrRetired, hwInstructions, true},
		{pmu.EventCycles, hwCPUCycles, true},
		{pmu.EventL2Misses, 0, false},
	}
	for _, c := range cases {
		cfg, ok := eventConfig(c.ev)
		if ok != c.ok || (ok && cfg != c.cfg) {
			t.Errorf("eventConfig(%v) = (%d,%v), want (%d,%v)", c.ev, cfg, ok, c.cfg, c.ok)
		}
	}
}

func TestNewSourceValidation(t *testing.T) {
	if _, err := NewSource(nil, []pmu.Event{pmu.EventCycles}); err == nil {
		t.Error("no CPUs accepted")
	}
	if _, err := NewSource([]int{0}, nil); err == nil {
		t.Error("no events accepted")
	}
}

// TestRealCounters exercises the full path against the host PMU when the
// environment permits it (most containers and locked-down kernels do not;
// the test skips there, keeping the suite hermetic).
func TestRealCounters(t *testing.T) {
	src, err := NewSource([]int{0}, []pmu.Event{pmu.EventInstrRetired, pmu.EventCycles})
	if err != nil {
		t.Skipf("hardware counters unavailable: %v", err)
	}
	defer src.Close()
	p := pmu.New(src, 0)
	// Burn some user-mode cycles so the counters move.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if d := p.ReadDelta(pmu.EventInstrRetired); d == 0 {
		t.Error("instruction counter did not advance")
	}
}

func TestOpenCounterUnknownEvent(t *testing.T) {
	if _, err := OpenCounter(pmu.EventL2Misses, 0); err == nil {
		t.Error("unmapped event accepted")
	}
}

func TestCounterDoubleCloseSafe(t *testing.T) {
	c := &Counter{fd: -1}
	if err := c.Close(); err != nil {
		t.Errorf("closing a closed counter errored: %v", err)
	}
}

// TestCounterResetRegressionTolerated documents the counter-regression
// hazard the PMU layer hardens against. A perf_event counter is cumulative
// only per fd configuration: PERF_EVENT_IOC_RESET (which OpenCounter itself
// issues, and which attr.inherit/enable-on-exec setups re-issue on exec)
// snaps the value back to zero, so a reader that assumes monotonicity
// computes cur-last with cur < last and gets a ~2^64 delta. PMU.ReadDelta
// must instead re-arm on the regressed value and report zero.
func TestCounterResetRegressionTolerated(t *testing.T) {
	src, err := NewSource([]int{0}, []pmu.Event{pmu.EventCycles})
	if err != nil {
		t.Skipf("hardware counters unavailable: %v", err)
	}
	defer src.Close()
	p := pmu.New(src, 0)

	burn := func() {
		x := 0
		for i := 0; i < 1_000_000; i++ {
			x += i * i
		}
		_ = x
	}
	burn()
	if d := p.ReadDelta(pmu.EventCycles); d == 0 {
		t.Skip("cycle counter did not advance (emulated PMU?)")
	}
	burn()

	// Reset the fd mid-flight, as PERF_EVENT_IOC_RESET / reset-on-exec
	// would: the next raw read regresses below the PMU's last value.
	if err := src.counters[0][pmu.EventCycles].ioctl(ioctlReset); err != nil {
		t.Fatalf("reset ioctl: %v", err)
	}
	if d := p.ReadDelta(pmu.EventCycles); d > 1<<40 {
		t.Fatalf("delta after reset = %d: unsigned underflow leaked through", d)
	}
	// And the PMU re-armed on the regressed value: deltas keep flowing.
	burn()
	if d := p.ReadDelta(pmu.EventCycles); d == 0 {
		t.Error("counter never recovered after reset")
	}
}
