// Package machine models a multicore CPU executing synthetic workloads at
// period granularity. It stands in for the paper's Intel Core i7 920
// testbed: each core runs one application process over the shared memory
// hierarchy of internal/mem, and a scaled "1 ms" period (60,000 cycles by
// default) is the unit at which the CAER runtime probes counters and applies
// throttling directives. The period is sized so that the shared cache's
// refill time constant spans a few periods, as on the paper's hardware.
//
// Within a period, active cores are interleaved in small time slices so
// that their reference streams contend in the shared L3 the way truly
// parallel cores do.
//
// A machine may be split into several LLC domains (Config.Domains), each a
// contiguous block of cores over its own hierarchy instance — the
// multi-socket shape the contention-aware placement subsystem
// (internal/sched) schedules over. Cores only contend within their domain.
//
// The machine implements pmu.Source; the CAER runtime reads counters only
// through that interface.
package machine

import (
	"fmt"
	"math/rand"
	"sync"

	"caer/internal/mem"
	"caer/internal/pmu"
	"caer/internal/workload"
)

// ExecProfile describes how a process turns instructions into memory
// references and compute cycles. These are the per-benchmark execution
// parameters (the rest of a benchmark's identity is its Generator).
type ExecProfile struct {
	// MemFraction is the fraction of instructions that reference memory.
	// Must be in (0, 1].
	MemFraction float64
	// BaseCPI is the cycles consumed by a non-memory instruction (pipeline
	// ILP folded in). Must be positive.
	BaseCPI float64
	// Instructions is the total instruction count of one run to completion;
	// 0 means the process never completes on its own (pure batch service).
	Instructions uint64
}

func (p ExecProfile) validate() error {
	if !(p.MemFraction > 0 && p.MemFraction <= 1) {
		return fmt.Errorf("machine: MemFraction %v out of (0,1]", p.MemFraction)
	}
	if p.BaseCPI <= 0 {
		return fmt.Errorf("machine: BaseCPI %v must be positive", p.BaseCPI)
	}
	return nil
}

// Process is one application: an execution profile plus a reference
// generator, bound to a core.
type Process struct {
	name    string
	prof    ExecProfile
	gen     workload.Generator
	rng     *rand.Rand
	seed    int64
	retired uint64
	memAcc  float64 // fractional accumulator deciding which instrs are refs
	cpiAcc  float64 // fractional accumulator of compute cycles
	done    bool
	runs    int // completed runs (for relaunch accounting)
}

// NewProcess constructs a process. seed fixes all stochastic choices.
func NewProcess(name string, prof ExecProfile, gen workload.Generator, seed int64) *Process {
	if err := prof.validate(); err != nil {
		panic(err.Error())
	}
	if gen == nil {
		panic("machine: process needs a generator")
	}
	return &Process{name: name, prof: prof, gen: gen, rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Done reports whether the process has retired all its instructions.
func (p *Process) Done() bool { return p.done }

// Retired returns instructions retired in the current run.
func (p *Process) Retired() uint64 { return p.retired }

// Runs returns how many times the process ran to completion (relaunches).
func (p *Process) Runs() int { return p.runs }

// Profile returns the execution profile.
func (p *Process) Profile() ExecProfile { return p.prof }

// Relaunch restarts a completed process from scratch: generator rewound,
// RNG reseeded, retirement reset. The paper relaunches lbm when it finishes
// before the latency-sensitive application.
func (p *Process) Relaunch() {
	workload.Reset(p.gen)
	p.rng = rand.New(rand.NewSource(p.seed))
	p.retired = 0
	p.memAcc = 0
	p.cpiAcc = 0
	p.done = false
}

// Core is one processor core: it executes at most one process and carries
// the running/idle cycle accounting of the paper's Equation 1.
type Core struct {
	id       int
	hier     *mem.Hierarchy // the owning domain's memory system
	local    int            // index within hier (id % perDomain), cached off the access path
	proc     *Process
	paused   bool
	freqDiv  int // DVFS extension: 1 = full speed, k = 1/k effective cycles
	busy     uint64
	idle     uint64
	instrRet uint64 // cumulative, survives relaunches (PMU counter)
	debt     uint64 // stall cycles carried over from an instruction that overran its slice
}

// ID returns the core number.
func (c *Core) ID() int { return c.id }

// Process returns the bound process, or nil.
func (c *Core) Process() *Process { return c.proc }

// SetPaused throttles (true) or releases (false) the core for subsequent
// periods. This is the mechanism behind the red-light/green-light and
// soft-locking responses.
func (c *Core) SetPaused(p bool) { c.paused = p }

// Paused reports the current throttle state.
func (c *Core) Paused() bool { return c.paused }

// SetFreqDivisor sets the DVFS-style frequency divisor (>=1). A divisor of
// k gives the core 1/k of the period's cycles, modelling per-core dynamic
// frequency scaling as an alternative response (paper §7, Herdrich et al.).
func (c *Core) SetFreqDivisor(k int) {
	if k < 1 {
		panic(fmt.Sprintf("machine: frequency divisor %d must be >= 1", k))
	}
	c.freqDiv = k
}

// FreqDivisor returns the current divisor.
func (c *Core) FreqDivisor() int { return c.freqDiv }

// BusyCycles returns cycles spent executing (R_i in Equation 1).
func (c *Core) BusyCycles() uint64 { return c.busy }

// IdleCycles returns cycles spent idle or throttled (I_i in Equation 1).
func (c *Core) IdleCycles() uint64 { return c.idle }

// Utilization returns R/(R+I) for this core, or 0 before any period.
func (c *Core) Utilization() float64 {
	t := c.busy + c.idle
	if t == 0 {
		return 0
	}
	return float64(c.busy) / float64(t)
}

// Config describes a machine.
type Config struct {
	// Hierarchy configures the memory system; zero value uses
	// mem.DefaultHierarchyConfig for the per-domain core count. With
	// Domains > 1 it acts as the per-domain template and its Cores field,
	// if set, must equal Cores/Domains.
	Hierarchy mem.HierarchyConfig
	// Cores is the total core count when Hierarchy is zero.
	Cores int
	// Domains splits the cores into this many LLC domains (sockets /
	// L3 slices). Each domain owns a contiguous block of Cores/Domains
	// cores and its own mem.Hierarchy — private caches, shared L3, and
	// memory channel — so cross-domain processes never contend. Default 1,
	// the paper's single-socket testbed.
	Domains int
	// PeriodCycles is the scaled "1 ms" sampling period. Default 60000.
	PeriodCycles uint64
	// SlicesPerPeriod controls intra-period interleaving granularity.
	// Default 600 (100-cycle slices): fine enough that concurrent cores'
	// memory-channel reservations interleave realistically, since within a
	// slice cores are simulated sequentially over the same wall-clock
	// window.
	SlicesPerPeriod int
	// Workers sets the domain-stepper worker pool size (see SetWorkers).
	// Default (0 or 1) steps domains serially — exactly today's order.
	Workers int
}

// Machine is the simulated multicore CPU.
type Machine struct {
	hiers     []*mem.Hierarchy // one per LLC domain
	perDomain int              // cores per domain
	cores     []*Core
	period    uint64
	slices    int
	sliceLen  uint64 // period / slices, precomputed
	sliceRem  uint64 // period - sliceLen*slices, paid in the last slice
	now       uint64 // absolute cycle clock
	periods   uint64 // completed periods

	// Domain-stepper worker pool (SetWorkers). LLC domains share no memory-
	// system state, so they may step concurrently; nil tasks = serial path.
	workers int
	tasks   chan domainTask
	poolWG  sync.WaitGroup
}

// domainTask asks a pool worker to step one domain through a batch of
// periods.
type domainTask struct {
	domain  int
	periods int
}

// New constructs a machine. It panics on invalid configuration.
func New(cfg Config) *Machine {
	if cfg.Domains == 0 {
		cfg.Domains = 1
	}
	if cfg.Domains < 1 {
		panic(fmt.Sprintf("machine: domain count %d must be positive", cfg.Domains))
	}
	total := cfg.Cores
	if total == 0 && cfg.Hierarchy.Cores != 0 {
		total = cfg.Hierarchy.Cores * cfg.Domains
	}
	if total <= 0 {
		panic("machine: config needs Cores or a Hierarchy")
	}
	if total%cfg.Domains != 0 {
		panic(fmt.Sprintf("machine: %d cores not divisible into %d domains", total, cfg.Domains))
	}
	perDomain := total / cfg.Domains
	h := cfg.Hierarchy
	if h.Cores == 0 {
		h = mem.DefaultHierarchyConfig(perDomain)
	} else if h.Cores != perDomain {
		panic(fmt.Sprintf("machine: hierarchy spans %d cores but each of %d domains owns %d", h.Cores, cfg.Domains, perDomain))
	}
	if cfg.PeriodCycles == 0 {
		cfg.PeriodCycles = 60000
	}
	if cfg.SlicesPerPeriod == 0 {
		cfg.SlicesPerPeriod = 600
	}
	if cfg.SlicesPerPeriod < 1 || cfg.PeriodCycles < uint64(cfg.SlicesPerPeriod) {
		panic(fmt.Sprintf("machine: invalid period %d / slices %d", cfg.PeriodCycles, cfg.SlicesPerPeriod))
	}
	sliceLen := cfg.PeriodCycles / uint64(cfg.SlicesPerPeriod)
	m := &Machine{
		hiers:     make([]*mem.Hierarchy, cfg.Domains),
		perDomain: perDomain,
		cores:     make([]*Core, total),
		period:    cfg.PeriodCycles,
		slices:    cfg.SlicesPerPeriod,
		sliceLen:  sliceLen,
		sliceRem:  cfg.PeriodCycles - sliceLen*uint64(cfg.SlicesPerPeriod),
	}
	for d := range m.hiers {
		m.hiers[d] = mem.NewHierarchy(h)
	}
	for i := range m.cores {
		m.cores[i] = &Core{id: i, freqDiv: 1, hier: m.hiers[i/perDomain], local: i % perDomain}
	}
	m.SetWorkers(cfg.Workers)
	return m
}

// Hierarchy exposes the memory system of domain 0 — the whole machine on
// the default single-domain configuration. Multi-domain callers should use
// DomainHierarchy and route cores with DomainOf/LocalCore.
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hiers[0] }

// Domains returns the LLC domain count.
func (m *Machine) Domains() int { return len(m.hiers) }

// DomainHierarchy exposes domain d's memory system.
func (m *Machine) DomainHierarchy(d int) *mem.Hierarchy { return m.hiers[d] }

// DomainOf returns the LLC domain owning the core.
func (m *Machine) DomainOf(core int) int { return core / m.perDomain }

// LocalCore translates a global core id into its index within its domain's
// hierarchy (which is sized for the domain's cores only).
func (m *Machine) LocalCore(core int) int { return core % m.perDomain }

// DomainCores returns the half-open global core range [lo, hi) of domain d.
func (m *Machine) DomainCores(d int) (lo, hi int) {
	return d * m.perDomain, (d + 1) * m.perDomain
}

// FlushCore empties the core's private caches and its lines in its domain's
// shared L3 (process teardown / migration off the core).
func (m *Machine) FlushCore(core int) {
	m.hiers[core/m.perDomain].FlushCore(core % m.perDomain)
}

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Cores returns the core count.
func (m *Machine) Cores() int { return len(m.cores) }

// PeriodCycles returns the configured sampling period length.
func (m *Machine) PeriodCycles() uint64 { return m.period }

// Periods returns the number of completed periods.
func (m *Machine) Periods() uint64 { return m.periods }

// Now returns the absolute cycle clock.
func (m *Machine) Now() uint64 { return m.now }

// Bind assigns proc to core i, replacing any previous process.
func (m *Machine) Bind(i int, proc *Process) {
	m.cores[i].proc = proc
}

// Unbind removes the process from core i.
func (m *Machine) Unbind(i int) { m.cores[i].proc = nil }

// SetWorkers resizes the domain-stepper worker pool. With workers > 1 and
// more than one LLC domain, RunPeriod/RunPeriods fan the domains out over
// min(workers, domains) persistent goroutines; since domains share no
// memory-system state and stepDomain reproduces the serial core rotation
// within each domain (see stepDomain), the machine state after every period
// is bit-identical to the serial order. workers <= 1 (the default) stops
// the pool and restores today's exact serial stepping. Not safe to call
// concurrently with RunPeriods.
func (m *Machine) SetWorkers(workers int) {
	if workers < 1 {
		workers = 1
	}
	if workers == m.workers && (workers <= 1 || m.tasks != nil) {
		return
	}
	m.StopWorkers()
	m.workers = workers
	if workers <= 1 || len(m.hiers) < 2 {
		return
	}
	n := workers
	if n > len(m.hiers) {
		n = len(m.hiers)
	}
	m.tasks = make(chan domainTask)
	for i := 0; i < n; i++ {
		go m.domainWorker(m.tasks)
	}
}

// Workers returns the configured worker count (1 = serial).
func (m *Machine) Workers() int {
	if m.workers < 1 {
		return 1
	}
	return m.workers
}

// StopWorkers shuts the worker pool down (idempotent). Callers that enable
// Workers > 1 must stop the pool when done with the machine, or its
// goroutines stay parked for the life of the process.
func (m *Machine) StopWorkers() {
	if m.tasks != nil {
		close(m.tasks)
		m.tasks = nil
	}
	m.workers = 1
}

func (m *Machine) domainWorker(tasks <-chan domainTask) {
	for t := range tasks {
		m.stepDomain(t.domain, t.periods)
		m.poolWG.Done()
	}
}

// dispatch fans one batch of periods out to the pool, one task per domain,
// and waits for the barrier. Kept out of the hot-path inventory: the
// channel handoff is the price of parallelism and is paid once per batch,
// not per access.
func (m *Machine) dispatch(n int) {
	m.poolWG.Add(len(m.hiers))
	for d := range m.hiers {
		m.tasks <- domainTask{domain: d, periods: n}
	}
	m.poolWG.Wait()
}

// RunPeriod advances every core by one sampling period, interleaving active
// cores in SlicesPerPeriod time slices. Paused cores and cores whose
// process has completed accumulate idle cycles.
func (m *Machine) RunPeriod() { m.RunPeriods(1) }

// RunPeriods advances the machine n periods in one dispatch. Callers with
// no per-period logic (baseline drains, microbenchmarks) batch here so the
// pool pays one goroutine handoff per domain per batch instead of per
// period; per-period callers (the CAER runtime, the scheduler) use
// RunPeriod and still get the domain fan-out. The resulting machine state
// is identical to calling RunPeriod n times.
func (m *Machine) RunPeriods(n int) {
	if n <= 0 {
		return
	}
	if m.tasks != nil {
		m.dispatch(n)
	} else {
		for d := range m.hiers {
			m.stepDomain(d, n)
		}
	}
	m.now += uint64(n) * m.period
	m.periods += uint64(n)
}

// stepDomain advances domain d through n periods. Only state owned by the
// domain — its hierarchy and its cores — is touched, so distinct domains
// may run concurrently.
//
// Core order: the serial machine rotates the global core order every slice
// (offset below) so that cores earlier in the order, which see the memory
// channel first within a slice, don't systematically starve later ones.
// A global rotation restricted to a contiguous domain block [lo, hi) is
// itself a rotation of that block — the block's cores appear in the order
// offset..hi-1, lo..offset-1 when offset lands inside the block and
// lo..hi-1 otherwise — so stepping per-domain preserves each domain's
// serial intra-slice order exactly, and with it every per-seed result.
func (m *Machine) stepDomain(d, n int) {
	lo := d * m.perDomain
	hi := lo + m.perDomain
	span := m.perDomain
	total := len(m.cores)
	for k := 0; k < n; k++ {
		rotBase := int(m.periods+uint64(k)) * m.slices
		start := m.now + uint64(k)*m.period
		for s := 0; s < m.slices; s++ {
			budget := m.sliceLen
			if s == m.slices-1 {
				budget += m.sliceRem
			}
			sliceStart := start + uint64(s)*m.sliceLen
			offset := (rotBase + s) % total
			first := lo
			if offset > lo && offset < hi {
				first = offset
			}
			for i := 0; i < span; i++ {
				c := first + i
				if c >= hi {
					c -= span
				}
				m.runSlice(m.cores[c], sliceStart, budget)
			}
		}
	}
}

// runSlice executes core c for budget cycles starting at absolute cycle
// `at`, charging busy/idle accounting. An instruction whose latency
// overruns the slice leaves the overflow as debt that subsequent slices pay
// off before issuing new instructions, so per-instruction costs are exact
// regardless of slice granularity.
func (m *Machine) runSlice(c *Core, at, budget uint64) {
	p := c.proc
	if p == nil || p.done || c.paused {
		c.idle += budget
		return
	}
	effective := budget / uint64(c.freqDiv)
	if effective == 0 {
		c.idle += budget
		return
	}
	if c.debt >= effective {
		// The whole slice stalls on the in-flight instruction.
		c.debt -= effective
		c.busy += budget
		return
	}
	used := c.debt
	c.debt = 0
	for used < effective && !p.done {
		// Decide whether the next instruction is a memory reference using a
		// deterministic fractional accumulator (keeps the mix exact).
		p.memAcc += p.prof.MemFraction
		var cost uint64
		if p.memAcc >= 1 {
			p.memAcc -= 1
			a := p.gen.Next(p.rng)
			res := c.hier.Access(c.local, a.Addr, a.Write, at+used)
			cost = res.Latency
		} else {
			p.cpiAcc += p.prof.BaseCPI
			cost = uint64(p.cpiAcc)
			p.cpiAcc -= float64(cost) // sub-cycle instructions fold into the next
		}
		used += cost
		p.retired++
		c.instrRet++
		if p.prof.Instructions > 0 && p.retired >= p.prof.Instructions {
			p.done = true
			p.runs++
		}
	}
	if used > effective {
		c.debt = used - effective
		used = effective
	}
	c.busy += used * uint64(c.freqDiv)
	if slack := budget - used*uint64(c.freqDiv); slack > 0 {
		c.idle += slack
	}
}

// ReadCounter implements pmu.Source over the simulated hardware.
func (m *Machine) ReadCounter(core int, ev pmu.Event) uint64 {
	h := m.hiers[core/m.perDomain]
	local := core % m.perDomain
	switch ev {
	case pmu.EventLLCMisses:
		return h.LLCMisses(local)
	case pmu.EventLLCAccesses:
		return h.LLCAccesses(local)
	case pmu.EventInstrRetired:
		return m.cores[core].instrRet
	case pmu.EventCycles:
		return m.cores[core].busy
	case pmu.EventL2Misses:
		return h.L2Misses(local)
	default:
		panic(fmt.Sprintf("machine: unknown PMU event %v", ev))
	}
}

// Utilization computes the paper's Equation 1 over the first n cores:
// U = (1/n) Σ R_i/(R_i+I_i). Passing n = Cores() covers the whole chip.
func (m *Machine) Utilization(n int) float64 {
	if n <= 0 || n > len(m.cores) {
		panic(fmt.Sprintf("machine: Utilization over %d cores (machine has %d)", n, len(m.cores)))
	}
	var u float64
	for i := 0; i < n; i++ {
		u += m.cores[i].Utilization()
	}
	return u / float64(n)
}
