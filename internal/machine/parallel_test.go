package machine

import (
	"testing"

	"caer/internal/pmu"
	"caer/internal/workload"
)

// buildDomains constructs a multi-domain machine with a deterministic mix of
// cache-hungry and compute-bound processes on every core.
func buildDomains(t *testing.T, domains, perDomain, workers int) *Machine {
	t.Helper()
	m := New(Config{
		Cores:   domains * perDomain,
		Domains: domains,
		Workers: workers,
	})
	t.Cleanup(m.StopWorkers)
	for i := 0; i < m.Cores(); i++ {
		var gen workload.Generator
		var prof ExecProfile
		if i%2 == 0 {
			gen = workload.NewStream(uint64(i)<<20, 1<<15, 1, 0.3)
			prof = ExecProfile{MemFraction: 0.45, BaseCPI: 1.0}
		} else {
			gen = workload.NewUniform(uint64(i)<<20, 1<<12, 0.1)
			prof = ExecProfile{MemFraction: 0.15, BaseCPI: 0.8}
		}
		m.Bind(i, NewProcess("p", prof, gen, int64(1000+i)))
	}
	return m
}

// snapshot captures every externally observable piece of machine state.
type machineSnap struct {
	busy, idle, instr, cycles []uint64
	retired                   []uint64
	llcMiss, llcAcc, l2Miss   []uint64
	now, periods              uint64
}

func snap(m *Machine) machineSnap {
	s := machineSnap{now: m.Now(), periods: m.Periods()}
	for i := 0; i < m.Cores(); i++ {
		c := m.Core(i)
		s.busy = append(s.busy, c.BusyCycles())
		s.idle = append(s.idle, c.IdleCycles())
		s.instr = append(s.instr, m.ReadCounter(i, pmu.EventInstrRetired))
		s.cycles = append(s.cycles, m.ReadCounter(i, pmu.EventCycles))
		s.retired = append(s.retired, c.Process().Retired())
		s.llcMiss = append(s.llcMiss, m.ReadCounter(i, pmu.EventLLCMisses))
		s.llcAcc = append(s.llcAcc, m.ReadCounter(i, pmu.EventLLCAccesses))
		s.l2Miss = append(s.l2Miss, m.ReadCounter(i, pmu.EventL2Misses))
	}
	return s
}

func diffSnap(t *testing.T, want, got machineSnap, label string) {
	t.Helper()
	if want.now != got.now || want.periods != got.periods {
		t.Fatalf("%s: clock diverged: now %d vs %d, periods %d vs %d",
			label, want.now, got.now, want.periods, got.periods)
	}
	for i := range want.busy {
		if want.busy[i] != got.busy[i] || want.idle[i] != got.idle[i] ||
			want.instr[i] != got.instr[i] || want.cycles[i] != got.cycles[i] ||
			want.retired[i] != got.retired[i] || want.llcMiss[i] != got.llcMiss[i] ||
			want.llcAcc[i] != got.llcAcc[i] || want.l2Miss[i] != got.l2Miss[i] {
			t.Fatalf("%s: core %d state diverged:\n serial  %+v\n variant %+v", label, i,
				[8]uint64{want.busy[i], want.idle[i], want.instr[i], want.cycles[i], want.retired[i], want.llcMiss[i], want.llcAcc[i], want.l2Miss[i]},
				[8]uint64{got.busy[i], got.idle[i], got.instr[i], got.cycles[i], got.retired[i], got.llcMiss[i], got.llcAcc[i], got.l2Miss[i]})
		}
	}
}

// TestParallelDomainsMatchSerial pins the tentpole determinism contract:
// stepping independent LLC domains on a worker pool yields bit-identical
// machine state to the serial order, period by period.
func TestParallelDomainsMatchSerial(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		serial := buildDomains(t, 4, 2, 1)
		par := buildDomains(t, 4, 2, workers)
		if par.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", par.Workers(), workers)
		}
		for p := 0; p < 40; p++ {
			serial.RunPeriod()
			par.RunPeriod()
			diffSnap(t, snap(serial), snap(par), "workers="+string(rune('0'+workers)))
		}
	}
}

// TestBatchedPeriodsMatchSingle pins that one RunPeriods(n) dispatch equals
// n RunPeriod calls, serially and on the pool.
func TestBatchedPeriodsMatchSingle(t *testing.T) {
	for _, workers := range []int{1, 4} {
		single := buildDomains(t, 2, 2, workers)
		batched := buildDomains(t, 2, 2, workers)
		for p := 0; p < 30; p++ {
			single.RunPeriod()
		}
		batched.RunPeriods(30)
		diffSnap(t, snap(single), snap(batched), "batched")
	}
}

// TestSingleDomainRotation pins the serial single-domain stepping against a
// hand-rolled reference of the historical RunPeriod loop (global core order
// rotated every slice), so refactors of stepDomain can't silently change
// the contention interleaving.
func TestSingleDomainRotation(t *testing.T) {
	m := buildDomains(t, 1, 4, 1)
	ref := buildDomains(t, 1, 4, 1)
	for p := 0; p < 10; p++ {
		m.RunPeriod()
		refRunPeriod(ref)
		diffSnap(t, snap(ref), snap(m), "rotation")
	}
}

// refRunPeriod is the pre-refactor period loop, kept as executable
// documentation of the stepping order stepDomain must reproduce.
func refRunPeriod(m *Machine) {
	sliceLen := m.period / uint64(m.slices)
	rem := m.period - sliceLen*uint64(m.slices)
	start := m.now
	for s := 0; s < m.slices; s++ {
		budget := sliceLen
		if s == m.slices-1 {
			budget += rem
		}
		sliceStart := start + uint64(s)*sliceLen
		offset := (int(m.periods)*m.slices + s) % len(m.cores)
		for i := range m.cores {
			m.runSlice(m.cores[(i+offset)%len(m.cores)], sliceStart, budget)
		}
	}
	m.now = start + m.period
	m.periods++
}

// TestStopWorkersIdempotent exercises pool lifecycle edges.
func TestStopWorkersIdempotent(t *testing.T) {
	m := buildDomains(t, 2, 2, 4)
	m.RunPeriod()
	m.StopWorkers()
	m.StopWorkers()
	m.RunPeriod() // serial path after stop
	m.SetWorkers(2)
	m.SetWorkers(2) // no-op resize
	m.RunPeriod()
	m.StopWorkers()
	if m.Workers() != 1 {
		t.Fatalf("Workers() after stop = %d, want 1", m.Workers())
	}
}

// TestRunPeriodAllocFree pins the hot loop's zero-allocation contract for
// both the serial and the pooled stepper (caer-vet guards the source; this
// guards the runtime behavior).
func TestRunPeriodAllocFree(t *testing.T) {
	serial := buildDomains(t, 2, 2, 1)
	par := buildDomains(t, 2, 2, 2)
	serial.RunPeriods(3)
	par.RunPeriods(3)
	if n := testing.AllocsPerRun(5, serial.RunPeriod); n != 0 {
		t.Fatalf("serial RunPeriod allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(5, par.RunPeriod); n != 0 {
		t.Fatalf("pooled RunPeriod allocates %v/op, want 0", n)
	}
}
