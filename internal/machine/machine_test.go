package machine

import (
	"testing"

	"caer/internal/mem"
	"caer/internal/pmu"
	"caer/internal/workload"
)

func smallConfig(cores int) Config {
	return Config{
		Hierarchy: mem.HierarchyConfig{
			Cores:  cores,
			L1Sets: 4, L1Ways: 2,
			L2Sets: 8, L2Ways: 2,
			L3Sets: 16, L3Ways: 4,
			L1Latency: 1, L2Latency: 10, L3Latency: 30,
			Memory: mem.MemoryConfig{LatencyCycles: 100},
		},
		PeriodCycles:    2000,
		SlicesPerPeriod: 4,
	}
}

func streamProc(name string, instrs uint64, ws uint64) *Process {
	return NewProcess(name,
		ExecProfile{MemFraction: 0.3, BaseCPI: 1, Instructions: instrs},
		workload.NewStream(0, ws, 1, 0), 1)
}

func TestNewValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("no cores", func() { New(Config{}) })
	mustPanic("bad slices", func() { New(Config{Cores: 1, PeriodCycles: 2, SlicesPerPeriod: 4}) })
	mustPanic("bad profile memfrac", func() {
		NewProcess("x", ExecProfile{MemFraction: 0, BaseCPI: 1}, workload.NewStream(0, 1, 1, 0), 0)
	})
	mustPanic("bad profile cpi", func() {
		NewProcess("x", ExecProfile{MemFraction: 0.5, BaseCPI: 0}, workload.NewStream(0, 1, 1, 0), 0)
	})
	mustPanic("nil generator", func() {
		NewProcess("x", ExecProfile{MemFraction: 0.5, BaseCPI: 1}, nil, 0)
	})
	mustPanic("bad freq divisor", func() { New(Config{Cores: 1}).Core(0).SetFreqDivisor(0) })
	mustPanic("bad utilization arg", func() { New(Config{Cores: 1}).Utilization(2) })
}

func TestDefaultsApplied(t *testing.T) {
	m := New(Config{Cores: 2})
	if m.PeriodCycles() != 60000 {
		t.Errorf("default period = %d, want 60000", m.PeriodCycles())
	}
	if m.Cores() != 2 {
		t.Errorf("cores = %d, want 2", m.Cores())
	}
	if m.Hierarchy().Config().L3Sets != 512 {
		t.Error("default hierarchy not applied")
	}
}

func TestRunPeriodAdvancesClock(t *testing.T) {
	m := New(smallConfig(1))
	m.RunPeriod()
	m.RunPeriod()
	if m.Now() != 4000 || m.Periods() != 2 {
		t.Errorf("now=%d periods=%d, want 4000,2", m.Now(), m.Periods())
	}
}

func TestIdleCoreAccumulatesIdle(t *testing.T) {
	m := New(smallConfig(2))
	m.Bind(0, streamProc("a", 0, 8))
	m.RunPeriod()
	c1 := m.Core(1)
	if c1.BusyCycles() != 0 || c1.IdleCycles() != 2000 {
		t.Errorf("unbound core busy=%d idle=%d, want 0,2000", c1.BusyCycles(), c1.IdleCycles())
	}
	c0 := m.Core(0)
	if c0.BusyCycles() == 0 {
		t.Error("bound core never ran")
	}
	if c0.BusyCycles()+c0.IdleCycles() != 2000 {
		t.Errorf("core 0 busy+idle = %d, want 2000", c0.BusyCycles()+c0.IdleCycles())
	}
}

func TestPausedCoreDoesNotExecute(t *testing.T) {
	m := New(smallConfig(1))
	p := streamProc("a", 0, 8)
	m.Bind(0, p)
	m.Core(0).SetPaused(true)
	if !m.Core(0).Paused() {
		t.Fatal("SetPaused did not stick")
	}
	m.RunPeriod()
	if p.Retired() != 0 {
		t.Errorf("paused process retired %d instructions", p.Retired())
	}
	if m.Core(0).IdleCycles() != 2000 {
		t.Errorf("paused core idle = %d, want 2000", m.Core(0).IdleCycles())
	}
	m.Core(0).SetPaused(false)
	m.RunPeriod()
	if p.Retired() == 0 {
		t.Error("unpaused process still not running")
	}
}

func TestProcessCompletion(t *testing.T) {
	m := New(smallConfig(1))
	p := streamProc("a", 100, 8)
	m.Bind(0, p)
	for i := 0; i < 50 && !p.Done(); i++ {
		m.RunPeriod()
	}
	if !p.Done() {
		t.Fatal("process never completed")
	}
	if p.Retired() != 100 {
		t.Errorf("retired = %d, want exactly 100", p.Retired())
	}
	if p.Runs() != 1 {
		t.Errorf("runs = %d, want 1", p.Runs())
	}
	// After completion the core idles.
	busyBefore := m.Core(0).BusyCycles()
	m.RunPeriod()
	if m.Core(0).BusyCycles() != busyBefore {
		t.Error("core kept executing after process completion")
	}
}

func TestProcessRelaunch(t *testing.T) {
	m := New(smallConfig(1))
	p := streamProc("a", 50, 8)
	m.Bind(0, p)
	for !p.Done() {
		m.RunPeriod()
	}
	retiredCum := m.ReadCounter(0, pmu.EventInstrRetired)
	p.Relaunch()
	if p.Done() || p.Retired() != 0 {
		t.Error("Relaunch did not reset the process")
	}
	for !p.Done() {
		m.RunPeriod()
	}
	if p.Runs() != 2 {
		t.Errorf("runs = %d, want 2", p.Runs())
	}
	// The PMU instruction counter is cumulative across relaunches.
	if got := m.ReadCounter(0, pmu.EventInstrRetired); got != retiredCum*2 {
		t.Errorf("cumulative retired = %d, want %d", got, retiredCum*2)
	}
}

func TestPMUSourceCounters(t *testing.T) {
	m := New(smallConfig(1))
	p := streamProc("a", 0, 200) // WS larger than L1+L2: LLC traffic guaranteed
	m.Bind(0, p)
	m.RunPeriod()
	if got := m.ReadCounter(0, pmu.EventInstrRetired); got != p.Retired() {
		t.Errorf("instr counter = %d, want %d", got, p.Retired())
	}
	if m.ReadCounter(0, pmu.EventLLCMisses) == 0 {
		t.Error("no LLC misses counted for a large-WS stream")
	}
	if m.ReadCounter(0, pmu.EventCycles) == 0 {
		t.Error("no busy cycles counted")
	}
	if m.ReadCounter(0, pmu.EventL2Misses) < m.ReadCounter(0, pmu.EventLLCMisses) {
		t.Error("L2 misses < LLC misses (impossible)")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown event did not panic")
			}
		}()
		m.ReadCounter(0, pmu.Event(99))
	}()
}

func TestUtilizationEquation(t *testing.T) {
	m := New(smallConfig(2))
	m.Bind(0, streamProc("a", 0, 8))
	// Core 1 idle: U over 2 cores ~ 0.5 * core0 utilization.
	for i := 0; i < 5; i++ {
		m.RunPeriod()
	}
	u0 := m.Core(0).Utilization()
	if u0 <= 0.5 {
		t.Errorf("active core utilization = %v, want high", u0)
	}
	u := m.Utilization(2)
	want := u0 / 2
	if diff := u - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Utilization(2) = %v, want %v", u, want)
	}
	if got := m.Core(1).Utilization(); got != 0 {
		t.Errorf("idle core utilization = %v, want 0", got)
	}
}

func TestFreqDivisorHalvesThroughput(t *testing.T) {
	run := func(div int) uint64 {
		m := New(smallConfig(1))
		p := streamProc("a", 0, 8)
		m.Bind(0, p)
		m.Core(0).SetFreqDivisor(div)
		for i := 0; i < 10; i++ {
			m.RunPeriod()
		}
		return p.Retired()
	}
	full := run(1)
	half := run(2)
	ratio := float64(half) / float64(full)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("divisor-2 throughput ratio = %v, want ~0.5 (full=%d half=%d)", ratio, full, half)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		m := New(smallConfig(2))
		m.Bind(0, NewProcess("a", ExecProfile{MemFraction: 0.4, BaseCPI: 1}, workload.NewUniform(0, 300, 0.1), 7))
		m.Bind(1, NewProcess("b", ExecProfile{MemFraction: 0.4, BaseCPI: 1}, workload.NewUniform(5000, 300, 0.1), 8))
		for i := 0; i < 20; i++ {
			m.RunPeriod()
		}
		return m.ReadCounter(0, pmu.EventLLCMisses), m.ReadCounter(0, pmu.EventInstrRetired)
	}
	m1, i1 := run()
	m2, i2 := run()
	if m1 != m2 || i1 != i2 {
		t.Errorf("simulation not deterministic: (%d,%d) vs (%d,%d)", m1, i1, m2, i2)
	}
}

func TestColocationSlowsRetirement(t *testing.T) {
	// The core contention result: a large-WS app retires fewer instructions
	// per period when a streaming adversary shares the L3.
	run := func(withAdversary bool) uint64 {
		m := New(smallConfig(2))
		l3 := uint64(m.Hierarchy().L3().LineCount())
		p := NewProcess("victim", ExecProfile{MemFraction: 0.4, BaseCPI: 1},
			workload.NewUniform(0, l3*3/4, 0), 3)
		m.Bind(0, p)
		if withAdversary {
			m.Bind(1, NewProcess("lbm", ExecProfile{MemFraction: 0.5, BaseCPI: 1},
				workload.NewStream(1<<20, l3*2, 1, 0.3), 4))
		}
		for i := 0; i < 30; i++ {
			m.RunPeriod()
		}
		return p.Retired()
	}
	alone := run(false)
	contended := run(true)
	if contended >= alone {
		t.Errorf("co-location did not slow the victim: alone=%d contended=%d", alone, contended)
	}
	slowdown := float64(alone) / float64(contended)
	if slowdown < 1.05 {
		t.Errorf("slowdown = %v, want measurable contention (>1.05)", slowdown)
	}
}

func TestCycleAccountingInvariant(t *testing.T) {
	// Every core's busy + idle cycles must equal periods x period length,
	// whatever mix of running, paused, DVFS-throttled and completed
	// processes it hosts.
	m := New(smallConfig(3))
	m.Bind(0, streamProc("a", 300, 8))  // completes mid-run
	m.Bind(1, streamProc("b", 0, 2048)) // heavy misser
	m.Core(1).SetFreqDivisor(3)         // throttled
	// Core 2 unbound: pure idle.
	for i := 0; i < 25; i++ {
		if i == 10 {
			m.Core(1).SetPaused(true)
		}
		if i == 15 {
			m.Core(1).SetPaused(false)
		}
		m.RunPeriod()
	}
	want := m.Periods() * m.PeriodCycles()
	for c := 0; c < m.Cores(); c++ {
		got := m.Core(c).BusyCycles() + m.Core(c).IdleCycles()
		if got != want {
			t.Errorf("core %d: busy+idle = %d, want %d", c, got, want)
		}
	}
}

func TestSliceGranularityDoesNotChangeCosts(t *testing.T) {
	// Instruction costs must be exact regardless of slice size: an
	// instruction whose memory latency overruns its slice carries the
	// remainder as debt into the next slice. Without that, fine slicing
	// silently truncates miss penalties.
	run := func(slices int) uint64 {
		cfg := smallConfig(1)
		cfg.SlicesPerPeriod = slices
		m := New(cfg)
		// Large-WS stream: every access misses to memory (141-cycle total),
		// far above a fine slice's budget.
		p := NewProcess("a", ExecProfile{MemFraction: 0.5, BaseCPI: 1},
			workload.NewStream(0, 4096, 1, 0), 1)
		m.Bind(0, p)
		for i := 0; i < 50; i++ {
			m.RunPeriod()
		}
		return p.Retired()
	}
	coarse := run(2) // 1000-cycle slices
	fine := run(100) // 20-cycle slices << miss latency
	ratio := float64(fine) / float64(coarse)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("throughput varies with slice size: coarse=%d fine=%d (ratio %.3f)", coarse, fine, ratio)
	}
}

func TestExpectedCyclesPerMissChargedExactly(t *testing.T) {
	// One core, all-miss stream, no bandwidth model: cycles per instruction
	// must equal memFrac*fullMiss + (1-memFrac)*baseCPI.
	cfg := smallConfig(1)
	cfg.SlicesPerPeriod = 40 // 50-cycle slices, below the 141-cycle miss
	m := New(cfg)
	p := NewProcess("a", ExecProfile{MemFraction: 0.5, BaseCPI: 1},
		workload.NewStream(0, 1<<20, 1, 0), 1) // never re-touches a line
	m.Bind(0, p)
	for i := 0; i < 100; i++ {
		m.RunPeriod()
	}
	// Full miss: 1 (L1) + 10 (L2) + 30 (L3) + 100 (mem) = 141 cycles.
	wantCPI := 0.5*141 + 0.5*1
	gotCPI := float64(m.Core(0).BusyCycles()) / float64(p.Retired())
	if gotCPI < wantCPI*0.98 || gotCPI > wantCPI*1.02 {
		t.Errorf("CPI = %.2f, want ~%.2f", gotCPI, wantCPI)
	}
}

func TestBindUnbind(t *testing.T) {
	m := New(smallConfig(1))
	p := streamProc("a", 0, 8)
	m.Bind(0, p)
	if m.Core(0).Process() != p {
		t.Error("Bind did not attach process")
	}
	m.Unbind(0)
	if m.Core(0).Process() != nil {
		t.Error("Unbind did not detach process")
	}
	m.RunPeriod()
	if p.Retired() != 0 {
		t.Error("unbound process executed")
	}
}

func TestCoreIDAndProfileAccessors(t *testing.T) {
	m := New(smallConfig(2))
	if m.Core(1).ID() != 1 {
		t.Errorf("core ID = %d, want 1", m.Core(1).ID())
	}
	p := streamProc("a", 42, 8)
	if p.Profile().Instructions != 42 || p.Name() != "a" {
		t.Error("process accessors wrong")
	}
	if m.Core(0).FreqDivisor() != 1 {
		t.Error("default freq divisor != 1")
	}
}

// basedStreamProc is streamProc with a footprint base, so co-located test
// processes never share data (the paper's multiprogrammed workloads).
func basedStreamProc(name string, base, instrs, ws uint64) *Process {
	return NewProcess(name,
		ExecProfile{MemFraction: 0.3, BaseCPI: 1, Instructions: instrs},
		workload.NewStream(base, ws, 1, 0), 1)
}

func TestDomainTopology(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Domains = 2 // 2 cores per domain, 4 total
	m := New(cfg)
	if m.Cores() != 4 || m.Domains() != 2 {
		t.Fatalf("topology = %d cores / %d domains, want 4/2", m.Cores(), m.Domains())
	}
	for core, want := range []int{0, 0, 1, 1} {
		if got := m.DomainOf(core); got != want {
			t.Errorf("DomainOf(%d) = %d, want %d", core, got, want)
		}
	}
	for core, want := range []int{0, 1, 0, 1} {
		if got := m.LocalCore(core); got != want {
			t.Errorf("LocalCore(%d) = %d, want %d", core, got, want)
		}
	}
	if lo, hi := m.DomainCores(0); lo != 0 || hi != 2 {
		t.Errorf("DomainCores(0) = [%d,%d), want [0,2)", lo, hi)
	}
	if lo, hi := m.DomainCores(1); lo != 2 || hi != 4 {
		t.Errorf("DomainCores(1) = [%d,%d), want [2,4)", lo, hi)
	}
	if m.DomainHierarchy(0) == m.DomainHierarchy(1) {
		t.Error("domains share a hierarchy")
	}
	if m.Hierarchy() != m.DomainHierarchy(0) {
		t.Error("Hierarchy() is not domain 0's hierarchy")
	}
}

func TestDomainValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("indivisible cores", func() { New(Config{Cores: 7, Domains: 2}) })
	mustPanic("negative domains", func() { New(Config{Cores: 4, Domains: -1}) })
	mustPanic("hierarchy/domain mismatch", func() {
		cfg := smallConfig(4) // hierarchy spans 4 cores
		cfg.Cores = 8
		cfg.Domains = 4 // but each domain owns 2
		New(cfg)
	})
}

// TestDomainIsolation pins the property the sched placement engine exploits:
// a cache-thrashing aggressor degrades an L3-resident victim sharing its LLC
// domain, and does not touch one on the other domain.
func TestDomainIsolation(t *testing.T) {
	run := func(aggrCore int) (retired, misses uint64) {
		cfg := smallConfig(2)
		cfg.Domains = 2
		m := New(cfg)
		victim := basedStreamProc("victim", 0, 0, 48)   // fits the 64-line L3
		aggr := basedStreamProc("aggr", 1<<20, 0, 4096) // thrashes any L3
		m.Bind(0, victim)
		m.Bind(aggrCore, aggr)
		for i := 0; i < 50; i++ {
			m.RunPeriod()
		}
		return victim.Retired(), m.ReadCounter(0, pmu.EventLLCMisses)
	}
	coloRetired, coloMisses := run(1)   // same domain as the victim
	splitRetired, splitMisses := run(2) // other domain
	if splitRetired <= coloRetired {
		t.Errorf("split-domain victim retired %d <= co-located %d (no isolation)", splitRetired, coloRetired)
	}
	if splitMisses >= coloMisses {
		t.Errorf("split-domain victim missed %d >= co-located %d (aggressor leaked across domains)", splitMisses, coloMisses)
	}
}

// TestFlushCoreDomainScoped pins that FlushCore empties the flushed core's
// cache state and only its own domain's.
func TestFlushCoreDomainScoped(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Domains = 2
	m := New(cfg)
	a := basedStreamProc("a", 0, 0, 48)
	b := basedStreamProc("b", 1<<20, 0, 48)
	m.Bind(0, a)
	m.Bind(2, b)
	for i := 0; i < 20; i++ {
		m.RunPeriod() // warm both working sets
	}
	warmBase := m.ReadCounter(0, pmu.EventLLCMisses)
	m.RunPeriod()
	warmDelta := m.ReadCounter(0, pmu.EventLLCMisses) - warmBase

	// Flushing the *other* domain's core leaves core 0 warm.
	m.FlushCore(2)
	base := m.ReadCounter(0, pmu.EventLLCMisses)
	m.RunPeriod()
	if delta := m.ReadCounter(0, pmu.EventLLCMisses) - base; delta > warmDelta+4 {
		t.Errorf("flushing core 2 cooled core 0: %d misses/period, warm baseline %d", delta, warmDelta)
	}

	// Flushing core 0 itself makes its next period cold.
	m.FlushCore(0)
	base = m.ReadCounter(0, pmu.EventLLCMisses)
	m.RunPeriod()
	if delta := m.ReadCounter(0, pmu.EventLLCMisses) - base; delta <= warmDelta {
		t.Errorf("flushing core 0 had no effect: %d misses/period, warm baseline %d", delta, warmDelta)
	}
}
