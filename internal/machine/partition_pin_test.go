package machine

import (
	"testing"

	"caer/internal/mem"
)

// TestFullMaskPartitionMatchesUnpartitioned is the differential pin behind
// the partition response family: giving every owner the full way mask must
// step bit-identically to an unpartitioned machine, period by period, over
// every externally observable counter — serially and on the worker pool.
// The full-mask Insert path shares the unpartitioned victim scan by
// construction (mem.Cache.Insert), and each policy's VictimMask promises
// full-mask equivalence; this test holds the whole machine to that promise
// over a contended multi-period run. check.sh runs it under -race.
func TestFullMaskPartitionMatchesUnpartitioned(t *testing.T) {
	for _, workers := range []int{1, 4} {
		plain := buildDomains(t, 2, 4, 1)
		masked := buildDomains(t, 2, 4, workers)
		applyFull := func() {
			for d := 0; d < masked.Domains(); d++ {
				h := masked.DomainHierarchy(d)
				full := mem.FullMask(h.L3().Ways())
				lo, hi := masked.DomainCores(d)
				for c := lo; c < hi; c++ {
					if n := h.SetL3OwnerMask(masked.LocalCore(c), full, mem.ResizeOrphan); n != 0 {
						t.Fatalf("full-mask orphan resize dropped %d lines", n)
					}
				}
			}
		}
		applyFull()
		for p := 0; p < 40; p++ {
			plain.RunPeriod()
			masked.RunPeriod()
			diffSnap(t, snap(plain), snap(masked), "full-mask workers="+string(rune('0'+workers)))
			if p == 20 {
				applyFull() // re-applying mid-run must also be a no-op
			}
		}
	}
}

// TestConfinedPartitionDiverges is the differential pin's control: an
// actually confining mask must change the interleaving (otherwise the pin
// above would pass vacuously).
func TestConfinedPartitionDiverges(t *testing.T) {
	plain := buildDomains(t, 1, 4, 1)
	confined := buildDomains(t, 1, 4, 1)
	h := confined.DomainHierarchy(0)
	h.SetL3OwnerMask(0, mem.ContiguousMask(0, 2), mem.ResizeOrphan)
	for p := 0; p < 40; p++ {
		plain.RunPeriod()
		confined.RunPeriod()
	}
	a, b := snap(plain), snap(confined)
	diverged := false
	for i := range a.llcMiss {
		if a.llcMiss[i] != b.llcMiss[i] || a.cycles[i] != b.cycles[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("confining a streaming core to 2 of 16 ways changed nothing observable")
	}
}
