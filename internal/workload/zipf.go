package workload

import (
	"fmt"
	"math/rand"
)

// Zipf references lines with a Zipf-distributed popularity over a working
// set — the canonical model for skewed real-world access patterns
// (posting lists, key-value caches, object popularity). Rank 0 is the
// hottest line; the skew parameter s > 1 controls how concentrated the
// head is.
//
// The rank-to-address mapping is a fixed pseudo-random permutation so hot
// lines scatter across cache sets rather than clustering at the footprint's
// start.
type Zipf struct {
	base  uint64
	perm  []uint32
	zipf  *rand.Zipf
	wfrac float64
}

// NewZipf constructs a Zipf generator over ws lines at base with skew s
// (must be > 1) and value parameter v >= 1 (1 gives the steepest head).
// The permutation and the Zipf sampler derive from seed, so a given
// profile is reproducible; note the sampler keeps its own RNG and ignores
// the *rand.Rand passed to Next except for write decisions.
func NewZipf(base, ws uint64, s, v float64, seed int64, writeFrac float64) *Zipf {
	if ws == 0 || ws > 1<<31 {
		panic(fmt.Sprintf("workload: zipf working set %d out of range", ws))
	}
	if s <= 1 {
		panic(fmt.Sprintf("workload: zipf skew %v must be > 1", s))
	}
	if v < 1 {
		panic(fmt.Sprintf("workload: zipf v %v must be >= 1", v))
	}
	checkWriteFrac(writeFrac)
	rng := rand.New(rand.NewSource(seed))
	perm32 := make([]uint32, ws)
	for i, p := range rng.Perm(int(ws)) {
		perm32[i] = uint32(p)
	}
	z := rand.NewZipf(rand.New(rand.NewSource(seed+1)), s, v, ws-1)
	return &Zipf{base: base, perm: perm32, zipf: z, wfrac: writeFrac}
}

// Name implements Generator.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(ws=%d)", len(z.perm)) }

// Next implements Generator.
func (z *Zipf) Next(r *rand.Rand) Access {
	rank := z.zipf.Uint64()
	return Access{Addr: z.base + uint64(z.perm[rank]), Write: roll(r, z.wfrac)}
}

// MarkovPhased switches between generators according to a per-access
// transition probability, producing irregular, overlapping phases — closer
// to real program phase behaviour than the fixed-length cycles of Phased.
// State i moves to a uniformly random other state with probability
// switchProb at each access.
type MarkovPhased struct {
	gens       []Generator
	switchProb float64
	state      int
	rng        *rand.Rand
	seed       int64
}

// NewMarkovPhased constructs the generator. switchProb must be in (0, 1);
// at least two states are required.
func NewMarkovPhased(gens []Generator, switchProb float64, seed int64) *MarkovPhased {
	if len(gens) < 2 {
		panic("workload: markov phasing needs at least two generators")
	}
	for i, g := range gens {
		if g == nil {
			panic(fmt.Sprintf("workload: markov state %d has nil generator", i))
		}
	}
	if !(switchProb > 0 && switchProb < 1) {
		panic(fmt.Sprintf("workload: markov switch probability %v out of (0,1)", switchProb))
	}
	gs := make([]Generator, len(gens))
	copy(gs, gens)
	return &MarkovPhased{gens: gs, switchProb: switchProb, rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Name implements Generator.
func (m *MarkovPhased) Name() string {
	return fmt.Sprintf("markov(%d states, p=%.4f)", len(m.gens), m.switchProb)
}

// State returns the index of the active generator.
func (m *MarkovPhased) State() int { return m.state }

// Next implements Generator.
func (m *MarkovPhased) Next(r *rand.Rand) Access {
	if m.rng.Float64() < m.switchProb {
		// Move to a uniformly random *other* state.
		next := m.rng.Intn(len(m.gens) - 1)
		if next >= m.state {
			next++
		}
		m.state = next
	}
	return m.gens[m.state].Next(r)
}

// Reset implements Resetter.
func (m *MarkovPhased) Reset() {
	m.state = 0
	m.rng = rand.New(rand.NewSource(m.seed))
	for _, g := range m.gens {
		Reset(g)
	}
}
