// Package workload provides synthetic memory-reference-stream generators
// that stand in for the SPEC CPU2006 binaries of the paper's evaluation.
//
// Each generator emits a deterministic (seeded) stream of line-granular
// addresses. Benchmark profiles in internal/spec compose these primitives —
// streaming sweeps, uniform random references, pointer chases, multi-array
// stencils, hot/cold mixtures, and phase sequences — to reproduce the
// qualitative cache behaviour of each paper benchmark: working-set size
// relative to the cache hierarchy, access locality, and the LLC-miss phases
// visible in the paper's Figure 3.
package workload

import (
	"fmt"
	"math/rand"
)

// Access is one memory reference at line granularity.
type Access struct {
	Addr  uint64
	Write bool
}

// Generator produces an infinite reference stream. Next may use r for any
// stochastic choices; given the same r state and call sequence the stream is
// deterministic.
type Generator interface {
	// Next returns the next reference.
	Next(r *rand.Rand) Access
	// Name describes the generator for logs and tests.
	Name() string
}

// Resetter is implemented by generators whose position can be rewound to
// the initial state (used when a batch application is relaunched).
type Resetter interface {
	Reset()
}

// Reset rewinds g if it supports resetting; composite generators propagate
// the reset to their children.
func Reset(g Generator) {
	if r, ok := g.(Resetter); ok {
		r.Reset()
	}
}

// Stream sweeps sequentially over a working set of ws lines starting at
// base, with the given stride, wrapping around — the access pattern of
// lbm-style structured-grid codes that march over large arrays.
type Stream struct {
	base   uint64
	ws     uint64
	stride uint64
	pos    uint64
	wfrac  float64
}

// NewStream constructs a streaming generator. ws and stride must be
// positive; writeFrac in [0,1] is the fraction of references that write.
func NewStream(base, ws, stride uint64, writeFrac float64) *Stream {
	if ws == 0 {
		panic("workload: stream working set must be positive")
	}
	if stride == 0 {
		panic("workload: stream stride must be positive")
	}
	checkWriteFrac(writeFrac)
	return &Stream{base: base, ws: ws, stride: stride, wfrac: writeFrac}
}

// Name implements Generator.
func (s *Stream) Name() string { return fmt.Sprintf("stream(ws=%d,stride=%d)", s.ws, s.stride) }

// Next implements Generator.
func (s *Stream) Next(r *rand.Rand) Access {
	a := Access{Addr: s.base + s.pos, Write: roll(r, s.wfrac)}
	s.pos = (s.pos + s.stride) % s.ws
	return a
}

// Reset implements Resetter.
func (s *Stream) Reset() { s.pos = 0 }

// Uniform references lines uniformly at random within [base, base+ws) —
// the pattern of hash-table- and graph-heavy codes (mcf-like) with poor
// locality across a large footprint.
type Uniform struct {
	base  uint64
	ws    uint64
	wfrac float64
}

// NewUniform constructs a uniform-random generator over ws lines at base.
func NewUniform(base, ws uint64, writeFrac float64) *Uniform {
	if ws == 0 {
		panic("workload: uniform working set must be positive")
	}
	checkWriteFrac(writeFrac)
	return &Uniform{base: base, ws: ws, wfrac: writeFrac}
}

// Name implements Generator.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform(ws=%d)", u.ws) }

// Next implements Generator.
func (u *Uniform) Next(r *rand.Rand) Access {
	return Access{Addr: u.base + uint64(r.Int63n(int64(u.ws))), Write: roll(r, u.wfrac)}
}

// PointerChase walks a fixed random permutation cycle over ws lines — the
// dependent-load pattern of linked-structure traversals. The permutation is
// built once from seed so every run of a profile sees the same chain.
type PointerChase struct {
	base  uint64
	next  []uint32
	cur   uint32
	wfrac float64
}

// NewPointerChase constructs a chase over ws lines (ws must fit in uint32).
func NewPointerChase(base, ws uint64, seed int64, writeFrac float64) *PointerChase {
	if ws == 0 || ws > 1<<31 {
		panic(fmt.Sprintf("workload: pointer chase working set %d out of range", ws))
	}
	checkWriteFrac(writeFrac)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(int(ws))
	// Build a single cycle: perm[i] -> perm[(i+1) % ws].
	next := make([]uint32, ws)
	for i := 0; i < int(ws); i++ {
		next[perm[i]] = uint32(perm[(i+1)%int(ws)])
	}
	return &PointerChase{base: base, next: next, wfrac: writeFrac}
}

// Name implements Generator.
func (p *PointerChase) Name() string { return fmt.Sprintf("chase(ws=%d)", len(p.next)) }

// Next implements Generator.
func (p *PointerChase) Next(r *rand.Rand) Access {
	a := Access{Addr: p.base + uint64(p.cur), Write: roll(r, p.wfrac)}
	p.cur = p.next[p.cur]
	return a
}

// Reset implements Resetter.
func (p *PointerChase) Reset() { p.cur = 0 }

// Stencil interleaves sequential sweeps over several disjoint arrays, the
// pattern of dense numerical kernels (milc/gromacs-like): array k is read
// at offset i, producing bursts of spatial locality across k streams.
type Stencil struct {
	bases []uint64
	ws    uint64
	pos   uint64
	arr   int
	wfrac float64
}

// NewStencil constructs a stencil over `arrays` arrays of ws lines each,
// laid out contiguously from base.
func NewStencil(base, ws uint64, arrays int, writeFrac float64) *Stencil {
	if ws == 0 {
		panic("workload: stencil working set must be positive")
	}
	if arrays <= 0 {
		panic("workload: stencil needs at least one array")
	}
	checkWriteFrac(writeFrac)
	bases := make([]uint64, arrays)
	for i := range bases {
		bases[i] = base + uint64(i)*ws
	}
	return &Stencil{bases: bases, ws: ws, wfrac: writeFrac}
}

// Name implements Generator.
func (s *Stencil) Name() string {
	return fmt.Sprintf("stencil(arrays=%d,ws=%d)", len(s.bases), s.ws)
}

// Next implements Generator.
func (s *Stencil) Next(r *rand.Rand) Access {
	a := Access{Addr: s.bases[s.arr] + s.pos, Write: roll(r, s.wfrac)}
	s.arr++
	if s.arr == len(s.bases) {
		s.arr = 0
		s.pos = (s.pos + 1) % s.ws
	}
	return a
}

// Reset implements Resetter.
func (s *Stencil) Reset() { s.pos, s.arr = 0, 0 }

// HotCold sends hotFrac of references to a small hot set and the rest to a
// large cold set — the pattern of codes with a tight kernel plus occasional
// large-table lookups (h264ref/perlbench-like).
type HotCold struct {
	hot     Generator
	cold    Generator
	hotFrac float64
}

// NewHotCold composes hot and cold generators. hotFrac must be in [0,1].
func NewHotCold(hot, cold Generator, hotFrac float64) *HotCold {
	if hotFrac < 0 || hotFrac > 1 {
		panic("workload: hotFrac out of [0,1]")
	}
	if hot == nil || cold == nil {
		panic("workload: HotCold requires both generators")
	}
	return &HotCold{hot: hot, cold: cold, hotFrac: hotFrac}
}

// Name implements Generator.
func (h *HotCold) Name() string {
	return fmt.Sprintf("hotcold(%.2f,%s,%s)", h.hotFrac, h.hot.Name(), h.cold.Name())
}

// Next implements Generator.
func (h *HotCold) Next(r *rand.Rand) Access {
	if roll(r, h.hotFrac) {
		return h.hot.Next(r)
	}
	return h.cold.Next(r)
}

// Reset implements Resetter.
func (h *HotCold) Reset() {
	Reset(h.hot)
	Reset(h.cold)
}

func roll(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

func checkWriteFrac(f float64) {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("workload: write fraction %v out of [0,1]", f))
	}
}
