package workload

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := []Access{
		{Addr: 0, Write: false},
		{Addr: 1 << 40, Write: true},
		{Addr: 42, Write: false},
	}
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range orig {
		if err := tw.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Count() != 3 {
		t.Errorf("Count = %d", tw.Count())
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Errorf("double Close errored: %v", err)
	}
	if err := tw.Write(Access{}); err == nil {
		t.Error("write after Close accepted")
	}

	rp, err := ReadReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != 3 {
		t.Fatalf("replay length = %d", rp.Len())
	}
	r := testRNG()
	// Cycles through the trace, then wraps.
	for cycle := 0; cycle < 2; cycle++ {
		for i, want := range orig {
			if got := rp.Next(r); got != want {
				t.Fatalf("cycle %d access %d = %+v, want %+v", cycle, i, got, want)
			}
		}
	}
	rp.Next(r)
	Reset(rp)
	if got := rp.Next(r); got != orig[0] {
		t.Errorf("after Reset got %+v", got)
	}
	if rp.Name() != "replay(3)" {
		t.Errorf("Name = %q", rp.Name())
	}
}

func TestReadReplayRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {9, 9, 9, 9, 1, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, data := range cases {
		if _, err := ReadReplay(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Truncated mid-record: footer count will not match.
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf)
	tw.Write(Access{Addr: 1})
	tw.Write(Access{Addr: 2})
	tw.Close()
	trunc := buf.Bytes()[:buf.Len()-9] // drop last record + part of footer
	if _, err := ReadReplay(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
	// Empty trace (header + zero-count footer) is rejected.
	buf.Reset()
	tw, _ = NewTraceWriter(&buf)
	tw.Close()
	if _, err := ReadReplay(&buf); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestRecordFreezesGenerator(t *testing.T) {
	gen := NewUniform(100, 64, 0.3)
	rng := rand.New(rand.NewSource(5))
	recorded := Record(gen, rng, 500)
	if len(recorded) != 500 {
		t.Fatalf("recorded %d accesses", len(recorded))
	}
	// The frozen stream replays identically to a fresh generator with the
	// same seed.
	gen2 := NewUniform(100, 64, 0.3)
	rng2 := rand.New(rand.NewSource(5))
	rp := NewReplay(recorded)
	r := testRNG()
	for i := 0; i < 500; i++ {
		if got, want := rp.Next(r), gen2.Next(rng2); got != want {
			t.Fatalf("access %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestRecordValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero count", func() { Record(NewStream(0, 1, 1, 0), testRNG(), 0) })
	mustPanic("empty replay", func() { NewReplay(nil) })
}

func TestReplayDrivesAProcessEndToEnd(t *testing.T) {
	// A frozen trace behaves like any other generator when executed, and
	// two runs of the same trace are cycle-identical.
	recorded := Record(NewUniform(0, 2048, 0.2), rand.New(rand.NewSource(9)), 10_000)
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf)
	for _, a := range recorded {
		tw.Write(a)
	}
	tw.Close()
	rp, err := ReadReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := testRNG()
	seen := map[uint64]bool{}
	for i := 0; i < 10_000; i++ {
		a := rp.Next(r)
		if a.Addr >= 2048 {
			t.Fatalf("replayed address %d outside original footprint", a.Addr)
		}
		seen[a.Addr] = true
	}
	if len(seen) < 1000 {
		t.Errorf("replay visited only %d distinct lines", len(seen))
	}
}
