package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestStreamSweepsAndWraps(t *testing.T) {
	s := NewStream(100, 4, 1, 0)
	r := testRNG()
	want := []uint64{100, 101, 102, 103, 100, 101}
	for i, w := range want {
		if got := s.Next(r).Addr; got != w {
			t.Errorf("access %d addr = %d, want %d", i, got, w)
		}
	}
}

func TestStreamStride(t *testing.T) {
	s := NewStream(0, 8, 3, 0)
	r := testRNG()
	want := []uint64{0, 3, 6, 1, 4, 7, 2, 5, 0}
	for i, w := range want {
		if got := s.Next(r).Addr; got != w {
			t.Errorf("access %d addr = %d, want %d", i, got, w)
		}
	}
}

func TestStreamReset(t *testing.T) {
	s := NewStream(0, 10, 1, 0)
	r := testRNG()
	s.Next(r)
	s.Next(r)
	Reset(s)
	if got := s.Next(r).Addr; got != 0 {
		t.Errorf("after Reset addr = %d, want 0", got)
	}
}

func TestStreamWriteFraction(t *testing.T) {
	s := NewStream(0, 100, 1, 1)
	r := testRNG()
	if !s.Next(r).Write {
		t.Error("writeFrac=1 produced a read")
	}
	s2 := NewStream(0, 100, 1, 0)
	if s2.Next(r).Write {
		t.Error("writeFrac=0 produced a write")
	}
}

func TestGeneratorConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("stream ws=0", func() { NewStream(0, 0, 1, 0) })
	mustPanic("stream stride=0", func() { NewStream(0, 4, 0, 0) })
	mustPanic("stream wfrac", func() { NewStream(0, 4, 1, 1.5) })
	mustPanic("uniform ws=0", func() { NewUniform(0, 0, 0) })
	mustPanic("chase ws=0", func() { NewPointerChase(0, 0, 1, 0) })
	mustPanic("stencil ws=0", func() { NewStencil(0, 0, 2, 0) })
	mustPanic("stencil arrays=0", func() { NewStencil(0, 4, 0, 0) })
	mustPanic("hotcold frac", func() { NewHotCold(NewStream(0, 1, 1, 0), NewStream(0, 1, 1, 0), 2) })
	mustPanic("hotcold nil", func() { NewHotCold(nil, NewStream(0, 1, 1, 0), 0.5) })
	mustPanic("phased empty", func() { NewPhased(nil) })
	mustPanic("phased zero duration", func() {
		NewPhased([]Phase{{Gen: NewStream(0, 1, 1, 0), Duration: 0}})
	})
	mustPanic("phased nil gen", func() { NewPhased([]Phase{{Gen: nil, Duration: 1}}) })
}

func TestUniformStaysInRange(t *testing.T) {
	u := NewUniform(1000, 50, 0.3)
	r := testRNG()
	for i := 0; i < 5000; i++ {
		a := u.Next(r)
		if a.Addr < 1000 || a.Addr >= 1050 {
			t.Fatalf("addr %d outside [1000,1050)", a.Addr)
		}
	}
}

func TestUniformDeterministicGivenSeed(t *testing.T) {
	u1, u2 := NewUniform(0, 100, 0.5), NewUniform(0, 100, 0.5)
	r1, r2 := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if u1.Next(r1) != u2.Next(r2) {
			t.Fatal("same-seed uniform streams diverged")
		}
	}
}

func TestPointerChaseVisitsEveryLineOncePerCycle(t *testing.T) {
	const ws = 64
	p := NewPointerChase(500, ws, 3, 0)
	r := testRNG()
	seen := make(map[uint64]int)
	for i := 0; i < ws; i++ {
		seen[p.Next(r).Addr]++
	}
	if len(seen) != ws {
		t.Fatalf("one cycle visited %d distinct lines, want %d", len(seen), ws)
	}
	for addr, n := range seen {
		if n != 1 {
			t.Errorf("line %d visited %d times in one cycle", addr, n)
		}
		if addr < 500 || addr >= 500+ws {
			t.Errorf("line %d outside working set", addr)
		}
	}
	// Second cycle revisits the same sequence.
	first := p.Next(r).Addr
	Reset(p)
	if got := p.Next(r).Addr; got != first-0 && got != 500+0 {
		// After reset the chase restarts at index 0.
		if got != 500 {
			t.Errorf("after Reset first addr = %d, want 500", got)
		}
	}
}

func TestStencilInterleavesArrays(t *testing.T) {
	s := NewStencil(0, 10, 3, 0)
	r := testRNG()
	want := []uint64{0, 10, 20, 1, 11, 21}
	for i, w := range want {
		if got := s.Next(r).Addr; got != w {
			t.Errorf("access %d addr = %d, want %d", i, got, w)
		}
	}
	Reset(s)
	if got := s.Next(r).Addr; got != 0 {
		t.Errorf("after Reset addr = %d, want 0", got)
	}
}

func TestHotColdSplit(t *testing.T) {
	hot := NewUniform(0, 10, 0)
	cold := NewUniform(10000, 10, 0)
	hc := NewHotCold(hot, cold, 0.9)
	r := testRNG()
	hots := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if hc.Next(r).Addr < 10 {
			hots++
		}
	}
	frac := float64(hots) / n
	if frac < 0.87 || frac > 0.93 {
		t.Errorf("hot fraction = %v, want ~0.9", frac)
	}
}

func TestPhasedCyclesThroughPhases(t *testing.T) {
	p := NewPhased([]Phase{
		{Gen: NewStream(0, 100, 1, 0), Duration: 3},
		{Gen: NewStream(1000, 100, 1, 0), Duration: 2},
	})
	r := testRNG()
	wantRegion := []int{0, 0, 0, 1, 1, 0, 0, 0, 1, 1}
	for i, w := range wantRegion {
		a := p.Next(r)
		region := 0
		if a.Addr >= 1000 {
			region = 1
		}
		if region != w {
			t.Errorf("access %d in region %d, want %d (addr=%d)", i, region, w, a.Addr)
		}
	}
}

func TestPhasedCurrentPhaseAndReset(t *testing.T) {
	p := NewPhased([]Phase{
		{Gen: NewStream(0, 10, 1, 0), Duration: 2},
		{Gen: NewStream(100, 10, 1, 0), Duration: 2},
	})
	r := testRNG()
	if p.CurrentPhase() != 0 {
		t.Error("fresh phased not in phase 0")
	}
	p.Next(r)
	p.Next(r)
	if p.CurrentPhase() != 1 {
		t.Errorf("after phase-0 duration CurrentPhase = %d, want 1", p.CurrentPhase())
	}
	p.Reset()
	if p.CurrentPhase() != 0 {
		t.Error("Reset did not rewind phase index")
	}
	if got := p.Next(r).Addr; got != 0 {
		t.Errorf("after Reset first addr = %d, want 0", got)
	}
}

func TestGeneratorNames(t *testing.T) {
	gens := []Generator{
		NewStream(0, 4, 1, 0),
		NewUniform(0, 4, 0),
		NewPointerChase(0, 4, 1, 0),
		NewStencil(0, 4, 2, 0),
		NewHotCold(NewStream(0, 1, 1, 0), NewStream(0, 1, 1, 0), 0.5),
		NewPhased([]Phase{{Gen: NewStream(0, 1, 1, 0), Duration: 1}}),
	}
	for _, g := range gens {
		if g.Name() == "" {
			t.Errorf("%T has empty Name", g)
		}
	}
}

// Property: every generator keeps addresses within its declared footprint.
func TestGeneratorFootprintProperty(t *testing.T) {
	f := func(seed int64, wsRaw uint16, baseRaw uint16) bool {
		ws := uint64(wsRaw%500) + 1
		base := uint64(baseRaw)
		r := rand.New(rand.NewSource(seed))
		gens := []struct {
			g      Generator
			lo, hi uint64
		}{
			{NewStream(base, ws, 1, 0.2), base, base + ws},
			{NewUniform(base, ws, 0.2), base, base + ws},
			{NewPointerChase(base, ws, seed, 0.2), base, base + ws},
			{NewStencil(base, ws, 3, 0.2), base, base + 3*ws},
		}
		for _, tc := range gens {
			for i := 0; i < 200; i++ {
				a := tc.g.Next(r)
				if a.Addr < tc.lo || a.Addr >= tc.hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
