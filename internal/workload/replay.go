package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
)

// Address-trace capture and replay: a recorded reference stream can be
// serialized, shipped, and replayed as a Generator — so users with real
// application traces (e.g. from a binary-instrumentation tool) can run them
// through the machine and the CAER runtime, and synthetic streams can be
// frozen for exactly-reproducible experiments.
//
// Format: magic u32 | version u8 | count u64, then per access:
// addr u64 | flags u8 (bit 0 = write).

const (
	replayMagic   = 0xCAE2_ACCE
	replayVersion = 1
	// maxReplayAccesses bounds allocation against corrupt headers (2^27
	// accesses = ~1.2 GiB in memory).
	maxReplayAccesses = 1 << 27
)

// TraceWriter serializes a reference stream.
type TraceWriter struct {
	w     *bufio.Writer
	count uint64
	done  bool
}

// NewTraceWriter starts a trace on any plain stream. The access count is
// written as a trailing footer by Close (rather than patched into the
// header, which would require seeking).
//
// Layout: magic u32 | version u8 | accesses (addr u64, flags u8)... |
// footer count u64.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint32(replayMagic)); err != nil {
		return nil, fmt.Errorf("workload: write trace header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint8(replayVersion)); err != nil {
		return nil, fmt.Errorf("workload: write trace header: %w", err)
	}
	return &TraceWriter{w: bw}, nil
}

// Write appends one access.
func (t *TraceWriter) Write(a Access) error {
	if t.done {
		return fmt.Errorf("workload: write after Close")
	}
	if err := binary.Write(t.w, binary.LittleEndian, a.Addr); err != nil {
		return err
	}
	var flags uint8
	if a.Write {
		flags = 1
	}
	if err := binary.Write(t.w, binary.LittleEndian, flags); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns the number of accesses written so far.
func (t *TraceWriter) Count() uint64 { return t.count }

// Close writes the footer and flushes. The writer is unusable afterwards.
func (t *TraceWriter) Close() error {
	if t.done {
		return nil
	}
	t.done = true
	if err := binary.Write(t.w, binary.LittleEndian, t.count); err != nil {
		return err
	}
	return t.w.Flush()
}

// Replay is a Generator that cycles through a recorded reference stream.
type Replay struct {
	accesses []Access
	pos      int
}

// ReadReplay loads a trace written by TraceWriter. The whole trace is held
// in memory (9 bytes per access).
func ReadReplay(r io.Reader) (*Replay, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("workload: read trace magic: %w", err)
	}
	if magic != replayMagic {
		return nil, fmt.Errorf("workload: bad trace magic %#x", magic)
	}
	var version uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("workload: read trace version: %w", err)
	}
	if version != replayVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d", version)
	}
	var accesses []Access
	for {
		var addr uint64
		if err := binary.Read(br, binary.LittleEndian, &addr); err != nil {
			return nil, fmt.Errorf("workload: truncated trace (missing footer): %w", err)
		}
		var flags uint8
		if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
			// addr was actually the footer count if we are at EOF.
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				if addr != uint64(len(accesses)) {
					return nil, fmt.Errorf("workload: trace footer count %d != %d accesses", addr, len(accesses))
				}
				break
			}
			return nil, fmt.Errorf("workload: read trace access: %w", err)
		}
		if len(accesses) >= maxReplayAccesses {
			return nil, fmt.Errorf("workload: trace exceeds %d accesses", maxReplayAccesses)
		}
		accesses = append(accesses, Access{Addr: addr, Write: flags&1 != 0})
	}
	if len(accesses) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return &Replay{accesses: accesses}, nil
}

// NewReplay wraps an in-memory access sequence as a cycling Generator.
func NewReplay(accesses []Access) *Replay {
	if len(accesses) == 0 {
		panic("workload: replay needs at least one access")
	}
	cp := make([]Access, len(accesses))
	copy(cp, accesses)
	return &Replay{accesses: cp}
}

// Name implements Generator.
func (r *Replay) Name() string { return fmt.Sprintf("replay(%d)", len(r.accesses)) }

// Len returns the trace length.
func (r *Replay) Len() int { return len(r.accesses) }

// Next implements Generator, cycling through the trace.
func (r *Replay) Next(_ *rand.Rand) Access {
	a := r.accesses[r.pos]
	r.pos = (r.pos + 1) % len(r.accesses)
	return a
}

// Reset implements Resetter.
func (r *Replay) Reset() { r.pos = 0 }

// Record captures n accesses from g (driven by rng) into a slice, e.g. to
// freeze a synthetic stream for replay.
func Record(g Generator, rng *rand.Rand, n int) []Access {
	if n <= 0 {
		panic("workload: record needs a positive access count")
	}
	out := make([]Access, n)
	for i := range out {
		out[i] = g.Next(rng)
	}
	return out
}
