package workload

import (
	"fmt"
	"math/rand"
)

// Phase pairs a generator with how many references it runs before the
// program moves to the next phase.
type Phase struct {
	Gen      Generator
	Duration uint64 // references; must be positive
}

// Phased cycles through a sequence of phases, reproducing the periodic
// LLC-miss phase behaviour the paper's Figure 3 shows for xalancbmk and
// mcf: alternating cache-hungry and cache-quiet program regions.
type Phased struct {
	phases []Phase
	idx    int
	used   uint64
}

// NewPhased constructs a cyclic phase sequence. It panics on an empty
// sequence or a non-positive duration.
func NewPhased(phases []Phase) *Phased {
	if len(phases) == 0 {
		panic("workload: phased generator needs at least one phase")
	}
	for i, p := range phases {
		if p.Gen == nil {
			panic(fmt.Sprintf("workload: phase %d has nil generator", i))
		}
		if p.Duration == 0 {
			panic(fmt.Sprintf("workload: phase %d has zero duration", i))
		}
	}
	ps := make([]Phase, len(phases))
	copy(ps, phases)
	return &Phased{phases: ps}
}

// Name implements Generator.
func (p *Phased) Name() string { return fmt.Sprintf("phased(%d)", len(p.phases)) }

// Next implements Generator, advancing to the next phase when the current
// phase's duration is exhausted. Phases cycle indefinitely.
func (p *Phased) Next(r *rand.Rand) Access {
	ph := p.phases[p.idx]
	a := ph.Gen.Next(r)
	p.used++
	if p.used >= ph.Duration {
		p.used = 0
		p.idx = (p.idx + 1) % len(p.phases)
	}
	return a
}

// CurrentPhase returns the index of the active phase.
func (p *Phased) CurrentPhase() int { return p.idx }

// Reset implements Resetter, rewinding to the first phase and resetting
// children.
func (p *Phased) Reset() {
	p.idx, p.used = 0, 0
	for _, ph := range p.phases {
		Reset(ph.Gen)
	}
}
