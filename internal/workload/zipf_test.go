package workload

import (
	"math/rand"
	"sort"
	"testing"
)

func TestNewZipfValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ws=0", func() { NewZipf(0, 0, 1.2, 1, 1, 0) })
	mustPanic("skew<=1", func() { NewZipf(0, 10, 1.0, 1, 1, 0) })
	mustPanic("v<1", func() { NewZipf(0, 10, 1.2, 0.5, 1, 0) })
	mustPanic("wfrac", func() { NewZipf(0, 10, 1.2, 1, 1, 2) })
}

func TestZipfStaysInFootprintAndIsSkewed(t *testing.T) {
	const ws = 1024
	z := NewZipf(5000, ws, 1.3, 1, 7, 0.1)
	r := testRNG()
	counts := make(map[uint64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		a := z.Next(r)
		if a.Addr < 5000 || a.Addr >= 5000+ws {
			t.Fatalf("addr %d outside footprint", a.Addr)
		}
		counts[a.Addr]++
	}
	// Skew: the top-16 lines should take a large share of accesses.
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := 0
	for i := 0; i < 16 && i < len(freqs); i++ {
		top += freqs[i]
	}
	if frac := float64(top) / n; frac < 0.3 {
		t.Errorf("top-16 lines take %.2f of accesses, want heavy skew (>= 0.3)", frac)
	}
	// But the tail is still exercised: many distinct lines touched.
	if len(counts) < ws/4 {
		t.Errorf("only %d distinct lines touched of %d", len(counts), ws)
	}
}

func TestZipfHotLinesScattered(t *testing.T) {
	// The rank->address permutation must spread hot lines: the single
	// hottest address should rarely be address base+0.
	hot0 := 0
	for seed := int64(0); seed < 16; seed++ {
		z := NewZipf(0, 256, 1.5, 1, seed, 0)
		r := rand.New(rand.NewSource(99))
		counts := make(map[uint64]int)
		for i := 0; i < 2000; i++ {
			counts[z.Next(r).Addr]++
		}
		best, bestAddr := 0, uint64(0)
		for a, c := range counts {
			if c > best {
				best, bestAddr = c, a
			}
		}
		if bestAddr == 0 {
			hot0++
		}
	}
	if hot0 > 4 {
		t.Errorf("hottest line was address 0 in %d/16 seeds; permutation not scattering", hot0)
	}
}

func TestZipfDeterministicPerSeed(t *testing.T) {
	z1 := NewZipf(0, 128, 1.2, 1, 5, 0)
	z2 := NewZipf(0, 128, 1.2, 1, 5, 0)
	r1, r2 := rand.New(rand.NewSource(1)), rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if z1.Next(r1) != z2.Next(r2) {
			t.Fatal("same-seed zipf generators diverged")
		}
	}
}

func TestNewMarkovPhasedValidation(t *testing.T) {
	g := NewStream(0, 4, 1, 0)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("one state", func() { NewMarkovPhased([]Generator{g}, 0.1, 1) })
	mustPanic("nil state", func() { NewMarkovPhased([]Generator{g, nil}, 0.1, 1) })
	mustPanic("p=0", func() { NewMarkovPhased([]Generator{g, g}, 0, 1) })
	mustPanic("p=1", func() { NewMarkovPhased([]Generator{g, g}, 1, 1) })
}

func TestMarkovPhasedVisitsAllStates(t *testing.T) {
	m := NewMarkovPhased([]Generator{
		NewUniform(0, 10, 0),
		NewUniform(1000, 10, 0),
		NewUniform(2000, 10, 0),
	}, 0.01, 3)
	r := testRNG()
	regions := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		regions[m.Next(r).Addr/1000]++
	}
	for region := uint64(0); region < 3; region++ {
		if regions[region] == 0 {
			t.Errorf("state %d never visited", region)
		}
	}
}

func TestMarkovPhasedDwellsInStates(t *testing.T) {
	// With p = 0.005 the expected dwell time is ~200 accesses; runs of the
	// same state must be long, not access-by-access noise.
	m := NewMarkovPhased([]Generator{
		NewUniform(0, 10, 0),
		NewUniform(1000, 10, 0),
	}, 0.005, 3)
	r := testRNG()
	transitions := 0
	last := uint64(99)
	const n = 20000
	for i := 0; i < n; i++ {
		region := m.Next(r).Addr / 1000
		if region != last {
			transitions++
			last = region
		}
	}
	if transitions > n/50 {
		t.Errorf("%d transitions over %d accesses; phases too short", transitions, n)
	}
	if transitions < 2 {
		t.Error("no phase transitions at all")
	}
}

func TestMarkovPhasedReset(t *testing.T) {
	m := NewMarkovPhased([]Generator{
		NewStream(0, 10, 1, 0),
		NewStream(1000, 10, 1, 0),
	}, 0.2, 3)
	r := testRNG()
	first := make([]uint64, 10)
	for i := range first {
		first[i] = m.Next(r).Addr
	}
	m.Reset()
	if m.State() != 0 {
		t.Error("Reset did not rewind state")
	}
	r2 := testRNG()
	for i := range first {
		if got := m.Next(r2).Addr; got != first[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, got, first[i])
		}
	}
}
