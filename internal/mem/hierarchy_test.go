package mem

import (
	"math/rand"
	"testing"
)

func newTestHierarchy(cores int) *Hierarchy {
	cfg := HierarchyConfig{
		Cores:  cores,
		L1Sets: 4, L1Ways: 2,
		L2Sets: 8, L2Ways: 2,
		L3Sets: 16, L3Ways: 4,
		L1Latency: 1, L2Latency: 10, L3Latency: 30,
		Memory: MemoryConfig{LatencyCycles: 100},
	}
	return NewHierarchy(cfg)
}

func TestNewHierarchyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHierarchy with 0 cores did not panic")
		}
	}()
	NewHierarchy(HierarchyConfig{Cores: 0})
}

func TestHierarchyAccessLevelsAndLatencies(t *testing.T) {
	h := newTestHierarchy(2)
	// Cold access: miss everywhere -> memory.
	r := h.Access(0, 42, false, 0)
	if r.Level != LevelMemory {
		t.Fatalf("cold access level = %v, want MEM", r.Level)
	}
	if want := uint64(1 + 10 + 30 + 100); r.Latency != want {
		t.Errorf("cold latency = %d, want %d", r.Latency, want)
	}
	// Second access: L1 hit.
	r = h.Access(0, 42, false, 0)
	if r.Level != LevelL1 || r.Latency != 1 {
		t.Errorf("warm access = %+v, want L1/1", r)
	}
	if h.LLCMisses(0) != 1 {
		t.Errorf("LLC misses = %d, want 1", h.LLCMisses(0))
	}
}

func TestHierarchyL3HitFromOtherCoreFill(t *testing.T) {
	h := newTestHierarchy(2)
	h.Access(0, 7, false, 0)
	// Core 1 misses privately but hits shared L3 (filled by core 0).
	r := h.Access(1, 7, false, 0)
	if r.Level != LevelL3 {
		t.Errorf("core 1 access level = %v, want L3", r.Level)
	}
	if h.LLCMisses(1) != 0 {
		t.Errorf("core 1 LLC misses = %d, want 0", h.LLCMisses(1))
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := newTestHierarchy(1)
	h.Access(0, 1, false, 0)
	// Evict addr 1 from L1 (4 sets * 2 ways): fill set of addr 1 with
	// conflicting addresses 5 and 9 (addr % 4 == 1).
	h.Access(0, 5, false, 0)
	h.Access(0, 9, false, 0)
	if h.L1(0).Contains(1) {
		t.Skip("L1 did not evict as expected; geometry changed")
	}
	r := h.Access(0, 1, false, 0)
	if r.Level != LevelL2 {
		t.Errorf("level = %v, want L2", r.Level)
	}
}

func TestHierarchyInclusionBackInvalidation(t *testing.T) {
	h := newTestHierarchy(2)
	// Fill one L3 set (16 sets, 4 ways): addresses congruent mod 16.
	base := uint64(3)
	for i := uint64(0); i < 4; i++ {
		h.Access(0, base+16*i, false, 0)
	}
	if !h.L1(0).Contains(base+48) && !h.L2(0).Contains(base+48) {
		t.Log("note: most recent line may only be in private caches")
	}
	// Fifth conflicting line evicts one of the first four from L3.
	h.Access(1, base+64, false, 0)
	// Inclusion: no private cache may hold a line absent from L3.
	checkInclusion(t, h)
}

func checkInclusion(t *testing.T, h *Hierarchy) {
	t.Helper()
	for core := 0; core < h.Cores(); core++ {
		for _, c := range []*Cache{h.L1(core), h.L2(core)} {
			for set := 0; set < c.Sets(); set++ {
				for way := 0; way < c.Ways(); way++ {
					ln := c.lineAt(set, way)
					if ln.valid && !h.L3().Contains(ln.tag) {
						t.Fatalf("inclusion violated: %s holds %d which is not in L3", c.Name(), ln.tag)
					}
				}
			}
		}
	}
}

// Property-style: inclusion holds after a long random multicore access mix.
func TestHierarchyInclusionInvariantRandom(t *testing.T) {
	h := newTestHierarchy(4)
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 20000; i++ {
		core := rng.Intn(4)
		addr := uint64(rng.Intn(512))
		h.Access(core, addr, rng.Intn(3) == 0, uint64(i))
	}
	checkInclusion(t, h)
}

func TestHierarchyContentionRaisesMisses(t *testing.T) {
	// A working set that fits L3 alone but not when two cores stream over
	// disjoint halves of 1.5x L3 capacity: misses should rise sharply.
	run := func(cores int) uint64 {
		h := newTestHierarchy(2)
		l3Lines := uint64(h.L3().LineCount()) // 64 lines
		ws := l3Lines * 3 / 4                 // each core's set: 48 lines
		var now uint64
		for pass := 0; pass < 50; pass++ {
			for i := uint64(0); i < ws; i++ {
				h.Access(0, i, false, now)
				now++
				if cores == 2 {
					h.Access(1, 1000+i, false, now)
					now++
				}
			}
		}
		return h.LLCMisses(0)
	}
	alone := run(1)
	contended := run(2)
	if contended <= alone*2 {
		t.Errorf("contention did not raise misses enough: alone=%d contended=%d", alone, contended)
	}
}

func TestL2HintsProtectPrivateCacheResidents(t *testing.T) {
	// The inclusion-victim pathology: a line hot in L2 never touches the
	// L3 via demand accesses, ages to LRU there, and gets evicted by a
	// streaming co-runner — unless L2 hits send temporal hints. Compare a
	// small hot set's survival with hints on and off.
	run := func(disableHints bool) uint64 {
		cfg := DefaultHierarchyConfig(2)
		cfg.DisableL2Hints = disableHints
		h := NewHierarchy(cfg)
		var now uint64
		// Core 0: tight loop over 512 lines (L2-resident after warmup).
		// Core 1: stream over 4x the L3.
		streamAddr := uint64(1 << 20)
		for i := 0; i < 400000; i++ {
			h.Access(0, uint64(i%512), false, now)
			now++
			if i%3 == 0 {
				h.Access(1, streamAddr, false, now)
				streamAddr++
				now++
			}
		}
		return h.LLCMisses(0)
	}
	withHints := run(false)
	withoutHints := run(true)
	if withoutHints < withHints*3 {
		t.Errorf("hints made no difference: with=%d without=%d", withHints, withoutHints)
	}
	// With hints the resident set survives almost untouched (just the
	// initial fill plus stragglers).
	if withHints > 2000 {
		t.Errorf("hinted resident set still suffered %d misses", withHints)
	}
}

func TestCacheRefresh(t *testing.T) {
	c := NewCache(Config{Name: "r", Sets: 1, Ways: 2})
	c.Insert(0, 0, false)
	c.Insert(1, 0, false)
	// Refresh line 0 so line 1 becomes the LRU victim.
	if !c.Refresh(0) {
		t.Fatal("Refresh did not find a resident line")
	}
	if c.Refresh(99) {
		t.Error("Refresh found a non-resident line")
	}
	ev := c.Insert(2, 0, false)
	if ev.Addr != 1 {
		t.Errorf("evicted %d, want 1 (line 0 was refreshed)", ev.Addr)
	}
	// Refresh must not disturb stats.
	if s := c.Stats(); s.Accesses != 0 {
		t.Errorf("Refresh bumped access stats: %+v", s)
	}
}

func TestHierarchyFlushCore(t *testing.T) {
	h := newTestHierarchy(2)
	h.Access(0, 11, false, 0)
	h.Access(1, 22, false, 0)
	h.FlushCore(0)
	if h.L1(0).Contains(11) || h.L2(0).Contains(11) || h.L3().Contains(11) {
		t.Error("core 0 lines survived FlushCore")
	}
	if !h.L3().Contains(22) {
		t.Error("core 1's L3 line was lost by FlushCore(0)")
	}
}

func TestHierarchyResetCounters(t *testing.T) {
	h := newTestHierarchy(1)
	h.Access(0, 5, false, 0)
	h.ResetCounters()
	if h.LLCMisses(0) != 0 || h.LLCAccesses(0) != 0 || h.L2Misses(0) != 0 {
		t.Error("counters not zeroed")
	}
	if !h.L1(0).Contains(5) {
		t.Error("ResetCounters dropped cache contents")
	}
}

func TestMainMemoryFixedLatency(t *testing.T) {
	m := NewMainMemory(MemoryConfig{LatencyCycles: 150})
	for i := 0; i < 5; i++ {
		if got := m.Access(uint64(i)); got != 150 {
			t.Errorf("Access = %d, want 150", got)
		}
	}
	if m.Accesses() != 5 {
		t.Errorf("Accesses = %d, want 5", m.Accesses())
	}
	if m.QueuedCycles() != 0 {
		t.Errorf("QueuedCycles = %d, want 0 without bandwidth model", m.QueuedCycles())
	}
}

func TestMainMemoryBandwidthQueueing(t *testing.T) {
	m := NewMainMemory(MemoryConfig{LatencyCycles: 100, ServiceCycles: 10})
	// Two back-to-back accesses at the same cycle: the second queues 10.
	if got := m.Access(0); got != 100 {
		t.Errorf("first access latency = %d, want 100", got)
	}
	if got := m.Access(0); got != 110 {
		t.Errorf("second access latency = %d, want 110", got)
	}
	if m.QueuedCycles() != 10 {
		t.Errorf("QueuedCycles = %d, want 10", m.QueuedCycles())
	}
	// An access after the channel drained sees no queueing.
	if got := m.Access(1000); got != 100 {
		t.Errorf("late access latency = %d, want 100", got)
	}
}

func TestMainMemoryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMainMemory with zero latency did not panic")
		}
	}()
	NewMainMemory(MemoryConfig{})
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelMemory: "MEM", Level(9): "Level(9)"}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestDefaultHierarchyConfigGeometry(t *testing.T) {
	cfg := DefaultHierarchyConfig(4)
	if cfg.Cores != 4 {
		t.Errorf("Cores = %d", cfg.Cores)
	}
	// 64B lines: verify documented sizes.
	if kb := cfg.L1Sets * cfg.L1Ways * 64 / 1024; kb != 8 {
		t.Errorf("L1 size = %dKB, want 8", kb)
	}
	if kb := cfg.L2Sets * cfg.L2Ways * 64 / 1024; kb != 64 {
		t.Errorf("L2 size = %dKB, want 64", kb)
	}
	if kb := cfg.L3Sets * cfg.L3Ways * 64 / 1024; kb != 512 {
		t.Errorf("L3 size = %dKB, want 512", kb)
	}
	h := NewHierarchy(cfg)
	if h.Cores() != 4 || h.Config().L3Sets != 512 {
		t.Error("hierarchy did not adopt config")
	}
}
