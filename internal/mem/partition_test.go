package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fillOwner warms every way of every set with owner's lines. Addresses are
// set + sets*way so each set's row is fully valid afterwards.
func fillOwner(c *Cache, owner int) {
	for set := 0; set < c.Sets(); set++ {
		for way := 0; way < c.Ways(); way++ {
			addr := uint64(set + c.Sets()*way)
			if !c.Lookup(addr, false) {
				c.Insert(addr, owner, false)
			}
		}
	}
}

func TestSetOwnerMaskOrphanKeepsLines(t *testing.T) {
	c := newTestCache(4, 8)
	fillOwner(c, 0)
	low := ContiguousMask(0, 4)
	if dropped := c.SetOwnerMask(0, low, ResizeOrphan); dropped != nil {
		t.Fatalf("orphan resize returned %d dropped lines, want none", len(dropped))
	}
	if got := c.OwnerMask(0); got != low {
		t.Fatalf("OwnerMask(0) = %v, want %v", got, low)
	}
	// Every previously resident line still hits: masks gate fills, not
	// visibility.
	for set := 0; set < c.Sets(); set++ {
		for way := 0; way < c.Ways(); way++ {
			if addr := uint64(set + c.Sets()*way); !c.Contains(addr) {
				t.Fatalf("orphan resize dropped resident line %#x", addr)
			}
		}
	}
	// The ways outside the mask are exactly the stranded ones.
	if got, want := c.StrandedLines(0), c.Sets()*4; got != want {
		t.Fatalf("StrandedLines(0) = %d, want %d", got, want)
	}
	// New fills land only inside the mask: flood owner 0 with fresh
	// addresses and verify the out-of-mask lines survive untouched.
	for set := 0; set < c.Sets(); set++ {
		for i := 0; i < 16; i++ {
			addr := uint64(set + c.Sets()*(100+i))
			if !c.Lookup(addr, false) {
				c.Insert(addr, 0, false)
			}
		}
	}
	for set := 0; set < c.Sets(); set++ {
		for way := 4; way < c.Ways(); way++ {
			if addr := uint64(set + c.Sets()*way); !c.Contains(addr) {
				t.Fatalf("confined fills evicted out-of-mask line %#x", addr)
			}
		}
	}
}

func TestSetOwnerMaskInvalidateDropsLines(t *testing.T) {
	c := newTestCache(4, 8)
	fillOwner(c, 0)
	for set := 0; set < c.Sets(); set++ { // dirty one out-of-mask line per set
		c.Lookup(uint64(set+c.Sets()*6), true)
	}
	low := ContiguousMask(0, 4)
	dropped := c.SetOwnerMask(0, low, ResizeInvalidate)
	if want := c.Sets() * 4; len(dropped) != want {
		t.Fatalf("invalidate resize dropped %d lines, want %d", len(dropped), want)
	}
	dirty := 0
	for _, ev := range dropped {
		if !ev.Valid || ev.Owner != 0 {
			t.Fatalf("dropped line %+v not a valid owner-0 line", ev)
		}
		if c.Contains(ev.Addr) {
			t.Fatalf("dropped line %#x still resident", ev.Addr)
		}
		if ev.Dirty {
			dirty++
		}
	}
	if dirty != c.Sets() {
		t.Fatalf("dropped %d dirty lines, want %d", dirty, c.Sets())
	}
	if got := c.StrandedLines(0); got != 0 {
		t.Fatalf("StrandedLines(0) = %d after invalidate, want 0", got)
	}
	if got, want := c.Stats().Invalidations, uint64(c.Sets()*4); got != want {
		t.Fatalf("Invalidations = %d, want %d", got, want)
	}
	// In-mask lines are untouched.
	for set := 0; set < c.Sets(); set++ {
		for way := 0; way < 4; way++ {
			if addr := uint64(set + c.Sets()*way); !c.Contains(addr) {
				t.Fatalf("invalidate resize dropped in-mask line %#x", addr)
			}
		}
	}
}

func TestSetOwnerMaskWidensAgain(t *testing.T) {
	c := newTestCache(4, 4)
	c.SetOwnerMask(1, ContiguousMask(0, 2), ResizeOrphan)
	c.SetOwnerMask(1, FullMask(4), ResizeOrphan)
	if got := c.OwnerMask(1); got != FullMask(4) {
		t.Fatalf("OwnerMask after widening = %v", got)
	}
	c.ClearWayPartitions()
	c.SetOwnerMask(2, ContiguousMask(1, 3), ResizeOrphan)
	if got := c.OwnerMask(0); got != FullMask(4) {
		t.Fatalf("unconfined owner mask = %v, want full", got)
	}
}

func TestSetOwnerMaskValidation(t *testing.T) {
	c := newTestCache(4, 8)
	cases := []struct {
		name  string
		owner int
		mask  WayMask
		mode  ResizeMode
	}{
		{"negative owner", -1, FullMask(8), ResizeOrphan},
		{"owner too large", 128, FullMask(8), ResizeOrphan},
		{"zero mask", 0, 0, ResizeOrphan},
		{"mask beyond ways", 0, WayMask(1) << 8, ResizeOrphan},
		{"unknown mode", 0, FullMask(8), ResizeMode(7)},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: SetOwnerMask did not panic", tc.name)
				}
			}()
			c.SetOwnerMask(tc.owner, tc.mask, tc.mode)
		}()
	}
}

// TestVictimMaskFullEquivalence pins the differential contract every policy
// promises: under a full mask, VictimMask picks exactly the way Victim
// picks, for any interleaving of touches — including rng-draw parity for
// random replacement (two identically seeded instances stay in lockstep
// when one is driven through Victim and the other through VictimMask).
func TestVictimMaskFullEquivalence(t *testing.T) {
	const sets, ways = 8, 8
	builders := map[string]func() Policy{
		"lru":    func() Policy { return NewLRU(sets, ways) },
		"plru":   func() Policy { return NewTreePLRU(sets, ways) },
		"random": func() Policy { return NewRandomPolicy(7) },
	}
	full := FullMask(ways)
	for name, build := range builders {
		a, b := build(), build()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 4000; i++ {
			set := rng.Intn(sets)
			if rng.Intn(3) > 0 {
				way := rng.Intn(ways)
				a.Touch(set, way)
				b.Touch(set, way)
				continue
			}
			va := a.Victim(set, 0, ways)
			vb := b.VictimMask(set, full)
			if va != vb {
				t.Fatalf("%s: step %d: Victim = %d, VictimMask(full) = %d", name, i, va, vb)
			}
			a.Touch(set, va) // model the fill that follows a victim choice
			b.Touch(set, vb)
		}
	}
}

// TestVictimMaskStaysInMask: for every policy and any non-empty mask, the
// victim is a way the mask permits.
func TestVictimMaskStaysInMask(t *testing.T) {
	const sets, ways = 4, 8
	policies := map[string]Policy{
		"lru":    NewLRU(sets, ways),
		"plru":   NewTreePLRU(sets, ways),
		"random": NewRandomPolicy(3),
	}
	prop := func(raw uint8, set uint8, touches []uint16) bool {
		mask := WayMask(raw)
		if mask == 0 {
			mask = 1
		}
		s := int(set) % sets
		for name, p := range policies {
			for _, tw := range touches {
				p.Touch(int(tw)%sets, int(tw>>4)%ways)
			}
			if v := p.VictimMask(s, mask); v < 0 || v >= ways || !mask.Has(v) {
				t.Logf("%s: victim %d outside mask %v", name, v, mask)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestConfinementNeverHurtsProtectedOwner replays one fixed trace — a
// sensitive owner with a working set larger than its fair share, against an
// aggressor sweeping the whole cache — under a sequence of progressively
// smaller aggressor masks, and asserts the monotonicity the response family
// banks on: shrinking the aggressor's partition never increases the
// sensitive owner's misses.
func TestConfinementNeverHurtsProtectedOwner(t *testing.T) {
	const sets, ways = 16, 8
	trace := func(rng *rand.Rand) (owner int, addr uint64, write bool) {
		if rng.Intn(2) == 0 {
			return 0, uint64(rng.Intn(sets * ways / 2)), false // sensitive: half the cache
		}
		return 1, uint64(sets*ways + rng.Intn(sets*ways*2)), rng.Intn(4) == 0 // aggressor sweep
	}
	missesWith := func(aggMask WayMask) uint64 {
		c := newTestCache(sets, ways)
		c.SetOwnerMask(0, ContiguousMask(ways/2, ways), ResizeOrphan)
		c.SetOwnerMask(1, aggMask, ResizeOrphan)
		rng := rand.New(rand.NewSource(5))
		var sensMisses uint64
		for i := 0; i < 40_000; i++ {
			owner, addr, write := trace(rng)
			if !c.Lookup(addr, write) {
				c.Insert(addr, owner, write)
				if owner == 0 {
					sensMisses++
				}
			}
		}
		return sensMisses
	}
	prev := missesWith(FullMask(ways))
	for hi := ways; hi > 1; hi-- { // aggressor shrinks 8 -> 1 ways
		cur := missesWith(ContiguousMask(0, hi-1))
		if cur > prev {
			t.Fatalf("shrinking aggressor to %d ways raised sensitive misses %d -> %d", hi-1, prev, cur)
		}
		prev = cur
	}
}

// TestPartitionPathAllocFree pins the per-access allocation contract under
// confinement: mask lookup, the confined free-way scan, and the confined
// victim scan are all on the per-period path and must not allocate.
func TestPartitionPathAllocFree(t *testing.T) {
	c := newTestCache(16, 8)
	c.SetOwnerMask(1, WayMask(0b0011_0110), ResizeOrphan) // non-contiguous
	fillOwner(c, 0)
	var addr uint64
	if n := testing.AllocsPerRun(200, func() {
		addr++
		if !c.Lookup(addr%1024, false) {
			c.Insert(addr%1024, 1, false)
		}
		c.OwnerMask(1)
	}); n != 0 {
		t.Fatalf("confined lookup+insert allocates %v/op, want 0", n)
	}
	lru := NewLRU(16, 8)
	mask := WayMask(0b0101_1010)
	if n := testing.AllocsPerRun(200, func() {
		lru.Touch(3, int(addr)%8)
		lru.VictimMask(3, mask)
		addr++
	}); n != 0 {
		t.Fatalf("lru VictimMask allocates %v/op, want 0", n)
	}
}
