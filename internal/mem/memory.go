package mem

import "fmt"

// MainMemory models DRAM access latency with optional bandwidth contention.
// With bandwidth modelling enabled, each access occupies the (single) memory
// channel for ServiceCycles; an access issued while the channel is busy
// queues behind it, adding delay. This approximates the paper's observation
// that bus/memory-controller contention "manifests as traffic off-chip".
type MainMemory struct {
	latency      uint64
	service      uint64
	channelFree  uint64 // absolute cycle at which the channel next frees up
	accesses     uint64
	queuedCycles uint64
}

// MemoryConfig describes a MainMemory.
type MemoryConfig struct {
	// LatencyCycles is the unloaded access latency. Must be positive.
	LatencyCycles uint64
	// ServiceCycles is the channel occupancy per access; zero disables
	// bandwidth modelling (infinite bandwidth).
	ServiceCycles uint64
}

// NewMainMemory constructs a memory model.
func NewMainMemory(cfg MemoryConfig) *MainMemory {
	if cfg.LatencyCycles == 0 {
		panic(fmt.Sprintf("mem: memory latency must be positive, got %d", cfg.LatencyCycles))
	}
	return &MainMemory{latency: cfg.LatencyCycles, service: cfg.ServiceCycles}
}

// Access returns the total latency of a memory access issued at absolute
// cycle `now`, including any queueing delay under bandwidth modelling.
func (m *MainMemory) Access(now uint64) uint64 {
	m.accesses++
	if m.service == 0 {
		return m.latency
	}
	start := now
	if m.channelFree > now {
		start = m.channelFree
		m.queuedCycles += m.channelFree - now
	}
	m.channelFree = start + m.service
	return (start - now) + m.latency
}

// Accesses returns the cumulative number of accesses.
func (m *MainMemory) Accesses() uint64 { return m.accesses }

// QueuedCycles returns cumulative cycles spent queueing for the channel.
func (m *MainMemory) QueuedCycles() uint64 { return m.queuedCycles }

// Latency returns the unloaded latency.
func (m *MainMemory) Latency() uint64 { return m.latency }

// ResetStats zeroes counters but keeps channel state.
func (m *MainMemory) ResetStats() { m.accesses, m.queuedCycles = 0, 0 }
