package mem

import "fmt"

// AccessResult reports where an access was satisfied and its cost.
type AccessResult struct {
	Latency uint64 // total cycles for this access
	Level   Level  // level that satisfied the access
}

// Level identifies where in the hierarchy an access hit.
type Level int

// Hierarchy levels, innermost first.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelMemory
)

// String returns the conventional level name.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMemory:
		return "MEM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// HierarchyConfig describes a private-L1/private-L2/shared-inclusive-L3
// hierarchy for a given number of cores, mirroring Nehalem's topology at a
// documented scale (see DESIGN.md §6).
type HierarchyConfig struct {
	Cores int

	L1Sets, L1Ways int
	L2Sets, L2Ways int
	L3Sets, L3Ways int

	// Hit latencies per level, in cycles. L1 latency is charged on every
	// memory instruction; deeper latencies are charged additionally on
	// misses above them.
	L1Latency, L2Latency, L3Latency uint64

	Memory MemoryConfig

	// L3Policy optionally overrides the shared cache's replacement policy
	// factory; nil means true LRU.
	L3Policy func(sets, ways int) Policy

	// DisableL2Hints turns off the temporal hints that L2 hits send to the
	// L3 replacement state. With hints off, lines hot in a private cache
	// age to LRU in the inclusive L3 and are back-invalidated by any
	// streaming co-runner (the inclusion-victim pathology); hints model the
	// protection that miss overlap and hardware mitigations give such lines
	// on real machines.
	DisableL2Hints bool
}

// DefaultHierarchyConfig returns the scaled Nehalem-like configuration used
// throughout the evaluation: 8 KB/4-way L1, 64 KB/8-way L2, shared inclusive
// 512 KB/16-way L3 (64 B lines), 1/6/16-cycle hit latencies and 50-cycle
// memory behind a single channel with a 40-cycle service time.
//
// Latencies are deliberately compressed relative to wall-clock hardware
// ratios: cores here block on every miss, whereas the paper's out-of-order
// Nehalem overlaps much of a miss's latency with independent work, so the
// *effective* stall per miss — the quantity that shapes Figures 1 and 6 —
// is a fraction of the raw DRAM latency.
//
// The channel service time makes bandwidth a secondary contention channel:
// a lone streamer (lbm) leaves plenty of headroom, while several heavy
// missers queue moderately — reproducing the bandwidth component of
// cross-core interference that capacity sharing alone cannot model.
func DefaultHierarchyConfig(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores: cores,
		// 64B lines: 8KB/4w -> 32 sets; 64KB/8w -> 128 sets; 512KB/16w -> 512 sets.
		L1Sets: 32, L1Ways: 4,
		L2Sets: 128, L2Ways: 8,
		L3Sets: 512, L3Ways: 16,
		L1Latency: 1, L2Latency: 6, L3Latency: 16,
		Memory: MemoryConfig{LatencyCycles: 50, ServiceCycles: 40},
	}
}

// Hierarchy is the full multicore memory system. Core i owns private caches
// l1[i], l2[i]; all cores share the inclusive l3. Not safe for concurrent
// use.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*Cache
	l2  []*Cache
	l3  *Cache
	mem *MainMemory

	// Per-core counters the PMU exposes.
	llcMisses   []uint64
	llcAccesses []uint64
	l2Misses    []uint64
}

// NewHierarchy builds the hierarchy. It panics on invalid configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("mem: hierarchy needs at least one core, got %d", cfg.Cores))
	}
	h := &Hierarchy{
		cfg:         cfg,
		l1:          make([]*Cache, cfg.Cores),
		l2:          make([]*Cache, cfg.Cores),
		mem:         NewMainMemory(cfg.Memory),
		llcMisses:   make([]uint64, cfg.Cores),
		llcAccesses: make([]uint64, cfg.Cores),
		l2Misses:    make([]uint64, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1[i] = NewCache(Config{Name: fmt.Sprintf("L1.%d", i), Sets: cfg.L1Sets, Ways: cfg.L1Ways})
		h.l2[i] = NewCache(Config{Name: fmt.Sprintf("L2.%d", i), Sets: cfg.L2Sets, Ways: cfg.L2Ways})
	}
	var l3pol Policy
	if cfg.L3Policy != nil {
		l3pol = cfg.L3Policy(cfg.L3Sets, cfg.L3Ways)
	}
	h.l3 = NewCache(Config{Name: "L3", Sets: cfg.L3Sets, Ways: cfg.L3Ways, Policy: l3pol})
	return h
}

// Cores returns the number of cores the hierarchy serves.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

// Config returns the construction-time configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L3 exposes the shared cache (for partitioning and occupancy inspection).
func (h *Hierarchy) L3() *Cache { return h.l3 }

// L1 returns core's private L1.
func (h *Hierarchy) L1(core int) *Cache { return h.l1[core] }

// L2 returns core's private L2.
func (h *Hierarchy) L2(core int) *Cache { return h.l2[core] }

// Memory exposes the main-memory model.
func (h *Hierarchy) Memory() *MainMemory { return h.mem }

// Access performs one memory reference by core to line address addr at
// absolute cycle now, updating all levels (fills on misses, inclusive
// back-invalidation on L3 evictions) and the per-core LLC counters.
func (h *Hierarchy) Access(core int, addr uint64, write bool, now uint64) AccessResult {
	lat := h.cfg.L1Latency
	if h.l1[core].Lookup(addr, write) {
		return AccessResult{Latency: lat, Level: LevelL1}
	}
	lat += h.cfg.L2Latency
	if h.l2[core].Lookup(addr, write) {
		h.fillL1(core, addr, write)
		if !h.cfg.DisableL2Hints {
			h.l3.Refresh(addr)
		}
		return AccessResult{Latency: lat, Level: LevelL2}
	}
	h.l2Misses[core]++
	lat += h.cfg.L3Latency
	h.llcAccesses[core]++
	if h.l3.Lookup(addr, write) {
		h.fillL2(core, addr, write)
		h.fillL1(core, addr, write)
		return AccessResult{Latency: lat, Level: LevelL3}
	}
	// LLC miss: go to memory, fill all levels inward.
	h.llcMisses[core]++
	lat += h.mem.Access(now)
	if ev := h.l3.Insert(addr, core, write); ev.Valid {
		h.backInvalidate(ev.Addr)
	}
	h.fillL2(core, addr, write)
	h.fillL1(core, addr, write)
	return AccessResult{Latency: lat, Level: LevelMemory}
}

func (h *Hierarchy) fillL1(core int, addr uint64, write bool) {
	// Private-cache evictions need no back-invalidation (L3 is inclusive,
	// so the line is still present there).
	h.l1[core].Insert(addr, core, write)
}

func (h *Hierarchy) fillL2(core int, addr uint64, write bool) {
	h.l2[core].Insert(addr, core, write)
}

// backInvalidate enforces inclusion: a line evicted from L3 must leave
// every private cache.
func (h *Hierarchy) backInvalidate(addr uint64) {
	for i := 0; i < h.cfg.Cores; i++ {
		h.l1[i].Invalidate(addr)
		h.l2[i].Invalidate(addr)
	}
}

// SetL3OwnerMask resizes owner's L3 partition to mask. Under
// ResizeInvalidate the dropped lines are back-invalidated from every
// private cache to preserve inclusion; the return value is the number of
// L3 lines dropped (always 0 for ResizeOrphan).
func (h *Hierarchy) SetL3OwnerMask(owner int, mask WayMask, mode ResizeMode) int {
	dropped := h.l3.SetOwnerMask(owner, mask, mode)
	for i := range dropped {
		h.backInvalidate(dropped[i].Addr)
	}
	return len(dropped)
}

// LLCMisses returns core's cumulative LLC (L3) miss count. This is the
// counter a PMU LLC_MISSES event reads.
func (h *Hierarchy) LLCMisses(core int) uint64 { return h.llcMisses[core] }

// LLCAccesses returns core's cumulative L3 accesses (L2 misses that reached
// the shared cache).
func (h *Hierarchy) LLCAccesses(core int) uint64 { return h.llcAccesses[core] }

// L2Misses returns core's cumulative private-L2 miss count.
func (h *Hierarchy) L2Misses(core int) uint64 { return h.l2Misses[core] }

// FlushCore empties core's private caches and its lines in the shared L3
// (models process teardown when a batch application is relaunched).
func (h *Hierarchy) FlushCore(core int) {
	h.l1[core].Flush()
	h.l2[core].Flush()
	h.l3.FlushOwner(core)
}

// ResetCounters zeroes the per-core counters without disturbing contents.
func (h *Hierarchy) ResetCounters() {
	for i := range h.llcMisses {
		h.llcMisses[i] = 0
		h.llcAccesses[i] = 0
		h.l2Misses[i] = 0
	}
}
