package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestCache(sets, ways int) *Cache {
	return NewCache(Config{Name: "test", Sets: sets, Ways: ways})
}

func TestNewCacheValidation(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 1},
		{Sets: 3, Ways: 1},
		{Sets: -4, Ways: 1},
		{Sets: 4, Ways: 0},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%+v) did not panic", cfg)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := newTestCache(4, 2)
	if c.Lookup(100, false) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(100, 0, false)
	if !c.Lookup(100, false) {
		t.Fatal("miss after insert")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 2 accesses / 1 hit / 1 miss", s)
	}
}

func TestCacheSetMapping(t *testing.T) {
	c := newTestCache(4, 1)
	// Addresses 0 and 4 map to set 0; with 1 way the second evicts the first.
	c.Insert(0, 0, false)
	ev := c.Insert(4, 0, false)
	if !ev.Valid || ev.Addr != 0 {
		t.Errorf("evicted = %+v, want addr 0", ev)
	}
	if c.Contains(0) {
		t.Error("address 0 still present after conflict eviction")
	}
	if !c.Contains(4) {
		t.Error("address 4 missing after insert")
	}
	// Address 1 maps to set 1: no conflict.
	if ev := c.Insert(1, 0, false); ev.Valid {
		t.Errorf("unexpected eviction %+v inserting into a different set", ev)
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := newTestCache(1, 2)
	c.Insert(0, 0, false) // set 0
	c.Insert(1, 0, false)
	c.Lookup(0, false) // make 0 most-recent
	ev := c.Insert(2, 0, false)
	if ev.Addr != 1 {
		t.Errorf("evicted addr = %d, want 1 (LRU)", ev.Addr)
	}
	if !c.Contains(0) || !c.Contains(2) {
		t.Error("expected 0 and 2 resident")
	}
}

func TestCacheCrossEvictionAccounting(t *testing.T) {
	c := newTestCache(1, 2)
	c.Insert(10, 0, false)
	c.Insert(20, 1, false)
	c.Insert(30, 1, false) // evicts owner 0's line -> cross eviction
	s := c.Stats()
	if s.Evictions != 1 || s.CrossEvictions != 1 {
		t.Errorf("evictions=%d cross=%d, want 1,1", s.Evictions, s.CrossEvictions)
	}
	c.Insert(40, 1, false) // evicts an owner-1 line -> same-owner eviction
	s = c.Stats()
	if s.Evictions != 2 || s.CrossEvictions != 1 {
		t.Errorf("evictions=%d cross=%d, want 2,1", s.Evictions, s.CrossEvictions)
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := newTestCache(1, 1)
	c.Insert(5, 0, true) // dirty fill
	ev := c.Insert(6, 0, false)
	if !ev.Dirty {
		t.Error("evicted line should be dirty")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
	// Write hit dirties a clean line.
	c.Insert(7, 0, false)
	c.Lookup(7, true)
	ev = c.Insert(8, 0, false)
	if !ev.Dirty {
		t.Error("write hit did not mark line dirty")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newTestCache(2, 2)
	c.Insert(9, 0, true)
	present, dirty := c.Invalidate(9)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(9) {
		t.Error("line still present after Invalidate")
	}
	present, _ = c.Invalidate(9)
	if present {
		t.Error("second Invalidate reported presence")
	}
	if c.Stats().Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", c.Stats().Invalidations)
	}
}

func TestCacheFlushAndFlushOwner(t *testing.T) {
	c := newTestCache(4, 2)
	c.Insert(0, 0, false)
	c.Insert(1, 1, false)
	c.Insert(2, 0, false)
	c.FlushOwner(0)
	if c.Contains(0) || c.Contains(2) {
		t.Error("owner-0 lines survived FlushOwner(0)")
	}
	if !c.Contains(1) {
		t.Error("owner-1 line lost by FlushOwner(0)")
	}
	c.Flush()
	if c.Contains(1) {
		t.Error("line survived Flush")
	}
}

func TestCacheOwnerOccupancy(t *testing.T) {
	c := newTestCache(8, 2)
	for a := uint64(0); a < 6; a++ {
		c.Insert(a, int(a%2), false)
	}
	occ := c.OwnerOccupancy(2)
	if occ[0] != 3 || occ[1] != 3 {
		t.Errorf("occupancy = %v, want [3 3]", occ)
	}
}

func TestCacheWayPartitioning(t *testing.T) {
	c := newTestCache(1, 4)
	c.SetWayPartition(0, 0, 2)
	c.SetWayPartition(1, 2, 4)
	// Owner 0 fills its 2 ways then self-evicts; owner 1's lines untouched.
	c.Insert(100, 1, false)
	c.Insert(101, 1, false)
	for a := uint64(0); a < 10; a++ {
		ev := c.Insert(a, 0, false)
		if ev.Valid && ev.Owner == 1 {
			t.Fatalf("partitioned owner 0 evicted owner 1's line %d", ev.Addr)
		}
	}
	if !c.Contains(100) || !c.Contains(101) {
		t.Error("owner 1's lines evicted despite partition")
	}
	c.ClearWayPartitions()
	// Now owner 0 may claim all ways.
	evictedOther := false
	for a := uint64(10); a < 20; a++ {
		if ev := c.Insert(a, 0, false); ev.Valid && ev.Owner == 1 {
			evictedOther = true
		}
	}
	if !evictedOther {
		t.Error("after ClearWayPartitions owner 0 never evicted owner 1")
	}
}

func TestCachePartitionValidation(t *testing.T) {
	c := newTestCache(1, 4)
	bad := [][3]int{{-1, 0, 2}, {0, -1, 2}, {0, 2, 5}, {0, 3, 3}, {0, 3, 2}}
	for _, b := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetWayPartition(%v) did not panic", b)
				}
			}()
			c.SetWayPartition(b[0], b[1], b[2])
		}()
	}
}

func TestCacheResetStatsKeepsContents(t *testing.T) {
	c := newTestCache(2, 1)
	c.Insert(3, 0, false)
	c.Lookup(3, false)
	c.ResetStats()
	if s := c.Stats(); s.Accesses != 0 || s.Hits != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	if !c.Contains(3) {
		t.Error("ResetStats dropped contents")
	}
}

func TestCacheHitRate(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 0 {
		t.Error("HitRate of zero stats should be 0")
	}
	s = CacheStats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", s.HitRate())
	}
}

// Property: occupancy never exceeds capacity, per-set residency never
// exceeds associativity, and hits+misses == accesses, under arbitrary
// access streams.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed int64, setsExp, ways uint8, n uint16) bool {
		sets := 1 << (setsExp % 5) // 1..16 sets
		w := int(ways%4) + 1       // 1..4 ways
		c := newTestCache(sets, w)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n%600); i++ {
			addr := uint64(rng.Intn(sets * w * 3))
			owner := rng.Intn(3)
			if !c.Lookup(addr, rng.Intn(4) == 0) {
				c.Insert(addr, owner, false)
			}
			if rng.Intn(10) == 0 {
				c.Invalidate(uint64(rng.Intn(sets * w * 3)))
			}
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			return false
		}
		total := 0
		for _, o := range c.OwnerOccupancy(3) {
			total += o
		}
		return total <= c.LineCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: after Insert(addr), Contains(addr) is true, and an immediate
// Lookup hits.
func TestCacheInsertThenHitProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := newTestCache(16, 4)
		for _, a := range addrs {
			addr := uint64(a)
			if !c.Lookup(addr, false) {
				c.Insert(addr, 0, false)
			}
			if !c.Contains(addr) || !c.Lookup(addr, false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
