package mem

import (
	"math/rand"
	"testing"
)

func TestLRUVictimIsLeastRecentlyTouched(t *testing.T) {
	p := NewLRU(1, 4)
	for w := 0; w < 4; w++ {
		p.Touch(0, w)
	}
	p.Touch(0, 0) // order now: 1 (oldest), 2, 3, 0
	if got := p.Victim(0, 0, 4); got != 1 {
		t.Errorf("Victim = %d, want 1", got)
	}
	p.Touch(0, 1)
	if got := p.Victim(0, 0, 4); got != 2 {
		t.Errorf("Victim = %d, want 2", got)
	}
}

func TestLRUVictimRespectsRange(t *testing.T) {
	p := NewLRU(1, 8)
	for w := 0; w < 8; w++ {
		p.Touch(0, w)
	}
	// Way 0 is globally oldest, but the partition only allows [4,8).
	if got := p.Victim(0, 4, 8); got != 4 {
		t.Errorf("Victim in [4,8) = %d, want 4", got)
	}
}

func TestLRUSetsAreIndependent(t *testing.T) {
	p := NewLRU(2, 2)
	p.Touch(0, 0)
	p.Touch(0, 1)
	p.Touch(1, 1)
	p.Touch(1, 0)
	if got := p.Victim(0, 0, 2); got != 0 {
		t.Errorf("set 0 victim = %d, want 0", got)
	}
	if got := p.Victim(1, 0, 2); got != 1 {
		t.Errorf("set 1 victim = %d, want 1", got)
	}
}

func TestTreePLRUNeverVictimizesMostRecent(t *testing.T) {
	p := NewTreePLRU(1, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		w := rng.Intn(8)
		p.Touch(0, w)
		if v := p.Victim(0, 0, 8); v == w {
			t.Fatalf("iteration %d: PLRU victimized the just-touched way %d", i, w)
		}
	}
}

func TestTreePLRUVictimInRange(t *testing.T) {
	p := NewTreePLRU(4, 16)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		set := rng.Intn(4)
		p.Touch(set, rng.Intn(16))
		if v := p.Victim(set, 0, 16); v < 0 || v >= 16 {
			t.Fatalf("victim %d out of range", v)
		}
		if v := p.Victim(set, 4, 12); v < 4 || v >= 12 {
			t.Fatalf("partitioned victim %d outside [4,12)", v)
		}
	}
}

func TestTreePLRUPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTreePLRU(1, 6) did not panic")
		}
	}()
	NewTreePLRU(1, 6)
}

func TestRandomPolicyVictimInRangeAndDeterministic(t *testing.T) {
	p1 := NewRandomPolicy(99)
	p2 := NewRandomPolicy(99)
	for i := 0; i < 500; i++ {
		v1 := p1.Victim(0, 2, 10)
		v2 := p2.Victim(0, 2, 10)
		if v1 != v2 {
			t.Fatalf("same-seed random policies diverged at %d: %d vs %d", i, v1, v2)
		}
		if v1 < 2 || v1 >= 10 {
			t.Fatalf("victim %d outside [2,10)", v1)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	cases := []struct {
		p    Policy
		want string
	}{
		{NewLRU(1, 2), "lru"},
		{NewTreePLRU(1, 2), "tree-plru"},
		{NewRandomPolicy(1), "random"},
	}
	for _, c := range cases {
		if got := c.p.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}
