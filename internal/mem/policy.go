// Package mem implements the scaled multicore memory hierarchy that stands
// in for the paper's Intel Core i7 920 (Nehalem): per-core private L1 and L2
// caches and a shared, inclusive, 16-way last-level cache (L3), all
// set-associative with pluggable replacement policies, plus a main-memory
// model with optional bandwidth contention.
//
// Contention in this model is emergent, exactly as on real hardware: two
// reference streams that both exceed their private caches compete for L3
// sets and evict each other's lines, which raises both of their LLC miss
// counts — the signal the CAER heuristics consume.
package mem

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Policy selects replacement victims within one cache set. Implementations
// hold per-set state indexed by (set, way).
type Policy interface {
	// Touch records a hit or fill of the given way in the given set.
	Touch(set, way int)
	// Victim returns the way to evict from the set. The candidate ways are
	// the half-open range [loWay, hiWay) to support contiguous
	// way-partitioning; for an unpartitioned cache the range covers every
	// way.
	Victim(set, loWay, hiWay int) int
	// VictimMask returns the way to evict among the ways in mask, which is
	// never empty. For a full mask every policy must choose exactly the
	// way Victim(set, 0, ways) would — the equivalence the full-mask
	// differential pin relies on.
	VictimMask(set int, mask WayMask) int
	// Name identifies the policy in stats output.
	Name() string
}

// lruPolicy implements true LRU with per-line timestamps. Stamps live in one
// flat row-major array: the victim scan is the hottest loop in the whole
// simulator (every LLC miss on a full set runs it), and a flat slice keeps it
// a single bounds-checked stride instead of a pointer chase per way.
type lruPolicy struct {
	stamp []uint64 // sets*ways, row-major by set
	ways  int
	tick  uint64
}

// NewLRU returns a least-recently-used replacement policy for a cache with
// the given geometry.
func NewLRU(sets, ways int) Policy {
	return &lruPolicy{stamp: make([]uint64, sets*ways), ways: ways}
}

func (p *lruPolicy) Name() string { return "lru" }

func (p *lruPolicy) Touch(set, way int) {
	p.tick++
	p.stamp[set*p.ways+way] = p.tick
}

func (p *lruPolicy) Victim(set, loWay, hiWay int) int {
	row := p.stamp[set*p.ways : set*p.ways+p.ways]
	victim := loWay
	best := row[loWay]
	for w := loWay + 1; w < hiWay; w++ {
		if row[w] < best {
			best = row[w]
			victim = w
		}
	}
	return victim
}

func (p *lruPolicy) VictimMask(set int, mask WayMask) int {
	// Ascending-way scan with a strictly-less comparison: for a full mask
	// this visits the same ways in the same order as Victim(set, 0, ways)
	// and therefore breaks timestamp ties identically (lowest way wins).
	row := p.stamp[set*p.ways : set*p.ways+p.ways]
	victim := -1
	var best uint64
	for mm := mask; mm != 0; mm &= mm - 1 {
		w := bits.TrailingZeros64(uint64(mm))
		if victim < 0 || row[w] < best {
			best = row[w]
			victim = w
		}
	}
	return victim
}

// plruPolicy implements tree pseudo-LRU (the approximation real L3s use).
// Each set keeps ways-1 tree bits; Touch flips bits along the path to the
// accessed way, Victim follows the bits to a leaf.
type plruPolicy struct {
	bits [][]bool
	ways int
}

// NewTreePLRU returns a tree pseudo-LRU policy. ways must be a power of two.
func NewTreePLRU(sets, ways int) Policy {
	if ways&(ways-1) != 0 || ways == 0 {
		panic(fmt.Sprintf("mem: tree PLRU requires power-of-two ways, got %d", ways))
	}
	p := &plruPolicy{bits: make([][]bool, sets), ways: ways}
	for i := range p.bits {
		p.bits[i] = make([]bool, ways-1)
	}
	return p
}

func (p *plruPolicy) Name() string { return "tree-plru" }

func (p *plruPolicy) Touch(set, way int) {
	// Walk from root; at each level, point the bit AWAY from the touched way.
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			p.bits[set][node] = true // true: next victim on the right
			node = 2*node + 1
			hi = mid
		} else {
			p.bits[set][node] = false // false: next victim on the left
			node = 2*node + 2
			lo = mid
		}
	}
}

func (p *plruPolicy) Victim(set, loWay, hiWay int) int {
	// Partitioned victim selection falls back to scanning the subrange with
	// the tree as a tie-breaker; the common case is the full range.
	if loWay != 0 || hiWay != p.ways {
		// Follow tree but clamp into [loWay, hiWay).
		v := p.victimFull(set)
		if v >= loWay && v < hiWay {
			return v
		}
		return loWay + (v % (hiWay - loWay))
	}
	return p.victimFull(set)
}

func (p *plruPolicy) VictimMask(set int, mask WayMask) int {
	// Follow the tree; when the leaf lands outside the mask, remap it onto
	// the mask's k-th way. A full mask always takes the first branch, so
	// the choice matches Victim(set, 0, ways) exactly.
	v := p.victimFull(set)
	if mask.Has(v) {
		return v
	}
	return mask.NthWay(v % mask.Count())
}

func (p *plruPolicy) victimFull(set int) int {
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.bits[set][node] { // right
			node = 2*node + 2
			lo = mid
		} else { // left
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// randomPolicy evicts a uniformly random way; cheap and stateless, used as a
// control in replacement-policy ablations.
type randomPolicy struct {
	rng *rand.Rand
}

// NewRandomPolicy returns a random-replacement policy seeded for
// reproducibility.
func NewRandomPolicy(seed int64) Policy {
	return &randomPolicy{rng: rand.New(rand.NewSource(seed))}
}

func (p *randomPolicy) Name() string { return "random" }

func (p *randomPolicy) Touch(set, way int) {}

func (p *randomPolicy) Victim(set, loWay, hiWay int) int {
	return loWay + p.rng.Intn(hiWay-loWay)
}

func (p *randomPolicy) VictimMask(set int, mask WayMask) int {
	// One rng draw per victim, exactly like Victim: for a full mask the
	// k-th set bit is way k, so the sequence of choices is identical.
	return mask.NthWay(p.rng.Intn(mask.Count()))
}
