package mem

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestFullMask(t *testing.T) {
	if got := FullMask(1); got != 0x1 {
		t.Errorf("FullMask(1) = %v", got)
	}
	if got := FullMask(16); got != 0xffff {
		t.Errorf("FullMask(16) = %v", got)
	}
	if got := FullMask(64); got != ^WayMask(0) {
		t.Errorf("FullMask(64) = %v", got)
	}
	for _, ways := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FullMask(%d) did not panic", ways)
				}
			}()
			FullMask(ways)
		}()
	}
}

func TestContiguousMask(t *testing.T) {
	if got := ContiguousMask(0, 4); got != 0xf {
		t.Errorf("ContiguousMask(0,4) = %v", got)
	}
	if got := ContiguousMask(12, 16); got != 0xf000 {
		t.Errorf("ContiguousMask(12,16) = %v", got)
	}
	if got := ContiguousMask(0, 64); got != ^WayMask(0) {
		t.Errorf("ContiguousMask(0,64) = %v", got)
	}
	for _, r := range [][2]int{{-1, 4}, {0, 65}, {4, 4}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ContiguousMask(%d,%d) did not panic", r[0], r[1])
				}
			}()
			ContiguousMask(r[0], r[1])
		}()
	}
}

func TestWayMaskHasCountNthWay(t *testing.T) {
	m := WayMask(0b1010_0110)
	wantWays := []int{1, 2, 5, 7}
	if m.Count() != len(wantWays) {
		t.Fatalf("Count() = %d, want %d", m.Count(), len(wantWays))
	}
	for n, w := range wantWays {
		if !m.Has(w) {
			t.Errorf("Has(%d) = false", w)
		}
		if got := m.NthWay(n); got != w {
			t.Errorf("NthWay(%d) = %d, want %d", n, got, w)
		}
	}
	if m.Has(0) || m.Has(3) {
		t.Error("Has reported a clear bit as set")
	}
	if got := m.NthWay(len(wantWays)); got != -1 {
		t.Errorf("NthWay past the end = %d, want -1", got)
	}
	if got := WayMask(0).NthWay(0); got != -1 {
		t.Errorf("empty mask NthWay(0) = %d, want -1", got)
	}
}

// TestWayMaskNthWayProperty pins NthWay against the bit-twiddling-free
// definition for arbitrary masks: the n-th set bit ascending, -1 beyond.
func TestWayMaskNthWayProperty(t *testing.T) {
	prop := func(m WayMask, n uint8) bool {
		idx := int(n) % 65
		want, seen := -1, 0
		for w := 0; w < 64; w++ {
			if m.Has(w) {
				if seen == idx {
					want = w
					break
				}
				seen++
			}
		}
		return m.NthWay(idx) == want && m.Count() == bits.OnesCount64(uint64(m))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWayMaskString(t *testing.T) {
	if got := WayMask(0xf0).String(); got != "0xf0" {
		t.Errorf("String() = %q", got)
	}
}

func TestResizeModeString(t *testing.T) {
	if ResizeOrphan.String() != "orphan" || ResizeInvalidate.String() != "invalidate" {
		t.Errorf("mode names: %q, %q", ResizeOrphan.String(), ResizeInvalidate.String())
	}
	if got := ResizeMode(9).String(); got != "ResizeMode(9)" {
		t.Errorf("unknown mode = %q", got)
	}
}
