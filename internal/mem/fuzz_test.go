package mem

import (
	"testing"
)

// FuzzCachePartition drives random interleavings of partition resizes,
// fills, lookups, and invalidations against a model checker. The invariants
// it holds the cache to:
//
//  1. A fill never lands outside the inserting owner's current mask.
//  2. An invalidate-mode resize leaves no owner line outside the new mask;
//     an orphan-mode resize drops nothing.
//  3. The per-set valid counters always equal the number of valid lines
//     (the free-way fast path depends on this).
//  4. Hits + misses == accesses, and every resident line remains hittable.
//
// check.sh runs this for a 10s smoke on top of the seeded corpus below.
func FuzzCachePartition(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0x10, 0x01, 0x55})
	f.Add([]byte{0x02, 0xff, 0x03, 0x0f, 0x04, 0xf0, 0x01, 0x01})
	f.Add([]byte{0x83, 0x01, 0x01, 0x20, 0x02, 0x21, 0x83, 0xfe, 0x01, 0x22})
	f.Add([]byte{0x04, 0x00, 0x84, 0x7f, 0x00, 0x10})

	f.Fuzz(func(t *testing.T, data []byte) {
		const sets, ways, owners = 4, 8, 4
		c := newTestCache(sets, ways)
		masks := [owners]WayMask{} // model of each owner's mask; 0 = full
		maskOf := func(o int) WayMask {
			if masks[o] == 0 {
				return FullMask(ways)
			}
			return masks[o]
		}
		wayOf := func(addr uint64) int {
			set := c.setOf(addr)
			base := set * ways
			for w := 0; w < ways; w++ {
				if ln := c.lines[base+w]; ln.valid && ln.tag == addr {
					return w
				}
			}
			return -1
		}
		checkCounts := func() {
			for set := 0; set < sets; set++ {
				n := int32(0)
				for w := 0; w < ways; w++ {
					if c.lines[set*ways+w].valid {
						n++
					}
				}
				if c.valid[set] != n {
					t.Fatalf("set %d: valid counter %d, actual %d", set, c.valid[set], n)
				}
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			owner := int(op>>4) % owners
			switch op % 5 {
			case 0: // lookup
				c.Lookup(uint64(arg), op&0x80 != 0)
			case 1: // miss-then-fill
				addr := uint64(arg)
				if !c.Lookup(addr, false) {
					c.Insert(addr, owner, op&0x80 != 0)
					w := wayOf(addr)
					if w < 0 {
						t.Fatalf("inserted %#x not resident", addr)
					}
					if !maskOf(owner).Has(w) {
						t.Fatalf("owner %d (mask %v) filled way %d", owner, maskOf(owner), w)
					}
				}
			case 2: // orphan resize
				mask := WayMask(arg) & FullMask(ways)
				if mask == 0 {
					mask = 1
				}
				if dropped := c.SetOwnerMask(owner, mask, ResizeOrphan); dropped != nil {
					t.Fatalf("orphan resize dropped %d lines", len(dropped))
				}
				masks[owner] = mask
			case 3: // invalidate resize
				mask := WayMask(arg) & FullMask(ways)
				if mask == 0 {
					mask = 1
				}
				dropped := c.SetOwnerMask(owner, mask, ResizeInvalidate)
				masks[owner] = mask
				for _, ev := range dropped {
					if ev.Owner != owner || !ev.Valid {
						t.Fatalf("invalidate resize dropped foreign line %+v", ev)
					}
					if c.Contains(ev.Addr) {
						t.Fatalf("dropped line %#x still resident", ev.Addr)
					}
				}
				if n := c.StrandedLines(owner); n != 0 {
					t.Fatalf("owner %d: %d stranded lines after invalidate resize", owner, n)
				}
			case 4: // back-invalidate one address
				c.Invalidate(uint64(arg))
			}
			checkCounts()
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Fatalf("stats skew: %d hits + %d misses != %d accesses", s.Hits, s.Misses, s.Accesses)
		}
		// Every resident line is still hittable, masks notwithstanding.
		for idx, ln := range c.lines {
			if ln.valid && !c.Contains(ln.tag) {
				t.Fatalf("line %d (tag %#x) resident but not hittable", idx, ln.tag)
			}
		}
	})
}
