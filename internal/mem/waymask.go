package mem

import (
	"fmt"
	"math/bits"
)

// WayMask is a CAT-style capacity bitmask over a cache's ways: bit w set
// means the owner may fill (and select victims from) way w. Lookups hit
// anywhere regardless of masks — partitioning confines allocation, not
// visibility, exactly like hardware way-partitioning (Intel CAT). The
// 64-bit width bounds supported associativity; NewCache rejects wider
// caches.
type WayMask uint64

// FullMask returns the mask covering every way of a ways-wide cache.
func FullMask(ways int) WayMask {
	if ways <= 0 || ways > 64 {
		panic(fmt.Sprintf("mem: way mask needs 1..64 ways, got %d", ways))
	}
	if ways == 64 {
		return ^WayMask(0)
	}
	return WayMask(1)<<ways - 1
}

// ContiguousMask returns the mask covering ways [loWay, hiWay), the shape
// hardware CAT masks are restricted to.
func ContiguousMask(loWay, hiWay int) WayMask {
	if loWay < 0 || hiWay > 64 || loWay >= hiWay {
		panic(fmt.Sprintf("mem: contiguous mask [%d,%d) invalid", loWay, hiWay))
	}
	if hiWay-loWay == 64 {
		return ^WayMask(0)
	}
	return (WayMask(1)<<(hiWay-loWay) - 1) << loWay
}

// Has reports whether way is in the mask.
func (m WayMask) Has(way int) bool { return m>>uint(way)&1 != 0 }

// Count returns the number of ways in the mask.
func (m WayMask) Count() int { return bits.OnesCount64(uint64(m)) }

// NthWay returns the way index of the n-th set bit (0-based, ascending),
// or -1 when the mask has n or fewer bits. Victim selection for
// non-contiguous masks maps a policy's full-range choice through this.
func (m WayMask) NthWay(n int) int {
	for mm := m; mm != 0; mm &= mm - 1 {
		if n == 0 {
			return bits.TrailingZeros64(uint64(mm))
		}
		n--
	}
	return -1
}

// String renders the mask as a hex literal, LSB = way 0.
func (m WayMask) String() string { return fmt.Sprintf("0x%x", uint64(m)) }

// ResizeMode selects what happens to an owner's lines stranded outside its
// new mask when a partition is resized.
type ResizeMode int

const (
	// ResizeOrphan leaves stranded lines valid: they still hit on lookup
	// and are reclaimed lazily as other owners' victim selections evict
	// them. This is what hardware CAT does — masks gate fills, not
	// residency.
	ResizeOrphan ResizeMode = iota
	// ResizeInvalidate drops stranded lines immediately, returning them so
	// an inclusive hierarchy can back-invalidate private copies. Models a
	// partition controller that flushes on reassignment to give the new
	// owner clean capacity at once.
	ResizeInvalidate
)

// String returns the mode name used in telemetry labels and reports.
func (m ResizeMode) String() string {
	switch m {
	case ResizeOrphan:
		return "orphan"
	case ResizeInvalidate:
		return "invalidate"
	default:
		return fmt.Sprintf("ResizeMode(%d)", int(m))
	}
}
