package mem

import (
	"fmt"
	"math/bits"
)

// line is one cache line's bookkeeping. Addresses are line-granular: the
// simulator's unit address already names a 64-byte line, so tag == address.
type line struct {
	tag   uint64
	owner int8
	valid bool
	dirty bool
}

// CacheStats aggregates per-cache event counts. Counters are cumulative
// from construction or the last ResetStats.
type CacheStats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	CrossEvictions uint64 // evicted line's owner differed from the inserter
	Writebacks     uint64 // dirty evictions
	Invalidations  uint64 // lines dropped by back-invalidation
}

// HitRate returns Hits/Accesses, or 0 when no accesses occurred.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative cache with line-granular addresses, owner
// tracking (which core/application filled each line) and optional
// way-partitioning. It is not safe for concurrent use; the machine model
// serializes accesses.
type Cache struct {
	name     string
	sets     int
	ways     int
	setMask  uint64
	fullMask WayMask
	lines    []line  // sets*ways, row-major by set
	valid    []int32 // per-set valid-line count; lets Insert skip the free-way scan on full sets
	policy   Policy
	stats    CacheStats
	masks    []WayMask // per-owner fill mask; nil when unpartitioned
	maskUsed bool
}

// Config describes a cache's geometry.
type Config struct {
	Name   string
	Sets   int // must be a power of two
	Ways   int
	Policy Policy // defaults to LRU when nil
}

// NewCache constructs a cache. It panics on invalid geometry so that a
// misconfigured machine fails loudly at construction time.
func NewCache(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %q sets must be a positive power of two, got %d", cfg.Name, cfg.Sets))
	}
	if cfg.Ways <= 0 || cfg.Ways > 64 {
		panic(fmt.Sprintf("mem: cache %q ways must be in 1..64, got %d", cfg.Name, cfg.Ways))
	}
	p := cfg.Policy
	if p == nil {
		p = NewLRU(cfg.Sets, cfg.Ways)
	}
	return &Cache{
		name:     cfg.Name,
		sets:     cfg.Sets,
		ways:     cfg.Ways,
		setMask:  uint64(cfg.Sets - 1),
		fullMask: FullMask(cfg.Ways),
		lines:    make([]line, cfg.Sets*cfg.Ways),
		valid:    make([]int32, cfg.Sets),
		policy:   p,
	}
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineCount returns total capacity in lines.
func (c *Cache) LineCount() int { return c.sets * c.ways }

// Stats returns a copy of the cumulative counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

func (c *Cache) setOf(addr uint64) int { return int(addr & c.setMask) }

func (c *Cache) lineAt(set, way int) *line { return &c.lines[set*c.ways+way] }

// Lookup probes for addr without inserting. On a hit it updates replacement
// state and the dirty bit (for writes) and returns true.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	c.stats.Accesses++
	set := c.setOf(addr)
	base := set * c.ways
	row := c.lines[base : base+c.ways]
	for w := range row {
		ln := &row[w]
		if ln.valid && ln.tag == addr {
			c.stats.Hits++
			if write {
				ln.dirty = true
			}
			c.policy.Touch(set, w)
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Refresh bumps addr's replacement recency if the line is present, without
// touching hit/miss stats. An inclusive L3 uses this as a temporal hint on
// inner-cache hits: lines that are hot in a private L1/L2 never reach the
// L3 through demand accesses, so without hints they age to LRU and get
// evicted (back-invalidating the private copies) by any cache-hungry
// co-runner — the classic inclusion-victim pathology.
func (c *Cache) Refresh(addr uint64) bool {
	set := c.setOf(addr)
	base := set * c.ways
	row := c.lines[base : base+c.ways]
	for w := range row {
		if row[w].valid && row[w].tag == addr {
			c.policy.Touch(set, w)
			return true
		}
	}
	return false
}

// Contains probes for addr without touching stats or replacement state.
func (c *Cache) Contains(addr uint64) bool {
	set := c.setOf(addr)
	base := set * c.ways
	row := c.lines[base : base+c.ways]
	for w := range row {
		if row[w].valid && row[w].tag == addr {
			return true
		}
	}
	return false
}

// Evicted describes a line displaced by an Insert.
type Evicted struct {
	Addr  uint64
	Owner int
	Dirty bool
	Valid bool // false when the insert filled an empty way
}

// Insert fills addr into the cache on behalf of owner, evicting a victim if
// the set is full. It returns the displaced line so that an inclusive outer
// cache can propagate back-invalidations. Insert does not bump access
// counters; callers pair it with a missed Lookup.
func (c *Cache) Insert(addr uint64, owner int, write bool) Evicted {
	set := c.setOf(addr)
	mask := c.maskOf(owner)
	// Prefer an invalid way within the owner's mask. The per-set valid
	// count skips the scan entirely once the set is full — the steady state
	// for every warm cache (with partitioning the count covers the whole
	// set, so a full count still implies a full mask).
	if int(c.valid[set]) < c.ways {
		base := set * c.ways
		for mm := mask; mm != 0; mm &= mm - 1 {
			w := bits.TrailingZeros64(uint64(mm))
			ln := &c.lines[base+w]
			if !ln.valid {
				*ln = line{tag: addr, owner: int8(owner), valid: true, dirty: write}
				c.valid[set]++
				c.policy.Touch(set, w)
				return Evicted{}
			}
		}
	}
	var w int
	if mask == c.fullMask {
		// Unconfined owners keep the contiguous scan — the hottest loop in
		// the simulator — and full-mask partitions share it, which makes
		// the full-mask differential pin hold by construction.
		w = c.policy.Victim(set, 0, c.ways)
	} else {
		w = c.policy.VictimMask(set, mask)
	}
	ln := c.lineAt(set, w)
	ev := Evicted{Addr: ln.tag, Owner: int(ln.owner), Dirty: ln.dirty, Valid: true}
	c.stats.Evictions++
	if int(ln.owner) != owner {
		c.stats.CrossEvictions++
	}
	if ln.dirty {
		c.stats.Writebacks++
	}
	*ln = line{tag: addr, owner: int8(owner), valid: true, dirty: write}
	c.policy.Touch(set, w)
	return ev
}

// Invalidate drops addr if present, returning whether it was held and
// whether it was dirty. Used for inclusive back-invalidation.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.setOf(addr)
	if c.valid[set] == 0 {
		return false, false
	}
	base := set * c.ways
	row := c.lines[base : base+c.ways]
	for w := range row {
		ln := &row[w]
		if ln.valid && ln.tag == addr {
			c.stats.Invalidations++
			present, dirty = true, ln.dirty
			*ln = line{}
			c.valid[set]--
			return present, dirty
		}
	}
	return false, false
}

// Flush invalidates every line (stats for invalidations are not bumped; this
// models a context switch / relaunch, not coherence traffic).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.valid {
		c.valid[i] = 0
	}
}

// FlushOwner invalidates every line belonging to owner. Used when a batch
// application finishes and is relaunched.
func (c *Cache) FlushOwner(owner int) {
	for i := range c.lines {
		if c.lines[i].valid && int(c.lines[i].owner) == owner {
			c.lines[i] = line{}
			c.valid[i/c.ways]--
		}
	}
}

// OwnerOccupancy returns the number of valid lines held per owner id.
// Owners outside [0, maxOwner) are ignored.
func (c *Cache) OwnerOccupancy(maxOwner int) []int {
	occ := make([]int, maxOwner)
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && int(ln.owner) >= 0 && int(ln.owner) < maxOwner {
			occ[ln.owner]++
		}
	}
	return occ
}

// SetOwnerMask restricts owner's fills and victim selection to the ways in
// mask (lookups still hit anywhere). Other owners keep the full mask unless
// also confined. mode picks the fate of owner's lines already resident
// outside the new mask: ResizeOrphan leaves them valid, ResizeInvalidate
// drops them and returns them so an inclusive hierarchy can propagate
// back-invalidations. A zero mask or one with bits beyond the cache's ways
// panics. Resizes are control-plane operations — the per-access path never
// calls this.
func (c *Cache) SetOwnerMask(owner int, mask WayMask, mode ResizeMode) []Evicted {
	if owner < 0 || owner > 127 {
		panic(fmt.Sprintf("mem: partition owner %d out of range", owner))
	}
	if mask == 0 || mask&^c.fullMask != 0 {
		panic(fmt.Sprintf("mem: owner mask %v invalid for %d ways", mask, c.ways))
	}
	if owner >= len(c.masks) {
		grown := make([]WayMask, owner+1)
		for i := range grown {
			grown[i] = c.fullMask
		}
		copy(grown, c.masks)
		c.masks = grown
	}
	c.masks[owner] = mask
	c.maskUsed = true
	switch mode {
	case ResizeOrphan:
		return nil
	case ResizeInvalidate:
		var dropped []Evicted
		for set := 0; set < c.sets; set++ {
			base := set * c.ways
			for w := 0; w < c.ways; w++ {
				if mask.Has(w) {
					continue
				}
				ln := &c.lines[base+w]
				if ln.valid && int(ln.owner) == owner {
					dropped = append(dropped, Evicted{Addr: ln.tag, Owner: owner, Dirty: ln.dirty, Valid: true})
					c.stats.Invalidations++
					*ln = line{}
					c.valid[set]--
				}
			}
		}
		return dropped
	default:
		panic(fmt.Sprintf("mem: unknown resize mode %v", mode))
	}
}

// OwnerMask returns owner's current fill mask (the full mask when
// unconfined).
func (c *Cache) OwnerMask(owner int) WayMask { return c.maskOf(owner) }

// StrandedLines counts owner's valid lines resident outside its current
// mask — orphans left behind by ResizeOrphan resizes, still hittable but
// no longer refillable by their owner.
func (c *Cache) StrandedLines(owner int) int {
	mask := c.maskOf(owner)
	n := 0
	for set := 0; set < c.sets; set++ {
		base := set * c.ways
		for w := 0; w < c.ways; w++ {
			if mask.Has(w) {
				continue
			}
			ln := &c.lines[base+w]
			if ln.valid && int(ln.owner) == owner {
				n++
			}
		}
	}
	return n
}

// SetWayPartition restricts owner's fills to ways [loWay, hiWay). Other
// owners keep the full range unless also partitioned. Passing an invalid
// range panics. This is the contiguous special case of SetOwnerMask (with
// orphan resize semantics), kept for the static way-partitioning ablation
// (hardware cache QoS, cf. the paper's related work).
func (c *Cache) SetWayPartition(owner, loWay, hiWay int) {
	if owner < 0 || owner > 127 {
		panic(fmt.Sprintf("mem: partition owner %d out of range", owner))
	}
	if loWay < 0 || hiWay > c.ways || loWay >= hiWay {
		panic(fmt.Sprintf("mem: partition range [%d,%d) invalid for %d ways", loWay, hiWay, c.ways))
	}
	c.SetOwnerMask(owner, ContiguousMask(loWay, hiWay), ResizeOrphan)
}

// ClearWayPartitions removes all partitioning.
func (c *Cache) ClearWayPartitions() {
	c.masks = nil
	c.maskUsed = false
}

func (c *Cache) maskOf(owner int) WayMask {
	if !c.maskUsed || owner < 0 || owner >= len(c.masks) {
		return c.fullMask
	}
	return c.masks[owner]
}
