// Package spec defines the 21 synthetic benchmark profiles standing in for
// the C/C++ SPEC CPU2006 programs of the paper's evaluation (§6.1), plus the
// lbm adversary. Each profile composes the reference-stream generators of
// internal/workload and an execution profile (memory-instruction fraction,
// base CPI, instruction count) calibrated so that:
//
//   - the *ordering* of co-location sensitivity matches the paper's
//     Figure 1 (mcf/lbm/libquantum/omnetpp/soplex heavily penalized;
//     namd/povray/calculix/gromacs nearly unaffected), and
//   - working-set sizes relative to the scaled cache hierarchy preserve
//     each benchmark's class: private-cache-resident, L3-resident, or
//     L3-exceeding.
//
// Footprints below are denominated in 64-byte lines against the scaled
// hierarchy of mem.DefaultHierarchyConfig: L1 = 128 lines, L2 = 1024 lines,
// shared L3 = 8192 lines.
package spec

import (
	"fmt"
	"sort"

	"caer/internal/machine"
	"caer/internal/workload"
)

// Sensitivity is a benchmark's qualitative cross-core interference
// sensitivity class (paper §6.3): how much co-location with a cache-hungry
// adversary hurts it.
type Sensitivity int

const (
	// Insensitive: working set fits the private caches; co-location has
	// little effect (namd-like).
	Insensitive Sensitivity = iota
	// Moderate: working set uses the shared L3 but tolerates sharing
	// (bzip2-like).
	Moderate
	// Sensitive: working set needs most or more of the L3; co-location is
	// very costly (mcf-like).
	Sensitive
)

// String names the class.
func (s Sensitivity) String() string {
	switch s {
	case Insensitive:
		return "insensitive"
	case Moderate:
		return "moderate"
	case Sensitive:
		return "sensitive"
	default:
		return fmt.Sprintf("Sensitivity(%d)", int(s))
	}
}

// Profile is one benchmark's identity: a reference-stream builder plus
// execution parameters.
type Profile struct {
	Name  string
	Class Sensitivity
	Exec  machine.ExecProfile
	// NewGen builds the benchmark's reference stream with its footprint
	// based at `base` (so co-located benchmarks never share data, as in the
	// paper's multiprogrammed — not multithreaded — workloads).
	NewGen func(base uint64, seed int64) workload.Generator
}

// NewProcess instantiates the benchmark as a runnable process whose
// footprint starts at base.
func (p Profile) NewProcess(base uint64, seed int64) *machine.Process {
	return machine.NewProcess(p.Name, p.Exec, p.NewGen(base, seed), seed)
}

// Batch returns a copy of the profile that never self-terminates, for use
// as a relaunch-forever batch service.
func (p Profile) Batch() Profile {
	p.Exec.Instructions = 0
	return p
}

var profiles = []Profile{
	{
		// perlbench: interpreter with a hot opcode loop and occasional
		// excursions over larger tables.
		Name:  "400.perlbench",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.25, BaseCPI: 0.8, Instructions: 9_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewHotCold(
				workload.NewUniform(base, 512, 0.1),
				workload.NewUniform(base+1<<16, 1024, 0.05),
				0.95)
		},
	},
	{
		// bzip2: block-sorting compressor alternating sequential block scans
		// and random suffix references.
		Name:  "401.bzip2",
		Class: Moderate,
		Exec:  machine.ExecProfile{MemFraction: 0.3, BaseCPI: 0.8, Instructions: 6_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewPhased([]workload.Phase{
				{Gen: workload.NewStream(base, 3000, 1, 0.3), Duration: 60_000},
				{Gen: workload.NewUniform(base, 2048, 0.1), Duration: 40_000},
			})
		},
	},
	{
		// gcc: compiler with large, phase-varying IR working sets.
		Name:  "403.gcc",
		Class: Moderate,
		Exec:  machine.ExecProfile{MemFraction: 0.3, BaseCPI: 0.8, Instructions: 5_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewPhased([]workload.Phase{
				{Gen: workload.NewUniform(base, 2560, 0.15), Duration: 50_000},
				{Gen: workload.NewHotCold(
					workload.NewUniform(base+1<<16, 640, 0.1),
					workload.NewUniform(base, 2560, 0.1), 0.85), Duration: 50_000},
			})
		},
	},
	{
		// mcf: network simplex alternating resident node/arc traversals with
		// pricing sweeps over the full arc array (beyond the shared cache) —
		// the source of the pronounced LLC-miss phases in Figure 3 and the
		// most contention-sensitive benchmark in Figure 1.
		Name:  "429.mcf",
		Class: Sensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.45, BaseCPI: 0.7, Instructions: 1_600_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewPhased([]workload.Phase{
				{Gen: workload.NewHotCold(
					workload.NewUniform(base+1<<20, 1024, 0.2),
					workload.NewUniform(base, 5120, 0.1),
					0.3), Duration: 140_000},
				{Gen: workload.NewStream(base+1<<22, 10240, 1, 0.1), Duration: 45_000},
			})
		},
	},
	{
		// gobmk: game tree search over board-sized state.
		Name:  "445.gobmk",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.25, BaseCPI: 0.9, Instructions: 9_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewHotCold(
				workload.NewUniform(base, 768, 0.15),
				workload.NewUniform(base+1<<16, 768, 0.05),
				0.97)
		},
	},
	{
		// hmmer: profile HMM scoring, tight L2-resident tables.
		Name:  "456.hmmer",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.3, BaseCPI: 0.7, Instructions: 10_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewStream(base, 512, 1, 0.2)
		},
	},
	{
		// sjeng: chess search, small hash-table-dominated footprint.
		Name:  "458.sjeng",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.25, BaseCPI: 0.9, Instructions: 9_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewUniform(base, 896, 0.15)
		},
	},
	{
		// libquantum: quantum register simulation streaming a vector larger
		// than the L3 on every gate application.
		Name:  "462.libquantum",
		Class: Sensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.35, BaseCPI: 0.7, Instructions: 2_200_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewStream(base, 12288, 1, 0.35)
		},
	},
	{
		// h264ref: video encoder, hot macroblock kernel with reference-frame
		// excursions.
		Name:  "464.h264ref",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.3, BaseCPI: 0.75, Instructions: 9_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewHotCold(
				workload.NewStream(base, 640, 1, 0.25),
				workload.NewUniform(base+1<<16, 1024, 0.1),
				0.95)
		},
	},
	{
		// omnetpp: discrete event simulation referencing heap-allocated
		// events scattered across a footprint just beyond the shared cache.
		Name:  "471.omnetpp",
		Class: Sensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.4, BaseCPI: 0.8, Instructions: 2_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewUniform(base, 4608, 0.15)
		},
	},
	{
		// astar: path-finding over mid-sized graphs.
		Name:  "473.astar",
		Class: Moderate,
		Exec:  machine.ExecProfile{MemFraction: 0.35, BaseCPI: 0.8, Instructions: 4_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewHotCold(
				workload.NewUniform(base+1<<20, 512, 0.15),
				workload.NewUniform(base, 3584, 0.1),
				0.5)
		},
	},
	{
		// xalancbmk: XSLT processor with pronounced alternating phases —
		// the Figure 3 phase-plot benchmark.
		Name:  "483.xalancbmk",
		Class: Sensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.35, BaseCPI: 0.8, Instructions: 3_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewPhased([]workload.Phase{
				{Gen: workload.NewHotCold(
					workload.NewUniform(base, 5120, 0.15),
					workload.NewStream(base+1<<21, 12288, 1, 0.1),
					0.8), Duration: 120_000},
				{Gen: workload.NewStream(base+1<<20, 512, 1, 0.1), Duration: 120_000},
			})
		},
	},
	{
		// milc: lattice QCD — tight stencil kernels over small per-site
		// state plus scattered gauge-field lookups spanning the shared
		// cache.
		Name:  "433.milc",
		Class: Sensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.4, BaseCPI: 0.75, Instructions: 2_200_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewHotCold(
				workload.NewStencil(base+1<<20, 192, 4, 0.3),
				workload.NewUniform(base, 5120, 0.25),
				0.4)
		},
	},
	{
		// gromacs: molecular dynamics over compact neighbour lists.
		Name:  "435.gromacs",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.3, BaseCPI: 0.7, Instructions: 10_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewStencil(base, 192, 4, 0.2)
		},
	},
	{
		// namd: molecular dynamics, famously cache-friendly.
		Name:  "444.namd",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.3, BaseCPI: 0.65, Instructions: 11_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewStream(base, 448, 1, 0.2)
		},
	},
	{
		// dealII: finite elements, mostly resident with sparse-matrix
		// excursions.
		Name:  "447.dealII",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.3, BaseCPI: 0.75, Instructions: 8_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewHotCold(
				workload.NewStream(base, 512, 1, 0.2),
				workload.NewUniform(base+1<<16, 1024, 0.1),
				0.9)
		},
	},
	{
		// soplex: simplex LP solver scanning large sparse matrices.
		Name:  "450.soplex",
		Class: Sensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.4, BaseCPI: 0.8, Instructions: 2_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewUniform(base, 5120, 0.1)
		},
	},
	{
		// povray: ray tracer, tiny resident scene graph.
		Name:  "453.povray",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.2, BaseCPI: 0.8, Instructions: 10_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewUniform(base, 320, 0.1)
		},
	},
	{
		// calculix: structural FEM with small stencil kernels.
		Name:  "454.calculix",
		Class: Insensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.3, BaseCPI: 0.7, Instructions: 10_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewStencil(base, 256, 2, 0.2)
		},
	},
	{
		// lbm: lattice-Boltzmann — the paper's adversary. Streams a grid
		// twice the L3 with heavy writes, with a resident set of
		// distribution-function sites that enjoys reuse when run alone and
		// is destroyed by a co-runner (so lbm itself is also the most
		// slowed-down benchmark, as in the paper's Figure 1).
		Name:  "470.lbm",
		Class: Sensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.45, BaseCPI: 0.7, Instructions: 2_000_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewHotCold(
				workload.NewUniform(base+1<<20, 5120, 0.3),
				workload.NewStream(base, 16384, 1, 0.4),
				0.45)
		},
	},
	{
		// sphinx3: speech recognition alternating acoustic-model scans and
		// small search phases.
		Name:  "482.sphinx3",
		Class: Sensitive,
		Exec:  machine.ExecProfile{MemFraction: 0.35, BaseCPI: 0.8, Instructions: 2_600_000},
		NewGen: func(base uint64, seed int64) workload.Generator {
			return workload.NewPhased([]workload.Phase{
				{Gen: workload.NewUniform(base, 4608, 0.1), Duration: 100_000},
				{Gen: workload.NewStream(base+1<<20, 1024, 1, 0.1), Duration: 60_000},
			})
		},
	},
}

// paperOrder lists benchmarks in the order the paper's figures use
// (integer benchmarks first, then floating point).
var paperOrder = []string{
	"400.perlbench", "401.bzip2", "403.gcc", "429.mcf", "445.gobmk",
	"456.hmmer", "458.sjeng", "462.libquantum", "464.h264ref",
	"471.omnetpp", "473.astar", "483.xalancbmk",
	"433.milc", "435.gromacs", "444.namd", "447.dealII", "450.soplex",
	"453.povray", "454.calculix", "470.lbm", "482.sphinx3",
}

// All returns every benchmark profile in the paper's figure order.
func All() []Profile {
	out := make([]Profile, 0, len(paperOrder))
	for _, n := range paperOrder {
		p, ok := ByName(n)
		if !ok {
			panic("spec: paperOrder references unknown profile " + n)
		}
		out = append(out, p)
	}
	return out
}

// Names returns every benchmark name in the paper's figure order.
func Names() []string {
	out := make([]string, len(paperOrder))
	copy(out, paperOrder)
	return out
}

// ByName looks a profile up by its full name (e.g. "429.mcf") or its short
// name (e.g. "mcf").
func ByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range profiles {
		if shortName(p.Name) == name {
			return p, true
		}
	}
	return Profile{}, false
}

// LBM returns the paper's batch adversary profile.
func LBM() Profile {
	p, ok := ByName("470.lbm")
	if !ok {
		panic("spec: lbm profile missing")
	}
	return p
}

// ByClass returns profiles of the given sensitivity class, sorted by name.
func ByClass(c Sensitivity) []Profile {
	var out []Profile
	for _, p := range All() {
		if p.Class == c {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func shortName(full string) string {
	for i := 0; i < len(full); i++ {
		if full[i] == '.' {
			return full[i+1:]
		}
	}
	return full
}

// ShortName strips the SPEC numeric prefix: "429.mcf" -> "mcf".
func ShortName(full string) string { return shortName(full) }
