package spec

import (
	"testing"

	"caer/internal/machine"
	"caer/internal/pmu"
)

func TestAllHas21Benchmarks(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("All() = %d profiles, want 21 (the paper's C/C++ SPEC2006 set)", len(all))
	}
	seen := make(map[string]bool)
	for _, p := range all {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.NewGen == nil {
			t.Errorf("%s has no generator builder", p.Name)
		}
		if p.Exec.Instructions == 0 {
			t.Errorf("%s has no instruction count", p.Name)
		}
	}
}

func TestNamesMatchesAll(t *testing.T) {
	names := Names()
	all := All()
	if len(names) != len(all) {
		t.Fatalf("Names/All length mismatch: %d vs %d", len(names), len(all))
	}
	for i := range names {
		if names[i] != all[i].Name {
			t.Errorf("Names[%d] = %q, All[%d].Name = %q", i, names[i], i, all[i].Name)
		}
	}
}

func TestByNameFullAndShort(t *testing.T) {
	p, ok := ByName("429.mcf")
	if !ok || p.Name != "429.mcf" {
		t.Fatal("ByName full name failed")
	}
	p, ok = ByName("mcf")
	if !ok || p.Name != "429.mcf" {
		t.Fatal("ByName short name failed")
	}
	if _, ok := ByName("999.nonesuch"); ok {
		t.Error("ByName found a nonexistent benchmark")
	}
}

func TestLBMIsTheAdversary(t *testing.T) {
	p := LBM()
	if p.Name != "470.lbm" || p.Class != Sensitive {
		t.Errorf("LBM() = %q/%v", p.Name, p.Class)
	}
}

func TestBatchNeverTerminates(t *testing.T) {
	b := LBM().Batch()
	if b.Exec.Instructions != 0 {
		t.Error("Batch() kept a finite instruction count")
	}
	if LBM().Exec.Instructions == 0 {
		t.Error("Batch() mutated the original profile")
	}
}

func TestByClassPartitionsAll(t *testing.T) {
	total := 0
	for _, c := range []Sensitivity{Insensitive, Moderate, Sensitive} {
		ps := ByClass(c)
		total += len(ps)
		for _, p := range ps {
			if p.Class != c {
				t.Errorf("%s in wrong class bucket", p.Name)
			}
		}
	}
	if total != 21 {
		t.Errorf("class buckets cover %d profiles, want 21", total)
	}
}

func TestSensitivityStrings(t *testing.T) {
	if Insensitive.String() != "insensitive" || Moderate.String() != "moderate" || Sensitive.String() != "sensitive" {
		t.Error("sensitivity strings wrong")
	}
	if Sensitivity(9).String() != "Sensitivity(9)" {
		t.Error("unknown sensitivity string wrong")
	}
}

func TestShortName(t *testing.T) {
	if ShortName("429.mcf") != "mcf" {
		t.Error("ShortName failed on full name")
	}
	if ShortName("mcf") != "mcf" {
		t.Error("ShortName failed on short name")
	}
}

func TestEveryProfileRunsOnTheMachine(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := machine.New(machine.Config{Cores: 2, PeriodCycles: 20000})
			proc := p.NewProcess(0, 42)
			m.Bind(0, proc)
			for i := 0; i < 20; i++ {
				m.RunPeriod()
			}
			if proc.Retired() == 0 {
				t.Fatal("profile retired no instructions")
			}
			// Every profile must touch memory.
			if m.ReadCounter(0, pmu.EventCycles) == 0 {
				t.Fatal("no cycles consumed")
			}
		})
	}
}

// measureRetirement runs the profile for a fixed number of periods (after a
// warm-up), alone or next to an lbm adversary, and returns instructions
// retired during the measurement window.
func measureRetirement(p Profile, withAdversary bool) uint64 {
	m := machine.New(machine.Config{Cores: 2, PeriodCycles: 20000})
	proc := p.Batch().NewProcess(0, 42) // Batch(): never completes mid-window
	m.Bind(0, proc)
	if withAdversary {
		m.Bind(1, LBM().Batch().NewProcess(1<<28, 43))
	}
	for i := 0; i < 50; i++ {
		m.RunPeriod()
	}
	start := m.ReadCounter(0, pmu.EventInstrRetired)
	for i := 0; i < 300; i++ {
		m.RunPeriod()
	}
	return m.ReadCounter(0, pmu.EventInstrRetired) - start
}

func TestSensitivityClassesReflectColocationSlowdown(t *testing.T) {
	// Class sanity, the Figure 1 criterion: sensitive profiles slow down
	// substantially when co-located with lbm; insensitive profiles barely
	// notice it.
	if testing.Short() {
		t.Skip("co-location sweep is slow")
	}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			alone := measureRetirement(p, false)
			colo := measureRetirement(p, true)
			if alone == 0 || colo == 0 {
				t.Fatalf("no progress: alone=%d colo=%d", alone, colo)
			}
			slowdown := float64(alone) / float64(colo)
			switch p.Class {
			case Sensitive:
				if slowdown < 1.08 {
					t.Errorf("sensitive profile slowdown = %.3f, want >= 1.08", slowdown)
				}
			case Insensitive:
				if slowdown > 1.15 {
					t.Errorf("insensitive profile slowdown = %.3f, want <= 1.15", slowdown)
				}
			case Moderate:
				if slowdown < 1.01 {
					t.Errorf("moderate profile speeds up under contention: %.3f", slowdown)
				}
			}
		})
	}
}
