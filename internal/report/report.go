// Package report renders evaluation results as aligned text tables,
// horizontal ASCII bar charts (the terminal equivalent of the paper's bar
// figures), per-period sparklines (for the Figure 3 phase plots), and CSV
// for external plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; it panics if the width differs from the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.header) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.header)))
	}
	t.rows = append(t.rows, cells)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table with padded columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Series is one named data series across common labels.
type Series struct {
	Name   string
	Values []float64
}

// BarChart renders grouped horizontal bars, one label per group with one
// bar per series — the text rendering of the paper's grouped-bar figures.
type BarChart struct {
	Title string
	// Width is the maximum bar length in characters (default 50).
	Width int
	// Min and Max fix the value range; when both are zero the range is
	// [0, max(values)]. Values are clamped into the range.
	Min, Max float64
	// Format renders a value label (default "%.3f").
	Format string
}

// Render writes the chart for the given group labels and series. Every
// series must have len(labels) values.
func (b BarChart) Render(w io.Writer, labels []string, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: bar chart needs at least one series")
	}
	for _, s := range series {
		if len(s.Values) != len(labels) {
			return fmt.Errorf("report: series %q has %d values for %d labels", s.Name, len(s.Values), len(labels))
		}
	}
	width := b.Width
	if width == 0 {
		width = 50
	}
	format := b.Format
	if format == "" {
		format = "%.3f"
	}
	lo, hi := b.Min, b.Max
	if lo == 0 && hi == 0 {
		for _, s := range series {
			for _, v := range s.Values {
				if v > hi {
					hi = v
				}
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	labelWidth, nameWidth := 0, 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for _, s := range series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	if b.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", b.Title); err != nil {
			return err
		}
	}
	for i, label := range labels {
		for si, s := range series {
			v := s.Values[i]
			clamped := math.Min(math.Max(v, lo), hi)
			n := int(math.Round((clamped - lo) / (hi - lo) * float64(width)))
			head := label
			if si > 0 {
				head = ""
			}
			if _, err := fmt.Fprintf(w, "%-*s  %-*s |%-*s| "+format+"\n",
				labelWidth, head, nameWidth, s.Name, width, strings.Repeat("#", n), v); err != nil {
				return err
			}
		}
		if len(series) > 1 && i < len(labels)-1 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// sparkLevels are the eight block characters used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode block sparkline, downsampling (by
// bucket means) to at most width characters. An empty input yields "".
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	// Downsample into width buckets.
	buckets := values
	if len(values) > width {
		buckets = make([]float64, width)
		for i := 0; i < width; i++ {
			lo := i * len(values) / width
			hi := (i + 1) * len(values) / width
			if hi == lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range values[lo:hi] {
				sum += v
			}
			buckets[i] = sum / float64(hi-lo)
		}
	}
	minV, maxV := buckets[0], buckets[0]
	for _, v := range buckets {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	var sb strings.Builder
	for _, v := range buckets {
		idx := 0
		if maxV > minV {
			idx = int((v - minV) / (maxV - minV) * float64(len(sparkLevels)-1))
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

// Percent formats a fraction as a percentage string ("58.3%").
func Percent(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// Times formats a ratio as a multiplier string ("1.36x").
func Times(ratio float64) string { return fmt.Sprintf("%.3fx", ratio) }
