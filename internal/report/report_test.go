package report

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableRenderAlignment(t *testing.T) {
	tab := NewTable("bench", "slowdown")
	tab.AddRow("mcf", "1.36")
	tab.AddRow("namd", "1.02")
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4 (header, rule, 2 rows):\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "bench") || !strings.Contains(lines[0], "slowdown") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Errorf("rule line = %q", lines[1])
	}
	// Columns align: "slowdown" values start at the same offset.
	idx := strings.Index(lines[2], "1.36")
	if strings.Index(lines[3], "1.02") != idx {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestTableAddRowWidthMismatchPanics(t *testing.T) {
	tab := NewTable("a", "b")
	defer func() {
		if recover() == nil {
			t.Error("mismatched row did not panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestTableWriteCSV(t *testing.T) {
	tab := NewTable("bench", "value")
	tab.AddRow("mcf", "1.5")
	tab.AddRow("with,comma", "2")
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "bench,value\nmcf,1.5\n\"with,comma\",2\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestBarChartSingleSeries(t *testing.T) {
	var sb strings.Builder
	err := BarChart{Title: "Slowdown", Width: 10, Min: 1, Max: 2}.Render(&sb,
		[]string{"mcf", "namd"},
		Series{Name: "colo", Values: []float64{2.0, 1.0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Slowdown") {
		t.Error("title missing")
	}
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Errorf("full bar missing:\n%s", out)
	}
	// namd at the range minimum renders an empty bar.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "namd") && strings.Contains(line, "#") {
			t.Errorf("min-value bar not empty: %q", line)
		}
	}
}

func TestBarChartGroupedSeriesAndErrors(t *testing.T) {
	var sb strings.Builder
	err := BarChart{Width: 8}.Render(&sb,
		[]string{"a", "b"},
		Series{Name: "x", Values: []float64{1, 2}},
		Series{Name: "y", Values: []float64{2, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "|"); got != 8 {
		t.Errorf("expected 8 bar delimiters (4 bars), got %d:\n%s", got, sb.String())
	}
	if err := (BarChart{}).Render(&sb, []string{"a"}); err == nil {
		t.Error("no-series chart did not error")
	}
	err = BarChart{}.Render(&sb, []string{"a"}, Series{Name: "x", Values: []float64{1, 2}})
	if err == nil {
		t.Error("length-mismatched series did not error")
	}
}

func TestBarChartAutoRangeAndClamp(t *testing.T) {
	var sb strings.Builder
	// Auto range [0, 4]; value 8 with explicit Max 4 must clamp, not panic.
	err := BarChart{Width: 4, Max: 4}.Render(&sb,
		[]string{"v"},
		Series{Name: "s", Values: []float64{8}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "####") {
		t.Errorf("clamped bar not full: %s", sb.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty input -> %q", got)
	}
	if got := Sparkline([]float64{1, 2}, 0); got != "" {
		t.Errorf("zero width -> %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline length = %d runes, want 8: %q", utf8.RuneCountInString(s), s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline ends = %c..%c, want ▁..█", runes[0], runes[7])
	}
	// Monotone input stays monotone after rendering.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("sparkline not monotone: %q", s)
		}
	}
}

func TestSparklineDownsamples(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := Sparkline(vals, 20)
	if utf8.RuneCountInString(s) != 20 {
		t.Errorf("downsampled length = %d, want 20", utf8.RuneCountInString(s))
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5}, 3)
	if s != "▁▁▁" {
		t.Errorf("constant series = %q, want all-min", s)
	}
}

func TestFormatters(t *testing.T) {
	if got := Percent(0.583); got != "58.3%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Times(1.357); got != "1.357x" {
		t.Errorf("Times = %q", got)
	}
}
