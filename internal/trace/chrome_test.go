package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildTrace records a small two-core run with a paused stretch on core 1
// spanning periods 2..3 and a trailing paused period on core 0.
func buildTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New(2)
	for p := uint64(0); p < 5; p++ {
		cores := make([]CoreSample, 2)
		for c := range cores {
			cores[c] = CoreSample{
				LLCMisses:    1000*p + uint64(c),
				Instructions: 5000*p + uint64(c),
			}
		}
		cores[1].Paused = p == 2 || p == 3
		cores[0].Paused = p == 4
		tr.Append(p, cores)
	}
	return tr
}

// TestChromeRoundTrip is the ISSUE-mandated check: export the trace as
// Chrome JSON, parse it back, and the distinct period count must match the
// recorded length.
func TestChromeRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("write chrome: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome export is not valid JSON")
	}
	events, err := ParseChromeEvents(&buf)
	if err != nil {
		t.Fatalf("parse chrome: %v", err)
	}
	if got := PeriodCountFromChrome(events); got != tr.Len() {
		t.Fatalf("round-trip period count = %d, want %d", got, tr.Len())
	}
}

func TestChromeEventShapes(t *testing.T) {
	tr := buildTrace(t)
	events := tr.ChromeEvents()

	var meta, counters, paused int
	for _, e := range events {
		switch e.Phase {
		case "M":
			meta++
		case "C":
			counters++
		case "X":
			paused++
			if e.Name != "paused" {
				t.Errorf("X event named %q, want paused", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if meta != tr.CoreCount {
		t.Errorf("metadata events = %d, want %d", meta, tr.CoreCount)
	}
	if want := tr.CoreCount * tr.Len(); counters != want {
		t.Errorf("counter events = %d, want %d", counters, want)
	}
	// One merged stretch on core 1 (periods 2..3) and one trailing
	// open stretch on core 0 (period 4), closed at end-of-trace.
	if paused != 2 {
		t.Errorf("paused slices = %d, want 2", paused)
	}
	for _, e := range events {
		if e.Phase != "X" {
			continue
		}
		switch e.Tid {
		case 1:
			if e.Ts != 2000 || e.Dur != 2000 {
				t.Errorf("core1 paused slice ts=%v dur=%v, want 2000/2000", e.Ts, e.Dur)
			}
		case 0:
			if e.Ts != 4000 || e.Dur != 1000 {
				t.Errorf("core0 paused slice ts=%v dur=%v, want 4000/1000", e.Ts, e.Dur)
			}
		}
	}
}

func TestChromeCounterArgs(t *testing.T) {
	tr := buildTrace(t)
	for _, e := range tr.ChromeEvents() {
		if e.Phase != "C" || e.Ts != 3000 || e.Tid != 1 {
			continue
		}
		if got := e.ArgNumber("llc_misses"); got != 3001 {
			t.Errorf("llc_misses arg = %v, want 3001", got)
		}
		if got := e.ArgNumber("instructions"); got != 15001 {
			t.Errorf("instructions arg = %v, want 15001", got)
		}
		return
	}
	t.Fatal("counter event for core 1 period 3 not found")
}

func TestChromeEmptyTrace(t *testing.T) {
	tr := New(2)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("write chrome: %v", err)
	}
	events, err := ParseChromeEvents(&buf)
	if err != nil {
		t.Fatalf("parse chrome: %v", err)
	}
	if got := PeriodCountFromChrome(events); got != 0 {
		t.Errorf("empty trace period count = %d, want 0", got)
	}
}
