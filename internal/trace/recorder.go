package trace

import (
	"caer/internal/machine"
	"caer/internal/pmu"
)

// Recorder captures a machine's per-period activity into a Trace. Call
// Tick once after each machine.RunPeriod (or runtime Step).
type Recorder struct {
	m     *machine.Machine
	pmus  []*pmu.PMU
	trace *Trace
}

// NewRecorder attaches a recorder to m, arming one PMU view per core.
func NewRecorder(m *machine.Machine) *Recorder {
	r := &Recorder{m: m, trace: New(m.Cores())}
	for i := 0; i < m.Cores(); i++ {
		r.pmus = append(r.pmus, pmu.New(m, i))
	}
	return r
}

// Tick records the period that just completed.
func (r *Recorder) Tick() {
	cores := make([]CoreSample, r.m.Cores())
	for i := range cores {
		cores[i] = CoreSample{
			LLCMisses:    r.pmus[i].ReadDelta(pmu.EventLLCMisses),
			Instructions: r.pmus[i].ReadDelta(pmu.EventInstrRetired),
			Paused:       r.m.Core(i).Paused(),
		}
	}
	r.trace.Append(r.m.Periods()-1, cores)
}

// Trace returns the recording.
func (r *Recorder) Trace() *Trace { return r.trace }
