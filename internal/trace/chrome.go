package trace

import (
	"fmt"
	"io"
	"strconv"

	"caer/internal/telemetry"
)

// chromePeriodMicros maps one sampling period to Chrome trace time: the
// paper's 1 ms period is 1000 trace microseconds, matching the span
// recorder's export so both kinds of trace line up in Perfetto.
const chromePeriodMicros = 1000

// ChromeEvents converts the recorded run into Chrome trace events: per
// core, a thread-name metadata event, "C" counter events carrying the
// per-period LLC misses and instructions, and one "X" slice per contiguous
// paused stretch (the visible shape of CAER's throttling).
func (t *Trace) ChromeEvents() []telemetry.ChromeEvent {
	events := make([]telemetry.ChromeEvent, 0, t.CoreCount*(2+len(t.Records)))
	for core := 0; core < t.CoreCount; core++ {
		events = append(events, telemetry.ChromeEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: core,
			Args: map[string]any{"name": "core" + strconv.Itoa(core)},
		})
	}
	for core := 0; core < t.CoreCount; core++ {
		pausedFrom := int64(-1)
		var pausedStart uint64
		for _, r := range t.Records {
			c := r.Cores[core]
			events = append(events, telemetry.ChromeEvent{
				Name:  "pmu",
				Phase: "C",
				Ts:    float64(r.Period) * chromePeriodMicros,
				Pid:   1,
				Tid:   core,
				Args: map[string]any{
					"llc_misses":   float64(c.LLCMisses),
					"instructions": float64(c.Instructions),
				},
			})
			switch {
			case c.Paused && pausedFrom < 0:
				pausedFrom = int64(r.Period)
				pausedStart = r.Period
			case !c.Paused && pausedFrom >= 0:
				events = append(events, pausedSlice(core, pausedStart, r.Period))
				pausedFrom = -1
			}
		}
		if pausedFrom >= 0 && len(t.Records) > 0 {
			last := t.Records[len(t.Records)-1].Period
			events = append(events, pausedSlice(core, pausedStart, last+1))
		}
	}
	return events
}

// pausedSlice renders one contiguous throttled stretch [from, to).
func pausedSlice(core int, from, to uint64) telemetry.ChromeEvent {
	return telemetry.ChromeEvent{
		Name:  "paused",
		Phase: "X",
		Ts:    float64(from) * chromePeriodMicros,
		Dur:   float64(to-from) * chromePeriodMicros,
		Pid:   1,
		Tid:   core,
	}
}

// WriteChrome writes the trace as Chrome trace-event JSON, loadable by
// Perfetto and chrome://tracing.
func (t *Trace) WriteChrome(w io.Writer) error {
	if err := telemetry.WriteChromeTrace(w, t.ChromeEvents()); err != nil {
		return fmt.Errorf("trace: write chrome trace: %w", err)
	}
	return nil
}

// ParseChromeEvents parses a Chrome trace-event export produced by
// WriteChrome (or by the telemetry span recorder) back into events.
func ParseChromeEvents(r io.Reader) ([]telemetry.ChromeEvent, error) {
	return telemetry.ParseChromeTrace(r)
}

// PeriodCountFromChrome returns the number of distinct periods covered by a
// parsed Chrome export's counter events — the round-trip check that an
// exported trace carries every recorded period.
func PeriodCountFromChrome(events []telemetry.ChromeEvent) int {
	periods := make(map[float64]bool)
	for _, e := range events {
		if e.Phase == "C" {
			periods[e.Ts] = true
		}
	}
	return len(periods)
}
