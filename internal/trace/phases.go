package trace

import (
	"fmt"
	"math"
)

// Phase is one detected stable region of a per-period series.
type Phase struct {
	Start, End int // period indices, [Start, End)
	Mean       float64
}

// Len returns the phase length in periods.
func (p Phase) Len() int { return p.End - p.Start }

// DetectPhases segments a per-period series (e.g. LLC misses) into stable
// phases using sliding-window change-point detection: a boundary is placed
// where the mean of the trailing `window` periods differs from the mean of
// the leading `window` periods by more than relThreshold (relative to
// their pooled mean) and at least absThreshold. Boundaries closer than
// `window` periods apart are merged.
//
// This quantifies the phase structure the paper's Figure 3 shows for
// xalancbmk and mcf: phased benchmarks yield several long phases with very
// different means, while flat benchmarks yield a single phase.
func DetectPhases(series []float64, window int, relThreshold, absThreshold float64) []Phase {
	if window <= 0 {
		panic(fmt.Sprintf("trace: phase window %d must be positive", window))
	}
	if relThreshold < 0 || absThreshold < 0 {
		panic("trace: phase thresholds must be non-negative")
	}
	if len(series) < 2*window {
		if len(series) == 0 {
			return nil
		}
		return []Phase{{Start: 0, End: len(series), Mean: mean(series)}}
	}

	// Score every candidate split point, then keep one boundary per
	// contiguous run of above-threshold points — the locally strongest.
	type candidate struct {
		idx  int
		diff float64
	}
	var cands []candidate
	for i := window; i+window <= len(series); i++ {
		left := mean(series[i-window : i])
		right := mean(series[i : i+window])
		pooled := (left + right) / 2
		diff := math.Abs(right - left)
		if diff < absThreshold {
			continue
		}
		if pooled > 0 && diff/pooled < relThreshold {
			continue
		}
		cands = append(cands, candidate{i, diff})
	}
	var boundaries []int
	for i := 0; i < len(cands); {
		j := i
		best := cands[i]
		for j+1 < len(cands) && cands[j+1].idx-cands[j].idx < window {
			j++
			if cands[j].diff > best.diff {
				best = cands[j]
			}
		}
		boundaries = append(boundaries, best.idx)
		i = j + 1
	}

	cuts := append([]int{0}, boundaries...)
	cuts = append(cuts, len(series))
	phases := make([]Phase, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		seg := series[cuts[i]:cuts[i+1]]
		phases = append(phases, Phase{Start: cuts[i], End: cuts[i+1], Mean: mean(seg)})
	}
	return phases
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
