package trace

import (
	"bytes"
	"testing"

	"caer/internal/machine"
	"caer/internal/spec"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAppendAndSeries(t *testing.T) {
	tr := New(2)
	tr.Append(0, []CoreSample{{LLCMisses: 10, Instructions: 100}, {LLCMisses: 5, Instructions: 50, Paused: true}})
	tr.Append(1, []CoreSample{{LLCMisses: 20, Instructions: 200}, {LLCMisses: 0, Instructions: 0, Paused: true}})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	m0 := tr.MissSeries(0)
	if m0[0] != 10 || m0[1] != 20 {
		t.Errorf("MissSeries(0) = %v", m0)
	}
	i1 := tr.InstrSeries(1)
	if i1[0] != 50 || i1[1] != 0 {
		t.Errorf("InstrSeries(1) = %v", i1)
	}
	if got := tr.PausedFraction(1); got != 1 {
		t.Errorf("PausedFraction(1) = %v, want 1", got)
	}
	if got := tr.PausedFraction(0); got != 0 {
		t.Errorf("PausedFraction(0) = %v, want 0", got)
	}
}

func TestAppendWidthMismatchPanics(t *testing.T) {
	tr := New(2)
	defer func() {
		if recover() == nil {
			t.Error("mismatched record did not panic")
		}
	}()
	tr.Append(0, []CoreSample{{}})
}

func TestSeriesCoreRangePanics(t *testing.T) {
	tr := New(1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core did not panic")
		}
	}()
	tr.MissSeries(1)
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := New(3)
	for p := uint64(0); p < 50; p++ {
		tr.Append(p, []CoreSample{
			{LLCMisses: p * 3, Instructions: p * 100, Paused: p%2 == 0},
			{LLCMisses: p, Instructions: p * 7},
			{},
		})
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.CoreCount != 3 || got.Len() != 50 {
		t.Fatalf("round trip: %d cores, %d records", got.CoreCount, got.Len())
	}
	for i, r := range got.Records {
		want := tr.Records[i]
		if r.Period != want.Period {
			t.Fatalf("record %d period %d, want %d", i, r.Period, want.Period)
		}
		for c := range r.Cores {
			if r.Cores[c] != want.Cores[c] {
				t.Fatalf("record %d core %d = %+v, want %+v", i, c, r.Cores[c], want.Cores[c])
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read succeeded", name)
		}
	}
	// Truncated but valid header.
	tr := New(1)
	tr.Append(0, []CoreSample{{LLCMisses: 1}})
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestRecorderCapturesRun(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	mcf, _ := spec.ByName("mcf")
	m.Bind(0, mcf.Batch().NewProcess(0, 1))
	m.Bind(1, spec.LBM().Batch().NewProcess(1<<28, 2))
	rec := NewRecorder(m)
	for i := 0; i < 30; i++ {
		m.RunPeriod()
		rec.Tick()
	}
	tr := rec.Trace()
	if tr.Len() != 30 {
		t.Fatalf("recorded %d periods, want 30", tr.Len())
	}
	var misses, instr float64
	for _, v := range tr.MissSeries(0) {
		misses += v
	}
	for _, v := range tr.InstrSeries(0) {
		instr += v
	}
	if misses == 0 || instr == 0 {
		t.Errorf("trace empty: misses=%v instr=%v", misses, instr)
	}
	if tr.Records[29].Period != 29 {
		t.Errorf("last period = %d, want 29", tr.Records[29].Period)
	}
}

func TestDetectPhasesSynthetic(t *testing.T) {
	// Two clean phases: 100 periods at ~10, then 100 at ~500.
	series := make([]float64, 200)
	for i := range series {
		if i < 100 {
			series[i] = 10
		} else {
			series[i] = 500
		}
	}
	phases := DetectPhases(series, 10, 0.5, 20)
	if len(phases) != 2 {
		t.Fatalf("detected %d phases, want 2: %+v", len(phases), phases)
	}
	if phases[0].Mean > 50 || phases[1].Mean < 400 {
		t.Errorf("phase means = %.0f, %.0f", phases[0].Mean, phases[1].Mean)
	}
	boundary := phases[0].End
	if boundary < 90 || boundary > 110 {
		t.Errorf("boundary at %d, want ~100", boundary)
	}
	// Coverage: phases tile the series.
	if phases[0].Start != 0 || phases[len(phases)-1].End != len(series) {
		t.Error("phases do not tile the series")
	}
	if phases[0].Len()+phases[1].Len() != len(series) {
		t.Error("phase lengths do not sum to series length")
	}
}

func TestDetectPhasesFlatSeries(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = 42
	}
	phases := DetectPhases(series, 10, 0.5, 5)
	if len(phases) != 1 {
		t.Errorf("flat series produced %d phases, want 1", len(phases))
	}
}

func TestDetectPhasesShortAndEmpty(t *testing.T) {
	if got := DetectPhases(nil, 5, 0.5, 1); got != nil {
		t.Errorf("empty series -> %v", got)
	}
	short := DetectPhases([]float64{1, 2, 3}, 5, 0.5, 1)
	if len(short) != 1 || short[0].Len() != 3 {
		t.Errorf("short series -> %v", short)
	}
}

func TestDetectPhasesValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("window", func() { DetectPhases([]float64{1}, 0, 0.5, 1) })
	mustPanic("rel", func() { DetectPhases([]float64{1}, 1, -1, 1) })
	mustPanic("abs", func() { DetectPhases([]float64{1}, 1, 0.5, -1) })
}

func TestDetectPhasesOnRealBenchmark(t *testing.T) {
	// mcf's miss series must show its alternating resident/pricing phases.
	m := machine.New(machine.Config{Cores: 2})
	mcf, _ := spec.ByName("mcf")
	m.Bind(0, mcf.Batch().NewProcess(0, 1))
	rec := NewRecorder(m)
	for i := 0; i < 400; i++ {
		m.RunPeriod()
		rec.Tick()
	}
	phases := DetectPhases(rec.Trace().MissSeries(0), 8, 0.8, 50)
	if len(phases) < 3 {
		t.Errorf("mcf produced %d phases over 400 periods, want several", len(phases))
	}
	// namd is flat (after the cold-start fill, which is itself a phase
	// transition): one steady phase.
	m2 := machine.New(machine.Config{Cores: 2})
	namd, _ := spec.ByName("namd")
	m2.Bind(0, namd.Batch().NewProcess(0, 1))
	for i := 0; i < 50; i++ { // skip the cold-start transient
		m2.RunPeriod()
	}
	rec2 := NewRecorder(m2) // arms its PMUs at the current counts
	for i := 0; i < 400; i++ {
		m2.RunPeriod()
		rec2.Tick()
	}
	if got := DetectPhases(rec2.Trace().MissSeries(0), 8, 0.8, 50); len(got) != 1 {
		t.Errorf("namd produced %d phases, want 1", len(got))
	}
}
