// Package trace records full co-location runs at period granularity —
// every core's per-period LLC misses, retired instructions and throttle
// state — serializes them compactly for offline analysis, and provides the
// phase-boundary detection used to quantify the program phases the paper's
// Figure 3 shows qualitatively.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// CoreSample is one core's activity during one period.
type CoreSample struct {
	LLCMisses    uint64
	Instructions uint64
	Paused       bool
}

// Record is one period's snapshot across all cores.
type Record struct {
	Period uint64
	Cores  []CoreSample
}

// Trace is a recorded run.
type Trace struct {
	CoreCount int
	Records   []Record
}

// New creates an empty trace for the given core count.
func New(coreCount int) *Trace {
	if coreCount <= 0 {
		panic(fmt.Sprintf("trace: core count %d must be positive", coreCount))
	}
	return &Trace{CoreCount: coreCount}
}

// Append adds one period's record; the sample count must match CoreCount.
func (t *Trace) Append(period uint64, cores []CoreSample) {
	if len(cores) != t.CoreCount {
		panic(fmt.Sprintf("trace: record has %d cores, trace has %d", len(cores), t.CoreCount))
	}
	cs := make([]CoreSample, len(cores))
	copy(cs, cores)
	t.Records = append(t.Records, Record{Period: period, Cores: cs})
}

// Len returns the number of recorded periods.
func (t *Trace) Len() int { return len(t.Records) }

// MissSeries extracts core's per-period LLC misses.
func (t *Trace) MissSeries(core int) []float64 {
	return t.series(core, func(c CoreSample) float64 { return float64(c.LLCMisses) })
}

// InstrSeries extracts core's per-period retired instructions.
func (t *Trace) InstrSeries(core int) []float64 {
	return t.series(core, func(c CoreSample) float64 { return float64(c.Instructions) })
}

// PausedFraction returns the fraction of periods core spent throttled.
func (t *Trace) PausedFraction(core int) float64 {
	if len(t.Records) == 0 {
		return 0
	}
	n := 0
	for _, r := range t.Records {
		if r.Cores[core].Paused {
			n++
		}
	}
	return float64(n) / float64(len(t.Records))
}

func (t *Trace) series(core int, f func(CoreSample) float64) []float64 {
	if core < 0 || core >= t.CoreCount {
		panic(fmt.Sprintf("trace: core %d out of range [0,%d)", core, t.CoreCount))
	}
	out := make([]float64, len(t.Records))
	for i, r := range t.Records {
		out[i] = f(r.Cores[core])
	}
	return out
}

// Binary format: magic u32 | version u8 | coreCount u16 | recordCount u64,
// then per record: period u64, per core: misses u64 | instr u64 | paused u8.
const (
	traceMagic   = 0xCAE2_7A0C
	traceVersion = 1
)

// WriteTo serializes the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(traceMagic)); err != nil {
		return n, err
	}
	if err := write(uint8(traceVersion)); err != nil {
		return n, err
	}
	if err := write(uint16(t.CoreCount)); err != nil {
		return n, err
	}
	if err := write(uint64(len(t.Records))); err != nil {
		return n, err
	}
	for _, r := range t.Records {
		if err := write(r.Period); err != nil {
			return n, err
		}
		for _, c := range r.Cores {
			if err := write(c.LLCMisses); err != nil {
				return n, err
			}
			if err := write(c.Instructions); err != nil {
				return n, err
			}
			p := uint8(0)
			if c.Paused {
				p = 1
			}
			if err := write(p); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read deserializes a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", magic)
	}
	var version uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var coreCount uint16
	if err := binary.Read(br, binary.LittleEndian, &coreCount); err != nil {
		return nil, fmt.Errorf("trace: read core count: %w", err)
	}
	if coreCount == 0 {
		return nil, fmt.Errorf("trace: zero core count")
	}
	var recordCount uint64
	if err := binary.Read(br, binary.LittleEndian, &recordCount); err != nil {
		return nil, fmt.Errorf("trace: read record count: %w", err)
	}
	const maxRecords = 1 << 28 // sanity bound against corrupt headers
	if recordCount > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", recordCount)
	}
	t := New(int(coreCount))
	for i := uint64(0); i < recordCount; i++ {
		var period uint64
		if err := binary.Read(br, binary.LittleEndian, &period); err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", i, err)
		}
		cores := make([]CoreSample, coreCount)
		for c := range cores {
			var misses, instr uint64
			var paused uint8
			if err := binary.Read(br, binary.LittleEndian, &misses); err != nil {
				return nil, fmt.Errorf("trace: read record %d core %d: %w", i, c, err)
			}
			if err := binary.Read(br, binary.LittleEndian, &instr); err != nil {
				return nil, fmt.Errorf("trace: read record %d core %d: %w", i, c, err)
			}
			if err := binary.Read(br, binary.LittleEndian, &paused); err != nil {
				return nil, fmt.Errorf("trace: read record %d core %d: %w", i, c, err)
			}
			cores[c] = CoreSample{LLCMisses: misses, Instructions: instr, Paused: paused != 0}
		}
		t.Append(period, cores)
	}
	return t, nil
}
