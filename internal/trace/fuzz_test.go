package trace

import (
	"bytes"
	"testing"

	"caer/internal/telemetry"
)

// fuzzTraceSeed builds a small recorded run and exports it — the golden
// WriteChrome shape (thread-name metadata, counter events, paused slices).
func fuzzTraceSeed(tb testing.TB) []byte {
	tr := New(2)
	tr.Append(0, []CoreSample{{LLCMisses: 10, Instructions: 4000}, {LLCMisses: 900, Instructions: 2500, Paused: false}})
	tr.Append(1, []CoreSample{{LLCMisses: 12, Instructions: 4100}, {LLCMisses: 30, Instructions: 100, Paused: true}})
	tr.Append(2, []CoreSample{{LLCMisses: 11, Instructions: 4050}, {LLCMisses: 800, Instructions: 2400}})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		tb.Fatalf("seed trace: %v", err)
	}
	return buf.Bytes()
}

// FuzzParseChromeTrace fuzzes the Chrome trace-event reader used by the
// caer-trace round-trip tooling and the telemetry /trace consumers.
//
// Invariants: ParseChromeEvents never panics; accepted traces survive a
// re-encode/re-parse cycle with the same event count and period coverage;
// and PeriodCountFromChrome/ArgNumber tolerate arbitrary accepted events.
func FuzzParseChromeTrace(f *testing.F) {
	f.Add(fuzzTraceSeed(f))
	f.Add([]byte(`{"traceEvents":[]}`))
	f.Add([]byte(`{"traceEvents":[{"name":"pmu","ph":"C","ts":1000,"pid":1,"tid":0,"args":{"llc_misses":5}}]}`))
	f.Add([]byte(`{"traceEvents":[{"name":"paused","ph":"X","ts":0,"dur":3000,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`))
	f.Add([]byte(`{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"core0"}}]}`))
	f.Add([]byte(`{"traceEvents": null}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"traceEvents":[{"ts":"not a number"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ParseChromeEvents(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only the no-panic invariant applies
		}
		periods := PeriodCountFromChrome(events)
		if periods < 0 || periods > len(events) {
			t.Fatalf("period count %d out of range for %d events", periods, len(events))
		}
		for _, e := range events {
			_ = e.ArgNumber("llc_misses") // must tolerate any args shape
		}
		// Accepted traces must survive re-encode -> re-parse.
		var buf bytes.Buffer
		if err := telemetry.WriteChromeTrace(&buf, events); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ParseChromeEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of re-encoded trace failed: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round-trip changed event count: %d -> %d", len(events), len(back))
		}
		if got := PeriodCountFromChrome(back); got != periods {
			t.Fatalf("round-trip changed period coverage: %d -> %d", periods, got)
		}
	})
}
