package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewWindowPanicsOnNonPositiveCapacity(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWindow(%d) did not panic", c)
				}
			}()
			NewWindow(c)
		}()
	}
}

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(4)
	if w.Len() != 0 {
		t.Errorf("Len() = %d, want 0", w.Len())
	}
	if w.Cap() != 4 {
		t.Errorf("Cap() = %d, want 4", w.Cap())
	}
	if w.Full() {
		t.Error("empty window reports Full")
	}
	if got := w.Mean(); got != 0 {
		t.Errorf("Mean() of empty window = %v, want 0", got)
	}
	if got := w.Sum(); got != 0 {
		t.Errorf("Sum() of empty window = %v, want 0", got)
	}
}

func TestWindowPushBelowCapacity(t *testing.T) {
	w := NewWindow(5)
	w.Push(1)
	w.Push(2)
	w.Push(3)
	if w.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", w.Len())
	}
	if w.Full() {
		t.Error("window of 3/5 reports Full")
	}
	if got := w.Mean(); got != 2 {
		t.Errorf("Mean() = %v, want 2", got)
	}
	if got := w.Last(); got != 3 {
		t.Errorf("Last() = %v, want 3", got)
	}
	for i, want := range []float64{1, 2, 3} {
		if got := w.At(i); got != want {
			t.Errorf("At(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		w.Push(v)
	}
	if !w.Full() {
		t.Error("window not Full after overfilling")
	}
	want := []float64{3, 4, 5}
	got := w.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("Snapshot length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Snapshot[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if m := w.Mean(); m != 4 {
		t.Errorf("Mean() = %v, want 4", m)
	}
}

func TestWindowMeanRange(t *testing.T) {
	w := NewWindow(6)
	for _, v := range []float64{10, 20, 30, 40} {
		w.Push(v)
	}
	cases := []struct {
		from, to int
		want     float64
	}{
		{0, 4, 25},
		{0, 2, 15},
		{2, 4, 35},
		{1, 1, 0},
	}
	for _, c := range cases {
		if got := w.MeanRange(c.from, c.to); got != c.want {
			t.Errorf("MeanRange(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestWindowMeanRangeAfterWrap(t *testing.T) {
	w := NewWindow(4)
	for _, v := range []float64{1, 2, 3, 4, 5, 6} {
		w.Push(v)
	}
	// Held samples oldest-first: 3 4 5 6.
	if got := w.MeanRange(0, 2); got != 3.5 {
		t.Errorf("MeanRange(0,2) = %v, want 3.5", got)
	}
	if got := w.MeanRange(2, 4); got != 5.5 {
		t.Errorf("MeanRange(2,4) = %v, want 5.5", got)
	}
}

func TestWindowPanics(t *testing.T) {
	w := NewWindow(2)
	w.Push(1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("At(-1)", func() { w.At(-1) })
	mustPanic("At(1)", func() { w.At(1) })
	mustPanic("MeanRange(0,2)", func() { w.MeanRange(0, 2) })
	mustPanic("MeanRange(1,0)", func() { w.MeanRange(1, 0) })
	mustPanic("Last empty", func() { NewWindow(1).Last() })
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(3)
	w.Push(7)
	w.Push(8)
	w.Reset()
	if w.Len() != 0 || w.Sum() != 0 {
		t.Errorf("after Reset: Len=%d Sum=%v, want 0,0", w.Len(), w.Sum())
	}
	w.Push(5)
	if w.Mean() != 5 {
		t.Errorf("Mean after Reset+Push = %v, want 5", w.Mean())
	}
}

// Property: the O(1) running mean always matches a direct recomputation
// from the snapshot, for any push sequence and capacity.
func TestWindowMeanMatchesSnapshotProperty(t *testing.T) {
	f := func(capRaw uint8, vals []float64) bool {
		capacity := int(capRaw%16) + 1
		w := NewWindow(capacity)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes bounded so float error stays tiny.
			w.Push(math.Mod(v, 1e6))
			snap := w.Snapshot()
			var sum float64
			for _, s := range snap {
				sum += s
			}
			want := 0.0
			if len(snap) > 0 {
				want = sum / float64(len(snap))
			}
			if math.Abs(w.Mean()-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: window holds exactly the last min(len(pushes), capacity) values
// in push order.
func TestWindowRetentionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		capacity := rng.Intn(10) + 1
		n := rng.Intn(40)
		w := NewWindow(capacity)
		pushed := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := rng.Float64() * 100
			pushed = append(pushed, v)
			w.Push(v)
		}
		keep := len(pushed)
		if keep > capacity {
			keep = capacity
		}
		want := pushed[len(pushed)-keep:]
		got := w.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("trial %d: kept %d samples, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Snapshot[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}
