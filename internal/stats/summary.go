package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// All inputs must be positive; it panics otherwise. SPEC-style slowdown
// ratios are conventionally aggregated with the geometric mean.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive inputs")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// panics for p outside [0, 100]. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples (xs[i], ys[i]). It returns 0 if either series has zero variance
// or the series are shorter than two samples. It panics if the lengths
// differ.
//
// The evaluation uses Correlation to quantify the paper's Figure 3 claim:
// per-period LLC misses and instruction retirement are inversely related.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Correlation requires equal-length series")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Normalize returns xs scaled so that base maps to 1.0 (i.e. xs[i]/base).
// It panics if base is zero.
func Normalize(xs []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: Normalize by zero base")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}
