package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestHistogramMergeQuantiles pins the property the sched classifier's
// per-domain aggregation relies on: quantiles of a merged histogram equal
// quantiles of one histogram fed the union of both sample streams.
func TestHistogramMergeQuantiles(t *testing.T) {
	a := NewHistogram(0, 100, 20)
	b := NewHistogram(0, 100, 20)
	union := NewHistogram(0, 100, 20)
	// Two deliberately different shapes: a low cluster and a high cluster,
	// plus outliers on both sides.
	as := []float64{-5, 1, 3, 7, 12, 12.5, 18, 22, 40}
	bs := []float64{55, 60, 61, 75, 88, 93, 99.9, 150, 200}
	for _, v := range as {
		a.Add(v)
		union.Add(v)
	}
	for _, v := range bs {
		b.Add(v)
		union.Add(v)
	}
	a.Merge(b)
	if a.N() != union.N() {
		t.Fatalf("merged N = %d, union N = %d", a.N(), union.N())
	}
	au, ao := a.Outliers()
	uu, uo := union.Outliers()
	if au != uu || ao != uo {
		t.Fatalf("merged outliers (%d,%d) != union outliers (%d,%d)", au, ao, uu, uo)
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got, want := a.Quantile(q), union.Quantile(q)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v after merge, want %v", q, got, want)
		}
	}
	for i := 0; i < union.Buckets(); i++ {
		gc, _, _ := a.Bucket(i)
		wc, _, _ := union.Bucket(i)
		if gc != wc {
			t.Errorf("bucket %d count = %d after merge, want %d", i, gc, wc)
		}
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	empty := NewHistogram(0, 10, 5)
	// Empty ∪ empty stays empty; quantiles of an empty histogram are 0.
	other := NewHistogram(0, 10, 5)
	empty.Merge(other)
	if empty.N() != 0 {
		t.Fatalf("empty merge produced %d samples", empty.N())
	}
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram Quantile(0.5) = %v, want 0", q)
	}
	// Merging an empty histogram into a populated one is a no-op.
	h := NewHistogram(0, 10, 5)
	h.Add(2)
	h.Add(8)
	before := h.Quantile(0.5)
	h.Merge(other)
	if h.N() != 2 || h.Quantile(0.5) != before {
		t.Fatalf("no-op merge changed state: n=%d q50=%v (want 2, %v)", h.N(), h.Quantile(0.5), before)
	}
	// Merging a populated histogram into an empty one adopts it exactly.
	e2 := NewHistogram(0, 10, 5)
	e2.Merge(h)
	if e2.N() != 2 || e2.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatalf("merge into empty: n=%d q50=%v, want 2, %v", e2.N(), e2.Quantile(0.5), h.Quantile(0.5))
	}
}

// TestHistogramMergeManyEmpty pins that folding any number of empty
// histograms — interleaved with populated ones — is a no-op beyond the
// populated counts, and that MergeMany with no arguments changes nothing.
func TestHistogramMergeManyEmpty(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(3)
	before := h.Quantile(0.5)
	h.MergeMany()
	if h.N() != 1 || h.Quantile(0.5) != before {
		t.Fatalf("MergeMany() changed state: n=%d", h.N())
	}
	e1, e2, e3 := NewHistogram(0, 10, 5), NewHistogram(0, 10, 5), NewHistogram(0, 10, 5)
	e2.Add(7)
	h.MergeMany(e1, e2, e3)
	if h.N() != 2 {
		t.Fatalf("MergeMany over empties: n=%d, want 2", h.N())
	}
	if u, o := h.Outliers(); u != 0 || o != 0 {
		t.Fatalf("MergeMany over empties left outliers (%d,%d)", u, o)
	}
}

// TestHistogramMergeOrderInvariance is the fleet-aggregation property: for
// random sample streams split across several histograms, every quantile of
// the MergeMany result is identical under any merge-order permutation.
func TestHistogramMergeOrderInvariance(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const parts = 5
		hs := make([]*Histogram, parts)
		for i := range hs {
			hs[i] = NewHistogram(0, 100, 16)
			for n := rng.Intn(40); n > 0; n-- {
				hs[i].Add(rng.Float64()*140 - 20) // includes under/overflow
			}
		}
		forward := NewHistogram(0, 100, 16)
		forward.MergeMany(hs...)
		perm := rng.Perm(parts)
		shuffled := NewHistogram(0, 100, 16)
		for _, i := range perm {
			shuffled.Merge(hs[i])
		}
		if forward.N() != shuffled.N() {
			return false
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if forward.Quantile(q) != shuffled.Quantile(q) {
				return false
			}
		}
		for i := 0; i < forward.Buckets(); i++ {
			fc, _, _ := forward.Bucket(i)
			sc, _, _ := shuffled.Bucket(i)
			if fc != sc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	cases := []*Histogram{
		NewHistogram(0, 50, 20),  // different max
		NewHistogram(1, 100, 20), // different min
		NewHistogram(0, 100, 10), // different bucket count
	}
	for i, other := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: merge of mismatched geometry did not panic", i)
				}
			}()
			h := NewHistogram(0, 100, 20)
			h.Merge(other)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("merge with nil histogram did not panic")
			}
		}()
		NewHistogram(0, 100, 20).Merge(nil)
	}()
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0, 10, 4)
	for _, v := range []float64{-1, 2, 5, 20} {
		h.Add(v)
	}
	h.Reset()
	if h.N() != 0 {
		t.Fatalf("Reset left %d samples", h.N())
	}
	u, o := h.Outliers()
	if u != 0 || o != 0 {
		t.Fatalf("Reset left outliers (%d,%d)", u, o)
	}
	h.Add(7)
	if got := h.Quantile(1); got < 6 || got > 8 {
		t.Fatalf("post-Reset Quantile(1) = %v, want ~7", got)
	}
}

// TestRunningMerge pins that Merge equals sequential Adds for count, mean,
// variance, min, and max.
func TestRunningMerge(t *testing.T) {
	as := []float64{3, 1, 4, 1, 5, 9, 2.5}
	bs := []float64{-2, 7, 7, 0.5}
	var a, b, seq Running
	for _, v := range as {
		a.Add(v)
		seq.Add(v)
	}
	for _, v := range bs {
		b.Add(v)
		seq.Add(v)
	}
	a.Merge(b)
	if a.N() != seq.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), seq.N())
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"mean", a.Mean(), seq.Mean()},
		{"variance", a.Variance(), seq.Variance()},
		{"min", a.Min(), seq.Min()},
		{"max", a.Max(), seq.Max()},
	} {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("merged %s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var empty, pop Running
	pop.Add(4)
	pop.Add(6)

	// Populated ∪ empty: unchanged.
	before := pop
	pop.Merge(empty)
	if pop != before {
		t.Fatalf("merge with empty changed accumulator: %+v != %+v", pop, before)
	}
	// Empty ∪ populated: adopts exactly.
	empty.Merge(pop)
	if empty.N() != 2 || empty.Mean() != 5 || empty.Min() != 4 || empty.Max() != 6 {
		t.Fatalf("merge into empty: n=%d mean=%v min=%v max=%v", empty.N(), empty.Mean(), empty.Min(), empty.Max())
	}
	// Empty ∪ empty: still empty, stats all zero.
	var e1, e2 Running
	e1.Merge(e2)
	if e1.N() != 0 || e1.Mean() != 0 || e1.Variance() != 0 {
		t.Fatalf("empty merge not empty: %+v", e1)
	}
}
