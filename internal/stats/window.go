// Package stats provides small statistical building blocks used throughout
// the CAER runtime and its evaluation harness: fixed-size sliding windows,
// running aggregates, and summary statistics.
//
// The CAER heuristics (Algorithms 1 and 2 of the paper) operate on windows
// of per-period last-level-cache miss samples; Window is the direct
// implementation of the "l_window" / "r_window" structures in those
// algorithms.
package stats

import "fmt"

// Window is a fixed-capacity sliding window of float64 samples. Pushing a
// sample when the window is full evicts the oldest sample. The zero value is
// not usable; construct with NewWindow.
//
// Window additionally maintains the running sum so that Mean is O(1), which
// matters because the CAER engine recomputes window means every sampling
// period (1 ms in the paper's configuration).
type Window struct {
	buf   []float64
	head  int // index of the oldest sample
	count int // number of valid samples, <= len(buf)
	sum   float64
}

// NewWindow returns an empty window holding at most capacity samples.
// It panics if capacity is not positive.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("stats: window capacity must be positive, got %d", capacity))
	}
	return &Window{buf: make([]float64, capacity)}
}

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Len returns the number of samples currently held.
func (w *Window) Len() int { return w.count }

// Full reports whether the window holds Cap() samples.
func (w *Window) Full() bool { return w.count == len(w.buf) }

// Push appends a sample, evicting the oldest if the window is full.
func (w *Window) Push(v float64) {
	if w.count == len(w.buf) {
		w.sum -= w.buf[w.head]
		w.buf[w.head] = v
		w.sum += v
		w.head = (w.head + 1) % len(w.buf)
		return
	}
	w.buf[(w.head+w.count)%len(w.buf)] = v
	w.sum += v
	w.count++
}

// At returns the i-th sample, where 0 is the oldest held sample.
// It panics if i is out of range.
func (w *Window) At(i int) float64 {
	if i < 0 || i >= w.count {
		panic(fmt.Sprintf("stats: window index %d out of range [0,%d)", i, w.count))
	}
	return w.buf[(w.head+i)%len(w.buf)]
}

// Last returns the most recently pushed sample.
// It panics if the window is empty.
func (w *Window) Last() float64 {
	if w.count == 0 {
		panic("stats: Last on empty window")
	}
	return w.At(w.count - 1)
}

// Mean returns the arithmetic mean of held samples, or 0 for an empty window.
func (w *Window) Mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum / float64(w.count)
}

// Sum returns the sum of held samples.
func (w *Window) Sum() float64 { return w.sum }

// MeanRange returns the mean of samples in [from, to) by window position,
// where position 0 is the oldest held sample. It returns 0 for an empty
// range. It panics if the range is invalid.
//
// This implements the two sub-window averages of the Burst-Shutter
// algorithm: the steady average over [0, switch_point) and the burst
// average over [switch_point, end_point).
func (w *Window) MeanRange(from, to int) float64 {
	if from < 0 || to > w.count || from > to {
		panic(fmt.Sprintf("stats: invalid window range [%d,%d) with %d samples", from, to, w.count))
	}
	if from == to {
		return 0
	}
	var s float64
	for i := from; i < to; i++ {
		s += w.At(i)
	}
	return s / float64(to-from)
}

// Reset discards all samples, keeping capacity.
func (w *Window) Reset() {
	w.head = 0
	w.count = 0
	w.sum = 0
	for i := range w.buf {
		w.buf[i] = 0
	}
}

// Snapshot returns the held samples oldest-first in a freshly allocated
// slice. It is intended for logging and tests, not hot paths.
func (w *Window) Snapshot() []float64 {
	out := make([]float64, w.count)
	for i := 0; i < w.count; i++ {
		out[i] = w.At(i)
	}
	return out
}
