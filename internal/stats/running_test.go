package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Errorf("empty Running not all-zero: n=%d mean=%v var=%v", r.N(), r.Mean(), r.Variance())
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if got := r.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic set is 32/7.
	if got, want := r.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min,Max = %v,%v, want 2,9", r.Min(), r.Max())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(-3.5)
	if r.Mean() != -3.5 || r.Min() != -3.5 || r.Max() != -3.5 {
		t.Errorf("single-sample stats wrong: %+v", r)
	}
	if r.Variance() != 0 {
		t.Errorf("Variance of one sample = %v, want 0", r.Variance())
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(2)
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 {
		t.Errorf("Reset did not clear: %+v", r)
	}
}

// Property: Welford mean/variance agree with the naive two-pass formulas.
func TestRunningMatchesNaiveProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vals = append(vals, math.Mod(v, 1e4))
		}
		if len(vals) < 2 {
			return true
		}
		var r Running
		for _, v := range vals {
			r.Add(v)
		}
		m := Mean(vals)
		var ss float64
		for _, v := range vals {
			ss += (v - m) * (v - m)
		}
		wantVar := ss / float64(len(vals)-1)
		tol := 1e-8 * (1 + math.Abs(wantVar))
		return math.Abs(r.Mean()-m) < 1e-9*(1+math.Abs(m)) && math.Abs(r.Variance()-wantVar) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestEWMAPrimingAndSmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Primed() {
		t.Error("fresh EWMA reports Primed")
	}
	e.Add(10)
	if !e.Primed() || e.Value() != 10 {
		t.Errorf("after first Add: primed=%v value=%v", e.Primed(), e.Value())
	}
	e.Add(20)
	if got := e.Value(); got != 15 {
		t.Errorf("Value = %v, want 15", got)
	}
	e.Add(15)
	if got := e.Value(); got != 15 {
		t.Errorf("Value = %v, want 15", got)
	}
	e.Reset()
	if e.Primed() || e.Value() != 0 {
		t.Errorf("after Reset: primed=%v value=%v", e.Primed(), e.Value())
	}
}

func TestEWMAAlphaOneTracksLastSample(t *testing.T) {
	e := NewEWMA(1)
	for _, v := range []float64{3, 9, -4, 7} {
		e.Add(v)
		if e.Value() != v {
			t.Errorf("alpha=1 EWMA = %v, want %v", e.Value(), v)
		}
	}
}

// Property: EWMA of a constant series is that constant, and the value always
// lies within the [min, max] envelope of the inputs.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(alphaRaw uint8, raw []float64) bool {
		alpha := (float64(alphaRaw%100) + 1) / 100
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 1e6)
			e.Add(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
