package stats

import "math"

// Running accumulates streaming summary statistics (count, mean, variance,
// min, max) without storing samples, using Welford's algorithm for numerical
// stability. The zero value is an empty accumulator ready for use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (r *Running) Add(v float64) {
	r.n++
	if r.n == 1 {
		r.mean = v
		r.min = v
		r.max = v
		return
	}
	d := v - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (v - r.mean)
	if v < r.min {
		r.min = v
	}
	if v > r.max {
		r.max = v
	}
}

// N returns the number of samples added.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 when empty.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the minimum sample, or 0 when empty.
func (r *Running) Min() float64 { return r.min }

// Max returns the maximum sample, or 0 when empty.
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Reset returns the accumulator to its empty state.
func (r *Running) Reset() { *r = Running{} }

// Merge folds other's samples into r using Chan et al.'s parallel variance
// combination, as if every sample of both accumulators had been Added to r.
// Merging an empty accumulator (in either direction) is exact. The sched
// classifier merges per-application summaries into per-domain summaries
// this way.
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	n1, n2 := float64(r.n), float64(other.n)
	d := other.mean - r.mean
	n := n1 + n2
	r.m2 += other.m2 + d*d*n1*n2/n
	r.mean += d * n2 / n
	r.n += other.n
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: higher alpha weights recent samples more heavily. The
// zero value is invalid; construct with NewEWMA.
//
// The adaptive red-light/green-light response uses an EWMA of detection
// outcomes to decide whether detections are "consistently producing the
// same result" (paper §5).
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor.
// It panics unless 0 < alpha <= 1.
func NewEWMA(alpha float64) *EWMA {
	if !(alpha > 0 && alpha <= 1) {
		panic("stats: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates one sample; the first sample primes the average.
func (e *EWMA) Add(v float64) {
	if !e.primed {
		e.value = v
		e.primed = true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Value returns the current average, or 0 before any sample.
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one sample has been added.
func (e *EWMA) Primed() bool { return e.primed }

// Reset discards state, keeping alpha.
func (e *EWMA) Reset() { e.value, e.primed = 0, false }
