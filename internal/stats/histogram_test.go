package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero buckets", func() { NewHistogram(0, 1, 0) })
	mustPanic("empty range", func() { NewHistogram(1, 1, 4) })
	mustPanic("inverted range", func() { NewHistogram(2, 1, 4) })
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5) // buckets of width 2
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 100} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Errorf("N = %d, want 8", h.N())
	}
	wantCounts := []uint64{2, 1, 1, 0, 1}
	for i, want := range wantCounts {
		c, lo, hi := h.Bucket(i)
		if c != want {
			t.Errorf("bucket %d [%v,%v) = %d, want %d", i, lo, hi, c, want)
		}
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers = %d,%d, want 1,2", under, over)
	}
	if h.Buckets() != 5 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
}

func TestHistogramBucketRangePanics(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range bucket did not panic")
		}
	}()
	h.Bucket(2)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	cases := []struct{ q, want, tol float64 }{
		{0.5, 50, 2},
		{0.9, 90, 2},
		{0.0, 0, 1},
		{1.0, 100, 1},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("Quantile(%v) = %v, want %v±%v", c.q, got, c.want, c.tol)
		}
	}
	if got := NewHistogram(0, 1, 2).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("quantile > 1 did not panic")
		}
	}()
	h.Quantile(1.5)
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(-5)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(9)
	var sb strings.Builder
	if err := h.Render(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "< min") || !strings.Contains(out, ">= max") {
		t.Errorf("outlier rows missing:\n%s", out)
	}
	if !strings.Contains(out, "##########") {
		t.Errorf("peak bucket bar not full width:\n%s", out)
	}
}

// Property: bucket counts plus outliers always equal N, and quantiles are
// monotone in q.
func TestHistogramInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-50, 50, 20)
		n := int(nRaw % 500)
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64() * 40)
		}
		var sum uint64
		for i := 0; i < h.Buckets(); i++ {
			c, _, _ := h.Bucket(i)
			sum += c
		}
		under, over := h.Outliers()
		if sum+under+over != h.N() {
			return false
		}
		prev := h.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are merge-invariant — splitting one sample stream
// across k same-geometry histograms and merging them reproduces the
// single-histogram quantiles exactly. This is the contract the SLO
// engine, the fleet's scraped-bucket p99, and the doctor all lean on when
// they merge per-service or per-machine distributions before calling
// Quantile.
func TestQuantileMergeInvarianceProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 800)
		k := int(kRaw%4) + 2
		whole := NewHistogram(0, 100, 25)
		parts := make([]*Histogram, k)
		for i := range parts {
			parts[i] = NewHistogram(0, 100, 25)
		}
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()*35 + 50 // includes under/overflow samples
			whole.Add(v)
			parts[rng.Intn(k)].Add(v)
		}
		merged := parts[0]
		for _, part := range parts[1:] {
			merged.Merge(part)
		}
		if merged.N() != whole.N() {
			return false
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if merged.Quantile(q) != whole.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
