package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{4}); got != 4 {
		t.Errorf("GeoMean([4]) = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean([1,4]) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 8, 4}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("GeoMean([2,8,4]) = %v, want 4", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GeoMean with non-positive input did not panic")
			}
		}()
		GeoMean([]float64{1, 0})
	}()
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{40, 29}, // rank 1.6 -> 20 + 0.6*(35-20)
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 90); got != 7 {
		t.Errorf("Percentile(single) = %v, want 7", got)
	}
	// Input must not be reordered.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", orig)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Percentile(101) did not panic")
			}
		}()
		Percentile(xs, 101)
	}()
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	pos := []float64{2, 4, 6, 8, 10}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, pos); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Correlation(perfect positive) = %v, want 1", got)
	}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Correlation(perfect negative) = %v, want -1", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5, 5}); got != 0 {
		t.Errorf("Correlation(constant) = %v, want 0", got)
	}
	if got := Correlation([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("Correlation(short) = %v, want 0", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Correlation length mismatch did not panic")
			}
		}()
		Correlation(xs, xs[:3])
	}()
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 8}, 2)
	want := []float64{1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Normalize by zero did not panic")
			}
		}()
		Normalize([]float64{1}, 0)
	}()
}

// Property: geomean of positive values lies between min and max.
func TestGeoMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			xs = append(xs, float64(v)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: correlation is always in [-1, 1] and symmetric in its arguments.
func TestCorrelationRangeSymmetryProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			x, y := raw[i], raw[n+i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				return true
			}
			xs[i], ys[i] = math.Mod(x, 1e6), math.Mod(y, 1e6)
		}
		c := Correlation(xs, ys)
		if c < -1-1e-9 || c > 1+1e-9 {
			return false
		}
		return almostEqual(c, Correlation(ys, xs), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
