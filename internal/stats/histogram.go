package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram bins float64 samples into fixed-width buckets over [min, max),
// with underflow/overflow buckets at the ends. It summarizes per-period
// PMU sample distributions (e.g. how a benchmark's LLC misses per period
// are distributed across its phases).
type Histogram struct {
	min, max float64
	width    float64
	buckets  []uint64
	under    uint64
	over     uint64
	n        uint64
}

// NewHistogram creates a histogram with `buckets` equal-width bins over
// [min, max). It panics on a non-positive bucket count or an empty range.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic(fmt.Sprintf("stats: histogram needs positive bucket count, got %d", buckets))
	}
	if !(max > min) {
		panic(fmt.Sprintf("stats: histogram range [%v,%v) is empty", min, max))
	}
	return &Histogram{
		min: min, max: max,
		width:   (max - min) / float64(buckets),
		buckets: make([]uint64, buckets),
	}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.n++
	switch {
	case v < h.min:
		h.under++
	case v >= h.max:
		h.over++
	default:
		idx := int((v - h.min) / h.width)
		if idx >= len(h.buckets) { // float edge case at the top boundary
			idx = len(h.buckets) - 1
		}
		h.buckets[idx]++
	}
}

// AddN records n samples of value v at once. Aggregation paths (e.g.
// converting telemetry's atomic bucket counts into a Histogram for quantile
// math) use this to replay bucketed counts without a per-sample loop.
func (h *Histogram) AddN(v float64, n uint64) {
	if n == 0 {
		return
	}
	h.n += n
	switch {
	case v < h.min:
		h.under += n
	case v >= h.max:
		h.over += n
	default:
		idx := int((v - h.min) / h.width)
		if idx >= len(h.buckets) { // float edge case at the top boundary
			idx = len(h.buckets) - 1
		}
		h.buckets[idx] += n
	}
}

// N returns the total sample count.
func (h *Histogram) N() uint64 { return h.n }

// Bucket returns bucket i's count and its [lo, hi) range.
func (h *Histogram) Bucket(i int) (count uint64, lo, hi float64) {
	if i < 0 || i >= len(h.buckets) {
		panic(fmt.Sprintf("stats: histogram bucket %d out of range [0,%d)", i, len(h.buckets)))
	}
	return h.buckets[i], h.min + float64(i)*h.width, h.min + float64(i+1)*h.width
}

// Buckets returns the number of (in-range) buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (under, over uint64) { return h.under, h.over }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) by
// linear interpolation within the containing bucket. Underflow samples
// count as min, overflow as max. It panics for q outside [0,1] and returns
// 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if h.n == 0 {
		return 0
	}
	target := q * float64(h.n)
	cum := float64(h.under)
	if target <= cum {
		return h.min
	}
	for i, c := range h.buckets {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.min + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.max
}

// Merge adds other's counts into h. Both histograms must have identical
// bucket geometry (range and bucket count); it panics otherwise. The sched
// classifier merges per-application miss histograms into per-domain
// aggregates this way, so quantiles of the merge equal quantiles of the
// union of the underlying sample streams. Merging an empty histogram is a
// no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		panic("stats: Merge with nil histogram")
	}
	if h.min != other.min || h.max != other.max || len(h.buckets) != len(other.buckets) {
		panic(fmt.Sprintf("stats: Merge of mismatched histograms [%v,%v)x%d vs [%v,%v)x%d",
			h.min, h.max, len(h.buckets), other.min, other.max, len(other.buckets)))
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.under += other.under
	h.over += other.over
	h.n += other.n
}

// MergeMany folds every given histogram into h in order. Merge is
// commutative and associative on the counts, so the result — including
// every quantile — is independent of merge order; fleet-wide aggregation
// (N machines' per-job latency histograms into one distribution) relies on
// that. Merging an empty histogram is a no-op.
func (h *Histogram) MergeMany(others ...*Histogram) {
	for _, o := range others {
		h.Merge(o)
	}
}

// Reset zeroes all counts, keeping the bucket geometry.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under, h.over, h.n = 0, 0, 0
}

// Render writes an ASCII histogram, one bucket per line, bars scaled to
// the largest bucket.
func (h *Histogram) Render(w io.Writer, barWidth int) error {
	if barWidth <= 0 {
		barWidth = 40
	}
	var peak uint64 = 1
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	if h.under > 0 {
		if _, err := fmt.Fprintf(w, "%12s  %d\n", "< min", h.under); err != nil {
			return err
		}
	}
	for i := range h.buckets {
		c, lo, _ := h.Bucket(i)
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(peak)*float64(barWidth))))
		if _, err := fmt.Fprintf(w, "%12.1f  %-*s %d\n", lo, barWidth, bar, c); err != nil {
			return err
		}
	}
	if h.over > 0 {
		if _, err := fmt.Fprintf(w, "%12s  %d\n", ">= max", h.over); err != nil {
			return err
		}
	}
	return nil
}
