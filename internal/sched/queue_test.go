package sched

import "testing"

func TestJobQueueFIFO(t *testing.T) {
	q := newJobQueue(3)
	if q.len() != 0 || q.peek() != -1 {
		t.Fatal("fresh queue not empty")
	}
	q.push(10)
	q.push(11)
	q.push(12)
	if q.len() != 3 || q.peek() != 10 {
		t.Fatalf("len=%d peek=%d, want 3, 10", q.len(), q.peek())
	}
	// Wrap the ring: pop two, push two, and order must survive.
	if q.pop() != 10 || q.pop() != 11 {
		t.Fatal("pop order wrong")
	}
	q.push(13)
	q.push(14)
	for i, want := range []int{12, 13, 14} {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d = %d, want %d", i, got, want)
		}
	}
	if q.len() != 0 || q.peek() != -1 {
		t.Error("drained queue not empty")
	}
}

func TestJobQueuePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("negative capacity", func() { newJobQueue(-1) })
	mustPanic("pop empty", func() { newJobQueue(2).pop() })
}

// TestJobQueueGrowth pins that push past the initial capacity grows the
// ring (fleet dispatch submits mid-run, beyond the pre-start job count)
// and that FIFO order survives growth from a wrapped state.
func TestJobQueueGrowth(t *testing.T) {
	q := newJobQueue(2)
	q.push(0)
	q.push(1)
	if q.pop() != 0 {
		t.Fatal("pop order wrong before growth")
	}
	q.push(2) // wraps
	q.push(3) // grows from a wrapped layout
	q.push(4)
	for i, want := range []int{1, 2, 3, 4} {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d = %d after growth, want %d", i, got, want)
		}
	}
	if q.len() != 0 {
		t.Fatal("drained grown queue not empty")
	}
}

// TestJobQueueRemove pins the withdrawal path: remove deletes the first
// occurrence, preserves FIFO order of the remainder, and reports absence.
func TestJobQueueRemove(t *testing.T) {
	q := newJobQueue(4)
	for _, j := range []int{5, 6, 7, 8} {
		q.push(j)
	}
	if !q.remove(6) {
		t.Fatal("remove(6) reported absent")
	}
	if q.remove(6) {
		t.Fatal("second remove(6) reported present")
	}
	if !q.remove(8) { // tail removal
		t.Fatal("remove(8) reported absent")
	}
	for i, want := range []int{5, 7} {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d = %d after removals, want %d", i, got, want)
		}
	}
}

func TestJobQueueZeroCapacity(t *testing.T) {
	q := newJobQueue(0)
	if q.len() != 0 || q.peek() != -1 {
		t.Error("zero-capacity queue is not a well-formed empty ring")
	}
}

func TestJobStateStrings(t *testing.T) {
	cases := map[JobState]string{
		JobWaiting:   "waiting",
		JobRunning:   "running",
		JobDone:      "done",
		JobWithdrawn: "withdrawn",
		JobState(7):  "JobState(7)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("JobState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
