package sched

import (
	"testing"

	"caer/internal/caer"
	"caer/internal/machine"
	"caer/internal/spec"
)

// testJob builds a finite batch job from a spec profile with a trimmed
// instruction count so end-to-end tests stay fast. Footprints are spread by
// index so co-located jobs never share data.
func testJob(name string, instr uint64, idx int) Job {
	p, ok := spec.ByName(name)
	if !ok {
		panic("unknown profile " + name)
	}
	p.Exec.Instructions = instr
	base := uint64(1<<28) + uint64(idx)<<26
	return Job{Name: name, New: func() *machine.Process {
		return p.NewProcess(base, int64(100+idx))
	}}
}

// newTestSched builds a 2-domain, 8-core deployment: mcf (sensitive latency
// service) on domain 0, namd (insensitive latency service) on domain 1.
func newTestSched(cfg Config) *Scheduler {
	m := machine.New(machine.Config{Cores: 8, Domains: 2})
	if cfg.Heuristic == 0 {
		cfg.Heuristic = caer.HeuristicRule
	}
	s := New(m, cfg)
	mcf, _ := spec.ByName("mcf")
	namd, _ := spec.ByName("namd")
	s.AddLatency("mcf", 0, mcf.Batch().NewProcess(0, 11))
	s.AddLatency("namd", 4, namd.Batch().NewProcess(1<<27, 12))
	return s
}

func TestSchedulerDrainsJobsUnderEveryPolicy(t *testing.T) {
	for _, policy := range []Policy{PolicyRoundRobin, PolicyContentionAware, PolicyPacked} {
		t.Run(policy.String(), func(t *testing.T) {
			s := newTestSched(Config{Policy: policy, AgingBound: 200})
			// Jobs are kept light: an lbm placed next to mcf is (correctly)
			// throttled hard by its engine, so it only retires instructions
			// in the minority of periods it is allowed to run.
			jobs := []Job{
				testJob("lbm", 150_000, 0),
				testJob("povray", 150_000, 1),
				testJob("lbm", 150_000, 2),
				testJob("povray", 150_000, 3),
			}
			for _, j := range jobs {
				s.Submit(j)
			}
			s.RunUntil(s.Done, 4000)
			if !s.Done() {
				t.Fatalf("jobs not drained after 4000 periods: queue=%d", s.QueueLen())
			}
			admits, completes := 0, 0
			for _, d := range s.Decisions() {
				switch d.Kind {
				case DecisionAdmit:
					admits++
				case DecisionComplete:
					completes++
				case DecisionMigrate:
				}
			}
			if admits != len(jobs) || completes != len(jobs) {
				t.Errorf("decisions: %d admits, %d completes, want %d each", admits, completes, len(jobs))
			}
			if s.MaxWait() > 200 {
				t.Errorf("MaxWait = %d exceeds aging bound 200", s.MaxWait())
			}
			m := s.m
			for i, r := range s.JobReports() {
				if r.State != JobDone {
					t.Errorf("job %d (%s) state = %v, want done", i, r.Name, r.State)
					continue
				}
				if r.Admitted == 0 || r.Done < r.Admitted {
					t.Errorf("job %d lifecycle periods admitted=%d done=%d", i, r.Admitted, r.Done)
				}
				if m.DomainOf(r.Core) != r.Domain {
					t.Errorf("job %d core %d is not in reported domain %d", i, r.Core, r.Domain)
				}
				// Both domains host a latency app, so every job ran under an
				// engine and its periods were accounted run-or-paused.
				if r.RunPeriods == 0 {
					t.Errorf("job %d has zero engine run periods", i)
				}
			}
		})
	}
}

// TestSchedulerAgingBound pins the starvation-avoidance guarantee: with an
// unreachable admission threshold, every job is force-admitted exactly at
// the aging bound, never past it.
func TestSchedulerAgingBound(t *testing.T) {
	s := newTestSched(Config{
		Policy:         PolicyContentionAware,
		AdmitThreshold: -1, // every domain always "too hot": admission only by aging
		AgingBound:     30,
	})
	for i := 0; i < 4; i++ {
		s.Submit(testJob("lbm", 200_000, i))
	}
	s.RunUntil(s.Done, 1500)
	if !s.Done() {
		t.Fatal("jobs not drained")
	}
	admits := 0
	for _, d := range s.Decisions() {
		if d.Kind != DecisionAdmit {
			continue
		}
		admits++
		if !d.Aged {
			t.Errorf("admission of job %d at period %d was not aged despite impossible threshold", d.Job, d.Period)
		}
		if d.Waited != 30 {
			t.Errorf("job %d admitted after waiting %d periods, want exactly the aging bound 30", d.Job, d.Waited)
		}
	}
	if admits != 4 {
		t.Errorf("%d admissions, want 4", admits)
	}
	if s.MaxWait() != 30 {
		t.Errorf("MaxWait = %d, want 30", s.MaxWait())
	}
}

// TestSchedulerContentionAwarePlacement pins the placement behaviour: with
// latency-sensitive mcf alone on domain 0 and domain 1 empty, the
// contention-aware policy sends every batch job to domain 1.
func TestSchedulerContentionAwarePlacement(t *testing.T) {
	m := machine.New(machine.Config{Cores: 8, Domains: 2})
	s := New(m, Config{Policy: PolicyContentionAware, Heuristic: caer.HeuristicRule, AgingBound: 500})
	mcf, _ := spec.ByName("mcf")
	s.AddLatency("mcf", 0, mcf.Batch().NewProcess(0, 11))
	for i := 0; i < 3; i++ {
		s.Submit(testJob("lbm", 300_000, i))
	}
	s.RunUntil(s.Done, 2000)
	if !s.Done() {
		t.Fatal("jobs not drained")
	}
	for _, d := range s.Decisions() {
		if d.Kind == DecisionAdmit && d.To != 1 {
			t.Errorf("job %d admitted to domain %d at period %d; contention-aware placement should avoid mcf's domain", d.Job, d.To, d.Period)
		}
	}
	// Domain 1 hosts no latency app, so jobs there run unmanaged: no engine
	// accounting.
	for i, r := range s.JobReports() {
		if r.Domain == 1 && (r.RunPeriods != 0 || r.PausedPeriods != 0) {
			t.Errorf("job %d on latency-free domain has engine accounting %d/%d", i, r.RunPeriods, r.PausedPeriods)
		}
	}
}

// TestSchedulerMigration pins bounded-rate migration: a packed placement
// puts the aggressor next to mcf; once the classifier learns its
// aggressiveness, the migration engine moves it to the empty domain.
func TestSchedulerMigration(t *testing.T) {
	m := machine.New(machine.Config{Cores: 8, Domains: 2})
	s := New(m, Config{
		Policy:          PolicyPacked,
		Heuristic:       caer.HeuristicRule,
		MigrationPeriod: 25,
		MigrationMargin: 0.1,
	})
	mcf, _ := spec.ByName("mcf")
	s.AddLatency("mcf", 0, mcf.Batch().NewProcess(0, 11))
	s.Submit(testJob("lbm", 2_000_000, 0))
	periods := 0
	for ; periods < 600 && !s.Done(); periods++ {
		s.Step()
	}
	if s.Migrations() < 1 {
		t.Fatal("aggressor was never migrated off the latency domain")
	}
	migrates := 0
	for _, d := range s.Decisions() {
		if d.Kind != DecisionMigrate {
			continue
		}
		migrates++
		if d.From != 0 || d.To != 1 {
			t.Errorf("migration %d->%d, want 0->1", d.From, d.To)
		}
		if d.Period%25 != 0 {
			t.Errorf("migration at period %d violates the 25-period rate bound", d.Period)
		}
	}
	if got, bound := migrates, periods/25; got > bound {
		t.Errorf("%d migrations in %d periods exceeds the rate bound %d", got, periods, bound)
	}
	r := s.JobReports()[0]
	if r.Migrations != migrates {
		t.Errorf("job migration count %d != decision log %d", r.Migrations, migrates)
	}
	if r.Domain != 1 {
		t.Errorf("job ended on domain %d, want 1", r.Domain)
	}
}

func TestSchedulerLifecyclePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("no latency apps", func() {
		m := machine.New(machine.Config{Cores: 4, Domains: 2})
		New(m, Config{}).Step()
	})
	mustPanic("late latency", func() {
		s := newTestSched(Config{})
		s.Step()
		lbm := spec.LBM()
		s.AddLatency("late", 2, lbm.NewProcess(1<<30, 9))
	})
	mustPanic("latency core out of range", func() {
		s := newTestSched(Config{})
		lbm := spec.LBM()
		s.AddLatency("oob", 99, lbm.NewProcess(1<<30, 9))
	})
	mustPanic("duplicate latency core", func() {
		s := newTestSched(Config{})
		lbm := spec.LBM()
		s.AddLatency("dup", 0, lbm.NewProcess(1<<30, 9))
	})
	mustPanic("anonymous job", func() {
		s := newTestSched(Config{})
		s.Submit(Job{})
	})
}

func TestSchedulerSharedProfileByName(t *testing.T) {
	s := newTestSched(Config{})
	a := s.Submit(testJob("lbm", 1000, 0))
	b := s.Submit(testJob("lbm", 1000, 1))
	c := s.Submit(testJob("povray", 1000, 2))
	ja, jb, jc := s.jobs[a], s.jobs[b], s.jobs[c]
	if ja.app != jb.app {
		t.Error("same-named jobs do not share a classifier profile")
	}
	if ja.app == jc.app {
		t.Error("different jobs share a classifier profile")
	}
}

// TestSchedulerMidRunSubmit pins the open-loop shape the fleet dispatcher
// uses: jobs submitted after the first Step join the queue and drain like
// pre-start submissions.
func TestSchedulerMidRunSubmit(t *testing.T) {
	s := newTestSched(Config{AgingBound: 200})
	s.Submit(testJob("povray", 100_000, 0))
	s.Step()
	late := s.Submit(testJob("lbm", 100_000, 1))
	if got := s.JobStateOf(late); got != JobWaiting {
		t.Fatalf("mid-run submission state = %v, want waiting", got)
	}
	s.RunUntil(s.Done, 4000)
	if !s.Done() {
		t.Fatalf("mid-run submission not drained: state=%v queue=%d", s.JobStateOf(late), s.QueueLen())
	}
	if s.JobDonePeriod(late) == 0 {
		t.Error("mid-run submission has no completion period")
	}
}

// TestSchedulerWithdraw pins the fleet cross-machine migration primitive:
// a still-waiting job can be withdrawn (terminal for this scheduler, with
// a decision-log entry), a running or done job cannot, and Done treats
// withdrawn jobs as drained.
func TestSchedulerWithdraw(t *testing.T) {
	s := newTestSched(Config{AgingBound: 10_000})
	var ids []int
	// Enough jobs that the tail of the queue stays waiting after a step.
	for i := 0; i < 12; i++ {
		ids = append(ids, s.Submit(testJob("lbm", 50_000, i)))
	}
	if s.Withdraw(ids[len(ids)-1]) {
		t.Fatal("pre-start withdraw succeeded; fleet migration only runs mid-flight")
	}
	s.Step()
	tail := ids[len(ids)-1]
	if s.JobStateOf(tail) != JobWaiting {
		t.Fatalf("tail job not waiting after one step: %v", s.JobStateOf(tail))
	}
	if !s.Withdraw(tail) {
		t.Fatal("withdraw of waiting job failed")
	}
	if got := s.JobStateOf(tail); got != JobWithdrawn {
		t.Fatalf("withdrawn job state = %v", got)
	}
	if s.Withdraw(tail) {
		t.Fatal("double withdraw succeeded")
	}
	var running int = -1
	for _, id := range ids {
		if s.JobStateOf(id) == JobRunning {
			running = id
			break
		}
	}
	if running >= 0 && s.Withdraw(running) {
		t.Fatal("withdraw of running job succeeded")
	}
	found := false
	for _, d := range s.Decisions() {
		if d.Kind == DecisionWithdraw && d.Job == tail {
			found = true
			if d.Core != -1 || d.From != -1 || d.To != -1 {
				t.Errorf("withdraw decision has placement fields set: %+v", d)
			}
		}
	}
	if !found {
		t.Error("no DecisionWithdraw entry in the decision log")
	}
	s.RunUntil(s.Done, 20_000)
	if !s.Done() {
		t.Fatal("scheduler never drained with a withdrawn job in the set")
	}
	if r := s.JobReports()[tail]; r.State != JobWithdrawn || r.Done != 0 {
		t.Errorf("withdrawn job report state=%v done=%d, want withdrawn, 0", r.State, r.Done)
	}
}

// TestSchedulerSummarize pins the fleet placer's machine view: free cores
// before start equal batch capacity, queue depth tracks submissions, and
// the summary refresh is allocation-free.
func TestSchedulerSummarize(t *testing.T) {
	s := newTestSched(Config{})
	var sum Summary
	s.Summarize(&sum)
	// 8 cores, 2 latency apps -> 6 batch cores.
	if sum.FreeCores != 6 {
		t.Fatalf("pre-start FreeCores = %d, want 6", sum.FreeCores)
	}
	if sum.Queued != 0 {
		t.Fatalf("pre-start Queued = %d, want 0", sum.Queued)
	}
	for i := 0; i < 8; i++ {
		s.Submit(testJob("lbm", 80_000, i))
	}
	for i := 0; i < 50; i++ {
		s.Step()
	}
	s.Summarize(&sum)
	if sum.FreeCores < 0 || sum.FreeCores > 6 {
		t.Fatalf("FreeCores = %d out of [0,6]", sum.FreeCores)
	}
	if sum.Queued != s.QueueLen() {
		t.Fatalf("Queued = %d, QueueLen = %d", sum.Queued, s.QueueLen())
	}
	if sum.Pressure < 0 || sum.Pressure >= float64(len(s.latency)) {
		t.Fatalf("Pressure = %v out of [0, apps)", sum.Pressure)
	}
	if sum.BatchLoad < 0 {
		t.Fatalf("BatchLoad = %v negative", sum.BatchLoad)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.Summarize(&sum) }); allocs != 0 {
		t.Errorf("Summarize allocates %v/op; fleet dispatch path must be allocation-free", allocs)
	}
}
