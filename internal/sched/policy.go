package sched

import "fmt"

// Policy selects the placement strategy the scheduler uses to map admitted
// batch jobs onto LLC domains.
type Policy int

const (
	// PolicyRoundRobin rotates admissions across domains with free cores,
	// blind to contention — the classic topology-only baseline.
	PolicyRoundRobin Policy = iota
	// PolicyContentionAware greedily places each job on the domain where
	// its predicted interference with latency-sensitive apps is lowest,
	// using the classifier's aggressiveness/sensitivity scores.
	PolicyContentionAware
	// PolicyPacked fills the lowest-numbered domain first — the seed
	// runner's "all batches on one LLC domain" shape.
	PolicyPacked
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyContentionAware:
		return "contention-aware"
	case PolicyPacked:
		return "packed"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// View is one domain's state as the placement engine sees it when scoring
// a decision. The scheduler refills a preallocated []View every decision,
// so placers must not retain it.
type View struct {
	// FreeCores is the number of unoccupied batch cores in the domain; a
	// domain with none is ineligible.
	FreeCores int
	// Sensitivity is the summed classifier sensitivity score of the
	// domain's latency-sensitive apps — how much they stand to lose to a
	// co-located aggressor.
	Sensitivity float64
	// Pressure is the domain's latency apps' current windowed LLC-miss
	// pressure, normalized to [0, 1) per app and summed.
	Pressure float64
	// BatchLoad is the summed aggressiveness of jobs already running on
	// the domain.
	BatchLoad float64
}

// batchLoadWeight discounts already-running batch aggressiveness against
// latency sensitivity in the greedy score: protecting latency apps
// dominates, but piling every aggressor onto one domain still costs.
const batchLoadWeight = 0.3

// interferenceScore is the greedy scorer shared by the contention-aware
// placer and the migration engine: the predicted marginal interference of
// putting a job with aggressiveness aggr onto the domain. Latency
// sensitivity and live pressure both make a domain expensive, scaled up by
// how aggressive the candidate is; resident batch load breaks ties away
// from crowded domains.
func interferenceScore(v View, aggr float64) float64 {
	return (v.Sensitivity+v.Pressure)*(0.4+aggr) + batchLoadWeight*v.BatchLoad
}

// Placer is the pluggable placement policy interface: given the candidate
// job's aggressiveness score and the per-domain views, Place picks a
// target domain, or -1 when no domain has a free core. Place must be pure
// and allocation-free — it runs whenever the admission queue is non-empty,
// and the admission threshold may still veto its choice. The scheduler
// calls Commit(d) only when a job is actually admitted to d, which is when
// stateful policies may advance.
type Placer interface {
	Name() string
	Place(aggr float64, views []View) int
	Commit(d int)
}

// NewPlacer builds the policy's placer.
func (p Policy) NewPlacer() Placer {
	switch p {
	case PolicyRoundRobin:
		return &roundRobinPlacer{}
	case PolicyContentionAware:
		return &contentionPlacer{}
	case PolicyPacked:
		return &packedPlacer{}
	default:
		panic(fmt.Sprintf("sched: unknown policy %d", int(p)))
	}
}

// roundRobinPlacer rotates across eligible domains.
type roundRobinPlacer struct {
	next int
}

func (r *roundRobinPlacer) Name() string { return PolicyRoundRobin.String() }

func (r *roundRobinPlacer) Place(aggr float64, views []View) int {
	n := len(views)
	for i := 0; i < n; i++ {
		d := (r.next + i) % n
		if views[d].FreeCores > 0 {
			return d
		}
	}
	return -1
}

func (r *roundRobinPlacer) Commit(d int) { r.next = d + 1 }

// contentionPlacer picks the eligible domain with the lowest predicted
// interference score; ties break toward the lower domain index for
// determinism.
type contentionPlacer struct{}

func (contentionPlacer) Name() string { return PolicyContentionAware.String() }

func (contentionPlacer) Commit(d int) {}

func (contentionPlacer) Place(aggr float64, views []View) int {
	best := -1
	var bestScore float64
	for d := range views {
		if views[d].FreeCores == 0 {
			continue
		}
		s := interferenceScore(views[d], aggr)
		if best == -1 || s < bestScore {
			best = d
			bestScore = s
		}
	}
	return best
}

// packedPlacer fills domain 0 first, then 1, ...
type packedPlacer struct{}

func (packedPlacer) Name() string { return PolicyPacked.String() }

func (packedPlacer) Commit(d int) {}

func (packedPlacer) Place(aggr float64, views []View) int {
	for d := range views {
		if views[d].FreeCores > 0 {
			return d
		}
	}
	return -1
}
