package sched

import (
	"caer/internal/stats"
	"caer/internal/telemetry"
)

// classifierWindow is the sliding-window length (in sampling periods) over
// which per-app miss and reuse rates are averaged before scoring.
const classifierWindow = 32

// histBuckets bins each app's per-period miss distribution; the histogram
// spans [0, histSpanScale*PressureScale) misses/period.
const (
	histBuckets   = 32
	histSpanScale = 8
)

// appProfile is one application's online contention profile.
type appProfile struct {
	name string

	// misses / reuses hold the last classifierWindow per-period samples:
	// LLC misses (pressure the app puts on its domain) and LLC hits (reuse
	// the app extracts from the shared cache, i.e. what it stands to lose
	// to an aggressor).
	misses *stats.Window
	reuses *stats.Window

	// hist and sum summarise the lifetime miss distribution; per-domain
	// aggregates are built by merging these (stats.Histogram.Merge /
	// stats.Running.Merge).
	hist *stats.Histogram
	sum  stats.Running

	// Engine outcomes attributed to the app: how often the contention
	// detector under it asserted contention.
	verdicts  uint64
	positives uint64

	// Hysteresis state for the binary LFOC-style classes. A class bit only
	// flips after `hysteresis` consecutive periods beyond the watermark,
	// so one noisy period cannot flap a placement decision.
	aggressor       bool
	sensitive       bool
	aggrHi, aggrLo  int
	sensHi, sensLo  int
	observedPeriods uint64
}

// Classifier maintains per-application contention profiles from windowed
// LLC-miss/LLC-hit samples and engine verdicts (LFOC-style online
// classification): an app's *aggressiveness* is its normalized miss
// pressure — what it inflicts on a shared cache — and its *sensitivity* is
// its normalized LLC reuse — what a co-located aggressor can take from it.
// Both scores are in [0, 1) with 0.5 at PressureScale events/period, and
// the binary Aggressor/Sensitive classes carry hysteresis.
//
// The per-period Observe path is allocation-free (fixed windows, fixed
// histogram bins); apps are registered once, before observation starts.
type Classifier struct {
	scale      float64
	hysteresis int
	apps       []appProfile
}

// Hysteresis watermarks: the binary class arms above the high watermark and
// disarms below the low watermark (score space, [0,1)).
const (
	classOnScore  = 0.55
	classOffScore = 0.45
)

// NewClassifier builds a classifier. scale is the events/period count that
// maps to a score of 0.5 (the knee of the normalization); hysteresis is the
// consecutive-period streak required to flip a binary class.
func NewClassifier(scale float64, hysteresis int) *Classifier {
	if scale <= 0 {
		panic("sched: classifier scale must be positive")
	}
	if hysteresis < 1 {
		panic("sched: classifier hysteresis must be at least 1")
	}
	return &Classifier{scale: scale, hysteresis: hysteresis}
}

// AddApp registers an application profile and returns its id. Apps sharing
// a name (repeated jobs of the same program) should share an id so later
// instances inherit the learned profile; the scheduler handles that
// mapping. Registration allocates and must complete before observation.
func (c *Classifier) AddApp(name string) int {
	c.apps = append(c.apps, appProfile{
		name:   name,
		misses: stats.NewWindow(classifierWindow),
		reuses: stats.NewWindow(classifierWindow),
		hist:   stats.NewHistogram(0, histSpanScale*c.scale, histBuckets),
	})
	return len(c.apps) - 1
}

// Apps returns the number of registered profiles.
func (c *Classifier) Apps() int { return len(c.apps) }

// Name returns app's registered name.
func (c *Classifier) Name(app int) string { return c.apps[app].name }

// Observe records one sampling period for app: its LLC misses and LLC hits
// (reuse) during the period. It runs every period for every placed app and
// is allocation-free.
func (c *Classifier) Observe(app int, misses, hits float64) {
	p := &c.apps[app]
	if hits < 0 {
		hits = 0
	}
	p.misses.Push(misses)
	p.reuses.Push(hits)
	p.hist.Add(misses)
	p.sum.Add(misses)
	p.observedPeriods++

	aggr := c.normalize(p.misses.Mean())
	if aggr >= classOnScore {
		p.aggrHi++
		p.aggrLo = 0
		if p.aggrHi >= c.hysteresis {
			if !p.aggressor {
				telemetry.SchedFlipsAggressor.Inc()
			}
			p.aggressor = true
		}
	} else if aggr <= classOffScore {
		p.aggrLo++
		p.aggrHi = 0
		if p.aggrLo >= c.hysteresis {
			if p.aggressor {
				telemetry.SchedFlipsAggressor.Inc()
			}
			p.aggressor = false
		}
	} else {
		p.aggrHi = 0
		p.aggrLo = 0
	}

	sens := c.normalize(p.reuses.Mean())
	if sens >= classOnScore {
		p.sensHi++
		p.sensLo = 0
		if p.sensHi >= c.hysteresis {
			if !p.sensitive {
				telemetry.SchedFlipsSensitive.Inc()
			}
			p.sensitive = true
		}
	} else if sens <= classOffScore {
		p.sensLo++
		p.sensHi = 0
		if p.sensLo >= c.hysteresis {
			if p.sensitive {
				telemetry.SchedFlipsSensitive.Inc()
			}
			p.sensitive = false
		}
	} else {
		p.sensHi = 0
		p.sensLo = 0
	}
}

// ObserveVerdict attributes one engine detection outcome to app (the batch
// application the verdict throttles). Allocation-free.
func (c *Classifier) ObserveVerdict(app int, contention bool) {
	p := &c.apps[app]
	p.verdicts++
	if contention {
		p.positives++
	}
}

// normalize maps an events/period rate into [0, 1): scale events/period
// scores 0.5 and the score saturates smoothly above it.
func (c *Classifier) normalize(rate float64) float64 {
	return rate / (rate + c.scale)
}

// Aggressiveness returns app's current aggressiveness score in [0, 1): its
// windowed LLC-miss pressure, normalized. Unobserved apps score 0
// (optimistic: an unknown job is placed by domain pressure alone until its
// first samples arrive). Allocation-free.
func (c *Classifier) Aggressiveness(app int) float64 {
	return c.normalize(c.apps[app].misses.Mean())
}

// Sensitivity returns app's current sensitivity score in [0, 1): its
// windowed LLC reuse, normalized — how much shared-cache benefit an
// aggressor can destroy. Allocation-free.
func (c *Classifier) Sensitivity(app int) float64 {
	return c.normalize(c.apps[app].reuses.Mean())
}

// Aggressor reports the hysteresis-filtered binary aggressor class.
func (c *Classifier) Aggressor(app int) bool { return c.apps[app].aggressor }

// Sensitive reports the hysteresis-filtered binary sensitive class.
func (c *Classifier) Sensitive(app int) bool { return c.apps[app].sensitive }

// ContentionRate returns the fraction of engine verdicts over app that
// asserted contention (0 before any verdict).
func (c *Classifier) ContentionRate(app int) float64 {
	p := &c.apps[app]
	if p.verdicts == 0 {
		return 0
	}
	return float64(p.positives) / float64(p.verdicts)
}

// ObservedPeriods returns how many periods app has been observed for.
func (c *Classifier) ObservedPeriods(app int) uint64 {
	return c.apps[app].observedPeriods
}

// NewMissHistogram returns an empty histogram with the classifier's bucket
// geometry, suitable as a MergeMisses destination.
func (c *Classifier) NewMissHistogram() *stats.Histogram {
	return stats.NewHistogram(0, histSpanScale*c.scale, histBuckets)
}

// MergeMisses merges app's lifetime per-period miss histogram into dst
// (which must come from NewMissHistogram). Reporting paths use this to
// build per-domain or whole-machine miss distributions whose quantiles
// equal those of the union of the underlying streams.
func (c *Classifier) MergeMisses(app int, dst *stats.Histogram) {
	dst.Merge(c.apps[app].hist)
}

// MergeSummary merges app's lifetime miss summary (count/mean/variance/
// min/max) into dst.
func (c *Classifier) MergeSummary(app int, dst *stats.Running) {
	dst.Merge(c.apps[app].sum)
}
