package sched

import (
	"fmt"

	"caer/internal/mem"
)

// This file is the LFOC-style cache-clustering planner behind the
// partition response family (DESIGN.md §16): co-runners are grouped into
// three cache clusters from the classifier's binary classes — sensitive
// apps get a protected partition aggressors physically cannot evict from,
// aggressors share a confined partition, and everyone else shares the
// default remainder — and the confined allotment shrinks under
// verdict-driven pressure, the partition analogue of red-light/green-light
// throttling.

// ClusterKind labels the cache cluster an app is assigned to.
type ClusterKind int

const (
	// ClusterDefault shares the unreserved middle of the LLC.
	ClusterDefault ClusterKind = iota
	// ClusterProtected holds sensitive apps: their ways are theirs alone.
	ClusterProtected
	// ClusterConfined holds aggressors: they may only fill (and so only
	// fight each other for) the confined low ways.
	ClusterConfined
)

// String names the cluster kind.
func (k ClusterKind) String() string {
	switch k {
	case ClusterDefault:
		return "default"
	case ClusterProtected:
		return "protected"
	case ClusterConfined:
		return "confined"
	default:
		return fmt.Sprintf("ClusterKind(%d)", int(k))
	}
}

// AppClass is the classifier summary the cluster planner consumes for one
// co-runner: its name, whether it is a pinned latency-critical service,
// and the hysteresis-filtered binary classes sched.Classifier maintains.
type AppClass struct {
	Name      string
	Latency   bool // latency-critical service: protected regardless of class
	Aggressor bool
	Sensitive bool
}

// Classify maps one app's summary to its cluster. It is a pure function
// of the summary alone — assignment cannot depend on arrival order or on
// the other apps present (the permutation-invariance property test pins
// this).
func Classify(c AppClass) ClusterKind {
	switch {
	case c.Latency:
		return ClusterProtected
	case c.Sensitive && !c.Aggressor:
		return ClusterProtected
	case c.Aggressor:
		return ClusterConfined
	default:
		return ClusterDefault
	}
}

// ClusterConfig sizes the three partitions of a ways-wide LLC.
type ClusterConfig struct {
	// ProtectedWaysPerApp is granted to each protected app, up to half the
	// cache. Default 4.
	ProtectedWaysPerApp int
	// ConfinedWays is the aggressors' base allotment before pressure
	// shrinks it. Default ways/4.
	ConfinedWays int
	// MinConfinedWays is the floor pressure can never squeeze past.
	// Default 1.
	MinConfinedWays int
	// MaxPressure caps the verdict-driven confinement level. Default
	// ConfinedWays - MinConfinedWays (enough to reach the floor).
	MaxPressure int
	// ResizeMode picks what happens to lines stranded by a resize:
	// mem.ResizeOrphan (the default; hardware-CAT-like lazy reclaim) or
	// mem.ResizeInvalidate (flush-on-reassign).
	ResizeMode mem.ResizeMode
}

func (c ClusterConfig) withDefaults(ways int) ClusterConfig {
	if c.ProtectedWaysPerApp == 0 {
		c.ProtectedWaysPerApp = 4
	}
	if c.ConfinedWays == 0 {
		c.ConfinedWays = ways / 4
		if c.ConfinedWays < 1 {
			c.ConfinedWays = 1
		}
	}
	if c.MinConfinedWays == 0 {
		c.MinConfinedWays = 1
	}
	if c.MaxPressure == 0 {
		c.MaxPressure = c.ConfinedWays - c.MinConfinedWays
		if c.MaxPressure < 0 {
			c.MaxPressure = 0
		}
	}
	return c
}

// ClusterPlan is one domain's partition layout: three disjoint way masks
// that together tile the whole cache (the tiling property test pins this
// for every input). A cluster with no members has a zero mask and its
// ways fold into Default, so no way is ever orphaned by the plan itself.
type ClusterPlan struct {
	Protected mem.WayMask
	Default   mem.WayMask
	Confined  mem.WayMask

	NProtected, NDefault, NConfined int
}

// MaskFor returns the fill mask an owner of the given cluster receives.
// The cluster masks themselves tile the cache disjointly; owner masks are
// unions of them: a protected app fills its reserve AND the shared default
// middle (its reserve is exclusive, but confinement must not cost it the
// capacity it enjoyed alone), bystanders fill only the middle, and
// aggressors only the confined low ways.
func (p ClusterPlan) MaskFor(kind ClusterKind) mem.WayMask {
	switch kind {
	case ClusterProtected:
		return p.Protected | p.Default
	case ClusterConfined:
		return p.Confined
	case ClusterDefault:
		return p.Default
	default:
		panic(fmt.Sprintf("sched: unknown cluster kind %v", kind))
	}
}

// PlanClusters computes the partition layout for one LLC domain: classes
// are the resident apps' summaries, ways the cache associativity, and
// pressure the verdict-driven confinement level in [0, MaxPressure]. The
// plan is a pure function of (classes-as-a-multiset, ways, pressure, cfg):
// sizing consults only cluster member counts, so permuting the class list
// cannot change the layout.
func PlanClusters(classes []AppClass, ways, pressure int, cfg ClusterConfig) ClusterPlan {
	if ways < 4 {
		panic(fmt.Sprintf("sched: cluster planning needs at least 4 ways, got %d", ways))
	}
	cfg = cfg.withDefaults(ways)
	var plan ClusterPlan
	for _, c := range classes {
		switch Classify(c) {
		case ClusterProtected:
			plan.NProtected++
		case ClusterConfined:
			plan.NConfined++
		case ClusterDefault:
			plan.NDefault++
		}
	}
	prot := 0
	if plan.NProtected > 0 {
		prot = plan.NProtected * cfg.ProtectedWaysPerApp
		if max := ways / 2; prot > max {
			prot = max
		}
		if prot < 1 {
			prot = 1
		}
	}
	conf := 0
	if plan.NConfined > 0 {
		conf = cfg.ConfinedWays - pressure
		if conf < cfg.MinConfinedWays {
			conf = cfg.MinConfinedWays
		}
		if max := ways - prot - 1; conf > max {
			conf = max
		}
	}
	// Layout: confined low ways, protected top ways, default the middle.
	// prot <= ways/2 and conf <= ways-prot-1 guarantee a non-empty default
	// and pairwise-disjoint masks whose union is the full mask.
	if conf > 0 {
		plan.Confined = mem.ContiguousMask(0, conf)
	}
	if prot > 0 {
		plan.Protected = mem.ContiguousMask(ways-prot, ways)
	}
	plan.Default = mem.FullMask(ways) &^ plan.Confined &^ plan.Protected
	return plan
}

// Clusterer holds one LLC domain's current plan and recomputes it
// allocation-free every period (the caer-vet hotpath inventory pins the
// Rescore path).
type Clusterer struct {
	cfg  ClusterConfig
	ways int
	plan ClusterPlan
}

// NewClusterer builds a planner for a ways-wide LLC.
func NewClusterer(ways int, cfg ClusterConfig) *Clusterer {
	return &Clusterer{cfg: cfg.withDefaults(ways), ways: ways}
}

// Rescore recomputes the plan from the current summaries and pressure,
// returning whether the layout changed. Allocation-free.
func (cl *Clusterer) Rescore(classes []AppClass, pressure int) bool {
	plan := PlanClusters(classes, cl.ways, pressure, cl.cfg)
	if plan == cl.plan {
		return false
	}
	cl.plan = plan
	return true
}

// Plan returns the current layout.
func (cl *Clusterer) Plan() ClusterPlan { return cl.plan }
