package sched

import (
	"caer/internal/stats"
	"testing"
)

func TestClassifierScoresSeparateAxes(t *testing.T) {
	c := NewClassifier(100, 2)
	aggr := c.AddApp("aggressor")
	sens := c.AddApp("sensitive")
	for i := 0; i < 8; i++ {
		c.Observe(aggr, 900, 10) // heavy miss pressure, no reuse
		c.Observe(sens, 5, 400)  // light pressure, heavy L3 reuse
	}
	if a := c.Aggressiveness(aggr); a < 0.8 {
		t.Errorf("aggressor aggressiveness = %v, want > 0.8", a)
	}
	if s := c.Sensitivity(aggr); s > 0.2 {
		t.Errorf("aggressor sensitivity = %v, want < 0.2", s)
	}
	if a := c.Aggressiveness(sens); a > 0.2 {
		t.Errorf("sensitive app aggressiveness = %v, want < 0.2", a)
	}
	if s := c.Sensitivity(sens); s < 0.7 {
		t.Errorf("sensitive app sensitivity = %v, want > 0.7", s)
	}
	if !c.Aggressor(aggr) || c.Sensitive(aggr) {
		t.Error("aggressor class bits wrong")
	}
	if c.Aggressor(sens) || !c.Sensitive(sens) {
		t.Error("sensitive class bits wrong")
	}
}

func TestClassifierHysteresisArming(t *testing.T) {
	c := NewClassifier(100, 4)
	app := c.AddApp("a")
	for i := 0; i < 3; i++ {
		c.Observe(app, 900, 0)
		if c.Aggressor(app) {
			t.Fatalf("aggressor class armed after %d periods, hysteresis is 4", i+1)
		}
	}
	c.Observe(app, 900, 0)
	if !c.Aggressor(app) {
		t.Fatal("aggressor class not armed after 4 consecutive high periods")
	}
}

func TestClassifierHysteresisDisarm(t *testing.T) {
	c := NewClassifier(100, 3)
	app := c.AddApp("a")
	for i := 0; i < 8; i++ {
		c.Observe(app, 900, 0)
	}
	if !c.Aggressor(app) {
		t.Fatal("setup: class not armed")
	}
	// The windowed mean decays slowly, then the streak must accumulate: the
	// class holds for several quiet periods before flipping off.
	flipped := -1
	for i := 0; i < 2*classifierWindow; i++ {
		c.Observe(app, 0, 0)
		if !c.Aggressor(app) {
			flipped = i + 1
			break
		}
	}
	if flipped < 0 {
		t.Fatal("aggressor class never disarmed after sustained quiet")
	}
	if flipped < 3 {
		t.Errorf("class disarmed after %d quiet periods, hysteresis is 3", flipped)
	}
	if a := c.Aggressiveness(app); a >= classOffScore {
		t.Errorf("post-disarm aggressiveness = %v, want < %v", a, classOffScore)
	}
}

func TestClassifierUnobservedApp(t *testing.T) {
	c := NewClassifier(150, 8)
	app := c.AddApp("new")
	if c.Aggressiveness(app) != 0 || c.Sensitivity(app) != 0 {
		t.Error("unobserved app must score 0 on both axes")
	}
	if c.Aggressor(app) || c.Sensitive(app) {
		t.Error("unobserved app must not be classified")
	}
	if c.ObservedPeriods(app) != 0 || c.ContentionRate(app) != 0 {
		t.Error("unobserved app has nonzero counters")
	}
}

func TestClassifierNegativeHitsClamped(t *testing.T) {
	c := NewClassifier(100, 1)
	app := c.AddApp("a")
	c.Observe(app, 50, -25) // PMU skew: accesses delta < misses delta
	if s := c.Sensitivity(app); s != 0 {
		t.Errorf("sensitivity after negative hits = %v, want 0", s)
	}
}

func TestClassifierVerdicts(t *testing.T) {
	c := NewClassifier(100, 1)
	app := c.AddApp("a")
	c.ObserveVerdict(app, true)
	c.ObserveVerdict(app, true)
	c.ObserveVerdict(app, false)
	c.ObserveVerdict(app, true)
	if got := c.ContentionRate(app); got != 0.75 {
		t.Errorf("ContentionRate = %v, want 0.75", got)
	}
}

func TestClassifierMergeAggregation(t *testing.T) {
	c := NewClassifier(100, 2)
	a := c.AddApp("a")
	b := c.AddApp("b")
	for i := 0; i < 10; i++ {
		c.Observe(a, 50, 0)
		c.Observe(b, 250, 0)
	}
	hist := c.NewMissHistogram()
	c.MergeMisses(a, hist)
	c.MergeMisses(b, hist)
	if hist.N() != 20 {
		t.Errorf("merged histogram N = %d, want 20", hist.N())
	}
	var sum stats.Running
	c.MergeSummary(a, &sum)
	c.MergeSummary(b, &sum)
	if sum.N() != 20 || sum.Mean() != 150 {
		t.Errorf("merged summary n=%d mean=%v, want 20, 150", sum.N(), sum.Mean())
	}
	if sum.Min() != 50 || sum.Max() != 250 {
		t.Errorf("merged summary min=%v max=%v, want 50, 250", sum.Min(), sum.Max())
	}
	if c.Name(a) != "a" || c.Apps() != 2 {
		t.Error("classifier registry accessors wrong")
	}
}

func TestClassifierConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero scale", func() { NewClassifier(0, 4) })
	mustPanic("negative scale", func() { NewClassifier(-1, 4) })
	mustPanic("zero hysteresis", func() { NewClassifier(100, 0) })
}
