package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"caer/internal/mem"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		c    AppClass
		want ClusterKind
	}{
		{AppClass{Latency: true}, ClusterProtected},
		{AppClass{Latency: true, Aggressor: true}, ClusterProtected},
		{AppClass{Sensitive: true}, ClusterProtected},
		{AppClass{Sensitive: true, Aggressor: true}, ClusterConfined},
		{AppClass{Aggressor: true}, ClusterConfined},
		{AppClass{}, ClusterDefault},
	}
	for _, tc := range cases {
		if got := Classify(tc.c); got != tc.want {
			t.Errorf("Classify(%+v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestClusterKindString(t *testing.T) {
	if ClusterDefault.String() != "default" || ClusterProtected.String() != "protected" ||
		ClusterConfined.String() != "confined" {
		t.Error("cluster kind names wrong")
	}
	if got := ClusterKind(9).String(); got != "ClusterKind(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestResponseKindString(t *testing.T) {
	if ResponseThrottle.String() != "throttle" || ResponsePartition.String() != "partition" ||
		ResponseHybrid.String() != "hybrid" {
		t.Error("response kind names wrong")
	}
	if got := ResponseKind(9).String(); got != "ResponseKind(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}

// randomClasses decodes a byte string into an app-class list (two bits per
// app), giving testing/quick a generator-friendly input shape.
func randomClasses(raw []byte) []AppClass {
	classes := make([]AppClass, 0, len(raw))
	for _, b := range raw {
		classes = append(classes, AppClass{
			Latency:   b&1 != 0,
			Aggressor: b&2 != 0,
			Sensitive: b&4 != 0,
		})
	}
	return classes
}

// TestPlanClustersTilingProperty pins the planner's core invariant for
// arbitrary class mixes, pressures, and configurations: the three cluster
// masks are pairwise disjoint and their union is exactly the full mask — no
// way is ever shared between clusters or orphaned by the plan.
func TestPlanClustersTilingProperty(t *testing.T) {
	prop := func(raw []byte, waysRaw, pressRaw uint8, pwpa, conf uint8) bool {
		ways := 4 + int(waysRaw)%13 // 4..16
		cfg := ClusterConfig{
			ProtectedWaysPerApp: int(pwpa) % 10,
			ConfinedWays:        int(conf) % (ways / 2),
		}
		pressure := int(pressRaw) % 8
		plan := PlanClusters(randomClasses(raw), ways, pressure, cfg)
		full := mem.FullMask(ways)
		if plan.Protected&plan.Default != 0 || plan.Protected&plan.Confined != 0 ||
			plan.Default&plan.Confined != 0 {
			t.Logf("overlap: %+v", plan)
			return false
		}
		if plan.Protected|plan.Default|plan.Confined != full {
			t.Logf("orphaned ways: %+v vs full %v", plan, full)
			return false
		}
		// Default never collapses: protected owners rely on the shared
		// middle, and unclassified arrivals need somewhere to fill.
		if plan.Default == 0 {
			t.Logf("empty default: %+v", plan)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPlanClustersTilingUnderResizeSequences replays random walks of
// (classes, pressure) resize steps through one Clusterer and holds every
// intermediate plan to the tiling invariant — the planner is stateless per
// plan, but the walk pins that no reachable sequence of Rescore calls can
// produce a non-tiling layout either.
func TestPlanClustersTilingUnderResizeSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		ways := []int{4, 8, 16}[rng.Intn(3)]
		cl := NewClusterer(ways, ClusterConfig{
			ProtectedWaysPerApp: rng.Intn(9),
			ConfinedWays:        rng.Intn(ways / 2),
		})
		classes := make([]AppClass, rng.Intn(6))
		for step := 0; step < 50; step++ {
			for i := range classes {
				classes[i] = AppClass{
					Latency:   rng.Intn(4) == 0,
					Aggressor: rng.Intn(2) == 0,
					Sensitive: rng.Intn(2) == 0,
				}
			}
			cl.Rescore(classes, rng.Intn(8))
			plan := cl.Plan()
			full := mem.FullMask(ways)
			if plan.Protected|plan.Default|plan.Confined != full ||
				plan.Protected&plan.Default != 0 || plan.Protected&plan.Confined != 0 ||
				plan.Default&plan.Confined != 0 {
				t.Fatalf("trial %d step %d: non-tiling plan %+v", trial, step, plan)
			}
			for _, k := range []ClusterKind{ClusterDefault, ClusterProtected, ClusterConfined} {
				if m := plan.MaskFor(k); m&^full != 0 {
					t.Fatalf("MaskFor(%v) = %v exceeds full mask", k, m)
				}
			}
		}
	}
}

// TestPlanClustersPermutationInvariant pins that cluster assignment and
// sizing are a pure function of the class multiset: permuting the co-runner
// list cannot change the layout.
func TestPlanClustersPermutationInvariant(t *testing.T) {
	prop := func(raw []byte, seed int64) bool {
		classes := randomClasses(raw)
		cfg := ClusterConfig{}
		want := PlanClusters(classes, 16, 2, cfg)
		rng := rand.New(rand.NewSource(seed))
		shuffled := append([]AppClass(nil), classes...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return PlanClusters(shuffled, 16, 2, cfg) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPlanClustersPressureShrinksConfined(t *testing.T) {
	classes := []AppClass{{Latency: true}, {Aggressor: true}, {}}
	cfg := ClusterConfig{ProtectedWaysPerApp: 8, ConfinedWays: 4}
	prev := PlanClusters(classes, 16, 0, cfg)
	if prev.Confined.Count() != 4 {
		t.Fatalf("pressure 0: confined %d ways, want 4", prev.Confined.Count())
	}
	for p := 1; p <= 5; p++ {
		plan := PlanClusters(classes, 16, p, cfg)
		if plan.Confined.Count() > prev.Confined.Count() {
			t.Fatalf("pressure %d grew confined: %d -> %d ways", p, prev.Confined.Count(), plan.Confined.Count())
		}
		prev = plan
	}
	if prev.Confined.Count() != 1 {
		t.Fatalf("max pressure: confined %d ways, want floor 1", prev.Confined.Count())
	}
}

func TestPlanClustersEmptyClustersFoldIntoDefault(t *testing.T) {
	plan := PlanClusters(nil, 16, 0, ClusterConfig{})
	if plan.Protected != 0 || plan.Confined != 0 {
		t.Fatalf("no members but reserved masks: %+v", plan)
	}
	if plan.Default != mem.FullMask(16) {
		t.Fatalf("default %v, want full", plan.Default)
	}
}

func TestMaskForProtectedIncludesDefault(t *testing.T) {
	classes := []AppClass{{Latency: true}, {Aggressor: true}}
	plan := PlanClusters(classes, 16, 0, ClusterConfig{ProtectedWaysPerApp: 8, ConfinedWays: 4})
	pm := plan.MaskFor(ClusterProtected)
	if pm != plan.Protected|plan.Default {
		t.Fatalf("protected owner mask %v, want reserve+middle %v", pm, plan.Protected|plan.Default)
	}
	if pm&plan.Confined != 0 {
		t.Fatal("protected owner mask overlaps the confined partition")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MaskFor(unknown) did not panic")
			}
		}()
		plan.MaskFor(ClusterKind(9))
	}()
}

func TestPlanClustersPanicsOnNarrowCache(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PlanClusters(ways=2) did not panic")
		}
	}()
	PlanClusters(nil, 2, 0, ClusterConfig{})
}

func TestClustererRescoreReportsChanges(t *testing.T) {
	cl := NewClusterer(16, ClusterConfig{})
	classes := []AppClass{{Latency: true}, {Aggressor: true}}
	if !cl.Rescore(classes, 0) {
		t.Fatal("first rescore reported no change")
	}
	if cl.Rescore(classes, 0) {
		t.Fatal("identical rescore reported a change")
	}
	if !cl.Rescore(classes, 2) {
		t.Fatal("pressure change reported no change")
	}
}

// TestClustererRescoreAllocFree pins the per-period re-score as
// allocation-free (it runs every scheduler step on every domain).
func TestClustererRescoreAllocFree(t *testing.T) {
	cl := NewClusterer(16, ClusterConfig{})
	classes := []AppClass{{Latency: true}, {Aggressor: true}, {Sensitive: true}, {}}
	pressure := 0
	if n := testing.AllocsPerRun(200, func() {
		pressure = (pressure + 1) % 4
		cl.Rescore(classes, pressure)
	}); n != 0 {
		t.Fatalf("Rescore allocates %v/op, want 0", n)
	}
}
