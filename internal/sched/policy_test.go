package sched

import "testing"

func TestInterferenceScoreOrdering(t *testing.T) {
	hot := View{FreeCores: 1, Sensitivity: 0.8, Pressure: 0.7}
	cold := View{FreeCores: 1, Sensitivity: 0.05, Pressure: 0.05}
	if interferenceScore(hot, 0.5) <= interferenceScore(cold, 0.5) {
		t.Error("hot domain does not score above cold domain")
	}
	// Aggressiveness widens the gap: a known aggressor pays more for the
	// hot domain than an unknown job does.
	gapAggressive := interferenceScore(hot, 0.9) - interferenceScore(cold, 0.9)
	gapUnknown := interferenceScore(hot, 0) - interferenceScore(cold, 0)
	if gapAggressive <= gapUnknown {
		t.Errorf("aggressiveness gap %v <= unknown gap %v", gapAggressive, gapUnknown)
	}
	// Resident batch load makes an otherwise-equal domain less attractive.
	crowded := cold
	crowded.BatchLoad = 2
	if interferenceScore(crowded, 0.5) <= interferenceScore(cold, 0.5) {
		t.Error("batch load does not penalize a crowded domain")
	}
}

func TestContentionPlacer(t *testing.T) {
	p := PolicyContentionAware.NewPlacer()
	views := []View{
		{FreeCores: 1, Sensitivity: 0.9, Pressure: 0.8},
		{FreeCores: 1, Sensitivity: 0.05},
	}
	if d := p.Place(0.7, views); d != 1 {
		t.Errorf("Place = %d, want the cold domain 1", d)
	}
	views[1].FreeCores = 0
	if d := p.Place(0.7, views); d != 0 {
		t.Errorf("Place with domain 1 full = %d, want 0", d)
	}
	views[0].FreeCores = 0
	if d := p.Place(0.7, views); d != -1 {
		t.Errorf("Place with all domains full = %d, want -1", d)
	}
	// Exact ties break toward the lower index for determinism.
	tied := []View{
		{FreeCores: 1, Sensitivity: 0.3},
		{FreeCores: 1, Sensitivity: 0.3},
	}
	if d := p.Place(0.5, tied); d != 0 {
		t.Errorf("tied Place = %d, want 0", d)
	}
}

func TestRoundRobinPlacer(t *testing.T) {
	p := PolicyRoundRobin.NewPlacer()
	views := []View{{FreeCores: 1}, {FreeCores: 1}, {FreeCores: 1}}
	want := []int{0, 1, 2, 0}
	for i, w := range want {
		d := p.Place(0, views)
		if d != w {
			t.Fatalf("placement %d = %d, want %d", i, d, w)
		}
		p.Commit(d)
	}
	// Without Commit (admission vetoed), the rotation does not advance.
	d1 := p.Place(0, views)
	d2 := p.Place(0, views)
	if d1 != d2 {
		t.Errorf("uncommitted Place advanced: %d then %d", d1, d2)
	}
	// Full domains are skipped.
	views[d1].FreeCores = 0
	if d := p.Place(0, views); d == d1 {
		t.Error("round-robin placed on a full domain")
	}
	if d := p.Place(0, []View{{}, {}}); d != -1 {
		t.Errorf("Place with no free cores = %d, want -1", d)
	}
}

func TestPackedPlacer(t *testing.T) {
	p := PolicyPacked.NewPlacer()
	views := []View{{FreeCores: 2}, {FreeCores: 2}}
	if d := p.Place(0, views); d != 0 {
		t.Errorf("Place = %d, want 0", d)
	}
	p.Commit(0)
	views[0].FreeCores = 0
	if d := p.Place(0, views); d != 1 {
		t.Errorf("Place with domain 0 full = %d, want 1", d)
	}
	if d := p.Place(0, []View{{}, {}}); d != -1 {
		t.Errorf("Place with no free cores = %d, want -1", d)
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{
		PolicyRoundRobin:      "round-robin",
		PolicyContentionAware: "contention-aware",
		PolicyPacked:          "packed",
		Policy(99):            "Policy(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
	for _, p := range []Policy{PolicyRoundRobin, PolicyContentionAware, PolicyPacked} {
		if got := p.NewPlacer().Name(); got != p.String() {
			t.Errorf("placer name %q != policy name %q", got, p.String())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewPlacer on unknown policy did not panic")
		}
	}()
	Policy(99).NewPlacer()
}

func TestDecisionKindStrings(t *testing.T) {
	cases := map[DecisionKind]string{
		DecisionAdmit:    "admit",
		DecisionMigrate:  "migrate",
		DecisionComplete: "complete",
		DecisionKind(9):  "DecisionKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("DecisionKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
