package sched

import "fmt"

// JobState is a batch job's position in the admission lifecycle.
type JobState int

const (
	// JobWaiting means the job sits in the admission queue.
	JobWaiting JobState = iota
	// JobRunning means the job is placed on a core and executing.
	JobRunning
	// JobDone means the job ran to completion and released its core.
	JobDone
	// JobWithdrawn means the job was pulled back out of the queue before
	// admission (fleet-level cross-machine migration re-dispatches it to
	// another scheduler); it is terminal for this scheduler.
	JobWithdrawn
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case JobWaiting:
		return "waiting"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobWithdrawn:
		return "withdrawn"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// jobQueue is a FIFO ring of job indices. Capacity starts at the submitted
// job count so peek/pop/len on the per-period path never allocate; push
// grows the ring when a dynamic submission (fleet dispatch) overflows it —
// growth happens only on the cold submission path.
type jobQueue struct {
	buf   []int
	head  int
	count int
}

func newJobQueue(capacity int) *jobQueue {
	if capacity < 0 {
		panic(fmt.Sprintf("sched: negative queue capacity %d", capacity))
	}
	if capacity == 0 {
		capacity = 1 // a well-formed empty ring
	}
	return &jobQueue{buf: make([]int, capacity)}
}

func (q *jobQueue) len() int { return q.count }

func (q *jobQueue) push(j int) {
	if q.count == len(q.buf) {
		grown := make([]int, 2*len(q.buf))
		for i := 0; i < q.count; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.count)%len(q.buf)] = j
	q.count++
}

// peek returns the head job index without removing it, or -1 when empty.
func (q *jobQueue) peek() int {
	if q.count == 0 {
		return -1
	}
	return q.buf[q.head]
}

// pop removes and returns the head job index; it panics when empty.
func (q *jobQueue) pop() int {
	if q.count == 0 {
		panic("sched: pop from empty job queue")
	}
	j := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return j
}

// remove deletes the first occurrence of job index j, preserving FIFO
// order of the remainder, and reports whether it was present. Withdrawal
// path only (cold): it compacts by shifting, O(n).
func (q *jobQueue) remove(j int) bool {
	for i := 0; i < q.count; i++ {
		if q.buf[(q.head+i)%len(q.buf)] != j {
			continue
		}
		for k := i; k < q.count-1; k++ {
			q.buf[(q.head+k)%len(q.buf)] = q.buf[(q.head+k+1)%len(q.buf)]
		}
		q.count--
		return true
	}
	return false
}
