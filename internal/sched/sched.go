// Package sched is the contention-aware placement and admission subsystem
// layered over the CAER runtime's signals. Where the paper's CAER only ever
// throttles a batch application already glued to a fixed core (its §7
// future work points at richer responses), sched decides *where* and
// *when* batch work runs on a multi-LLC-domain machine:
//
//   - a Classifier maintains online per-application contention profiles
//     (aggressiveness = normalized LLC-miss pressure; sensitivity =
//     normalized LLC reuse) from windowed PMU samples and engine verdicts,
//     with hysteresis on the binary classes (LFOC-style);
//   - a placement engine scores LLC domains with a greedy predicted-
//     interference function behind a pluggable Placer interface
//     (contention-aware, round-robin, packed policies);
//   - an admission queue holds submitted jobs back while every eligible
//     domain's predicted pressure exceeds a threshold, admitting them as
//     pressure subsides, with a starvation-avoidance aging bound;
//   - bounded-rate migration re-places at most one running job per
//     migration interval when another domain's predicted interference is
//     lower by a hysteresis margin.
//
// Each placed job still runs under a per-job CAER engine (detection +
// throttling, scoped to its domain's latency-sensitive neighbours), so
// placement and the paper's reaction machinery compose. The per-period
// observation/decision path is allocation-free and registered in the
// caer-vet hotpath inventory.
package sched

import (
	"fmt"

	"caer/internal/caer"
	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/mem"
	"caer/internal/pmu"
	"caer/internal/telemetry"
)

// ResponseKind selects the scheduler's contention response family.
type ResponseKind int

const (
	// ResponseThrottle pauses a domain's batch set on contention verdicts
	// (the paper's red-light/green-light and soft-lock levers). Default.
	ResponseThrottle ResponseKind = iota
	// ResponsePartition never pauses: it resizes LLC way-partitions
	// instead, confining aggressors so they physically cannot evict the
	// sensitive apps' lines (LFOC-style).
	ResponsePartition
	// ResponseHybrid does both: partitions are maintained and contention
	// verdicts still throttle.
	ResponseHybrid
)

// String names the response kind.
func (k ResponseKind) String() string {
	switch k {
	case ResponseThrottle:
		return "throttle"
	case ResponsePartition:
		return "partition"
	case ResponseHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("ResponseKind(%d)", int(k))
	}
}

// DecisionKind classifies an entry of the scheduler's decision log.
type DecisionKind int

const (
	// DecisionAdmit records a job leaving the queue for a core.
	DecisionAdmit DecisionKind = iota
	// DecisionMigrate records a running job moving between domains.
	DecisionMigrate
	// DecisionComplete records a job finishing and releasing its core.
	DecisionComplete
	// DecisionWithdraw records a waiting job being pulled back out of the
	// queue (fleet cross-machine migration re-dispatches it elsewhere).
	DecisionWithdraw
)

// String names the decision kind.
func (k DecisionKind) String() string {
	switch k {
	case DecisionAdmit:
		return "admit"
	case DecisionMigrate:
		return "migrate"
	case DecisionComplete:
		return "complete"
	case DecisionWithdraw:
		return "withdraw"
	default:
		return fmt.Sprintf("DecisionKind(%d)", int(k))
	}
}

// Decision is one entry of the placement/admission timeline.
type Decision struct {
	Period uint64 // scheduler period (1-based) the decision was taken in
	Kind   DecisionKind
	Job    int    // job index (submission order)
	Name   string // job name
	From   int    // source domain (-1 for admissions)
	To     int    // target domain (-1 for completions)
	Core   int    // core involved
	Waited int    // periods spent queued (admissions)
	Aged   bool   // admission was forced by the aging bound
	Queued int    // queue length after the decision
}

// Job is one batch work item submitted to the admission queue. New builds
// the job's process when it is first placed; it runs to completion and is
// not relaunched, so its profile should carry a finite instruction count.
type Job struct {
	Name string
	New  func() *machine.Process
}

// Config tunes the scheduler.
type Config struct {
	// Policy selects the placement strategy (default PolicyRoundRobin,
	// the zero value, so the contention-aware behaviour is opt-in).
	Policy Policy
	// Heuristic and Caer configure the per-job CAER engines (defaults:
	// rule-based pairing, caer.DefaultConfig).
	Heuristic caer.HeuristicKind
	Caer      caer.Config
	// PressureScale is the misses/period (and hits/period) rate that
	// normalizes to a 0.5 classifier score; default Caer.UsageThresh.
	PressureScale float64
	// AdmitThreshold is the predicted-interference score above which the
	// chosen domain refuses admission and the queue waits. Default 0.75.
	AdmitThreshold float64
	// AgingBound is the starvation-avoidance limit: a job that has waited
	// this many periods is admitted to the best domain with a free core
	// regardless of the threshold. Default 400.
	AgingBound int
	// MigrationPeriod evaluates at most one job migration every this many
	// periods; 0 disables migration (the default).
	MigrationPeriod int
	// MigrationMargin is the minimum predicted-interference improvement a
	// migration must buy; default 0.25.
	MigrationMargin float64
	// Hysteresis is the classifier's class-flip streak; default 8.
	Hysteresis int
	// Response selects the contention response family: throttle (the
	// default), LLC way-partitioning, or both (DESIGN.md §16).
	Response ResponseKind
	// Cluster tunes the partition planner when Response is
	// ResponsePartition or ResponseHybrid.
	Cluster ClusterConfig
	// TrackOffset shifts every span-recorder track id this scheduler uses
	// by a constant, so N schedulers (one per fleet machine) can share one
	// process-wide span ring without colliding on slot ids: machine k's
	// fleet layer passes a disjoint offset and one Chrome trace covers the
	// whole fleet. 0 (the default) keeps single-machine traces unchanged.
	TrackOffset int32
	// TrackPrefix prepends a lane-name prefix (e.g. "m3/") to every span
	// track this scheduler names, so the merged fleet trace identifies
	// which machine each lane belongs to. "" (the default) keeps
	// single-machine lane names unchanged.
	TrackPrefix string
	// Spans is the recorder every span this scheduler (and the monitors
	// and engines it builds) emits lands on. nil (the default) uses the
	// process-wide telemetry.DefaultSpans; the fleet layer passes its own
	// ring so a fleet run's trace is self-contained and deterministic
	// regardless of what else the process records.
	Spans *telemetry.SpanRecorder
}

func (c Config) withDefaults() Config {
	if c.Caer.WindowSize == 0 {
		c.Caer = caer.DefaultConfig()
	}
	if c.PressureScale == 0 {
		c.PressureScale = c.Caer.UsageThresh
	}
	if c.PressureScale <= 0 {
		c.PressureScale = 150
	}
	if c.AdmitThreshold == 0 {
		c.AdmitThreshold = 0.75
	}
	if c.AgingBound == 0 {
		c.AgingBound = 400
	}
	if c.MigrationMargin == 0 {
		c.MigrationMargin = 0.25
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 8
	}
	return c
}

// latApp is one hosted latency-sensitive application.
type latApp struct {
	name       string
	core       int
	domain     int
	app        int // classifier id
	proc       *machine.Process
	slot       *comm.Slot
	mon        *caer.Monitor
	pmu        *pmu.PMU // scheduler's own probe (misses + accesses)
	donePeriod uint64   // 1-based period the app completed in; 0 = running
}

// jobState is a submitted job's full lifecycle record.
type jobState struct {
	spec  Job
	app   int // classifier id (shared between same-named jobs)
	state JobState

	proc   *machine.Process
	slot   *comm.Slot
	pmu    *pmu.PMU
	engine *caer.Engine // nil on domains without latency apps

	core, domain int
	waited       int
	aged         bool
	admitted     uint64 // 1-based period; 0 = never
	done         uint64

	migrations int
	missTotal  float64          // lifetime LLC misses observed by the scheduler
	accStats   caer.EngineStats // stats of engines abandoned by migration
	lastPos    uint64           // engine verdict counters already attributed
	lastNeg    uint64
}

// Scheduler drives a multi-LLC-domain machine one sampling period at a
// time: latency-sensitive apps are bound up front (one monitor each, as in
// caer.Runtime), while batch jobs flow through the admission queue and the
// placement engine instead of being pinned at construction.
type Scheduler struct {
	m          *machine.Machine
	cfg        Config
	table      *comm.Table
	placer     Placer
	classifier *Classifier

	latency   []latApp
	jobs      []*jobState
	queue     *jobQueue
	appByName map[string]int

	// Fixed per-domain state, allocated at start.
	views            []View
	domDirective     []comm.Directive
	freeCount        []int
	domNeighborSlots [][]*comm.Slot
	coreBusy         []bool

	// Partition-response state (nil/empty under ResponseThrottle):
	// per-domain planners, verdict-driven confinement pressure, and the
	// desired/applied per-local-core masks (resizes fire only on a
	// want!=applied delta, keeping the per-period path allocation-free).
	clusterers   []*Clusterer
	domPressure  []int
	wantMask     [][]mem.WayMask
	appliedMask  [][]mem.WayMask
	classScratch []AppClass
	coreScratch  []int

	decisions  []Decision
	migrations int
	maxWait    int
	period     uint64
	started    bool
	// spans is the resolved recorder (Config.Spans or DefaultSpans).
	spans *telemetry.SpanRecorder
}

// New builds a scheduler over m. The machine should have at least one LLC
// domain with a free core beyond the latency apps; two or more domains make
// placement meaningful.
func New(m *machine.Machine, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	if err := cfg.Caer.Validate(); err != nil {
		panic(err.Error())
	}
	spans := cfg.Spans
	if spans == nil {
		spans = telemetry.DefaultSpans
	}
	return &Scheduler{
		m:          m,
		cfg:        cfg,
		spans:      spans,
		table:      comm.NewTable(cfg.Caer.WindowSize),
		placer:     cfg.Policy.NewPlacer(),
		classifier: NewClassifier(cfg.PressureScale, cfg.Hysteresis),
		appByName:  make(map[string]int),
	}
}

// Table exposes the communication table (inspection and tests).
func (s *Scheduler) Table() *comm.Table { return s.table }

// Classifier exposes the online contention classifier.
func (s *Scheduler) Classifier() *Classifier { return s.classifier }

// Policy returns the configured placement policy.
func (s *Scheduler) Policy() Policy { return s.cfg.Policy }

// Period returns the number of periods stepped so far.
func (s *Scheduler) Period() uint64 { return s.period }

// Migrations returns how many cross-domain job migrations occurred.
func (s *Scheduler) Migrations() int { return s.migrations }

// MaxWait returns the longest time (periods) any admitted job spent
// queued. The admission queue's starvation bound guarantees this never
// exceeds Config.AgingBound while cores are available.
func (s *Scheduler) MaxWait() int { return s.maxWait }

// QueueLen returns the number of jobs currently waiting.
func (s *Scheduler) QueueLen() int {
	if s.queue == nil {
		return 0
	}
	return s.queue.len()
}

// JobStateOf returns job's lifecycle state. Allocation-free; the fleet
// layer polls it every period to harvest admissions and completions.
func (s *Scheduler) JobStateOf(job int) JobState { return s.jobs[job].state }

// JobAdmittedPeriod returns the 1-based period job left the queue for a
// core (0 = not yet admitted). Allocation-free.
func (s *Scheduler) JobAdmittedPeriod(job int) uint64 { return s.jobs[job].admitted }

// JobDonePeriod returns the 1-based period job completed in (0 = still
// queued or running). Allocation-free.
func (s *Scheduler) JobDonePeriod(job int) uint64 { return s.jobs[job].done }

// JobWaited returns how many periods job has spent in the admission queue
// so far. Allocation-free.
func (s *Scheduler) JobWaited(job int) int { return s.jobs[job].waited }

// AppAggressiveness returns the classifier's aggressiveness score for the
// named application, or (0, false) if this scheduler has never seen it.
// The fleet placer consults every machine's classifier this way, so a job
// profiled on one machine informs placement on all of them.
func (s *Scheduler) AppAggressiveness(name string) (float64, bool) {
	//caer:allow hotpath read-only lookup in the name table built at Submit time; the fleet dispatch scan never grows it
	app, ok := s.appByName[name]
	if !ok {
		return 0, false
	}
	return s.classifier.Aggressiveness(app), true
}

// Summary is the whole machine's state as the fleet-level placer sees it:
// the per-machine analogue of View, aggregated over every LLC domain. The
// scheduler refreshes a caller-held Summary in place, allocation-free.
type Summary struct {
	// FreeCores counts unoccupied batch cores across all domains.
	FreeCores int
	// Queued is the admission-queue depth.
	Queued int
	// Sensitivity is the summed classifier sensitivity of the machine's
	// latency-sensitive apps.
	Sensitivity float64
	// Pressure is the latency apps' summed windowed LLC-miss pressure,
	// normalized per app to [0, 1).
	Pressure float64
	// BatchLoad is the summed aggressiveness of resident batch jobs.
	BatchLoad float64
}

// Summarize fills sum with the machine-wide placement summary. It mirrors
// fillViews but collapses domains, and runs on the fleet's per-period
// dispatch path: allocation-free.
func (s *Scheduler) Summarize(sum *Summary) {
	free := 0
	if s.started {
		for _, f := range s.freeCount {
			free += f
		}
	} else {
		free = s.m.Cores() - len(s.latency)
	}
	sum.FreeCores = free
	// Count waiting states rather than the live ring: before the first Step
	// the ring does not exist yet (start seeds it from s.jobs), but the
	// fleet placer already needs the pre-start backlog.
	queued := 0
	for _, j := range s.jobs {
		if j.state == JobWaiting {
			queued++
		}
	}
	sum.Queued = queued
	sum.Sensitivity = 0
	sum.Pressure = 0
	sum.BatchLoad = 0
	for i := range s.latency {
		la := &s.latency[i]
		sum.Sensitivity += s.classifier.Sensitivity(la.app)
		p := la.slot.WindowMean()
		sum.Pressure += p / (p + s.cfg.PressureScale)
	}
	for _, j := range s.jobs {
		if j.state == JobRunning {
			sum.BatchLoad += s.classifier.Aggressiveness(j.app)
		}
	}
}

// LatencyApps returns the number of hosted latency-sensitive apps.
func (s *Scheduler) LatencyApps() int { return len(s.latency) }

// Monitor returns latency app i's CAER-M monitor, in registration order —
// the fault-injection hook (SetDown) the chaos and SLO suites script
// monitor outages through, mirroring the runner's Monitors accessor.
func (s *Scheduler) Monitor(i int) *caer.Monitor { return s.latency[i].mon }

// LatencySignals fills per-latency-app placement signals in registration
// order: pressure[i] is app i's normalized windowed LLC-miss pressure
// (p/(p+PressureScale), the same term Summarize aggregates), and
// sensitivity[i] its classifier sensitivity. Both slices must hold at
// least LatencyApps entries. Allocation-free — the fleet telemetry export
// calls it every period to keep its caer_core_pressure gauges live.
func (s *Scheduler) LatencySignals(pressure, sensitivity []float64) {
	for i := range s.latency {
		la := &s.latency[i]
		p := la.slot.WindowMean()
		pressure[i] = p / (p + s.cfg.PressureScale)
		sensitivity[i] = s.classifier.Sensitivity(la.app)
	}
}

// DegradedTicks returns the lifetime fail-open degraded periods summed
// over every CAER engine this scheduler has run, including engines
// abandoned by migration. Allocation-free — the fleet telemetry export
// polls it every period to drive a degraded-ticks budget SLO.
func (s *Scheduler) DegradedTicks() uint64 {
	var total uint64
	for _, j := range s.jobs {
		total += j.accStats.DegradedTicks
		if j.engine != nil {
			total += j.engine.Stats().DegradedTicks
		}
	}
	return total
}

// Decisions returns a copy of the placement/admission timeline.
func (s *Scheduler) Decisions() []Decision {
	out := make([]Decision, len(s.decisions))
	copy(out, s.decisions)
	return out
}

// AddLatency binds a latency-sensitive application to a core under a
// CAER-M monitor. Must be called before the first Step.
func (s *Scheduler) AddLatency(name string, core int, proc *machine.Process) {
	s.mustNotBeStarted()
	if core < 0 || core >= s.m.Cores() {
		panic(fmt.Sprintf("sched: latency core %d out of range [0,%d)", core, s.m.Cores()))
	}
	for _, la := range s.latency {
		if la.core == core {
			panic(fmt.Sprintf("sched: core %d already hosts latency app %s", core, la.name))
		}
	}
	s.m.Bind(core, proc)
	slot := s.table.Register(name, comm.RoleLatency)
	mon := caer.NewMonitor(pmu.New(s.m, core), slot)
	mon.SetSpans(s.spans, s.track(slot), s.cfg.TrackPrefix)
	s.latency = append(s.latency, latApp{
		name:   name,
		core:   core,
		domain: s.m.DomainOf(core),
		app:    s.classifier.AddApp(name),
		proc:   proc,
		slot:   slot,
		mon:    mon,
		pmu:    pmu.New(s.m, core),
	})
}

// Submit queues a batch job. Jobs sharing a Name share a classifier
// profile, so repeated instances of the same program benefit from what
// earlier runs taught the classifier. Jobs are admitted in submission
// order (FIFO with aging). Submission is allowed both before the first
// Step (the closed batch-set shape runner.ModeScheduled uses) and while
// the scheduler is running (open-loop arrivals dispatched by the fleet
// layer); a job submitted mid-run joins the tail of the queue.
func (s *Scheduler) Submit(j Job) int {
	if j.Name == "" || j.New == nil {
		panic("sched: job needs a name and a process factory")
	}
	app, ok := s.appByName[j.Name]
	if !ok {
		app = s.classifier.AddApp(j.Name)
		s.appByName[j.Name] = app
	}
	js := &jobState{
		spec:   j,
		app:    app,
		state:  JobWaiting,
		slot:   s.table.Register(j.Name, comm.RoleBatch),
		core:   -1,
		domain: -1,
	}
	s.spans.NameTrack(s.track(js.slot), s.cfg.TrackPrefix+"job/"+j.Name)
	s.jobs = append(s.jobs, js)
	id := len(s.jobs) - 1
	if s.started {
		// start() seeds the queue from s.jobs; after it, each dynamic
		// submission pushes its own entry.
		s.queue.push(id)
	}
	return id
}

// track maps a comm slot to its span-recorder track id, shifted by the
// configured per-scheduler offset. Allocation-free.
func (s *Scheduler) track(slot *comm.Slot) int32 {
	return int32(slot.ID()) + s.cfg.TrackOffset
}

// Withdraw pulls a still-waiting job back out of the admission queue and
// reports whether it succeeded (false once the job is running or done).
// The fleet layer uses this for cross-machine migration of queued work:
// the withdrawn job is terminal here (JobWithdrawn) and is re-submitted,
// with a fresh process factory, to another machine's scheduler. Cold path:
// it records a decision and may allocate.
func (s *Scheduler) Withdraw(job int) bool {
	if job < 0 || job >= len(s.jobs) {
		panic(fmt.Sprintf("sched: withdraw of unknown job %d", job))
	}
	j := s.jobs[job]
	if j.state != JobWaiting || !s.started {
		return false
	}
	if !s.queue.remove(job) {
		return false
	}
	j.state = JobWithdrawn
	s.decisions = append(s.decisions, Decision{
		Period: s.period, Kind: DecisionWithdraw, Job: job, Name: j.spec.Name,
		From: -1, To: -1, Core: -1, Waited: j.waited, Queued: s.queue.len(),
	})
	return true
}

func (s *Scheduler) mustNotBeStarted() {
	if s.started {
		panic("sched: latency apps and jobs must be added before the first Step")
	}
}

func (s *Scheduler) start() {
	if len(s.latency) == 0 {
		panic("sched: scheduler needs at least one latency-sensitive app")
	}
	domains := s.m.Domains()
	s.views = make([]View, domains)
	s.domDirective = make([]comm.Directive, domains)
	s.freeCount = make([]int, domains)
	s.domNeighborSlots = make([][]*comm.Slot, domains)
	s.coreBusy = make([]bool, s.m.Cores())
	for d := 0; d < domains; d++ {
		lo, hi := s.m.DomainCores(d)
		s.freeCount[d] = hi - lo
	}
	for i := range s.latency {
		la := &s.latency[i]
		s.coreBusy[la.core] = true
		s.freeCount[la.domain]--
		s.domNeighborSlots[la.domain] = append(s.domNeighborSlots[la.domain], la.slot)
	}
	if s.cfg.Response != ResponseThrottle {
		s.clusterers = make([]*Clusterer, domains)
		s.domPressure = make([]int, domains)
		s.wantMask = make([][]mem.WayMask, domains)
		s.appliedMask = make([][]mem.WayMask, domains)
		for d := 0; d < domains; d++ {
			if len(s.domNeighborSlots[d]) == 0 {
				continue // nothing to protect: the domain stays unpartitioned
			}
			h := s.m.DomainHierarchy(d)
			s.clusterers[d] = NewClusterer(h.L3().Ways(), s.cfg.Cluster)
			cores := h.Cores()
			s.wantMask[d] = make([]mem.WayMask, cores)
			s.appliedMask[d] = make([]mem.WayMask, cores)
			full := mem.FullMask(h.L3().Ways())
			for c := 0; c < cores; c++ {
				s.appliedMask[d][c] = full
			}
		}
		s.classScratch = make([]AppClass, s.m.Cores())
		s.coreScratch = make([]int, s.m.Cores())
	}
	s.queue = newJobQueue(len(s.jobs))
	for i := range s.jobs {
		s.queue.push(i)
	}
	s.started = true
}

// Step advances the deployment by one sampling period: run the machine,
// publish every latency app's sample, feed the classifier, tick every
// placed job's engine (combining directives per domain — all batch jobs in
// a domain react together, the paper's §3.2 scoped to the LLC they share),
// apply directives, retire finished jobs, and take admission and migration
// decisions.
func (s *Scheduler) Step() {
	if !s.started {
		s.start()
	}
	s.m.RunPeriod()
	telemetry.RunnerPeriods.Inc()
	s.period++
	s.table.BumpPeriod()
	s.observePeriod()
	s.tickEngines()
	s.applyDirectives()
	s.finishJobs()
	s.ageQueue()
	s.admit()
	s.maybeMigrate()
	s.applyPartitions()
	telemetry.SchedQueueDepth.Set(float64(s.queue.len()))
	running := 0
	for _, j := range s.jobs {
		if j.state == JobRunning {
			running++
		}
	}
	telemetry.SchedRunning.Set(float64(running))
}

// RunUntil steps until stop returns true or maxPeriods elapse, returning
// the number of periods executed.
func (s *Scheduler) RunUntil(stop func() bool, maxPeriods int) int {
	for i := 0; i < maxPeriods; i++ {
		if stop() {
			return i
		}
		s.Step()
	}
	return maxPeriods
}

// Done reports whether every submitted batch job has reached a terminal
// state: run to completion, or withdrawn by the fleet layer (the admission
// queue is drained either way). Latency apps are long-running services and
// do not gate completion; see LatencyReports for their lifecycle.
func (s *Scheduler) Done() bool {
	for _, j := range s.jobs {
		if j.state != JobDone && j.state != JobWithdrawn {
			return false
		}
	}
	return true
}

// observePeriod publishes every latency app's PMU sample and feeds the
// classifier. Allocation-free; runs every period.
func (s *Scheduler) observePeriod() {
	for i := range s.latency {
		la := &s.latency[i]
		la.mon.Tick()
		miss := float64(la.pmu.ReadDelta(pmu.EventLLCMisses))
		acc := float64(la.pmu.ReadDelta(pmu.EventLLCAccesses))
		s.classifier.Observe(la.app, miss, acc-miss)
		if la.donePeriod == 0 && la.proc.Done() {
			la.donePeriod = s.period
		}
	}
}

// tickEngines probes every running job's PMU, feeds the classifier,
// advances its engine, and combines directives per domain (any engine
// asserting pause pauses its whole domain's batch set). Allocation-free;
// runs every period.
func (s *Scheduler) tickEngines() {
	for d := range s.domDirective {
		s.domDirective[d] = comm.DirectiveRun
	}
	for _, j := range s.jobs {
		if j.state != JobRunning {
			continue
		}
		miss := float64(j.pmu.ReadDelta(pmu.EventLLCMisses))
		acc := float64(j.pmu.ReadDelta(pmu.EventLLCAccesses))
		j.missTotal += miss
		s.classifier.Observe(j.app, miss, acc-miss)
		if j.engine == nil {
			continue
		}
		if j.engine.Tick(miss) == comm.DirectivePause {
			s.domDirective[j.domain] = comm.DirectivePause
		}
		st := j.engine.Stats()
		if st.CPositive > j.lastPos {
			s.classifier.ObserveVerdict(j.app, true)
			j.lastPos = st.CPositive
		}
		if st.CNegative > j.lastNeg {
			s.classifier.ObserveVerdict(j.app, false)
			j.lastNeg = st.CNegative
		}
	}
}

// applyDirectives actuates each domain's combined directive on its running
// jobs' cores and slots. Under the pure partition response the directive
// never pauses anyone — contention verdicts move way-masks instead (see
// applyPartitions) and the batch set keeps running. Allocation-free; runs
// every period.
func (s *Scheduler) applyDirectives() {
	throttle := s.cfg.Response != ResponsePartition
	for _, j := range s.jobs {
		if j.state != JobRunning {
			continue
		}
		d := s.domDirective[j.domain]
		if !throttle {
			d = comm.DirectiveRun
		}
		s.m.Core(j.core).SetPaused(d == comm.DirectivePause)
		j.slot.SetDirective(d)
	}
}

// applyPartitions drives the LFOC-style partition response (DESIGN.md
// §16): per domain, fold this period's combined engine verdict into the
// confinement pressure, re-plan the cache clusters from the classifier's
// current classes, and apply any mask deltas to the domain's L3. The
// per-period path is allocation-free; actual resizes (rare) go through
// the cold resizePartition.
func (s *Scheduler) applyPartitions() {
	if s.cfg.Response == ResponseThrottle {
		return
	}
	for d, cl := range s.clusterers {
		if cl == nil {
			continue
		}
		if s.domDirective[d] == comm.DirectivePause {
			if s.domPressure[d] < cl.cfg.MaxPressure {
				s.domPressure[d]++
			}
		} else if s.domPressure[d] > 0 {
			s.domPressure[d]--
		}
		// Gather resident apps into the pre-sized scratches (indexed
		// writes, never growth: n is bounded by the core count).
		n := 0
		for i := range s.latency {
			la := &s.latency[i]
			if la.domain != d {
				continue
			}
			s.classScratch[n] = AppClass{Name: la.name, Latency: true,
				Aggressor: s.classifier.Aggressor(la.app), Sensitive: s.classifier.Sensitive(la.app)}
			s.coreScratch[n] = s.m.LocalCore(la.core)
			n++
		}
		for _, j := range s.jobs {
			if j.state != JobRunning || j.domain != d {
				continue
			}
			s.classScratch[n] = AppClass{Name: j.spec.Name,
				Aggressor: s.classifier.Aggressor(j.app), Sensitive: s.classifier.Sensitive(j.app)}
			s.coreScratch[n] = s.m.LocalCore(j.core)
			n++
		}
		classes, cores := s.classScratch[:n], s.coreScratch[:n]
		if cl.Rescore(classes, s.domPressure[d]) {
			telemetry.PartPlanChanges.Inc()
			plan := cl.Plan()
			telemetry.PartProtectedWays.Set(float64(plan.Protected.Count()))
			telemetry.PartConfinedWays.Set(float64(plan.Confined.Count()))
			telemetry.PartPressure.Set(float64(s.domPressure[d]))
		}
		plan := cl.Plan()
		want := s.wantMask[d]
		for lc := range want {
			want[lc] = plan.Default
		}
		for i := range classes {
			want[cores[i]] = plan.MaskFor(Classify(classes[i]))
		}
		for lc := range want {
			if want[lc] != s.appliedMask[d][lc] {
				s.resizePartition(d, lc, want[lc])
			}
		}
	}
}

// resizePartition applies one owner's new L3 way-mask, back-invalidating
// dropped lines under invalidate-mode resizes. Cold path: resizes are rare
// relative to periods and may allocate.
func (s *Scheduler) resizePartition(d, localCore int, mask mem.WayMask) {
	h := s.m.DomainHierarchy(d)
	dropped := h.SetL3OwnerMask(localCore, mask, s.cfg.Cluster.ResizeMode)
	s.appliedMask[d][localCore] = mask
	telemetry.PartResizes.Inc()
	if dropped > 0 {
		telemetry.PartInvalidations.Add(uint64(dropped))
	}
	if s.cfg.Cluster.ResizeMode == mem.ResizeOrphan {
		if n := h.L3().StrandedLines(localCore); n > 0 {
			telemetry.PartOrphans.Add(uint64(n))
		}
	}
}

// finishJobs retires jobs that ran to completion, releasing their cores.
func (s *Scheduler) finishJobs() {
	for i, j := range s.jobs {
		if j.state != JobRunning || !j.proc.Done() {
			continue
		}
		s.m.FlushCore(j.core)
		s.m.Unbind(j.core)
		s.m.Core(j.core).SetPaused(false)
		s.coreBusy[j.core] = false
		s.freeCount[j.domain]++
		j.state = JobDone
		j.done = s.period
		telemetry.SchedCompletions.Inc()
		residency := s.period - j.admitted
		if residency == 0 {
			residency = 1
		}
		s.spans.Record(s.track(j.slot), telemetry.SpanJob,
			j.admitted, uint32(residency), float64(j.migrations))
		s.decisions = append(s.decisions, Decision{
			Period: s.period, Kind: DecisionComplete, Job: i, Name: j.spec.Name,
			From: j.domain, To: -1, Core: j.core, Queued: s.queue.len(),
		})
	}
}

// ageQueue advances every waiting job's age. Allocation-free.
func (s *Scheduler) ageQueue() {
	for _, j := range s.jobs {
		if j.state == JobWaiting {
			j.waited++
		}
	}
}

// admit takes at most one *voluntary* admission decision per period
// (rate-bounding the placement churn): the queue head is placed by the
// policy, unless the chosen domain's predicted interference exceeds the
// admission threshold — then the whole FIFO waits for pressure to subside,
// up to the aging bound. Jobs past the aging bound are admitted regardless
// of the threshold AND regardless of the per-period rate limit, so aged
// jobs never queue behind one another: while a free core exists, no job
// waits past AgingBound (starvation avoidance).
func (s *Scheduler) admit() {
	admitted := 0
	for {
		head := s.queue.peek()
		if head < 0 {
			return
		}
		j := s.jobs[head]
		s.fillViews()
		aggr := s.classifier.Aggressiveness(j.app)
		d := s.placer.Place(aggr, s.views)
		if d < 0 {
			return // no free core anywhere: capacity-bound wait
		}
		aged := j.waited >= s.cfg.AgingBound
		if !aged && (admitted > 0 || interferenceScore(s.views[d], aggr) > s.cfg.AdmitThreshold) {
			if admitted == 0 {
				telemetry.SchedVetoes.Inc()
			}
			return // pressure too high where the policy would place us
		}
		s.admitTo(head, j, d, aged)
		admitted++
	}
}

// admitTo places queue head j on domain d and records the decision.
func (s *Scheduler) admitTo(head int, j *jobState, d int, aged bool) {
	s.queue.pop()
	core := s.findFreeCore(d)
	proc := j.spec.New()
	s.m.Bind(core, proc)
	j.proc = proc
	j.core = core
	j.domain = d
	j.state = JobRunning
	j.aged = aged
	j.admitted = s.period
	j.pmu = pmu.New(s.m, core)
	j.engine = s.newEngine(j, d)
	j.lastPos, j.lastNeg = 0, 0
	s.coreBusy[core] = true
	s.freeCount[d]--
	s.placer.Commit(d)
	if j.waited > s.maxWait {
		s.maxWait = j.waited
	}
	telemetry.SchedAdmissions.Inc()
	if aged {
		telemetry.SchedAgedBypasses.Inc()
	}
	if j.waited > 0 {
		s.spans.Record(s.track(j.slot), telemetry.SpanQueued,
			s.period-uint64(j.waited), uint32(j.waited), float64(s.queue.len()))
	}
	s.decisions = append(s.decisions, Decision{
		Period: s.period, Kind: DecisionAdmit, Job: head, Name: j.spec.Name,
		From: -1, To: d, Core: core, Waited: j.waited, Aged: aged, Queued: s.queue.len(),
	})
}

// newEngine builds a CAER engine for a job placed on domain d, or nil when
// the domain hosts no latency-sensitive app (nothing to protect there —
// the job runs unmanaged).
func (s *Scheduler) newEngine(j *jobState, d int) *caer.Engine {
	neighbors := s.domNeighborSlots[d]
	if len(neighbors) == 0 {
		return nil
	}
	eng := caer.NewEngine(
		s.cfg.Heuristic.NewDetector(s.cfg.Caer),
		s.cfg.Heuristic.NewResponder(s.cfg.Caer),
		j.slot, neighbors)
	eng.SetWatchdog(s.cfg.Caer.WatchdogPeriods)
	eng.SetSpans(s.spans, s.track(j.slot), s.cfg.TrackPrefix)
	return eng
}

// fillViews refreshes the per-domain placement views. Allocation-free;
// runs whenever a placement or migration decision is evaluated.
func (s *Scheduler) fillViews() {
	for d := range s.views {
		s.views[d] = View{FreeCores: s.freeCount[d]}
	}
	for i := range s.latency {
		la := &s.latency[i]
		s.views[la.domain].Sensitivity += s.classifier.Sensitivity(la.app)
		p := la.slot.WindowMean()
		s.views[la.domain].Pressure += p / (p + s.cfg.PressureScale)
	}
	for _, j := range s.jobs {
		if j.state == JobRunning {
			s.views[j.domain].BatchLoad += s.classifier.Aggressiveness(j.app)
		}
	}
}

// maybeMigrate evaluates bounded-rate migration: every MigrationPeriod
// periods, the single running job whose move to another domain improves
// predicted interference the most — by at least MigrationMargin — is
// re-placed there. The job's process survives the move; its caches start
// cold on the new domain (the realistic migration cost).
func (s *Scheduler) maybeMigrate() {
	if s.cfg.MigrationPeriod <= 0 || s.period%uint64(s.cfg.MigrationPeriod) != 0 {
		return
	}
	s.fillViews()
	bestJob, bestTo := -1, -1
	var bestGain float64
	for i, j := range s.jobs {
		if j.state != JobRunning {
			continue
		}
		aggr := s.classifier.Aggressiveness(j.app)
		// Score the job's current domain without its own batch-load
		// contribution, so staying put isn't penalized for its own weight.
		from := s.views[j.domain]
		from.BatchLoad -= aggr
		cur := interferenceScore(from, aggr)
		for d := range s.views {
			if d == j.domain || s.views[d].FreeCores == 0 {
				continue
			}
			gain := cur - interferenceScore(s.views[d], aggr)
			if gain > bestGain {
				bestJob, bestTo, bestGain = i, d, gain
			}
		}
	}
	if bestJob < 0 || bestGain < s.cfg.MigrationMargin {
		return
	}
	j := s.jobs[bestJob]
	oldCore, oldDomain := j.core, j.domain
	s.m.FlushCore(oldCore)
	s.m.Unbind(oldCore)
	s.m.Core(oldCore).SetPaused(false)
	s.coreBusy[oldCore] = false
	s.freeCount[oldDomain]++
	if j.engine != nil {
		st := j.engine.Stats()
		s.accumulate(j, st)
	}
	core := s.findFreeCore(bestTo)
	s.m.Bind(core, j.proc)
	j.core = core
	j.domain = bestTo
	j.pmu = pmu.New(s.m, core)
	j.engine = s.newEngine(j, bestTo)
	j.lastPos, j.lastNeg = 0, 0
	j.migrations++
	s.coreBusy[core] = true
	s.freeCount[bestTo]--
	s.migrations++
	telemetry.SchedMigrations.Inc()
	s.decisions = append(s.decisions, Decision{
		Period: s.period, Kind: DecisionMigrate, Job: bestJob, Name: j.spec.Name,
		From: oldDomain, To: bestTo, Core: core, Queued: s.queue.len(),
	})
}

// accumulate folds an abandoned engine's counters into the job's totals.
func (s *Scheduler) accumulate(j *jobState, st caer.EngineStats) {
	j.accStats.Periods += st.Periods
	j.accStats.PausedPeriods += st.PausedPeriods
	j.accStats.RunPeriods += st.RunPeriods
	j.accStats.CPositive += st.CPositive
	j.accStats.CNegative += st.CNegative
	j.accStats.DetectionTicks += st.DetectionTicks
	j.accStats.HoldTicks += st.HoldTicks
	j.accStats.DegradedTicks += st.DegradedTicks
	j.accStats.WatchdogTrips += st.WatchdogTrips
}

// findFreeCore returns a free core of domain d; it panics if the domain's
// free-core accounting is corrupt.
func (s *Scheduler) findFreeCore(d int) int {
	lo, hi := s.m.DomainCores(d)
	for c := lo; c < hi; c++ {
		if !s.coreBusy[c] {
			return c
		}
	}
	panic(fmt.Sprintf("sched: domain %d has no free core despite freeCount %d", d, s.freeCount[d]))
}

// JobReport is one job's lifecycle summary.
type JobReport struct {
	Name         string
	State        JobState
	Domain, Core int
	Waited       int
	Aged         bool
	Admitted     uint64 // 1-based period; 0 = never admitted
	Done         uint64 // 1-based period; 0 = not finished
	Migrations   int

	// Instructions and Misses are the job process's lifetime totals (as
	// observed by the scheduler's per-job probe; 0 before admission).
	Instructions uint64
	Misses       uint64

	// Engine decision counters summed over every engine the job ran
	// under (it gets a fresh engine per migration).
	PausedPeriods, RunPeriods uint64
	CPositive, CNegative      uint64
}

// JobReports returns every job's summary in submission order.
func (s *Scheduler) JobReports() []JobReport {
	out := make([]JobReport, len(s.jobs))
	for i, j := range s.jobs {
		r := JobReport{
			Name: j.spec.Name, State: j.state, Domain: j.domain, Core: j.core,
			Waited: j.waited, Aged: j.aged, Admitted: j.admitted, Done: j.done,
			Migrations:    j.migrations,
			PausedPeriods: j.accStats.PausedPeriods, RunPeriods: j.accStats.RunPeriods,
			CPositive: j.accStats.CPositive, CNegative: j.accStats.CNegative,
			Misses: uint64(j.missTotal),
		}
		if j.proc != nil {
			r.Instructions = j.proc.Retired()
		}
		if j.engine != nil {
			st := j.engine.Stats()
			r.PausedPeriods += st.PausedPeriods
			r.RunPeriods += st.RunPeriods
			r.CPositive += st.CPositive
			r.CNegative += st.CNegative
		}
		out[i] = r
	}
	return out
}

// LatencyReport is one latency-sensitive app's summary.
type LatencyReport struct {
	Name   string
	Core   int
	Domain int
	App    int    // classifier id
	Done   uint64 // 1-based completion period; 0 = still running
}

// LatencyReports returns every latency app's summary in registration
// order.
func (s *Scheduler) LatencyReports() []LatencyReport {
	out := make([]LatencyReport, len(s.latency))
	for i := range s.latency {
		la := &s.latency[i]
		out[i] = LatencyReport{Name: la.name, Core: la.core, Domain: la.domain, App: la.app, Done: la.donePeriod}
	}
	return out
}
