package comm

import (
	"sync"
	"testing"
)

func TestRoleAndDirectiveStrings(t *testing.T) {
	if RoleLatency.String() != "latency-sensitive" || RoleBatch.String() != "batch" {
		t.Error("role strings wrong")
	}
	if Role(9).String() != "Role(9)" {
		t.Error("unknown role string wrong")
	}
	if DirectiveRun.String() != "run" || DirectivePause.String() != "pause" {
		t.Error("directive strings wrong")
	}
	if Directive(7).String() != "Directive(7)" {
		t.Error("unknown directive string wrong")
	}
}

func TestNewTableValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable(0) did not panic")
		}
	}()
	NewTable(0)
}

func TestRegisterAssignsIDsAndRoles(t *testing.T) {
	tab := NewTable(8)
	a := tab.Register("search", RoleLatency)
	b := tab.Register("lbm", RoleBatch)
	if a.ID() != 0 || b.ID() != 1 {
		t.Errorf("IDs = %d,%d, want 0,1", a.ID(), b.ID())
	}
	if a.Name() != "search" || a.Role() != RoleLatency {
		t.Error("slot a metadata wrong")
	}
	if b.Role() != RoleBatch {
		t.Error("slot b role wrong")
	}
	if got := len(tab.Slots()); got != 2 {
		t.Errorf("Slots() = %d entries, want 2", got)
	}
	if got := tab.SlotsByRole(RoleBatch); len(got) != 1 || got[0] != b {
		t.Error("SlotsByRole(batch) wrong")
	}
	if tab.WindowSize() != 8 {
		t.Errorf("WindowSize = %d, want 8", tab.WindowSize())
	}
}

func TestSlotPublishAndWindow(t *testing.T) {
	tab := NewTable(3)
	s := tab.Register("x", RoleLatency)
	if s.LastSample() != 0 || s.WindowLen() != 0 {
		t.Error("fresh slot not empty")
	}
	for _, v := range []float64{100, 200, 300, 400} {
		s.Publish(v)
	}
	if s.Published() != 4 {
		t.Errorf("Published = %d, want 4", s.Published())
	}
	if s.WindowLen() != 3 {
		t.Errorf("WindowLen = %d, want 3", s.WindowLen())
	}
	if got := s.WindowMean(); got != 300 {
		t.Errorf("WindowMean = %v, want 300", got)
	}
	if got := s.LastSample(); got != 400 {
		t.Errorf("LastSample = %v, want 400", got)
	}
	if got := s.WindowMeanRange(0, 2); got != 250 {
		t.Errorf("WindowMeanRange(0,2) = %v, want 250", got)
	}
	samples := s.Samples()
	want := []float64{200, 300, 400}
	for i := range want {
		if samples[i] != want[i] {
			t.Errorf("Samples[%d] = %v, want %v", i, samples[i], want[i])
		}
	}
}

func TestDirectives(t *testing.T) {
	tab := NewTable(4)
	s := tab.Register("b", RoleBatch)
	if s.Directive() != DirectiveRun {
		t.Error("default directive != run")
	}
	s.SetDirective(DirectivePause)
	if s.Directive() != DirectivePause {
		t.Error("SetDirective did not stick")
	}
}

func TestBroadcastDirectiveTargetsBatchOnly(t *testing.T) {
	tab := NewTable(4)
	lat := tab.Register("search", RoleLatency)
	b1 := tab.Register("lbm1", RoleBatch)
	b2 := tab.Register("lbm2", RoleBatch)
	tab.BroadcastDirective(DirectivePause)
	if b1.Directive() != DirectivePause || b2.Directive() != DirectivePause {
		t.Error("batch slots did not receive broadcast")
	}
	if lat.Directive() != DirectiveRun {
		t.Error("latency slot was throttled by broadcast")
	}
}

func TestTableConcurrentPublish(t *testing.T) {
	tab := NewTable(64)
	s1 := tab.Register("a", RoleLatency)
	s2 := tab.Register("b", RoleBatch)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(slot *Slot) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				slot.Publish(float64(i))
				_ = slot.WindowMean()
				_ = slot.Directive()
			}
		}([]*Slot{s1, s2}[g%2])
	}
	wg.Wait()
	if s1.Published() != 2000 || s2.Published() != 2000 {
		t.Errorf("published = %d,%d, want 2000,2000", s1.Published(), s2.Published())
	}
}
