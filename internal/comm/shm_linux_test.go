//go:build linux

package comm

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func TestShmTableCreateAndRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caer.tbl")
	tab, err := CreateShmTable(path, 4, 2)
	if err != nil {
		t.Fatalf("CreateShmTable: %v", err)
	}
	defer tab.Close()
	if tab.WindowSize() != 4 || tab.SlotCount() != 2 {
		t.Fatalf("geometry = %d/%d, want 4/2", tab.WindowSize(), tab.SlotCount())
	}
	tab.SetRole(0, RoleLatency)
	tab.SetRole(1, RoleBatch)
	if tab.RoleOf(0) != RoleLatency || tab.RoleOf(1) != RoleBatch {
		t.Error("roles did not round-trip")
	}
	for _, v := range []float64{1.5, 2.5, 3.5, 4.5, 5.5} {
		tab.Publish(0, v)
	}
	if tab.Published(0) != 5 {
		t.Errorf("Published = %d, want 5", tab.Published(0))
	}
	got := tab.Samples(0)
	want := []float64{2.5, 3.5, 4.5, 5.5}
	if len(got) != len(want) {
		t.Fatalf("Samples len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Samples[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if m := tab.WindowMean(0); m != 4 {
		t.Errorf("WindowMean = %v, want 4", m)
	}
	if s := tab.Samples(1); len(s) != 0 {
		t.Errorf("slot 1 has %d samples, want 0", len(s))
	}
}

func TestShmTableCrossMappingVisibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caer.tbl")
	creator, err := CreateShmTable(path, 8, 2)
	if err != nil {
		t.Fatalf("CreateShmTable: %v", err)
	}
	defer creator.Close()
	attached, err := OpenShmTable(path)
	if err != nil {
		t.Fatalf("OpenShmTable: %v", err)
	}
	defer attached.Close()
	if attached.WindowSize() != 8 || attached.SlotCount() != 2 {
		t.Fatalf("attached geometry = %d/%d", attached.WindowSize(), attached.SlotCount())
	}
	// Writes through one mapping are visible through the other (MAP_SHARED),
	// which is what lets two CAER processes cooperate.
	creator.Publish(0, 42)
	if got := attached.Samples(0); len(got) != 1 || got[0] != 42 {
		t.Errorf("attached mapping saw %v, want [42]", got)
	}
	attached.SetDirective(1, DirectivePause)
	if creator.DirectiveOf(1) != DirectivePause {
		t.Error("directive written via attached mapping not visible to creator")
	}
}

func TestShmTableOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenShmTable(filepath.Join(dir, "missing.tbl")); err == nil {
		t.Error("OpenShmTable(missing) succeeded")
	}
	// Not a table: wrong magic.
	path := filepath.Join(dir, "junk.tbl")
	junk, err := CreateShmTable(path, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	junk.data[0] = 0xFF // corrupt magic
	junk.Close()
	// Closing removed the owned file; recreate junk content manually.
	if _, err := OpenShmTable(path); err == nil {
		t.Error("OpenShmTable on removed/corrupt file succeeded")
	}
}

func TestShmTableGeometryValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateShmTable(filepath.Join(dir, "x"), 0, 1); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := CreateShmTable(filepath.Join(dir, "x"), 1, 0); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestShmTableSlotRangePanics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caer.tbl")
	tab, err := CreateShmTable(path, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range slot did not panic")
		}
	}()
	tab.Publish(1, 0)
}

// TestShmTableMatchesInMemoryTable is a differential property test: a
// random publish/directive sequence applied to both the mmap-backed table
// and the in-memory Table must yield identical observable state.
func TestShmTableMatchesInMemoryTable(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		window := rng.Intn(8) + 1
		path := filepath.Join(t.TempDir(), "diff.tbl")
		shm, err := CreateShmTable(path, window, 2)
		if err != nil {
			t.Fatal(err)
		}
		mem := NewTable(window)
		slots := []*Slot{mem.Register("a", RoleLatency), mem.Register("b", RoleBatch)}
		shm.SetRole(0, RoleLatency)
		shm.SetRole(1, RoleBatch)

		for op := 0; op < 200; op++ {
			slot := rng.Intn(2)
			switch rng.Intn(3) {
			case 0, 1:
				v := float64(rng.Intn(1000))
				shm.Publish(slot, v)
				slots[slot].Publish(v)
			case 2:
				d := Directive(rng.Intn(2))
				shm.SetDirective(slot, d)
				slots[slot].SetDirective(d)
			}
			// Compare observable state.
			for s := 0; s < 2; s++ {
				if shm.Published(s) != slots[s].Published() {
					t.Fatalf("trial %d op %d slot %d: published %d vs %d",
						trial, op, s, shm.Published(s), slots[s].Published())
				}
				if shm.DirectiveOf(s) != slots[s].Directive() {
					t.Fatalf("trial %d op %d slot %d: directive mismatch", trial, op, s)
				}
				got, want := shm.Samples(s), slots[s].Samples()
				if len(got) != len(want) {
					t.Fatalf("trial %d op %d slot %d: window %v vs %v", trial, op, s, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d op %d slot %d: window %v vs %v", trial, op, s, got, want)
					}
				}
				if shm.WindowMean(s) != slots[s].WindowMean() {
					t.Fatalf("trial %d op %d slot %d: mean %v vs %v",
						trial, op, s, shm.WindowMean(s), slots[s].WindowMean())
				}
			}
		}
		shm.Close()
	}
}

func TestShmTableCloseRemovesOwnedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caer.tbl")
	tab, err := CreateShmTable(path, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := OpenShmTable(path); err == nil {
		t.Error("owned file still present after Close")
	}
	// Double close is safe.
	if err := tab.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestShmTableStalePeriods(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caer.tbl")
	tab, err := CreateShmTable(path, 4, 2)
	if err != nil {
		t.Fatalf("CreateShmTable: %v", err)
	}
	defer tab.Close()

	if tab.Period() != 0 || tab.StalePeriods(0) != 0 {
		t.Fatal("fresh shm table reports a period or staleness")
	}

	// Healthy periods: slot 0 publishes each period, slot 1 never does.
	for p := 1; p <= 4; p++ {
		tab.BumpPeriod()
		tab.Publish(0, float64(p))
		if got := tab.StalePeriods(0); got != 0 {
			t.Fatalf("period %d: healthy slot stale by %d", p, got)
		}
		if got := tab.StalePeriods(1); got != uint64(p) {
			t.Fatalf("period %d: never-published slot stale by %d, want %d", p, got, p)
		}
	}

	// Slot 0's publisher dies; staleness grows until it resumes.
	for k := 1; k <= 3; k++ {
		tab.BumpPeriod()
		if got := tab.StalePeriods(0); got != uint64(k) {
			t.Fatalf("after %d silent periods StalePeriods = %d", k, got)
		}
	}
	tab.Publish(0, 9)
	if got := tab.StalePeriods(0); got != 0 {
		t.Fatalf("StalePeriods after resumed publish = %d, want 0", got)
	}

	// The liveness protocol is cross-process state: an attached mapping
	// sees the same period and staleness.
	attached, err := OpenShmTable(path)
	if err != nil {
		t.Fatalf("OpenShmTable: %v", err)
	}
	defer attached.Close()
	if attached.Period() != tab.Period() {
		t.Error("attached mapping disagrees on period")
	}
	if attached.StalePeriods(0) != 0 || attached.StalePeriods(1) != tab.Period() {
		t.Error("attached mapping disagrees on staleness")
	}
	if attached.Published(0) != 5 {
		t.Errorf("attached Published = %d, want 5", attached.Published(0))
	}
}

// TestShmTableHotPathAllocs pins the shared-memory hot path at zero
// allocations: the engine reads WindowMean for every neighbor every period
// and the monitor publishes every period, both on the 1 ms loop.
func TestShmTableHotPathAllocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caer.tbl")
	tab, err := CreateShmTable(path, 8, 2)
	if err != nil {
		t.Fatalf("CreateShmTable: %v", err)
	}
	defer tab.Close()
	for i := 0; i < 8; i++ {
		tab.Publish(0, float64(i))
	}
	if n := testing.AllocsPerRun(1000, func() { tab.WindowMean(0) }); n != 0 {
		t.Errorf("ShmTable.WindowMean allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { tab.Publish(0, 42) }); n != 0 {
		t.Errorf("ShmTable.Publish allocates %v per run, want 0", n)
	}
}
