// Package comm implements the CAER communication table: the shared
// structure through which the cooperating CAER virtual layers exchange
// per-period PMU samples and reaction directives (paper §3.2, Figure 4).
//
// Each registered application owns one slot. The slot's sample window is
// single-writer (the CAER layer under that application publishes its own
// LLC-miss samples); directives are written by the CAER engines and must be
// honoured by every batch application. Table is safe for concurrent use;
// ShmTable additionally backs the same layout with a memory-mapped file so
// separate processes can cooperate, as in the paper's deployment.
package comm

import (
	"fmt"
	"sync"

	"caer/internal/stats"
)

// Role classifies an application the way the paper's data centers do.
type Role int

const (
	// RoleLatency marks a latency-sensitive application: monitored, never
	// modified.
	RoleLatency Role = iota
	// RoleBatch marks a throughput-oriented batch application: monitored
	// and throttled.
	RoleBatch
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleLatency:
		return "latency-sensitive"
	case RoleBatch:
		return "batch"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Directive is a reaction order recorded in the table. All batch
// applications must adhere to the current directive (paper §3.2).
type Directive int

const (
	// DirectiveRun lets the batch application execute at full speed.
	DirectiveRun Directive = iota
	// DirectivePause halts the batch application for the coming period(s).
	DirectivePause
)

// String returns the directive name.
func (d Directive) String() string {
	switch d {
	case DirectiveRun:
		return "run"
	case DirectivePause:
		return "pause"
	default:
		return fmt.Sprintf("Directive(%d)", int(d))
	}
}

// Slot is one application's region of the table.
type Slot struct {
	id   int
	name string
	role Role

	mu        sync.Mutex
	window    *stats.Window
	directive Directive
	published uint64 // samples published over the slot's lifetime
}

// ID returns the slot index within its table.
func (s *Slot) ID() int { return s.id }

// Name returns the application name.
func (s *Slot) Name() string { return s.name }

// Role returns the application class.
func (s *Slot) Role() Role { return s.role }

// Publish appends one per-period sample (LLC misses during the period) to
// the slot's window. Only the owning CAER layer calls Publish.
func (s *Slot) Publish(llcMisses float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.window.Push(llcMisses)
	s.published++
}

// Published returns the lifetime sample count.
func (s *Slot) Published() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.published
}

// WindowMean returns the mean of the sample window (0 when empty).
func (s *Slot) WindowMean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.Mean()
}

// WindowMeanRange returns the mean of window positions [from, to); see
// stats.Window.MeanRange.
func (s *Slot) WindowMeanRange(from, to int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.MeanRange(from, to)
}

// WindowLen returns the number of samples currently windowed.
func (s *Slot) WindowLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.Len()
}

// LastSample returns the most recent sample, or 0 if none.
func (s *Slot) LastSample() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.window.Len() == 0 {
		return 0
	}
	return s.window.Last()
}

// Samples returns a copy of the windowed samples, oldest first.
func (s *Slot) Samples() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.Snapshot()
}

// SetDirective records a reaction directive for this slot.
func (s *Slot) SetDirective(d Directive) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.directive = d
}

// Directive returns the current directive.
func (s *Slot) Directive() Directive {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.directive
}

// Table is the in-process communication table.
type Table struct {
	mu         sync.Mutex
	slots      []*Slot
	windowSize int
}

// NewTable constructs a table whose slots hold windowSize samples each.
func NewTable(windowSize int) *Table {
	if windowSize <= 0 {
		panic(fmt.Sprintf("comm: window size must be positive, got %d", windowSize))
	}
	return &Table{windowSize: windowSize}
}

// WindowSize returns the per-slot window capacity.
func (t *Table) WindowSize() int { return t.windowSize }

// Register adds an application and returns its slot.
func (t *Table) Register(name string, role Role) *Slot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Slot{
		id:     len(t.slots),
		name:   name,
		role:   role,
		window: stats.NewWindow(t.windowSize),
	}
	t.slots = append(t.slots, s)
	return s
}

// Slots returns all registered slots in registration order.
func (t *Table) Slots() []*Slot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Slot, len(t.slots))
	copy(out, t.slots)
	return out
}

// SlotsByRole returns the slots with the given role.
func (t *Table) SlotsByRole(role Role) []*Slot {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Slot
	for _, s := range t.slots {
		if s.role == role {
			out = append(out, s)
		}
	}
	return out
}

// BroadcastDirective sets d on every batch slot: the paper requires all
// batch processes to react together. It iterates the slot list under the
// table lock rather than taking a snapshot — this runs once per sampling
// period and must not allocate.
func (t *Table) BroadcastDirective(d Directive) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.slots {
		if s.role == RoleBatch {
			s.SetDirective(d)
		}
	}
}
