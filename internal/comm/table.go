// Package comm implements the CAER communication table: the shared
// structure through which the cooperating CAER virtual layers exchange
// per-period PMU samples and reaction directives (paper §3.2, Figure 4).
//
// Each registered application owns one slot. The slot's sample window is
// single-writer (the CAER layer under that application publishes its own
// LLC-miss samples); directives are written by the CAER engines and must be
// honoured by every batch application. Table is safe for concurrent use;
// ShmTable additionally backs the same layout with a memory-mapped file so
// separate processes can cooperate, as in the paper's deployment.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"caer/internal/stats"
	"caer/internal/telemetry"
)

// Role classifies an application the way the paper's data centers do.
type Role int

const (
	// RoleLatency marks a latency-sensitive application: monitored, never
	// modified.
	RoleLatency Role = iota
	// RoleBatch marks a throughput-oriented batch application: monitored
	// and throttled.
	RoleBatch
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleLatency:
		return "latency-sensitive"
	case RoleBatch:
		return "batch"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Directive is a reaction order recorded in the table. All batch
// applications must adhere to the current directive (paper §3.2).
type Directive int

const (
	// DirectiveRun lets the batch application execute at full speed.
	DirectiveRun Directive = iota
	// DirectivePause halts the batch application for the coming period(s).
	DirectivePause
)

// String returns the directive name.
func (d Directive) String() string {
	switch d {
	case DirectiveRun:
		return "run"
	case DirectivePause:
		return "pause"
	default:
		return fmt.Sprintf("Directive(%d)", int(d))
	}
}

// Slot is one application's region of the table.
type Slot struct {
	id    int
	name  string
	role  Role
	table *Table

	mu        sync.Mutex
	window    *stats.Window
	directive Directive
	published uint64 // publish sequence number (samples over the lifetime)
	// due is the expected table period of the owner's next publish, as
	// declared by its latest publish/cadence declaration; 0 = never
	// published. For the default cadence of 1 it equals the publish period
	// plus 1, which is why StalePeriods can measure lateness against the
	// declared cadence with no extra state: a slot is stale only once the
	// table clock passes due.
	due uint64
}

// ID returns the slot index within its table.
func (s *Slot) ID() int { return s.id }

// Name returns the application name.
func (s *Slot) Name() string { return s.name }

// Role returns the application class.
func (s *Slot) Role() Role { return s.role }

// Publish appends one per-period sample (LLC misses during the period) to
// the slot's window, advances the slot's publish sequence number, and
// declares the next publish due in the following period (cadence 1). Only
// the owning CAER layer calls Publish.
func (s *Slot) Publish(llcMisses float64) {
	s.PublishWithCadence(llcMisses, 1)
}

// PublishWithCadence is Publish with an explicit cadence declaration: the
// owner commits to publishing again within cadence table periods. A sampling
// controller that deliberately skips probes declares its widened interval
// here (or re-stamps it with DeclareCadence) so that StalePeriods — and the
// engine watchdogs consuming it — measure lateness against the declared
// schedule rather than flagging every intentional skip as a dead publisher.
// A cadence of 0 is treated as 1.
func (s *Slot) PublishWithCadence(llcMisses float64, cadence uint64) {
	if cadence == 0 {
		cadence = 1
	}
	telemetry.CommPublishes.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.window.Push(llcMisses)
	s.published++
	s.due = s.table.period.Load() + cadence
}

// DeclareCadence re-stamps the slot's expected next publish to cadence
// table periods from now, without publishing a sample. The deployment's
// sampling controller calls it after deciding the next probe interval —
// the decision lands after the period's publishes, so the publish itself
// cannot carry it. A slot that never published stays never-published (its
// staleness remains the table age). A cadence of 0 is treated as 1.
func (s *Slot) DeclareCadence(cadence uint64) {
	if cadence == 0 {
		cadence = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.due == 0 {
		return
	}
	s.due = s.table.period.Load() + cadence
}

// Published returns the slot's publish sequence number (the lifetime
// sample count). A consumer that sees the sequence stand still across its
// own ticks is reading a dead publisher's frozen window.
func (s *Slot) Published() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.published
}

// Seq is Published under its protocol name: the per-slot publish sequence
// number consumers compare across periods to detect a dead publisher.
func (s *Slot) Seq() uint64 { return s.Published() }

// StalePeriods returns how many table periods the slot's owner is overdue:
// 0 while the table clock has not yet passed the declared next-publish
// period, and the overshoot (in whole periods, counting the due period
// itself) once it has. Under the default cadence of 1 this is exactly
// "periods since the last publish" — 0 when the slot published during the
// current period — and a slot that never published reports the full table
// age. Consumers (the CAER engines' watchdogs) treat a slot whose staleness
// keeps growing as a dead publisher and fail open; a publisher honouring a
// declared wider cadence never looks stale. Tables whose period is never
// advanced (BumpPeriod unused) always report 0: staleness detection is
// opt-in per deployment.
func (s *Slot) StalePeriods() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	period := s.table.period.Load()
	if s.due == 0 {
		return period
	}
	if period < s.due {
		return 0
	}
	return period - s.due + 1
}

// WindowMean returns the mean of the sample window (0 when empty).
func (s *Slot) WindowMean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.Mean()
}

// WindowMeanRange returns the mean of window positions [from, to); see
// stats.Window.MeanRange.
func (s *Slot) WindowMeanRange(from, to int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.MeanRange(from, to)
}

// WindowLen returns the number of samples currently windowed.
func (s *Slot) WindowLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.Len()
}

// LastSample returns the most recent sample, or 0 if none.
func (s *Slot) LastSample() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.window.Len() == 0 {
		return 0
	}
	return s.window.Last()
}

// Samples returns a copy of the windowed samples, oldest first.
func (s *Slot) Samples() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.Snapshot()
}

// SetDirective records a reaction directive for this slot.
func (s *Slot) SetDirective(d Directive) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.directive = d
}

// Directive returns the current directive.
func (s *Slot) Directive() Directive {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.directive
}

// Table is the in-process communication table.
type Table struct {
	mu         sync.Mutex
	slots      []*Slot
	windowSize int
	// period is the table-wide sampling-period counter, advanced once per
	// period by the deployment's driver (Runtime.Step). It is atomic, not
	// mutex-guarded, because Publish stamps it while holding a slot lock
	// and BroadcastDirective takes slot locks while holding the table lock
	// — a mutex here would invert that order.
	period atomic.Uint64
}

// NewTable constructs a table whose slots hold windowSize samples each.
func NewTable(windowSize int) *Table {
	if windowSize <= 0 {
		panic(fmt.Sprintf("comm: window size must be positive, got %d", windowSize))
	}
	return &Table{windowSize: windowSize}
}

// WindowSize returns the per-slot window capacity.
func (t *Table) WindowSize() int { return t.windowSize }

// BumpPeriod advances the table's sampling-period counter. The deployment
// driver calls it exactly once per period, before the period's publishes,
// so that StalePeriods measures publisher liveness in periods.
func (t *Table) BumpPeriod() { telemetry.CommPeriod.Set(float64(t.period.Add(1))) }

// Period returns the table's current sampling-period counter.
func (t *Table) Period() uint64 { return t.period.Load() }

// Register adds an application and returns its slot.
func (t *Table) Register(name string, role Role) *Slot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Slot{
		id:     len(t.slots),
		name:   name,
		role:   role,
		table:  t,
		window: stats.NewWindow(t.windowSize),
	}
	t.slots = append(t.slots, s)
	return s
}

// Slots returns all registered slots in registration order.
func (t *Table) Slots() []*Slot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Slot, len(t.slots))
	copy(out, t.slots)
	return out
}

// SlotsByRole returns the slots with the given role.
func (t *Table) SlotsByRole(role Role) []*Slot {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Slot
	for _, s := range t.slots {
		if s.role == role {
			out = append(out, s)
		}
	}
	return out
}

// BroadcastDirective sets d on every batch slot: the paper requires all
// batch processes to react together. It iterates the slot list under the
// table lock rather than taking a snapshot — this runs once per sampling
// period and must not allocate.
func (t *Table) BroadcastDirective(d Directive) {
	telemetry.CommBroadcasts.Inc()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.slots {
		if s.role == RoleBatch {
			s.SetDirective(d)
		}
	}
}
