package comm

import (
	"sync"
	"testing"
)

func TestSlotSeqAdvancesWithPublishes(t *testing.T) {
	tab := NewTable(4)
	s := tab.Register("x", RoleLatency)
	if s.Seq() != 0 {
		t.Fatalf("fresh slot Seq = %d, want 0", s.Seq())
	}
	for i := 1; i <= 5; i++ {
		s.Publish(float64(i))
		if s.Seq() != uint64(i) {
			t.Fatalf("Seq after %d publishes = %d", i, s.Seq())
		}
	}
	if s.Seq() != s.Published() {
		t.Error("Seq and Published disagree")
	}
}

func TestSlotStalePeriodsTracksDeadPublisher(t *testing.T) {
	tab := NewTable(4)
	live := tab.Register("live", RoleLatency)
	dead := tab.Register("dead", RoleLatency)

	// Period 0, nothing bumped or published yet: nothing is stale.
	if live.StalePeriods() != 0 || dead.StalePeriods() != 0 {
		t.Fatal("fresh table reports staleness")
	}

	// Five healthy periods: both publish every period.
	for p := 0; p < 5; p++ {
		tab.BumpPeriod()
		live.Publish(1)
		dead.Publish(1)
		if live.StalePeriods() != 0 || dead.StalePeriods() != 0 {
			t.Fatalf("period %d: healthy publisher reported stale", p)
		}
	}

	// The dead publisher goes silent; its staleness grows one per period
	// while the live one stays fresh.
	for k := 1; k <= 7; k++ {
		tab.BumpPeriod()
		live.Publish(1)
		if got := dead.StalePeriods(); got != uint64(k) {
			t.Fatalf("after %d silent periods StalePeriods = %d", k, got)
		}
		if live.StalePeriods() != 0 {
			t.Fatal("live publisher reported stale")
		}
	}

	// Publishing again clears the staleness immediately.
	dead.Publish(2)
	if got := dead.StalePeriods(); got != 0 {
		t.Fatalf("StalePeriods after resumed publish = %d, want 0", got)
	}
}

func TestSlotStalePeriodsNeverPublished(t *testing.T) {
	tab := NewTable(4)
	s := tab.Register("silent", RoleLatency)
	for i := 0; i < 3; i++ {
		tab.BumpPeriod()
	}
	if got := s.StalePeriods(); got != 3 {
		t.Fatalf("never-published slot StalePeriods = %d, want 3 (table age)", got)
	}
	if tab.Period() != 3 {
		t.Fatalf("Period = %d, want 3", tab.Period())
	}
}

// TestStalenessConcurrentWithBroadcast exercises the lock ordering between
// Publish (slot lock → atomic period read) and BroadcastDirective (table
// lock → slot locks) under the race detector: the period counter is atomic
// precisely so these cannot deadlock.
func TestStalenessConcurrentWithBroadcast(t *testing.T) {
	tab := NewTable(4)
	lat := tab.Register("lat", RoleLatency)
	tab.Register("batch", RoleBatch)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tab.BumpPeriod()
				lat.Publish(1)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tab.BroadcastDirective(DirectivePause)
				tab.BroadcastDirective(DirectiveRun)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = lat.StalePeriods()
				_ = lat.Seq()
			}
		}
	}()
	for i := 0; i < 10_000; i++ {
		_ = tab.Period()
	}
	close(stop)
	wg.Wait()
}
