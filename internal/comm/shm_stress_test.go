//go:build linux

package comm

import (
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// TestShmTableConcurrentStress hammers one mapped table from GOMAXPROCS-
// scaled goroutine packs under the layout's ownership rules: one publisher
// goroutine per slot (single-writer discipline), one period owner, and a
// pack of readers scanning every slot. Phases are separated by barriers —
// the same happens-before the cross-process protocol gets from the period
// cadence — so -race audits that the discipline itself is sound while the
// assertions pin the protocol's observable invariants:
//
//   - Published(i) is monotonically non-decreasing and ends exactly at the
//     slot's publish count (no lost or duplicated sequence numbers);
//   - StalePeriods(i) is 0 right after a slot publishes and grows by
//     exactly 1 per silent period (stamp monotonicity);
//   - WindowMean stays finite and within the published value range.
func TestShmTableConcurrentStress(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	slots := procs
	if slots < 4 {
		slots = 4
	}
	readers := procs
	if readers < 4 {
		readers = 4
	}
	const (
		windowSize = 8
		rounds     = 200
		perRound   = 3 // publishes per slot per round
	)

	path := filepath.Join(t.TempDir(), "stress.tbl")
	tab, err := CreateShmTable(path, windowSize, slots)
	if err != nil {
		t.Fatalf("CreateShmTable: %v", err)
	}
	defer tab.Close()
	for i := 0; i < slots; i++ {
		tab.SetRole(i, RoleBatch)
	}

	lastSeq := make([]uint64, slots) // readers' high-water marks, barrier-protected
	for round := 1; round <= rounds; round++ {
		// Phase 1: the period owner advances the table clock. Odd slots
		// stay silent on odd rounds so staleness actually accumulates.
		tab.BumpPeriod()
		if p := tab.Period(); p != uint64(round) {
			t.Fatalf("round %d: Period = %d", round, p)
		}

		// Phase 2: publishers, one goroutine per slot, disjoint memory.
		var pubs sync.WaitGroup
		for i := 0; i < slots; i++ {
			if i%2 == 1 && round%2 == 1 {
				continue
			}
			pubs.Add(1)
			go func(slot int) {
				defer pubs.Done()
				before := tab.Published(slot)
				for k := 0; k < perRound; k++ {
					tab.Publish(slot, float64(slot*1000+k))
					if got := tab.Published(slot); got != before+uint64(k)+1 {
						t.Errorf("slot %d: Published = %d after %d publishes on base %d",
							slot, got, k+1, before)
						return
					}
				}
				if got := tab.StalePeriods(slot); got != 0 {
					t.Errorf("slot %d: StalePeriods = %d immediately after publish", slot, got)
				}
			}(i)
		}
		pubs.Wait()

		// Phase 3: a reader pack scans every slot concurrently (reads on
		// reads are unsynchronized by design — that is the stress).
		seen := make([][]uint64, readers)
		var reads sync.WaitGroup
		for r := 0; r < readers; r++ {
			seen[r] = make([]uint64, slots)
			reads.Add(1)
			go func(obs []uint64) {
				defer reads.Done()
				for i := 0; i < slots; i++ {
					obs[i] = tab.Published(i)
					mean := tab.WindowMean(i)
					if math.IsNaN(mean) || math.IsInf(mean, 0) ||
						mean < 0 || mean >= float64(slots*1000) {
						t.Errorf("slot %d: WindowMean = %v out of published range", i, mean)
					}
					if n := len(tab.Samples(i)); n > windowSize {
						t.Errorf("slot %d: %d samples exceed window %d", i, n, windowSize)
					}
				}
			}(seen[r])
		}
		reads.Wait()

		for r := 0; r < readers; r++ {
			for i := 0; i < slots; i++ {
				if seen[r][i] < lastSeq[i] {
					t.Fatalf("round %d: reader %d saw slot %d sequence regress %d -> %d",
						round, r, i, lastSeq[i], seen[r][i])
				}
				lastSeq[i] = seen[r][i]
			}
		}
		for i := 0; i < slots; i++ {
			if i%2 == 1 && round%2 == 1 {
				if got := tab.StalePeriods(i); got != 1 {
					t.Fatalf("round %d: silent slot %d StalePeriods = %d, want 1", round, i, got)
				}
			}
		}
	}

	for i := 0; i < slots; i++ {
		var want uint64
		for round := 1; round <= rounds; round++ {
			if i%2 == 1 && round%2 == 1 {
				continue
			}
			want += perRound
		}
		if got := tab.Published(i); got != want {
			t.Fatalf("slot %d: final Published = %d, want %d", i, got, want)
		}
	}
}
