//go:build linux

package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"syscall"
)

// ShmTable is a communication table backed by a memory-mapped file, so that
// CAER layers in *separate processes* can cooperate exactly as the paper's
// prototype does with SysV shared memory. The layout keeps the paper's
// single-writer discipline: each slot's sample ring is written only by the
// CAER layer owning that slot; directives are written only by the engine.
//
// Layout (little-endian):
//
//	header:  magic u64 | windowSize u32 | slotCount u32
//	slot[i]: role u32 | directive u32 | published u64 | head u32 | count u32 |
//	         samples [windowSize]f64
//
// ShmTable methods are not synchronized across processes beyond that
// single-writer discipline; a reader may observe a window mid-update. The
// heuristics tolerate this (they consume noisy averages), matching the
// lock-free table of the original system.
type ShmTable struct {
	f          *os.File
	data       []byte
	windowSize int
	slotCount  int
	owned      bool // created (vs attached); Close removes the file if owned
}

const (
	shmMagic      = 0x3143_4145_5254_424c // "CAERTBL1" flavoured
	shmHeaderSize = 16
	slotFixedSize = 4 + 4 + 8 + 4 + 4
)

func slotStride(windowSize int) int { return slotFixedSize + 8*windowSize }

// CreateShmTable creates (truncating) a file-backed table at path with the
// given geometry and maps it.
func CreateShmTable(path string, windowSize, slotCount int) (*ShmTable, error) {
	if windowSize <= 0 || slotCount <= 0 {
		return nil, fmt.Errorf("comm: invalid shm geometry window=%d slots=%d", windowSize, slotCount)
	}
	size := shmHeaderSize + slotCount*slotStride(windowSize)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("comm: create shm file: %w", err)
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, fmt.Errorf("comm: size shm file: %w", err)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("comm: mmap: %w", err)
	}
	t := &ShmTable{f: f, data: data, windowSize: windowSize, slotCount: slotCount, owned: true}
	binary.LittleEndian.PutUint64(data[0:], shmMagic)
	binary.LittleEndian.PutUint32(data[8:], uint32(windowSize))
	binary.LittleEndian.PutUint32(data[12:], uint32(slotCount))
	return t, nil
}

// OpenShmTable attaches to an existing table file created by
// CreateShmTable (typically from another process).
func OpenShmTable(path string) (*ShmTable, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("comm: open shm file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("comm: stat shm file: %w", err)
	}
	if st.Size() < shmHeaderSize {
		f.Close()
		return nil, fmt.Errorf("comm: shm file too small (%d bytes)", st.Size())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("comm: mmap: %w", err)
	}
	if binary.LittleEndian.Uint64(data[0:]) != shmMagic {
		syscall.Munmap(data)
		f.Close()
		return nil, fmt.Errorf("comm: %s is not a CAER table (bad magic)", path)
	}
	windowSize := int(binary.LittleEndian.Uint32(data[8:]))
	slotCount := int(binary.LittleEndian.Uint32(data[12:]))
	want := shmHeaderSize + slotCount*slotStride(windowSize)
	if int(st.Size()) < want {
		syscall.Munmap(data)
		f.Close()
		return nil, fmt.Errorf("comm: shm file truncated: %d < %d bytes", st.Size(), want)
	}
	return &ShmTable{f: f, data: data, windowSize: windowSize, slotCount: slotCount}, nil
}

// Close unmaps and closes the table; the creator also removes the file.
func (t *ShmTable) Close() error {
	var firstErr error
	if t.data != nil {
		if err := syscall.Munmap(t.data); err != nil && firstErr == nil {
			firstErr = err
		}
		t.data = nil
	}
	if t.f != nil {
		name := t.f.Name()
		if err := t.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if t.owned {
			if err := os.Remove(name); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		t.f = nil
	}
	return firstErr
}

// WindowSize returns the per-slot window capacity.
func (t *ShmTable) WindowSize() int { return t.windowSize }

// SlotCount returns the number of slots.
func (t *ShmTable) SlotCount() int { return t.slotCount }

func (t *ShmTable) slotOff(i int) int {
	if i < 0 || i >= t.slotCount {
		panic(fmt.Sprintf("comm: shm slot %d out of range [0,%d)", i, t.slotCount))
	}
	return shmHeaderSize + i*slotStride(t.windowSize)
}

// SetRole records slot i's role (done once by the registering process).
func (t *ShmTable) SetRole(i int, r Role) {
	binary.LittleEndian.PutUint32(t.data[t.slotOff(i):], uint32(r))
}

// RoleOf returns slot i's role.
func (t *ShmTable) RoleOf(i int) Role {
	return Role(binary.LittleEndian.Uint32(t.data[t.slotOff(i):]))
}

// SetDirective records slot i's directive.
func (t *ShmTable) SetDirective(i int, d Directive) {
	binary.LittleEndian.PutUint32(t.data[t.slotOff(i)+4:], uint32(d))
}

// DirectiveOf returns slot i's directive.
func (t *ShmTable) DirectiveOf(i int) Directive {
	return Directive(binary.LittleEndian.Uint32(t.data[t.slotOff(i)+4:]))
}

// Publish appends one sample to slot i's ring (single writer per slot).
func (t *ShmTable) Publish(i int, v float64) {
	off := t.slotOff(i)
	published := binary.LittleEndian.Uint64(t.data[off+8:])
	head := int(binary.LittleEndian.Uint32(t.data[off+16:]))
	count := int(binary.LittleEndian.Uint32(t.data[off+20:]))
	ring := off + slotFixedSize
	if count == t.windowSize {
		binary.LittleEndian.PutUint64(t.data[ring+8*head:], math.Float64bits(v))
		head = (head + 1) % t.windowSize
	} else {
		pos := (head + count) % t.windowSize
		binary.LittleEndian.PutUint64(t.data[ring+8*pos:], math.Float64bits(v))
		count++
	}
	binary.LittleEndian.PutUint64(t.data[off+8:], published+1)
	binary.LittleEndian.PutUint32(t.data[off+16:], uint32(head))
	binary.LittleEndian.PutUint32(t.data[off+20:], uint32(count))
}

// Published returns slot i's lifetime sample count.
func (t *ShmTable) Published(i int) uint64 {
	return binary.LittleEndian.Uint64(t.data[t.slotOff(i)+8:])
}

// Samples returns a copy of slot i's windowed samples, oldest first.
func (t *ShmTable) Samples(i int) []float64 {
	off := t.slotOff(i)
	head := int(binary.LittleEndian.Uint32(t.data[off+16:]))
	count := int(binary.LittleEndian.Uint32(t.data[off+20:]))
	ring := off + slotFixedSize
	out := make([]float64, count)
	for j := 0; j < count; j++ {
		pos := (head + j) % t.windowSize
		out[j] = math.Float64frombits(binary.LittleEndian.Uint64(t.data[ring+8*pos:]))
	}
	return out
}

// WindowMean returns the mean of slot i's windowed samples (0 when empty).
// It sums the ring in place — this runs in the engines' per-period read
// path, which must not allocate (the mean is order-independent, so the
// valid prefix of the ring array is summed directly).
func (t *ShmTable) WindowMean(i int) float64 {
	off := t.slotOff(i)
	count := int(binary.LittleEndian.Uint32(t.data[off+20:]))
	if count == 0 {
		return 0
	}
	if count > t.windowSize {
		count = t.windowSize
	}
	ring := off + slotFixedSize
	var sum float64
	for j := 0; j < count; j++ {
		sum += math.Float64frombits(binary.LittleEndian.Uint64(t.data[ring+8*j:]))
	}
	return sum / float64(count)
}
