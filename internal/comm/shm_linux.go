//go:build linux

package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"syscall"

	"caer/internal/telemetry"
)

// ShmTable is a communication table backed by a memory-mapped file, so that
// CAER layers in *separate processes* can cooperate exactly as the paper's
// prototype does with SysV shared memory. The layout keeps the paper's
// single-writer discipline: each slot's sample ring is written only by the
// CAER layer owning that slot; directives are written only by the engine.
//
// Layout (little-endian, version 2 — the period header field and the
// per-slot due stamp back the publisher-liveness protocol):
//
//	header:  magic u64 | windowSize u32 | slotCount u32 | period u64
//	slot[i]: role u32 | directive u32 | published u64 | head u32 | count u32 |
//	         due u64 | samples [windowSize]f64
//
// published is the slot's publish sequence number and due the table period
// the owner declared its next publish for (0 = never published) — under the
// default cadence of 1 that is the latest publish period plus 1, which is
// bit-identical to the original version-2 lastPub stamp, so the magic is
// unchanged. Together with the header's period counter (advanced once per
// period by the engine-side process via BumpPeriod) the stamp lets any
// consumer ask StalePeriods — how overdue a publisher is against its
// declared cadence — and detect a dead CAER-M monitor without flagging a
// sampling controller's intentional skips.
//
// ShmTable methods are not synchronized across processes beyond that
// single-writer discipline; a reader may observe a window mid-update. The
// heuristics tolerate this (they consume noisy averages), matching the
// lock-free table of the original system.
type ShmTable struct {
	f          *os.File
	data       []byte
	windowSize int
	slotCount  int
	owned      bool // created (vs attached); Close removes the file if owned
}

const (
	shmMagic      = 0x3243_4145_5254_424c // "CAERTBL2" flavoured
	shmHeaderSize = 24
	slotFixedSize = 4 + 4 + 8 + 4 + 4 + 8
)

// Byte offsets within a slot's fixed region.
const (
	slotOffPublished = 8
	slotOffHead      = 16
	slotOffCount     = 20
	slotOffDue       = 24
)

// shmOffPeriod is the header offset of the period counter.
const shmOffPeriod = 16

func slotStride(windowSize int) int { return slotFixedSize + 8*windowSize }

// CreateShmTable creates (truncating) a file-backed table at path with the
// given geometry and maps it.
func CreateShmTable(path string, windowSize, slotCount int) (*ShmTable, error) {
	if windowSize <= 0 || slotCount <= 0 {
		return nil, fmt.Errorf("comm: invalid shm geometry window=%d slots=%d", windowSize, slotCount)
	}
	size := shmHeaderSize + slotCount*slotStride(windowSize)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("comm: create shm file: %w", err)
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, fmt.Errorf("comm: size shm file: %w", err)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("comm: mmap: %w", err)
	}
	t := &ShmTable{f: f, data: data, windowSize: windowSize, slotCount: slotCount, owned: true}
	binary.LittleEndian.PutUint64(data[0:], shmMagic)
	binary.LittleEndian.PutUint32(data[8:], uint32(windowSize))
	binary.LittleEndian.PutUint32(data[12:], uint32(slotCount))
	return t, nil
}

// OpenShmTable attaches to an existing table file created by
// CreateShmTable (typically from another process).
func OpenShmTable(path string) (*ShmTable, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("comm: open shm file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("comm: stat shm file: %w", err)
	}
	if st.Size() < shmHeaderSize {
		f.Close()
		return nil, fmt.Errorf("comm: shm file too small (%d bytes)", st.Size())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("comm: mmap: %w", err)
	}
	if binary.LittleEndian.Uint64(data[0:]) != shmMagic {
		syscall.Munmap(data)
		f.Close()
		return nil, fmt.Errorf("comm: %s is not a CAER table (bad magic)", path)
	}
	windowSize := int(binary.LittleEndian.Uint32(data[8:]))
	slotCount := int(binary.LittleEndian.Uint32(data[12:]))
	want := shmHeaderSize + slotCount*slotStride(windowSize)
	if int(st.Size()) < want {
		syscall.Munmap(data)
		f.Close()
		return nil, fmt.Errorf("comm: shm file truncated: %d < %d bytes", st.Size(), want)
	}
	return &ShmTable{f: f, data: data, windowSize: windowSize, slotCount: slotCount}, nil
}

// Close unmaps and closes the table; the creator also removes the file.
func (t *ShmTable) Close() error {
	var firstErr error
	if t.data != nil {
		if err := syscall.Munmap(t.data); err != nil && firstErr == nil {
			firstErr = err
		}
		t.data = nil
	}
	if t.f != nil {
		name := t.f.Name()
		if err := t.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if t.owned {
			if err := os.Remove(name); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		t.f = nil
	}
	return firstErr
}

// WindowSize returns the per-slot window capacity.
func (t *ShmTable) WindowSize() int { return t.windowSize }

// SlotCount returns the number of slots.
func (t *ShmTable) SlotCount() int { return t.slotCount }

func (t *ShmTable) slotOff(i int) int {
	if i < 0 || i >= t.slotCount {
		panic(fmt.Sprintf("comm: shm slot %d out of range [0,%d)", i, t.slotCount))
	}
	return shmHeaderSize + i*slotStride(t.windowSize)
}

// SetRole records slot i's role (done once by the registering process).
func (t *ShmTable) SetRole(i int, r Role) {
	binary.LittleEndian.PutUint32(t.data[t.slotOff(i):], uint32(r))
}

// RoleOf returns slot i's role.
func (t *ShmTable) RoleOf(i int) Role {
	return Role(binary.LittleEndian.Uint32(t.data[t.slotOff(i):]))
}

// SetDirective records slot i's directive.
func (t *ShmTable) SetDirective(i int, d Directive) {
	binary.LittleEndian.PutUint32(t.data[t.slotOff(i)+4:], uint32(d))
}

// DirectiveOf returns slot i's directive.
func (t *ShmTable) DirectiveOf(i int) Directive {
	return Directive(binary.LittleEndian.Uint32(t.data[t.slotOff(i)+4:]))
}

// Publish appends one sample to slot i's ring, advances the slot's publish
// sequence number, and declares the next publish due in the following
// period (cadence 1; single writer per slot).
func (t *ShmTable) Publish(i int, v float64) {
	t.PublishCadence(i, v, 1)
}

// PublishCadence is Publish with an explicit cadence declaration: the
// owner commits to publishing slot i again within cadence table periods,
// so StalePeriods measures lateness against the declared schedule (see
// Slot.PublishWithCadence). A cadence of 0 is treated as 1.
func (t *ShmTable) PublishCadence(i int, v float64, cadence uint64) {
	if cadence == 0 {
		cadence = 1
	}
	telemetry.CommPublishes.Inc()
	off := t.slotOff(i)
	published := binary.LittleEndian.Uint64(t.data[off+slotOffPublished:])
	head := int(binary.LittleEndian.Uint32(t.data[off+slotOffHead:]))
	count := int(binary.LittleEndian.Uint32(t.data[off+slotOffCount:]))
	ring := off + slotFixedSize
	if count == t.windowSize {
		binary.LittleEndian.PutUint64(t.data[ring+8*head:], math.Float64bits(v))
		head = (head + 1) % t.windowSize
	} else {
		pos := (head + count) % t.windowSize
		binary.LittleEndian.PutUint64(t.data[ring+8*pos:], math.Float64bits(v))
		count++
	}
	binary.LittleEndian.PutUint64(t.data[off+slotOffPublished:], published+1)
	binary.LittleEndian.PutUint32(t.data[off+slotOffHead:], uint32(head))
	binary.LittleEndian.PutUint32(t.data[off+slotOffCount:], uint32(count))
	binary.LittleEndian.PutUint64(t.data[off+slotOffDue:],
		binary.LittleEndian.Uint64(t.data[shmOffPeriod:])+cadence)
}

// DeclareCadence re-stamps slot i's expected next publish to cadence table
// periods from now without publishing a sample (see Slot.DeclareCadence).
// A never-published slot stays never-published. A cadence of 0 is treated
// as 1.
func (t *ShmTable) DeclareCadence(i int, cadence uint64) {
	if cadence == 0 {
		cadence = 1
	}
	off := t.slotOff(i)
	if binary.LittleEndian.Uint64(t.data[off+slotOffDue:]) == 0 {
		return
	}
	binary.LittleEndian.PutUint64(t.data[off+slotOffDue:],
		binary.LittleEndian.Uint64(t.data[shmOffPeriod:])+cadence)
}

// Published returns slot i's publish sequence number (the lifetime sample
// count).
func (t *ShmTable) Published(i int) uint64 {
	return binary.LittleEndian.Uint64(t.data[t.slotOff(i)+slotOffPublished:])
}

// BumpPeriod advances the table-wide sampling-period counter. The
// engine-side process calls it exactly once per period, before the
// period's publishes, so StalePeriods measures publisher liveness in
// periods (single writer: only one process owns the period counter).
func (t *ShmTable) BumpPeriod() {
	binary.LittleEndian.PutUint64(t.data[shmOffPeriod:],
		binary.LittleEndian.Uint64(t.data[shmOffPeriod:])+1)
}

// Period returns the table's current sampling-period counter.
func (t *ShmTable) Period() uint64 {
	return binary.LittleEndian.Uint64(t.data[shmOffPeriod:])
}

// StalePeriods returns how many table periods slot i's owner is overdue
// against its declared cadence — 0 while the table clock has not passed the
// declared next-publish period (under the default cadence of 1, 0 when the
// slot published during the current period), the full table age when it
// never published. A consumer watching this grow without bound is reading a
// dead publisher (a crashed CAER-M monitor) and must fail open rather than
// trust the frozen window; a publisher honouring a declared wider cadence
// never looks stale.
func (t *ShmTable) StalePeriods(i int) uint64 {
	off := t.slotOff(i)
	period := binary.LittleEndian.Uint64(t.data[shmOffPeriod:])
	due := binary.LittleEndian.Uint64(t.data[off+slotOffDue:])
	if due == 0 {
		return period
	}
	if period < due {
		return 0
	}
	return period - due + 1
}

// Samples returns a copy of slot i's windowed samples, oldest first.
func (t *ShmTable) Samples(i int) []float64 {
	off := t.slotOff(i)
	head := int(binary.LittleEndian.Uint32(t.data[off+slotOffHead:]))
	count := int(binary.LittleEndian.Uint32(t.data[off+slotOffCount:]))
	ring := off + slotFixedSize
	out := make([]float64, count)
	for j := 0; j < count; j++ {
		pos := (head + j) % t.windowSize
		out[j] = math.Float64frombits(binary.LittleEndian.Uint64(t.data[ring+8*pos:]))
	}
	return out
}

// WindowMean returns the mean of slot i's windowed samples (0 when empty).
// It sums the ring in place — this runs in the engines' per-period read
// path, which must not allocate (the mean is order-independent, so the
// valid prefix of the ring array is summed directly).
func (t *ShmTable) WindowMean(i int) float64 {
	off := t.slotOff(i)
	count := int(binary.LittleEndian.Uint32(t.data[off+slotOffCount:]))
	if count == 0 {
		return 0
	}
	if count > t.windowSize {
		count = t.windowSize
	}
	ring := off + slotFixedSize
	var sum float64
	for j := 0; j < count; j++ {
		sum += math.Float64frombits(binary.LittleEndian.Uint64(t.data[ring+8*j:]))
	}
	return sum / float64(count)
}
