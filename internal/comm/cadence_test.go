package comm

import (
	"path/filepath"
	"testing"
)

// TestStalePeriodsCadenceOne pins the back-compat contract: under the
// default cadence of 1 the due-period stamp is bit-identical to the old
// "last publish period + 1" stamp, so staleness still means "periods since
// the last publish".
func TestStalePeriodsCadenceOne(t *testing.T) {
	tb := NewTable(4)
	s := tb.Register("lat", RoleLatency)
	tb.BumpPeriod()
	s.Publish(1)
	if got := s.StalePeriods(); got != 0 {
		t.Fatalf("stale = %d right after publish, want 0", got)
	}
	for i := 1; i <= 5; i++ {
		tb.BumpPeriod()
		if got := s.StalePeriods(); got != uint64(i) {
			t.Fatalf("stale = %d after %d silent periods, want %d", got, i, i)
		}
	}
}

// TestStalePeriodsDeclaredCadence is the satellite-3 contract: a publisher
// that declares a wider cadence is not stale until the table clock passes
// the declared due period — an intentionally skipped probe must not read
// as a dead publisher — and once overdue, staleness counts from the missed
// due period.
func TestStalePeriodsDeclaredCadence(t *testing.T) {
	tb := NewTable(4)
	s := tb.Register("lat", RoleLatency)
	tb.BumpPeriod()
	s.PublishWithCadence(1, 4) // next publish due at period 5
	for p := tb.Period(); p < 5; p = tb.Period() {
		if got := s.StalePeriods(); got != 0 {
			t.Fatalf("stale = %d at period %d, before the declared due period", got, p)
		}
		tb.BumpPeriod()
	}
	// Period 5: the due period itself elapsed without a publish.
	if got := s.StalePeriods(); got != 1 {
		t.Fatalf("stale = %d at the missed due period, want 1", got)
	}
	tb.BumpPeriod()
	if got := s.StalePeriods(); got != 2 {
		t.Fatalf("stale = %d one period past the missed due period, want 2", got)
	}
	// Publishing on time under the same cadence keeps staleness at 0.
	s.PublishWithCadence(2, 4)
	if got := s.StalePeriods(); got != 0 {
		t.Fatalf("stale = %d after a fresh publish, want 0", got)
	}
}

// TestDeclareCadenceRestamps covers the controller's post-publish path:
// the probe publishes at cadence 1, then the controller decides to widen
// and re-stamps the slot without publishing.
func TestDeclareCadenceRestamps(t *testing.T) {
	tb := NewTable(4)
	s := tb.Register("lat", RoleLatency)
	tb.BumpPeriod()
	s.Publish(1) // due next period
	s.DeclareCadence(8)
	for i := 0; i < 7; i++ {
		tb.BumpPeriod()
		if got := s.StalePeriods(); got != 0 {
			t.Fatalf("stale = %d %d periods into a declared cadence of 8, want 0", got, i+1)
		}
	}
	tb.BumpPeriod()
	if got := s.StalePeriods(); got != 1 {
		t.Fatalf("stale = %d once the declared cadence lapsed, want 1", got)
	}
}

// TestDeclareCadenceNeverPublished: declaring a cadence on a slot that
// never published must not forge liveness — staleness stays the table age.
func TestDeclareCadenceNeverPublished(t *testing.T) {
	tb := NewTable(4)
	s := tb.Register("lat", RoleLatency)
	s.DeclareCadence(16)
	for i := 1; i <= 3; i++ {
		tb.BumpPeriod()
		if got := s.StalePeriods(); got != uint64(i) {
			t.Fatalf("stale = %d on a never-published slot at period %d, want %d", got, i, i)
		}
	}
}

// TestPublishZeroCadenceTreatedAsOne guards the degenerate input.
func TestPublishZeroCadenceTreatedAsOne(t *testing.T) {
	tb := NewTable(4)
	s := tb.Register("lat", RoleLatency)
	tb.BumpPeriod()
	s.PublishWithCadence(1, 0)
	tb.BumpPeriod()
	if got := s.StalePeriods(); got != 1 {
		t.Fatalf("stale = %d one period after a zero-cadence publish, want 1", got)
	}
	s.Publish(2)
	s.DeclareCadence(0)
	tb.BumpPeriod()
	if got := s.StalePeriods(); got != 1 {
		t.Fatalf("stale = %d one period after a zero DeclareCadence, want 1", got)
	}
}

// TestShmCadenceStaleness mirrors the in-process cadence contract on the
// memory-mapped table.
func TestShmCadenceStaleness(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tbl")
	tb, err := CreateShmTable(path, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	tb.BumpPeriod()
	tb.PublishCadence(0, 1.5, 4)
	tb.Publish(1, 2.5) // cadence 1
	for i := 0; i < 3; i++ {
		tb.BumpPeriod()
		if got := tb.StalePeriods(0); got != 0 {
			t.Fatalf("slot 0 stale = %d inside its declared cadence, want 0", got)
		}
	}
	if got := tb.StalePeriods(1); got != 3 {
		t.Fatalf("slot 1 stale = %d after 3 silent periods at cadence 1, want 3", got)
	}
	tb.BumpPeriod()
	if got := tb.StalePeriods(0); got != 1 {
		t.Fatalf("slot 0 stale = %d once its cadence lapsed, want 1", got)
	}

	// DeclareCadence re-stamps a published slot, and refuses to forge
	// liveness for a never-published one.
	tb.PublishCadence(0, 3.5, 1)
	tb.DeclareCadence(0, 6)
	for i := 0; i < 5; i++ {
		tb.BumpPeriod()
		if got := tb.StalePeriods(0); got != 0 {
			t.Fatalf("slot 0 stale = %d inside a declared cadence of 6, want 0", got)
		}
	}
	if got := tb.StalePeriods(1); got == 0 {
		t.Fatal("slot 1 reads fresh without ever publishing again")
	}
}
