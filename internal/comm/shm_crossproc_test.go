//go:build linux

package comm

import (
	"fmt"
	"os"
	"os/exec"
	"testing"
)

const (
	crossProcEnv = "CAER_SHM_CHILD_PATH"
	childSlot    = 1
	childSamples = 5
	childBaseVal = 100
)

// TestHelperShmChild is not a real test: it is the body of the child
// process spawned by TestShmTableCrossProcess. It attaches to the table
// whose path arrives via the environment, publishes samples into the batch
// slot, sets a directive, and exits.
func TestHelperShmChild(t *testing.T) {
	path := os.Getenv(crossProcEnv)
	if path == "" {
		t.Skip("helper process only")
	}
	tab, err := OpenShmTable(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: %v\n", err)
		os.Exit(3)
	}
	defer tab.Close()
	for i := 0; i < childSamples; i++ {
		tab.Publish(childSlot, float64(childBaseVal+i))
	}
	tab.SetDirective(childSlot, DirectivePause)
}

// TestShmTableCrossProcess exercises the communication table across a real
// process boundary — the deployment shape of the paper's prototype, where
// the CAER layers of separate applications cooperate via shared memory: a
// child process (this test binary re-executed) attaches to the mmap-backed
// table and publishes; the parent observes the samples and directive.
func TestShmTableCrossProcess(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot find test binary: %v", err)
	}
	path := t.TempDir() + "/cross.tbl"
	tab, err := CreateShmTable(path, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	tab.SetRole(0, RoleLatency)
	tab.SetRole(1, RoleBatch)
	tab.Publish(0, 7) // parent's own slot

	cmd := exec.Command(exe, "-test.run", "TestHelperShmChild", "-test.v")
	cmd.Env = append(os.Environ(), crossProcEnv+"="+path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}

	got := tab.Samples(childSlot)
	if len(got) != childSamples {
		t.Fatalf("parent sees %d child samples, want %d (output: %s)", len(got), childSamples, out)
	}
	for i, v := range got {
		if v != float64(childBaseVal+i) {
			t.Errorf("sample %d = %v, want %d", i, v, childBaseVal+i)
		}
	}
	if tab.DirectiveOf(childSlot) != DirectivePause {
		t.Error("child's directive not visible to parent")
	}
	// The parent's own slot was untouched by the child.
	if s := tab.Samples(0); len(s) != 1 || s[0] != 7 {
		t.Errorf("parent slot corrupted: %v", s)
	}
}
