package pmu

import (
	"fmt"
	"math/rand"
	"sync"

	"caer/internal/telemetry"
)

// FaultConfig parameterises a FaultSource. Every probability is evaluated
// once per ReadCounter call and at most one fault fires per read (the
// probabilities are stacked, so their sum must not exceed 1). All injection
// is driven by a single seeded generator: the same seed and read sequence
// reproduce the same fault schedule exactly.
type FaultConfig struct {
	// Seed drives the fault schedule deterministically.
	Seed int64

	// ResetProb is the per-read probability that the counter resets: the
	// cumulative count restarts from zero, as a perf_event fd does under
	// PERF_EVENT_IOC_RESET or reset-on-exec. The reader observes a value
	// regression.
	ResetProb float64

	// SpikeProb is the per-read probability of a spurious forward jump of
	// up to SpikeMax counts. The jump persists (cumulative counters only
	// move forward), so the consumer sees one inflated delta.
	SpikeProb float64
	// SpikeMax bounds the jump magnitude (default 1 << 20).
	SpikeMax uint64

	// DropProb is the per-read probability that the probe is dropped: the
	// read returns the previously returned value (a stale read), and the
	// counts accumulated meanwhile surface in the next successful read.
	DropProb float64

	// JitterProb is the per-read probability of probe jitter: the returned
	// value is transiently offset by up to JitterMax counts, modelling a
	// probe that fires early or late within the period. Because the offset
	// does not persist, the following read can appear to regress slightly.
	JitterProb float64
	// JitterMax bounds the jitter magnitude (default 64).
	JitterMax uint64
}

// Validate reports the first configuration error, or nil.
func (c FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ResetProb", c.ResetProb},
		{"SpikeProb", c.SpikeProb},
		{"DropProb", c.DropProb},
		{"JitterProb", c.JitterProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("pmu: %s %v out of [0,1]", p.name, p.v)
		}
	}
	if sum := c.ResetProb + c.SpikeProb + c.DropProb + c.JitterProb; sum > 1 {
		return fmt.Errorf("pmu: fault probabilities sum to %v > 1", sum)
	}
	return nil
}

// FaultCounts tallies the faults a FaultSource has injected.
type FaultCounts struct {
	Resets  uint64
	Spikes  uint64
	Drops   uint64
	Jitters uint64
}

// Total returns the number of injected faults of any class.
func (c FaultCounts) Total() uint64 { return c.Resets + c.Spikes + c.Drops + c.Jitters }

// faultState is one (core, event) counter's fault bookkeeping.
type faultState struct {
	offset    uint64 // persistent spurious-jump accumulation
	resetBase uint64 // underlying count at the last injected reset
	last      uint64 // last value returned (replayed on dropped reads)
	read      bool   // last is valid
}

// FaultSource wraps a Source and deterministically injects the counter
// pathologies a deployed PMU probe must survive: counter resets, spurious
// forward jumps, dropped (stale) reads, and probe jitter. It is the
// substrate of the chaos regimes in internal/experiments — the consumer
// stack (PMU.ReadDelta, the communication table, the engines) must degrade
// gracefully under every fault class, never emitting underflow deltas or
// wedging batch applications.
//
// FaultSource is safe for concurrent use and reproducible: a given
// (seed, read sequence) pair always yields the same fault schedule.
type FaultSource struct {
	src  Source
	peek peekFunc // src's side-effect-free read path
	cfg  FaultConfig

	mu     sync.Mutex
	rng    *rand.Rand
	state  []([numEvents]faultState) // indexed by core, grown on demand
	counts FaultCounts
}

// NewFaultSource wraps src with the given fault schedule. It panics on an
// invalid configuration (chaos harness wiring errors should be loud).
func NewFaultSource(src Source, cfg FaultConfig) *FaultSource {
	if src == nil {
		panic("pmu: fault source needs an underlying source")
	}
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.SpikeMax == 0 {
		cfg.SpikeMax = 1 << 20
	}
	if cfg.JitterMax == 0 {
		cfg.JitterMax = 64
	}
	return &FaultSource{src: src, peek: resolvePeeker(src), cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Counts returns the faults injected so far.
func (f *FaultSource) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// ReadCounter implements Source, injecting at most one fault per read.
func (f *FaultSource) ReadCounter(core int, ev Event) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	for core >= len(f.state) {
		//caer:allow hotpath grows once per newly seen core, then reads are steady-state allocation-free; chaos harness only, never deployed
		f.state = append(f.state, [numEvents]faultState{})
	}
	st := &f.state[core][ev]
	raw := f.src.ReadCounter(core, ev)

	v := raw + st.offset - st.resetBase
	roll := f.rng.Float64()
	switch {
	case roll < f.cfg.ResetProb:
		// The counter restarts from zero: rebase so the reported
		// cumulative value regresses to (almost) nothing.
		st.resetBase = raw + st.offset
		f.counts.Resets++
		telemetry.PMUFaultResets.Inc()
		v = 0
	case roll < f.cfg.ResetProb+f.cfg.SpikeProb:
		jump := uint64(f.rng.Int63n(int64(f.cfg.SpikeMax))) + 1
		st.offset += jump
		f.counts.Spikes++
		telemetry.PMUFaultSpikes.Inc()
		v += jump
	case roll < f.cfg.ResetProb+f.cfg.SpikeProb+f.cfg.DropProb:
		if st.read {
			f.counts.Drops++
			telemetry.PMUFaultDrops.Inc()
			return st.last // stale read; do not advance last
		}
	case roll < f.cfg.ResetProb+f.cfg.SpikeProb+f.cfg.DropProb+f.cfg.JitterProb:
		// Transient early/late probe: over-report now, which makes the
		// next clean read appear to regress by the same amount.
		f.counts.Jitters++
		telemetry.PMUFaultJitters.Inc()
		v += uint64(f.rng.Int63n(int64(f.cfg.JitterMax))) + 1
	}
	st.last = v
	st.read = true
	return v
}

// PeekCounter implements Peeker: it returns the value a fault-free read of
// the current counter state would see — the underlying count adjusted by
// the persistent offsets faults have already accumulated (spike offset,
// reset base) — without rolling the seeded schedule or mutating any
// bookkeeping. Interleaving PeekCounter calls with ReadCounter therefore
// cannot perturb the deterministic fault sequence. After a dropped read the
// peeked value may run ahead of the last ReadCounter return; that is the
// drop semantics surfacing the withheld counts, not a new fault.
func (f *FaultSource) PeekCounter(core int, ev Event) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	raw := f.peek(core, ev)
	if core >= len(f.state) {
		// A core never read through the fault path has no adjustments yet.
		return raw
	}
	st := &f.state[core][ev]
	return raw + st.offset - st.resetBase
}
