package pmu

import (
	"testing"
	"testing/quick"
)

// fakeSource is a controllable Source for tests.
type fakeSource struct {
	counts map[int]map[Event]uint64
}

func newFakeSource() *fakeSource {
	return &fakeSource{counts: make(map[int]map[Event]uint64)}
}

func (f *fakeSource) bump(core int, ev Event, by uint64) {
	if f.counts[core] == nil {
		f.counts[core] = make(map[Event]uint64)
	}
	f.counts[core][ev] += by
}

func (f *fakeSource) ReadCounter(core int, ev Event) uint64 {
	return f.counts[core][ev]
}

func TestEventStrings(t *testing.T) {
	cases := map[Event]string{
		EventLLCMisses:    "LLC_MISSES",
		EventLLCAccesses:  "LLC_REFERENCES",
		EventInstrRetired: "INSTRUCTIONS_RETIRED",
		EventCycles:       "UNHALTED_CYCLES",
		EventL2Misses:     "L2_MISSES",
		Event(99):         "Event(99)",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(e), got, want)
		}
	}
}

func TestEventsEnumeratesAll(t *testing.T) {
	evs := Events()
	if len(evs) != int(numEvents) {
		t.Fatalf("Events() returned %d, want %d", len(evs), int(numEvents))
	}
	for i, e := range evs {
		if int(e) != i {
			t.Errorf("Events()[%d] = %v", i, e)
		}
	}
}

func TestPMUArmDiscardsHistory(t *testing.T) {
	src := newFakeSource()
	src.bump(0, EventLLCMisses, 500)
	p := New(src, 0)
	// Counts before New are not visible.
	if d := p.ReadDelta(EventLLCMisses); d != 0 {
		t.Errorf("delta after New = %d, want 0", d)
	}
	src.bump(0, EventLLCMisses, 70)
	p.Arm()
	if d := p.ReadDelta(EventLLCMisses); d != 0 {
		t.Errorf("delta after Arm = %d, want 0", d)
	}
}

func TestPMUReadDeltaRestartSemantics(t *testing.T) {
	src := newFakeSource()
	p := New(src, 2)
	src.bump(2, EventInstrRetired, 100)
	if d := p.ReadDelta(EventInstrRetired); d != 100 {
		t.Errorf("first delta = %d, want 100", d)
	}
	if d := p.ReadDelta(EventInstrRetired); d != 0 {
		t.Errorf("immediate second delta = %d, want 0", d)
	}
	src.bump(2, EventInstrRetired, 30)
	src.bump(2, EventInstrRetired, 12)
	if d := p.ReadDelta(EventInstrRetired); d != 42 {
		t.Errorf("third delta = %d, want 42", d)
	}
}

func TestPMUEventsIndependent(t *testing.T) {
	src := newFakeSource()
	p := New(src, 0)
	src.bump(0, EventLLCMisses, 5)
	src.bump(0, EventCycles, 9)
	if d := p.ReadDelta(EventLLCMisses); d != 5 {
		t.Errorf("LLC delta = %d, want 5", d)
	}
	if d := p.ReadDelta(EventCycles); d != 9 {
		t.Errorf("cycles delta = %d, want 9", d)
	}
}

func TestPMUPeekDoesNotRestart(t *testing.T) {
	src := newFakeSource()
	p := New(src, 0)
	src.bump(0, EventLLCMisses, 8)
	if d := p.Peek(EventLLCMisses); d != 8 {
		t.Errorf("Peek = %d, want 8", d)
	}
	if d := p.ReadDelta(EventLLCMisses); d != 8 {
		t.Errorf("ReadDelta after Peek = %d, want 8", d)
	}
}

func TestPMUCoresIsolated(t *testing.T) {
	src := newFakeSource()
	p0, p1 := New(src, 0), New(src, 1)
	src.bump(0, EventLLCMisses, 3)
	src.bump(1, EventLLCMisses, 11)
	if d := p0.ReadDelta(EventLLCMisses); d != 3 {
		t.Errorf("core 0 delta = %d, want 3", d)
	}
	if d := p1.ReadDelta(EventLLCMisses); d != 11 {
		t.Errorf("core 1 delta = %d, want 11", d)
	}
	if p0.Core() != 0 || p1.Core() != 1 {
		t.Error("Core() mismatch")
	}
}

func TestSamplerRequiresEvents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSampler with no events did not panic")
		}
	}()
	NewSampler(New(newFakeSource(), 0), nil, false)
}

func TestSamplerProbeAndHistory(t *testing.T) {
	src := newFakeSource()
	s := NewSampler(New(src, 0), []Event{EventLLCMisses, EventInstrRetired}, true)
	src.bump(0, EventLLCMisses, 10)
	src.bump(0, EventInstrRetired, 1000)
	sm := s.Probe()
	if sm.Period != 0 || sm.Values[EventLLCMisses] != 10 || sm.Values[EventInstrRetired] != 1000 {
		t.Errorf("first sample = %+v", sm)
	}
	src.bump(0, EventLLCMisses, 4)
	sm = s.Probe()
	if sm.Period != 1 || sm.Values[EventLLCMisses] != 4 || sm.Values[EventInstrRetired] != 0 {
		t.Errorf("second sample = %+v", sm)
	}
	if s.Periods() != 2 || len(s.History()) != 2 {
		t.Errorf("periods=%d history=%d, want 2,2", s.Periods(), len(s.History()))
	}
	series := s.Series(EventLLCMisses)
	if len(series) != 2 || series[0] != 10 || series[1] != 4 {
		t.Errorf("Series = %v, want [10 4]", series)
	}
}

func TestSamplerWithoutRecording(t *testing.T) {
	src := newFakeSource()
	s := NewSampler(New(src, 0), []Event{EventCycles}, false)
	s.Probe()
	s.Probe()
	if s.History() != nil {
		t.Error("non-recording sampler kept history")
	}
	if got := s.Series(EventCycles); len(got) != 0 {
		t.Errorf("Series without recording = %v, want empty", got)
	}
}

func TestSamplerEventSliceIsCopied(t *testing.T) {
	src := newFakeSource()
	evs := []Event{EventLLCMisses}
	s := NewSampler(New(src, 0), evs, false)
	evs[0] = EventCycles // must not affect the sampler
	src.bump(0, EventLLCMisses, 7)
	if sm := s.Probe(); sm.Values[EventLLCMisses] != 7 {
		t.Errorf("sampler affected by caller mutation: %+v", sm)
	}
}

// Property: the sum of ReadDelta results over any sequence of bumps equals
// the source's cumulative count at the end.
func TestPMUDeltasSumToCumulativeProperty(t *testing.T) {
	f := func(bumps []uint16) bool {
		src := newFakeSource()
		p := New(src, 0)
		var sum, total uint64
		for i, b := range bumps {
			src.bump(0, EventLLCMisses, uint64(b))
			total += uint64(b)
			if i%3 == 0 {
				sum += p.ReadDelta(EventLLCMisses)
			}
		}
		sum += p.ReadDelta(EventLLCMisses)
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSamplerProbeAllocs pins the per-period probe at zero allocations: the
// telemetry spine and the fixed-array Sample must keep the 1 ms loop free of
// garbage-collector pressure.
func TestSamplerProbeAllocs(t *testing.T) {
	src := newFakeSource()
	src.bump(0, EventLLCMisses, 100)
	src.bump(0, EventInstrRetired, 400)
	s := NewSampler(New(src, 0), []Event{EventLLCMisses, EventInstrRetired}, false)
	s.Probe()
	if n := testing.AllocsPerRun(1000, func() { s.Probe() }); n != 0 {
		t.Errorf("Sampler.Probe allocates %v per run, want 0", n)
	}
}
