// Package pmu models the hardware performance monitoring unit the CAER
// runtime probes. It mirrors the perfmon2-style discipline the paper uses:
// counters accumulate in hardware with zero instrumentation overhead, and a
// periodic (1 ms) software probe reads and restarts them, yielding
// per-period deltas.
//
// The CAER code consumes only this package's API; it never touches simulator
// ground truth, so the same runtime logic would drive a real PMU backend
// (see internal/perf for a Linux perf_event_open implementation of Source).
package pmu

import (
	"fmt"

	"caer/internal/telemetry"
)

// Event identifies a hardware event a counter can be programmed to count.
type Event int

// Supported events. EventLLCMisses and EventInstrRetired are the two the
// paper's heuristics and figures rely on.
const (
	EventLLCMisses Event = iota
	EventLLCAccesses
	EventInstrRetired
	EventCycles
	EventL2Misses
	numEvents
)

// Events returns all defined events, in stable order.
func Events() []Event {
	evs := make([]Event, numEvents)
	for i := range evs {
		evs[i] = Event(i)
	}
	return evs
}

// String returns the conventional event mnemonic.
func (e Event) String() string {
	switch e {
	case EventLLCMisses:
		return "LLC_MISSES"
	case EventLLCAccesses:
		return "LLC_REFERENCES"
	case EventInstrRetired:
		return "INSTRUCTIONS_RETIRED"
	case EventCycles:
		return "UNHALTED_CYCLES"
	case EventL2Misses:
		return "L2_MISSES"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Source exposes raw, monotonically non-decreasing cumulative event counts
// per core. The machine simulator implements Source; so does the optional
// real-hardware backend.
type Source interface {
	// ReadCounter returns the cumulative count of ev on core since boot.
	ReadCounter(core int, ev Event) uint64
}

// Peeker is an optional Source refinement: a side-effect-free counter read.
// Sources that interpose per-read behaviour on ReadCounter — most notably
// FaultSource, whose seeded fault schedule advances one roll per read —
// implement Peeker so that observational reads (PMU.Peek, threshold trigger
// checks) do not perturb the read-sequence-keyed state. Sources without
// per-read state need not implement it; resolvePeeker falls back to
// ReadCounter, which is already side-effect-free for them.
type Peeker interface {
	// PeekCounter returns the same cumulative count ReadCounter would,
	// without consuming any per-read schedule or mutating source state.
	PeekCounter(core int, ev Event) uint64
}

// peekFunc is a resolved side-effect-free read path for one source.
type peekFunc func(core int, ev Event) uint64

// resolvePeeker returns src's side-effect-free read path: PeekCounter when
// the source implements Peeker, plain ReadCounter otherwise. Resolved once
// at construction so hot-path reads carry no type assertion.
func resolvePeeker(src Source) peekFunc {
	if pk, ok := src.(Peeker); ok {
		return pk.PeekCounter
	}
	return src.ReadCounter
}

// PMU is one core's programmed counter set with read-and-restart sampling
// semantics: ReadDelta returns the count accumulated since the previous
// ReadDelta (or since Arm), exactly like reading and zeroing a hardware
// counter each sampling period.
type PMU struct {
	src  Source
	peek peekFunc
	core int
	last [numEvents]uint64
}

// New returns a PMU view over core's counters, armed at the source's
// current counts (so the first ReadDelta covers only the first period).
func New(src Source, core int) *PMU {
	p := &PMU{src: src, peek: resolvePeeker(src), core: core}
	p.Arm()
	return p
}

// Core returns the core this PMU monitors.
func (p *PMU) Core() int { return p.core }

// Arm (re)bases every counter at the source's current value, discarding any
// accumulated deltas.
func (p *PMU) Arm() {
	for e := Event(0); e < numEvents; e++ {
		p.last[e] = p.src.ReadCounter(p.core, e)
	}
}

// ReadDelta returns the count of ev accumulated since the last ReadDelta of
// ev (or Arm) and restarts the counter.
//
// A hardware counter is not guaranteed to be monotone in deployment: a
// perf_event fd can be reset under the reader (PERF_EVENT_IOC_RESET,
// reset-on-exec), a counter can be reprogrammed by another agent, or a
// probe can race a wrap. When the source regresses, subtracting would
// produce a ~2^64 underflow delta that poisons every window downstream, so
// the PMU instead re-arms at the regressed value and reports a zero delta
// for the period; counting resumes from the new base on the next probe.
func (p *PMU) ReadDelta(ev Event) uint64 {
	telemetry.PMUReads.Inc()
	cur := p.src.ReadCounter(p.core, ev)
	last := p.last[ev]
	p.last[ev] = cur
	if cur < last {
		telemetry.PMURearms.Inc()
		return 0
	}
	return cur - last
}

// Peek returns the delta accumulated since the last ReadDelta without
// restarting the counter. Like ReadDelta it reports 0 (rather than an
// underflow) when the source has regressed below the armed base; the base
// is left untouched, so the next ReadDelta performs the re-arm.
//
// Peek is fault-transparent: it reads through the source's Peeker path when
// available, so interleaving Peeks with ReadDeltas cannot advance a seeded
// FaultSource's schedule or double-apply a per-read fault to one period.
func (p *PMU) Peek(ev Event) uint64 {
	cur := p.peek(p.core, ev)
	if cur < p.last[ev] {
		return 0
	}
	return cur - p.last[ev]
}

// Sample is a set of per-event deltas captured by one periodic probe.
// Values is indexed by Event; events the sampler was not configured for
// stay zero. The fixed array keeps Probe allocation-free — the probe runs
// every sampling period and must not create garbage-collector pressure.
type Sample struct {
	Period uint64
	Values [numEvents]uint64
}

// Sampler performs periodic probing of a PMU for a configured event set and
// optionally records the full time series (used to regenerate the paper's
// Figure 3 phase plots).
type Sampler struct {
	pmu     *PMU
	events  []Event
	record  bool
	history []Sample
	period  uint64
}

// NewSampler returns a sampler over pmu for the given events. If record is
// true every sample is retained in order.
func NewSampler(pmu *PMU, events []Event, record bool) *Sampler {
	if len(events) == 0 {
		panic("pmu: sampler needs at least one event")
	}
	evs := make([]Event, len(events))
	copy(evs, events)
	return &Sampler{pmu: pmu, events: evs, record: record}
}

// Probe reads and restarts every configured event, returning the sample.
// Each call represents one sampling period (1 ms in the paper). The probe
// itself is allocation-free; only the opt-in recording mode grows state.
func (s *Sampler) Probe() Sample {
	telemetry.PMUProbes.Inc()
	sm := Sample{Period: s.period}
	for _, e := range s.events {
		sm.Values[e] = s.pmu.ReadDelta(e)
	}
	s.period++
	if s.record {
		//caer:allow hotpath recording is opt-in tracing for figure regeneration, not the deployed per-period path
		s.history = append(s.history, sm)
	}
	return sm
}

// History returns a copy of the recorded samples (nil unless recording).
// Copying keeps callers from mutating recorded history or aliasing the
// backing array a later Probe may append into; this is the cold export
// path, so the allocation is acceptable.
func (s *Sampler) History() []Sample {
	if s.history == nil {
		return nil
	}
	out := make([]Sample, len(s.history))
	copy(out, s.history)
	return out
}

// Series extracts one event's per-period values from the recorded history.
func (s *Sampler) Series(ev Event) []float64 {
	out := make([]float64, len(s.history))
	for i, sm := range s.history {
		out[i] = float64(sm.Values[ev])
	}
	return out
}

// Periods returns the number of probes performed.
func (s *Sampler) Periods() uint64 { return s.period }
