package pmu

import (
	"fmt"

	"caer/internal/telemetry"
)

// ThresholdConfig parameterises a Threshold trigger.
type ThresholdConfig struct {
	// Event is the counted hardware event (LLC misses for contention
	// onset).
	Event Event
	// Bound is the windowed delta sum at or above which the trigger fires.
	Bound uint64
	// Window is the sliding-window length in checks (one check per
	// sampling period): the trigger fires when the event count accumulated
	// over the last Window checks reaches Bound.
	Window int
}

// Validate reports the first configuration error, or nil.
func (c ThresholdConfig) Validate() error {
	switch {
	case c.Event < 0 || c.Event >= numEvents:
		return fmt.Errorf("pmu: threshold event %d out of range", int(c.Event))
	case c.Bound == 0:
		return fmt.Errorf("pmu: threshold bound must be positive")
	case c.Window <= 0:
		return fmt.Errorf("pmu: threshold window %d must be positive", c.Window)
	}
	return nil
}

// Threshold models a counter-overflow interrupt line: arm it at the current
// count, check it once per period, and it fires when the event deltas
// accumulated over a sliding window cross the bound. It is the hardware
// mechanism behind the event-driven detection mode — the engine sleeps
// between checks instead of running the full probe/publish/detect pipeline,
// and wakes only when the trigger fires (related work: mc-linux's
// interrupt-driven detection, 2-13x faster than polling at equal overhead).
//
// Reads go through the source's Peeker path when available, so checking a
// trigger never consumes a FaultSource's seeded schedule: only real probes
// (ReadDelta) advance it. Check is allocation-free; the ring is sized at
// construction.
type Threshold struct {
	read  peekFunc
	core  int
	event Event
	bound uint64

	ring  []uint64 // last Window per-check deltas
	idx   int
	sum   uint64
	last  uint64
	armed bool
	fires uint64
}

// NewThreshold programs a trigger over src's counter on core. It panics on
// an invalid configuration (deployment wiring errors should be loud).
func NewThreshold(src Source, core int, cfg ThresholdConfig) *Threshold {
	if src == nil {
		panic("pmu: threshold needs a source")
	}
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &Threshold{
		read:  resolvePeeker(src),
		core:  core,
		event: cfg.Event,
		bound: cfg.Bound,
		ring:  make([]uint64, cfg.Window),
	}
}

// Core returns the monitored core.
func (t *Threshold) Core() int { return t.core }

// Event returns the counted event.
func (t *Threshold) Event() Event { return t.event }

// Bound returns the firing bound.
func (t *Threshold) Bound() uint64 { return t.bound }

// Armed reports whether the trigger is armed (it disarms itself on fire).
func (t *Threshold) Armed() bool { return t.armed }

// Fires returns how many times the trigger has fired since construction.
func (t *Threshold) Fires() uint64 { return t.fires }

// Arm (re)bases the trigger at the counter's current value and clears the
// window, so only counts accumulated from now on can fire it.
func (t *Threshold) Arm() {
	t.last = t.read(t.core, t.event)
	for i := range t.ring {
		t.ring[i] = 0
	}
	t.idx = 0
	t.sum = 0
	t.armed = true
}

// Check performs one periodic trigger evaluation: read the counter, push
// the delta since the previous check into the sliding window, and fire
// (disarm, return true) when the window sum reaches the bound. A regressed
// counter (reset fault under the trigger) contributes a zero delta and
// rebases, mirroring PMU.ReadDelta's underflow hardening. Checking a
// disarmed trigger is a no-op returning false.
func (t *Threshold) Check() bool {
	if !t.armed {
		return false
	}
	cur := t.read(t.core, t.event)
	var d uint64
	if cur >= t.last {
		d = cur - t.last
	}
	t.last = cur
	t.sum += d - t.ring[t.idx]
	t.ring[t.idx] = d
	t.idx++
	if t.idx == len(t.ring) {
		t.idx = 0
	}
	if t.sum >= t.bound {
		t.armed = false
		t.fires++
		telemetry.PMUTriggerFires.Inc()
		return true
	}
	return false
}
