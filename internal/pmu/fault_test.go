package pmu

import (
	"math"
	"testing"
)

// scriptedSource replays an explicit sequence of cumulative counter values
// for EventLLCMisses (other events read as zero), modelling resets, wraps,
// and frozen reads.
type scriptedSource struct {
	values []uint64
	i      int
}

func (s *scriptedSource) ReadCounter(core int, ev Event) uint64 {
	if ev != EventLLCMisses {
		return 0
	}
	if s.i >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	v := s.values[s.i]
	s.i++
	return v
}

// TestReadDeltaRegressionTable drives ReadDelta over counter histories a
// deployed probe can observe — monotone growth, a mid-run reset to zero
// (PERF_EVENT_IOC_RESET / reset-on-exec), a partial regression (counter
// reprogrammed by another agent), and a 2^64 wrap — asserting the delta
// sequence never underflows and re-arms after each regression.
func TestReadDeltaRegressionTable(t *testing.T) {
	cases := []struct {
		name string
		// reads[0] arms the PMU (New calls Arm); reads[1:] are ReadDelta
		// observations.
		reads []uint64
		want  []uint64
	}{
		{
			name:  "monotone",
			reads: []uint64{100, 150, 150, 400},
			want:  []uint64{50, 0, 250},
		},
		{
			name:  "reset to zero",
			reads: []uint64{100, 180, 0, 30},
			want:  []uint64{80, 0, 30},
		},
		{
			name:  "partial regression",
			reads: []uint64{100, 500, 450, 460},
			want:  []uint64{400, 0, 10},
		},
		{
			name:  "wrap past 2^64",
			reads: []uint64{math.MaxUint64 - 10, math.MaxUint64 - 2, 5, 12},
			want:  []uint64{8, 0, 7},
		},
		{
			name:  "reset then catch up",
			reads: []uint64{1000, 1200, 7, 7, 207},
			want:  []uint64{200, 0, 0, 200},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := &scriptedSource{values: tc.reads}
			p := New(src, 0)
			for i, want := range tc.want {
				got := p.ReadDelta(EventLLCMisses)
				if got != want {
					t.Fatalf("delta %d = %d, want %d", i, got, want)
				}
				if got > math.MaxUint64/2 {
					t.Fatalf("delta %d = %d: underflow leaked through", i, got)
				}
			}
		})
	}
}

// TestPeekRegressionReportsZero covers the non-restarting read: a regressed
// counter peeks as 0 and the base is left for ReadDelta to re-arm.
func TestPeekRegressionReportsZero(t *testing.T) {
	src := &scriptedSource{values: []uint64{500, 300, 300, 340}}
	p := New(src, 0)
	if got := p.Peek(EventLLCMisses); got != 0 {
		t.Fatalf("Peek after regression = %d, want 0", got)
	}
	// ReadDelta re-arms at 300; the next delta counts from there.
	if got := p.ReadDelta(EventLLCMisses); got != 0 {
		t.Fatalf("ReadDelta after regression = %d, want 0", got)
	}
	if got := p.ReadDelta(EventLLCMisses); got != 40 {
		t.Fatalf("ReadDelta after re-arm = %d, want 40", got)
	}
}

func TestFaultConfigValidate(t *testing.T) {
	if err := (FaultConfig{ResetProb: 0.1, DropProb: 0.2}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (FaultConfig{ResetProb: -0.1}).Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	if err := (FaultConfig{ResetProb: 0.6, SpikeProb: 0.6}).Validate(); err == nil {
		t.Error("probabilities summing past 1 accepted")
	}
}

func TestFaultSourcePassthroughWhenQuiet(t *testing.T) {
	src := newFakeSource()
	src.bump(0, EventLLCMisses, 42)
	fs := NewFaultSource(src, FaultConfig{Seed: 1})
	if got := fs.ReadCounter(0, EventLLCMisses); got != 42 {
		t.Fatalf("quiet fault source altered the count: %d != 42", got)
	}
	if c := fs.Counts(); c.Total() != 0 {
		t.Fatalf("quiet fault source injected %+v", c)
	}
}

func TestFaultSourceDeterministic(t *testing.T) {
	run := func() ([]uint64, FaultCounts) {
		src := newFakeSource()
		fs := NewFaultSource(src, FaultConfig{
			Seed: 7, ResetProb: 0.05, SpikeProb: 0.05, SpikeMax: 1000,
			DropProb: 0.1, JitterProb: 0.1, JitterMax: 10,
		})
		var out []uint64
		for i := 0; i < 500; i++ {
			src.bump(0, EventLLCMisses, 100)
			out = append(out, fs.ReadCounter(0, EventLLCMisses))
		}
		return out, fs.Counts()
	}
	a, ca := run()
	b, cb := run()
	if ca != cb {
		t.Fatalf("fault counts diverged: %+v vs %+v", ca, cb)
	}
	if ca.Total() == 0 {
		t.Fatal("no faults injected over 500 reads at 30% total probability")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestFaultSourceResetsRegressAndPMUHolds is the end-to-end pairing: a
// resetting source must regress, and PMU.ReadDelta over it must never
// yield an underflow delta.
func TestFaultSourceResetsRegressAndPMUHolds(t *testing.T) {
	src := newFakeSource()
	fs := NewFaultSource(src, FaultConfig{Seed: 3, ResetProb: 0.2})
	p := New(fs, 0)
	for i := 0; i < 2000; i++ {
		src.bump(0, EventLLCMisses, 50)
		d := p.ReadDelta(EventLLCMisses)
		if d > math.MaxUint64/2 {
			t.Fatalf("read %d: underflow delta %d", i, d)
		}
	}
	if c := fs.Counts(); c.Resets == 0 {
		t.Fatalf("no resets injected: %+v", c)
	}
}

// TestFaultSourceDropsFreezeReads checks the stale-read class: a dropped
// probe replays the previous value, so consecutive reads can be equal even
// while the underlying counter advances, and the deficit surfaces later.
func TestFaultSourceDropsFreezeReads(t *testing.T) {
	src := newFakeSource()
	fs := NewFaultSource(src, FaultConfig{Seed: 11, DropProb: 0.5})
	var frozen bool
	var prev uint64
	for i := 0; i < 200; i++ {
		src.bump(0, EventInstrRetired, 10)
		v := fs.ReadCounter(0, EventInstrRetired)
		if i > 0 && v == prev {
			frozen = true
		}
		if v < prev {
			t.Fatalf("read %d regressed under drops alone: %d < %d", i, v, prev)
		}
		prev = v
	}
	if !frozen {
		t.Fatal("no frozen read observed at 50% drop probability")
	}
	if c := fs.Counts(); c.Drops == 0 {
		t.Fatalf("no drops tallied: %+v", c)
	}
}

func TestFaultSourcePanicsOnBadWiring(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFaultSource(nil, ...) did not panic")
		}
	}()
	NewFaultSource(nil, FaultConfig{})
}
