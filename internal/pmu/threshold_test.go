package pmu

import (
	"sync"
	"testing"
)

// settableSource is a test Source whose counts the test sets directly, so
// its values never depend on how many times it is read.
type settableSource struct {
	mu sync.Mutex
	v  [8][numEvents]uint64
}

func (s *settableSource) ReadCounter(core int, ev Event) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v[core][ev]
}

func (s *settableSource) add(core int, ev Event, d uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v[core][ev] += d
}

func TestThresholdFiresOnWindowSum(t *testing.T) {
	src := &settableSource{}
	tr := NewThreshold(src, 0, ThresholdConfig{Event: EventLLCMisses, Bound: 100, Window: 4})
	tr.Arm()
	if !tr.Armed() {
		t.Fatal("trigger not armed after Arm")
	}
	// 30 misses/period: window sum reaches 120 >= 100 on the 4th check.
	for i := 1; i <= 3; i++ {
		src.add(0, EventLLCMisses, 30)
		if tr.Check() {
			t.Fatalf("fired early at check %d", i)
		}
	}
	src.add(0, EventLLCMisses, 30)
	if !tr.Check() {
		t.Fatal("did not fire once the window sum crossed the bound")
	}
	if tr.Armed() {
		t.Fatal("trigger still armed after firing")
	}
	if tr.Fires() != 1 {
		t.Fatalf("Fires = %d, want 1", tr.Fires())
	}
	// Disarmed: further checks are no-ops even under heavy pressure.
	src.add(0, EventLLCMisses, 10_000)
	if tr.Check() {
		t.Fatal("disarmed trigger fired")
	}
}

func TestThresholdWindowSlides(t *testing.T) {
	src := &settableSource{}
	tr := NewThreshold(src, 0, ThresholdConfig{Event: EventLLCMisses, Bound: 100, Window: 2})
	tr.Arm()
	// 40/period never sums past 80 in a 2-window: old deltas must expire.
	for i := 0; i < 50; i++ {
		src.add(0, EventLLCMisses, 40)
		if tr.Check() {
			t.Fatalf("fired at check %d with window sum below the bound", i)
		}
	}
	// One burst period tips the sliding sum over.
	src.add(0, EventLLCMisses, 70)
	if !tr.Check() {
		t.Fatal("did not fire on the burst period")
	}
}

func TestThresholdArmRebasesAndResetHardening(t *testing.T) {
	src := &settableSource{}
	src.add(0, EventLLCMisses, 5_000)
	tr := NewThreshold(src, 0, ThresholdConfig{Event: EventLLCMisses, Bound: 50, Window: 4})
	tr.Arm()
	// The pre-arm 5000 counts must not fire the trigger.
	if tr.Check() {
		t.Fatal("fired on counts accumulated before Arm")
	}
	// A counter regression (reset fault) contributes zero, not ~2^64.
	src.mu.Lock()
	src.v[0][EventLLCMisses] = 0
	src.mu.Unlock()
	if tr.Check() {
		t.Fatal("fired on a regressed counter")
	}
	// Counting resumes from the regressed base.
	src.add(0, EventLLCMisses, 60)
	if !tr.Check() {
		t.Fatal("did not fire after counting resumed past the bound")
	}
}

func TestThresholdDoesNotAdvanceFaultSchedule(t *testing.T) {
	// Two identical fault stacks over identical sources; one also runs a
	// threshold trigger. The PMU delta streams must match exactly: trigger
	// checks read through the Peeker path and must not consume the seeded
	// schedule.
	cfg := FaultConfig{Seed: 7, ResetProb: 0.05, SpikeProb: 0.05, DropProb: 0.05, JitterProb: 0.05}
	srcA, srcB := &settableSource{}, &settableSource{}
	fsA, fsB := NewFaultSource(srcA, cfg), NewFaultSource(srcB, cfg)
	pA, pB := New(fsA, 0), New(fsB, 0)
	tr := NewThreshold(fsB, 0, ThresholdConfig{Event: EventLLCMisses, Bound: 1 << 62, Window: 4})
	tr.Arm()
	for i := 0; i < 500; i++ {
		srcA.add(0, EventLLCMisses, 123)
		srcB.add(0, EventLLCMisses, 123)
		tr.Check()
		dA := pA.ReadDelta(EventLLCMisses)
		dB := pB.ReadDelta(EventLLCMisses)
		if dA != dB {
			t.Fatalf("delta diverged at read %d: %d vs %d (trigger perturbed the fault schedule)", i, dA, dB)
		}
	}
	if fsA.Counts() != fsB.Counts() {
		t.Fatalf("fault counts diverged: %+v vs %+v", fsA.Counts(), fsB.Counts())
	}
}

func TestThresholdConfigValidate(t *testing.T) {
	cases := []ThresholdConfig{
		{Event: Event(-1), Bound: 10, Window: 2},
		{Event: numEvents, Bound: 10, Window: 2},
		{Event: EventLLCMisses, Bound: 0, Window: 2},
		{Event: EventLLCMisses, Bound: 10, Window: 0},
	}
	for i, c := range cases {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config %+v passed Validate", i, c)
		}
	}
	if err := (ThresholdConfig{Event: EventLLCMisses, Bound: 10, Window: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestThresholdCheckAllocationFree(t *testing.T) {
	src := &settableSource{}
	tr := NewThreshold(src, 0, ThresholdConfig{Event: EventLLCMisses, Bound: 1 << 62, Window: 8})
	tr.Arm()
	if n := testing.AllocsPerRun(200, func() {
		src.add(0, EventLLCMisses, 1)
		tr.Check()
	}); n != 0 {
		t.Fatalf("Threshold.Check allocates %v objects/op, want 0", n)
	}
}
