package pmu

import (
	"sync"
	"testing"
)

// TestPeekFaultDeterminismRegression pins the satellite bugfix: Peek used
// to route through Source.ReadCounter, so every Peek advanced the seeded
// FaultSource schedule — interleaving Peeks with ReadDeltas perturbed the
// deterministic fault sequence and could double-apply a fault to one
// period. Two identical fault stacks, one interleaving Peeks, must now
// produce identical delta streams and identical fault tallies.
func TestPeekFaultDeterminismRegression(t *testing.T) {
	cfg := FaultConfig{Seed: 42, ResetProb: 0.08, SpikeProb: 0.08, DropProb: 0.08, JitterProb: 0.08}
	srcA, srcB := &settableSource{}, &settableSource{}
	fsA, fsB := NewFaultSource(srcA, cfg), NewFaultSource(srcB, cfg)
	pA, pB := New(fsA, 0), New(fsB, 0)
	for i := 0; i < 1000; i++ {
		srcA.add(0, EventLLCMisses, 200)
		srcB.add(0, EventLLCMisses, 200)
		// B peeks several times between probes; A never does.
		for j := 0; j < 1+i%3; j++ {
			pB.Peek(EventLLCMisses)
		}
		dA := pA.ReadDelta(EventLLCMisses)
		dB := pB.ReadDelta(EventLLCMisses)
		if dA != dB {
			t.Fatalf("delta diverged at period %d: %d (no peeks) vs %d (interleaved peeks)", i, dA, dB)
		}
	}
	if fsA.Counts() != fsB.Counts() {
		t.Fatalf("fault schedules diverged: %+v vs %+v", fsA.Counts(), fsB.Counts())
	}
}

// TestPeekFaultDeterminismConcurrent is the -race variant: a concurrent
// peeker hammers the fault source while the probe loop reads deltas. The
// deltas must match a peek-free reference stream exactly — concurrent
// peeks may interleave anywhere but can never mutate fault state.
func TestPeekFaultDeterminismConcurrent(t *testing.T) {
	cfg := FaultConfig{Seed: 99, ResetProb: 0.05, SpikeProb: 0.05, DropProb: 0.05, JitterProb: 0.05}
	srcA, srcB := &settableSource{}, &settableSource{}
	fsA, fsB := NewFaultSource(srcA, cfg), NewFaultSource(srcB, cfg)
	pA, pB := New(fsA, 0), New(fsB, 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				pB.Peek(EventLLCMisses)
				fsB.PeekCounter(0, EventInstrRetired)
			}
		}
	}()
	for i := 0; i < 500; i++ {
		srcA.add(0, EventLLCMisses, 150)
		srcB.add(0, EventLLCMisses, 150)
		dA := pA.ReadDelta(EventLLCMisses)
		dB := pB.ReadDelta(EventLLCMisses)
		if dA != dB {
			close(stop)
			wg.Wait()
			t.Fatalf("delta diverged at period %d under concurrent peeks: %d vs %d", i, dA, dB)
		}
	}
	close(stop)
	wg.Wait()
	if fsA.Counts() != fsB.Counts() {
		t.Fatalf("fault schedules diverged under concurrent peeks: %+v vs %+v", fsA.Counts(), fsB.Counts())
	}
}

// TestFaultSourcePeekCounterMatchesEffectiveValue checks the peek view is
// consistent with the read view: after any prefix of reads, PeekCounter
// must equal the value a fault-free continuation would read (offset and
// reset adjustments applied), and peeking an untouched core reads the raw
// counter.
func TestFaultSourcePeekCounterMatchesEffectiveValue(t *testing.T) {
	src := &settableSource{}
	fs := NewFaultSource(src, FaultConfig{Seed: 3, SpikeProb: 0.3, ResetProb: 0.1})
	for i := 0; i < 200; i++ {
		src.add(0, EventLLCMisses, 100)
		got := fs.ReadCounter(0, EventLLCMisses)
		// Drop-free config: the read's value reflects all adjustments, so
		// an immediate peek must agree with it exactly.
		if pk := fs.PeekCounter(0, EventLLCMisses); pk != got {
			t.Fatalf("read %d: PeekCounter %d != ReadCounter %d", i, pk, got)
		}
	}
	// A core the fault path never touched peeks the raw value.
	src.add(3, EventCycles, 777)
	if pk := fs.PeekCounter(3, EventCycles); pk != 777 {
		t.Fatalf("untouched core peeked %d, want raw 777", pk)
	}
}

// TestSamplerHistoryIsCopy pins the satellite bugfix: History used to
// return the internal backing slice, letting callers mutate recorded
// samples and alias memory a later Probe appends into.
func TestSamplerHistoryIsCopy(t *testing.T) {
	src := newFakeSource()
	s := NewSampler(New(src, 0), []Event{EventLLCMisses}, true)
	src.bump(0, EventLLCMisses, 10)
	s.Probe()
	src.bump(0, EventLLCMisses, 20)
	s.Probe()

	h := s.History()
	if len(h) != 2 {
		t.Fatalf("history length %d, want 2", len(h))
	}
	// Mutating the returned slice must not corrupt the recording.
	h[0].Values[EventLLCMisses] = 9999
	if got := s.History()[0].Values[EventLLCMisses]; got != 10 {
		t.Fatalf("caller mutation leaked into recorded history: got %d, want 10", got)
	}
	// Later probes must not write into the previously returned slice.
	before := h[1].Values[EventLLCMisses]
	src.bump(0, EventLLCMisses, 70)
	s.Probe()
	if h[1].Values[EventLLCMisses] != before {
		t.Fatal("a later Probe mutated a previously returned history slice")
	}
	if got := len(s.History()); got != 3 {
		t.Fatalf("history length %d after third probe, want 3", got)
	}
}

// TestSamplerHistoryNilWhenNotRecording keeps the nil contract.
func TestSamplerHistoryNilWhenNotRecording(t *testing.T) {
	s := NewSampler(New(newFakeSource(), 0), []Event{EventLLCMisses}, false)
	s.Probe()
	if h := s.History(); h != nil {
		t.Fatalf("History = %v without recording, want nil", h)
	}
}
