package fleet_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"caer/internal/caer"
	"caer/internal/fleet"
	"caer/internal/runner"
	"caer/internal/sched"
	"caer/internal/spec"
	"caer/internal/telemetry"
)

func prof(name string, instr uint64) spec.Profile {
	p, ok := spec.ByName(name)
	if !ok {
		panic("unknown profile " + name)
	}
	p.Exec.Instructions = instr
	return p
}

// identityJobs is the job list shared by the fleet and runner sides of the
// byte-identity pin: small enough that every job dispatches up front
// (pre-start free batch cores = 7 on an 8-core machine with one service).
func identityJobs() []spec.Profile {
	return []spec.Profile{
		prof("lbm", 120_000), prof("povray", 120_000),
		prof("lbm", 120_000), prof("povray", 120_000),
		prof("lbm", 120_000), prof("povray", 120_000),
	}
}

func identitySchedConfig() sched.Config {
	return sched.Config{
		Policy:     sched.PolicyContentionAware,
		Heuristic:  caer.HeuristicRule,
		Caer:       caer.DefaultConfig(),
		AgingBound: 200,
	}
}

func identityFleet(workers int) fleet.Config {
	return fleet.Config{
		Machines: []fleet.MachineSpec{{
			Cores: 8, Domains: 2, Workers: workers,
			Services: []fleet.Service{{Profile: prof("mcf", 400_000), Core: 0}},
		}},
		Sched:           identitySchedConfig(),
		Policy:          fleet.PolicyRoundRobin,
		Traffic:         fleet.Traffic{Curve: fleet.CurveConstant, Rate: 6, Horizon: 1, Mix: identityJobs()},
		Seed:            42,
		DispatchPerTick: 16,
		MaxPeriods:      30_000,
	}
}

// mustJSON marshals for byte comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestFleetMatchesRunnerScheduled is the regression pin: a 1-machine fleet
// fed the whole job list up front must reproduce runner.ModeScheduled
// byte-for-byte — same decision log, same per-job lifecycle counters, same
// service completion period — at any worker count.
func TestFleetMatchesRunnerScheduled(t *testing.T) {
	res := runner.Run(runner.Scenario{
		Mode:       runner.ModeScheduled,
		Latency:    prof("mcf", 400_000),
		Jobs:       identityJobs(),
		Heuristic:  caer.HeuristicRule,
		Seed:       42,
		Domains:    2,
		Cores:      8,
		MaxPeriods: 30_000,
		Sched:      sched.Config{Policy: sched.PolicyContentionAware, AgingBound: 200},
	})
	if !res.Completed {
		t.Fatal("runner scenario did not complete")
	}
	wantDecisions := mustJSON(t, res.SchedDecisions)

	for _, workers := range []int{1, 4} {
		c := fleet.New(identityFleet(workers))
		ticks := c.Run()
		node := c.Nodes()[0]

		if got := mustJSON(t, node.Sched().Decisions()); !bytes.Equal(got, wantDecisions) {
			t.Fatalf("workers=%d: fleet decision log diverges from runner.ModeScheduled\nfleet:  %s\nrunner: %s",
				workers, got, wantDecisions)
		}
		reports := node.Sched().JobReports()
		if len(reports) != len(res.BatchResults) {
			t.Fatalf("workers=%d: %d job reports vs %d runner batch results", workers, len(reports), len(res.BatchResults))
		}
		for i, jr := range reports {
			br := res.BatchResults[i]
			if jr.Name != br.Name || jr.Core != br.Core || jr.Domain != br.Domain ||
				jr.Instructions != br.Instructions || jr.Misses != br.Misses ||
				jr.Waited != br.Waited || jr.Aged != br.Aged ||
				jr.Admitted != br.Admitted || jr.Done != br.DonePeriod ||
				jr.Migrations != br.Migrations ||
				jr.PausedPeriods != br.PausedPeriods || jr.RunPeriods != br.RunPeriods ||
				jr.CPositive != br.CPositive || jr.CNegative != br.CNegative {
				t.Errorf("workers=%d: job %d diverges:\nfleet:  %+v\nrunner: %+v", workers, i, jr, br)
			}
		}
		if done := node.Sched().LatencyReports()[0].Done; done != res.Periods {
			t.Errorf("workers=%d: service completed at period %d, runner at %d", workers, done, res.Periods)
		}
		if uint64(ticks) < res.Periods {
			t.Errorf("workers=%d: fleet ran %d ticks, fewer than the runner's %d periods", workers, ticks, res.Periods)
		}
		rep := c.Report()
		if rep.Completed != res.JobsCompleted || rep.Completed != len(identityJobs()) {
			t.Errorf("workers=%d: fleet completed %d jobs, runner %d", workers, rep.Completed, res.JobsCompleted)
		}
	}
}

// TestFleetDeterministicAcrossWorkers pins the cluster-level determinism
// contract on a real multi-machine run: identical Reports (jobs, service
// QoS, histogram quantiles) at Workers=1 and Workers=4, and across two
// identical runs.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	cfg := func(workers int) fleet.Config {
		return fleet.Config{
			Machines: []fleet.MachineSpec{
				{Cores: 8, Domains: 2, Workers: workers,
					Services: []fleet.Service{{Profile: prof("mcf", 60_000), Core: 0, Relaunch: true}}},
				{Cores: 8, Domains: 2, Workers: workers,
					Services: []fleet.Service{{Profile: prof("namd", 60_000), Core: 0, Relaunch: true}}},
			},
			Sched:  identitySchedConfig(),
			Policy: fleet.PolicyLeastPressure,
			Traffic: fleet.Traffic{
				Curve: fleet.CurveBurst, Rate: 0.6, Horizon: 600, Jitter: 0.3,
				BurstEvery: 150, BurstLen: 25,
				Mix: []spec.Profile{prof("lbm", 60_000), prof("povray", 60_000)},
			},
			Seed:          7,
			MigratePeriod: 50,
			MaxPeriods:    20_000,
		}
	}
	fingerprint := func(workers int) []byte {
		c := fleet.New(cfg(workers))
		c.Run()
		rep := c.Report()
		var sb strings.Builder
		sb.Write(mustJSON(t, rep.Jobs))
		sb.Write(mustJSON(t, rep.Services))
		for _, n := range c.Nodes() {
			sb.Write(mustJSON(t, n.Sched().Decisions()))
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			sb.Write(mustJSON(t, []float64{rep.Wait.Quantile(q), rep.Sojourn.Quantile(q)}))
		}
		return []byte(sb.String())
	}
	base := fingerprint(1)
	if again := fingerprint(1); !bytes.Equal(base, again) {
		t.Fatal("two identical Workers=1 runs diverged")
	}
	if par := fingerprint(4); !bytes.Equal(base, par) {
		t.Fatal("Workers=4 run diverged from Workers=1")
	}
}

// TestFleetMigrationBounded pins cross-machine migration semantics: packed
// placement piles jobs onto machine 0, whose two sensitive mcf services
// make the contention-aware admission veto every lbm — with the aging
// bound out of reach, fleet migration is the only path off the stuck
// queue. It must fire, stay under the rate bound, and every migrated job
// must complete on its new machine.
func TestFleetMigrationBounded(t *testing.T) {
	c := fleet.New(fleet.Config{
		Machines: []fleet.MachineSpec{
			{Cores: 8, Domains: 2, Services: []fleet.Service{
				{Profile: prof("mcf", 150_000), Core: 0},
				{Profile: prof("mcf", 150_000), Core: 4},
			}},
			{Cores: 8, Domains: 2, Services: []fleet.Service{{Profile: prof("namd", 150_000), Core: 0}}},
		},
		Sched: sched.Config{
			Policy:     sched.PolicyContentionAware,
			Heuristic:  caer.HeuristicRule,
			Caer:       caer.DefaultConfig(),
			AgingBound: 30_000, // out of reach: migration, not aging, unsticks the queue
		},
		Policy: fleet.PolicyPacked,
		Traffic: fleet.Traffic{
			Curve: fleet.CurveConstant, Rate: 16, Horizon: 1,
			Mix: []spec.Profile{prof("lbm", 80_000), prof("povray", 80_000)},
		},
		Seed:            3,
		DispatchPerTick: 32,
		MigratePeriod:   20,
		MigrateMargin:   2,
		MaxPeriods:      40_000,
	})
	ticks := c.Run()
	rep := c.Report()
	if rep.Completed != rep.Arrivals {
		t.Fatalf("%d of %d jobs completed", rep.Completed, rep.Arrivals)
	}
	if rep.Migrations == 0 {
		t.Fatal("packed placement under 16 up-front jobs never triggered fleet migration")
	}
	if bound := ticks / 20; rep.Migrations > bound {
		t.Errorf("%d migrations in %d ticks exceeds the rate bound %d", rep.Migrations, ticks, bound)
	}
	migrated := 0
	for _, j := range rep.Jobs {
		if j.Migrations > 0 {
			migrated++
			if j.State != fleet.JobFinished {
				t.Errorf("migrated job %d ended %v, want finished", j.Index, j.State)
			}
			if j.Machine != 1 {
				t.Errorf("migrated job %d ended on machine %d, want 1", j.Index, j.Machine)
			}
		}
	}
	if migrated != rep.Migrations {
		t.Errorf("per-job migration sum %d != cluster count %d", migrated, rep.Migrations)
	}
	// A withdrawn job leaves a withdrawn terminal record on machine 0 and
	// a completed one on machine 1.
	withdrawn := 0
	for _, r := range c.Nodes()[0].Sched().JobReports() {
		if r.State == sched.JobWithdrawn {
			withdrawn++
		}
	}
	if withdrawn != rep.Migrations {
		t.Errorf("machine 0 has %d withdrawn jobs, want %d", withdrawn, rep.Migrations)
	}
}

// TestFleetOpenLoopServiceQoS pins the request-latency pipeline: an
// open-loop service accumulates requests with sane quantiles, and the
// fleet report aggregates per-node histograms consistently.
func TestFleetOpenLoopServiceQoS(t *testing.T) {
	c := fleet.New(fleet.Config{
		Machines: []fleet.MachineSpec{{
			Cores: 8, Domains: 2,
			Services: []fleet.Service{{Profile: prof("mcf", 40_000), Core: 0, Relaunch: true}},
		}},
		Sched:  identitySchedConfig(),
		Policy: fleet.PolicyLeastPressure,
		Traffic: fleet.Traffic{
			Curve: fleet.CurveDiurnal, Rate: 0.4, Horizon: 1500,
			Mix: []spec.Profile{prof("lbm", 50_000), prof("povray", 50_000)},
		},
		Seed:       9,
		MaxPeriods: 20_000,
	})
	c.Run()
	rep := c.Report()
	if rep.Completed != rep.Arrivals || rep.Arrivals == 0 {
		t.Fatalf("%d of %d jobs completed", rep.Completed, rep.Arrivals)
	}
	if len(rep.Services) != 1 {
		t.Fatalf("%d service reports, want 1", len(rep.Services))
	}
	sv := rep.Services[0]
	if sv.Requests < 5 {
		t.Fatalf("open-loop mcf served only %d requests", sv.Requests)
	}
	if sv.P50 <= 0 || sv.P99 < sv.P50 {
		t.Errorf("QoS quantiles p50=%v p99=%v out of order", sv.P50, sv.P99)
	}
	if got := uint64(rep.Completed); rep.Sojourn.N() != got || rep.Wait.N() != got {
		t.Errorf("fleet-wide histograms hold %d/%d samples, want %d each", rep.Sojourn.N(), rep.Wait.N(), rep.Completed)
	}
	if rep.Throughput() <= 0 {
		t.Error("zero fleet throughput")
	}
}

// TestFleetWriteMetrics pins the fleet-wide telemetry merge: one snapshot
// carries every machine's series under machine="<k>" labels and parses
// back cleanly.
func TestFleetWriteMetrics(t *testing.T) {
	c := fleet.New(fleet.Config{
		Machines: []fleet.MachineSpec{
			{Cores: 8, Domains: 2, Services: []fleet.Service{{Profile: prof("mcf", 100_000), Core: 0}}},
			{Cores: 8, Domains: 2, Services: []fleet.Service{{Profile: prof("namd", 100_000), Core: 0}}},
		},
		Sched:  identitySchedConfig(),
		Policy: fleet.PolicyRoundRobin,
		Traffic: fleet.Traffic{
			Curve: fleet.CurveConstant, Rate: 4, Horizon: 1,
			Mix: []spec.Profile{prof("lbm", 60_000), prof("povray", 60_000)},
		},
		Seed:       5,
		MaxPeriods: 20_000,
	})
	c.Run()
	var sb strings.Builder
	if err := c.WriteMetrics(&sb); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	ms, err := telemetry.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText over fleet snapshot: %v", err)
	}
	perMachine := map[string]float64{}
	for _, m := range ms {
		if m.Name == "caer_fleet_node_dispatches_total" {
			perMachine[m.Label("machine")] = m.Value
		}
	}
	if len(perMachine) != 2 {
		t.Fatalf("dispatch series for machines %v, want exactly {0,1}", perMachine)
	}
	if perMachine["0"]+perMachine["1"] != 4 {
		t.Errorf("per-machine dispatches %v do not sum to 4", perMachine)
	}
	// The process-global spine rides along unlabelled.
	found := false
	for _, m := range ms {
		if m.Name == "caer_fleet_dispatches_total" && m.Label("machine") == "" {
			found = true
		}
	}
	if !found {
		t.Error("fleet snapshot is missing the process-global caer_fleet_dispatches_total")
	}
}
