package fleet

import (
	"fmt"

	"caer/internal/spec"
)

// JobState is a job's position in the fleet-level lifecycle. It sits above
// sched.JobState: a dispatched fleet job is waiting, running, or — after a
// cross-machine migration withdrew it — re-dispatched inside some
// machine's scheduler.
type JobState int

const (
	// JobQueued means the job sits in the fleet admission queue, not yet
	// assigned to a machine.
	JobQueued JobState = iota
	// JobDispatched means the job has been submitted to a machine's
	// scheduler (it may still be waiting in that machine's queue).
	JobDispatched
	// JobFinished means the job ran to completion on its machine.
	JobFinished
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobDispatched:
		return "dispatched"
	case JobFinished:
		return "finished"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// job is one fleet work item's record, from open-loop arrival to
// completion.
type job struct {
	name string // short benchmark name (series/report key)
	prof spec.Profile
	idx  int // global arrival index: derives footprint base and seed

	state      JobState
	node       int // machine currently holding it (-1 while queued)
	schedID    int // job id inside node's scheduler (-1 while queued)
	arrived    int // fleet tick the job arrived (0-based)
	admitted   uint64 // node period the job left a machine queue for a core
	doneTick   int // fleet tick the job completed (0 = not yet)
	migrations int // cross-machine moves
}

// fifo is a growable FIFO ring of job indices: the fleet admission queue.
// peek/pop/len never allocate; push grows the ring on the cold arrival
// path when needed.
type fifo struct {
	buf   []int
	head  int
	count int
}

func (q *fifo) len() int { return q.count }

func (q *fifo) push(j int) {
	if q.count == len(q.buf) {
		grown := make([]int, 2*len(q.buf)+1)
		for i := 0; i < q.count; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.count)%len(q.buf)] = j
	q.count++
}

// peek returns the head job index without removing it, or -1 when empty.
func (q *fifo) peek() int {
	if q.count == 0 {
		return -1
	}
	return q.buf[q.head]
}

// pop removes and returns the head job index; it panics when empty.
func (q *fifo) pop() int {
	if q.count == 0 {
		panic("fleet: pop from empty queue")
	}
	j := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return j
}
