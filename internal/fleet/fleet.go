// Package fleet scales the contention-aware execution stack from one
// machine to a cluster: a Cluster owns N simulated machines (each a
// multi-LLC-domain machine.Machine driven by an internal/sched scheduler),
// an open-loop traffic driver feeds jobs into a fleet-level admission
// queue, and a pluggable cross-machine placement policy dispatches them —
// round-robin, packed, or least-pressure using every machine's classifier
// summary, the cluster-level analogue of the paper's contention-aware
// placement. Queued work migrates between machines at a bounded rate when
// backlogs diverge, mirroring sched's bounded intra-machine migration one
// level up.
//
// Determinism contract: a fleet run is a pure function of its Config —
// machines step in index order, the traffic driver and every per-machine
// scheduler derive from Config.Seed, and per-machine domain parallelism
// (MachineSpec.Workers) inherits the machine package's bit-identical
// worker-pool contract. A single-machine fleet with up-front traffic is
// byte-identical to runner.ModeScheduled (pinned by TestFleetMatchesRunnerScheduled).
package fleet

import (
	"bytes"
	"fmt"
	"io"

	"caer/internal/machine"
	"caer/internal/sched"
	"caer/internal/slo"
	"caer/internal/spec"
	"caer/internal/stats"
	"caer/internal/telemetry"
)

// Footprint layout, shared with internal/runner so a one-machine fleet
// reproduces ModeScheduled byte-for-byte: job i's footprint starts at
// batchBase + i*batchStride, latency services sit below batchBase.
const (
	batchBase   = 1 << 28
	batchStride = 1 << 26
	serviceBase = 1 << 27
)

// trackStride spaces the span-recorder track ids of consecutive machines:
// machine k's scheduler records spans at slotID + k*trackStride, so one
// process-wide Chrome trace covers the whole fleet without lane collisions.
const trackStride = 4096

// machineSeedStride separates machine k's service seeds from machine 0's,
// which keeps machine 0 identical to a standalone runner.ModeScheduled run.
const machineSeedStride = 1000

// Histogram geometries (periods). Fixed so per-machine histograms merge
// into fleet-wide aggregates (stats.Histogram.MergeMany requires identical
// geometry).
const (
	waitHistMax    = 1024
	sojournHistMax = 8192
	histBuckets    = 64
	// Service request latencies get finer buckets: QoS comparisons hinge on
	// tail shifts of tens of periods.
	latencyHistMax     = 4096
	latencyHistBuckets = 256
)

// Service is one latency-sensitive application pinned to a machine core.
type Service struct {
	// Profile is the benchmark; its Instructions count is one request's
	// work.
	Profile spec.Profile
	// Core pins the service within its machine.
	Core int
	// Relaunch runs the service as an open-loop request source: each time
	// the process completes, the request's duration in periods is recorded
	// into the service's latency histogram (the p50/p99 QoS metric) and
	// the process restarts. Without it the service runs to completion once
	// and gates the end of the run, exactly like runner.ModeScheduled's
	// latency app.
	Relaunch bool
}

// MachineSpec shapes one fleet machine.
type MachineSpec struct {
	// Cores and Domains size the machine; zero means Domains 2 and
	// Cores 4*Domains.
	Cores, Domains int
	// Workers sizes the machine's domain-stepper worker pool (domain
	// parallelism within the machine; bit-identical per seed at any
	// worker count). 0 or 1 = serial stepping.
	Workers int
	// Services are the machine's pinned latency-sensitive applications.
	Services []Service
}

func (ms MachineSpec) withDefaults() MachineSpec {
	if ms.Domains == 0 {
		ms.Domains = 2
	}
	if ms.Cores == 0 {
		ms.Cores = 4 * ms.Domains
	}
	return ms
}

// Config shapes a fleet run.
type Config struct {
	// Machines are the cluster members, in index order.
	Machines []MachineSpec
	// Sched configures every machine's scheduler (policy, thresholds,
	// aging, intra-machine migration). Its TrackOffset and TrackPrefix are
	// overridden per machine so the fleet shares one span ring.
	Sched sched.Config
	// Policy selects the cross-machine placement strategy.
	Policy Policy
	// Traffic is the open-loop arrival schedule.
	Traffic Traffic
	// Seed drives every stochastic choice: machine k's service j uses
	// Seed + 100*min(j,1) + (j-1) + 1000k, job i uses Seed+1+i, the
	// traffic driver Seed-1 — machine 0 matches runner.ModeScheduled's
	// seeding exactly.
	Seed int64
	// DispatchPerTick bounds fleet-queue dispatches per period; default 8.
	DispatchPerTick int
	// MigratePeriod evaluates at most one cross-machine migration every
	// this many periods; 0 (the default) disables fleet migration.
	MigratePeriod int
	// MigrateMargin is the minimum backlog gap (jobs) between the most and
	// least loaded machines before a migration fires; default 2.
	MigrateMargin int
	// MaxPeriods bounds Run as a safety valve; default 1,000,000.
	MaxPeriods int
	// SLO declares the per-node burn-rate objectives (zero disables the
	// engines; the per-node time-series stores always run).
	SLO SLOConfig
	// SeriesCapacity sizes each node's per-metric time-series rings, in
	// periods; default 512.
	SeriesCapacity int
	// ScrapePeriod is how often, in ticks, PolicyTelemetry scrapes every
	// node's exported registry; default 16. Other policies never scrape.
	ScrapePeriod int
	// StalenessHorizon is the scrape age, in ticks, past which a machine's
	// telemetry view is distrusted and PolicyTelemetry scores it with the
	// synchronous least-pressure fallback; default 4*ScrapePeriod.
	StalenessHorizon int
	// Scraper overrides the metric transport (tests inject outages);
	// default reads each node's registry directly.
	Scraper Scraper
	// Spans is the span recorder the whole fleet records into (schedulers,
	// engines, monitors, SLO alert lanes). nil uses telemetry.DefaultSpans;
	// the bench suites pass a private ring so artifacts are self-contained.
	Spans *telemetry.SpanRecorder
}

func (c Config) withDefaults() Config {
	if c.DispatchPerTick == 0 {
		c.DispatchPerTick = 8
	}
	if c.MigrateMargin == 0 {
		c.MigrateMargin = 2
	}
	if c.MaxPeriods == 0 {
		c.MaxPeriods = 1_000_000
	}
	if c.SeriesCapacity == 0 {
		c.SeriesCapacity = 512
	}
	if c.ScrapePeriod == 0 {
		c.ScrapePeriod = 16
	}
	if c.StalenessHorizon == 0 {
		c.StalenessHorizon = 4 * c.ScrapePeriod
	}
	c.SLO = c.SLO.withDefaults()
	return c
}

// service is one hosted latency app's running state.
type service struct {
	name      string
	core      int
	relaunch  bool
	proc      *machine.Process
	lastStart int // fleet tick the current request began
	requests  int
	latency   *stats.Histogram     // request durations, periods
	tel       *telemetry.Histogram // same durations, exported per service
}

// Node is one fleet machine: the simulated hardware, its scheduler, its
// latency services, and its own telemetry registry (merged into the
// fleet-wide snapshot by WriteMetrics with a machine label).
type Node struct {
	id       int
	m        *machine.Machine
	sched    *sched.Scheduler
	services []*service

	wait    *stats.Histogram // fleet-queue + machine-queue wait, periods
	sojourn *stats.Histogram // arrival -> completion, periods

	reg         *telemetry.Registry
	dispatches  *telemetry.Counter
	completions *telemetry.Counter
	withdrawals *telemetry.Counter
	queueDepth  *telemetry.Gauge
	sojournTel  *telemetry.Histogram

	// Observability v2: the exported placement signals PolicyTelemetry
	// scrapes, the per-period time-series store, and the SLO engine.
	freeCoresG   *telemetry.Gauge
	sensitivityG *telemetry.Gauge
	batchLoadG   *telemetry.Gauge
	pressureG    []*telemetry.Gauge // caer_core_pressure, one per latency app
	degraded     *telemetry.Counter
	lastDegraded uint64
	pressureBuf  []float64
	sensBuf      []float64
	sum          sched.Summary
	series       *telemetry.Series
	slo          *slo.Engine
}

// Sched exposes the machine's scheduler (decision log, reports) for
// result assembly and tests.
func (n *Node) Sched() *sched.Scheduler { return n.sched }

// Machine exposes the simulated hardware.
func (n *Node) Machine() *machine.Machine { return n.m }

// Registry exposes the node's telemetry registry.
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// Cluster is the fleet scheduler: N machines, the fleet admission queue,
// the traffic driver, and the cross-machine placement policy.
type Cluster struct {
	cfg     Config
	nodes   []*Node
	placer  Placer
	traffic *driver

	jobs  []*job
	queue fifo
	live  []int // dispatched-but-unfinished job indices, dispatch order
	views []NodeView

	tick       int
	migrations int

	// Telemetry control plane (see telemetry.go).
	scraper   Scraper
	scrapeBuf bytes.Buffer
	tel       []telState
	decisions []Decision
	// migrateFrom marks an in-flight cross-machine migration so dispatchTo
	// logs it as such; -1 outside maybeMigrate.
	migrateFrom int
}

// New builds the cluster: machines, services, scheduler per machine, and
// the traffic driver. It panics on an empty machine list or an empty
// traffic mix with a positive rate.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if len(cfg.Machines) == 0 {
		panic("fleet: cluster needs at least one machine")
	}
	if len(cfg.Traffic.Mix) == 0 {
		panic("fleet: traffic needs a non-empty job mix")
	}
	c := &Cluster{
		cfg:         cfg,
		placer:      cfg.Policy.NewPlacer(),
		traffic:     newDriver(cfg.Traffic, cfg.Seed-1),
		views:       make([]NodeView, len(cfg.Machines)),
		tel:         make([]telState, len(cfg.Machines)),
		migrateFrom: -1,
	}
	for k := range c.tel {
		c.tel[k].lastTick = -1
	}
	c.scraper = cfg.Scraper
	if c.scraper == nil {
		c.scraper = registryScraper{c}
	}
	multi := len(cfg.Machines) > 1
	for k, ms := range cfg.Machines {
		c.nodes = append(c.nodes, newNode(k, ms, &cfg, multi))
	}
	return c
}

// newNode builds machine k. Service seeding mirrors runner.ModeScheduled
// for machine 0 (service 0: base 0, seed Seed; service j: base
// serviceBase+(j-1)*batchStride, seed Seed+100+(j-1)), shifted by
// machineSeedStride per further machine.
func newNode(k int, ms MachineSpec, cfg *Config, multi bool) *Node {
	ms = ms.withDefaults()
	m := machine.New(machine.Config{Cores: ms.Cores, Domains: ms.Domains, Workers: ms.Workers})
	scfg := cfg.Sched
	scfg.TrackOffset = int32(k) * trackStride
	scfg.Spans = cfg.Spans
	if multi {
		scfg.TrackPrefix = fmt.Sprintf("m%d/", k)
	}
	n := &Node{
		id:      k,
		m:       m,
		sched:   sched.New(m, scfg),
		wait:    stats.NewHistogram(0, waitHistMax, histBuckets),
		sojourn: stats.NewHistogram(0, sojournHistMax, histBuckets),
		reg:     telemetry.NewRegistry(),
	}
	n.dispatches = n.reg.Counter("caer_fleet_node_dispatches_total", "jobs dispatched to this machine")
	n.completions = n.reg.Counter("caer_fleet_node_completions_total", "jobs completed on this machine")
	n.withdrawals = n.reg.Counter("caer_fleet_node_withdrawals_total", "queued jobs withdrawn from this machine by fleet migration")
	n.queueDepth = n.reg.Gauge("caer_fleet_node_queue_depth", "jobs waiting in this machine's admission queue")
	n.sojournTel = n.reg.Histogram("caer_fleet_node_sojourn_periods", "job arrival-to-completion time on this machine, in periods", 0, sojournHistMax, histBuckets)
	if len(ms.Services) == 0 {
		panic(fmt.Sprintf("fleet: machine %d needs at least one latency service", k))
	}
	for j, sv := range ms.Services {
		base := uint64(0)
		seed := cfg.Seed + machineSeedStride*int64(k)
		if j > 0 {
			base = serviceBase + uint64(j-1)*batchStride
			seed = cfg.Seed + 100 + int64(j-1) + machineSeedStride*int64(k)
		}
		proc := sv.Profile.NewProcess(base, seed)
		name := spec.ShortName(sv.Profile.Name)
		n.sched.AddLatency(name, sv.Core, proc)
		n.services = append(n.services, &service{
			name:     name,
			core:     sv.Core,
			relaunch: sv.Relaunch,
			proc:     proc,
			latency:  stats.NewHistogram(0, latencyHistMax, latencyHistBuckets),
			tel: n.reg.Histogram("caer_fleet_request_latency_periods",
				"open-loop request duration on this machine, in periods",
				0, latencyHistMax, latencyHistBuckets, "service", name),
		})
	}

	// The exported placement signals (observability v2): PolicyTelemetry
	// reads these — not the classifier — so every signal the placer acts
	// on must be a registered series.
	n.freeCoresG = n.reg.Gauge("caer_fleet_node_free_cores", "unoccupied batch cores on this machine")
	n.sensitivityG = n.reg.Gauge("caer_fleet_node_sensitivity", "summed classifier sensitivity of this machine's latency apps")
	n.batchLoadG = n.reg.Gauge("caer_fleet_node_batch_load", "summed classifier aggressiveness of this machine's resident batch jobs")
	n.degraded = n.reg.Counter("caer_fleet_node_degraded_ticks_total", "fail-open degraded periods summed over this machine's CAER engines")
	apps := n.sched.LatencyApps()
	n.pressureBuf = make([]float64, apps)
	n.sensBuf = make([]float64, apps)
	for _, sv := range n.services {
		n.pressureG = append(n.pressureG, n.reg.Gauge("caer_core_pressure",
			"normalized windowed LLC-miss pressure of the core's latency app",
			"app", sv.name, "core", fmt.Sprintf("%d", sv.core), "role", "latency"))
	}

	// The time-series store samples every registered metric once per tick;
	// the SLO engine reads it. Both register their own export families, so
	// they come last — the first Sample absorbs them via one cold extend.
	n.series = telemetry.NewSeries(n.reg, cfg.SeriesCapacity)
	if cfg.SLO.enabled() {
		if objs := cfg.SLO.objectives(n); len(objs) > 0 {
			spans := cfg.Spans
			if spans == nil {
				spans = telemetry.DefaultSpans
			}
			track := int32(k)*trackStride + trackStride - 1
			prefix := ""
			if multi {
				prefix = fmt.Sprintf("m%d/", k)
			}
			spans.NameTrack(track, prefix+"slo")
			n.slo = slo.NewEngine(slo.Config{
				Series:     n.series,
				Objectives: objs,
				Registry:   n.reg,
				Spans:      spans,
				Track:      track,
			})
		}
	}
	return n
}

// Nodes returns the fleet members in index order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Tick advances the whole fleet one period: open-loop arrivals enter the
// fleet queue, the placer dispatches bounded work onto machines, at most
// one bounded-rate cross-machine migration fires, every machine steps one
// period (in index order; domain-parallel inside each machine), and
// completions are harvested. Hot path: the per-period work is
// allocation-free, with arrivals, dispatch commits, migration, and
// request relaunches delegated to the documented cold barriers.
func (c *Cluster) Tick() {
	if c.cfg.Policy == PolicyTelemetry && c.tick%c.cfg.ScrapePeriod == 0 {
		c.scrapeAll()
	}
	if n := c.traffic.arrivals(c.tick); n > 0 {
		c.arrive(n)
	}
	c.dispatch()
	c.maybeMigrate()
	for _, n := range c.nodes {
		n.sched.Step()
	}
	c.tick++
	c.harvest()
	for _, n := range c.nodes {
		n.syncTelemetry()
	}
	telemetry.FleetTicks.Inc()
}

// arrive materializes n arrivals from the traffic driver into the fleet
// queue. Cold path: it allocates job records.
func (c *Cluster) arrive(n int) {
	for i := 0; i < n; i++ {
		prof, idx := c.traffic.next()
		c.jobs = append(c.jobs, &job{
			name:    spec.ShortName(prof.Name),
			prof:    prof,
			idx:     idx,
			state:   JobQueued,
			node:    -1,
			schedID: -1,
			arrived: c.tick,
		})
		c.queue.push(len(c.jobs) - 1)
		telemetry.FleetArrivals.Inc()
	}
}

// dispatch drains the head of the fleet queue onto machines, bounded per
// tick, FIFO: when the placer finds no eligible machine for the head job,
// dispatch stalls until capacity frees up (head-of-line order is part of
// the determinism contract). The scan is allocation-free; the per-job
// commit happens in the cold dispatchTo barrier.
func (c *Cluster) dispatch() {
	for budget := c.cfg.DispatchPerTick; budget > 0 && c.queue.len() > 0; budget-- {
		ji := c.queue.peek()
		c.fillViews(c.jobs[ji].name)
		k := c.placer.Place(c.views)
		if k < 0 {
			break
		}
		c.queue.pop()
		c.placer.Commit(k)
		c.dispatchTo(k, ji)
	}
	telemetry.FleetQueueDepth.Set(float64(c.queue.len()))
}

// fillViews refreshes the per-machine placement views for a candidate job.
// Allocation-free: Summarize refills the caller-held summaries in place.
func (c *Cluster) fillViews(name string) {
	for k, n := range c.nodes {
		n.sched.Summarize(&c.views[k].Summary)
		aggr, ok := n.sched.AppAggressiveness(name)
		if !ok {
			aggr = 0.5 // classifier prior for a never-seen program
		}
		c.views[k].Aggr = aggr
	}
	c.fillTelViews()
}

// dispatchTo submits fleet job ji to machine k. Cold path: Submit
// registers a comm slot and names a span track. The footprint base and
// seed derive from the job's global arrival index, not the machine, so a
// migrated job re-runs identically wherever it lands.
func (c *Cluster) dispatchTo(k, ji int) {
	j := c.jobs[ji]
	n := c.nodes[k]
	prof := j.prof
	base := uint64(batchBase) + uint64(j.idx)*batchStride
	seed := c.cfg.Seed + 1 + int64(j.idx)
	j.schedID = n.sched.Submit(sched.Job{Name: j.name, New: func() *machine.Process {
		return prof.NewProcess(base, seed)
	}})
	j.state = JobDispatched
	j.node = k
	c.live = append(c.live, ji)
	n.dispatches.Inc()
	telemetry.FleetDispatches.Inc()
	kind, from := DecisionDispatch, -1
	if c.migrateFrom >= 0 {
		kind, from = DecisionMigrate, c.migrateFrom
	}
	c.decisions = append(c.decisions, Decision{
		Tick: c.tick, Kind: kind, Job: ji, Name: j.name, From: from, To: k,
		Fresh: c.tel[k].fresh(c.tick, c.cfg.StalenessHorizon),
	})
}

// maybeMigrate evaluates at most one cross-machine migration every
// MigratePeriod ticks: when the most backlogged machine's queue exceeds
// the least backlogged eligible machine's by MigrateMargin, the most
// recently dispatched still-waiting job is withdrawn and re-dispatched
// there. Cold path (rate-bounded by construction, like sched's
// maybeMigrate one level down).
func (c *Cluster) maybeMigrate() {
	if c.cfg.MigratePeriod <= 0 || c.tick == 0 || c.tick%c.cfg.MigratePeriod != 0 {
		return
	}
	src, dst := -1, -1
	srcQ, dstQ := 0, 0
	for k, n := range c.nodes {
		q := n.sched.QueueLen()
		if src == -1 || q > srcQ {
			src, srcQ = k, q
		}
		if dst == -1 || q < dstQ {
			dst, dstQ = k, q
		}
	}
	if src == dst || srcQ-dstQ < c.cfg.MigrateMargin {
		return
	}
	for i := len(c.live) - 1; i >= 0; i-- {
		ji := c.live[i]
		j := c.jobs[ji]
		if j.node != src || j.state != JobDispatched {
			continue
		}
		c.fillViews(j.name)
		if !c.views[dst].eligible() {
			return
		}
		if !c.nodes[src].sched.Withdraw(j.schedID) {
			continue // raced into running; try the next newest
		}
		c.nodes[src].withdrawals.Inc()
		c.live = append(c.live[:i], c.live[i+1:]...)
		j.migrations++
		c.migrations++
		telemetry.FleetMigrations.Inc()
		c.migrateFrom = src
		c.dispatchTo(dst, ji)
		c.migrateFrom = -1
		return
	}
}

// harvest scans live jobs for admissions and completions and services for
// finished requests. Hot path: allocation-free — the live list compacts in
// place and request relaunches are delegated to the cold finishRequest
// barrier.
func (c *Cluster) harvest() {
	w := 0
	for _, ji := range c.live {
		j := c.jobs[ji]
		n := c.nodes[j.node]
		if j.admitted == 0 {
			if a := n.sched.JobAdmittedPeriod(j.schedID); a > 0 {
				j.admitted = a
				wait := int(a) - 1 - j.arrived
				if wait < 0 {
					wait = 0
				}
				n.wait.Add(float64(wait))
			}
		}
		if n.sched.JobStateOf(j.schedID) == sched.JobDone {
			j.state = JobFinished
			j.doneTick = c.tick
			d := float64(c.tick - j.arrived)
			n.sojourn.Add(d)
			n.sojournTel.Observe(d)
			n.completions.Inc()
			telemetry.FleetCompletions.Inc()
			continue
		}
		c.live[w] = ji
		w++
	}
	c.live = c.live[:w]
	for _, n := range c.nodes {
		n.queueDepth.Set(float64(n.sched.QueueLen()))
		for _, s := range n.services {
			if s.relaunch && s.proc.Done() {
				c.finishRequest(n, s)
			}
		}
	}
}

// finishRequest closes one open-loop service request and starts the next:
// duration recorded, core flushed (a fresh request does not inherit the
// old one's cache state), process relaunched. Cold path: Relaunch
// reseeds the process RNG.
func (c *Cluster) finishRequest(n *Node, s *service) {
	d := float64(c.tick - s.lastStart)
	s.latency.Add(d)
	s.tel.Observe(d)
	s.requests++
	n.m.FlushCore(s.core)
	s.proc.Relaunch()
	s.lastStart = c.tick
	telemetry.FleetRequests.Inc()
}

// Done reports whether the fleet has fully drained: the traffic schedule
// is exhausted, the fleet queue is empty, every dispatched job finished,
// and every run-to-completion service is done (open-loop Relaunch
// services never gate, like the runner's relaunch-forever batches).
func (c *Cluster) Done() bool {
	if !c.traffic.exhausted(c.tick) || c.queue.len() > 0 || len(c.live) > 0 {
		return false
	}
	for _, n := range c.nodes {
		for _, s := range n.services {
			if !s.relaunch && !s.proc.Done() {
				return false
			}
		}
	}
	return true
}

// Tick count so far.
func (c *Cluster) Ticks() int { return c.tick }

// Run steps the fleet until Done or MaxPeriods, returning the periods
// executed. Machines' worker pools are stopped on return.
func (c *Cluster) Run() int {
	defer func() {
		for _, n := range c.nodes {
			n.m.StopWorkers()
		}
	}()
	for c.tick < c.cfg.MaxPeriods && !c.Done() {
		c.Tick()
	}
	return c.tick
}

// WriteMetrics writes one Prometheus snapshot covering the whole fleet:
// the process-global registry unprefixed plus every machine's registry
// with a machine="<k>" label. Export path (locks, allocates).
func (c *Cluster) WriteMetrics(w io.Writer) error {
	merged := telemetry.NewRegistry()
	merged.Union(telemetry.Default())
	for k, n := range c.nodes {
		merged.Union(n.reg, "machine", fmt.Sprintf("%d", k))
	}
	return merged.WritePrometheus(w)
}

// ServeTelemetry starts the fleet telemetry endpoint: /metrics serves the
// merged fleet snapshot, /trace the shared span ring with per-machine
// lane prefixes. Close the returned listener to stop.
func (c *Cluster) ServeTelemetry(addr string) (io.Closer, error) {
	return telemetry.ServeWith(addr, c.WriteMetrics)
}
