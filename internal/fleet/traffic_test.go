package fleet

import (
	"testing"

	"caer/internal/spec"
)

func mix(names ...string) []spec.Profile {
	out := make([]spec.Profile, 0, len(names))
	for _, n := range names {
		p, ok := spec.ByName(n)
		if !ok {
			panic("unknown profile " + n)
		}
		out = append(out, p)
	}
	return out
}

func totalArrivals(d *driver, horizon int) int {
	n := 0
	for p := 0; p < horizon; p++ {
		n += d.arrivals(p)
	}
	return n
}

// TestTrafficConstantExact pins the fractional-accumulator discretization:
// with no jitter, a constant curve delivers exactly rate*horizon jobs.
func TestTrafficConstantExact(t *testing.T) {
	d := newDriver(Traffic{Curve: CurveConstant, Rate: 0.75, Horizon: 400, Mix: mix("lbm")}, 7)
	if got := totalArrivals(d, 400); got != 300 {
		t.Fatalf("constant 0.75 x 400 delivered %d arrivals, want 300", got)
	}
	if !d.exhausted(400) || d.exhausted(399) {
		t.Error("exhaustion boundary wrong")
	}
	// Horizon 1 delivers everything up front — the identity-pin shape.
	up := newDriver(Traffic{Curve: CurveConstant, Rate: 6, Mix: mix("lbm")}, 7)
	if got := up.arrivals(0); got != 6 {
		t.Fatalf("up-front driver delivered %d at tick 0, want 6", got)
	}
	if up.arrivals(1) != 0 {
		t.Error("arrivals past the horizon")
	}
}

// TestTrafficDiurnalShape pins the ramp: quiet edges, peak mid-horizon,
// total well below the flat equivalent (mean of sin over [0,pi] = 2/pi).
func TestTrafficDiurnalShape(t *testing.T) {
	d := newDriver(Traffic{Curve: CurveDiurnal, Rate: 2, Horizon: 1000, Mix: mix("lbm")}, 7)
	if r := d.rate(0); r != 0 {
		t.Errorf("diurnal rate at 0 = %v, want 0", r)
	}
	if r := d.rate(500); r < 1.99 {
		t.Errorf("diurnal rate at mid-horizon = %v, want ~2", r)
	}
	total := totalArrivals(d, 1000)
	if total < 1200 || total > 1350 { // 2000 * 2/pi ~= 1273
		t.Errorf("diurnal total = %d, want ~1273", total)
	}
}

// TestTrafficBurstShape pins the flash-crowd shape: per-period arrivals
// alternate between the burst level and the 1/5 baseline.
func TestTrafficBurstShape(t *testing.T) {
	d := newDriver(Traffic{Curve: CurveBurst, Rate: 5, Horizon: 1000, BurstEvery: 100, BurstLen: 10, Mix: mix("lbm")}, 7)
	burst, base := 0, 0
	for p := 0; p < 1000; p++ {
		if d.rate(p) == 5 {
			burst++
		} else {
			base++
		}
	}
	if burst != 100 || base != 900 {
		t.Fatalf("burst/base period split = %d/%d, want 100/900", burst, base)
	}
	if got, want := totalArrivals(d, 1000), 100*5+900; got != want {
		t.Errorf("burst total = %d, want %d", got, want)
	}
}

// TestTrafficDeterministicPerSeed pins replayability: equal seeds produce
// identical arrival sequences (with jitter engaged), different seeds
// generally do not.
func TestTrafficDeterministicPerSeed(t *testing.T) {
	cfg := Traffic{Curve: CurveBurst, Rate: 3, Horizon: 500, Jitter: 0.5, Mix: mix("lbm", "povray")}
	seq := func(seed int64) []int {
		d := newDriver(cfg, seed)
		out := make([]int, 500)
		for p := range out {
			out[p] = d.arrivals(p)
		}
		return out
	}
	a, b := seq(11), seq(11)
	for p := range a {
		if a[p] != b[p] {
			t.Fatalf("same seed diverged at period %d: %d vs %d", p, a[p], b[p])
		}
	}
	c := seq(12)
	same := true
	for p := range a {
		if a[p] != c[p] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jittered arrivals")
	}
}

// TestTrafficMixCycles pins that arrival i runs Mix[i % len(Mix)], keeping
// the mix ratio exact and the submission order reproducible.
func TestTrafficMixCycles(t *testing.T) {
	m := mix("lbm", "povray", "mcf")
	d := newDriver(Traffic{Curve: CurveConstant, Rate: 7, Mix: m}, 7)
	for i := 0; i < 7; i++ {
		p, idx := d.next()
		if idx != i || p.Name != m[i%3].Name {
			t.Fatalf("arrival %d: idx=%d profile=%s, want %d, %s", i, idx, p.Name, i, m[i%3].Name)
		}
	}
}
