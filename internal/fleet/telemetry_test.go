package fleet_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"caer/internal/fleet"
	"caer/internal/spec"
	"caer/internal/telemetry"
)

// telFleetConfig is the shared metrics-fed fixture: two machines with
// open-loop mcf/namd services, diurnal batch traffic, and the SLO engine
// armed on every node. Placement matters (machines differ in resident
// service), requests flow (Relaunch), and every node exports the full
// telemetry plane the scraper reads.
func telFleetConfig(policy fleet.Policy) fleet.Config {
	return fleet.Config{
		Machines: []fleet.MachineSpec{
			{Cores: 8, Domains: 2,
				Services: []fleet.Service{{Profile: prof("mcf", 40_000), Core: 0, Relaunch: true}}},
			{Cores: 8, Domains: 2,
				Services: []fleet.Service{{Profile: prof("namd", 40_000), Core: 0, Relaunch: true}}},
		},
		Sched:  identitySchedConfig(),
		Policy: policy,
		Traffic: fleet.Traffic{
			Curve: fleet.CurveDiurnal, Rate: 0.4, Horizon: 1500,
			Mix: []spec.Profile{prof("lbm", 50_000), prof("povray", 50_000)},
		},
		SLO: fleet.SLOConfig{
			LatencyQuantile: 0.99, LatencyBound: 2048,
			DegradedBudget: 0.25, Window: 64,
		},
		SeriesCapacity:   128,
		ScrapePeriod:     8,
		StalenessHorizon: 32,
		Seed:             9,
		MaxPeriods:       20_000,
	}
}

// telFingerprint reduces a finished cluster to comparable bytes: job and
// service reports plus the fleet decision log.
func telFingerprint(t *testing.T, c *fleet.Cluster) []byte {
	t.Helper()
	rep := c.Report()
	var sb strings.Builder
	sb.Write(mustJSON(t, rep.Jobs))
	sb.Write(mustJSON(t, rep.Services))
	sb.Write(mustJSON(t, c.Decisions()))
	return []byte(sb.String())
}

// TestPolicyTelemetryRuns pins the metrics-fed policy end to end: the
// cluster drains, placement decisions record fresh scraped views, and two
// identical runs are byte-identical (ParseText → view derivation → score
// is deterministic).
func TestPolicyTelemetryRuns(t *testing.T) {
	run := func() (*fleet.Cluster, []byte) {
		c := fleet.New(telFleetConfig(fleet.PolicyTelemetry))
		c.Run()
		return c, telFingerprint(t, c)
	}
	c, base := run()
	rep := c.Report()
	if rep.Completed != rep.Arrivals || rep.Arrivals == 0 {
		t.Fatalf("%d of %d jobs completed", rep.Completed, rep.Arrivals)
	}
	ds := c.Decisions()
	if len(ds) == 0 {
		t.Fatal("empty fleet decision log")
	}
	fresh := 0
	for _, d := range ds {
		if d.Kind == fleet.DecisionDispatch && d.From != -1 {
			t.Fatalf("dispatch decision %+v has a source machine", d)
		}
		if d.Fresh {
			fresh++
		}
	}
	if fresh == 0 {
		t.Error("no placement decision ever saw a fresh telemetry view")
	}
	if _, again := run(); !bytes.Equal(base, again) {
		t.Fatal("two identical PolicyTelemetry runs diverged")
	}
}

// TestTelemetryOutageMatchesLeastPressure is the staleness-fallback pin
// from the acceptance list: with the scraper hard down, every machine is
// stale past the horizon forever, so PolicyTelemetry must reproduce
// PolicyLeastPressure exactly — same decision log, same per-job report.
func TestTelemetryOutageMatchesLeastPressure(t *testing.T) {
	cfg := telFleetConfig(fleet.PolicyTelemetry)
	cfg.Scraper = fleet.ScraperFunc(func(int, io.Writer) error {
		return errors.New("collector down")
	})
	out := fleet.New(cfg)
	out.Run()
	for _, d := range out.Decisions() {
		if d.Fresh {
			t.Fatalf("decision %+v marked fresh during a total scrape outage", d)
		}
	}
	lp := fleet.New(telFleetConfig(fleet.PolicyLeastPressure))
	lp.Run()
	if !bytes.Equal(telFingerprint(t, out), telFingerprint(t, lp)) {
		t.Fatal("scrape outage did not degrade PolicyTelemetry to PolicyLeastPressure")
	}
}

// TestFleetEventsRoundTrip pins the decision-log dump caer-doctor reads:
// every arrival appears as exactly one dispatch entry, and the JSON dump
// re-encodes byte-identically after a parse.
func TestFleetEventsRoundTrip(t *testing.T) {
	c := fleet.New(telFleetConfig(fleet.PolicyTelemetry))
	c.Run()
	rep := c.Report()
	dispatches := 0
	for _, d := range c.Decisions() {
		if d.Kind == fleet.DecisionDispatch {
			dispatches++
		}
	}
	if dispatches != rep.Arrivals {
		t.Fatalf("%d dispatch decisions for %d arrivals", dispatches, rep.Arrivals)
	}
	var buf bytes.Buffer
	if err := c.WriteEvents(&buf); err != nil {
		t.Fatalf("WriteEvents: %v", err)
	}
	d, err := fleet.ParseEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseEvents: %v", err)
	}
	if d.Policy != "telemetry" || d.Ticks != c.Ticks() {
		t.Fatalf("parsed header policy=%q ticks=%d, want telemetry/%d", d.Policy, d.Ticks, c.Ticks())
	}
	if len(d.Machines) != 2 {
		t.Fatalf("parsed %d machine logs, want 2", len(d.Machines))
	}
	enc := mustJSON(t, d)
	if !bytes.Equal(append(enc, '\n'), buf.Bytes()) {
		t.Error("events dump is not parse/re-encode stable")
	}
}

// TestNodeTelemetryPlane pins the per-node observability plumbing: every
// node samples its series once per tick, runs its SLO engine, and exports
// the caer_series_* / caer_slo_* families through its registry — the
// bytes the scraper, caer-top, and the doctor all consume.
func TestNodeTelemetryPlane(t *testing.T) {
	c := fleet.New(telFleetConfig(fleet.PolicyTelemetry))
	c.Run()
	for k, n := range c.Nodes() {
		s := n.Series()
		if s == nil || s.Samples() != c.Ticks() {
			t.Fatalf("machine %d series sampled %d periods, want %d", k, s.Samples(), c.Ticks())
		}
		eng := n.SLO()
		if eng == nil {
			t.Fatalf("machine %d has no SLO engine despite SLOConfig", k)
		}
		if got := len(eng.Objectives()); got != 2 {
			t.Fatalf("machine %d has %d objectives, want latency + degraded-budget", k, got)
		}
		var sb strings.Builder
		if err := n.Registry().WritePrometheus(&sb); err != nil {
			t.Fatalf("machine %d scrape: %v", k, err)
		}
		text := sb.String()
		for _, name := range []string{
			"caer_series_samples_total", "caer_series_tracks",
			"caer_slo_state", "caer_slo_burn_slow", "caer_slo_evals_total",
			"caer_fleet_node_degraded_ticks_total", "caer_core_pressure",
		} {
			if !strings.Contains(text, name) {
				t.Errorf("machine %d snapshot missing %s", k, name)
			}
		}
		ms, err := telemetry.ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("machine %d snapshot unparseable: %v", k, err)
		}
		for _, m := range ms {
			if m.Name == "caer_slo_evals_total" && m.Value != float64(c.Ticks()) {
				t.Errorf("machine %d ran %v SLO evals over %d ticks", k, m.Value, c.Ticks())
			}
		}
	}
}

// TestNodeSeriesDumpReplayable pins the doctor's input contract: a node's
// live series dump parses back and serves windowed queries over the same
// metric names the SLO objectives reference.
func TestNodeSeriesDumpReplayable(t *testing.T) {
	c := fleet.New(telFleetConfig(fleet.PolicyTelemetry))
	c.Run()
	n := c.Nodes()[0]
	var buf bytes.Buffer
	if err := n.Series().WriteDump(&buf); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	parsed, err := telemetry.ParseSeries(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseSeries over live dump: %v", err)
	}
	if parsed.Samples() != n.Series().Samples() {
		t.Fatalf("parsed %d samples, live has %d", parsed.Samples(), n.Series().Samples())
	}
	tr, ok := parsed.Lookup("caer_fleet_request_latency_periods", "service", "mcf")
	if !ok {
		t.Fatal("parsed series lost the mcf latency histogram track")
	}
	if q := parsed.QuantileOver(tr, parsed.Retained(), 0.99); q < 0 {
		t.Fatalf("negative p99 %v from parsed series", q)
	}
}
