package fleet

import (
	"testing"

	"caer/internal/sched"
)

func view(free, queued int, sens, press, load float64) NodeView {
	return NodeView{Summary: sched.Summary{
		FreeCores: free, Queued: queued,
		Sensitivity: sens, Pressure: press, BatchLoad: load,
	}}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{
		PolicyRoundRobin:    "round-robin",
		PolicyLeastPressure: "least-pressure",
		PolicyPacked:        "packed",
		Policy(9):           "Policy(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
	for _, p := range []Policy{PolicyRoundRobin, PolicyLeastPressure, PolicyPacked} {
		if got := p.NewPlacer().Name(); got != p.String() {
			t.Errorf("placer name %q != policy name %q", got, p.String())
		}
	}
}

// TestRoundRobinPlacerRotates pins rotation across eligible machines and
// skipping of saturated ones.
func TestRoundRobinPlacerRotates(t *testing.T) {
	p := PolicyRoundRobin.NewPlacer()
	views := []NodeView{view(4, 0, 0, 0, 0), view(4, 0, 0, 0, 0), view(4, 0, 0, 0, 0)}
	for i, want := range []int{0, 1, 2, 0} {
		got := p.Place(views)
		if got != want {
			t.Fatalf("dispatch %d -> machine %d, want %d", i, got, want)
		}
		p.Commit(got)
	}
	// A machine whose queue matches its free cores is skipped.
	views[1] = view(2, 2, 0, 0, 0)
	p.Commit(0)
	if got := p.Place(views); got != 2 {
		t.Errorf("rotation over saturated machine -> %d, want 2", got)
	}
	// No eligible machine: park in the fleet queue.
	none := []NodeView{view(1, 1, 0, 0, 0), view(0, 0, 0, 0, 0)}
	if got := p.Place(none); got != -1 {
		t.Errorf("saturated fleet -> %d, want -1", got)
	}
}

// TestLeastPressurePlacerAvoidsSensitiveMachines pins the core gate
// behaviour: an aggressive job goes to the machine with the least
// (sensitivity+pressure) exposure, ties broken toward the lower index.
func TestLeastPressurePlacerAvoidsSensitiveMachines(t *testing.T) {
	p := PolicyLeastPressure.NewPlacer()
	views := []NodeView{
		view(4, 0, 1.8, 0.7, 0), // sensitive service, hot
		view(4, 0, 0.2, 0.1, 0), // insensitive service, cool
	}
	views[0].Aggr, views[1].Aggr = 0.9, 0.9
	if got := p.Place(views); got != 1 {
		t.Fatalf("aggressor placed on machine %d, want the cool machine 1", got)
	}
	// Resident batch load breaks ties away from crowded machines.
	tied := []NodeView{view(4, 0, 0.5, 0.2, 2.0), view(4, 0, 0.5, 0.2, 0.5)}
	if got := p.Place(tied); got != 1 {
		t.Errorf("tie on latency exposure placed on %d, want less-loaded 1", got)
	}
	// Saturated cool machine: the job takes the sensitive one over parking
	// only if it is eligible; here it is, so expect machine 0.
	sat := []NodeView{view(4, 0, 1.8, 0.7, 0), view(2, 2, 0.2, 0.1, 0)}
	if got := p.Place(sat); got != 0 {
		t.Errorf("only-eligible sensitive machine -> %d, want 0", got)
	}
}

func TestPackedPlacerFillsInOrder(t *testing.T) {
	p := PolicyPacked.NewPlacer()
	views := []NodeView{view(1, 1, 0, 0, 0), view(3, 0, 0, 0, 0), view(4, 0, 0, 0, 0)}
	if got := p.Place(views); got != 1 {
		t.Errorf("packed placed on %d, want first eligible 1", got)
	}
}

// TestPlacersAllocationFree pins the dispatch-scan contract: Place runs on
// the per-period hot path and must not allocate.
func TestPlacersAllocationFree(t *testing.T) {
	views := []NodeView{view(4, 1, 0.5, 0.2, 1.0), view(3, 0, 1.0, 0.4, 0.2)}
	for _, pol := range []Policy{PolicyRoundRobin, PolicyLeastPressure, PolicyPacked} {
		p := pol.NewPlacer()
		if n := testing.AllocsPerRun(100, func() { p.Place(views) }); n != 0 {
			t.Errorf("%s Place allocates %v/op", pol, n)
		}
	}
}
