package fleet

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"caer/internal/stats"
)

// JobReport is one fleet job's lifecycle summary.
type JobReport struct {
	Index      int    // global arrival index
	Name       string // short benchmark name
	State      JobState
	Machine    int    // final machine (-1 if never dispatched)
	Arrived    int    // fleet tick of arrival
	Admitted   uint64 // node period the job reached a core (0 = never)
	DoneTick   int    // fleet tick of completion (0 = never)
	Migrations int    // cross-machine moves
}

// ServiceReport is one latency service's QoS summary.
type ServiceReport struct {
	Name     string
	Machine  int
	Core     int
	Relaunch bool
	// Requests counts completed open-loop requests (Relaunch services).
	Requests int
	// P50 and P99 are request-duration quantiles in periods (Relaunch
	// services with at least one request; 0 otherwise).
	P50, P99 float64
	// Latency is the full request-duration distribution (Relaunch services;
	// nil otherwise). Geometry is fixed fleet-wide, so distributions from
	// different machines merge with stats.Histogram.MergeMany.
	Latency *stats.Histogram `json:"-"`
	// DonePeriod is the completion period of a run-to-completion service
	// (0 while unfinished; unused for Relaunch services).
	DonePeriod uint64
}

// NodeReport is one machine's share of the fleet outcome.
type NodeReport struct {
	Machine     int
	Dispatches  int
	Completions int
	// Wait and Sojourn are the machine's per-job queueing and
	// arrival-to-completion distributions (periods).
	Wait, Sojourn *stats.Histogram
}

// Report is a finished (or in-flight) fleet run's outcome.
type Report struct {
	Policy     string
	Machines   int
	Ticks      int
	Arrivals   int
	Dispatched int
	Completed  int
	Migrations int
	// Wait and Sojourn merge every machine's distribution into the
	// fleet-wide one (geometries are fixed, so MergeMany applies).
	Wait, Sojourn *stats.Histogram
	Jobs          []JobReport
	Nodes         []NodeReport
	Services      []ServiceReport
}

// Throughput is completed jobs per 1000 periods.
func (r Report) Throughput() float64 {
	if r.Ticks == 0 {
		return 0
	}
	return float64(r.Completed) / float64(r.Ticks) * 1000
}

// Report assembles the cluster's current outcome.
func (c *Cluster) Report() Report {
	r := Report{
		Policy:   c.placer.Name(),
		Machines: len(c.nodes),
		Ticks:    c.tick,
		Arrivals: len(c.jobs),

		Migrations: c.migrations,
		Wait:       stats.NewHistogram(0, waitHistMax, histBuckets),
		Sojourn:    stats.NewHistogram(0, sojournHistMax, histBuckets),
	}
	for _, j := range c.jobs {
		if j.state != JobQueued {
			r.Dispatched++
		}
		if j.state == JobFinished {
			r.Completed++
		}
		r.Jobs = append(r.Jobs, JobReport{
			Index: j.idx, Name: j.name, State: j.state, Machine: j.node,
			Arrived: j.arrived, Admitted: j.admitted, DoneTick: j.doneTick,
			Migrations: j.migrations,
		})
	}
	waits := make([]*stats.Histogram, 0, len(c.nodes))
	sojourns := make([]*stats.Histogram, 0, len(c.nodes))
	for _, n := range c.nodes {
		nr := NodeReport{
			Machine:     n.id,
			Dispatches:  int(n.dispatches.Value()),
			Completions: int(n.completions.Value()),
			Wait:        n.wait,
			Sojourn:     n.sojourn,
		}
		r.Nodes = append(r.Nodes, nr)
		waits = append(waits, n.wait)
		sojourns = append(sojourns, n.sojourn)
		lats := n.sched.LatencyReports()
		for i, s := range n.services {
			sr := ServiceReport{
				Name: s.name, Machine: n.id, Core: s.core,
				Relaunch: s.relaunch, Requests: s.requests,
			}
			if s.relaunch {
				sr.Latency = s.latency
				if s.latency.N() > 0 {
					sr.P50 = s.latency.Quantile(0.5)
					sr.P99 = s.latency.Quantile(0.99)
				}
			} else {
				sr.DonePeriod = lats[i].Done
			}
			r.Services = append(r.Services, sr)
		}
	}
	r.Wait.MergeMany(waits...)
	r.Sojourn.MergeMany(sojourns...)
	return r
}

// MergedLatency merges the request-duration distributions of every
// open-loop service named name ("" matches all) across the fleet into one
// histogram — the cluster-wide QoS distribution for that service class.
func (r Report) MergedLatency(name string) *stats.Histogram {
	merged := stats.NewHistogram(0, latencyHistMax, latencyHistBuckets)
	for _, s := range r.Services {
		if s.Latency == nil || (name != "" && s.Name != name) {
			continue
		}
		merged.Merge(s.Latency)
	}
	return merged
}

// Render writes the human-readable fleet summary caer-fleet prints.
func (r Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "fleet: %d machines, policy %s, %d periods\n", r.Machines, r.Policy, r.Ticks)
	fmt.Fprintf(w, "jobs:  %d arrived, %d dispatched, %d completed (%.2f jobs/kperiod), %d migrations\n",
		r.Arrivals, r.Dispatched, r.Completed, r.Throughput(), r.Migrations)
	if r.Wait.N() > 0 {
		fmt.Fprintf(w, "wait:  p50 %.0f  p99 %.0f periods   sojourn: p50 %.0f  p99 %.0f periods\n",
			r.Wait.Quantile(0.5), r.Wait.Quantile(0.99),
			r.Sojourn.Quantile(0.5), r.Sojourn.Quantile(0.99))
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "service\tmachine\tcore\tmode\trequests\tp50\tp99")
	for _, s := range r.Services {
		if s.Relaunch {
			fmt.Fprintf(tw, "%s\tm%d\t%d\topen-loop\t%d\t%.0f\t%.0f\n",
				s.Name, s.Machine, s.Core, s.Requests, s.P50, s.P99)
		} else {
			fmt.Fprintf(tw, "%s\tm%d\t%d\tone-shot\tdone@%d\t-\t-\n",
				s.Name, s.Machine, s.Core, s.DonePeriod)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	perMachine := make([]string, 0, len(r.Nodes))
	for _, n := range r.Nodes {
		perMachine = append(perMachine, fmt.Sprintf("m%d %d/%d", n.Machine, n.Completions, n.Dispatches))
	}
	sort.Strings(perMachine)
	fmt.Fprintf(w, "per-machine completed/dispatched: %v\n", perMachine)
	return nil
}
