package fleet

import (
	"fmt"

	"caer/internal/sched"
)

// Policy selects the cross-machine placement strategy the fleet scheduler
// uses to map arriving jobs onto machines. It is the cluster-level
// analogue of sched.Policy, which then places the job onto an LLC domain
// within the chosen machine.
type Policy int

const (
	// PolicyRoundRobin rotates dispatches across machines with spare
	// capacity, blind to contention — the topology-only baseline.
	PolicyRoundRobin Policy = iota
	// PolicyLeastPressure greedily sends each job to the machine where
	// its predicted interference with the resident latency services is
	// lowest, using every machine's classifier summary (sensitivity, live
	// LLC pressure, resident batch aggressiveness).
	PolicyLeastPressure
	// PolicyPacked fills the lowest-numbered machine first — the
	// consolidation baseline.
	PolicyPacked
	// PolicyTelemetry places by each machine's exported metrics — the
	// scraped caer_core_pressure gauges, per-service latency histograms,
	// and SLO burn state — instead of the synchronous classifier summary.
	// A machine whose scrape is stale past the staleness horizon is scored
	// with the least-pressure fallback, so a dead telemetry plane degrades
	// the policy to PolicyLeastPressure rather than wedging placement.
	PolicyTelemetry
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyLeastPressure:
		return "least-pressure"
	case PolicyPacked:
		return "packed"
	case PolicyTelemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// NodeView is one machine's state as the fleet placer sees it: the
// machine-wide classifier summary plus the candidate job's aggressiveness
// as that machine's classifier knows it (machines that have hosted the
// program before predict it better). The cluster refills a preallocated
// []NodeView every dispatch decision, so placers must not retain it.
type NodeView struct {
	sched.Summary
	// Aggr is the candidate job's classifier aggressiveness on this
	// machine (the prior 0.5 when the machine has never run the program).
	Aggr float64
	// Tel is the machine's scraped-telemetry view (zero under policies
	// that never scrape; Fresh=false then).
	Tel TelView
}

// eligible reports whether the machine can absorb another dispatch: more
// free batch cores than jobs already waiting in its admission queue.
// Dispatch past that point only builds machine-local backlog the fleet
// queue models better (and migration would immediately want to undo).
func (v *NodeView) eligible() bool { return v.FreeCores > v.Queued }

// interferenceScore mirrors sched's greedy scorer one level up: predicted
// marginal interference of putting the candidate on the machine. Latency
// sensitivity and live pressure both make a machine expensive, scaled by
// the candidate's aggressiveness; resident batch load breaks ties away
// from crowded machines.
func interferenceScore(v *NodeView) float64 {
	return (v.Sensitivity+v.Pressure)*(0.4+v.Aggr) + 0.3*v.BatchLoad
}

// Placer is the pluggable cross-machine placement policy: given the
// per-machine views, Place picks a target machine, or -1 when no machine
// is eligible (the job stays in the fleet queue). Place must be pure and
// allocation-free — it runs whenever the fleet queue is non-empty. The
// cluster calls Commit(n) only when a job is actually dispatched to
// machine n, which is when stateful policies may advance.
type Placer interface {
	Name() string
	Place(views []NodeView) int
	Commit(n int)
}

// NewPlacer builds the policy's placer.
func (p Policy) NewPlacer() Placer {
	switch p {
	case PolicyRoundRobin:
		return &roundRobinPlacer{}
	case PolicyLeastPressure:
		return &leastPressurePlacer{}
	case PolicyPacked:
		return &packedPlacer{}
	case PolicyTelemetry:
		return &telemetryPlacer{}
	default:
		panic(fmt.Sprintf("fleet: unknown policy %d", int(p)))
	}
}

// roundRobinPlacer rotates across eligible machines.
type roundRobinPlacer struct {
	next int
}

func (r *roundRobinPlacer) Name() string { return PolicyRoundRobin.String() }

func (r *roundRobinPlacer) Place(views []NodeView) int {
	n := len(views)
	for i := 0; i < n; i++ {
		k := (r.next + i) % n
		if views[k].eligible() {
			return k
		}
	}
	return -1
}

func (r *roundRobinPlacer) Commit(n int) { r.next = n + 1 }

// leastPressurePlacer picks the eligible machine with the lowest predicted
// interference score; ties break toward the lower machine index for
// determinism.
type leastPressurePlacer struct{}

func (leastPressurePlacer) Name() string { return PolicyLeastPressure.String() }

func (leastPressurePlacer) Commit(n int) {}

func (leastPressurePlacer) Place(views []NodeView) int {
	best := -1
	var bestScore float64
	for k := range views {
		if !views[k].eligible() {
			continue
		}
		s := interferenceScore(&views[k])
		if best == -1 || s < bestScore {
			best = k
			bestScore = s
		}
	}
	return best
}

// burnPenalty is the telemetry score surcharge per firing SLO alert: a
// machine actively burning error budget repels new batch work outright —
// one firing alert outweighs any pressure difference in [0, 2).
const burnPenalty = 2.0

// telemetryScore mirrors interferenceScore but sources every machine-side
// term from the scraped metrics instead of the synchronous summary, and
// adds what only telemetry can see: the observed request-latency tail and
// the SLO burn state.
func telemetryScore(v *NodeView) float64 {
	return (v.Tel.Sensitivity+v.Tel.Pressure)*(0.4+v.Aggr) +
		0.3*v.Tel.BatchLoad +
		v.Tel.LatencyP99/latencyHistMax +
		burnPenalty*float64(v.Tel.Burning)
}

// telemetryPlacer scores each eligible machine by its scraped metrics
// when fresh, falling back per machine to the synchronous least-pressure
// score when the scrape is stale past the horizon. With every machine
// stale (total scrape outage) the policy is exactly PolicyLeastPressure —
// same scores, same tie-breaks — which the staleness-fallback test pins.
type telemetryPlacer struct{}

func (telemetryPlacer) Name() string { return PolicyTelemetry.String() }

func (telemetryPlacer) Commit(n int) {}

func (telemetryPlacer) Place(views []NodeView) int {
	best := -1
	var bestScore float64
	for k := range views {
		if !views[k].eligible() {
			continue
		}
		var s float64
		if views[k].Tel.Fresh {
			s = telemetryScore(&views[k])
		} else {
			s = interferenceScore(&views[k])
		}
		if best == -1 || s < bestScore {
			best = k
			bestScore = s
		}
	}
	return best
}

// packedPlacer fills machine 0 first, then 1, ...
type packedPlacer struct{}

func (packedPlacer) Name() string { return PolicyPacked.String() }

func (packedPlacer) Commit(n int) {}

func (packedPlacer) Place(views []NodeView) int {
	for k := range views {
		if views[k].eligible() {
			return k
		}
	}
	return -1
}
