package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"caer/internal/sched"
	"caer/internal/slo"
	"caer/internal/stats"
	"caer/internal/telemetry"
)

// This file is the fleet's metrics-fed control plane (observability v2):
// each node keeps a per-period time-series store and an SLO burn-rate
// engine over its own registry, and PolicyTelemetry places work by
// periodically scraping each node's exported registry — the same bytes
// /metrics serves — instead of reading classifier summaries synchronously.
// A scrape that goes stale past the configured horizon degrades that
// machine's scoring to the synchronous least-pressure fallback, so a dead
// telemetry plane can cost signal quality but never liveness.

// SLOConfig declares the per-node objectives the fleet evaluates every
// period. The zero value disables the SLO engine (nodes still keep their
// time-series store for dumps and the doctor).
type SLOConfig struct {
	// LatencyQuantile and LatencyBound declare one objective per open-loop
	// (Relaunch) service: "p<Quantile> of caer_fleet_request_latency_periods
	// < Bound". 0 disables latency objectives.
	LatencyQuantile float64
	LatencyBound    float64
	// DegradedBudget declares a budget objective on the node's fail-open
	// degraded engine ticks: "rate < DegradedBudget per period". 0 disables.
	DegradedBudget float64
	// Window/FastWindow/Burn/PendingPeriods tune every declared objective
	// (see slo.Objective; zero values take that package's defaults, except
	// Window which defaults to 64 periods here).
	Window         int
	FastWindow     int
	Burn           float64
	PendingPeriods int
}

func (s SLOConfig) enabled() bool { return s.LatencyQuantile > 0 || s.DegradedBudget > 0 }

func (s SLOConfig) withDefaults() SLOConfig {
	if s.Window == 0 {
		s.Window = 64
	}
	return s
}

// objectives builds node n's objective list: one latency objective per
// distinct open-loop service (same-named services share one histogram
// series, hence one objective), plus the degraded-ticks budget.
func (s SLOConfig) objectives(n *Node) []slo.Objective {
	var objs []slo.Objective
	if s.LatencyQuantile > 0 {
		seen := make(map[string]bool, len(n.services))
		for _, sv := range n.services {
			if !sv.relaunch || seen[sv.name] {
				continue
			}
			seen[sv.name] = true
			objs = append(objs, slo.Objective{
				Name:    "latency-" + sv.name,
				Metric:  "caer_fleet_request_latency_periods",
				LabelKV: []string{"service", sv.name},
				Kind:    slo.KindQuantile, Quantile: s.LatencyQuantile, Bound: s.LatencyBound,
				Window: s.Window, FastWindow: s.FastWindow, Burn: s.Burn,
				PendingPeriods: s.PendingPeriods,
			})
		}
	}
	if s.DegradedBudget > 0 {
		objs = append(objs, slo.Objective{
			Name:   "degraded-budget",
			Metric: "caer_fleet_node_degraded_ticks_total",
			Kind:   slo.KindBudget, Budget: s.DegradedBudget,
			Window: s.Window, FastWindow: s.FastWindow, Burn: s.Burn,
			PendingPeriods: s.PendingPeriods,
		})
	}
	return objs
}

// Scraper is the transport PolicyTelemetry reads node registries through:
// Scrape writes machine k's Prometheus text snapshot to w, or returns an
// error (the injectable failure the staleness-fallback tests force). The
// default scraper reads the node registry directly — the same bytes the
// /metrics endpoint serves, without the socket.
type Scraper interface {
	Scrape(machine int, w io.Writer) error
}

// ScraperFunc adapts a function to Scraper.
type ScraperFunc func(machine int, w io.Writer) error

// Scrape implements Scraper.
func (f ScraperFunc) Scrape(machine int, w io.Writer) error { return f(machine, w) }

// registryScraper is the default in-process transport.
type registryScraper struct{ c *Cluster }

func (r registryScraper) Scrape(machine int, w io.Writer) error {
	return r.c.nodes[machine].reg.WritePrometheus(w)
}

// TelView is one machine's state as derived purely from its scraped
// metrics — the telemetry analogue of sched.Summary. Zero until the first
// successful scrape.
type TelView struct {
	// Fresh reports the last successful scrape is within the staleness
	// horizon; Age is its distance in ticks (horizon+1 when never scraped).
	Fresh bool
	Age   int
	// Pressure is the summed caer_core_pressure of the machine's latency
	// roles; Sensitivity and BatchLoad mirror the exported node gauges.
	Pressure    float64
	Sensitivity float64
	BatchLoad   float64
	// LatencyP99 is the p99, in periods, of all request latencies observed
	// between the last two scrapes (0 until two scrapes have landed).
	LatencyP99 float64
	// Burning counts the machine's caer_slo_* alerts currently firing.
	Burning int
}

// telState is the cluster's per-machine scrape bookkeeping.
type telState struct {
	view     TelView
	lastTick int // tick of the last successful scrape; -1 = never
	// lastBuckets remembers each latency series' cumulative bucket counts
	// (finite les ascending, then +Inf) so the next scrape can difference
	// them into a window distribution.
	lastBuckets map[string][]float64
}

// fresh reports whether the state is within the staleness horizon at tick.
func (t *telState) fresh(tick, horizon int) bool {
	return t.lastTick >= 0 && tick-t.lastTick <= horizon
}

// scrapeAll refreshes every machine's TelView through the scraper. Cold
// path (runs every ScrapePeriod ticks): parses text, allocates freely. A
// failed scrape leaves the machine's last view standing and its age
// growing — exactly what a dead exporter looks like from a real collector.
func (c *Cluster) scrapeAll() {
	for k := range c.nodes {
		c.scrapeBuf.Reset()
		if err := c.scraper.Scrape(k, &c.scrapeBuf); err != nil {
			continue
		}
		ms, err := telemetry.ParseText(bytes.NewReader(c.scrapeBuf.Bytes()))
		if err != nil {
			continue
		}
		c.deriveView(k, ms)
		c.tel[k].lastTick = c.tick
	}
}

// bucketSample is one cumulative histogram bucket parsed from a scrape.
type bucketSample struct {
	le  float64 // upper edge; +Inf parsed from the le="+Inf" series
	cum float64
}

// deriveView folds one machine's parsed snapshot into its TelView.
func (c *Cluster) deriveView(k int, ms []telemetry.TextMetric) {
	st := &c.tel[k]
	v := TelView{}
	latBuckets := make(map[string][]bucketSample)
	for _, m := range ms {
		switch m.Name {
		case "caer_core_pressure":
			if m.Label("role") == "latency" {
				v.Pressure += m.Value
			}
		case "caer_fleet_node_sensitivity":
			v.Sensitivity = m.Value
		case "caer_fleet_node_batch_load":
			v.BatchLoad = m.Value
		case "caer_slo_state":
			if m.Value == float64(slo.StateFiring) {
				v.Burning++
			}
		case "caer_fleet_request_latency_periods_bucket":
			le := parseLe(m.Label("le"))
			svc := m.Label("service")
			latBuckets[svc] = append(latBuckets[svc], bucketSample{le: le, cum: m.Value})
		}
	}
	v.LatencyP99 = c.windowP99(st, latBuckets)
	v.Age = 0
	v.Fresh = true
	st.view = v
}

// parseLe parses a bucket upper edge; le="+Inf" maps to -1 (sorts last by
// special-casing, never compared numerically against finite edges).
func parseLe(s string) float64 {
	if s == "+Inf" {
		return -1
	}
	var v float64
	fmt.Sscanf(s, "%g", &v)
	return v
}

// windowP99 differences each latency series' cumulative buckets against
// the previous scrape, folds every service's window distribution into one
// stats.Histogram, and returns its p99 — the shared Quantile math, fed
// from scraped bytes. Returns 0 until two scrapes have landed or when the
// window saw no requests. All caer latency histograms start at 0, so the
// bucket width is the first finite upper edge.
func (c *Cluster) windowP99(st *telState, latBuckets map[string][]bucketSample) float64 {
	if st.lastBuckets == nil {
		st.lastBuckets = make(map[string][]float64)
	}
	svcs := make([]string, 0, len(latBuckets))
	for svc := range latBuckets {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	var merged *stats.Histogram
	for _, svc := range svcs {
		bs := latBuckets[svc]
		// Finite edges ascending, +Inf last (the writer emits les as
		// strings, so the parsed order is lexical, not numeric).
		sort.Slice(bs, func(i, j int) bool {
			if (bs[i].le < 0) != (bs[j].le < 0) {
				return bs[j].le < 0
			}
			return bs[i].le < bs[j].le
		})
		cums := make([]float64, len(bs))
		for i, b := range bs {
			cums[i] = b.cum
		}
		prev := st.lastBuckets[svc]
		st.lastBuckets[svc] = cums
		if len(prev) != len(cums) || len(bs) < 2 {
			continue // first sight of this series (or geometry changed)
		}
		width := bs[0].le
		max := bs[len(bs)-2].le // last finite edge
		h := stats.NewHistogram(0, max, len(bs)-1)
		lastCum := 0.0
		for i, b := range bs {
			d := (b.cum - prev[i]) - lastCum
			lastCum = b.cum - prev[i]
			if d <= 0 {
				continue
			}
			if b.le < 0 { // overflow
				h.AddN(max, uint64(d))
			} else {
				h.AddN(b.le-width/2, uint64(d))
			}
		}
		if merged == nil {
			merged = h
		} else {
			merged.Merge(h)
		}
	}
	if merged == nil || merged.N() == 0 {
		return 0
	}
	return merged.Quantile(0.99)
}

// fillTelViews copies the scrape bookkeeping into the placement views.
// Hot path (every dispatch decision): allocation-free.
func (c *Cluster) fillTelViews() {
	for k := range c.tel {
		st := &c.tel[k]
		v := st.view
		if st.lastTick < 0 {
			v.Age = c.cfg.StalenessHorizon + 1
			v.Fresh = false
		} else {
			v.Age = c.tick - st.lastTick
			v.Fresh = v.Age <= c.cfg.StalenessHorizon
		}
		c.views[k].Tel = v
	}
}

// DecisionKind classifies a fleet decision-log entry.
type DecisionKind int

const (
	// DecisionDispatch records a job leaving the fleet queue for a machine.
	DecisionDispatch DecisionKind = iota
	// DecisionMigrate records a queued job moving between machines.
	DecisionMigrate
)

// String names the kind.
func (k DecisionKind) String() string {
	switch k {
	case DecisionDispatch:
		return "dispatch"
	case DecisionMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("DecisionKind(%d)", int(k))
	}
}

// Decision is one entry of the fleet placement timeline — the provenance
// record caer-doctor joins against SLO burn windows.
type Decision struct {
	Tick int          `json:"tick"`
	Kind DecisionKind `json:"kind"`
	Job  int          `json:"job"`
	Name string       `json:"name"`
	From int          `json:"from"` // source machine; -1 for dispatches
	To   int          `json:"to"`
	// Fresh records whether the target machine's telemetry view was fresh
	// at decision time (always false under non-telemetry policies).
	Fresh bool `json:"fresh"`
}

// Decisions returns a copy of the fleet placement timeline.
func (c *Cluster) Decisions() []Decision {
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// EventsDump is the engine-event log bundle caer-doctor reads: the fleet
// placement timeline plus every machine's scheduler decision log.
type EventsDump struct {
	Policy string `json:"policy"`
	Ticks  int    `json:"ticks"`
	Fleet  []Decision `json:"fleet"`
	// Machines[k] is machine k's sched decision timeline (admissions,
	// intra-machine migrations, completions, withdrawals).
	Machines [][]sched.Decision `json:"machines"`
}

// WriteEvents writes the fleet + per-machine decision logs as JSON.
// Export path: allocates.
func (c *Cluster) WriteEvents(w io.Writer) error {
	d := EventsDump{
		Policy: c.placer.Name(),
		Ticks:  c.tick,
		Fleet:  c.Decisions(),
	}
	for _, n := range c.nodes {
		d.Machines = append(d.Machines, n.sched.Decisions())
	}
	return json.NewEncoder(w).Encode(&d)
}

// ParseEvents reads a WriteEvents dump back (the doctor's side).
func ParseEvents(r io.Reader) (*EventsDump, error) {
	var d EventsDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("fleet: parse events: %w", err)
	}
	return &d, nil
}

// syncTelemetry refreshes node n's exported gauges, takes the period's
// time-series sample, and runs the SLO evaluation. Runs once per tick per
// node, after the machines stepped. Hot path: allocation-free (the
// registry was fully populated at construction, so Sample never extends).
func (n *Node) syncTelemetry() {
	n.sched.Summarize(&n.sum)
	n.freeCoresG.Set(float64(n.sum.FreeCores))
	n.sensitivityG.Set(n.sum.Sensitivity)
	n.batchLoadG.Set(n.sum.BatchLoad)
	n.sched.LatencySignals(n.pressureBuf, n.sensBuf)
	for i := range n.pressureG {
		n.pressureG[i].Set(n.pressureBuf[i])
	}
	d := n.sched.DegradedTicks()
	n.degraded.Add(d - n.lastDegraded)
	n.lastDegraded = d
	n.series.Sample()
	if n.slo != nil {
		n.slo.Evaluate()
	}
}

// Series exposes the node's per-period time-series store.
func (n *Node) Series() *telemetry.Series { return n.series }

// SLO exposes the node's SLO engine (nil when Config.SLO is zero).
func (n *Node) SLO() *slo.Engine { return n.slo }
