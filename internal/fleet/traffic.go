package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"caer/internal/spec"
)

// Curve selects the shape of the open-loop arrival-rate schedule the
// traffic driver follows.
type Curve int

const (
	// CurveConstant holds the configured rate flat over the horizon — the
	// closed-form baseline (and, with Horizon 1, the "everything arrives
	// up front" shape the scheduled-mode identity pin uses).
	CurveConstant Curve = iota
	// CurveDiurnal ramps the rate through one full day-shaped sinusoid
	// over the horizon: quiet start, peak mid-horizon, quiet end.
	CurveDiurnal
	// CurveBurst keeps a low baseline with periodic high-rate bursts — the
	// flash-crowd shape that exercises fleet queueing and migration.
	CurveBurst
)

// String names the curve.
func (c Curve) String() string {
	switch c {
	case CurveConstant:
		return "constant"
	case CurveDiurnal:
		return "diurnal"
	case CurveBurst:
		return "burst"
	default:
		return fmt.Sprintf("Curve(%d)", int(c))
	}
}

// Traffic is the open-loop arrival process: a rate curve over a finite
// horizon plus the job mix the arrivals cycle through. Arrivals are
// deterministic per seed — the fractional-accumulator discretization is
// exact for Jitter 0, and the jitter term draws from the cluster's seeded
// RNG — so a fleet run is replayable bit-for-bit.
type Traffic struct {
	// Curve shapes the arrival rate over the horizon.
	Curve Curve
	// Rate is the mean arrivals per period at the curve's reference level
	// (the flat level for constant, the peak for diurnal, the burst level
	// for burst).
	Rate float64
	// Horizon is the number of periods during which arrivals occur; after
	// it the driver is exhausted and the cluster drains. 0 means 1 (all
	// arrivals in the first period).
	Horizon int
	// Mix is the job mix; arrival i runs profile Mix[i % len(Mix)], so the
	// mix ratio is exact and the submission order reproducible.
	Mix []spec.Profile
	// Jitter perturbs each period's rate multiplicatively by a seeded
	// uniform draw in [1-Jitter, 1+Jitter]; 0 (the default) keeps the
	// discretization exact.
	Jitter float64
	// BurstEvery and BurstLen shape CurveBurst: a burst of BurstLen
	// periods at full Rate starts every BurstEvery periods (seeded phase),
	// with Rate/5 between bursts. Defaults 200 and 20.
	BurstEvery, BurstLen int
}

func (t Traffic) withDefaults() Traffic {
	if t.Horizon == 0 {
		t.Horizon = 1
	}
	if t.BurstEvery == 0 {
		t.BurstEvery = 200
	}
	if t.BurstLen == 0 {
		t.BurstLen = 20
	}
	return t
}

// driver is the running state of a Traffic schedule.
type driver struct {
	t     Traffic
	rng   *rand.Rand
	phase int     // seeded burst phase offset
	acc   float64 // fractional arrivals carried between periods
	born  int     // arrivals emitted so far (global job index)
}

func newDriver(t Traffic, seed int64) *driver {
	t = t.withDefaults()
	d := &driver{t: t, rng: rand.New(rand.NewSource(seed))}
	if t.Curve == CurveBurst {
		d.phase = d.rng.Intn(t.BurstEvery)
	}
	return d
}

// rate evaluates the curve at period p. Pure; allocation-free.
func (d *driver) rate(p int) float64 {
	t := &d.t
	if p < 0 || p >= t.Horizon {
		return 0
	}
	switch t.Curve {
	case CurveConstant:
		return t.Rate
	case CurveDiurnal:
		// One full day over the horizon: sin ramps 0 -> peak -> 0.
		return t.Rate * math.Sin(math.Pi*float64(p)/float64(t.Horizon))
	case CurveBurst:
		if (p+d.phase)%t.BurstEvery < t.BurstLen {
			return t.Rate
		}
		return t.Rate / 5
	default:
		panic(fmt.Sprintf("fleet: unknown curve %d", int(t.Curve)))
	}
}

// arrivals returns how many jobs arrive in period p, advancing the
// fractional accumulator. Allocation-free for Jitter 0 paths too — the RNG
// draw does not allocate.
func (d *driver) arrivals(p int) int {
	r := d.rate(p)
	if r <= 0 {
		return 0
	}
	if d.t.Jitter > 0 {
		r *= 1 + d.t.Jitter*(2*d.rng.Float64()-1)
	}
	d.acc += r
	n := int(d.acc)
	d.acc -= float64(n)
	return n
}

// exhausted reports whether the schedule can produce no further arrivals
// at or after period p.
func (d *driver) exhausted(p int) bool { return p >= d.t.Horizon }

// next returns the profile of the next arrival and advances the global
// job index.
func (d *driver) next() (spec.Profile, int) {
	i := d.born
	d.born++
	return d.t.Mix[i%len(d.t.Mix)], i
}
