package caer

import (
	"testing"

	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/mem"
	"caer/internal/spec"
)

func TestPartitionActuatorTransitions(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	ways := m.Hierarchy().L3().Ways()
	confined := mem.ContiguousMask(0, 4)
	pa := NewPartitionActuator(m, confined, mem.ResizeOrphan)
	core := m.Core(1)
	l3 := m.Hierarchy().L3()

	pa.Actuate(core, comm.DirectivePause)
	if got := l3.OwnerMask(m.LocalCore(1)); got != confined {
		t.Fatalf("after pause directive: owner mask %v, want %v", got, confined)
	}
	if core.Paused() {
		t.Fatal("partition actuator paused the core")
	}
	pa.Actuate(core, comm.DirectiveRun)
	if got := l3.OwnerMask(m.LocalCore(1)); got != mem.FullMask(ways) {
		t.Fatalf("after run directive: owner mask %v, want full", got)
	}
}

// TestPartitionActuatorSteadyStateAllocFree pins the actuator's per-period
// contract: re-applying an unchanged directive is a single compare, with no
// resize and no allocation.
func TestPartitionActuatorSteadyStateAllocFree(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	pa := NewPartitionActuator(m, mem.ContiguousMask(0, 4), mem.ResizeOrphan)
	core := m.Core(1)
	pa.Actuate(core, comm.DirectivePause)
	if n := testing.AllocsPerRun(200, func() {
		pa.Actuate(core, comm.DirectivePause)
	}); n != 0 {
		t.Fatalf("steady-state Actuate allocates %v/op, want 0", n)
	}
}

func TestPartitionActuatorValidation(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	ways := m.Hierarchy().L3().Ways()
	for _, mask := range []mem.WayMask{0, mem.FullMask(ways), mem.FullMask(ways) << 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("confined mask %v did not panic", mask)
				}
			}()
			NewPartitionActuator(m, mask, mem.ResizeOrphan)
		}()
	}
}

// TestRuntimePartitionActuator runs the full engine loop with the partition
// actuator standing in for pausing: under contention the batch core must
// get confined (and never paused), keep retiring instructions while
// confined, and be restored once the engine's directive clears.
func TestRuntimePartitionActuator(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	confined := mem.ContiguousMask(0, 2)
	pa := NewPartitionActuator(m, confined, mem.ResizeInvalidate)
	rt := NewRuntime(m, HeuristicRule, DefaultConfig(), WithActuator(pa.Actuate))
	mcf, _ := spec.ByName("mcf")
	rt.AddLatency("mcf", 0, mcf.Batch().NewProcess(0, 11))
	batchProc := spec.LBM().Batch().NewProcess(1<<28, 12)
	rt.AddBatch("lbm", 1, batchProc)
	l3 := m.Hierarchy().L3()
	lc := m.LocalCore(1)
	sawConfined := false
	for i := 0; i < 300; i++ {
		rt.Step()
		if l3.OwnerMask(lc) == confined {
			sawConfined = true
		}
		if m.Core(1).Paused() {
			t.Fatal("partition actuator paused the core")
		}
	}
	if !sawConfined {
		t.Error("engine directives never confined the contending batch core")
	}
	if batchProc.Retired() == 0 {
		t.Error("confined batch made no progress")
	}
}
