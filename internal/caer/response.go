package caer

import (
	"fmt"

	"caer/internal/comm"
)

// View is the responder's read-only window into the engine's current
// evidence, used by responses whose release condition depends on live
// cache pressure (soft locking).
type View interface {
	// OwnMean is the batch application's windowed LLC-miss average.
	OwnMean() float64
	// NeighborMean is the latency-sensitive application's windowed
	// LLC-miss average.
	NeighborMean() float64
	// LastNeighbor is the neighbour's most recent per-period miss count.
	LastNeighbor() float64
}

// Responder turns detection verdicts into batch-throttling behaviour
// (paper §5). After each fresh verdict the engine calls React, then holds
// the returned directive, consulting Hold each period; the hold ends when
// its length expires or Hold releases early.
type Responder interface {
	Name() string
	// React maps a verdict to a directive and a hold length in periods
	// (>= 1).
	React(contending bool, v View) (comm.Directive, int)
	// Hold is consulted once per period while holding; returning
	// release=true ends the hold immediately (before the length expires)
	// and resumes detection.
	Hold(v View) (d comm.Directive, release bool)
	// Reset clears adaptive state.
	Reset()
}

// RedLightGreenLight is the paper's first response: stop (red) or allow
// (green) execution for a fixed number of periods according to the verdict.
// With Adaptive set, the hold length doubles while detections keep
// producing the same verdict and snaps back when the verdict flips —
// the paper's "increasing the length if the detection phase is
// consistently producing the same result".
type RedLightGreenLight struct {
	length    int
	adaptive  bool
	maxLength int
	name      string

	lastVerdict   bool
	haveVerdict   bool
	currentLength int
	current       comm.Directive

	redPeriods   uint64
	greenPeriods uint64
}

// NewRedLightGreenLight builds the response from cfg (ResponseLength,
// AdaptiveResponse, MaxResponseLength). It panics on invalid configuration.
func NewRedLightGreenLight(cfg Config) *RedLightGreenLight {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	name := "red-light-green-light(adaptive)"
	if !cfg.AdaptiveResponse {
		name = fmt.Sprintf("red-light-green-light(%d)", cfg.ResponseLength)
	}
	return &RedLightGreenLight{
		length:        cfg.ResponseLength,
		adaptive:      cfg.AdaptiveResponse,
		maxLength:     cfg.MaxResponseLength,
		currentLength: cfg.ResponseLength,
		name:          name,
	}
}

// Name implements Responder. The name is formatted once at construction so
// that calling it from period-loop code stays allocation-free.
func (r *RedLightGreenLight) Name() string { return r.name }

// React implements Responder.
func (r *RedLightGreenLight) React(contending bool, v View) (comm.Directive, int) {
	if r.adaptive {
		if r.haveVerdict && contending == r.lastVerdict {
			r.currentLength *= 2
			if r.currentLength > r.maxLength {
				r.currentLength = r.maxLength
			}
		} else {
			r.currentLength = r.length
		}
	}
	r.lastVerdict, r.haveVerdict = contending, true
	if contending {
		r.current = comm.DirectivePause
		r.redPeriods += uint64(r.currentLength)
		return comm.DirectivePause, r.currentLength
	}
	r.current = comm.DirectiveRun
	r.greenPeriods += uint64(r.currentLength)
	return comm.DirectiveRun, r.currentLength
}

// Hold implements Responder: the light stays its colour for the whole
// hold.
func (r *RedLightGreenLight) Hold(v View) (comm.Directive, bool) {
	return r.current, false
}

// Reset implements Responder.
func (r *RedLightGreenLight) Reset() {
	r.haveVerdict = false
	r.currentLength = r.length
	r.current = comm.DirectiveRun
}

// RedGreenTotals returns cumulative scheduled (red, green) periods.
func (r *RedLightGreenLight) RedGreenTotals() (red, green uint64) {
	return r.redPeriods, r.greenPeriods
}

// SoftLock is the paper's second response, paired with the rule-based
// heuristic: on a c-positive verdict the batch takes a soft lock pause on
// the shared cache and stays paused until the latency-sensitive
// application's pressure — the same PMU signal used for detection — drops
// below the usage threshold; then the batch fully resumes.
type SoftLock struct {
	usageThresh float64
	maxHold     int

	locks    uint64
	releases uint64
}

// NewSoftLock builds the response from cfg (UsageThresh; the hold is
// re-evaluated every period and bounded by MaxResponseLength as a
// safety valve). It panics on invalid configuration.
func NewSoftLock(cfg Config) *SoftLock {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	maxHold := cfg.MaxResponseLength
	if maxHold <= 0 {
		maxHold = 1 << 30
	}
	return &SoftLock{usageThresh: cfg.UsageThresh, maxHold: maxHold}
}

// Name implements Responder.
func (s *SoftLock) Name() string { return "soft-lock" }

// React implements Responder: a c-positive verdict takes the lock for up
// to maxHold periods (Hold releases it as soon as pressure subsides); a
// c-negative verdict lets the batch run and immediately resumes detection.
func (s *SoftLock) React(contending bool, v View) (comm.Directive, int) {
	if !contending {
		return comm.DirectiveRun, 1
	}
	s.locks++
	return comm.DirectivePause, s.maxHold
}

// Hold implements Responder: release the lock when the neighbour's cache
// pressure subsides below the usage threshold.
func (s *SoftLock) Hold(v View) (comm.Directive, bool) {
	if v.NeighborMean() < s.usageThresh {
		s.releases++
		return comm.DirectiveRun, true
	}
	return comm.DirectivePause, false
}

// Reset implements Responder (stateless between verdicts).
func (s *SoftLock) Reset() {}

// LockStats returns how many locks were taken and how many were released
// by pressure subsiding (rather than by the safety-valve length).
func (s *SoftLock) LockStats() (locks, releases uint64) { return s.locks, s.releases }
