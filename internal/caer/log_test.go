package caer

import (
	"strings"
	"testing"

	"caer/internal/comm"
)

func TestEventLogValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEventLog(0) did not panic")
		}
	}()
	NewEventLog(0)
}

func TestEventLogAppendAndEviction(t *testing.T) {
	l := NewEventLog(3)
	for p := uint64(0); p < 5; p++ {
		l.Append(Event{Period: p, Kind: EventDirective})
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Total() != 5 {
		t.Errorf("Total = %d, want 5", l.Total())
	}
	evs := l.Events()
	for i, want := range []uint64{2, 3, 4} {
		if evs[i].Period != want {
			t.Errorf("Events[%d].Period = %d, want %d", i, evs[i].Period, want)
		}
	}
}

func TestEventStringFormats(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Period: 7, Kind: EventVerdict, Verdict: VerdictContention, OwnMisses: 10, NeighborMisses: 20},
			"p000007 verdict=contention own=10 neighbor=20"},
		{Event{Period: 8, Kind: EventHoldStart, Directive: comm.DirectivePause, HoldLen: 10},
			"p000008 hold directive=pause len=10"},
		{Event{Period: 9, Kind: EventHoldRelease, NeighborMisses: 5},
			"p000009 hold released (neighbor=5)"},
		{Event{Period: 10, Kind: EventDirective, Directive: comm.DirectiveRun},
			"p000010 directive=run"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Error("unknown kind string wrong")
	}
	for k, want := range map[EventKind]string{
		EventVerdict: "verdict", EventHoldStart: "hold-start",
		EventHoldRelease: "hold-release", EventDirective: "directive",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestEventLogDump(t *testing.T) {
	l := NewEventLog(4)
	l.Append(Event{Period: 1, Kind: EventDirective, Directive: comm.DirectivePause})
	l.Append(Event{Period: 2, Kind: EventDirective, Directive: comm.DirectiveRun})
	var sb strings.Builder
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("dumped %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "pause") || !strings.Contains(lines[1], "run") {
		t.Errorf("dump content wrong:\n%s", sb.String())
	}
}

func TestEngineLogsDecisions(t *testing.T) {
	own, nbr := newTestSlots(t)
	det := &scriptDetector{
		dirs:     []comm.Directive{comm.DirectiveRun},
		verdicts: []Verdict{VerdictContention},
	}
	resp := &scriptResponder{dir: comm.DirectivePause, length: 3, holdDir: comm.DirectivePause}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})

	nbr.Publish(100)
	e.Tick(50)
	evs := e.Log().Events()
	if len(evs) < 3 {
		t.Fatalf("logged %d events, want >= 3 (verdict, hold, directive)", len(evs))
	}
	kinds := map[EventKind]bool{}
	for _, ev := range evs {
		kinds[ev.Kind] = true
	}
	if !kinds[EventVerdict] || !kinds[EventHoldStart] || !kinds[EventDirective] {
		t.Errorf("missing event kinds in %v", evs)
	}
	// The verdict carries the evidence it was based on.
	for _, ev := range evs {
		if ev.Kind == EventVerdict {
			if ev.OwnMisses != 50 || ev.NeighborMisses != 100 {
				t.Errorf("verdict evidence = %.0f/%.0f, want 50/100", ev.OwnMisses, ev.NeighborMisses)
			}
		}
	}
	// Directive changes are logged once, not every period.
	nbr.Publish(100)
	e.Tick(50) // hold tick, same directive
	total := e.Log().Total()
	nbr.Publish(100)
	e.Tick(50) // hold tick, same directive
	if e.Log().Total() != total {
		t.Error("unchanged directive was re-logged during hold")
	}
}

func TestEngineLogsHoldRelease(t *testing.T) {
	own, nbr := newTestSlots(t)
	det := &scriptDetector{
		dirs:     []comm.Directive{comm.DirectiveRun},
		verdicts: []Verdict{VerdictContention},
	}
	resp := &scriptResponder{dir: comm.DirectivePause, length: 100, holdDir: comm.DirectiveRun, release: true}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})
	nbr.Publish(1)
	e.Tick(1) // verdict, hold start
	nbr.Publish(1)
	e.Tick(1) // hold releases immediately
	found := false
	for _, ev := range e.Log().Events() {
		if ev.Kind == EventHoldRelease {
			found = true
		}
	}
	if !found {
		t.Error("hold release not logged")
	}
}
