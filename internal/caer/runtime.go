package caer

import (
	"fmt"
	"strconv"

	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/telemetry"
)

// HeuristicKind selects which detection/response pairing a runtime uses:
// the three configurations evaluated in the paper plus the hybrid
// extension.
type HeuristicKind int

const (
	// HeuristicShutter pairs the burst-shutter detector with the
	// red-light/green-light response (paper §6.2).
	HeuristicShutter HeuristicKind = iota
	// HeuristicRule pairs the rule-based detector with the soft-locking
	// response (paper §6.2).
	HeuristicRule
	// HeuristicRandom is the §6.4 accuracy baseline: random detection with
	// a length-1 red-light/green-light response.
	HeuristicRandom
	// HeuristicHybrid is an extension beyond the paper: rule-based gating
	// with burst-shutter confirmation, paired with red-light/green-light.
	HeuristicHybrid
)

// String names the heuristic pairing.
func (h HeuristicKind) String() string {
	switch h {
	case HeuristicShutter:
		return "shutter"
	case HeuristicRule:
		return "rule-based"
	case HeuristicRandom:
		return "random"
	case HeuristicHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("HeuristicKind(%d)", int(h))
	}
}

// NewDetector builds the detector half of the pairing.
func (h HeuristicKind) NewDetector(cfg Config) Detector {
	switch h {
	case HeuristicShutter:
		return NewShutterDetector(cfg)
	case HeuristicRule:
		return NewRuleDetector(cfg)
	case HeuristicRandom:
		return NewRandomDetector(cfg)
	case HeuristicHybrid:
		return NewHybridDetector(cfg)
	default:
		panic(fmt.Sprintf("caer: unknown heuristic %d", int(h)))
	}
}

// NewResponder builds the response half of the pairing.
func (h HeuristicKind) NewResponder(cfg Config) Responder {
	switch h {
	case HeuristicShutter:
		return NewRedLightGreenLight(cfg)
	case HeuristicRule:
		return NewSoftLock(cfg)
	case HeuristicRandom:
		// The paper's baseline uses red-light/green-light with length 1.
		cfg.ResponseLength = 1
		cfg.AdaptiveResponse = false
		return NewRedLightGreenLight(cfg)
	case HeuristicHybrid:
		return NewRedLightGreenLight(cfg)
	default:
		panic(fmt.Sprintf("caer: unknown heuristic %d", int(h)))
	}
}

// Actuator applies a directive to a batch application's core. The default
// actuator pauses/resumes execution; a DVFS actuator instead drops the
// core's frequency (the related-work alternative response, paper §7).
type Actuator func(core *machine.Core, d comm.Directive)

// PauseActuator implements the paper's throttling: DirectivePause halts
// the core entirely.
func PauseActuator(core *machine.Core, d comm.Directive) {
	core.SetPaused(d == comm.DirectivePause)
}

// DVFSActuator returns an actuator that models per-core dynamic frequency
// scaling: DirectivePause runs the core at 1/divisor speed instead of
// halting it.
func DVFSActuator(divisor int) Actuator {
	if divisor < 2 {
		panic(fmt.Sprintf("caer: DVFS divisor %d must be >= 2", divisor))
	}
	return func(core *machine.Core, d comm.Directive) {
		if d == comm.DirectivePause {
			core.SetFreqDivisor(divisor)
		} else {
			core.SetFreqDivisor(1)
		}
	}
}

// app is one hosted application.
type app struct {
	name string
	core int
	proc *machine.Process
	slot *comm.Slot
}

// Runtime is the deployed CAER environment over a simulated machine: the
// communication table, one CAER-M monitor per latency-sensitive
// application, and one engine per batch application. Step runs one
// sampling period end to end.
type Runtime struct {
	m     *machine.Machine
	cfg   Config
	kind  HeuristicKind
	table *comm.Table
	// src is the counter source the monitors' and engines' PMUs probe.
	// It defaults to the machine itself; WithSource interposes another
	// implementation (e.g. a pmu.FaultSource for chaos experiments, or a
	// real perf_event backend).
	src pmu.Source

	latency  []app
	batch    []app
	monitors []*Monitor
	engines  []*Engine
	enginePM []*pmu.PMU
	actuator Actuator

	relaunches      int
	batchRelaunches []int // per batch application, in registration order
	started         bool

	// Per-core live gauges for caer-top, registered once in start() so the
	// per-period updates in Step stay allocation-free.
	latGauges []coreGauges // one per latency app
	engGauges []coreGauges // one per batch app
}

// coreGauges is one core's live telemetry view.
type coreGauges struct {
	pressure  *telemetry.Gauge // windowed LLC-miss mean
	directive *telemetry.Gauge // 0 = run, 1 = pause (batch only)
	degraded  *telemetry.Gauge // 1 while failing open (batch only)
}

// Option customizes a Runtime.
type Option func(*Runtime)

// WithActuator replaces the default pause actuator.
func WithActuator(a Actuator) Option {
	return func(rt *Runtime) { rt.actuator = a }
}

// WithSource interposes a pmu.Source between the machine's counters and
// the runtime's PMUs. The machine still executes the workloads; only the
// counter reads go through src. Chaos experiments use this to inject
// counter faults without touching the runtime logic.
func WithSource(src pmu.Source) Option {
	if src == nil {
		panic("caer: WithSource needs a source")
	}
	return func(rt *Runtime) { rt.src = src }
}

// NewRuntime creates a CAER deployment on machine m using the given
// heuristic pairing and configuration. Applications are added with
// AddLatency/AddBatch before the first Step.
func NewRuntime(m *machine.Machine, kind HeuristicKind, cfg Config, opts ...Option) *Runtime {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	rt := &Runtime{
		m:        m,
		cfg:      cfg,
		kind:     kind,
		table:    comm.NewTable(cfg.WindowSize),
		src:      m,
		actuator: PauseActuator,
	}
	for _, o := range opts {
		o(rt)
	}
	return rt
}

// Table exposes the communication table (for inspection and tests).
func (rt *Runtime) Table() *comm.Table { return rt.table }

// Heuristic returns the configured pairing.
func (rt *Runtime) Heuristic() HeuristicKind { return rt.kind }

// Engines returns the batch engines (one per batch application).
func (rt *Runtime) Engines() []*Engine { return rt.engines }

// Monitors returns the CAER-M monitors (one per latency-sensitive
// application), in registration order. Chaos experiments use them to
// simulate monitor crashes.
func (rt *Runtime) Monitors() []*Monitor { return rt.monitors }

// Relaunches returns how many times completed batch applications were
// relaunched.
func (rt *Runtime) Relaunches() int { return rt.relaunches }

// BatchRelaunches returns each batch application's relaunch count, in
// registration order (nil before the first Step).
func (rt *Runtime) BatchRelaunches() []int {
	out := make([]int, len(rt.batchRelaunches))
	copy(out, rt.batchRelaunches)
	return out
}

// AddLatency binds a latency-sensitive application to a core under a
// CAER-M monitor. The application itself is never modified.
func (rt *Runtime) AddLatency(name string, core int, proc *machine.Process) {
	rt.mustNotBeStarted()
	rt.m.Bind(core, proc)
	slot := rt.table.Register(name, comm.RoleLatency)
	rt.latency = append(rt.latency, app{name: name, core: core, proc: proc, slot: slot})
	rt.monitors = append(rt.monitors, NewMonitor(pmu.New(rt.src, core), slot))
}

// AddBatch binds a batch application to a core under a full CAER engine.
// Engines are created lazily at the first Step so that every engine sees
// all latency-sensitive slots regardless of registration order.
func (rt *Runtime) AddBatch(name string, core int, proc *machine.Process) {
	rt.mustNotBeStarted()
	rt.m.Bind(core, proc)
	slot := rt.table.Register(name, comm.RoleBatch)
	rt.batch = append(rt.batch, app{name: name, core: core, proc: proc, slot: slot})
}

func (rt *Runtime) mustNotBeStarted() {
	if rt.started {
		panic("caer: applications must be added before the first Step")
	}
}

func (rt *Runtime) start() {
	if len(rt.latency) == 0 || len(rt.batch) == 0 {
		panic("caer: runtime needs at least one latency-sensitive and one batch application")
	}
	neighborSlots := make([]*comm.Slot, len(rt.latency))
	for i, a := range rt.latency {
		neighborSlots[i] = a.slot
	}
	for _, b := range rt.batch {
		eng := NewEngine(rt.kind.NewDetector(rt.cfg), rt.kind.NewResponder(rt.cfg), b.slot, neighborSlots)
		eng.SetWatchdog(rt.cfg.WatchdogPeriods)
		if rt.cfg.EventLogCap > 0 {
			eng.SetLogCapacity(rt.cfg.EventLogCap)
		}
		rt.engines = append(rt.engines, eng)
		rt.enginePM = append(rt.enginePM, pmu.New(rt.src, b.core))
		rt.engGauges = append(rt.engGauges, rt.registerCoreGauges(b, comm.RoleBatch))
	}
	for _, a := range rt.latency {
		rt.latGauges = append(rt.latGauges, rt.registerCoreGauges(a, comm.RoleLatency))
	}
	rt.batchRelaunches = make([]int, len(rt.batch))
	rt.started = true
}

// registerCoreGauges pre-registers one application's live per-core series.
// Setup path: registration allocates so Step does not have to.
func (rt *Runtime) registerCoreGauges(a app, role comm.Role) coreGauges {
	reg := telemetry.Default()
	kv := []string{"core", strconv.Itoa(a.core), "app", a.name, "role", role.String()}
	g := coreGauges{
		pressure: reg.Gauge("caer_core_pressure", "windowed LLC-miss mean per core", kv...),
	}
	if role == comm.RoleBatch {
		g.directive = reg.Gauge("caer_core_directive", "current directive per batch core (0 run, 1 pause)", kv...)
		g.degraded = reg.Gauge("caer_core_degraded", "1 while the core's engine is failing open", kv...)
	}
	return g
}

// Step executes one sampling period: run the machine for one period, have
// every CAER-M monitor publish its application's sample, tick every
// engine, combine their directives (all batch applications must react
// together, §3.2 — any engine asserting pause pauses them all), apply the
// combined directive through the actuator, and relaunch any batch
// application that ran to completion (§6.1).
func (rt *Runtime) Step() {
	if !rt.started {
		rt.start()
	}
	rt.m.RunPeriod()
	telemetry.RunnerPeriods.Inc()
	// Advance the table's period clock before this period's publishes so
	// StalePeriods counts publisher silence in whole periods.
	rt.table.BumpPeriod()
	for _, mon := range rt.monitors {
		mon.Tick()
	}
	combined := comm.DirectiveRun
	for i, eng := range rt.engines {
		own := float64(rt.enginePM[i].ReadDelta(pmu.EventLLCMisses))
		if eng.Tick(own) == comm.DirectivePause {
			combined = comm.DirectivePause
		}
	}
	rt.table.BroadcastDirective(combined)
	for i := range rt.batch {
		b := &rt.batch[i]
		rt.actuator(rt.m.Core(b.core), combined)
		if b.proc.Done() {
			rt.m.FlushCore(b.core)
			b.proc.Relaunch()
			rt.relaunches++
			rt.batchRelaunches[i]++
			telemetry.RunnerRelaunches.Inc()
		}
	}
	for i, a := range rt.latency {
		rt.latGauges[i].pressure.Set(a.slot.WindowMean())
	}
	for i, eng := range rt.engines {
		g := rt.engGauges[i]
		g.pressure.Set(eng.OwnMean())
		if eng.Directive() == comm.DirectivePause {
			g.directive.Set(1)
		} else {
			g.directive.Set(0)
		}
		if eng.Degraded() {
			g.degraded.Set(1)
		} else {
			g.degraded.Set(0)
		}
	}
}

// RunUntil steps until stop returns true or maxPeriods elapse, returning
// the number of periods executed.
func (rt *Runtime) RunUntil(stop func() bool, maxPeriods int) int {
	for i := 0; i < maxPeriods; i++ {
		if stop() {
			return i
		}
		rt.Step()
	}
	return maxPeriods
}

// LatencyProcesses returns the hosted latency-sensitive processes.
func (rt *Runtime) LatencyProcesses() []*machine.Process {
	out := make([]*machine.Process, len(rt.latency))
	for i, a := range rt.latency {
		out[i] = a.proc
	}
	return out
}

// BatchProcesses returns the hosted batch processes.
func (rt *Runtime) BatchProcesses() []*machine.Process {
	out := make([]*machine.Process, len(rt.batch))
	for i, a := range rt.batch {
		out[i] = a.proc
	}
	return out
}

// BatchCores returns the core indices hosting batch applications.
func (rt *Runtime) BatchCores() []int {
	out := make([]int, len(rt.batch))
	for i, a := range rt.batch {
		out[i] = a.core
	}
	return out
}

// LatencyCores returns the core indices hosting latency-sensitive
// applications.
func (rt *Runtime) LatencyCores() []int {
	out := make([]int, len(rt.latency))
	for i, a := range rt.latency {
		out[i] = a.core
	}
	return out
}
