package caer

import (
	"fmt"
	"strconv"

	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/telemetry"
)

// HeuristicKind selects which detection/response pairing a runtime uses:
// the three configurations evaluated in the paper plus the hybrid
// extension.
type HeuristicKind int

const (
	// HeuristicShutter pairs the burst-shutter detector with the
	// red-light/green-light response (paper §6.2).
	HeuristicShutter HeuristicKind = iota
	// HeuristicRule pairs the rule-based detector with the soft-locking
	// response (paper §6.2).
	HeuristicRule
	// HeuristicRandom is the §6.4 accuracy baseline: random detection with
	// a length-1 red-light/green-light response.
	HeuristicRandom
	// HeuristicHybrid is an extension beyond the paper: rule-based gating
	// with burst-shutter confirmation, paired with red-light/green-light.
	HeuristicHybrid
)

// String names the heuristic pairing.
func (h HeuristicKind) String() string {
	switch h {
	case HeuristicShutter:
		return "shutter"
	case HeuristicRule:
		return "rule-based"
	case HeuristicRandom:
		return "random"
	case HeuristicHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("HeuristicKind(%d)", int(h))
	}
}

// NewDetector builds the detector half of the pairing.
func (h HeuristicKind) NewDetector(cfg Config) Detector {
	switch h {
	case HeuristicShutter:
		return NewShutterDetector(cfg)
	case HeuristicRule:
		return NewRuleDetector(cfg)
	case HeuristicRandom:
		return NewRandomDetector(cfg)
	case HeuristicHybrid:
		return NewHybridDetector(cfg)
	default:
		panic(fmt.Sprintf("caer: unknown heuristic %d", int(h)))
	}
}

// NewResponder builds the response half of the pairing.
func (h HeuristicKind) NewResponder(cfg Config) Responder {
	switch h {
	case HeuristicShutter:
		return NewRedLightGreenLight(cfg)
	case HeuristicRule:
		return NewSoftLock(cfg)
	case HeuristicRandom:
		// The paper's baseline uses red-light/green-light with length 1.
		cfg.ResponseLength = 1
		cfg.AdaptiveResponse = false
		return NewRedLightGreenLight(cfg)
	case HeuristicHybrid:
		return NewRedLightGreenLight(cfg)
	default:
		panic(fmt.Sprintf("caer: unknown heuristic %d", int(h)))
	}
}

// Actuator applies a directive to a batch application's core. The default
// actuator pauses/resumes execution; a DVFS actuator instead drops the
// core's frequency (the related-work alternative response, paper §7).
type Actuator func(core *machine.Core, d comm.Directive)

// PauseActuator implements the paper's throttling: DirectivePause halts
// the core entirely.
func PauseActuator(core *machine.Core, d comm.Directive) {
	core.SetPaused(d == comm.DirectivePause)
}

// DVFSActuator returns an actuator that models per-core dynamic frequency
// scaling: DirectivePause runs the core at 1/divisor speed instead of
// halting it.
func DVFSActuator(divisor int) Actuator {
	if divisor < 2 {
		panic(fmt.Sprintf("caer: DVFS divisor %d must be >= 2", divisor))
	}
	return func(core *machine.Core, d comm.Directive) {
		if d == comm.DirectivePause {
			core.SetFreqDivisor(divisor)
		} else {
			core.SetFreqDivisor(1)
		}
	}
}

// app is one hosted application.
type app struct {
	name string
	core int
	proc *machine.Process
	slot *comm.Slot
}

// Runtime is the deployed CAER environment over a simulated machine: the
// communication table, one CAER-M monitor per latency-sensitive
// application, and one engine per batch application. Step runs one
// sampling period end to end.
type Runtime struct {
	m     *machine.Machine
	cfg   Config
	kind  HeuristicKind
	table *comm.Table
	// src is the counter source the monitors' and engines' PMUs probe.
	// It defaults to the machine itself; WithSource interposes another
	// implementation (e.g. a pmu.FaultSource for chaos experiments, or a
	// real perf_event backend).
	src pmu.Source

	latency  []app
	batch    []app
	monitors []*Monitor
	engines  []*Engine
	enginePM []*pmu.PMU
	actuator Actuator

	relaunches      int
	batchRelaunches []int // per batch application, in registration order
	started         bool

	// Sampling-schedule state (DESIGN.md §13). probeWait counts down the
	// periods until the next scheduled probe; probeElapsed counts up the
	// periods the next probe's counter deltas will span. lastCombined is
	// the directive issued at the most recent probe — it keeps actuating
	// (and feeding the quiet check) across skipped periods.
	ctl          *IntervalController // adaptive mode only
	triggers     []*pmu.Threshold    // interrupt mode: one per latency core
	probeWait    int
	probeElapsed int
	sleeping     bool   // interrupt mode: pipeline parked behind the triggers
	armedStart   uint64 // machine period the current sleep stretch began
	quietStreak  int    // interrupt mode: consecutive quiet probes while awake
	lastCombined comm.Directive
	sstats       SamplingStats

	// Per-core live gauges for caer-top, registered once in start() so the
	// per-period updates in Step stay allocation-free.
	latGauges []coreGauges // one per latency app
	engGauges []coreGauges // one per batch app
}

// coreGauges is one core's live telemetry view.
type coreGauges struct {
	pressure  *telemetry.Gauge // windowed LLC-miss mean
	directive *telemetry.Gauge // 0 = run, 1 = pause (batch only)
	degraded  *telemetry.Gauge // 1 while failing open (batch only)
}

// Option customizes a Runtime.
type Option func(*Runtime)

// WithActuator replaces the default pause actuator.
func WithActuator(a Actuator) Option {
	return func(rt *Runtime) { rt.actuator = a }
}

// WithSource interposes a pmu.Source between the machine's counters and
// the runtime's PMUs. The machine still executes the workloads; only the
// counter reads go through src. Chaos experiments use this to inject
// counter faults without touching the runtime logic.
func WithSource(src pmu.Source) Option {
	if src == nil {
		panic("caer: WithSource needs a source")
	}
	return func(rt *Runtime) { rt.src = src }
}

// NewRuntime creates a CAER deployment on machine m using the given
// heuristic pairing and configuration. Applications are added with
// AddLatency/AddBatch before the first Step.
func NewRuntime(m *machine.Machine, kind HeuristicKind, cfg Config, opts ...Option) *Runtime {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	rt := &Runtime{
		m:        m,
		cfg:      cfg,
		kind:     kind,
		table:    comm.NewTable(cfg.WindowSize),
		src:      m,
		actuator: PauseActuator,
	}
	for _, o := range opts {
		o(rt)
	}
	return rt
}

// Table exposes the communication table (for inspection and tests).
func (rt *Runtime) Table() *comm.Table { return rt.table }

// Heuristic returns the configured pairing.
func (rt *Runtime) Heuristic() HeuristicKind { return rt.kind }

// Engines returns the batch engines (one per batch application).
func (rt *Runtime) Engines() []*Engine { return rt.engines }

// Monitors returns the CAER-M monitors (one per latency-sensitive
// application), in registration order. Chaos experiments use them to
// simulate monitor crashes.
func (rt *Runtime) Monitors() []*Monitor { return rt.monitors }

// Relaunches returns how many times completed batch applications were
// relaunched.
func (rt *Runtime) Relaunches() int { return rt.relaunches }

// BatchRelaunches returns each batch application's relaunch count, in
// registration order (nil before the first Step).
func (rt *Runtime) BatchRelaunches() []int {
	out := make([]int, len(rt.batchRelaunches))
	copy(out, rt.batchRelaunches)
	return out
}

// AddLatency binds a latency-sensitive application to a core under a
// CAER-M monitor. The application itself is never modified.
func (rt *Runtime) AddLatency(name string, core int, proc *machine.Process) {
	rt.mustNotBeStarted()
	rt.m.Bind(core, proc)
	slot := rt.table.Register(name, comm.RoleLatency)
	rt.latency = append(rt.latency, app{name: name, core: core, proc: proc, slot: slot})
	rt.monitors = append(rt.monitors, NewMonitor(pmu.New(rt.src, core), slot))
}

// AddBatch binds a batch application to a core under a full CAER engine.
// Engines are created lazily at the first Step so that every engine sees
// all latency-sensitive slots regardless of registration order.
func (rt *Runtime) AddBatch(name string, core int, proc *machine.Process) {
	rt.mustNotBeStarted()
	rt.m.Bind(core, proc)
	slot := rt.table.Register(name, comm.RoleBatch)
	rt.batch = append(rt.batch, app{name: name, core: core, proc: proc, slot: slot})
}

func (rt *Runtime) mustNotBeStarted() {
	if rt.started {
		panic("caer: applications must be added before the first Step")
	}
}

func (rt *Runtime) start() {
	if len(rt.latency) == 0 || len(rt.batch) == 0 {
		panic("caer: runtime needs at least one latency-sensitive and one batch application")
	}
	neighborSlots := make([]*comm.Slot, len(rt.latency))
	for i, a := range rt.latency {
		neighborSlots[i] = a.slot
	}
	for _, b := range rt.batch {
		eng := NewEngine(rt.kind.NewDetector(rt.cfg), rt.kind.NewResponder(rt.cfg), b.slot, neighborSlots)
		eng.SetWatchdog(rt.cfg.WatchdogPeriods)
		if rt.cfg.EventLogCap > 0 {
			eng.SetLogCapacity(rt.cfg.EventLogCap)
		}
		rt.engines = append(rt.engines, eng)
		rt.enginePM = append(rt.enginePM, pmu.New(rt.src, b.core))
		rt.engGauges = append(rt.engGauges, rt.registerCoreGauges(b, comm.RoleBatch))
	}
	for _, a := range rt.latency {
		rt.latGauges = append(rt.latGauges, rt.registerCoreGauges(a, comm.RoleLatency))
	}
	rt.batchRelaunches = make([]int, len(rt.batch))
	rt.sstats.Mode = rt.cfg.Sampling
	rt.sstats.WidestInterval = 1
	rt.probeWait = 1
	switch rt.cfg.Sampling {
	case SamplingPolling:
	case SamplingAdaptive:
		rt.ctl = NewIntervalController(rt.cfg.MaxProbeInterval, rt.cfg.SampleGrowth, rt.cfg.QuietProbes)
	case SamplingInterrupt:
		bound := rt.cfg.TriggerBound
		if bound <= 0 {
			bound = rt.cfg.NoiseThresh * float64(rt.cfg.TriggerWindow)
		}
		if bound < 1 {
			bound = 1
		}
		for _, a := range rt.latency {
			rt.triggers = append(rt.triggers, pmu.NewThreshold(rt.src, a.core, pmu.ThresholdConfig{
				Event:  pmu.EventLLCMisses,
				Bound:  uint64(bound),
				Window: rt.cfg.TriggerWindow,
			}))
		}
	default:
		panic(fmt.Sprintf("caer: unknown sampling mode %d", int(rt.cfg.Sampling)))
	}
	telemetry.EngineMode.Set(float64(rt.cfg.Sampling))
	telemetry.SamplingInterval.Set(1)
	rt.started = true
}

// Triggers returns the interrupt-mode threshold triggers, in latency-app
// registration order (nil in other modes; for inspection and tests).
func (rt *Runtime) Triggers() []*pmu.Threshold { return rt.triggers }

// SamplingStats returns the runtime's sampling-schedule counters.
func (rt *Runtime) SamplingStats() SamplingStats { return rt.sstats }

// Sleeping reports whether the interrupt mode currently has the pipeline
// parked behind its threshold triggers.
func (rt *Runtime) Sleeping() bool { return rt.sleeping }

// registerCoreGauges pre-registers one application's live per-core series.
// Setup path: registration allocates so Step does not have to.
func (rt *Runtime) registerCoreGauges(a app, role comm.Role) coreGauges {
	reg := telemetry.Default()
	kv := []string{"core", strconv.Itoa(a.core), "app", a.name, "role", role.String()}
	g := coreGauges{
		pressure: reg.Gauge("caer_core_pressure", "windowed LLC-miss mean per core", kv...),
	}
	if role == comm.RoleBatch {
		g.directive = reg.Gauge("caer_core_directive", "current directive per batch core (0 run, 1 pause)", kv...)
		g.degraded = reg.Gauge("caer_core_degraded", "1 while the core's engine is failing open", kv...)
	}
	return g
}

// Step executes one sampling period: run the machine for one period,
// advance the table clock, and — on probe periods — run the detection
// pipeline end to end: every CAER-M monitor publishes its application's
// sample, every engine ticks, their directives combine (all batch
// applications must react together, §3.2 — any engine asserting pause
// pauses them all). Every period, probe or not, the combined directive is
// re-applied through the actuator and completed batch applications are
// relaunched (§6.1).
//
// Under polling every period is a probe period. The adaptive mode probes
// every probeWait periods as decided by the interval controller; the
// interrupt mode parks the pipeline behind per-latency-core threshold
// triggers once the system has been quiet, checking only the triggers
// (plus a keepalive probe every MaxProbeInterval periods, which is also
// what lets the watchdog see a dead monitor through the sleep).
func (rt *Runtime) Step() {
	if !rt.started {
		rt.start()
	}
	rt.m.RunPeriod()
	telemetry.RunnerPeriods.Inc()
	// Advance the table's period clock before this period's publishes so
	// StalePeriods counts publisher lateness in whole periods.
	rt.table.BumpPeriod()
	rt.probeElapsed++
	probe := true
	switch rt.cfg.Sampling {
	case SamplingPolling:
	case SamplingAdaptive:
		rt.probeWait--
		probe = rt.probeWait <= 0
	case SamplingInterrupt:
		rt.probeWait--
		if rt.sleeping {
			fired := 0
			for _, tr := range rt.triggers {
				if tr.Check() {
					fired++
				}
			}
			if fired > 0 {
				rt.wake(fired)
			} else {
				probe = rt.probeWait <= 0 // keepalive probe
			}
		}
	}
	if probe {
		rt.probe(rt.probeElapsed)
		rt.afterProbe()
		rt.probeElapsed = 0
	} else {
		rt.sstats.SkippedPeriods++
		telemetry.PMUProbesSkipped.Inc()
	}
	for i := range rt.batch {
		b := &rt.batch[i]
		rt.actuator(rt.m.Core(b.core), rt.lastCombined)
		if b.proc.Done() {
			rt.m.FlushCore(b.core)
			b.proc.Relaunch()
			rt.relaunches++
			rt.batchRelaunches[i]++
			telemetry.RunnerRelaunches.Inc()
		}
	}
}

// probe runs the full detection pipeline for one probe covering elapsed
// machine periods (1 under polling): monitor publishes, engine ticks, the
// combined broadcast, and the live gauges. Counter deltas are normalized
// by elapsed so every window stays in misses-per-period units.
func (rt *Runtime) probe(elapsed int) {
	rt.sstats.ProbePeriods++
	if rt.sleeping {
		rt.sstats.Keepalives++
	}
	for _, mon := range rt.monitors {
		mon.TickSpan(uint64(elapsed))
	}
	combined := comm.DirectiveRun
	for i, eng := range rt.engines {
		own := float64(rt.enginePM[i].ReadDelta(pmu.EventLLCMisses)) / float64(elapsed)
		if eng.Tick(own) == comm.DirectivePause {
			combined = comm.DirectivePause
		}
	}
	rt.table.BroadcastDirective(combined)
	rt.lastCombined = combined
	for i, a := range rt.latency {
		rt.latGauges[i].pressure.Set(a.slot.WindowMean())
	}
	for i, eng := range rt.engines {
		g := rt.engGauges[i]
		g.pressure.Set(eng.OwnMean())
		if eng.Directive() == comm.DirectivePause {
			g.directive.Set(1)
		} else {
			g.directive.Set(0)
		}
		if eng.Degraded() {
			g.degraded.Set(1)
		} else {
			g.degraded.Set(0)
		}
	}
}

// afterProbe advances the sampling schedule with the probe's outcome,
// deciding when the next probe lands and declaring the chosen cadence to
// the comm table so deliberate skips do not read as publisher death.
func (rt *Runtime) afterProbe() {
	switch rt.cfg.Sampling {
	case SamplingPolling:
		rt.probeWait = 1
	case SamplingAdaptive:
		next := rt.ctl.Observe(rt.quiet())
		if next > 1 {
			rt.declareCadence(uint64(next))
		}
		if next > rt.sstats.WidestInterval {
			rt.sstats.WidestInterval = next
		}
		rt.probeWait = next
		telemetry.SamplingInterval.Set(float64(next))
	case SamplingInterrupt:
		if rt.sleeping {
			// A keepalive probe landed while parked. Quiet: stay parked.
			// Not quiet: pressure crept up without crossing the trigger
			// bound (or a hidden failure surfaced) — wake and probe every
			// period again.
			if rt.quiet() {
				rt.declareCadence(uint64(rt.cfg.MaxProbeInterval))
				rt.probeWait = rt.cfg.MaxProbeInterval
				return
			}
			rt.wake(0)
			rt.probeWait = 1
			return
		}
		if rt.quiet() {
			rt.quietStreak++
		} else {
			rt.quietStreak = 0
		}
		if rt.quietStreak >= rt.cfg.QuietProbes {
			rt.sleep()
		} else {
			rt.probeWait = 1
		}
	}
}

// quiet reports whether the probe found the system at a rest point: every
// engine idle, the combined directive Run, every neighbour's latest
// per-period pressure below the noise threshold, and no publisher late
// against its declared cadence. Only then may the schedule widen.
func (rt *Runtime) quiet() bool {
	if rt.lastCombined == comm.DirectivePause {
		return false
	}
	for _, eng := range rt.engines {
		if !eng.Idle() {
			return false
		}
	}
	for _, a := range rt.latency {
		if a.slot.LastSample() >= rt.cfg.NoiseThresh {
			return false
		}
		if a.slot.StalePeriods() > 0 {
			return false
		}
	}
	return true
}

// declareCadence re-stamps every on-schedule slot's expected next publish
// to cadence periods out. Slots already late (a dead monitor) are left
// alone so their staleness keeps accruing toward the watchdog horizon —
// the schedule must never mask a real failure.
func (rt *Runtime) declareCadence(cadence uint64) {
	for _, a := range rt.latency {
		if a.slot.StalePeriods() == 0 {
			a.slot.DeclareCadence(cadence)
		}
	}
	for _, b := range rt.batch {
		if b.slot.StalePeriods() == 0 {
			b.slot.DeclareCadence(cadence)
		}
	}
}

// sleep parks the pipeline behind the threshold triggers: arm them at the
// current counts, declare the keepalive cadence, and record the sleep
// start for the armed span.
func (rt *Runtime) sleep() {
	rt.sleeping = true
	rt.quietStreak = 0
	rt.armedStart = rt.m.Periods()
	for _, tr := range rt.triggers {
		tr.Arm()
	}
	rt.declareCadence(uint64(rt.cfg.MaxProbeInterval))
	rt.probeWait = rt.cfg.MaxProbeInterval
	if rt.cfg.MaxProbeInterval > rt.sstats.WidestInterval {
		rt.sstats.WidestInterval = rt.cfg.MaxProbeInterval
	}
	telemetry.SamplingInterval.Set(float64(rt.cfg.MaxProbeInterval))
}

// wake ends a sleep stretch — fired > 0 when threshold triggers woke the
// pipeline, 0 when a keepalive probe found the rest point gone. The armed
// span (and, on a fire, the fired marker) is recorded on every engine
// lane, stamped in machine periods (engine ticks do not advance during
// sleep).
func (rt *Runtime) wake(fired int) {
	rt.sleeping = false
	rt.quietStreak = 0
	now := rt.m.Periods()
	n := now - rt.armedStart
	if n == 0 {
		n = 1
	}
	val := 0.0
	if fired > 0 {
		val = 1
		rt.sstats.TriggerFires++
	}
	for _, eng := range rt.engines {
		eng.spans.Record(eng.track, telemetry.SpanArmed, rt.armedStart, uint32(n), val)
		if fired > 0 {
			eng.spans.Record(eng.track, telemetry.SpanFired, now, 1, float64(fired))
		}
	}
	telemetry.SamplingInterval.Set(1)
}

// RunUntil steps until stop returns true or maxPeriods elapse, returning
// the number of periods executed.
func (rt *Runtime) RunUntil(stop func() bool, maxPeriods int) int {
	for i := 0; i < maxPeriods; i++ {
		if stop() {
			return i
		}
		rt.Step()
	}
	return maxPeriods
}

// LatencyProcesses returns the hosted latency-sensitive processes.
func (rt *Runtime) LatencyProcesses() []*machine.Process {
	out := make([]*machine.Process, len(rt.latency))
	for i, a := range rt.latency {
		out[i] = a.proc
	}
	return out
}

// BatchProcesses returns the hosted batch processes.
func (rt *Runtime) BatchProcesses() []*machine.Process {
	out := make([]*machine.Process, len(rt.batch))
	for i, a := range rt.batch {
		out[i] = a.proc
	}
	return out
}

// BatchCores returns the core indices hosting batch applications.
func (rt *Runtime) BatchCores() []int {
	out := make([]int, len(rt.batch))
	for i, a := range rt.batch {
		out[i] = a.core
	}
	return out
}

// LatencyCores returns the core indices hosting latency-sensitive
// applications.
func (rt *Runtime) LatencyCores() []int {
	out := make([]int, len(rt.latency))
	for i, a := range rt.latency {
		out[i] = a.core
	}
	return out
}
