package caer

import (
	"fmt"
	"io"

	"caer/internal/comm"
	"caer/internal/telemetry"
)

// EventKind classifies a decision-log entry.
type EventKind int

const (
	// EventVerdict records a completed detection (c-positive/c-negative).
	EventVerdict EventKind = iota
	// EventHoldStart records entry into a response hold.
	EventHoldStart
	// EventHoldRelease records a hold ending early (soft lock released).
	EventHoldRelease
	// EventDirective records a directive change (run <-> pause).
	EventDirective
	// EventDegraded records the engine watchdog tripping: the neighbour
	// samples went stale for the watchdog horizon, so the engine fails
	// open (DirectiveRun) rather than trust a dead publisher's window.
	EventDegraded
	// EventRecovered records fresh neighbour samples resuming after a
	// degraded span; normal detection restarts.
	EventRecovered
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventVerdict:
		return "verdict"
	case EventHoldStart:
		return "hold-start"
	case EventHoldRelease:
		return "hold-release"
	case EventDirective:
		return "directive"
	case EventDegraded:
		return "degraded"
	case EventRecovered:
		return "recovered"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one logged engine decision.
type Event struct {
	Period    uint64
	Kind      EventKind
	Verdict   Verdict        // for EventVerdict
	Directive comm.Directive // for EventDirective / EventHoldStart
	HoldLen   int            // for EventHoldStart
	// StalePeriods is how long the neighbour samples had been stale when a
	// watchdog event fired (for EventDegraded).
	StalePeriods uint64
	// OwnMisses / NeighborMisses snapshot the evidence at decision time.
	OwnMisses      float64
	NeighborMisses float64
}

// String renders the event as one log line.
func (e Event) String() string {
	switch e.Kind {
	case EventVerdict:
		return fmt.Sprintf("p%06d verdict=%v own=%.0f neighbor=%.0f", e.Period, e.Verdict, e.OwnMisses, e.NeighborMisses)
	case EventHoldStart:
		return fmt.Sprintf("p%06d hold directive=%v len=%d", e.Period, e.Directive, e.HoldLen)
	case EventHoldRelease:
		return fmt.Sprintf("p%06d hold released (neighbor=%.0f)", e.Period, e.NeighborMisses)
	case EventDirective:
		return fmt.Sprintf("p%06d directive=%v", e.Period, e.Directive)
	case EventDegraded:
		return fmt.Sprintf("p%06d degraded: neighbour samples stale for %d periods, failing open", e.Period, e.StalePeriods)
	case EventRecovered:
		return fmt.Sprintf("p%06d recovered: neighbour samples resumed (neighbor=%.0f)", e.Period, e.NeighborMisses)
	default:
		return fmt.Sprintf("p%06d %v", e.Period, e.Kind)
	}
}

// EventLog is a bounded ring of engine decisions — the paper's prototype
// "logs the decisions it makes" for post-hoc analysis; bounding the ring
// keeps the runtime lightweight over arbitrarily long runs.
type EventLog struct {
	events []Event
	head   int
	count  int
	total  uint64
}

// NewEventLog returns a log keeping the most recent capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		panic(fmt.Sprintf("caer: event log capacity %d must be positive", capacity))
	}
	return &EventLog{events: make([]Event, capacity)}
}

// Append records one event, evicting the oldest when full. Evictions are
// surfaced live through telemetry (caer_engine_log_dropped_total) so an
// operator can tell a quiet engine from one whose history is being
// truncated faster than it is collected.
func (l *EventLog) Append(e Event) {
	l.total++
	if l.count == len(l.events) {
		telemetry.EngineLogDropped.Inc()
		l.events[l.head] = e
		l.head = (l.head + 1) % len(l.events)
		return
	}
	l.events[(l.head+l.count)%len(l.events)] = e
	l.count++
}

// Len returns the number of retained events.
func (l *EventLog) Len() int { return l.count }

// Total returns the lifetime event count (including evicted events).
func (l *EventLog) Total() uint64 { return l.total }

// Cap returns the ring capacity.
func (l *EventLog) Cap() int { return len(l.events) }

// Dropped returns how many events the ring has evicted.
func (l *EventLog) Dropped() uint64 { return l.total - uint64(l.count) }

// Events returns the retained events oldest-first.
func (l *EventLog) Events() []Event {
	out := make([]Event, l.count)
	for i := 0; i < l.count; i++ {
		out[i] = l.events[(l.head+i)%len(l.events)]
	}
	return out
}

// Dump writes the retained events one per line.
func (l *EventLog) Dump(w io.Writer) error {
	for _, e := range l.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
