package caer

import (
	"caer/internal/comm"
	"caer/internal/pmu"
	"caer/internal/telemetry"
)

// Monitor is the lightweight CAER-M virtual layer that lies beneath a
// latency-sensitive application (paper §3.2, the "thin" layers of
// Figure 4). It never modifies its application; its only job is to probe
// the application's PMU each sampling period and publish the LLC-miss
// sample to the communication table for the engines to consume.
type Monitor struct {
	pmu  *pmu.PMU
	slot *comm.Slot
	down bool
	// track/period drive the telemetry probe spans: the monitor's lane is
	// its slot ID (re-homed by SetSpans for fleet runs), and period counts
	// its own ticks (down ticks included) so the lane stays aligned with
	// the engines', which tick every period.
	spans    *telemetry.SpanRecorder
	laneName string
	track    int32
	period   uint64
}

// NewMonitor binds a PMU view to a latency-sensitive table slot. It panics
// on a mis-wired deployment.
func NewMonitor(p *pmu.PMU, slot *comm.Slot) *Monitor {
	if p == nil {
		panic("caer: monitor needs a PMU")
	}
	if slot == nil || slot.Role() != comm.RoleLatency {
		panic("caer: monitor's slot must be latency-sensitive")
	}
	m := &Monitor{pmu: p, slot: slot, track: int32(slot.ID()),
		spans: telemetry.DefaultSpans, laneName: "latency/" + slot.Name()}
	m.spans.NameTrack(m.track, m.laneName)
	return m
}

// SetSpans re-homes the monitor's probe spans onto a different recorder
// and track (see Engine.SetSpans — the fleet layer's per-machine track
// blocks). Must be called before the first Tick.
func (m *Monitor) SetSpans(spans *telemetry.SpanRecorder, track int32, prefix string) {
	if m.period > 0 {
		panic("caer: SetSpans after the first Tick")
	}
	if spans == nil {
		panic("caer: SetSpans needs a recorder")
	}
	m.spans = spans
	m.track = track
	m.spans.NameTrack(track, prefix+m.laneName)
}

// Slot returns the monitor's table slot.
func (m *Monitor) Slot() *comm.Slot { return m.slot }

// SetDown simulates a monitor crash (down=true) or restart (down=false).
// A down monitor stops publishing entirely — its slot's window freezes and
// its staleness grows, which is the failure the engines' watchdogs detect.
// On restart the PMU is re-armed so the first sample after the outage
// covers one period, not the whole gap.
func (m *Monitor) SetDown(down bool) {
	if m.down && !down {
		m.pmu.Arm()
	}
	m.down = down
}

// Down reports whether the monitor is simulated as crashed.
func (m *Monitor) Down() bool { return m.down }

// Tick performs one periodic probe: read-and-restart the LLC-miss counter
// and publish the delta. A crashed monitor does nothing.
func (m *Monitor) Tick() { m.TickSpan(1) }

// TickSpan is Tick for a probe covering elapsed machine periods (>= 1):
// under the adaptive/interrupt sampling modes the runtime skips probes, so
// a probe's counter delta spans several periods. The published sample is
// normalized to misses per period, keeping the slot window — and every
// consumer of it (engine detectors, sched.Classifier) — in the per-period
// units the thresholds are calibrated for. A crashed monitor does nothing.
func (m *Monitor) TickSpan(elapsed uint64) {
	if elapsed == 0 {
		elapsed = 1
	}
	m.period++
	if m.down {
		return
	}
	v := float64(m.pmu.ReadDelta(pmu.EventLLCMisses)) / float64(elapsed)
	m.slot.Publish(v)
	m.spans.Record(m.track, telemetry.SpanProbe, m.period-1, 1, v)
}
