package caer

import (
	"fmt"

	"caer/internal/comm"
)

// Verdict is the outcome of one detection step.
type Verdict int

const (
	// VerdictPending means the heuristic is still gathering evidence
	// (e.g. mid shutter/burst cycle).
	VerdictPending Verdict = iota
	// VerdictContention asserts the applications are contending
	// (c-positive in Figure 5).
	VerdictContention
	// VerdictNoContention asserts the absence of contention (c-negative).
	VerdictNoContention
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictPending:
		return "pending"
	case VerdictContention:
		return "contention"
	case VerdictNoContention:
		return "no-contention"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Detector is an online contention-detection heuristic (paper §4). The
// engine feeds it one sample pair per sampling period: the batch
// application's own LLC misses and the latency-sensitive neighbour's.
//
// Step returns the batch directive the heuristic needs for its *own*
// measurement protocol during the coming period (the burst-shutter halts
// the batch while measuring the steady average) and the verdict, which
// stays VerdictPending until a detection cycle completes.
type Detector interface {
	Name() string
	Step(ownMisses, neighborMisses float64) (comm.Directive, Verdict)
	// Reset discards any in-progress detection cycle (called when a
	// response phase ends, restarting detection cleanly).
	Reset()
}
