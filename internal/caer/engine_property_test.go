package caer

import (
	"math/rand"
	"testing"

	"caer/internal/comm"
)

// randomDetector emits random pending/contention/no-contention verdicts and
// random probing directives, driven by a seeded RNG.
type randomVerdictDetector struct {
	rng *rand.Rand
}

func (d *randomVerdictDetector) Name() string { return "random-verdicts" }

func (d *randomVerdictDetector) Step(own, nbr float64) (comm.Directive, Verdict) {
	dir := comm.DirectiveRun
	if d.rng.Intn(2) == 0 {
		dir = comm.DirectivePause
	}
	switch d.rng.Intn(3) {
	case 0:
		return dir, VerdictPending
	case 1:
		return dir, VerdictContention
	default:
		return dir, VerdictNoContention
	}
}

func (d *randomVerdictDetector) Reset() {}

// randomResponder reacts with random directives and hold lengths, and
// randomly releases holds.
type randomResponder struct {
	rng *rand.Rand
}

func (r *randomResponder) Name() string { return "random-response" }

func (r *randomResponder) React(c bool, v View) (comm.Directive, int) {
	dir := comm.DirectiveRun
	if r.rng.Intn(2) == 0 {
		dir = comm.DirectivePause
	}
	return dir, 1 + r.rng.Intn(6)
}

func (r *randomResponder) Hold(v View) (comm.Directive, bool) {
	dir := comm.DirectiveRun
	if r.rng.Intn(2) == 0 {
		dir = comm.DirectivePause
	}
	return dir, r.rng.Intn(5) == 0
}

func (r *randomResponder) Reset() {}

// TestEngineStateMachineInvariants fuzzes the engine with random detector
// and responder behaviour and checks the accounting invariants of the
// Figure 5 state machine hold for any trajectory.
func TestEngineStateMachineInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tab := comm.NewTable(8)
		nbr := tab.Register("lat", comm.RoleLatency)
		own := tab.Register("batch", comm.RoleBatch)
		det := &randomVerdictDetector{rng: rand.New(rand.NewSource(seed))}
		resp := &randomResponder{rng: rand.New(rand.NewSource(seed + 1000))}
		e := NewEngine(det, resp, own, []*comm.Slot{nbr})

		const periods = 500
		rng := rand.New(rand.NewSource(seed + 2000))
		for p := 0; p < periods; p++ {
			nbr.Publish(float64(rng.Intn(1000)))
			d := e.Tick(float64(rng.Intn(1000)))
			if d != own.Directive() {
				t.Fatalf("seed %d: returned directive %v != table directive %v", seed, d, own.Directive())
			}
		}
		st := e.Stats()
		if st.Periods != periods {
			t.Fatalf("seed %d: periods = %d, want %d", seed, st.Periods, periods)
		}
		if st.PausedPeriods+st.RunPeriods != st.Periods {
			t.Errorf("seed %d: paused %d + run %d != periods %d", seed, st.PausedPeriods, st.RunPeriods, st.Periods)
		}
		if st.DetectionTicks+st.HoldTicks != st.Periods {
			t.Errorf("seed %d: detect %d + hold %d != periods %d", seed, st.DetectionTicks, st.HoldTicks, st.Periods)
		}
		if st.CPositive+st.CNegative > st.DetectionTicks {
			t.Errorf("seed %d: more verdicts (%d) than detection ticks (%d)",
				seed, st.CPositive+st.CNegative, st.DetectionTicks)
		}
		// The engine published exactly one sample per period.
		if own.Published() != periods {
			t.Errorf("seed %d: published %d samples, want %d", seed, own.Published(), periods)
		}
		// The decision log is consistent: every verdict event corresponds to
		// a counted verdict.
		verdictEvents := uint64(0)
		for _, ev := range e.Log().Events() {
			if ev.Kind == EventVerdict {
				verdictEvents++
			}
		}
		if verdictEvents > st.CPositive+st.CNegative {
			t.Errorf("seed %d: %d verdict events exceed %d verdicts", seed, verdictEvents, st.CPositive+st.CNegative)
		}
	}
}
