package caer

import "fmt"

// SamplingMode selects how the runtime schedules its per-period detection
// pipeline (probe, publish, detect, respond). The paper's prototype polls
// every period unconditionally; the two additional modes reproduce the
// related work's event-driven detection (mc-linux: interrupt-style
// detection is 2-13x faster than polling at equal overhead, and the
// sampling-interval sweep has a sharp optimum).
type SamplingMode int

const (
	// SamplingPolling is the paper's §3.2 behaviour: the full pipeline
	// runs every sampling period. Zero value, so existing configurations
	// are unchanged.
	SamplingPolling SamplingMode = iota
	// SamplingAdaptive widens the probe interval multiplicatively while
	// pressure stays below the noise threshold and snaps back to
	// every-period on onset, with hysteresis mirroring the shutter: the
	// interval only grows after QuietProbes consecutive quiet probes.
	SamplingAdaptive
	// SamplingInterrupt arms a pmu.Threshold trigger on each
	// latency-sensitive core and skips the pipeline entirely while it
	// sleeps: the trigger's per-period Check is the only counter touch,
	// and a fire (or a keepalive probe every MaxProbeInterval periods)
	// wakes the full pipeline.
	SamplingInterrupt
)

// String names the sampling mode.
func (m SamplingMode) String() string {
	switch m {
	case SamplingPolling:
		return "polling"
	case SamplingAdaptive:
		return "adaptive"
	case SamplingInterrupt:
		return "interrupt"
	default:
		return fmt.Sprintf("SamplingMode(%d)", int(m))
	}
}

// SamplingModes returns all defined modes, in stable order.
func SamplingModes() []SamplingMode {
	return []SamplingMode{SamplingPolling, SamplingAdaptive, SamplingInterrupt}
}

// IntervalController is the adaptive-sampling state machine: it holds the
// current probe interval in periods, widening it multiplicatively while
// observations stay quiet and snapping back to every-period on onset.
// Hysteresis mirrors the shutter detector's settle discipline — the
// interval grows only after quietProbes consecutive quiet probes, so one
// quiet period after a noisy stretch cannot halve the detection latency
// budget. All methods are allocation-free; Observe runs on the probe path.
type IntervalController struct {
	max         int
	growth      int
	quietProbes int

	interval int
	streak   int
	widest   int
}

// NewIntervalController builds a controller starting at every-period
// probing. It panics on out-of-range parameters (deployment wiring errors
// should be loud): max >= 1, growth >= 2, quietProbes >= 1.
func NewIntervalController(max, growth, quietProbes int) *IntervalController {
	if max < 1 {
		panic(fmt.Sprintf("caer: interval controller max %d must be >= 1", max))
	}
	if growth < 2 {
		panic(fmt.Sprintf("caer: interval controller growth %d must be >= 2", growth))
	}
	if quietProbes < 1 {
		panic(fmt.Sprintf("caer: interval controller hysteresis %d must be >= 1", quietProbes))
	}
	return &IntervalController{max: max, growth: growth, quietProbes: quietProbes, interval: 1, widest: 1}
}

// Interval returns the current probe interval in periods (>= 1).
func (c *IntervalController) Interval() int { return c.interval }

// Widest returns the widest interval the controller has reached.
func (c *IntervalController) Widest() int { return c.widest }

// Observe folds one probe outcome into the controller and returns the
// interval to wait before the next probe: onset (quiet=false) snaps the
// interval back to 1 immediately; a quiet probe extends the quiet streak,
// and once the streak reaches the hysteresis bound the interval widens by
// the growth factor, capped at max.
func (c *IntervalController) Observe(quiet bool) int {
	if !quiet {
		c.interval = 1
		c.streak = 0
		return 1
	}
	c.streak++
	if c.streak >= c.quietProbes && c.interval < c.max {
		c.streak = 0
		c.interval *= c.growth
		if c.interval > c.max {
			c.interval = c.max
		}
		if c.interval > c.widest {
			c.widest = c.interval
		}
	}
	return c.interval
}

// Reset snaps the controller back to every-period probing (onset response
// outside the Observe path, e.g. a runtime restart).
func (c *IntervalController) Reset() {
	c.interval = 1
	c.streak = 0
}

// SamplingStats summarises one runtime's sampling-schedule behaviour —
// the probe-cost side of the detection-latency-vs-overhead tradeoff the
// SamplingSuite sweeps.
type SamplingStats struct {
	Mode           SamplingMode
	ProbePeriods   uint64 // periods the full pipeline ran
	SkippedPeriods uint64 // periods the pipeline was deliberately skipped
	Keepalives     uint64 // interrupt-mode keepalive probes (subset of ProbePeriods)
	TriggerFires   uint64 // interrupt-mode threshold fires
	WidestInterval int    // widest probe interval reached (1 for polling)
}
