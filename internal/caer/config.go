// Package caer implements the paper's contribution: the Contention Aware
// Execution Runtime. It contains the CAER-M monitor layer (under
// latency-sensitive applications), the CAER engine (under batch
// applications), the two online contention-detection heuristics of §4
// (Burst-Shutter, Algorithm 1; Rule-Based, Algorithm 2) plus the random
// baseline of §6.4, and the contention responses of §5
// (red-light/green-light — fixed and adaptive — and soft locking), wired
// together by the detect/respond state machine of Figure 5.
//
// All PMU access goes through internal/pmu and all cross-layer
// communication through internal/comm, so the runtime is backend-agnostic:
// the same code drives the simulated machine and could drive real hardware
// counters.
package caer

import "fmt"

// Config collects every tunable of the CAER runtime. The defaults are the
// paper's settings (§6.2) translated to the scaled machine model: the
// paper's usage threshold of 1500 LLC misses per 1 ms period on an 8 MB L3
// scales to 150 misses per 60,000-cycle period on the 512 KB L3 (the same
// order of misses-per-cache-line-per-period density), and the shutter/burst
// spans are stretched so the shutter outlasts the shared cache's refill
// transient — on this machine, as on the paper's, the neighbour needs a few
// periods of solitude before its miss rate reflects the batch's absence.
type Config struct {
	// WindowSize is the communication-table sample window length in
	// periods (the l_window/r_window size of Algorithms 1 and 2).
	WindowSize int

	// Shutter (Algorithm 1) parameters.
	// SwitchPoint is how many periods the batch is halted (shutter closed)
	// to measure the neighbour's steady LLC-miss average.
	SwitchPoint int
	// EndPoint is the period count at which the burst average is computed;
	// periods [SwitchPoint, EndPoint) run the batch at full force.
	EndPoint int
	// ImpactFactor is the relative spike ("5%" in the paper) the burst
	// average must exceed the steady average by to assert contention.
	ImpactFactor float64
	// NoiseThresh is the absolute miss-count floor the spike must also
	// clear, filtering measurement noise on quiet neighbours.
	NoiseThresh float64
	// TransientSkip is how many leading periods of each shutter/burst
	// measurement span are excluded from its average. When the batch halts
	// (or bursts), the neighbour's miss rate takes several periods to
	// settle — the shared cache must drain or refill — and Algorithm 1's
	// averages are only meaningful over the settled tail. Must satisfy
	// TransientSkip+1 < SwitchPoint and SwitchPoint+TransientSkip < EndPoint.
	TransientSkip int

	// Rule-based (Algorithm 2) parameter: both applications' window
	// averages must reach UsageThresh misses/period to assert contention.
	UsageThresh float64

	// ResponseLength is the red-light/green-light hold length in periods
	// (10 in the paper's evaluation).
	ResponseLength int
	// AdaptiveResponse enables the §5 extension: the hold length grows
	// while detections keep producing the same verdict, up to
	// MaxResponseLength.
	AdaptiveResponse  bool
	MaxResponseLength int

	// RandomP is the contention probability of the random baseline
	// heuristic (0.5 in §6.4).
	RandomP float64
	// RandomSeed seeds the baseline heuristic.
	RandomSeed int64

	// WatchdogPeriods is the engine watchdog horizon: after this many
	// consecutive periods in which some neighbour slot received no fresh
	// sample, the engine enters the degraded fail-open state (emit
	// DirectiveRun, stop trusting the frozen windows) until samples
	// resume. 0 disables the watchdog — an engine driven outside a
	// Runtime, whose table period never advances, is never degraded.
	WatchdogPeriods int

	// EventLogCap bounds each engine's decision log to the most recent
	// EventLogCap events (drop-oldest; evictions are counted and surfaced
	// through telemetry as caer_engine_log_dropped_total). 0 keeps the
	// default capacity of 4096.
	EventLogCap int

	// Sampling selects how the runtime schedules the detection pipeline
	// (DESIGN.md §13). The zero value is the paper's every-period polling,
	// so existing configurations are unchanged; the sampling knobs below
	// are ignored (and not validated) under polling.
	Sampling SamplingMode
	// MaxProbeInterval is the adaptive controller's interval ceiling and
	// the interrupt mode's keepalive cadence, in periods. It should stay
	// well below WatchdogPeriods — skipped probes declare their cadence to
	// the comm table, but the keepalive is also what bounds how long a
	// dead monitor can hide behind the sleep.
	MaxProbeInterval int
	// SampleGrowth is the adaptive controller's multiplicative widening
	// factor (>= 2).
	SampleGrowth int
	// QuietProbes is the hysteresis bound shared by both modes: the
	// adaptive interval widens (and the interrupt mode goes to sleep) only
	// after this many consecutive quiet probes.
	QuietProbes int
	// TriggerWindow is the interrupt trigger's sliding-window length in
	// periods.
	TriggerWindow int
	// TriggerBound is the windowed neighbour LLC-miss sum that fires the
	// interrupt trigger. 0 derives NoiseThresh * TriggerWindow — the
	// window-equivalent of the noise floor the adaptive mode compares
	// against.
	TriggerBound float64
}

// DefaultConfig returns the paper's configuration scaled to the simulated
// machine.
func DefaultConfig() Config {
	return Config{
		WindowSize:        10,
		SwitchPoint:       10,
		EndPoint:          20,
		ImpactFactor:      0.05,
		NoiseThresh:       20,
		TransientSkip:     5,
		UsageThresh:       150,
		ResponseLength:    10,
		AdaptiveResponse:  false,
		MaxResponseLength: 80,
		RandomP:           0.5,
		RandomSeed:        1,
		WatchdogPeriods:   30,
		Sampling:          SamplingPolling,
		MaxProbeInterval:  16,
		SampleGrowth:      2,
		QuietProbes:       3,
		TriggerWindow:     4,
		TriggerBound:      0, // derived: NoiseThresh * TriggerWindow
	}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.WindowSize <= 0:
		return fmt.Errorf("caer: WindowSize %d must be positive", c.WindowSize)
	case c.SwitchPoint <= 0:
		return fmt.Errorf("caer: SwitchPoint %d must be positive", c.SwitchPoint)
	case c.EndPoint <= c.SwitchPoint:
		return fmt.Errorf("caer: EndPoint %d must exceed SwitchPoint %d", c.EndPoint, c.SwitchPoint)
	case c.ImpactFactor < 0:
		return fmt.Errorf("caer: ImpactFactor %v must be non-negative", c.ImpactFactor)
	case c.NoiseThresh < 0:
		return fmt.Errorf("caer: NoiseThresh %v must be non-negative", c.NoiseThresh)
	case c.TransientSkip < 0:
		return fmt.Errorf("caer: TransientSkip %d must be non-negative", c.TransientSkip)
	case c.TransientSkip+1 >= c.SwitchPoint:
		return fmt.Errorf("caer: TransientSkip %d leaves no settled shutter periods before SwitchPoint %d", c.TransientSkip, c.SwitchPoint)
	case c.SwitchPoint+c.TransientSkip >= c.EndPoint:
		return fmt.Errorf("caer: TransientSkip %d leaves no settled burst periods before EndPoint %d", c.TransientSkip, c.EndPoint)
	case c.UsageThresh < 0:
		return fmt.Errorf("caer: UsageThresh %v must be non-negative", c.UsageThresh)
	case c.ResponseLength <= 0:
		return fmt.Errorf("caer: ResponseLength %d must be positive", c.ResponseLength)
	case c.AdaptiveResponse && c.MaxResponseLength < c.ResponseLength:
		return fmt.Errorf("caer: MaxResponseLength %d below ResponseLength %d", c.MaxResponseLength, c.ResponseLength)
	case c.RandomP < 0 || c.RandomP > 1:
		return fmt.Errorf("caer: RandomP %v out of [0,1]", c.RandomP)
	case c.WatchdogPeriods < 0:
		return fmt.Errorf("caer: WatchdogPeriods %d must be non-negative (0 disables)", c.WatchdogPeriods)
	case c.EventLogCap < 0:
		return fmt.Errorf("caer: EventLogCap %d must be non-negative (0 = default)", c.EventLogCap)
	}
	switch c.Sampling {
	case SamplingPolling:
		// The sampling knobs are inert under polling; leave them
		// unvalidated so legacy literal configs stay valid.
	case SamplingAdaptive, SamplingInterrupt:
		switch {
		case c.MaxProbeInterval < 1:
			return fmt.Errorf("caer: MaxProbeInterval %d must be >= 1 under %s sampling", c.MaxProbeInterval, c.Sampling)
		case c.Sampling == SamplingAdaptive && c.SampleGrowth < 2:
			return fmt.Errorf("caer: SampleGrowth %d must be >= 2 under adaptive sampling", c.SampleGrowth)
		case c.QuietProbes < 1:
			return fmt.Errorf("caer: QuietProbes %d must be >= 1 under %s sampling", c.QuietProbes, c.Sampling)
		case c.Sampling == SamplingInterrupt && c.TriggerWindow < 1:
			return fmt.Errorf("caer: TriggerWindow %d must be >= 1 under interrupt sampling", c.TriggerWindow)
		case c.TriggerBound < 0:
			return fmt.Errorf("caer: TriggerBound %v must be non-negative (0 = derived)", c.TriggerBound)
		case c.WatchdogPeriods > 0 && c.MaxProbeInterval >= c.WatchdogPeriods:
			return fmt.Errorf("caer: MaxProbeInterval %d must stay below WatchdogPeriods %d (the keepalive must outpace the watchdog)", c.MaxProbeInterval, c.WatchdogPeriods)
		}
	default:
		return fmt.Errorf("caer: unknown sampling mode %d", int(c.Sampling))
	}
	return nil
}
