package caer

import (
	"testing"

	"caer/internal/comm"
)

// shutterTestConfig: 2 shutter periods' worth of samples land in positions
// [1,3), burst in [3,6).
func shutterTestConfig() Config {
	cfg := DefaultConfig()
	cfg.SwitchPoint = 3
	cfg.EndPoint = 6
	cfg.NoiseThresh = 5
	cfg.ImpactFactor = 0.05
	cfg.TransientSkip = 0
	return cfg
}

func TestShutterDirectiveSchedule(t *testing.T) {
	d := NewShutterDetector(shutterTestConfig())
	// Directives issued per step: steps 1,2 -> Pause (shutter), steps 3..5
	// -> Run (burst), step 6 -> verdict with Run.
	wantDirs := []comm.Directive{
		comm.DirectivePause, comm.DirectivePause,
		comm.DirectiveRun, comm.DirectiveRun, comm.DirectiveRun,
		comm.DirectiveRun,
	}
	for i, want := range wantDirs {
		dir, v := d.Step(0, 10)
		if dir != want {
			t.Errorf("step %d directive = %v, want %v", i+1, dir, want)
		}
		if i < len(wantDirs)-1 && v != VerdictPending {
			t.Errorf("step %d verdict = %v, want pending", i+1, v)
		}
		if i == len(wantDirs)-1 && v == VerdictPending {
			t.Error("final step still pending")
		}
	}
}

// runShutterCycle drives one full detection cycle with the given neighbour
// samples (len == EndPoint) and returns the final verdict.
func runShutterCycle(t *testing.T, d *ShutterDetector, samples []float64) Verdict {
	t.Helper()
	var v Verdict
	for i, s := range samples {
		var dir comm.Directive
		dir, v = d.Step(0, s)
		_ = dir
		if i < len(samples)-1 && v != VerdictPending {
			t.Fatalf("premature verdict %v at step %d", v, i+1)
		}
	}
	if v == VerdictPending {
		t.Fatal("cycle ended without a verdict")
	}
	return v
}

func TestShutterDetectsMissSpike(t *testing.T) {
	d := NewShutterDetector(shutterTestConfig())
	// Position 0 is the contaminated pre-cycle sample; steady = positions
	// 1,2; burst = positions 3,4,5. Burst 100 vs steady 20: spike of 80 >
	// noise 5 and > 5% relative.
	v := runShutterCycle(t, d, []float64{999, 20, 20, 100, 100, 100})
	if v != VerdictContention {
		t.Errorf("verdict = %v, want contention", v)
	}
	no, yes := d.VerdictCounts()
	if no != 0 || yes != 1 || d.Cycles() != 1 {
		t.Errorf("counts = (%d,%d,%d cycles)", no, yes, d.Cycles())
	}
}

func TestShutterIgnoresFlatNeighbor(t *testing.T) {
	d := NewShutterDetector(shutterTestConfig())
	v := runShutterCycle(t, d, []float64{999, 50, 50, 50, 50, 50})
	if v != VerdictNoContention {
		t.Errorf("verdict = %v, want no-contention", v)
	}
}

func TestShutterNoiseThresholdFiltersSmallAbsoluteSpikes(t *testing.T) {
	// Relative spike is huge (2 -> 4 is +100%) but absolute delta 2 < noise
	// threshold 5: a quiet neighbour must not trigger contention.
	d := NewShutterDetector(shutterTestConfig())
	v := runShutterCycle(t, d, []float64{0, 2, 2, 4, 4, 4})
	if v != VerdictNoContention {
		t.Errorf("verdict = %v, want no-contention for sub-noise spike", v)
	}
}

func TestShutterImpactFactorFiltersRelativelySmallSpikes(t *testing.T) {
	// Absolute delta 10 > noise 5, but relative spike 1% < impact 5%.
	d := NewShutterDetector(shutterTestConfig())
	v := runShutterCycle(t, d, []float64{0, 1000, 1000, 1010, 1010, 1010})
	if v != VerdictNoContention {
		t.Errorf("verdict = %v, want no-contention for sub-impact spike", v)
	}
}

func TestShutterCyclesAreIndependent(t *testing.T) {
	d := NewShutterDetector(shutterTestConfig())
	if v := runShutterCycle(t, d, []float64{0, 20, 20, 100, 100, 100}); v != VerdictContention {
		t.Fatalf("first cycle = %v", v)
	}
	// Second cycle flat: the spike of cycle one must not leak in.
	if v := runShutterCycle(t, d, []float64{0, 100, 100, 100, 100, 100}); v != VerdictNoContention {
		t.Errorf("second cycle = %v, want no-contention", v)
	}
	if d.Cycles() != 2 {
		t.Errorf("cycles = %d, want 2", d.Cycles())
	}
}

func TestShutterResetDiscardsPartialCycle(t *testing.T) {
	d := NewShutterDetector(shutterTestConfig())
	d.Step(0, 1000)
	d.Step(0, 1000)
	d.Reset()
	// A fresh flat cycle must be judged on its own samples only.
	if v := runShutterCycle(t, d, []float64{0, 50, 50, 50, 50, 50}); v != VerdictNoContention {
		t.Errorf("post-reset cycle = %v, want no-contention", v)
	}
}

func TestShutterTransientSkipIgnoresRefillDecay(t *testing.T) {
	// With a cache-refill transient at the head of the shutter span, plain
	// whole-span averages hide the contention signal; the transient skip
	// must recover it. SwitchPoint 6, EndPoint 12, skip 3:
	// steady = positions 4,5; burst = positions 9,10,11.
	cfg := DefaultConfig()
	cfg.SwitchPoint = 6
	cfg.EndPoint = 12
	cfg.TransientSkip = 3
	cfg.NoiseThresh = 5
	d := NewShutterDetector(cfg)
	samples := []float64{
		900,            // position 0: pre-cycle, excluded
		1500, 900, 500, // shutter refill decay (skipped)
		40, 40, // settled shutter tail -> steady = 40
		100, 300, 500, // burst ramp (skipped)
		520, 530, 540, // settled burst tail -> burst = 530
	}
	v := runShutterCycle(t, d, samples)
	if v != VerdictContention {
		t.Errorf("verdict = %v, want contention (skip should expose the settled tails)", v)
	}
	// Without the skip the same samples are ambiguous: steady ~ burst.
	cfg.TransientSkip = 0
	d0 := NewShutterDetector(cfg)
	v0 := runShutterCycle(t, d0, samples)
	if v0 != VerdictNoContention {
		t.Errorf("no-skip verdict = %v, want no-contention (decay masks the signal)", v0)
	}
}

func TestRuleDetectorBothHeavyMeansContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsageThresh = 30
	cfg.WindowSize = 4
	d := NewRuleDetector(cfg)
	var v Verdict
	for i := 0; i < 4; i++ {
		_, v = d.Step(100, 100)
	}
	if v != VerdictContention {
		t.Errorf("both-heavy verdict = %v, want contention", v)
	}
	if d.OwnMean() != 100 || d.NeighborMean() != 100 {
		t.Errorf("means = %v,%v", d.OwnMean(), d.NeighborMean())
	}
}

func TestRuleDetectorQuietEitherSideMeansNoContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsageThresh = 30
	cfg.WindowSize = 2
	cases := []struct {
		name     string
		own, nbr float64
	}{
		{"own quiet", 5, 100},
		{"neighbor quiet", 100, 5},
		{"both quiet", 5, 5},
	}
	for _, c := range cases {
		d := NewRuleDetector(cfg)
		var v Verdict
		for i := 0; i < 2; i++ {
			_, v = d.Step(c.own, c.nbr)
		}
		if v != VerdictNoContention {
			t.Errorf("%s: verdict = %v, want no-contention", c.name, v)
		}
	}
}

func TestRuleDetectorThresholdBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsageThresh = 30
	cfg.WindowSize = 1
	d := NewRuleDetector(cfg)
	// Algorithm 2 uses strict less-than: exactly-at-threshold is heavy.
	if _, v := d.Step(30, 30); v != VerdictContention {
		t.Errorf("at-threshold verdict = %v, want contention", v)
	}
	if _, v := d.Step(29.999, 30); v != VerdictNoContention {
		t.Errorf("below-threshold verdict = %v, want no-contention", v)
	}
}

func TestRuleDetectorDirectiveAlwaysRun(t *testing.T) {
	d := NewRuleDetector(DefaultConfig())
	for i := 0; i < 20; i++ {
		dir, _ := d.Step(1000, 1000)
		if dir != comm.DirectiveRun {
			t.Fatal("rule detector tried to pause during detection (it is passive)")
		}
	}
}

func TestRuleDetectorWindowSmoothsTransients(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsageThresh = 30
	cfg.WindowSize = 10
	d := NewRuleDetector(cfg)
	for i := 0; i < 10; i++ {
		d.Step(100, 100)
	}
	// One quiet sample must not flip a 10-sample window below threshold.
	if _, v := d.Step(0, 0); v != VerdictContention {
		t.Errorf("single quiet sample flipped verdict to %v", v)
	}
	no, yes := d.VerdictCounts()
	if no != 0 || yes != 11 {
		t.Errorf("verdict counts = %d,%d", no, yes)
	}
}

func TestRandomDetectorExtremes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomP = 1
	d := NewRandomDetector(cfg)
	for i := 0; i < 50; i++ {
		if _, v := d.Step(0, 0); v != VerdictContention {
			t.Fatal("P=1 produced no-contention")
		}
	}
	cfg.RandomP = 0
	d = NewRandomDetector(cfg)
	for i := 0; i < 50; i++ {
		if _, v := d.Step(0, 0); v != VerdictNoContention {
			t.Fatal("P=0 produced contention")
		}
	}
}

func TestRandomDetectorHalfProbabilityAndDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomP = 0.5
	cfg.RandomSeed = 42
	d1 := NewRandomDetector(cfg)
	d2 := NewRandomDetector(cfg)
	contending := 0
	const n = 2000
	for i := 0; i < n; i++ {
		_, v1 := d1.Step(0, 0)
		_, v2 := d2.Step(0, 0)
		if v1 != v2 {
			t.Fatal("same-seed random detectors diverged")
		}
		if v1 == VerdictContention {
			contending++
		}
	}
	frac := float64(contending) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("contention fraction = %v, want ~0.5", frac)
	}
	no, yes := d1.VerdictCounts()
	if int(no+yes) != n {
		t.Errorf("verdict counts %d+%d != %d", no, yes, n)
	}
	d1.Reset() // no-op, must not panic
}

func TestDetectorNames(t *testing.T) {
	cfg := DefaultConfig()
	if NewShutterDetector(cfg).Name() != "burst-shutter" {
		t.Error("shutter name")
	}
	if NewRuleDetector(cfg).Name() != "rule-based" {
		t.Error("rule name")
	}
	if NewRandomDetector(cfg).Name() != "random" {
		t.Error("random name")
	}
}

func TestDetectorConstructorsValidateConfig(t *testing.T) {
	bad := DefaultConfig()
	bad.WindowSize = 0
	for _, f := range []func(){
		func() { NewShutterDetector(bad) },
		func() { NewRuleDetector(bad) },
		func() { NewRandomDetector(bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid config accepted by a detector constructor")
				}
			}()
			f()
		}()
	}
}
