package caer

import "caer/internal/comm"

// HybridDetector composes the two paper heuristics to cover each other's
// blind spots (an extension beyond the paper, motivated by its §6.4
// accuracy analysis):
//
//   - The rule-based heuristic is passive and cheap but cannot tell
//     *intrinsic* misses from *induced* ones: a latency-sensitive streamer
//     (libquantum) misses heavily no matter what the batch does, so the
//     rule locks the batch out for nothing.
//   - The burst-shutter measures causality directly — does halting the
//     batch actually lower the neighbour's misses? — but pays for it by
//     halting the batch during every probe, even for obviously quiet
//     pairs.
//
// The hybrid uses the rule as a zero-cost gate: while either application
// is quiet it reports no contention without ever perturbing the batch;
// only when both look heavy does it run one shutter cycle to confirm the
// batch is actually responsible.
type HybridDetector struct {
	rule       *RuleDetector
	shutter    *ShutterDetector
	confirming bool
	gated      uint64 // cheap no-contention verdicts (no probe spent)
	probes     uint64 // shutter confirmations triggered
}

// NewHybridDetector constructs the hybrid from cfg (it uses both
// heuristics' parameters). It panics on an invalid configuration.
func NewHybridDetector(cfg Config) *HybridDetector {
	return &HybridDetector{
		rule:    NewRuleDetector(cfg),
		shutter: NewShutterDetector(cfg),
	}
}

// Name implements Detector.
func (d *HybridDetector) Name() string { return "hybrid(rule-gate+shutter-confirm)" }

// Step implements Detector.
func (d *HybridDetector) Step(ownMisses, neighborMisses float64) (comm.Directive, Verdict) {
	// The rule's windows track every period, including confirmation
	// periods, so its averages stay current.
	_, ruleVerdict := d.rule.Step(ownMisses, neighborMisses)

	if !d.confirming {
		if ruleVerdict != VerdictContention {
			d.gated++
			return comm.DirectiveRun, VerdictNoContention
		}
		// Both sides look heavy: spend a shutter cycle to confirm.
		d.confirming = true
		d.probes++
		d.shutter.Reset()
	}

	dir, v := d.shutter.Step(ownMisses, neighborMisses)
	if v != VerdictPending {
		d.confirming = false
	}
	return dir, v
}

// Reset implements Detector.
func (d *HybridDetector) Reset() {
	d.confirming = false
	d.shutter.Reset()
	d.rule.Reset()
}

// GateStats returns how many periods were resolved by the cheap gate and
// how many shutter confirmations were spent.
func (d *HybridDetector) GateStats() (gated, probes uint64) { return d.gated, d.probes }
