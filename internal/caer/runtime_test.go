package caer

import (
	"testing"

	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/spec"
)

// testScenario runs a sensitive latency app against an lbm batch adversary
// for a fixed number of periods under the given heuristic, returning the
// runtime (for inspection) and the latency app's retired instructions.
func testScenario(t *testing.T, kind HeuristicKind, periods int) (*Runtime, uint64) {
	t.Helper()
	m := machine.New(machine.Config{Cores: 2})
	cfg := DefaultConfig()
	rt := NewRuntime(m, kind, cfg)
	lat, ok := spec.ByName("mcf")
	if !ok {
		t.Fatal("mcf profile missing")
	}
	latProc := lat.Batch().NewProcess(0, 11) // Batch(): run the whole window
	rt.AddLatency("mcf", 0, latProc)
	rt.AddBatch("lbm", 1, spec.LBM().Batch().NewProcess(1<<28, 12))
	for i := 0; i < periods; i++ {
		rt.Step()
	}
	return rt, latProc.Retired()
}

func TestRuntimeRequiresBothRoles(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	rt := NewRuntime(m, HeuristicRule, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("Step without applications did not panic")
		}
	}()
	rt.Step()
}

func TestRuntimeRejectsInvalidConfig(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	bad := DefaultConfig()
	bad.WindowSize = -1
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	NewRuntime(m, HeuristicRule, bad)
}

func TestRuntimeRejectsLateRegistration(t *testing.T) {
	rt, _ := testScenario(t, HeuristicRule, 1)
	defer func() {
		if recover() == nil {
			t.Error("AddBatch after Step did not panic")
		}
	}()
	rt.AddBatch("late", 1, spec.LBM().NewProcess(0, 1))
}

func TestRuntimeThrottlesBatchUnderContention(t *testing.T) {
	for _, kind := range []HeuristicKind{HeuristicShutter, HeuristicRule} {
		t.Run(kind.String(), func(t *testing.T) {
			rt, _ := testScenario(t, kind, 300)
			st := rt.Engines()[0].Stats()
			if st.CPositive == 0 {
				t.Error("no contention detected for mcf+lbm (a heavily contending pair)")
			}
			if st.PausedPeriods == 0 {
				t.Error("batch never paused despite contention")
			}
			if st.PausedPeriods == st.Periods {
				t.Error("batch paused every period (no utilization gained)")
			}
		})
	}
}

func TestRuntimeCAERReducesInterference(t *testing.T) {
	// The headline claim, end to end: mcf retires more instructions in a
	// fixed window under CAER than under native (unthrottled) co-location.
	const periods = 400
	native := func() uint64 {
		m := machine.New(machine.Config{Cores: 2})
		lat, _ := spec.ByName("mcf")
		p := lat.Batch().NewProcess(0, 11)
		m.Bind(0, p)
		m.Bind(1, spec.LBM().Batch().NewProcess(1<<28, 12))
		for i := 0; i < periods; i++ {
			m.RunPeriod()
		}
		return p.Retired()
	}()
	for _, kind := range []HeuristicKind{HeuristicShutter, HeuristicRule} {
		t.Run(kind.String(), func(t *testing.T) {
			_, caerRetired := testScenario(t, kind, periods)
			if caerRetired <= native {
				t.Errorf("CAER(%v) did not help: native=%d caer=%d", kind, native, caerRetired)
			}
		})
	}
}

func TestRuntimeQuietBatchRunsFreely(t *testing.T) {
	// A private-cache-resident pair must be left alone by the rule-based
	// heuristic: no contention, near-zero paused periods.
	m := machine.New(machine.Config{Cores: 2})
	rt := NewRuntime(m, HeuristicRule, DefaultConfig())
	namd, _ := spec.ByName("namd")
	povray, _ := spec.ByName("povray")
	rt.AddLatency("namd", 0, namd.Batch().NewProcess(0, 1))
	rt.AddBatch("povray", 1, povray.Batch().NewProcess(1<<28, 2))
	// Cold-start misses legitimately look like contention for the first few
	// windows; measure steady state after warm-up.
	for i := 0; i < 100; i++ {
		rt.Step()
	}
	warm := rt.Engines()[0].Stats()
	for i := 0; i < 200; i++ {
		rt.Step()
	}
	st := rt.Engines()[0].Stats()
	paused := st.PausedPeriods - warm.PausedPeriods
	if frac := float64(paused) / float64(st.Periods-warm.Periods); frac > 0.05 {
		t.Errorf("quiet pair paused %.1f%% of steady-state periods, want ~0", frac*100)
	}
}

func TestRuntimeBatchRelaunch(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	rt := NewRuntime(m, HeuristicRule, DefaultConfig())
	lat, _ := spec.ByName("namd")
	rt.AddLatency("namd", 0, lat.Batch().NewProcess(0, 1))
	// A tiny batch program completes quickly and must be relaunched.
	small := spec.LBM()
	small.Exec.Instructions = 2000
	rt.AddBatch("lbm", 1, small.NewProcess(1<<28, 2))
	for i := 0; i < 100; i++ {
		rt.Step()
	}
	if rt.Relaunches() == 0 {
		t.Error("completed batch application was never relaunched")
	}
	if rt.BatchProcesses()[0].Runs() < 2 {
		t.Errorf("batch runs = %d, want >= 2", rt.BatchProcesses()[0].Runs())
	}
}

func TestRuntimeAccessors(t *testing.T) {
	rt, _ := testScenario(t, HeuristicRule, 2)
	if rt.Heuristic() != HeuristicRule {
		t.Error("Heuristic() wrong")
	}
	if len(rt.Engines()) != 1 {
		t.Error("Engines() wrong")
	}
	if got := rt.LatencyCores(); len(got) != 1 || got[0] != 0 {
		t.Errorf("LatencyCores = %v", got)
	}
	if got := rt.BatchCores(); len(got) != 1 || got[0] != 1 {
		t.Errorf("BatchCores = %v", got)
	}
	if len(rt.LatencyProcesses()) != 1 || len(rt.BatchProcesses()) != 1 {
		t.Error("process accessors wrong")
	}
	if rt.Table().WindowSize() != DefaultConfig().WindowSize {
		t.Error("table window size wrong")
	}
}

func TestRuntimeRunUntil(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	rt := NewRuntime(m, HeuristicRule, DefaultConfig())
	lat, _ := spec.ByName("namd")
	proc := lat.NewProcess(0, 1) // finite
	rt.AddLatency("namd", 0, proc)
	rt.AddBatch("lbm", 1, spec.LBM().Batch().NewProcess(1<<28, 2))
	n := rt.RunUntil(proc.Done, 100000)
	if !proc.Done() {
		t.Fatal("RunUntil stopped before completion")
	}
	if n <= 0 || n == 100000 {
		t.Errorf("RunUntil ran %d periods", n)
	}
	// A second call stops immediately.
	if again := rt.RunUntil(proc.Done, 10); again != 0 {
		t.Errorf("second RunUntil ran %d periods, want 0", again)
	}
}

func TestRuntimeDVFSActuator(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	rt := NewRuntime(m, HeuristicRule, DefaultConfig(), WithActuator(DVFSActuator(4)))
	lat, _ := spec.ByName("mcf")
	rt.AddLatency("mcf", 0, lat.Batch().NewProcess(0, 11))
	batchProc := spec.LBM().Batch().NewProcess(1<<28, 12)
	rt.AddBatch("lbm", 1, batchProc)
	sawThrottle := false
	for i := 0; i < 300; i++ {
		rt.Step()
		if m.Core(1).FreqDivisor() == 4 {
			sawThrottle = true
		}
		if m.Core(1).Paused() {
			t.Fatal("DVFS actuator paused the core instead of down-clocking")
		}
	}
	if !sawThrottle {
		t.Error("DVFS actuator never down-clocked the contending batch core")
	}
	// Even while throttled the batch keeps making (slow) progress.
	if batchProc.Retired() == 0 {
		t.Error("DVFS-throttled batch made no progress")
	}
}

func TestDVFSActuatorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DVFSActuator(1) did not panic")
		}
	}()
	DVFSActuator(1)
}

func TestPauseActuator(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	PauseActuator(m.Core(0), comm.DirectivePause)
	if !m.Core(0).Paused() {
		t.Error("PauseActuator did not pause")
	}
	PauseActuator(m.Core(0), comm.DirectiveRun)
	if m.Core(0).Paused() {
		t.Error("PauseActuator did not release")
	}
}

func TestRuntimeMultiAppVision(t *testing.T) {
	// The Figure 4 design vision: 2 latency-sensitive + 2 batch on 4 cores,
	// cooperating engines, all batches reacting together.
	m := machine.New(machine.Config{Cores: 4})
	rt := NewRuntime(m, HeuristicRule, DefaultConfig())
	mcf, _ := spec.ByName("mcf")
	soplex, _ := spec.ByName("soplex")
	rt.AddLatency("mcf", 0, mcf.Batch().NewProcess(0, 1))
	rt.AddLatency("soplex", 1, soplex.Batch().NewProcess(1<<26, 2))
	rt.AddBatch("lbm-a", 2, spec.LBM().Batch().NewProcess(1<<27, 3))
	rt.AddBatch("lbm-b", 3, spec.LBM().Batch().NewProcess(1<<28, 4))
	for i := 0; i < 200; i++ {
		rt.Step()
		// All batch cores must share one fate each period (§3.2).
		if m.Core(2).Paused() != m.Core(3).Paused() {
			t.Fatal("batch applications did not react together")
		}
	}
	if len(rt.Engines()) != 2 {
		t.Fatalf("engines = %d, want 2", len(rt.Engines()))
	}
	st := rt.Engines()[0].Stats()
	if st.CPositive == 0 {
		t.Error("no contention detected in a 4-way contending mix")
	}
}
