package caer

import (
	"fmt"

	"caer/internal/comm"
)

// engineState is the Figure 5 state machine position.
type engineState int

const (
	stateDetecting engineState = iota
	stateHolding
	// stateDegraded is the fail-open extension of the Figure 5 machine:
	// the neighbour samples went stale past the watchdog horizon, so the
	// engine emits DirectiveRun and suspends detection until they resume.
	stateDegraded
)

// EngineStats summarises an engine's decision history — the paper's
// prototype "logs the decisions it makes".
type EngineStats struct {
	Periods        uint64 // Tick calls
	PausedPeriods  uint64 // periods the batch was directed to pause
	RunPeriods     uint64 // periods the batch was directed to run
	CPositive      uint64 // contention verdicts
	CNegative      uint64 // no-contention verdicts
	DetectionTicks uint64 // periods spent inside detection protocols
	HoldTicks      uint64 // periods spent inside response holds
	DegradedTicks  uint64 // periods spent in the fail-open degraded state
	WatchdogTrips  uint64 // times the watchdog forced degradation
}

// Engine is the main CAER layer that lies under a batch application
// (paper §3.2): each period it publishes the batch's own LLC-miss sample to
// the communication table, reads the latency-sensitive neighbours' samples
// back, advances the detect/respond state machine of Figure 5, and emits
// the throttling directive for the coming period.
type Engine struct {
	det  Detector
	resp Responder

	ownSlot       *comm.Slot
	neighborSlots []*comm.Slot

	state        engineState
	holdLeft     int
	directive    comm.Directive
	stats        EngineStats
	log          *EventLog
	loggedDir    comm.Directive
	everDirected bool
	// watchdog is the staleness horizon in periods (0 = disabled): once
	// the most-stale neighbour slot has gone watchdog periods without a
	// fresh sample, the engine degrades to fail-open.
	watchdog int
}

// engineLogCapacity bounds the decision log's memory footprint.
const engineLogCapacity = 4096

// NewEngine wires a detector and responder to the batch application's own
// table slot and the latency-sensitive neighbours' slots. It panics if any
// slot is missing or mis-classified, which would mean the deployment is
// wired wrongly.
func NewEngine(det Detector, resp Responder, own *comm.Slot, neighbors []*comm.Slot) *Engine {
	if det == nil || resp == nil {
		panic("caer: engine needs a detector and a responder")
	}
	if own == nil || own.Role() != comm.RoleBatch {
		panic("caer: engine's own slot must be a batch slot")
	}
	if len(neighbors) == 0 {
		panic("caer: engine needs at least one latency-sensitive neighbour")
	}
	for _, n := range neighbors {
		if n == nil || n.Role() != comm.RoleLatency {
			panic(fmt.Sprintf("caer: neighbour slot %v is not latency-sensitive", n))
		}
	}
	ns := make([]*comm.Slot, len(neighbors))
	copy(ns, neighbors)
	return &Engine{det: det, resp: resp, ownSlot: own, neighborSlots: ns, log: NewEventLog(engineLogCapacity)}
}

// SetWatchdog arms the engine's staleness watchdog: after periods
// consecutive sampling periods in which some neighbour slot received no
// fresh sample (its publisher — a CAER-M monitor — is dead or wedged), the
// engine enters the degraded fail-open state, emitting DirectiveRun
// instead of trusting frozen windows, and recovers once every neighbour
// publishes again. periods <= 0 disables the watchdog. It must be called
// before the first Tick; reconfiguring a running engine would make the
// decision log unaccountable.
func (e *Engine) SetWatchdog(periods int) {
	if e.stats.Periods > 0 {
		panic("caer: SetWatchdog after the first Tick")
	}
	e.watchdog = periods
}

// Degraded reports whether the engine is currently failing open because
// its neighbour samples are stale.
func (e *Engine) Degraded() bool { return e.state == stateDegraded }

// maxNeighborStale returns the staleness, in table periods, of the
// longest-silent neighbour slot.
func (e *Engine) maxNeighborStale() uint64 {
	var m uint64
	for _, n := range e.neighborSlots {
		if s := n.StalePeriods(); s > m {
			m = s
		}
	}
	return m
}

// Log returns the engine's bounded decision log.
func (e *Engine) Log() *EventLog { return e.log }

// Detector returns the engine's heuristic.
func (e *Engine) Detector() Detector { return e.det }

// Responder returns the engine's response mechanism.
func (e *Engine) Responder() Responder { return e.resp }

// Stats returns a copy of the decision log counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Directive returns the most recently issued directive.
func (e *Engine) Directive() comm.Directive { return e.directive }

// OwnMean implements View over the batch slot's window.
func (e *Engine) OwnMean() float64 { return e.ownSlot.WindowMean() }

// NeighborMean implements View: the aggregate (summed) windowed pressure of
// every latency-sensitive neighbour.
func (e *Engine) NeighborMean() float64 {
	var s float64
	for _, n := range e.neighborSlots {
		s += n.WindowMean()
	}
	return s
}

// LastNeighbor implements View: the neighbours' aggregate misses in the
// most recent period.
func (e *Engine) LastNeighbor() float64 {
	var s float64
	for _, n := range e.neighborSlots {
		s += n.LastSample()
	}
	return s
}

// Tick advances the engine by one sampling period. ownMisses is the batch
// application's LLC misses during the period just completed (read from its
// PMU); the neighbours' samples are taken from the communication table,
// where their CAER-M monitors have already published them. Tick returns
// the directive for the coming period and records it in the table.
func (e *Engine) Tick(ownMisses float64) comm.Directive {
	e.ownSlot.Publish(ownMisses)
	neighbor := e.LastNeighbor()
	e.stats.Periods++

	// Watchdog: a dead neighbour publisher freezes its window, and a
	// frozen-high window would wedge the batch in DirectivePause forever
	// (the soft lock waits for pressure that can never subside). Checked
	// before the hold branch so degradation bounds in-flight pauses too.
	if e.watchdog > 0 {
		stale := e.maxNeighborStale()
		if e.state == stateDegraded {
			if stale == 0 {
				// Every neighbour published this period: recover.
				e.state = stateDetecting
				e.holdLeft = 0
				e.det.Reset()
				e.resp.Reset()
				e.log.Append(Event{Period: e.stats.Periods - 1, Kind: EventRecovered, NeighborMisses: neighbor})
			} else {
				e.stats.DegradedTicks++
				e.directive = comm.DirectiveRun
				e.finishTick()
				return e.directive
			}
		} else if stale >= uint64(e.watchdog) {
			e.state = stateDegraded
			e.holdLeft = 0
			e.stats.WatchdogTrips++
			e.stats.DegradedTicks++
			e.log.Append(Event{Period: e.stats.Periods - 1, Kind: EventDegraded, StalePeriods: stale})
			e.directive = comm.DirectiveRun
			e.finishTick()
			return e.directive
		}
	}

	if e.state == stateHolding {
		d, release := e.resp.Hold(e)
		e.holdLeft--
		e.stats.HoldTicks++
		e.directive = d
		if release || e.holdLeft <= 0 {
			e.state = stateDetecting
			e.det.Reset()
			if release {
				e.log.Append(Event{Period: e.stats.Periods - 1, Kind: EventHoldRelease, NeighborMisses: neighbor})
			}
		}
		e.finishTick()
		return e.directive
	}

	e.stats.DetectionTicks++
	d, v := e.det.Step(ownMisses, neighbor)
	if v == VerdictPending {
		e.directive = d
		e.finishTick()
		return e.directive
	}

	contending := v == VerdictContention
	if contending {
		e.stats.CPositive++
	} else {
		e.stats.CNegative++
	}
	e.log.Append(Event{Period: e.stats.Periods - 1, Kind: EventVerdict, Verdict: v,
		OwnMisses: ownMisses, NeighborMisses: neighbor})
	dir, n := e.resp.React(contending, e)
	if n < 1 {
		panic(fmt.Sprintf("caer: responder %s returned hold length %d", e.resp.Name(), n))
	}
	e.det.Reset()
	e.directive = dir
	if n > 1 {
		e.state = stateHolding
		e.holdLeft = n - 1
		e.log.Append(Event{Period: e.stats.Periods - 1, Kind: EventHoldStart, Directive: dir, HoldLen: n})
	}
	e.finishTick()
	return e.directive
}

func (e *Engine) finishTick() {
	if e.directive == comm.DirectivePause {
		e.stats.PausedPeriods++
	} else {
		e.stats.RunPeriods++
	}
	if !e.everDirected || e.directive != e.loggedDir {
		e.log.Append(Event{Period: e.stats.Periods - 1, Kind: EventDirective, Directive: e.directive})
		e.loggedDir = e.directive
		e.everDirected = true
	}
	e.ownSlot.SetDirective(e.directive)
}
