package caer

import (
	"fmt"

	"caer/internal/comm"
	"caer/internal/telemetry"
)

// engineState is the Figure 5 state machine position.
type engineState int

const (
	stateDetecting engineState = iota
	stateHolding
	// stateDegraded is the fail-open extension of the Figure 5 machine:
	// the neighbour samples went stale past the watchdog horizon, so the
	// engine emits DirectiveRun and suspends detection until they resume.
	stateDegraded
)

// EngineStats summarises an engine's decision history — the paper's
// prototype "logs the decisions it makes".
type EngineStats struct {
	Periods        uint64 // Tick calls
	PausedPeriods  uint64 // periods the batch was directed to pause
	RunPeriods     uint64 // periods the batch was directed to run
	CPositive      uint64 // contention verdicts
	CNegative      uint64 // no-contention verdicts
	DetectionTicks uint64 // periods spent inside detection protocols
	HoldTicks      uint64 // periods spent inside response holds
	DegradedTicks  uint64 // periods spent in the fail-open degraded state
	WatchdogTrips  uint64 // times the watchdog forced degradation
}

// Engine is the main CAER layer that lies under a batch application
// (paper §3.2): each period it publishes the batch's own LLC-miss sample to
// the communication table, reads the latency-sensitive neighbours' samples
// back, advances the detect/respond state machine of Figure 5, and emits
// the throttling directive for the coming period.
type Engine struct {
	det  Detector
	resp Responder

	ownSlot       *comm.Slot
	neighborSlots []*comm.Slot

	state        engineState
	holdLeft     int
	directive    comm.Directive
	stats        EngineStats
	log          *EventLog
	loggedDir    comm.Directive
	everDirected bool
	// watchdog is the staleness horizon in periods (0 = disabled): once
	// the most-stale neighbour slot has gone watchdog periods without a
	// fresh sample, the engine degrades to fail-open.
	watchdog int

	// Span bookkeeping for the telemetry trace: the engine's lane is its
	// own slot ID (re-homed by SetSpans for fleet runs, where N machines
	// share a ring and raw slot ids would collide), and each in-flight
	// detection protocol / hold / degraded stretch remembers its start
	// period so the closing tick can record a single span covering the
	// whole phase.
	spans         *telemetry.SpanRecorder
	laneName      string
	track         int32
	detActive     bool
	detStart      uint64
	shutterActive bool
	shutterStart  uint64
	holdDir       comm.Directive
	holdStart     uint64
	degradedStart uint64
}

// engineLogCapacity bounds the decision log's memory footprint.
const engineLogCapacity = 4096

// NewEngine wires a detector and responder to the batch application's own
// table slot and the latency-sensitive neighbours' slots. It panics if any
// slot is missing or mis-classified, which would mean the deployment is
// wired wrongly.
func NewEngine(det Detector, resp Responder, own *comm.Slot, neighbors []*comm.Slot) *Engine {
	if det == nil || resp == nil {
		panic("caer: engine needs a detector and a responder")
	}
	if own == nil || own.Role() != comm.RoleBatch {
		panic("caer: engine's own slot must be a batch slot")
	}
	if len(neighbors) == 0 {
		panic("caer: engine needs at least one latency-sensitive neighbour")
	}
	for _, n := range neighbors {
		if n == nil || n.Role() != comm.RoleLatency {
			panic(fmt.Sprintf("caer: neighbour slot %v is not latency-sensitive", n))
		}
	}
	ns := make([]*comm.Slot, len(neighbors))
	copy(ns, neighbors)
	e := &Engine{det: det, resp: resp, ownSlot: own, neighborSlots: ns,
		log: NewEventLog(engineLogCapacity), track: int32(own.ID()),
		spans: telemetry.DefaultSpans, laneName: "batch/" + own.Name()}
	e.spans.NameTrack(e.track, e.laneName)
	return e
}

// SetSpans re-homes the engine's telemetry spans onto a different recorder
// and track, naming the lane prefix+"batch/<app>" there. The fleet layer
// uses this to give machine k's engines the k*stride track block of a
// shared ring instead of the process-default recorder, where raw slot ids
// collide across machines. Must be called before the first Tick so every
// span of the engine's history lands on one lane.
func (e *Engine) SetSpans(spans *telemetry.SpanRecorder, track int32, prefix string) {
	if e.stats.Periods > 0 {
		panic("caer: SetSpans after the first Tick")
	}
	if spans == nil {
		panic("caer: SetSpans needs a recorder")
	}
	e.spans = spans
	e.track = track
	e.spans.NameTrack(track, prefix+e.laneName)
}

// SetLogCapacity resizes the engine's decision log to keep the most recent
// capacity events (default 4096). Like SetWatchdog it must be called before
// the first Tick so the decision history stays accountable.
func (e *Engine) SetLogCapacity(capacity int) {
	if e.stats.Periods > 0 {
		panic("caer: SetLogCapacity after the first Tick")
	}
	e.log = NewEventLog(capacity)
}

// SetWatchdog arms the engine's staleness watchdog: after periods
// consecutive sampling periods in which some neighbour slot received no
// fresh sample (its publisher — a CAER-M monitor — is dead or wedged), the
// engine enters the degraded fail-open state, emitting DirectiveRun
// instead of trusting frozen windows, and recovers once every neighbour
// publishes again. periods <= 0 disables the watchdog. It must be called
// before the first Tick; reconfiguring a running engine would make the
// decision log unaccountable.
func (e *Engine) SetWatchdog(periods int) {
	if e.stats.Periods > 0 {
		panic("caer: SetWatchdog after the first Tick")
	}
	e.watchdog = periods
}

// Degraded reports whether the engine is currently failing open because
// its neighbour samples are stale.
func (e *Engine) Degraded() bool { return e.state == stateDegraded }

// Idle reports whether the engine is at a detection rest point: not
// holding, not degraded, and no multi-period detection protocol in flight.
// The sampling controllers only widen the probe interval (or go to sleep)
// when every engine is idle — stretching a shutter measurement or a
// response hold across skipped periods would corrupt its period accounting.
func (e *Engine) Idle() bool { return e.state == stateDetecting && !e.detActive }

// maxNeighborStale returns the staleness, in table periods, of the
// longest-silent neighbour slot.
func (e *Engine) maxNeighborStale() uint64 {
	var m uint64
	for _, n := range e.neighborSlots {
		if s := n.StalePeriods(); s > m {
			m = s
		}
	}
	return m
}

// Log returns the engine's bounded decision log.
func (e *Engine) Log() *EventLog { return e.log }

// Detector returns the engine's heuristic.
func (e *Engine) Detector() Detector { return e.det }

// Responder returns the engine's response mechanism.
func (e *Engine) Responder() Responder { return e.resp }

// Stats returns a copy of the decision log counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Directive returns the most recently issued directive.
func (e *Engine) Directive() comm.Directive { return e.directive }

// OwnMean implements View over the batch slot's window.
func (e *Engine) OwnMean() float64 { return e.ownSlot.WindowMean() }

// NeighborMean implements View: the aggregate (summed) windowed pressure of
// every latency-sensitive neighbour.
func (e *Engine) NeighborMean() float64 {
	var s float64
	for _, n := range e.neighborSlots {
		s += n.WindowMean()
	}
	return s
}

// LastNeighbor implements View: the neighbours' aggregate misses in the
// most recent period.
func (e *Engine) LastNeighbor() float64 {
	var s float64
	for _, n := range e.neighborSlots {
		s += n.LastSample()
	}
	return s
}

// Tick advances the engine by one sampling period. ownMisses is the batch
// application's LLC misses during the period just completed (read from its
// PMU); the neighbours' samples are taken from the communication table,
// where their CAER-M monitors have already published them. Tick returns
// the directive for the coming period and records it in the table.
func (e *Engine) Tick(ownMisses float64) comm.Directive {
	telemetry.EngineTicks.Inc()
	e.ownSlot.Publish(ownMisses)
	neighbor := e.LastNeighbor()
	e.stats.Periods++
	period := e.stats.Periods - 1
	e.spans.Record(e.track, telemetry.SpanPublish, period, 1, ownMisses)

	// Watchdog: a dead neighbour publisher freezes its window, and a
	// frozen-high window would wedge the batch in DirectivePause forever
	// (the soft lock waits for pressure that can never subside). Checked
	// before the hold branch so degradation bounds in-flight pauses too.
	if e.watchdog > 0 {
		stale := e.maxNeighborStale()
		telemetry.CommStaleness.Observe(float64(stale))
		if e.state == stateDegraded {
			if stale == 0 {
				// Every neighbour published this period: recover.
				e.state = stateDetecting
				e.holdLeft = 0
				e.det.Reset()
				e.resp.Reset()
				e.log.Append(Event{Period: period, Kind: EventRecovered, NeighborMisses: neighbor})
				e.spans.Record(e.track, telemetry.SpanDegraded,
					e.degradedStart, uint32(period-e.degradedStart), 0)
			} else {
				e.stats.DegradedTicks++
				telemetry.EngineDegradedTicks.Inc()
				e.directive = comm.DirectiveRun
				e.finishTick()
				return e.directive
			}
		} else if stale >= uint64(e.watchdog) {
			// The trip truncates any phase in flight; the hold that was
			// cancelled still gets its (shortened) span.
			if e.state == stateHolding {
				e.recordHoldSpan(period)
			}
			e.detActive = false
			e.shutterActive = false
			e.state = stateDegraded
			e.holdLeft = 0
			e.stats.WatchdogTrips++
			e.stats.DegradedTicks++
			telemetry.EngineWatchdogTrips.Inc()
			telemetry.EngineDegradedTicks.Inc()
			e.degradedStart = period
			e.log.Append(Event{Period: period, Kind: EventDegraded, StalePeriods: stale})
			e.directive = comm.DirectiveRun
			e.finishTick()
			return e.directive
		}
	}

	if e.state == stateHolding {
		d, release := e.resp.Hold(e)
		e.holdLeft--
		e.stats.HoldTicks++
		e.directive = d
		if release || e.holdLeft <= 0 {
			e.state = stateDetecting
			e.det.Reset()
			e.recordHoldSpan(period + 1)
			if release {
				e.log.Append(Event{Period: period, Kind: EventHoldRelease, NeighborMisses: neighbor})
			}
		}
		e.finishTick()
		return e.directive
	}

	e.stats.DetectionTicks++
	if !e.detActive {
		e.detActive = true
		e.detStart = period
	}
	d, v := e.det.Step(ownMisses, neighbor)
	if v == VerdictPending {
		// A pausing pending directive is the shutter's closed phase: the
		// batch is halted so the detector can read the neighbour's steady
		// miss rate (Algorithm 1).
		if d == comm.DirectivePause {
			if !e.shutterActive {
				e.shutterActive = true
				e.shutterStart = period
			}
		} else {
			e.recordShutterSpan(period)
		}
		e.directive = d
		e.finishTick()
		return e.directive
	}

	contending := v == VerdictContention
	verdictVal := 0.0
	if contending {
		e.stats.CPositive++
		telemetry.EngineVerdictContention.Inc()
		verdictVal = 1
	} else {
		e.stats.CNegative++
		telemetry.EngineVerdictClear.Inc()
	}
	e.recordShutterSpan(period)
	e.spans.Record(e.track, telemetry.SpanDetect,
		e.detStart, uint32(period-e.detStart+1), verdictVal)
	e.detActive = false
	e.log.Append(Event{Period: period, Kind: EventVerdict, Verdict: v,
		OwnMisses: ownMisses, NeighborMisses: neighbor})
	dir, n := e.resp.React(contending, e)
	if n < 1 {
		panic(fmt.Sprintf("caer: responder %s returned hold length %d", e.resp.Name(), n))
	}
	e.det.Reset()
	e.directive = dir
	if n > 1 {
		e.state = stateHolding
		e.holdLeft = n - 1
		e.holdStart = period
		e.holdDir = dir
		telemetry.EngineHolds.Inc()
		e.log.Append(Event{Period: period, Kind: EventHoldStart, Directive: dir, HoldLen: n})
	}
	e.finishTick()
	return e.directive
}

// recordHoldSpan closes the in-flight hold span at end (exclusive).
func (e *Engine) recordHoldSpan(end uint64) {
	val := 0.0
	if e.holdDir == comm.DirectivePause {
		val = 1
	}
	n := end - e.holdStart
	if n == 0 {
		n = 1
	}
	e.spans.Record(e.track, telemetry.SpanHold, e.holdStart, uint32(n), val)
	telemetry.EngineHoldPeriods.Observe(float64(n))
}

// recordShutterSpan closes the in-flight shutter-closed span, if any, at
// end (exclusive).
func (e *Engine) recordShutterSpan(end uint64) {
	if !e.shutterActive {
		return
	}
	e.shutterActive = false
	n := end - e.shutterStart
	if n == 0 {
		n = 1
	}
	e.spans.Record(e.track, telemetry.SpanShutter, e.shutterStart, uint32(n), 0)
}

func (e *Engine) finishTick() {
	if e.directive == comm.DirectivePause {
		e.stats.PausedPeriods++
		telemetry.EnginePausedPeriods.Inc()
	} else {
		e.stats.RunPeriods++
	}
	if !e.everDirected || e.directive != e.loggedDir {
		telemetry.EngineDirectiveChanges.Inc()
		e.log.Append(Event{Period: e.stats.Periods - 1, Kind: EventDirective, Directive: e.directive})
		e.loggedDir = e.directive
		e.everDirected = true
	}
	e.ownSlot.SetDirective(e.directive)
}
