package caer

import (
	"testing"

	"caer/internal/comm"
)

// fakeView is a scripted Responder view.
type fakeView struct {
	own, neighbor, last float64
}

func (f fakeView) OwnMean() float64      { return f.own }
func (f fakeView) NeighborMean() float64 { return f.neighbor }
func (f fakeView) LastNeighbor() float64 { return f.last }

func TestRedLightGreenLightFixed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseLength = 10
	r := NewRedLightGreenLight(cfg)
	v := fakeView{}

	dir, n := r.React(true, v)
	if dir != comm.DirectivePause || n != 10 {
		t.Errorf("React(contending) = %v,%d, want pause,10", dir, n)
	}
	// Holds keep the light red and never release early.
	for i := 0; i < 9; i++ {
		d, release := r.Hold(v)
		if d != comm.DirectivePause || release {
			t.Fatalf("hold %d = %v,%v", i, d, release)
		}
	}
	dir, n = r.React(false, v)
	if dir != comm.DirectiveRun || n != 10 {
		t.Errorf("React(clear) = %v,%d, want run,10", dir, n)
	}
	if d, _ := r.Hold(v); d != comm.DirectiveRun {
		t.Error("green hold did not stay green")
	}
	red, green := r.RedGreenTotals()
	if red != 10 || green != 10 {
		t.Errorf("totals = %d,%d, want 10,10", red, green)
	}
}

func TestRedLightGreenLightAdaptiveGrowth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseLength = 5
	cfg.AdaptiveResponse = true
	cfg.MaxResponseLength = 18
	r := NewRedLightGreenLight(cfg)
	v := fakeView{}

	lengths := []int{}
	for i := 0; i < 4; i++ {
		_, n := r.React(true, v)
		lengths = append(lengths, n)
	}
	// First verdict: base 5. Consistent repeats double, capped at 18.
	want := []int{5, 10, 18, 18}
	for i := range want {
		if lengths[i] != want[i] {
			t.Errorf("consistent verdict %d length = %d, want %d", i, lengths[i], want[i])
		}
	}
	// A flipped verdict snaps back to the base length.
	if _, n := r.React(false, v); n != 5 {
		t.Errorf("flipped verdict length = %d, want 5", n)
	}
	// And doubles again on its own consistency.
	if _, n := r.React(false, v); n != 10 {
		t.Errorf("second consistent clear length = %d, want 10", n)
	}
	if r.Name() != "red-light-green-light(adaptive)" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestRedLightGreenLightReset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseLength = 4
	cfg.AdaptiveResponse = true
	cfg.MaxResponseLength = 64
	r := NewRedLightGreenLight(cfg)
	v := fakeView{}
	r.React(true, v)
	r.React(true, v)
	r.Reset()
	if _, n := r.React(true, v); n != 4 {
		t.Errorf("post-reset length = %d, want base 4", n)
	}
}

func TestSoftLockTakesAndHoldsUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsageThresh = 30
	cfg.MaxResponseLength = 100
	s := NewSoftLock(cfg)

	dir, n := s.React(true, fakeView{neighbor: 90})
	if dir != comm.DirectivePause || n != 100 {
		t.Fatalf("React(contending) = %v,%d, want pause,100", dir, n)
	}
	// Neighbour still heavy: lock held.
	d, release := s.Hold(fakeView{neighbor: 90})
	if d != comm.DirectivePause || release {
		t.Errorf("Hold under pressure = %v,%v, want pause,false", d, release)
	}
	// Pressure subsides: the batch fully resumes.
	d, release = s.Hold(fakeView{neighbor: 10})
	if d != comm.DirectiveRun || !release {
		t.Errorf("Hold after subsiding = %v,%v, want run,true", d, release)
	}
	locks, releases := s.LockStats()
	if locks != 1 || releases != 1 {
		t.Errorf("lock stats = %d,%d, want 1,1", locks, releases)
	}
}

func TestSoftLockClearVerdictRunsImmediately(t *testing.T) {
	s := NewSoftLock(DefaultConfig())
	dir, n := s.React(false, fakeView{})
	if dir != comm.DirectiveRun || n != 1 {
		t.Errorf("React(clear) = %v,%d, want run,1", dir, n)
	}
	if s.Name() != "soft-lock" {
		t.Errorf("Name = %q", s.Name())
	}
	s.Reset() // stateless; must not panic
}

func TestResponderConstructorsValidateConfig(t *testing.T) {
	bad := DefaultConfig()
	bad.ResponseLength = 0
	for _, f := range []func(){
		func() { NewRedLightGreenLight(bad) },
		func() { NewSoftLock(bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid config accepted by a responder constructor")
				}
			}()
			f()
		}()
	}
}
