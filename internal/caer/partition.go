package caer

import (
	"fmt"

	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/mem"
	"caer/internal/telemetry"
)

// PartitionActuator is the cache-partitioning member of the response
// family for plain CAER deployments (runner.ModeCAER): instead of halting
// a batch core on DirectivePause, it confines the core's L3 fills to a
// reduced way-mask, so the aggressor keeps running but physically cannot
// evict the latency app's lines outside the confined ways. DirectiveRun
// restores the full mask. The scheduler's LFOC-style clustering response
// (sched.ResponsePartition) generalizes this to multi-app cluster plans;
// this actuator is the minimal per-core form that slots into the existing
// engine/directive machinery unchanged.
type PartitionActuator struct {
	m        *machine.Machine
	confined mem.WayMask
	full     mem.WayMask
	mode     mem.ResizeMode
	applied  []bool // per core: currently confined
}

// NewPartitionActuator builds the actuator. confined must be a non-empty
// strict subset of the machine's L3 ways; mode picks the resize semantics
// (orphan or invalidate) used on every directive transition.
func NewPartitionActuator(m *machine.Machine, confined mem.WayMask, mode mem.ResizeMode) *PartitionActuator {
	ways := m.DomainHierarchy(0).L3().Ways()
	full := mem.FullMask(ways)
	if confined == 0 || confined&^full != 0 || confined == full {
		panic(fmt.Sprintf("caer: confined mask %v must be a non-empty strict subset of %d ways", confined, ways))
	}
	return &PartitionActuator{
		m:        m,
		confined: confined,
		full:     full,
		mode:     mode,
		applied:  make([]bool, m.Cores()),
	}
}

// Actuate implements Actuator (pass it via WithActuator or
// runner.Scenario.Actuator). The runtime re-applies the combined directive
// every period; the applied cache makes the steady state a single compare,
// so the per-period path stays allocation-free and mask resizes only fire
// on directive transitions.
func (p *PartitionActuator) Actuate(core *machine.Core, d comm.Directive) {
	id := core.ID()
	confine := d == comm.DirectivePause
	if p.applied[id] == confine {
		return
	}
	p.applied[id] = confine
	p.resize(id, confine)
}

// resize applies the transition (cold path: transitions are rare relative
// to periods and invalidate-mode resizes may allocate).
func (p *PartitionActuator) resize(core int, confine bool) {
	mask := p.full
	if confine {
		mask = p.confined
	}
	h := p.m.DomainHierarchy(p.m.DomainOf(core))
	dropped := h.SetL3OwnerMask(p.m.LocalCore(core), mask, p.mode)
	telemetry.PartResizes.Inc()
	if dropped > 0 {
		telemetry.PartInvalidations.Add(uint64(dropped))
	}
}
