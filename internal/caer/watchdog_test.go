package caer

import (
	"testing"

	"caer/internal/comm"
	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/spec"
)

// watchdogHarness builds an engine over a table whose period clock the
// test drives by hand, with a detector/responder pair that always asserts
// contention and pauses — the worst case a dead monitor can wedge.
func watchdogHarness(t *testing.T, k int) (*Engine, *comm.Table, *comm.Slot) {
	t.Helper()
	tab := comm.NewTable(8)
	nbr := tab.Register("lat", comm.RoleLatency)
	own := tab.Register("batch", comm.RoleBatch)
	det := &scriptDetector{dirs: []comm.Directive{comm.DirectiveRun}, verdicts: []Verdict{VerdictContention}}
	resp := &scriptResponder{dir: comm.DirectivePause, length: 4, holdDir: comm.DirectivePause}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})
	e.SetWatchdog(k)
	return e, tab, nbr
}

func TestWatchdogTripsAndFailsOpen(t *testing.T) {
	const k = 3
	e, tab, nbr := watchdogHarness(t, k)

	// Healthy periods: monitor publishes, engine pauses on contention.
	for p := 0; p < 5; p++ {
		tab.BumpPeriod()
		nbr.Publish(500)
		e.Tick(100)
	}
	if e.Degraded() {
		t.Fatal("engine degraded while the monitor was live")
	}

	// The monitor dies. The engine may keep pausing only until the
	// staleness horizon; from then on every directive must be Run.
	pausedAfterDeath := 0
	for p := 0; p < 10; p++ {
		tab.BumpPeriod()
		d := e.Tick(100)
		if p < k {
			if d == comm.DirectivePause {
				pausedAfterDeath++
			}
		} else if d != comm.DirectiveRun {
			t.Fatalf("stale period %d: directive %v, want fail-open run", p, d)
		}
	}
	if !e.Degraded() {
		t.Fatal("engine did not degrade after the watchdog horizon")
	}
	if pausedAfterDeath > k {
		t.Fatalf("batch paused %d periods after monitor death, horizon is %d", pausedAfterDeath, k)
	}
	st := e.Stats()
	if st.WatchdogTrips != 1 {
		t.Fatalf("WatchdogTrips = %d, want 1", st.WatchdogTrips)
	}
	if st.DegradedTicks == 0 {
		t.Fatal("DegradedTicks = 0 after degradation")
	}

	var sawDegraded bool
	for _, ev := range e.Log().Events() {
		if ev.Kind == EventDegraded {
			sawDegraded = true
			if ev.StalePeriods < k {
				t.Errorf("EventDegraded.StalePeriods = %d, want >= %d", ev.StalePeriods, k)
			}
		}
	}
	if !sawDegraded {
		t.Fatal("no EventDegraded in the decision log")
	}
}

func TestWatchdogRecoversWhenSamplesResume(t *testing.T) {
	const k = 3
	e, tab, nbr := watchdogHarness(t, k)

	tab.BumpPeriod()
	nbr.Publish(500)
	e.Tick(100)

	// Kill the monitor long enough to degrade.
	for p := 0; p < k+2; p++ {
		tab.BumpPeriod()
		e.Tick(100)
	}
	if !e.Degraded() {
		t.Fatal("engine not degraded")
	}

	// Monitor revives: the first fresh sample recovers the engine and
	// detection resumes.
	tab.BumpPeriod()
	nbr.Publish(500)
	e.Tick(100)
	if e.Degraded() {
		t.Fatal("engine still degraded after samples resumed")
	}
	var sawRecovered bool
	for _, ev := range e.Log().Events() {
		if ev.Kind == EventRecovered {
			sawRecovered = true
		}
	}
	if !sawRecovered {
		t.Fatal("no EventRecovered in the decision log")
	}

	// And a second outage trips it again.
	for p := 0; p < k+1; p++ {
		tab.BumpPeriod()
		e.Tick(100)
	}
	if !e.Degraded() {
		t.Fatal("engine did not re-degrade on a second outage")
	}
	if st := e.Stats(); st.WatchdogTrips != 2 {
		t.Fatalf("WatchdogTrips = %d, want 2", st.WatchdogTrips)
	}
}

func TestWatchdogCutsInFlightHold(t *testing.T) {
	const k = 2
	tab := comm.NewTable(8)
	nbr := tab.Register("lat", comm.RoleLatency)
	own := tab.Register("batch", comm.RoleBatch)
	det := &scriptDetector{dirs: []comm.Directive{comm.DirectiveRun}, verdicts: []Verdict{VerdictContention}}
	// A very long pause hold: without the watchdog this wedges the batch.
	resp := &scriptResponder{dir: comm.DirectivePause, length: 1000, holdDir: comm.DirectivePause}
	e := NewEngine(det, resp, own, []*comm.Slot{nbr})
	e.SetWatchdog(k)

	tab.BumpPeriod()
	nbr.Publish(500)
	if d := e.Tick(100); d != comm.DirectivePause {
		t.Fatalf("verdict period directive = %v, want pause (hold starts)", d)
	}

	// Monitor dies mid-hold; the hold must not outlive the horizon.
	for p := 0; p < k; p++ {
		tab.BumpPeriod()
		e.Tick(100)
	}
	tab.BumpPeriod()
	if d := e.Tick(100); d != comm.DirectiveRun {
		t.Fatalf("directive after horizon = %v, want run despite the in-flight hold", d)
	}
	if !e.Degraded() {
		t.Fatal("engine not degraded despite stale hold")
	}
}

func TestWatchdogDisabledNeverDegrades(t *testing.T) {
	e, tab, _ := watchdogHarness(t, 0)
	for p := 0; p < 50; p++ {
		tab.BumpPeriod()
		e.Tick(100)
	}
	if e.Degraded() {
		t.Fatal("disabled watchdog degraded the engine")
	}
	if st := e.Stats(); st.WatchdogTrips != 0 || st.DegradedTicks != 0 {
		t.Fatalf("disabled watchdog recorded activity: %+v", st)
	}
}

func TestSetWatchdogAfterTickPanics(t *testing.T) {
	e, tab, nbr := watchdogHarness(t, 3)
	tab.BumpPeriod()
	nbr.Publish(1)
	e.Tick(1)
	defer func() {
		if recover() == nil {
			t.Error("SetWatchdog after Tick did not panic")
		}
	}()
	e.SetWatchdog(5)
}

// TestRuntimeWatchdogEndToEnd drives a whole deployment: kill the CAER-M
// monitor mid-run and check the engine fails open and the latency process
// still completes, then recovers when the monitor restarts.
func TestRuntimeWatchdogEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogPeriods = 10
	m := machine.New(machine.Config{Cores: 2})
	rt := NewRuntime(m, HeuristicRule, cfg)
	lat, _ := spec.ByName("mcf")
	lat.Exec.Instructions /= 64
	latProc := lat.NewProcess(0, 1)
	rt.AddLatency("mcf", 0, latProc)
	rt.AddBatch("lbm", 1, spec.LBM().Batch().NewProcess(1<<28, 2))

	// Warm up with the monitor alive.
	for i := 0; i < 200 && !latProc.Done(); i++ {
		rt.Step()
	}
	eng := rt.Engines()[0]

	// Crash the monitor: within the horizon the engine must degrade, and
	// while degraded it must emit run every period.
	rt.Monitors()[0].SetDown(true)
	for i := 0; i < cfg.WatchdogPeriods+2; i++ {
		rt.Step()
	}
	if !eng.Degraded() {
		t.Fatal("engine not degraded after monitor crash")
	}
	for i := 0; i < 20; i++ {
		rt.Step()
		if d := eng.Directive(); d != comm.DirectiveRun {
			t.Fatalf("degraded engine emitted %v", d)
		}
	}

	// Restart the monitor: the engine recovers on the next fresh sample.
	rt.Monitors()[0].SetDown(false)
	rt.Step()
	if eng.Degraded() {
		t.Fatal("engine still degraded after monitor restart")
	}

	// The run must still finish.
	rt.RunUntil(latProc.Done, 10_000_000)
	if !latProc.Done() {
		t.Fatal("latency process never completed")
	}
	if st := eng.Stats(); st.WatchdogTrips == 0 {
		t.Fatal("watchdog never tripped end to end")
	}
	if m.ReadCounter(0, pmu.EventInstrRetired) == 0 {
		t.Fatal("latency core retired no instructions")
	}
}
