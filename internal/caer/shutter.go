package caer

import (
	"caer/internal/comm"
	"caer/internal/stats"
)

// ShutterDetector implements the Burst-Shutter heuristic (paper §4.1,
// Algorithm 1). It actively probes for contention by modulating the batch
// application itself:
//
//  1. Shutter: halt the batch for SwitchPoint periods and record the
//     neighbour's last-level-cache misses — the steady average.
//  2. Burst: run the batch at full force until EndPoint and record the
//     neighbour's misses — the burst average.
//  3. If the burst average exceeds the steady average by more than
//     NoiseThresh *and* by more than ImpactFactor relatively, the batch's
//     execution is demonstrably raising the neighbour's miss rate: assert
//     contention.
//
// The ImpactFactor is the paper's QoS "knob": it directly expresses how
// much cross-core interference the latency-sensitive application will
// tolerate.
type ShutterDetector struct {
	switchPoint  int
	endPoint     int
	impactFactor float64
	noiseThresh  float64
	skip         int

	count    int
	rWindow  *stats.Window // neighbour samples for the current cycle
	cycles   uint64        // completed detection cycles
	verdicts [2]uint64     // [0] no-contention, [1] contention
}

// NewShutterDetector constructs the heuristic from cfg. It panics on an
// invalid configuration.
func NewShutterDetector(cfg Config) *ShutterDetector {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &ShutterDetector{
		switchPoint:  cfg.SwitchPoint,
		endPoint:     cfg.EndPoint,
		impactFactor: cfg.ImpactFactor,
		noiseThresh:  cfg.NoiseThresh,
		skip:         cfg.TransientSkip,
		rWindow:      stats.NewWindow(cfg.EndPoint),
	}
}

// Name implements Detector.
func (d *ShutterDetector) Name() string { return "burst-shutter" }

// Step implements Detector, advancing Algorithm 1 by one period.
func (d *ShutterDetector) Step(ownMisses, neighborMisses float64) (comm.Directive, Verdict) {
	d.rWindow.Push(neighborMisses)
	d.count++

	if d.count < d.switchPoint {
		// Still measuring the steady average: keep the shutter closed.
		return comm.DirectivePause, VerdictPending
	}
	if d.count < d.endPoint {
		// Burst: run the batch at full force.
		return comm.DirectiveRun, VerdictPending
	}

	// count == endPoint: compute both averages over this cycle's samples
	// (positions are relative to the cycle because the window length equals
	// EndPoint and Reset clears it). Directives take effect one period after
	// they are issued, so the sample at position 0 ran under the pre-cycle
	// directive and belongs to neither average: the shutter (batch paused)
	// covers positions [1, switchPoint) and the burst [switchPoint,
	// endPoint). Each span additionally skips its first `skip` settled
	// periods, because the shared cache takes several periods to refill
	// (shutter) or drain (burst) after the batch's state flips — the
	// averages are taken over the settled tails.
	steady := d.rWindow.MeanRange(1+d.skip, d.switchPoint)
	burst := d.rWindow.MeanRange(d.switchPoint+d.skip, d.endPoint)
	d.cycles++
	d.resetCycle()

	if (burst-steady) > d.noiseThresh && burst > steady*(1+d.impactFactor) {
		d.verdicts[1]++
		return comm.DirectiveRun, VerdictContention
	}
	d.verdicts[0]++
	return comm.DirectiveRun, VerdictNoContention
}

// Reset implements Detector.
func (d *ShutterDetector) Reset() { d.resetCycle() }

func (d *ShutterDetector) resetCycle() {
	d.count = 0
	d.rWindow.Reset()
}

// Cycles returns the number of completed shutter/burst detection cycles.
func (d *ShutterDetector) Cycles() uint64 { return d.cycles }

// VerdictCounts returns (noContention, contention) cycle counts.
func (d *ShutterDetector) VerdictCounts() (noContention, contention uint64) {
	return d.verdicts[0], d.verdicts[1]
}
