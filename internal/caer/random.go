package caer

import (
	"math/rand"

	"caer/internal/comm"
)

// RandomDetector is the baseline heuristic of §6.4: it reports contention
// with probability P and no contention with probability 1−P, ignoring the
// PMU samples entirely. The paper uses it (with P = 0.5 and a
// red-light/green-light response of length 1) to define detection accuracy
// A = U_h/U_r − 1 (Equation 2): a real heuristic should sacrifice *more*
// utilization than random for interference-sensitive neighbours and gain
// *more* than random for insensitive ones.
type RandomDetector struct {
	p        float64
	rng      *rand.Rand
	verdicts [2]uint64
}

// NewRandomDetector constructs the baseline from cfg (RandomP, RandomSeed).
// It panics on an invalid configuration.
func NewRandomDetector(cfg Config) *RandomDetector {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &RandomDetector{p: cfg.RandomP, rng: rand.New(rand.NewSource(cfg.RandomSeed))}
}

// Name implements Detector.
func (d *RandomDetector) Name() string { return "random" }

// Step implements Detector: a coin flip per period.
func (d *RandomDetector) Step(ownMisses, neighborMisses float64) (comm.Directive, Verdict) {
	if d.rng.Float64() < d.p {
		d.verdicts[1]++
		return comm.DirectiveRun, VerdictContention
	}
	d.verdicts[0]++
	return comm.DirectiveRun, VerdictNoContention
}

// Reset implements Detector (no cycle state to discard).
func (d *RandomDetector) Reset() {}

// VerdictCounts returns (noContention, contention) step counts.
func (d *RandomDetector) VerdictCounts() (noContention, contention uint64) {
	return d.verdicts[0], d.verdicts[1]
}
