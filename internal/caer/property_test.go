package caer

import (
	"testing"
	"testing/quick"
)

// propTrace generates a deterministic pseudo-random (own, neighbor) sample
// trace from seed using an xorshift generator, so property runs are
// reproducible from the failing input alone. Samples span quiet (<50) to
// heavy (>400) miss rates so both verdict branches are exercised.
func propTrace(seed uint64, n int) (own, neighbor []float64) {
	s := seed | 1
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s % 500)
	}
	own = make([]float64, n)
	neighbor = make([]float64, n)
	for i := range own {
		own[i] = next()
		neighbor[i] = next()
	}
	return own, neighbor
}

// shutterContentions replays a fixed trace through a fresh ShutterDetector
// and returns the contention-cycle count. The detector is fed directly —
// no responder/hold feedback — so two configurations see byte-identical
// samples and differ only in their thresholds.
func shutterContentions(cfg Config, own, neighbor []float64) uint64 {
	d := NewShutterDetector(cfg)
	for i := range own {
		d.Step(own[i], neighbor[i])
	}
	_, contention := d.VerdictCounts()
	return contention
}

// TestShutterThresholdMonotonicity pins the Algorithm 1 verdict predicate's
// monotonicity: on a fixed trace, raising NoiseThresh or ImpactFactor can
// only flip contention cycles to no-contention, never the reverse. The
// verdict fires iff (burst-steady) > NoiseThresh AND burst >
// steady*(1+ImpactFactor), and both averages are non-negative miss counts,
// so each conjunct is antitone in its knob.
func TestShutterThresholdMonotonicity(t *testing.T) {
	prop := func(seed uint64, noiseBump, impactBump uint16) bool {
		cfg := DefaultConfig()
		own, neighbor := propTrace(seed, 12*cfg.EndPoint)
		base := shutterContentions(cfg, own, neighbor)

		noisier := cfg
		noisier.NoiseThresh += float64(noiseBump) // up to +65535 misses
		if got := shutterContentions(noisier, own, neighbor); got > base {
			t.Logf("seed=%d NoiseThresh %v->%v raised contentions %d->%d",
				seed, cfg.NoiseThresh, noisier.NoiseThresh, base, got)
			return false
		}

		stricter := cfg
		stricter.ImpactFactor += float64(impactBump) / 100 // up to +655.35 relative
		if got := shutterContentions(stricter, own, neighbor); got > base {
			t.Logf("seed=%d ImpactFactor %v->%v raised contentions %d->%d",
				seed, cfg.ImpactFactor, stricter.ImpactFactor, base, got)
			return false
		}

		both := noisier
		both.ImpactFactor = stricter.ImpactFactor
		if got := shutterContentions(both, own, neighbor); got > base {
			t.Logf("seed=%d raising both knobs raised contentions %d->%d", seed, base, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRulePolarity pins Algorithm 2's verdict polarity on arbitrary traces:
// after every step, the detector asserts contention iff BOTH windowed
// averages are at or above UsageThresh — never on one side alone, and
// always when both qualify.
func TestRulePolarity(t *testing.T) {
	prop := func(seed uint64, threshCentis uint16) bool {
		cfg := DefaultConfig()
		cfg.UsageThresh = float64(threshCentis) / 100 // [0, 655.35) misses/period
		own, neighbor := propTrace(seed, 8*cfg.WindowSize)
		d := NewRuleDetector(cfg)
		for i := range own {
			_, verdict := d.Step(own[i], neighbor[i])
			want := d.OwnMean() >= cfg.UsageThresh && d.NeighborMean() >= cfg.UsageThresh
			if got := verdict == VerdictContention; got != want {
				t.Logf("seed=%d step=%d thresh=%v ownMean=%v neighborMean=%v verdict=%v want contention=%v",
					seed, i, cfg.UsageThresh, d.OwnMean(), d.NeighborMean(), verdict, want)
				return false
			}
			if verdict != VerdictContention && verdict != VerdictNoContention {
				t.Logf("seed=%d step=%d: rule detector emitted non-terminal verdict %v", seed, i, verdict)
				return false
			}
		}
		no, yes := d.VerdictCounts()
		return no+yes == uint64(len(own))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
