package caer

import (
	"testing"
	"testing/quick"

	"caer/internal/machine"
	"caer/internal/pmu"
	"caer/internal/spec"
	"caer/internal/telemetry"
	"caer/internal/workload"
)

func TestSamplingModeStrings(t *testing.T) {
	want := map[SamplingMode]string{
		SamplingPolling:   "polling",
		SamplingAdaptive:  "adaptive",
		SamplingInterrupt: "interrupt",
	}
	for _, m := range SamplingModes() {
		if m.String() != want[m] {
			t.Errorf("mode %d String = %q, want %q", int(m), m.String(), want[m])
		}
	}
	if s := SamplingMode(99).String(); s != "SamplingMode(99)" {
		t.Errorf("unknown mode String = %q", s)
	}
}

func TestIntervalControllerWidensWithHysteresis(t *testing.T) {
	c := NewIntervalController(16, 2, 3)
	if c.Interval() != 1 {
		t.Fatalf("initial interval %d, want 1", c.Interval())
	}
	// Two quiet probes: below the hysteresis bound, no widening.
	c.Observe(true)
	if got := c.Observe(true); got != 1 {
		t.Fatalf("interval %d after 2 quiet probes (hysteresis 3), want 1", got)
	}
	// Third quiet probe: widen to 2.
	if got := c.Observe(true); got != 2 {
		t.Fatalf("interval %d after 3 quiet probes, want 2", got)
	}
	// Each further full streak doubles, capping at max.
	for i := 0; i < 20; i++ {
		c.Observe(true)
	}
	if got := c.Interval(); got != 16 {
		t.Fatalf("interval %d after a long quiet run, want cap 16", got)
	}
	if c.Widest() != 16 {
		t.Fatalf("Widest = %d, want 16", c.Widest())
	}
	// Onset snaps straight back to every-period.
	if got := c.Observe(false); got != 1 {
		t.Fatalf("interval %d after onset, want 1", got)
	}
	if c.Widest() != 16 {
		t.Fatalf("Widest = %d after snap-back, want to keep 16", c.Widest())
	}
}

func TestIntervalControllerCapBelowGrowth(t *testing.T) {
	// max 3 with growth 2: 1 -> 2 -> 3 (clamped), never past max.
	c := NewIntervalController(3, 2, 1)
	c.Observe(true)
	c.Observe(true)
	if got := c.Interval(); got != 3 {
		t.Fatalf("interval %d, want clamped 3", got)
	}
	c.Observe(true)
	if got := c.Interval(); got != 3 {
		t.Fatalf("interval %d after further quiet, want 3", got)
	}
}

// TestIntervalControllerLatencyMonotoneInMax is the satellite property
// test: the adaptive controller's worst-case detection latency after any
// observation sequence is its current interval (an onset in a skipped
// stretch is seen at the next probe). Driving two controllers that differ
// only in their max-interval bound through the same sequence, the
// smaller-bound controller's interval — hence its detection latency — must
// never exceed the larger's, and both must respect their bounds.
func TestIntervalControllerLatencyMonotoneInMax(t *testing.T) {
	prop := func(maxSeed, extraSeed, growthSeed, quietSeed uint8, script []bool) bool {
		maxA := int(maxSeed)%64 + 1
		maxB := maxA + int(extraSeed)%64
		growth := int(growthSeed)%4 + 2
		hysteresis := int(quietSeed)%5 + 1
		a := NewIntervalController(maxA, growth, hysteresis)
		b := NewIntervalController(maxB, growth, hysteresis)
		for _, quiet := range script {
			ia := a.Observe(quiet)
			ib := b.Observe(quiet)
			if ia > ib {
				return false // latency not monotone in the max bound
			}
			if ia > maxA || ib > maxB || ia < 1 || ib < 1 {
				return false // bound violated
			}
			if !quiet && (ia != 1 || ib != 1) {
				return false // onset must snap back immediately
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// pressureSource interposes on the machine's counters, adding synthetic
// cumulative LLC misses on one core — a deterministic neighbour-pressure
// script the sampling tests turn on and off.
type pressureSource struct {
	m     *machine.Machine
	core  int
	extra uint64
}

func (p *pressureSource) ReadCounter(core int, ev pmu.Event) uint64 {
	v := p.m.ReadCounter(core, ev)
	if core == p.core && ev == pmu.EventLLCMisses {
		v += p.extra
	}
	return v
}

// idleProcess is a latency app whose working set fits in L1: after the
// cold-start transient its LLC-miss rate is ~0, the quiet floor the
// adaptive controller widens over.
func idleProcess(seed int64) *machine.Process {
	return machine.NewProcess("idle",
		machine.ExecProfile{MemFraction: 0.05, BaseCPI: 1},
		workload.NewStream(0, 4096, 64, 0), seed)
}

// samplingScenario builds a 2-core deployment: an idle latency app and an
// lbm batch adversary under the rule heuristic, with a scriptable pressure
// source on the latency core.
func samplingScenario(t *testing.T, cfg Config) (*Runtime, *pressureSource) {
	t.Helper()
	m := machine.New(machine.Config{Cores: 2})
	ps := &pressureSource{m: m, core: 0}
	rt := NewRuntime(m, HeuristicRule, cfg, WithSource(ps))
	rt.AddLatency("idle", 0, idleProcess(21))
	rt.AddBatch("lbm", 1, spec.LBM().Batch().NewProcess(1<<28, 22))
	return rt, ps
}

func samplingTestConfig(mode SamplingMode) Config {
	cfg := DefaultConfig()
	cfg.Sampling = mode
	cfg.MaxProbeInterval = 8
	cfg.SampleGrowth = 2
	cfg.QuietProbes = 2
	cfg.UsageThresh = 50
	return cfg
}

func TestAdaptiveSamplingWidensWithoutTrippingWatchdog(t *testing.T) {
	rt, ps := samplingScenario(t, samplingTestConfig(SamplingAdaptive))
	for i := 0; i < 200; i++ {
		rt.Step()
		// The monitor is alive and honouring its declared cadence, so no
		// consumer — engine watchdog, shm reader, telemetry — may ever see
		// it as stale, probe period or skipped period alike.
		if stale := rt.Monitors()[0].Slot().StalePeriods(); stale != 0 {
			t.Fatalf("period %d: live monitor reads stale (%d periods) during a declared skip", i, stale)
		}
	}
	st := rt.SamplingStats()
	if st.Mode != SamplingAdaptive {
		t.Fatalf("stats mode %v, want adaptive", st.Mode)
	}
	if st.ProbePeriods+st.SkippedPeriods != 200 {
		t.Fatalf("probes %d + skips %d != 200 periods", st.ProbePeriods, st.SkippedPeriods)
	}
	if st.SkippedPeriods == 0 {
		t.Fatal("quiet trace widened nothing: no probes were skipped")
	}
	if st.WidestInterval != 8 {
		t.Fatalf("widest interval %d, want the cap 8", st.WidestInterval)
	}
	eng := rt.Engines()[0].Stats()
	if eng.WatchdogTrips != 0 {
		t.Fatalf("%d watchdog trips on a live, on-cadence monitor (sampler's own skips read as death)", eng.WatchdogTrips)
	}

	// Onset: pressure snaps the schedule back to every-period probing.
	before := rt.SamplingStats().ProbePeriods
	for i := 0; i < 30; i++ {
		ps.extra += 500
		rt.Step()
	}
	probes := rt.SamplingStats().ProbePeriods - before
	if probes < 20 {
		t.Fatalf("only %d probes in 30 burst periods: interval did not snap back on onset", probes)
	}
	if rt.Engines()[0].Stats().CPositive == 0 {
		t.Fatal("burst pressure never produced a contention verdict")
	}
}

func TestAdaptiveSamplingDeadMonitorStillTrips(t *testing.T) {
	cfg := samplingTestConfig(SamplingAdaptive)
	rt, _ := samplingScenario(t, cfg)
	for i := 0; i < 100; i++ {
		rt.Step()
	}
	if rt.SamplingStats().SkippedPeriods == 0 {
		t.Fatal("precondition: schedule never widened")
	}
	// Kill the monitor mid-widened-schedule: the declared cadence protects
	// intentional skips only — a publisher that misses its own declared
	// due period accrues staleness and must trip the watchdog.
	rt.Monitors()[0].SetDown(true)
	for i := 0; i < cfg.WatchdogPeriods+cfg.MaxProbeInterval+5; i++ {
		rt.Step()
	}
	eng := rt.Engines()[0]
	if eng.Stats().WatchdogTrips == 0 {
		t.Fatal("dead monitor never tripped the watchdog under adaptive sampling")
	}
	if !eng.Degraded() {
		t.Fatal("engine not degraded with the monitor still down")
	}
	// Revival recovers: the engine leaves fail-open once samples resume.
	rt.Monitors()[0].SetDown(false)
	for i := 0; i < 5; i++ {
		rt.Step()
	}
	if eng.Degraded() {
		t.Fatal("engine still degraded after the monitor revived")
	}
}

func TestInterruptSamplingSleepsAndFires(t *testing.T) {
	rt, ps := samplingScenario(t, samplingTestConfig(SamplingInterrupt))
	for i := 0; i < 60; i++ {
		rt.Step()
		if stale := rt.Monitors()[0].Slot().StalePeriods(); stale != 0 {
			t.Fatalf("period %d: live monitor reads stale (%d) during interrupt sleep", i, stale)
		}
	}
	if !rt.Sleeping() {
		t.Fatal("quiet trace never parked the pipeline behind the triggers")
	}
	st := rt.SamplingStats()
	if st.SkippedPeriods == 0 {
		t.Fatal("no periods skipped while sleeping")
	}
	if st.Keepalives == 0 {
		t.Fatal("no keepalive probes over a long sleep (watchdog blind spot)")
	}
	if len(rt.Triggers()) != 1 {
		t.Fatalf("%d triggers, want 1 (one per latency core)", len(rt.Triggers()))
	}

	// Onset: the threshold trigger must fire and wake the pipeline.
	wakeStep := -1
	for i := 0; i < 10; i++ {
		ps.extra += 500
		rt.Step()
		if !rt.Sleeping() {
			wakeStep = i
			break
		}
	}
	if wakeStep < 0 {
		t.Fatal("burst pressure never fired the trigger")
	}
	if wakeStep > 2 {
		t.Fatalf("trigger took %d periods to fire on a 500/period burst", wakeStep+1)
	}
	if rt.SamplingStats().TriggerFires == 0 {
		t.Fatal("stats recorded no trigger fires")
	}
	// The wake is traced: an armed span ending in a fire, plus the fired
	// marker, on the engine lane.
	var armed, fired bool
	for _, sp := range telemetry.DefaultSpans.Spans() {
		switch sp.Kind {
		case telemetry.SpanArmed:
			if sp.Value == 1 {
				armed = true
			}
		case telemetry.SpanFired:
			fired = true
		}
	}
	if !armed || !fired {
		t.Fatalf("trace missing wake spans: armed-by-fire=%v fired=%v", armed, fired)
	}
	// Awake under sustained pressure, the engine must reach a contention
	// verdict.
	for i := 0; i < 30; i++ {
		ps.extra += 500
		rt.Step()
	}
	if rt.Engines()[0].Stats().CPositive == 0 {
		t.Fatal("no contention verdict after the trigger woke the pipeline")
	}
}

func TestInterruptSamplingDeadMonitorStillTrips(t *testing.T) {
	cfg := samplingTestConfig(SamplingInterrupt)
	rt, _ := samplingScenario(t, cfg)
	for i := 0; i < 60; i++ {
		rt.Step()
	}
	if !rt.Sleeping() {
		t.Fatal("precondition: pipeline never slept")
	}
	rt.Monitors()[0].SetDown(true)
	for i := 0; i < cfg.WatchdogPeriods+cfg.MaxProbeInterval+5; i++ {
		rt.Step()
	}
	eng := rt.Engines()[0]
	if eng.Stats().WatchdogTrips == 0 {
		t.Fatal("dead monitor never tripped the watchdog through an interrupt sleep")
	}
	rt.Monitors()[0].SetDown(false)
	for i := 0; i < 5; i++ {
		rt.Step()
	}
	if eng.Degraded() {
		t.Fatal("engine still degraded after the monitor revived")
	}
}

func TestPollingStatsUnchanged(t *testing.T) {
	rt, _ := testScenario(t, HeuristicRule, 50)
	st := rt.SamplingStats()
	if st.Mode != SamplingPolling {
		t.Fatalf("default mode %v, want polling", st.Mode)
	}
	if st.ProbePeriods != 50 || st.SkippedPeriods != 0 {
		t.Fatalf("polling probes %d skips %d over 50 periods, want 50/0", st.ProbePeriods, st.SkippedPeriods)
	}
	if st.WidestInterval != 1 {
		t.Fatalf("polling widest interval %d, want 1", st.WidestInterval)
	}
}

func TestSamplingConfigValidation(t *testing.T) {
	base := samplingTestConfig(SamplingAdaptive)
	cases := []func(*Config){
		func(c *Config) { c.MaxProbeInterval = 0 },
		func(c *Config) { c.SampleGrowth = 1 },
		func(c *Config) { c.QuietProbes = 0 },
		func(c *Config) { c.MaxProbeInterval = c.WatchdogPeriods },
		func(c *Config) { c.Sampling = SamplingMode(7) },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid sampling config passed Validate", i)
		}
	}
	intr := samplingTestConfig(SamplingInterrupt)
	intr.TriggerWindow = 0
	if intr.Validate() == nil {
		t.Error("TriggerWindow 0 passed Validate under interrupt sampling")
	}
	intr.TriggerWindow = 4
	intr.TriggerBound = -1
	if intr.Validate() == nil {
		t.Error("negative TriggerBound passed Validate")
	}
	// Legacy literal configs (zero sampling fields) must stay valid.
	legacy := Config{WindowSize: 10, SwitchPoint: 10, EndPoint: 20, TransientSkip: 5,
		UsageThresh: 150, ResponseLength: 10}
	if err := legacy.Validate(); err != nil {
		t.Errorf("legacy zero-sampling config rejected: %v", err)
	}
}
