package caer

import (
	"strings"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"window", func(c *Config) { c.WindowSize = 0 }, "WindowSize"},
		{"switch", func(c *Config) { c.SwitchPoint = 0 }, "SwitchPoint"},
		{"endpoint", func(c *Config) { c.EndPoint = c.SwitchPoint }, "EndPoint"},
		{"impact", func(c *Config) { c.ImpactFactor = -0.1 }, "ImpactFactor"},
		{"noise", func(c *Config) { c.NoiseThresh = -1 }, "NoiseThresh"},
		{"skip negative", func(c *Config) { c.TransientSkip = -1 }, "TransientSkip"},
		{"skip eats shutter", func(c *Config) { c.TransientSkip = c.SwitchPoint - 1 }, "TransientSkip"},
		{"skip eats burst", func(c *Config) { c.TransientSkip = c.EndPoint - c.SwitchPoint }, "TransientSkip"},
		{"usage", func(c *Config) { c.UsageThresh = -1 }, "UsageThresh"},
		{"response", func(c *Config) { c.ResponseLength = 0 }, "ResponseLength"},
		{"maxresponse", func(c *Config) { c.AdaptiveResponse = true; c.MaxResponseLength = 1 }, "MaxResponseLength"},
		{"randomp", func(c *Config) { c.RandomP = 1.5 }, "RandomP"},
	}
	for _, c := range cases {
		cfg := base
		c.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	cases := map[Verdict]string{
		VerdictPending:      "pending",
		VerdictContention:   "contention",
		VerdictNoContention: "no-contention",
		Verdict(9):          "Verdict(9)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestHeuristicKindStringsAndFactories(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		k    HeuristicKind
		name string
		det  string
		resp string
	}{
		{HeuristicShutter, "shutter", "burst-shutter", "red-light-green-light(10)"},
		{HeuristicRule, "rule-based", "rule-based", "soft-lock"},
		{HeuristicRandom, "random", "random", "red-light-green-light(1)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.name {
			t.Errorf("String() = %q, want %q", got, c.name)
		}
		if got := c.k.NewDetector(cfg).Name(); got != c.det {
			t.Errorf("%v detector = %q, want %q", c.k, got, c.det)
		}
		if got := c.k.NewResponder(cfg).Name(); got != c.resp {
			t.Errorf("%v responder = %q, want %q", c.k, got, c.resp)
		}
	}
	if HeuristicKind(9).String() != "HeuristicKind(9)" {
		t.Error("unknown kind string wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown kind NewDetector did not panic")
			}
		}()
		HeuristicKind(9).NewDetector(cfg)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown kind NewResponder did not panic")
			}
		}()
		HeuristicKind(9).NewResponder(cfg)
	}()
}
